// Package report renders experiment tables into a self-contained HTML
// report with inline SVG bar charts, so a full `cmd/bench -html` run
// produces a single reviewable artifact alongside the text tables.
package report

import (
	"fmt"
	"html/template"
	"io"
	"strconv"
	"strings"

	"proxygraph/internal/metrics"
)

// Report accumulates experiment tables for rendering.
type Report struct {
	// Title heads the document.
	Title string
	// Subtitle is shown under the title (e.g. scale and seed).
	Subtitle string

	sections []section
}

type section struct {
	Table *metrics.Table
	Chart template.HTML
}

// New creates an empty report.
func New(title, subtitle string) *Report {
	return &Report{Title: title, Subtitle: subtitle}
}

// Add appends a table; a bar chart is generated when the table has a numeric
// last-or-speedup column worth plotting.
func (r *Report) Add(tables ...*metrics.Table) {
	for _, t := range tables {
		r.sections = append(r.sections, section{Table: t, Chart: barChart(t)})
	}
}

// Len returns the number of sections added so far.
func (r *Report) Len() int { return len(r.sections) }

// WriteHTML renders the document.
func (r *Report) WriteHTML(w io.Writer) error {
	data := struct {
		Title, Subtitle string
		Sections        []section
	}{r.Title, r.Subtitle, r.sections}
	return page.Execute(w, data)
}

// numericColumn finds the best column to chart: the rightmost column where
// most cells parse as numbers (after stripping x/%/units). Returns -1 when
// nothing is plottable.
func numericColumn(t *metrics.Table) int {
	best := -1
	for c := 1; c < len(t.Columns); c++ {
		ok := 0
		for _, row := range t.Rows {
			if c < len(row) {
				if _, parsed := parseCell(row[c]); parsed {
					ok++
				}
			}
		}
		if len(t.Rows) > 0 && ok >= (len(t.Rows)+1)/2 {
			best = c
		}
	}
	return best
}

// parseCell extracts a numeric value from cells like "1.45x", "23.6%",
// "12.41ms", "2.50s", "0.47" or "1 : 3.5" (the ratio's right side).
func parseCell(cell string) (float64, bool) {
	s := strings.TrimSpace(cell)
	if i := strings.LastIndex(s, ":"); i >= 0 {
		s = strings.TrimSpace(s[i+1:])
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ms"):
		s, mult = strings.TrimSuffix(s, "ms"), 1e-3
	case strings.HasSuffix(s, "µs"):
		s, mult = strings.TrimSuffix(s, "µs"), 1e-6
	case strings.HasSuffix(s, "s"):
		s = strings.TrimSuffix(s, "s")
	case strings.HasSuffix(s, "x"):
		s = strings.TrimSuffix(s, "x")
	case strings.HasSuffix(s, "%"):
		s = strings.TrimSuffix(s, "%")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}

// barChart renders a horizontal bar chart of the chosen numeric column,
// labelled with the leading cells. Tables with nothing numeric or more than
// 40 rows yield no chart.
func barChart(t *metrics.Table) template.HTML {
	col := numericColumn(t)
	if col < 0 || len(t.Rows) == 0 || len(t.Rows) > 40 {
		return ""
	}
	type bar struct {
		label string
		value float64
		text  string
	}
	var bars []bar
	maxV := 0.0
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		v, ok := parseCell(row[col])
		if !ok {
			continue
		}
		label := strings.Join(row[:min(col, 2)], " / ")
		bars = append(bars, bar{label: label, value: v, text: row[col]})
		if v > maxV {
			maxV = v
		}
	}
	if len(bars) == 0 || maxV <= 0 {
		return ""
	}

	const (
		width  = 720
		barH   = 18
		gap    = 4
		labelW = 260
		valueW = 80
		chartW = width - labelW - valueW
	)
	height := len(bars)*(barH+gap) + gap
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg" role="img">`, width, height)
	fmt.Fprintf(&b, `<title>%s — %s</title>`, template.HTMLEscapeString(t.Title), template.HTMLEscapeString(t.Columns[col]))
	for i, bar := range bars {
		y := gap + i*(barH+gap)
		w := int(float64(chartW) * bar.value / maxV)
		if w < 1 {
			w = 1
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="monospace" text-anchor="end">%s</text>`,
			labelW-6, y+barH-5, template.HTMLEscapeString(clip(bar.label, 38)))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#4878a8"/>`,
			labelW, y, w, barH)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="monospace">%s</text>`,
			labelW+w+4, y+barH-5, template.HTMLEscapeString(bar.text))
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var page = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.2rem; }
p.sub { color: #666; }
table { border-collapse: collapse; font-size: 0.85rem; margin: 0.6rem 0; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f0f2f5; }
p.note { color: #555; font-size: 0.8rem; margin: 0.2rem 0; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="sub">{{.Subtitle}}</p>
{{range .Sections}}
<h2>{{.Table.Title}}</h2>
<table>
<tr>{{range .Table.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Table.Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}
</table>
{{range .Table.Notes}}<p class="note"># {{.}}</p>{{end}}
{{.Chart}}
{{end}}
</body>
</html>
`))
