package report

import (
	"bytes"
	"strings"
	"testing"

	"proxygraph/internal/metrics"
)

func sampleTable() *metrics.Table {
	t := metrics.NewTable("Speedups", "app", "graph", "speedup")
	t.AddRow("pagerank", "amazon", "1.45x")
	t.AddRow("coloring", "wiki", "1.12x")
	t.AddNote("demo note")
	return t
}

func TestParseCell(t *testing.T) {
	cases := map[string]float64{
		"1.45x":   1.45,
		"23.6%":   23.6,
		"12.41ms": 0.01241,
		"150µs":   0.00015,
		"2.50s":   2.5,
		"0.47":    0.47,
		"1 : 3.5": 3.5,
	}
	for in, want := range cases {
		got, ok := parseCell(in)
		if !ok {
			t.Errorf("parseCell(%q) failed", in)
			continue
		}
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("parseCell(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"amazon", "", "n/a", "fast"} {
		if _, ok := parseCell(in); ok {
			t.Errorf("parseCell(%q) should fail", in)
		}
	}
}

func TestNumericColumnPicksRightmostNumeric(t *testing.T) {
	tab := sampleTable()
	if col := numericColumn(tab); col != 2 {
		t.Errorf("numericColumn = %d, want 2", col)
	}
	// Table with no numeric columns.
	plain := metrics.NewTable("x", "a", "b")
	plain.AddRow("one", "two")
	if col := numericColumn(plain); col != -1 {
		t.Errorf("numericColumn = %d, want -1", col)
	}
}

func TestBarChartRenders(t *testing.T) {
	chart := string(barChart(sampleTable()))
	for _, want := range []string{"<svg", "rect", "1.45x", "pagerank"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	// Empty and oversized tables yield no chart.
	empty := metrics.NewTable("x", "a", "v")
	if barChart(empty) != "" {
		t.Error("empty table should not chart")
	}
	big := metrics.NewTable("x", "a", "v")
	for i := 0; i < 50; i++ {
		big.AddRow("row", "1.0x")
	}
	if barChart(big) != "" {
		t.Error("oversized table should not chart")
	}
}

func TestWriteHTML(t *testing.T) {
	r := New("Demo Report", "scale 1/64, seed 42")
	r.Add(sampleTable())
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Demo Report", "scale 1/64", "Speedups",
		"<th>speedup</th>", "<td>1.45x</td>", "# demo note", "<svg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestHTMLEscapesContent(t *testing.T) {
	tab := metrics.NewTable("<script>alert(1)</script>", "a", "v")
	tab.AddRow("<img>", "2.0x")
	r := New("t", "s")
	r.Add(tab)
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") {
		t.Error("title not escaped")
	}
	if strings.Contains(buf.String(), "<td><img></td>") {
		t.Error("cell not escaped")
	}
}
