package graph

import "sync"

// InDegreesParallel computes InDegrees with up to workers goroutines: each
// worker counts a contiguous edge range into a private array, then the
// per-vertex sums are merged in worker order (also sharded, by vertex range).
// Integer addition is exact and commutative, so the result is bit-identical
// to InDegrees at every worker count — the property the ingress differential
// test relies on. Memory is O(workers · |V|), so callers should size workers
// to real parallelism, not to the edge count.
func (g *Graph) InDegreesParallel(workers int) []int32 {
	if workers > len(g.Edges) {
		workers = len(g.Edges)
	}
	if workers <= 1 {
		return g.InDegrees()
	}
	parts := make([][]int32, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			deg := make([]int32, g.NumVertices)
			for _, e := range g.Edges[len(g.Edges)*w/workers : len(g.Edges)*(w+1)/workers] {
				deg[e.Dst]++
			}
			parts[w] = deg
		}(w)
	}
	wg.Wait()

	out := parts[0]
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(lo, hi int) {
			defer wg.Done()
			for _, part := range parts[1:] {
				for v := lo; v < hi; v++ {
					out[v] += part[v]
				}
			}
		}(g.NumVertices*w/workers, g.NumVertices*(w+1)/workers)
	}
	wg.Wait()
	return out
}
