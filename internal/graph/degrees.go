package graph

import "sync"

// degreeScratch pools the per-worker counting arrays of the parallel degree
// scans. Before pooling, every call allocated workers×|V| int32s, so the
// ingress pipeline's bytes/op grew linearly with the shard count (the hybrid
// shards8 blowup tracked in BENCH_INGRESS.json); pooled arrays are grown once
// and reused across calls, making the scans' steady-state allocation cost
// independent of the worker count.
var degreeScratch sync.Pool

// getDegreeScratch returns a zeroed length-n count array, reusing pooled
// capacity when available.
func getDegreeScratch(n int) []int32 {
	if v := degreeScratch.Get(); v != nil {
		s := *(v.(*[]int32))
		if cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	return make([]int32, n)
}

// putDegreeScratch returns a count array to the pool.
func putDegreeScratch(s []int32) {
	degreeScratch.Put(&s)
}

// degreesParallel is the shared worker machinery of InDegreesParallel and
// OutDegreesParallel: each worker counts a contiguous edge range into a pooled
// private array, then the per-vertex sums are merged (also sharded, by vertex
// range) into a freshly allocated result. Integer addition is exact and
// commutative, so the result is bit-identical to the sequential scan at every
// worker count — the property the ingress differential test relies on.
func degreesParallel(g *Graph, workers int, endpoint func(Edge) VertexID) []int32 {
	out := make([]int32, g.NumVertices)
	parts := make([][]int32, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			deg := getDegreeScratch(g.NumVertices)
			for _, e := range g.Edges[len(g.Edges)*w/workers : len(g.Edges)*(w+1)/workers] {
				deg[endpoint(e)]++
			}
			parts[w] = deg
		}(w)
	}
	wg.Wait()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(lo, hi int) {
			defer wg.Done()
			for _, part := range parts {
				for v := lo; v < hi; v++ {
					out[v] += part[v]
				}
			}
		}(g.NumVertices*w/workers, g.NumVertices*(w+1)/workers)
	}
	wg.Wait()
	for _, part := range parts {
		putDegreeScratch(part)
	}
	return out
}

// InDegreesParallel computes InDegrees with up to workers goroutines over
// pooled per-worker count arrays (see degreesParallel). Callers should size
// workers to real parallelism, not to the edge count.
func (g *Graph) InDegreesParallel(workers int) []int32 {
	if workers > len(g.Edges) {
		workers = len(g.Edges)
	}
	if workers <= 1 {
		return g.InDegrees()
	}
	return degreesParallel(g, workers, func(e Edge) VertexID { return e.Dst })
}

// OutDegreesParallel computes OutDegrees with up to workers goroutines, the
// out-direction twin of InDegreesParallel with the same bit-identical
// guarantee.
func (g *Graph) OutDegreesParallel(workers int) []int32 {
	if workers > len(g.Edges) {
		workers = len(g.Edges)
	}
	if workers <= 1 {
		return g.OutDegrees()
	}
	return degreesParallel(g, workers, func(e Edge) VertexID { return e.Src })
}
