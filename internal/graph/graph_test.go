package graph

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"proxygraph/internal/rng"
)

// diamond returns a small directed test graph:
//
//	0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
func diamond() *Graph {
	return &Graph{
		Name:        "diamond",
		NumVertices: 4,
		Edges: []Edge{
			{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0},
		},
	}
}

func randomGraph(t *testing.T, seed uint64, n, m int) *Graph {
	t.Helper()
	src := rng.New(seed)
	g := &Graph{Name: "random", NumVertices: n}
	for len(g.Edges) < m {
		u := VertexID(src.Intn(n))
		v := VertexID(src.Intn(n))
		if u == v {
			continue
		}
		g.Edges = append(g.Edges, Edge{u, v})
	}
	return g
}

func TestValidateAcceptsGoodGraph(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	g := &Graph{NumVertices: 2, Edges: []Edge{{0, 5}}}
	if err := g.Validate(); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	g := &Graph{NumVertices: 3, Edges: []Edge{{1, 1}}}
	if err := g.Validate(); err == nil {
		t.Error("expected self-loop error")
	}
}

func TestDegrees(t *testing.T) {
	g := diamond()
	out := g.OutDegrees()
	in := g.InDegrees()
	tot := g.TotalDegrees()
	wantOut := []int32{2, 1, 1, 1}
	wantIn := []int32{1, 1, 1, 2}
	if !reflect.DeepEqual(out, wantOut) {
		t.Errorf("out degrees = %v, want %v", out, wantOut)
	}
	if !reflect.DeepEqual(in, wantIn) {
		t.Errorf("in degrees = %v, want %v", in, wantIn)
	}
	for i := range tot {
		if tot[i] != out[i]+in[i] {
			t.Errorf("total degree mismatch at %d", i)
		}
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestAvgDegree(t *testing.T) {
	g := diamond()
	if got := g.AvgDegree(); got != 5.0/4.0 {
		t.Errorf("AvgDegree = %v", got)
	}
	empty := &Graph{}
	if empty.AvgDegree() != 0 {
		t.Error("empty graph AvgDegree should be 0")
	}
}

func TestDegreeHistogram(t *testing.T) {
	deg, count := DegreeHistogram([]int32{3, 3, 3, 2, 1, 1})
	wantDeg := []int{1, 2, 3}
	wantCount := []int64{2, 1, 3}
	if !reflect.DeepEqual(deg, wantDeg) || !reflect.DeepEqual(count, wantCount) {
		t.Errorf("histogram = %v/%v, want %v/%v", deg, count, wantDeg, wantCount)
	}
}

func TestOutCSR(t *testing.T) {
	c := diamond().BuildOutCSR()
	want := map[VertexID][]VertexID{
		0: {1, 2}, 1: {3}, 2: {3}, 3: {0},
	}
	for v, neighbors := range want {
		if got := c.Neighbors(v); !reflect.DeepEqual(got, neighbors) {
			t.Errorf("out neighbors of %d = %v, want %v", v, got, neighbors)
		}
		if c.Degree(v) != len(neighbors) {
			t.Errorf("degree of %d = %d", v, c.Degree(v))
		}
	}
}

func TestInCSR(t *testing.T) {
	c := diamond().BuildInCSR()
	want := map[VertexID][]VertexID{
		0: {3}, 1: {0}, 2: {0}, 3: {1, 2},
	}
	for v, neighbors := range want {
		if got := c.Neighbors(v); !reflect.DeepEqual(got, neighbors) {
			t.Errorf("in neighbors of %d = %v, want %v", v, got, neighbors)
		}
	}
}

func TestUndirectedCSRDedup(t *testing.T) {
	// Both (0,1) and (1,0) present: undirected view should list each
	// neighbor once.
	g := &Graph{NumVertices: 3, Edges: []Edge{{0, 1}, {1, 0}, {1, 2}}}
	c := g.BuildUndirectedCSR()
	want := map[VertexID][]VertexID{
		0: {1}, 1: {0, 2}, 2: {1},
	}
	for v, neighbors := range want {
		if got := c.Neighbors(v); !reflect.DeepEqual(got, neighbors) {
			t.Errorf("undirected neighbors of %d = %v, want %v", v, got, neighbors)
		}
	}
}

func TestCSRRowsSorted(t *testing.T) {
	g := randomGraph(t, 1, 200, 3000)
	for _, c := range []*CSR{g.BuildOutCSR(), g.BuildInCSR(), g.BuildUndirectedCSR()} {
		for v := 0; v < g.NumVertices; v++ {
			row := c.Neighbors(VertexID(v))
			if !sort.SliceIsSorted(row, func(i, j int) bool { return row[i] < row[j] }) {
				t.Fatalf("row %d not sorted: %v", v, row)
			}
		}
	}
}

func TestCSREdgeConservation(t *testing.T) {
	g := randomGraph(t, 2, 100, 2000)
	out := g.BuildOutCSR()
	in := g.BuildInCSR()
	if len(out.Targets) != len(g.Edges) || len(in.Targets) != len(g.Edges) {
		t.Errorf("CSR target counts %d/%d, want %d", len(out.Targets), len(in.Targets), len(g.Edges))
	}
	// Sum of degrees equals edge count.
	sum := 0
	for v := 0; v < g.NumVertices; v++ {
		sum += out.Degree(VertexID(v))
	}
	if sum != len(g.Edges) {
		t.Errorf("sum of out-degrees %d != %d", sum, len(g.Edges))
	}
}

func TestIntersectionSize(t *testing.T) {
	cases := []struct {
		a, b []VertexID
		want int
	}{
		{nil, nil, 0},
		{[]VertexID{1, 2, 3}, nil, 0},
		{[]VertexID{1, 2, 3}, []VertexID{2, 3, 4}, 2},
		{[]VertexID{1, 5, 9}, []VertexID{2, 6, 10}, 0},
		{[]VertexID{1, 2, 3}, []VertexID{1, 2, 3}, 3},
		{[]VertexID{1}, []VertexID{1}, 1},
	}
	for _, c := range cases {
		if got := IntersectionSize(c.a, c.b); got != c.want {
			t.Errorf("IntersectionSize(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIntersectionSizeProperty(t *testing.T) {
	// Property: merge intersection equals map-based intersection.
	f := func(rawA, rawB []uint16) bool {
		a := make([]VertexID, 0, len(rawA))
		for _, v := range rawA {
			a = append(a, VertexID(v%100))
		}
		b := make([]VertexID, 0, len(rawB))
		for _, v := range rawB {
			b = append(b, VertexID(v%100))
		}
		a, b = dedupSorted(a), dedupSorted(b)
		set := map[VertexID]bool{}
		for _, v := range a {
			set[v] = true
		}
		want := 0
		for _, v := range b {
			if set[v] {
				want++
			}
		}
		return IntersectionSize(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func dedupSorted(v []VertexID) []VertexID {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func TestTextRoundTrip(t *testing.T) {
	g := randomGraph(t, 3, 50, 500)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices != g.NumVertices && got.NumVertices > g.NumVertices {
		t.Errorf("vertices = %d, want <= %d", got.NumVertices, g.NumVertices)
	}
	if !reflect.DeepEqual(got.Edges, g.Edges) {
		t.Error("edges differ after text round trip")
	}
}

func TestTextDeclaredNodeCount(t *testing.T) {
	in := "# Nodes: 10 Edges: 1\n0\t1\n"
	g, err := ReadText(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 10 {
		t.Errorf("NumVertices = %d, want 10 from declaration", g.NumVertices)
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	for _, in := range []string{"0\n", "a\tb\n", "1\tx\n"} {
		if _, err := ReadText(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q: expected parse error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(t, 4, 64, 1000)
	g.Alpha = 2.17
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices != g.NumVertices || got.Alpha != g.Alpha {
		t.Errorf("header mismatch: %d/%v vs %d/%v", got.NumVertices, got.Alpha, g.NumVertices, g.Alpha)
	}
	if !reflect.DeepEqual(got.Edges, g.Edges) {
		t.Error("edges differ after binary round trip")
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("NOPE....")); err == nil {
		t.Error("expected magic error")
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	g := randomGraph(t, 5, 16, 50)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewBuffer(trunc)); err == nil {
		t.Error("expected truncation error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(t, 6, 32, 200)
	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Edges, g.Edges) {
			t.Errorf("%s: edges differ", name)
		}
	}
}

func TestFootprintBytesMatchesTableII(t *testing.T) {
	// amazon: 3,387,388 edges, Table II footprint 46MB.
	g := &Graph{NumVertices: 403394, Edges: make([]Edge, 0)}
	got := float64(3387388) * 13.6 / (1 << 20)
	if got < 40 || got > 50 {
		t.Errorf("footprint model gives %.1f MB for amazon, want ~46", got)
	}
	_ = g
}

func BenchmarkBuildOutCSR(b *testing.B) {
	src := rng.New(1)
	const n, m = 100000, 1000000
	g := &Graph{NumVertices: n, Edges: make([]Edge, m)}
	for i := range g.Edges {
		g.Edges[i] = Edge{VertexID(src.Intn(n)), VertexID(src.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BuildOutCSR()
	}
}

func TestBinaryRejectsLyingHeader(t *testing.T) {
	// A header claiming 2^60 edges with no payload must error cleanly, not
	// attempt a giant allocation.
	var buf bytes.Buffer
	buf.WriteString("PGX1")
	hdr := make([]byte, 20)
	hdr[4] = 0
	// edge count = 1<<60
	for i := range hdr {
		hdr[i] = 0
	}
	hdr[11] = 0x10 // little-endian byte 7 of the count field (offset 4..11)
	buf.Write(hdr)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("expected error for lying header")
	}
}
