package graph

import (
	"testing"
)

func TestGroupPairsStableGrouping(t *testing.T) {
	// Records: (5->a) pairs interleaved with (2->b) pairs; stability means
	// each key's companions keep input order.
	keys := []VertexID{5, 2, 5, 9, 2, 5}
	vals := []VertexID{10, 20, 11, 30, 21, 12}
	scratch := make([]int32, 10)
	g := GroupPairs(keys, vals, scratch)

	wantKeys := []VertexID{2, 5, 9}
	if len(g.Keys) != len(wantKeys) {
		t.Fatalf("keys = %v, want %v", g.Keys, wantKeys)
	}
	for i, k := range wantKeys {
		if g.Keys[i] != k {
			t.Fatalf("keys = %v, want %v", g.Keys, wantKeys)
		}
	}
	check := func(key VertexID, want []VertexID) {
		t.Helper()
		gi := g.Find(key)
		if gi < 0 {
			t.Fatalf("Find(%d) = -1", key)
		}
		got := g.Group(gi)
		if len(got) != len(want) {
			t.Fatalf("group %d = %v, want %v", key, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("group %d = %v, want %v", key, got, want)
			}
		}
	}
	check(2, []VertexID{20, 21})
	check(5, []VertexID{10, 11, 12})
	check(9, []VertexID{30})

	if g.Find(7) != -1 {
		t.Error("Find on absent key should return -1")
	}
	if g.NumRecords() != len(keys) {
		t.Errorf("NumRecords = %d, want %d", g.NumRecords(), len(keys))
	}
	// The scratch must come back zeroed for reuse.
	for i, c := range scratch {
		if c != 0 {
			t.Fatalf("scratch[%d] = %d after GroupPairs", i, c)
		}
	}
}

func TestGroupPairsEmpty(t *testing.T) {
	g := GroupPairs(nil, nil, make([]int32, 4))
	if len(g.Keys) != 0 || len(g.Vals) != 0 || len(g.Offs) != 1 {
		t.Errorf("empty grouping = %+v", g)
	}
	if g.Find(0) != -1 {
		t.Error("Find on empty grouping should return -1")
	}
}

func TestGroupPairsMatchesCSROrder(t *testing.T) {
	// Grouping a full edge list by source must agree with BuildOutCSR on
	// membership (CSR additionally sorts each row).
	g := &Graph{NumVertices: 40}
	src := uint64(12345)
	next := func() VertexID {
		src = src*6364136223846793005 + 1442695040888963407
		return VertexID((src >> 33) % 40)
	}
	for len(g.Edges) < 300 {
		u, v := next(), next()
		if u != v {
			g.Edges = append(g.Edges, Edge{Src: u, Dst: v})
		}
	}
	keys := make([]VertexID, len(g.Edges))
	vals := make([]VertexID, len(g.Edges))
	for i, e := range g.Edges {
		keys[i], vals[i] = e.Src, e.Dst
	}
	grouped := GroupPairs(keys, vals, make([]int32, g.NumVertices))
	csr := g.BuildOutCSR()
	for v := 0; v < g.NumVertices; v++ {
		want := csr.Neighbors(VertexID(v))
		gi := grouped.Find(VertexID(v))
		var got []VertexID
		if gi >= 0 {
			got = grouped.Group(gi)
		}
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d neighbors grouped, CSR has %d", v, len(got), len(want))
		}
		// Same multiset: count occurrences.
		cnt := map[VertexID]int{}
		for _, u := range got {
			cnt[u]++
		}
		for _, u := range want {
			cnt[u]--
		}
		for u, c := range cnt {
			if c != 0 {
				t.Fatalf("vertex %d: neighbor %d multiplicity differs by %d", v, u, c)
			}
		}
	}
}
