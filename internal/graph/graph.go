// Package graph provides the graph substrate the rest of the system is built
// on: edge lists, compressed sparse row (CSR) adjacency, degree statistics,
// and serialization. It corresponds to the graph loading/finalization layers
// of the PowerGraph framework the paper builds upon.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Graphs in this reproduction stay below 2^32
// vertices (the largest graph in the paper, the social network, has 4.8M).
type VertexID uint32

// Edge is a directed edge from Src to Dst. Undirected graphs are represented
// as directed graphs whose algorithms treat edges symmetrically, exactly as
// PowerGraph's applications do.
type Edge struct {
	Src, Dst VertexID
}

// Graph is an immutable edge-list graph. The zero value is an empty graph.
type Graph struct {
	// Name labels the graph in experiment output (e.g. "amazon", "proxy-1.95").
	Name string
	// NumVertices is the number of vertices; vertex IDs are 0..NumVertices-1.
	NumVertices int
	// Edges holds every directed edge.
	Edges []Edge
	// Weights optionally holds per-edge weights (len == len(Edges)).
	// Nil means unweighted; Weight(i) then reads as 1.
	Weights []float32
	// Alpha is the declared or fitted power-law exponent, 0 when unknown.
	Alpha float64
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// AvgDegree returns |E| / |V| (Eq 6 of the paper), or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(g.NumVertices)
}

// Validate checks structural invariants: all endpoints in range and no
// self-loops (the paper's generator omits self-loops).
func (g *Graph) Validate() error {
	if g.NumVertices < 0 {
		return fmt.Errorf("graph %q: negative vertex count %d", g.Name, g.NumVertices)
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph %q: %d weights for %d edges", g.Name, len(g.Weights), len(g.Edges))
	}
	n := VertexID(g.NumVertices)
	for i, e := range g.Edges {
		if e.Src >= n || e.Dst >= n {
			return fmt.Errorf("graph %q: edge %d (%d->%d) out of range [0,%d)", g.Name, i, e.Src, e.Dst, n)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("graph %q: edge %d is a self-loop at vertex %d", g.Name, i, e.Src)
		}
	}
	return nil
}

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []int32 {
	deg := make([]int32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	return deg
}

// InDegrees returns the in-degree of every vertex.
func (g *Graph) InDegrees() []int32 {
	deg := make([]int32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Dst]++
	}
	return deg
}

// TotalDegrees returns in-degree + out-degree per vertex, the degree notion
// used by the paper's degree-distribution plots and the Hybrid/Ginger cuts.
func (g *Graph) TotalDegrees() []int32 {
	deg := make([]int32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
		deg[e.Dst]++
	}
	return deg
}

// MaxDegree returns the maximum total degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	maxDeg := int32(0)
	for _, d := range g.TotalDegrees() {
		if d > maxDeg {
			maxDeg = d
		}
	}
	return int(maxDeg)
}

// DegreeHistogram returns (degree, count) pairs sorted by degree for the
// given degree array, skipping degrees with zero count. This is the data
// behind the paper's Fig 6 (power-law degree distribution).
func DegreeHistogram(degrees []int32) (deg []int, count []int64) {
	m := map[int32]int64{}
	for _, d := range degrees {
		m[d]++
	}
	deg = make([]int, 0, len(m))
	for d := range m {
		deg = append(deg, int(d))
	}
	sort.Ints(deg)
	count = make([]int64, len(deg))
	for i, d := range deg {
		count[i] = m[int32(d)]
	}
	return deg, count
}

// CSR is a compressed-sparse-row adjacency structure over a Graph.
// Neighbors of v occupy Targets[Offsets[v]:Offsets[v+1]] and are sorted,
// which enables the linear-merge set intersections Triangle Count needs.
type CSR struct {
	Offsets []int64
	Targets []VertexID
}

// Degree returns the number of neighbors of v in the CSR.
func (c *CSR) Degree(v VertexID) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}

// Neighbors returns the sorted neighbor slice of v. The slice aliases the
// CSR's storage and must not be modified.
func (c *CSR) Neighbors(v VertexID) []VertexID {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// buildCSR constructs adjacency using key/val extractors via counting sort,
// so construction is O(V + E) and allocation-tight.
func buildCSR(n int, edges []Edge, key, val func(Edge) VertexID, dedup bool) *CSR {
	offsets := make([]int64, n+1)
	for _, e := range edges {
		offsets[key(e)+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	targets := make([]VertexID, len(edges))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		k := key(e)
		targets[cursor[k]] = val(e)
		cursor[k]++
	}
	c := &CSR{Offsets: offsets, Targets: targets}
	c.sortRows(n)
	if dedup {
		c.dedupRows(n)
	}
	return c
}

// sortRows sorts each vertex's neighbor list ascending.
func (c *CSR) sortRows(n int) {
	for v := 0; v < n; v++ {
		row := c.Targets[c.Offsets[v]:c.Offsets[v+1]]
		if len(row) > 1 {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		}
	}
}

// dedupRows removes duplicate neighbors in each (sorted) row, compacting
// Targets and rewriting Offsets.
func (c *CSR) dedupRows(n int) {
	out := int64(0)
	newOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		start, end := c.Offsets[v], c.Offsets[v+1]
		newOffsets[v] = out
		var prev VertexID
		first := true
		for i := start; i < end; i++ {
			t := c.Targets[i]
			if first || t != prev {
				c.Targets[out] = t
				out++
				prev = t
				first = false
			}
		}
	}
	newOffsets[n] = out
	c.Offsets = newOffsets
	c.Targets = c.Targets[:out]
}

// BuildOutCSR builds out-adjacency (neighbors reachable from each source).
func (g *Graph) BuildOutCSR() *CSR {
	return buildCSR(g.NumVertices, g.Edges,
		func(e Edge) VertexID { return e.Src },
		func(e Edge) VertexID { return e.Dst }, false)
}

// BuildInCSR builds in-adjacency (sources pointing at each target).
func (g *Graph) BuildInCSR() *CSR {
	return buildCSR(g.NumVertices, g.Edges,
		func(e Edge) VertexID { return e.Dst },
		func(e Edge) VertexID { return e.Src }, false)
}

// buildCSRInto rebuilds adjacency into c's existing storage, growing the
// backing arrays only when the graph outgrows them, and skips the per-row
// neighbor sort: rows keep stable edge order. Consumers that only aggregate
// over neighbor sets (histograms, degree sums) get identical results to the
// sorted builders while avoiding the per-row sort.Slice allocations that
// dominated the ginger ingress path's allocs/op.
func buildCSRInto(c *CSR, n int, edges []Edge, key, val func(Edge) VertexID) {
	if cap(c.Offsets) >= n+1 {
		c.Offsets = c.Offsets[:n+1]
		clear(c.Offsets)
	} else {
		c.Offsets = make([]int64, n+1)
	}
	if cap(c.Targets) >= len(edges) {
		c.Targets = c.Targets[:len(edges)]
	} else {
		c.Targets = make([]VertexID, len(edges))
	}
	for _, e := range edges {
		c.Offsets[key(e)+1]++
	}
	for i := 0; i < n; i++ {
		c.Offsets[i+1] += c.Offsets[i]
	}
	// The scatter pass uses Offsets[k] itself as the write cursor: after the
	// pass every Offsets[k] has advanced to the old Offsets[k+1], so shifting
	// the array right by one restores the row boundaries without a separate
	// cursor allocation.
	for _, e := range edges {
		k := key(e)
		c.Targets[c.Offsets[k]] = val(e)
		c.Offsets[k]++
	}
	copy(c.Offsets[1:], c.Offsets[:n])
	c.Offsets[0] = 0
}

// InCSRInto rebuilds in-adjacency (sources pointing at each target) into c,
// with unsorted rows in stable edge order. See buildCSRInto.
func (g *Graph) InCSRInto(c *CSR) {
	buildCSRInto(c, g.NumVertices, g.Edges,
		func(e Edge) VertexID { return e.Dst },
		func(e Edge) VertexID { return e.Src })
}

// OutCSRInto rebuilds out-adjacency into c, with unsorted rows in stable
// edge order. See buildCSRInto.
func (g *Graph) OutCSRInto(c *CSR) {
	buildCSRInto(c, g.NumVertices, g.Edges,
		func(e Edge) VertexID { return e.Src },
		func(e Edge) VertexID { return e.Dst })
}

// BuildUndirectedCSR builds symmetric adjacency with duplicate neighbors
// removed, the view Triangle Count and Coloring operate on.
func (g *Graph) BuildUndirectedCSR() *CSR {
	sym := make([]Edge, 0, 2*len(g.Edges))
	for _, e := range g.Edges {
		sym = append(sym, e, Edge{Src: e.Dst, Dst: e.Src})
	}
	return buildCSR(g.NumVertices, sym,
		func(e Edge) VertexID { return e.Src },
		func(e Edge) VertexID { return e.Dst }, true)
}

// IntersectionSize returns |a ∩ b| for two ascending-sorted neighbor lists,
// by linear merge. It is the inner loop of Triangle Count.
func IntersectionSize(a, b []VertexID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// FootprintBytes estimates the on-disk text footprint of the graph, matching
// the methodology behind Table II's Footprint column (tab-separated decimal
// edge list). The constant 13.6 bytes/edge reproduces Table II's
// bytes-per-edge ratio (e.g. amazon: 46MB / 3.39M edges).
func (g *Graph) FootprintBytes() int64 {
	return int64(float64(len(g.Edges)) * 13.6)
}
