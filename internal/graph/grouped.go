package graph

import "sort"

// Grouped is a CSR-style grouping of (key, companion) vertex pairs whose key
// set is sparse — the machine-local analogue of CSR. Where CSR indexes every
// vertex 0..n-1, Grouped lists only the keys that actually occur, so a
// machine owning a fraction of the graph's edges pays memory proportional to
// its own edge set, not to |V|.
//
// Keys holds the distinct keys in ascending order; the companions of Keys[i]
// occupy Vals[Offs[i]:Offs[i+1]] in input order (the grouping is stable).
// The engine compiles each machine's local edges into two of these — one
// grouped by gather destination for dense sweeps, one grouped by gather
// source for sparse-frontier sweeps (see internal/engine/placement.go).
type Grouped struct {
	Keys []VertexID
	Offs []int32
	Vals []VertexID
}

// GroupPairs groups the records (keys[i] -> vals[i]) by key with a stable
// counting sort: O(R + K log K) for R records over K distinct keys, with no
// per-key allocation. scratch provides the counting workspace; it must have
// length at least max(keys)+1 and hold only zeros, and it is handed back
// zeroed so one scratch can serve many calls (the engine compiles one block
// per machine against a single |V|-sized scratch).
func GroupPairs(keys, vals []VertexID, scratch []int32) Grouped {
	if len(keys) != len(vals) {
		panic("graph: GroupPairs key/val length mismatch")
	}
	distinct := make([]VertexID, 0, len(keys))
	for _, k := range keys {
		if scratch[k] == 0 {
			distinct = append(distinct, k)
		}
		scratch[k]++
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })

	offs := make([]int32, len(distinct)+1)
	for i, k := range distinct {
		offs[i+1] = offs[i] + scratch[k]
		// Repurpose the count as the running write cursor for key k.
		scratch[k] = offs[i]
	}
	out := make([]VertexID, len(vals))
	for i, k := range keys {
		out[scratch[k]] = vals[i]
		scratch[k]++
	}
	for _, k := range distinct {
		scratch[k] = 0
	}
	return Grouped{Keys: distinct, Offs: offs, Vals: out}
}

// Find returns the group index of key k, or -1 when k has no records.
func (g *Grouped) Find(k VertexID) int {
	i := sort.Search(len(g.Keys), func(i int) bool { return g.Keys[i] >= k })
	if i < len(g.Keys) && g.Keys[i] == k {
		return i
	}
	return -1
}

// Group returns the companion slice of group i. The slice aliases the
// Grouped's storage and must not be modified.
func (g *Grouped) Group(i int) []VertexID {
	return g.Vals[g.Offs[i]:g.Offs[i+1]]
}

// NumRecords returns the total number of grouped records.
func (g *Grouped) NumRecords() int { return len(g.Vals) }
