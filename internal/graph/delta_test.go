package graph

import (
	"sort"
	"testing"
)

// deltaBase is a small weighted graph with a duplicate edge, so the
// first-remaining-occurrence delete semantics are observable.
func deltaBase() *Graph {
	return &Graph{
		Name:        "base",
		NumVertices: 5,
		Edges:       []Edge{{0, 1}, {1, 2}, {0, 1}, {2, 3}, {3, 4}},
		Weights:     []float32{1, 2, 3, 4, 5},
	}
}

func TestDeltaApply(t *testing.T) {
	base := deltaBase()
	d := &Delta{
		Time:          7,
		Deletes:       []Edge{{0, 1}, {3, 4}},
		Inserts:       []Edge{{4, 0}, {0, 1}},
		InsertWeights: []float32{9, 8},
	}
	evolved, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := []Edge{{1, 2}, {0, 1}, {2, 3}, {4, 0}, {0, 1}}
	wantWeights := []float32{2, 3, 4, 9, 8}
	if len(evolved.Edges) != len(wantEdges) {
		t.Fatalf("evolved has %d edges, want %d", len(evolved.Edges), len(wantEdges))
	}
	for i := range wantEdges {
		if evolved.Edges[i] != wantEdges[i] || evolved.Weights[i] != wantWeights[i] {
			t.Fatalf("edge %d: got %v/%v, want %v/%v",
				i, evolved.Edges[i], evolved.Weights[i], wantEdges[i], wantWeights[i])
		}
	}
	if evolved.NumVertices != base.NumVertices {
		t.Fatalf("vertex count changed to %d", evolved.NumVertices)
	}
	if evolved.Name != "base@t7" {
		t.Fatalf("evolved name %q", evolved.Name)
	}
	// The base graph must be untouched.
	if len(base.Edges) != 5 || base.Edges[0] != (Edge{0, 1}) || base.Weights[0] != 1 {
		t.Fatal("Apply mutated the base graph")
	}
}

func TestDeltaApplyGrowsAndShrinks(t *testing.T) {
	base := &Graph{NumVertices: 3, Edges: []Edge{{0, 1}, {1, 2}}}

	grow := &Delta{Time: 1, Inserts: []Edge{{2, 4}}, NumVertices: 5}
	evolved, err := grow.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if evolved.NumVertices != 5 || len(evolved.Edges) != 3 {
		t.Fatalf("grow produced |V|=%d |E|=%d", evolved.NumVertices, len(evolved.Edges))
	}
	if evolved.Weights != nil {
		t.Fatal("unweighted base grew a weight column")
	}

	shrink := &Delta{Time: 2, Deletes: []Edge{{1, 2}}, NumVertices: 2}
	evolved, err = shrink.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if evolved.NumVertices != 2 || len(evolved.Edges) != 1 {
		t.Fatalf("shrink produced |V|=%d |E|=%d", evolved.NumVertices, len(evolved.Edges))
	}

	// Shrinking below a surviving endpoint must fail, not truncate.
	if _, err := (&Delta{Time: 3, NumVertices: 2}).Apply(base); err == nil {
		t.Fatal("shrink below surviving endpoint accepted")
	}
}

func TestDeltaErrors(t *testing.T) {
	base := deltaBase()
	cases := []struct {
		name string
		d    *Delta
	}{
		{"zero time", &Delta{Inserts: []Edge{{0, 2}}, InsertWeights: []float32{1}}},
		{"negative vertices", &Delta{Time: 1, NumVertices: -1}},
		{"insert out of range", &Delta{Time: 1, Inserts: []Edge{{0, 9}}, InsertWeights: []float32{1}}},
		{"insert self-loop", &Delta{Time: 1, Inserts: []Edge{{2, 2}}, InsertWeights: []float32{1}}},
		{"weight count mismatch", &Delta{Time: 1, Inserts: []Edge{{0, 2}}, InsertWeights: []float32{1, 2}}},
		{"weighted base needs weights", &Delta{Time: 1, Inserts: []Edge{{0, 2}}}},
		{"delete absent edge", &Delta{Time: 1, Deletes: []Edge{{4, 1}}}},
		{"delete more occurrences than present", &Delta{Time: 1, Deletes: []Edge{{1, 2}, {1, 2}}}},
	}
	for _, tc := range cases {
		if _, err := tc.d.Apply(base); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDeltaDeletedIndices(t *testing.T) {
	base := deltaBase()
	// Two deletes of the duplicate (0,1) must claim both occurrences, in
	// ascending index order.
	d := &Delta{Time: 1, Deletes: []Edge{{0, 1}, {0, 1}}}
	idx, err := d.DeletedIndices(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("indices %v, want [0 2]", idx)
	}
}

func TestDeltaTouched(t *testing.T) {
	d := &Delta{
		Time:    1,
		Inserts: []Edge{{4, 0}},
		Deletes: []Edge{{2, 3}, {0, 1}},
	}
	got := d.Touched()
	want := []VertexID{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("touched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("touched %v, want %v", got, want)
		}
	}
}

// weightedEdge is an edge occurrence with its weight, the unit of the
// multiset the delta round trip must preserve.
type weightedEdge struct {
	e Edge
	w float32
}

func edgeMultiset(g *Graph) []weightedEdge {
	out := make([]weightedEdge, len(g.Edges))
	for i, e := range g.Edges {
		out[i] = weightedEdge{e: e, w: g.Weight(i)}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.e.Src != b.e.Src {
			return a.e.Src < b.e.Src
		}
		if a.e.Dst != b.e.Dst {
			return a.e.Dst < b.e.Dst
		}
		return a.w < b.w
	})
	return out
}

func sameMultiset(t *testing.T, label string, a, b *Graph) {
	t.Helper()
	if a.NumVertices != b.NumVertices {
		t.Fatalf("%s: vertex counts %d vs %d", label, a.NumVertices, b.NumVertices)
	}
	ma, mb := edgeMultiset(a), edgeMultiset(b)
	if len(ma) != len(mb) {
		t.Fatalf("%s: edge counts %d vs %d", label, len(ma), len(mb))
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("%s: multiset entry %d: %v vs %v", label, i, ma[i], mb[i])
		}
	}
}

func TestDeltaInverseRoundTrip(t *testing.T) {
	base := deltaBase()
	d := &Delta{
		Time:          3,
		Deletes:       []Edge{{0, 1}, {2, 3}},
		Inserts:       []Edge{{4, 1}},
		InsertWeights: []float32{6},
	}
	evolved, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := d.Inverse(base)
	if err != nil {
		t.Fatal(err)
	}
	back, err := inv.Apply(evolved)
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, "round trip", base, back)
}

// FuzzDelta drives random mutation batches end to end: any delta the
// validator accepts must apply cleanly, produce a structurally valid graph
// with the implied edge count, and unapply (via Inverse) back to the base
// graph's exact weighted-edge multiset.
func FuzzDelta(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(3), uint8(2))
	f.Add([]byte{0xff, 0x00, 0x80}, uint8(0), uint8(5))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, uint8(8), uint8(0))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, nIns, nDel uint8) {
		next := func(i int) int {
			if len(data) == 0 {
				return i
			}
			return int(data[i%len(data)]) + i
		}
		// Deterministic base graph shaped by the fuzz input.
		n := 4 + next(0)%12
		base := &Graph{Name: "fuzz", NumVertices: n}
		for i := 0; i < 6+next(1)%20; i++ {
			u := next(2*i) % n
			v := next(2*i+1) % n
			if u == v {
				v = (v + 1) % n
			}
			base.Edges = append(base.Edges, Edge{Src: VertexID(u), Dst: VertexID(v)})
			base.Weights = append(base.Weights, float32(1+next(i)%5))
		}
		if err := base.Validate(); err != nil {
			t.Fatalf("fuzz base invalid: %v", err)
		}

		d := &Delta{Time: 1 + uint64(next(3)%9)}
		for i := 0; i < int(nDel)%8 && i < len(base.Edges); i++ {
			d.Deletes = append(d.Deletes, base.Edges[next(7*i)%len(base.Edges)])
		}
		for i := 0; i < int(nIns)%8; i++ {
			u := next(11*i) % n
			v := next(13*i+1) % n
			if u == v {
				continue
			}
			d.Inserts = append(d.Inserts, Edge{Src: VertexID(u), Dst: VertexID(v)})
			d.InsertWeights = append(d.InsertWeights, float32(next(i)%7))
		}
		if len(d.Inserts) == 0 {
			d.InsertWeights = nil
		}

		evolved, err := d.Apply(base)
		if err != nil {
			// Duplicated deletes can exceed the occurrences present; any
			// error must be a rejection, not a bad graph.
			return
		}
		if err := evolved.Validate(); err != nil {
			t.Fatalf("evolved graph invalid: %v", err)
		}
		deleted, err := d.DeletedIndices(base)
		if err != nil {
			t.Fatalf("apply succeeded but DeletedIndices failed: %v", err)
		}
		if want := len(base.Edges) - len(deleted) + len(d.Inserts); len(evolved.Edges) != want {
			t.Fatalf("evolved has %d edges, want %d", len(evolved.Edges), want)
		}
		inv, err := d.Inverse(base)
		if err != nil {
			t.Fatalf("inverse: %v", err)
		}
		back, err := inv.Apply(evolved)
		if err != nil {
			t.Fatalf("unapply: %v", err)
		}
		sameMultiset(t, "fuzz round trip", base, back)
	})
}
