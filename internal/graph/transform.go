package graph

import (
	"fmt"

	"proxygraph/internal/rng"
)

// This file holds graph transformations: reversal, undirected
// materialization, subsampling and induced subgraphs. Subsampling exists
// mainly to demonstrate the paper's motivating claim that "it is difficult
// to subsample from a natural graph to capture its underlying
// characteristics" (Section I) — package core's SubsampleProfiler builds on
// it and the ablation in internal/exp quantifies how badly it estimates
// CCRs compared to synthetic proxies.

// Reverse returns a copy of g with every edge direction flipped.
func Reverse(g *Graph) *Graph {
	out := &Graph{
		Name:        g.Name + "-reversed",
		NumVertices: g.NumVertices,
		Alpha:       g.Alpha,
		Edges:       make([]Edge, len(g.Edges)),
	}
	for i, e := range g.Edges {
		out.Edges[i] = Edge{Src: e.Dst, Dst: e.Src}
	}
	if g.Weights != nil {
		out.Weights = append([]float32(nil), g.Weights...)
	}
	return out
}

// Undirected returns a copy of g with both orientations of every edge
// (weights duplicated), the materialized form of the undirected view.
func Undirected(g *Graph) *Graph {
	out := &Graph{
		Name:        g.Name + "-undirected",
		NumVertices: g.NumVertices,
		Alpha:       g.Alpha,
		Edges:       make([]Edge, 0, 2*len(g.Edges)),
	}
	if g.Weights != nil {
		out.Weights = make([]float32, 0, 2*len(g.Weights))
	}
	for i, e := range g.Edges {
		out.Edges = append(out.Edges, e, Edge{Src: e.Dst, Dst: e.Src})
		if g.Weights != nil {
			out.Weights = append(out.Weights, g.Weights[i], g.Weights[i])
		}
	}
	return out
}

// SampleEdges returns a uniform random sample keeping approximately fraction
// of g's edges, with the vertex set unchanged. Edge sampling preserves the
// vertex count but thins every neighborhood, so the sample's degree
// distribution — and therefore its computational profile — diverges from the
// original (the paper's argument against profiling with subsampled inputs).
func SampleEdges(g *Graph, fraction float64, seed uint64) (*Graph, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("graph: sample fraction %v outside (0, 1]", fraction)
	}
	src := rng.New(seed)
	out := &Graph{
		Name:        fmt.Sprintf("%s-sample%.3f", g.Name, fraction),
		NumVertices: g.NumVertices,
		Alpha:       0, // the sample's alpha differs from the original's
	}
	for i, e := range g.Edges {
		if src.Float64() < fraction {
			out.Edges = append(out.Edges, e)
			if g.Weights != nil {
				out.Weights = append(out.Weights, g.Weights[i])
			}
		}
	}
	return out, nil
}

// InducedSubgraph returns the subgraph induced by keeping the first
// keepVertices vertex IDs: edges with both endpoints below the cutoff
// survive, and the vertex set shrinks. ID-prefix induction is the natural
// "take the older part of the graph" sample for citation-like graphs.
func InducedSubgraph(g *Graph, keepVertices int) (*Graph, error) {
	if keepVertices <= 0 || keepVertices > g.NumVertices {
		return nil, fmt.Errorf("graph: keepVertices %d outside [1, %d]", keepVertices, g.NumVertices)
	}
	out := &Graph{
		Name:        fmt.Sprintf("%s-induced%d", g.Name, keepVertices),
		NumVertices: keepVertices,
	}
	cut := VertexID(keepVertices)
	for i, e := range g.Edges {
		if e.Src < cut && e.Dst < cut {
			out.Edges = append(out.Edges, e)
			if g.Weights != nil {
				out.Weights = append(out.Weights, g.Weights[i])
			}
		}
	}
	return out, nil
}

// AttachWeights assigns deterministic pseudo-random edge weights in
// [minW, maxW), enabling the weighted applications (SSSP). It returns g.
func AttachWeights(g *Graph, minW, maxW float32, seed uint64) *Graph {
	if maxW < minW {
		minW, maxW = maxW, minW
	}
	src := rng.New(seed)
	g.Weights = make([]float32, len(g.Edges))
	span := maxW - minW
	for i := range g.Weights {
		g.Weights[i] = minW + float32(src.Float64())*span
	}
	return g
}

// Weight returns edge i's weight, defaulting to 1 for unweighted graphs.
func (g *Graph) Weight(i int) float32 {
	if g.Weights == nil {
		return 1
	}
	return g.Weights[i]
}
