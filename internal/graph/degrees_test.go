package graph

import (
	"sort"
	"testing"
)

func TestInDegreesParallelMatchesSequential(t *testing.T) {
	graphs := []*Graph{
		diamond(),
		randomGraph(t, 83, 500, 4000),
		{NumVertices: 7}, // empty edge list
		{NumVertices: 3, Edges: []Edge{{0, 1}, {2, 1}}}, // fewer edges than workers
	}
	for gi, g := range graphs {
		want := g.InDegrees()
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			got := g.InDegreesParallel(workers)
			if len(got) != len(want) {
				t.Fatalf("graph %d workers %d: length %d, want %d", gi, workers, len(got), len(want))
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("graph %d workers %d: vertex %d degree %d, want %d",
						gi, workers, v, got[v], want[v])
				}
			}
		}
	}
}

func TestOutDegreesParallelMatchesSequential(t *testing.T) {
	graphs := []*Graph{
		diamond(),
		randomGraph(t, 89, 500, 4000),
		{NumVertices: 7},
		{NumVertices: 3, Edges: []Edge{{0, 1}, {2, 1}}},
	}
	for gi, g := range graphs {
		want := g.OutDegrees()
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			got := g.OutDegreesParallel(workers)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("graph %d workers %d: vertex %d out-degree %d, want %d",
						gi, workers, v, got[v], want[v])
				}
			}
		}
	}
}

// TestCSRIntoMatchesBuild pins the reusable unsorted builders against the
// sorted ones: same rows as multisets, and a second rebuild into the same
// storage (after a larger graph stretched it) stays correct.
func TestCSRIntoMatchesBuild(t *testing.T) {
	big := randomGraph(t, 97, 600, 5000)
	small := randomGraph(t, 101, 40, 200)
	var in, out CSR
	for _, g := range []*Graph{big, small, {NumVertices: 5}, diamond()} {
		g.InCSRInto(&in)
		g.OutCSRInto(&out)
		wantIn, wantOut := g.BuildInCSR(), g.BuildOutCSR()
		check := func(name string, got *CSR, want *CSR) {
			t.Helper()
			if len(got.Offsets) != len(want.Offsets) {
				t.Fatalf("%s: offsets length %d, want %d", name, len(got.Offsets), len(want.Offsets))
			}
			for v := 0; v < g.NumVertices; v++ {
				a := append([]VertexID(nil), got.Neighbors(VertexID(v))...)
				b := append([]VertexID(nil), want.Neighbors(VertexID(v))...)
				sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
				sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
				if len(a) != len(b) {
					t.Fatalf("%s: vertex %d row length %d, want %d", name, v, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s: vertex %d row %v, want %v", name, v, a, b)
					}
				}
			}
		}
		check("in", &in, wantIn)
		check("out", &out, wantOut)
	}
}
