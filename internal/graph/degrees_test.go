package graph

import "testing"

func TestInDegreesParallelMatchesSequential(t *testing.T) {
	graphs := []*Graph{
		diamond(),
		randomGraph(t, 83, 500, 4000),
		{NumVertices: 7}, // empty edge list
		{NumVertices: 3, Edges: []Edge{{0, 1}, {2, 1}}}, // fewer edges than workers
	}
	for gi, g := range graphs {
		want := g.InDegrees()
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			got := g.InDegreesParallel(workers)
			if len(got) != len(want) {
				t.Fatalf("graph %d workers %d: length %d, want %d", gi, workers, len(got), len(want))
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("graph %d workers %d: vertex %d degree %d, want %d",
						gi, workers, v, got[v], want[v])
				}
			}
		}
	}
}
