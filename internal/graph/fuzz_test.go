package graph

import (
	"bytes"
	"math"
	"testing"
)

// Fuzz targets for the text parsers: whatever the input, the parsers must
// return either an error or a structurally valid graph — never panic, never
// produce out-of-range endpoints. Run with `go test -fuzz FuzzReadText`;
// plain `go test` executes the seed corpus below.

func FuzzReadText(f *testing.F) {
	f.Add("# Nodes: 3 Edges: 2\n0\t1\n1\t2\n")
	f.Add("0 1\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("4294967295\t0\n")
	f.Add("a\tb\n")
	f.Add("0\t1\textra fields here\n")
	f.Add("  \n\n0\t0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		checkParsed(t, g)
	})
}

func FuzzReadAdjacency(f *testing.F) {
	f.Add("# Nodes: 3 Edges: 2\n0 2 1 2\n")
	f.Add("0 0\n")
	f.Add("1 1 1\n")
	f.Add("")
	f.Add("5 3 1 2\n")
	f.Add("x 1 2\n")
	f.Add("0 -1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadAdjacency(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		checkParsed(t, g)
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialization plus mutations.
	valid := func() []byte {
		var buf bytes.Buffer
		g := &Graph{NumVertices: 4, Edges: []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}, Alpha: 2.1}
		if err := WriteBinary(&buf, g); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("PGX1"))
	f.Add([]byte("NOPE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		checkParsed(t, g)
		// Anything that parses must survive a write/read round trip exactly.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("re-encoding a parsed graph: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decoding a parsed graph: %v", err)
		}
		if again.NumVertices != g.NumVertices || again.NumEdges() != g.NumEdges() ||
			math.Float64bits(again.Alpha) != math.Float64bits(g.Alpha) {
			t.Fatalf("round trip changed shape: %d/%d/%v vs %d/%d/%v",
				again.NumVertices, again.NumEdges(), again.Alpha,
				g.NumVertices, g.NumEdges(), g.Alpha)
		}
		for i := range g.Edges {
			if again.Edges[i] != g.Edges[i] {
				t.Fatalf("round trip changed edge %d", i)
			}
		}
	})
}

// checkParsed asserts the structural invariants a successful parse promises.
func checkParsed(t *testing.T, g *Graph) {
	t.Helper()
	if g.NumVertices < 0 {
		t.Fatalf("negative vertex count %d", g.NumVertices)
	}
	for i, e := range g.Edges {
		if int(e.Src) >= g.NumVertices || int(e.Dst) >= g.NumVertices {
			t.Fatalf("edge %d (%d->%d) outside %d vertices", i, e.Src, e.Dst, g.NumVertices)
		}
	}
}
