package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text format: one "src<TAB>dst" pair per line, '#'-prefixed comment lines
// ignored — the SNAP edge-list format used by the paper's input graphs.
//
// Binary format: little-endian; magic "PGX1", uint32 vertex count,
// uint64 edge count, float64 alpha, then (uint32 src, uint32 dst) pairs.

// WriteText writes the graph as a SNAP-style tab-separated edge list.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.NumVertices, len(g.Edges)); err != nil {
		return err
	}
	buf := make([]byte, 0, 32)
	for _, e := range g.Edges {
		buf = buf[:0]
		buf = strconv.AppendUint(buf, uint64(e.Src), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a SNAP-style edge list. The vertex count is
// max(endpoint)+1 unless a "# Nodes: N" comment declares a larger one.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := &Graph{}
	declared := -1
	maxID := int64(-1)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if n, ok := parseNodesComment(text); ok {
				declared = n
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", line, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", line, fields[1], err)
		}
		if int64(src) > maxID {
			maxID = int64(src)
		}
		if int64(dst) > maxID {
			maxID = int64(dst)
		}
		g.Edges = append(g.Edges, Edge{Src: VertexID(src), Dst: VertexID(dst)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.NumVertices = int(maxID + 1)
	if declared > g.NumVertices {
		g.NumVertices = declared
	}
	return g, nil
}

func parseNodesComment(text string) (int, bool) {
	fields := strings.Fields(text)
	for i := 0; i+1 < len(fields); i++ {
		if fields[i] == "Nodes:" {
			if n, err := strconv.Atoi(fields[i+1]); err == nil {
				return n, true
			}
		}
	}
	return 0, false
}

const binaryMagic = "PGX1"

// WriteBinary writes the compact binary representation.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.NumVertices))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(g.Edges)))
	binary.LittleEndian.PutUint64(hdr[12:], math.Float64bits(g.Alpha))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 8)
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Src))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Dst))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q, want %q", magic, binaryMagic)
	}
	hdr := make([]byte, 4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	g := &Graph{
		NumVertices: int(binary.LittleEndian.Uint32(hdr[0:])),
		Alpha:       math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:])),
	}
	numEdges := binary.LittleEndian.Uint64(hdr[4:])
	// Grow in bounded chunks rather than trusting the header count: a
	// corrupt header must produce a clean error, not a huge allocation.
	const chunk = 1 << 20
	prealloc := numEdges
	if prealloc > chunk {
		prealloc = chunk
	}
	g.Edges = make([]Edge, 0, prealloc)
	rec := make([]byte, 8)
	n := uint32(g.NumVertices)
	for i := uint64(0); i < numEdges; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d of %d: %w", i, numEdges, err)
		}
		src := binary.LittleEndian.Uint32(rec[0:])
		dst := binary.LittleEndian.Uint32(rec[4:])
		if src >= n || dst >= n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) outside %d vertices", i, src, dst, n)
		}
		g.Edges = append(g.Edges, Edge{Src: VertexID(src), Dst: VertexID(dst)})
	}
	return g, nil
}

// WriteFile writes the graph to path, selecting the format by extension:
// ".bin" for the compact binary format, ".adj" for adjacency lists, and the
// SNAP text edge list otherwise. A trailing ".gz" transparently compresses.
func WriteFile(path string, g *Graph) error {
	w, err := openWriter(path)
	if err != nil {
		return err
	}
	switch formatOf(path) {
	case "bin":
		err = WriteBinary(w, g)
	case "adj":
		err = WriteAdjacency(w, g)
	default:
		err = WriteText(w, g)
	}
	if err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadFile reads a graph from path, selecting the format by extension as in
// WriteFile (".gz" is transparently decompressed). The graph's Name is left
// empty for the caller to set.
func ReadFile(path string) (*Graph, error) {
	r, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	switch formatOf(path) {
	case "bin":
		return ReadBinary(r)
	case "adj":
		return ReadAdjacency(r)
	default:
		return ReadText(r)
	}
}
