package graph

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"proxygraph/internal/rng"
)

func weightedDiamond() *Graph {
	g := diamond()
	AttachWeights(g, 1, 10, 1)
	return g
}

func TestReverse(t *testing.T) {
	g := weightedDiamond()
	r := Reverse(g)
	if r.NumVertices != g.NumVertices || len(r.Edges) != len(g.Edges) {
		t.Fatal("reverse changed sizes")
	}
	for i, e := range g.Edges {
		if r.Edges[i].Src != e.Dst || r.Edges[i].Dst != e.Src {
			t.Fatalf("edge %d not reversed", i)
		}
		if r.Weights[i] != g.Weights[i] {
			t.Fatalf("edge %d weight lost", i)
		}
	}
	// Double reversal is the identity on edges.
	rr := Reverse(r)
	for i := range g.Edges {
		if rr.Edges[i] != g.Edges[i] {
			t.Fatal("double reverse not identity")
		}
	}
}

func TestUndirectedMaterialization(t *testing.T) {
	g := weightedDiamond()
	u := Undirected(g)
	if len(u.Edges) != 2*len(g.Edges) {
		t.Fatalf("undirected has %d edges, want %d", len(u.Edges), 2*len(g.Edges))
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// In-degree of the undirected graph equals total degree of the original.
	tot := g.TotalDegrees()
	in := u.InDegrees()
	for v := range tot {
		if in[v] != tot[v] {
			t.Fatalf("vertex %d: undirected in-degree %d != total degree %d", v, in[v], tot[v])
		}
	}
}

func TestSampleEdges(t *testing.T) {
	g := randomGraph(t, 20, 500, 20000)
	AttachWeights(g, 1, 5, 2)
	s, err := SampleEdges(g, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(s.Edges)) / float64(len(g.Edges))
	if math.Abs(frac-0.25) > 0.03 {
		t.Errorf("kept fraction %v, want ~0.25", frac)
	}
	if s.NumVertices != g.NumVertices {
		t.Error("sampling should keep the vertex set")
	}
	if len(s.Weights) != len(s.Edges) {
		t.Error("weights not carried through sampling")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every sampled edge exists in the original (it is a subset).
	set := map[Edge]bool{}
	for _, e := range g.Edges {
		set[e] = true
	}
	for _, e := range s.Edges {
		if !set[e] {
			t.Fatalf("sampled edge %v not in original", e)
		}
	}
}

func TestSampleEdgesValidation(t *testing.T) {
	g := diamond()
	for _, f := range []float64{0, -0.5, 1.5} {
		if _, err := SampleEdges(g, f, 1); err == nil {
			t.Errorf("fraction %v should error", f)
		}
	}
	full, err := SampleEdges(g, 1, 1)
	if err != nil || len(full.Edges) != len(g.Edges) {
		t.Error("fraction 1 should keep everything")
	}
}

func TestSampleChangesDegreeShape(t *testing.T) {
	// The motivating property: edge sampling thins neighborhoods, so the
	// sample's average degree drops while the vertex count stays — its
	// computational profile no longer matches the original.
	g := randomGraph(t, 21, 300, 9000)
	s, err := SampleEdges(g, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgDegree() > g.AvgDegree()*0.2 {
		t.Errorf("sample avg degree %v vs original %v: expected ~10x thinner", s.AvgDegree(), g.AvgDegree())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := randomGraph(t, 22, 100, 2000)
	sub, err := InducedSubgraph(g, 40)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices != 40 {
		t.Fatalf("induced vertices = %d", sub.NumVertices)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range sub.Edges {
		if e.Src >= 40 || e.Dst >= 40 {
			t.Fatalf("edge %v outside induced set", e)
		}
	}
	if _, err := InducedSubgraph(g, 0); err == nil {
		t.Error("zero keep should error")
	}
	if _, err := InducedSubgraph(g, 101); err == nil {
		t.Error("oversize keep should error")
	}
}

func TestAttachWeights(t *testing.T) {
	g := randomGraph(t, 23, 50, 400)
	if g.Weight(0) != 1 {
		t.Error("unweighted graphs default to weight 1")
	}
	AttachWeights(g, 2, 8, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range g.Edges {
		w := g.Weight(i)
		if w < 2 || w >= 8 {
			t.Fatalf("weight %v outside [2, 8)", w)
		}
	}
	// Deterministic.
	h := randomGraph(t, 23, 50, 400)
	AttachWeights(h, 2, 8, 7)
	for i := range g.Weights {
		if g.Weights[i] != h.Weights[i] {
			t.Fatal("weights not deterministic")
		}
	}
	// Swapped bounds are tolerated.
	AttachWeights(g, 8, 2, 7)
	for i := range g.Edges {
		if g.Weight(i) < 2 || g.Weight(i) >= 8 {
			t.Fatal("swapped bounds mishandled")
		}
	}
}

func TestValidateWeightsLength(t *testing.T) {
	g := diamond()
	g.Weights = []float32{1}
	if err := g.Validate(); err == nil {
		t.Error("mismatched weights length should fail validation")
	}
}

var _ = rng.New

func TestAdjacencyRoundTrip(t *testing.T) {
	g := randomGraph(t, 30, 200, 3000)
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d != %d", back.NumEdges(), g.NumEdges())
	}
	// The adjacency format groups by source, so compare sorted out-CSRs.
	a, b := g.BuildOutCSR(), back.BuildOutCSR()
	for v := 0; v < g.NumVertices; v++ {
		av, bv := a.Neighbors(VertexID(v)), b.Neighbors(VertexID(v))
		if len(av) != len(bv) {
			t.Fatalf("vertex %d: degree %d != %d", v, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("vertex %d neighbor %d differs", v, i)
			}
		}
	}
}

func TestAdjacencyRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"1\n",           // missing degree
		"1 x\n",         // bad degree
		"1 2 3\n",       // declared 2 neighbors, found 1
		"1 1 notanum\n", // bad neighbor
		"a 1 2\n",       // bad source
	} {
		if _, err := ReadAdjacency(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q should error", in)
		}
	}
}

func TestFileFormatsByExtension(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(t, 31, 100, 1200)
	for _, name := range []string{"g.txt", "g.bin", "g.adj", "g.txt.gz", "g.bin.gz", "g.adj.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.NumEdges() != g.NumEdges() {
			t.Errorf("%s: edges %d != %d", name, back.NumEdges(), g.NumEdges())
		}
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(t, 32, 500, 20000)
	plain := filepath.Join(dir, "g.txt")
	zipped := filepath.Join(dir, "g.txt.gz")
	if err := WriteFile(plain, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(zipped, g); err != nil {
		t.Fatal(err)
	}
	ps, _ := os.Stat(plain)
	zs, _ := os.Stat(zipped)
	if zs.Size() >= ps.Size() {
		t.Errorf("gzip file (%d) not smaller than plain (%d)", zs.Size(), ps.Size())
	}
}
