package graph

import (
	"fmt"
	"sort"
)

// Delta is a timestamped batch of edge mutations against a base graph. It is
// the unit of evolution for streaming/evolving-graph workloads: long-lived
// graphs drift between analyses, and re-analyzing an evolved version should
// cost work proportional to the batch, not the graph — incremental partition
// amendment (partition.Amender), content-key revalidation
// (workload.EvolveFingerprint) and delta-based re-execution (apps.Resume*)
// all consume this type.
//
// Semantics: Apply removes, for every entry of Deletes, the first remaining
// occurrence of that (Src, Dst) pair from the base edge list (so duplicate
// edges — which the partitioners deliberately co-locate — are deleted one
// occurrence at a time), compacts the survivors in stream order, and appends
// Inserts at the tail. Appending preserves the streaming partitioners' view
// of the world: an inserted edge is a continuation of the ingress stream,
// which is exactly the state Amend resumes from.
type Delta struct {
	// Time is the batch's logical timestamp. Apply requires it to be strictly
	// greater than zero so versions are orderable; it also salts nothing —
	// identity is content-based (see Fingerprint).
	Time uint64
	// Inserts are appended to the edge list in order.
	Inserts []Edge
	// Deletes each remove the first remaining occurrence of their (Src, Dst)
	// pair from the base edge list; a delete with no occurrence left errors.
	Deletes []Edge
	// InsertWeights optionally carries per-insert weights (len ==
	// len(Inserts)). Required when the base graph is weighted.
	InsertWeights []float32
	// DeleteWeights optionally disambiguates deletes (len == len(Deletes)):
	// when non-nil, each delete claims the first remaining occurrence of its
	// (Src, Dst, weight) triple instead of the bare pair — needed to undo an
	// insertion exactly when the same pair already exists at another weight
	// (Inverse sets this).
	DeleteWeights []float32
	// NumVertices, when non-zero, is the evolved graph's vertex count
	// (growing or shrinking the ID space). Zero keeps the base count. Apply
	// validates that every surviving and inserted edge fits the new space.
	NumVertices int
}

// Size returns the number of mutations in the batch.
func (d *Delta) Size() int { return len(d.Inserts) + len(d.Deletes) }

// vertexCount resolves the evolved graph's vertex count.
func (d *Delta) vertexCount(base *Graph) int {
	if d.NumVertices > 0 {
		return d.NumVertices
	}
	return base.NumVertices
}

// Validate checks the batch against its base graph: a positive timestamp,
// endpoints inside the evolved vertex space, no self-loops, and a weight
// column consistent with the base graph's.
func (d *Delta) Validate(base *Graph) error {
	if d.Time == 0 {
		return fmt.Errorf("delta: zero timestamp (versions must be orderable)")
	}
	if d.NumVertices < 0 {
		return fmt.Errorf("delta: negative vertex count %d", d.NumVertices)
	}
	n := VertexID(d.vertexCount(base))
	for i, e := range d.Inserts {
		if e.Src >= n || e.Dst >= n {
			return fmt.Errorf("delta: insert %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, n)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("delta: insert %d is a self-loop at vertex %d", i, e.Src)
		}
	}
	if d.InsertWeights != nil && len(d.InsertWeights) != len(d.Inserts) {
		return fmt.Errorf("delta: %d insert weights for %d inserts", len(d.InsertWeights), len(d.Inserts))
	}
	if d.DeleteWeights != nil && len(d.DeleteWeights) != len(d.Deletes) {
		return fmt.Errorf("delta: %d delete weights for %d deletes", len(d.DeleteWeights), len(d.Deletes))
	}
	if base.Weights != nil && len(d.Inserts) > 0 && d.InsertWeights == nil {
		return fmt.Errorf("delta: base graph %q is weighted, inserts need InsertWeights", base.Name)
	}
	return nil
}

// DeletedIndices resolves Deletes against the base edge list: for each delete
// the index of the first not-yet-claimed occurrence of its (Src, Dst) pair
// (or (Src, Dst, weight) triple when DeleteWeights is set), returned in
// ascending index order. It errors when any delete has no match left —
// deleting an absent edge is a versioning bug, not a no-op.
func (d *Delta) DeletedIndices(base *Graph) ([]int, error) {
	if len(d.Deletes) == 0 {
		return nil, nil
	}
	type occurrence struct {
		e Edge
		w float32
	}
	key := func(e Edge, w float32) occurrence {
		if d.DeleteWeights == nil {
			// Pair-only matching: collapse the weight dimension.
			return occurrence{e: e}
		}
		return occurrence{e: e, w: w}
	}
	want := make(map[occurrence]int, len(d.Deletes))
	for j, e := range d.Deletes {
		var w float32
		if d.DeleteWeights != nil {
			w = d.DeleteWeights[j]
		}
		want[key(e, w)]++
	}
	idx := make([]int, 0, len(d.Deletes))
	for i, e := range base.Edges {
		k := key(e, base.Weight(i))
		if want[k] > 0 {
			want[k]--
			idx = append(idx, i)
			if len(idx) == len(d.Deletes) {
				break
			}
		}
	}
	if len(idx) != len(d.Deletes) {
		for k, c := range want {
			if c > 0 {
				return nil, fmt.Errorf("delta: delete (%d->%d) has no remaining occurrence in graph %q", k.e.Src, k.e.Dst, base.Name)
			}
		}
	}
	return idx, nil
}

// Apply materializes the evolved graph: survivors in stream order, inserts at
// the tail, weights carried through. The base graph is not modified. The
// evolved graph's name carries the version timestamp so experiment tables can
// tell versions apart.
func (d *Delta) Apply(base *Graph) (*Graph, error) {
	if err := d.Validate(base); err != nil {
		return nil, err
	}
	deleted, err := d.DeletedIndices(base)
	if err != nil {
		return nil, err
	}
	n := d.vertexCount(base)

	kept := len(base.Edges) - len(deleted)
	edges := make([]Edge, 0, kept+len(d.Inserts))
	weighted := base.Weights != nil || d.InsertWeights != nil
	var weights []float32
	if weighted {
		weights = make([]float32, 0, kept+len(d.Inserts))
	}
	di := 0
	for i, e := range base.Edges {
		if di < len(deleted) && deleted[di] == i {
			di++
			continue
		}
		edges = append(edges, e)
		if weighted {
			weights = append(weights, base.Weight(i))
		}
	}
	for i, e := range d.Inserts {
		edges = append(edges, e)
		if weighted {
			w := float32(1)
			if d.InsertWeights != nil {
				w = d.InsertWeights[i]
			}
			weights = append(weights, w)
		}
	}

	evolved := &Graph{
		Name:        fmt.Sprintf("%s@t%d", base.Name, d.Time),
		NumVertices: n,
		Edges:       edges,
		Weights:     weights,
		Alpha:       base.Alpha,
	}
	if err := evolved.Validate(); err != nil {
		// Shrinking NumVertices below a surviving endpoint lands here.
		return nil, fmt.Errorf("delta: evolved graph invalid: %w", err)
	}
	return evolved, nil
}

// Inverse returns the batch that undoes this one against its base graph: the
// deleted edges re-inserted (with their original weights) and the inserts
// deleted, restoring the base vertex count. The inverse's deletes carry
// weights (DeleteWeights) so they claim exactly the inserted occurrences even
// when the same (Src, Dst) pair survives at another weight. Applying the
// inverse to the evolved graph yields a graph with exactly the base's edge
// multiset — the re-inserted edges land at the tail rather than their
// original stream positions, so the round trip is multiset- and
// fingerprint-exact (the content fingerprint is order-independent) but not
// order-exact.
func (d *Delta) Inverse(base *Graph) (*Delta, error) {
	deleted, err := d.DeletedIndices(base)
	if err != nil {
		return nil, err
	}
	inv := &Delta{
		Time:        d.Time + 1,
		Inserts:     make([]Edge, len(deleted)),
		Deletes:     append([]Edge(nil), d.Inserts...),
		NumVertices: base.NumVertices,
	}
	for i, bi := range deleted {
		inv.Inserts[i] = base.Edges[bi]
	}
	weighted := base.Weights != nil || d.InsertWeights != nil
	if weighted {
		// The evolved graph is weighted, so both columns are needed: weights
		// for the re-inserted edges and exact-match weights for the deletes.
		inv.InsertWeights = make([]float32, len(deleted))
		for i, bi := range deleted {
			inv.InsertWeights[i] = base.Weight(bi)
		}
		inv.DeleteWeights = make([]float32, len(d.Inserts))
		for i := range d.Inserts {
			if d.InsertWeights != nil {
				inv.DeleteWeights[i] = d.InsertWeights[i]
			} else {
				inv.DeleteWeights[i] = 1
			}
		}
	}
	return inv, nil
}

// Touched returns the sorted distinct vertices incident to the batch's
// mutations — the seed set delta-based re-execution activates.
func (d *Delta) Touched() []VertexID {
	seen := map[VertexID]bool{}
	for _, e := range d.Inserts {
		seen[e.Src], seen[e.Dst] = true, true
	}
	for _, e := range d.Deletes {
		seen[e.Src], seen[e.Dst] = true, true
	}
	out := make([]VertexID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
