package graph

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Adjacency format: one line per source vertex —
//
//	src degree neighbor1 neighbor2 ... neighborN
//
// the "adj" ingress format PowerGraph accepts alongside plain edge lists.
// SNAP distributes several datasets this way, and it compresses far better
// than edge lists because each source appears once.

// WriteAdjacency writes the graph in adjacency format. Vertices with no
// out-edges are omitted (their IDs are still covered by the header line).
func WriteAdjacency(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.NumVertices, len(g.Edges)); err != nil {
		return err
	}
	csr := g.BuildOutCSR()
	buf := make([]byte, 0, 256)
	for v := 0; v < g.NumVertices; v++ {
		neighbors := csr.Neighbors(VertexID(v))
		if len(neighbors) == 0 {
			continue
		}
		buf = buf[:0]
		buf = strconv.AppendUint(buf, uint64(v), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(len(neighbors)), 10)
		for _, u := range neighbors {
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, uint64(u), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAdjacency parses the adjacency format.
func ReadAdjacency(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	g := &Graph{}
	declared := -1
	maxID := int64(-1)
	note := func(id uint64) {
		if int64(id) > maxID {
			maxID = int64(id)
		}
	}
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if n, ok := parseNodesComment(text); ok {
				declared = n
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: adjacency line %d: want 'src degree ...', got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: adjacency line %d: bad source %q: %v", line, fields[0], err)
		}
		degree, err := strconv.Atoi(fields[1])
		if err != nil || degree < 0 {
			return nil, fmt.Errorf("graph: adjacency line %d: bad degree %q", line, fields[1])
		}
		if len(fields) != 2+degree {
			return nil, fmt.Errorf("graph: adjacency line %d: declared %d neighbors, found %d",
				line, degree, len(fields)-2)
		}
		note(src)
		for _, f := range fields[2:] {
			dst, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: adjacency line %d: bad neighbor %q: %v", line, f, err)
			}
			note(dst)
			g.Edges = append(g.Edges, Edge{Src: VertexID(src), Dst: VertexID(dst)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.NumVertices = int(maxID + 1)
	if declared > g.NumVertices {
		g.NumVertices = declared
	}
	return g, nil
}

// openReader opens path, transparently decompressing ".gz" files.
func openReader(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: opening gzip %s: %w", path, err)
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// openWriter creates path, transparently compressing ".gz" files.
func openWriter(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipWriteCloser{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipWriteCloser struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.zw.Write(p) }

func (g *gzipWriteCloser) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// formatOf classifies a path by extension, ignoring a trailing ".gz".
func formatOf(path string) string {
	base := strings.TrimSuffix(path, ".gz")
	switch {
	case strings.HasSuffix(base, ".bin"):
		return "bin"
	case strings.HasSuffix(base, ".adj"):
		return "adj"
	default:
		return "text"
	}
}
