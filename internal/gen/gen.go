// Package gen generates the graphs the paper evaluates on.
//
// It implements two families:
//
//  1. Synthetic power-law proxy graphs via Algorithm 1 of the paper —
//     sample each vertex's out-degree from a truncated power law through the
//     cumulative distribution ("multinomial(cdf)"), then materialize
//     neighbors with a random hash, skipping self-loops.
//
//  2. Emulators for the paper's four real-world SNAP graphs (Table II:
//     amazon, citation, social network, wiki). Real SNAP dumps are not
//     available offline, so each emulator matches the published |V|, |E| and
//     fitted α while adding the structural signature of its natural
//     counterpart (co-purchase locality and triangle closure, citation DAG
//     recency bias, social community blocks, wiki hub concentration). The
//     proxy-accuracy experiments (Fig 8) rely on these structural
//     differences: proxies share the degree envelope but not the structure,
//     so proxy CCRs are close to — yet not exactly — the "real" ones.
package gen

import (
	"fmt"

	"proxygraph/internal/graph"
	"proxygraph/internal/powerlaw"
	"proxygraph/internal/rng"
)

// Kind selects the structural family of a generated graph.
type Kind int

const (
	// KindPowerLaw is the pure synthetic proxy generator (Algorithm 1).
	KindPowerLaw Kind = iota
	// KindAmazon emulates the amazon co-purchase graph: strong ID locality
	// and triangle closure (products bought together cluster).
	KindAmazon
	// KindCitation emulates cit-Patents: edges point from newer to older
	// vertices with preferential attachment to highly cited ones.
	KindCitation
	// KindSocial emulates the LiveJournal social network: community blocks
	// with a power-law degree envelope.
	KindSocial
	// KindWiki emulates wiki-Talk: a tiny set of hub vertices receives a
	// large share of all edges.
	KindWiki
	// KindRMAT is a Kronecker/R-MAT generator (extension beyond the paper).
	KindRMAT
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindPowerLaw:
		return "powerlaw"
	case KindAmazon:
		return "amazon"
	case KindCitation:
		return "citation"
	case KindSocial:
		return "social"
	case KindWiki:
		return "wiki"
	case KindRMAT:
		return "rmat"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes a graph to generate: the Table II identity plus its kind.
type Spec struct {
	Name     string
	Vertices int64
	Edges    int64
	// Alpha is the declared power-law exponent; 0 means "fit from |V|,|E|".
	Alpha float64
	Kind  Kind
}

// TableII returns the seven graphs of the paper's Table II: four real-world
// graphs (emulated) and three synthetic proxies.
func TableII() []Spec {
	return append(RealGraphs(), ProxyGraphs()...)
}

// RealGraphs returns the four real-world graph specs from Table II.
func RealGraphs() []Spec {
	return []Spec{
		{Name: "amazon", Vertices: 403_394, Edges: 3_387_388, Kind: KindAmazon},
		{Name: "citation", Vertices: 3_774_768, Edges: 16_518_948, Kind: KindCitation},
		{Name: "social_network", Vertices: 4_847_571, Edges: 68_993_773, Kind: KindSocial},
		{Name: "wiki", Vertices: 2_394_385, Edges: 5_021_410, Kind: KindWiki},
	}
}

// ProxyGraphs returns the three synthetic proxy specs from Table II
// (N = 3.2M, α = 1.95 / 2.1 / 2.3). Their edge counts are what Algorithm 1
// produces for those exponents; the declared Table II values are targets.
func ProxyGraphs() []Spec {
	return []Spec{
		{Name: "SyntheticGraph_one", Vertices: 3_200_000, Edges: 42_011_862, Alpha: 1.95, Kind: KindPowerLaw},
		{Name: "SyntheticGraph_two", Vertices: 3_200_000, Edges: 15_962_953, Alpha: 2.1, Kind: KindPowerLaw},
		{Name: "SyntheticGraph_three", Vertices: 3_200_000, Edges: 7_061_709, Alpha: 2.3, Kind: KindPowerLaw},
	}
}

// Scale returns a copy of s with |V| and |E| divided by factor (minimum 1
// vertex/edge), preserving the average degree and therefore the fitted α.
// Experiments run at reduced scale by default; CCRs and speedups are ratios
// and the paper itself notes graph size "only affects the magnitude of
// execution time" (§II-A).
func (s Spec) Scale(factor int) Spec {
	if factor <= 1 {
		return s
	}
	out := s
	out.Vertices = max64(1, s.Vertices/int64(factor))
	out.Edges = max64(1, s.Edges/int64(factor))
	out.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Generate materializes the spec deterministically from seed.
func Generate(spec Spec, seed uint64) (*graph.Graph, error) {
	if spec.Vertices <= 1 {
		return nil, fmt.Errorf("gen: spec %q needs at least 2 vertices, got %d", spec.Name, spec.Vertices)
	}
	if spec.Kind == KindRMAT {
		return rmat(spec, seed)
	}
	alpha := spec.Alpha
	if alpha == 0 {
		fitted, err := powerlaw.FitAlphaForGraph(spec.Vertices, spec.Edges)
		if err != nil {
			return nil, fmt.Errorf("gen: fitting alpha for %q: %w", spec.Name, err)
		}
		alpha = fitted
	}

	n := int(spec.Vertices)
	maxDeg := n - 1
	if maxDeg > powerlaw.DefaultMaxDegree {
		maxDeg = powerlaw.DefaultMaxDegree
	}
	// The co-purchase graph has no celebrity hubs: SNAP's amazon dump tops
	// out at a few hundred neighbors. Capping the degree support is part of
	// its structural signature (and shifts its CCR away from the proxies').
	if spec.Kind == KindAmazon && maxDeg > 512 {
		maxDeg = 512
	}
	dist, err := powerlaw.NewDist(alpha, maxDeg)
	if err != nil {
		return nil, fmt.Errorf("gen: %q: %w", spec.Name, err)
	}

	src := rng.New(seed ^ rng.HashString(spec.Name))
	degrees := sampleDegrees(dist, n, spec.Edges, src)

	g := &graph.Graph{
		Name:        spec.Name,
		NumVertices: n,
		Alpha:       alpha,
	}
	total := 0
	for _, d := range degrees {
		total += int(d)
	}
	g.Edges = make([]graph.Edge, 0, total)

	emit := neighborChooser(spec.Kind, n, src)
	for u := 0; u < n; u++ {
		for k := int32(0); k < degrees[u]; k++ {
			v := emit(graph.VertexID(u), k)
			if v == graph.VertexID(u) {
				// Omit self-loops, as Algorithm 1 prescribes; re-aim once so
				// the edge count stays near target.
				v = (v + 1 + graph.VertexID(src.Uint64n(uint64(n-1)))) % graph.VertexID(n)
				if v == graph.VertexID(u) {
					continue
				}
			}
			g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(u), Dst: v})
		}
	}
	return g, nil
}

// sampleDegrees draws per-vertex out-degrees from dist, then rescales them so
// the expected total matches targetEdges (if nonzero). The rescaling keeps
// the distribution shape: each degree is multiplied by the global ratio with
// stochastic rounding.
func sampleDegrees(dist *powerlaw.Dist, n int, targetEdges int64, src *rng.Source) []int32 {
	degrees := make([]int32, n)
	var total int64
	for i := range degrees {
		d := dist.Quantile(src.Float64())
		degrees[i] = int32(d)
		total += int64(d)
	}
	if targetEdges <= 0 || total == 0 {
		return degrees
	}
	ratio := float64(targetEdges) / float64(total)
	if ratio > 0.99 && ratio < 1.01 {
		return degrees
	}
	for i, d := range degrees {
		scaled := float64(d) * ratio
		fl := int32(scaled)
		if src.Float64() < scaled-float64(fl) {
			fl++
		}
		degrees[i] = fl
	}
	return degrees
}

// neighborChooser returns the per-kind neighbor function: given source u and
// its k-th outgoing slot, pick the target vertex.
func neighborChooser(kind Kind, n int, src *rng.Source) func(u graph.VertexID, k int32) graph.VertexID {
	un := uint64(n)
	uniform := func(u graph.VertexID, k int32) graph.VertexID {
		// Algorithm 1: v = (u + hash) mod N with a fresh hash per slot.
		return graph.VertexID((uint64(u) + rng.Hash2(uint64(u), uint64(k)^src.Uint64())) % un)
	}
	switch kind {
	case KindPowerLaw, KindRMAT:
		return uniform
	case KindAmazon:
		// Co-purchase locality: 75% of edges land in a tight ID window
		// around u (products in the same category have adjacent IDs in
		// SNAP's amazon dumps), which yields high clustering/triangles.
		return func(u graph.VertexID, k int32) graph.VertexID {
			if src.Float64() < 0.75 {
				window := 1 + src.Uint64n(64) // geometric-ish local hop
				if src.Uint64()&1 == 0 {
					return graph.VertexID((uint64(u) + window) % un)
				}
				return graph.VertexID((uint64(u) + un - window%un) % un)
			}
			return uniform(u, k)
		}
	case KindCitation:
		// Patents cite older patents: target ID below source, biased toward
		// heavily cited (low-ID, early) vertices by taking the min of two
		// uniform draws.
		return func(u graph.VertexID, k int32) graph.VertexID {
			if u == 0 {
				return uniform(u, k)
			}
			a := src.Uint64n(uint64(u))
			b := src.Uint64n(uint64(u))
			if b < a {
				a = b
			}
			return graph.VertexID(a)
		}
	case KindSocial:
		// Community blocks: 55% of edges stay inside the source's block.
		const blockSize = 1024
		blocks := uint64(n)/blockSize + 1
		return func(u graph.VertexID, k int32) graph.VertexID {
			if src.Float64() < 0.55 {
				block := uint64(u) / blockSize
				v := block*blockSize + src.Uint64n(blockSize)
				if v >= un {
					v %= un
				}
				return graph.VertexID(v)
			}
			// Inter-community edges prefer other block "leaders".
			b := src.Uint64n(blocks)
			v := b * blockSize
			if v >= un {
				v %= un
			}
			return graph.VertexID(v)
		}
	case KindWiki:
		// Talk pages: ~0.05% of vertices are admins/hubs receiving 40% of
		// all edges.
		hubs := un / 2000
		if hubs == 0 {
			hubs = 1
		}
		return func(u graph.VertexID, k int32) graph.VertexID {
			if src.Float64() < 0.4 {
				return graph.VertexID(src.Uint64n(hubs))
			}
			return uniform(u, k)
		}
	default:
		return uniform
	}
}

// rmat generates an R-MAT graph with the standard (a,b,c,d) =
// (0.57, 0.19, 0.19, 0.05) partition probabilities.
func rmat(spec Spec, seed uint64) (*graph.Graph, error) {
	n := int(spec.Vertices)
	levels := 0
	for 1<<levels < n {
		levels++
	}
	size := 1 << levels
	src := rng.New(seed ^ rng.HashString(spec.Name) ^ 0x9e37)
	g := &graph.Graph{Name: spec.Name, NumVertices: n}
	g.Edges = make([]graph.Edge, 0, spec.Edges)
	const a, b, c = 0.57, 0.19, 0.19
	for int64(len(g.Edges)) < spec.Edges {
		row, col, step := 0, 0, size/2
		for step >= 1 {
			r := src.Float64()
			switch {
			case r < a: // top-left
			case r < a+b:
				col += step
			case r < a+b+c:
				row += step
			default:
				row += step
				col += step
			}
			step /= 2
		}
		if row == col || row >= n || col >= n {
			continue
		}
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(row), Dst: graph.VertexID(col)})
	}
	return g, nil
}
