package gen

import (
	"fmt"

	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// FromDegreeSequence generates a graph whose out-degree sequence matches the
// given one (the configuration model, with targets drawn by random hash as
// in Algorithm 1). Combined with powerlaw.FitAlphaFromHistogram this closes
// the loop for custom proxies: measure an environment's typical degree
// histogram once, then synthesize proxy graphs matching it exactly instead
// of assuming a clean power law.
//
// Self-loops are re-aimed once and dropped if they persist, so the produced
// degrees may undershoot by a handful on adversarial sequences; Validate
// always passes.
func FromDegreeSequence(name string, degrees []int32, seed uint64) (*graph.Graph, error) {
	n := len(degrees)
	if n < 2 {
		return nil, fmt.Errorf("gen: degree sequence needs at least 2 vertices, got %d", n)
	}
	total := 0
	for v, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("gen: vertex %d has negative degree %d", v, d)
		}
		if int(d) > n-1 {
			return nil, fmt.Errorf("gen: vertex %d degree %d exceeds n-1 = %d", v, d, n-1)
		}
		total += int(d)
	}
	src := rng.New(seed ^ rng.HashString(name))
	g := &graph.Graph{Name: name, NumVertices: n}
	g.Edges = make([]graph.Edge, 0, total)
	un := uint64(n)
	for u := 0; u < n; u++ {
		for k := int32(0); k < degrees[u]; k++ {
			v := graph.VertexID((uint64(u) + rng.Hash2(uint64(u), uint64(k)^src.Uint64())) % un)
			if v == graph.VertexID(u) {
				v = (v + 1 + graph.VertexID(src.Uint64n(un-1))) % graph.VertexID(n)
				if v == graph.VertexID(u) {
					continue
				}
			}
			g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(u), Dst: v})
		}
	}
	return g, nil
}

// DegreeSequenceOf extracts a graph's out-degree sequence, the input
// FromDegreeSequence consumes to clone a workload's shape.
func DegreeSequenceOf(g *graph.Graph) []int32 {
	return g.OutDegrees()
}
