package gen

import (
	"fmt"

	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// DeltaSpec describes one random evolution step of a graph: how many edges
// churn and how they split between deletions of existing edges and fresh
// insertions. Counts are clamped to what the base graph can give up.
type DeltaSpec struct {
	// Inserts and Deletes are the mutation counts.
	Inserts, Deletes int
	// Time is the batch's logical timestamp (must be > 0).
	Time uint64
}

// RandomDelta draws a deterministic mutation batch against base: Deletes
// distinct existing edge occurrences chosen uniformly, and Inserts fresh
// non-self-loop edges whose endpoints follow the same skew as the base graph
// (a uniformly chosen existing edge's source, rewired to a uniform target) —
// evolution that preferentially touches hubs, as real graph churn does.
// Weighted bases get unit-weight inserts.
func RandomDelta(base *graph.Graph, spec DeltaSpec, seed uint64) (*graph.Delta, error) {
	if spec.Time == 0 {
		return nil, fmt.Errorf("gen: delta needs a positive timestamp")
	}
	if spec.Inserts < 0 || spec.Deletes < 0 {
		return nil, fmt.Errorf("gen: negative mutation counts (%d inserts, %d deletes)", spec.Inserts, spec.Deletes)
	}
	if base.NumVertices < 2 {
		return nil, fmt.Errorf("gen: base graph %q too small to evolve", base.Name)
	}
	src := rng.New(rng.Hash3(0x64656c74 /* "delt" */, seed, spec.Time))
	d := &graph.Delta{Time: spec.Time}

	nDel := spec.Deletes
	if nDel > len(base.Edges) {
		nDel = len(base.Edges)
	}
	if nDel > 0 {
		// Distinct occurrence indices via a partial Fisher–Yates over the
		// edge index space.
		idx := src.Perm(len(base.Edges))[:nDel]
		d.Deletes = make([]graph.Edge, nDel)
		for i, ei := range idx {
			d.Deletes[i] = base.Edges[ei]
		}
	}

	if spec.Inserts > 0 {
		d.Inserts = make([]graph.Edge, 0, spec.Inserts)
		for len(d.Inserts) < spec.Inserts {
			var u graph.VertexID
			if len(base.Edges) > 0 {
				u = base.Edges[src.Intn(len(base.Edges))].Src
			} else {
				u = graph.VertexID(src.Intn(base.NumVertices))
			}
			v := graph.VertexID(src.Intn(base.NumVertices))
			if u == v {
				continue
			}
			d.Inserts = append(d.Inserts, graph.Edge{Src: u, Dst: v})
		}
		if base.Weights != nil {
			d.InsertWeights = make([]float32, len(d.Inserts))
			for i := range d.InsertWeights {
				d.InsertWeights[i] = 1
			}
		}
	}
	return d, nil
}
