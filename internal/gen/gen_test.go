package gen

import (
	"math"
	"testing"

	"proxygraph/internal/graph"
	"proxygraph/internal/powerlaw"
)

func mustGen(t *testing.T, spec Spec, seed uint64) *graph.Graph {
	t.Helper()
	g, err := Generate(spec, seed)
	if err != nil {
		t.Fatalf("Generate(%q): %v", spec.Name, err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	return g
}

func TestTableIICatalog(t *testing.T) {
	specs := TableII()
	if len(specs) != 7 {
		t.Fatalf("TableII has %d entries, want 7", len(specs))
	}
	if len(RealGraphs()) != 4 || len(ProxyGraphs()) != 3 {
		t.Fatal("catalog split wrong")
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		names[s.Name] = true
		if s.Vertices <= 0 || s.Edges <= 0 {
			t.Errorf("%q: non-positive sizes", s.Name)
		}
	}
	// Paper: proxy alphas are 1.95, 2.1, 2.3.
	proxies := ProxyGraphs()
	wantAlpha := []float64{1.95, 2.1, 2.3}
	for i, p := range proxies {
		if p.Alpha != wantAlpha[i] {
			t.Errorf("proxy %d alpha = %v, want %v", i, p.Alpha, wantAlpha[i])
		}
	}
}

func TestScaleSpec(t *testing.T) {
	s := Spec{Name: "x", Vertices: 1000, Edges: 8000}
	scaled := s.Scale(10)
	if scaled.Vertices != 100 || scaled.Edges != 800 {
		t.Errorf("scaled = %+v", scaled)
	}
	// Average degree preserved.
	if scaled.Edges/scaled.Vertices != s.Edges/s.Vertices {
		t.Error("scale changed average degree")
	}
	if same := s.Scale(1); same != s {
		t.Error("Scale(1) should be identity")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "det", Vertices: 5000, Edges: 25000, Kind: KindPowerLaw, Alpha: 2.1}
	a := mustGen(t, spec, 42)
	b := mustGen(t, spec, 42)
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	spec := Spec{Name: "seeds", Vertices: 5000, Edges: 25000, Kind: KindPowerLaw, Alpha: 2.1}
	a := mustGen(t, spec, 1)
	b := mustGen(t, spec, 2)
	same := 0
	n := len(a.Edges)
	if len(b.Edges) < n {
		n = len(b.Edges)
	}
	for i := 0; i < n; i++ {
		if a.Edges[i] == b.Edges[i] {
			same++
		}
	}
	if float64(same) > 0.01*float64(n) {
		t.Errorf("%d/%d identical edges across different seeds", same, n)
	}
}

func TestEdgeCountNearTarget(t *testing.T) {
	for _, kind := range []Kind{KindPowerLaw, KindAmazon, KindCitation, KindSocial, KindWiki} {
		spec := Spec{Name: "target-" + kind.String(), Vertices: 20000, Edges: 120000, Kind: kind}
		g := mustGen(t, spec, 7)
		got := float64(g.NumEdges())
		want := float64(spec.Edges)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%v: edges = %v, want within 10%% of %v", kind, got, want)
		}
	}
}

func TestNoSelfLoops(t *testing.T) {
	for _, kind := range []Kind{KindPowerLaw, KindAmazon, KindCitation, KindSocial, KindWiki, KindRMAT} {
		spec := Spec{Name: "loops-" + kind.String(), Vertices: 3000, Edges: 15000, Kind: kind}
		g := mustGen(t, spec, 11)
		for _, e := range g.Edges {
			if e.Src == e.Dst {
				t.Fatalf("%v: self loop at %d", kind, e.Src)
			}
		}
	}
}

func TestPowerLawDegreeDistribution(t *testing.T) {
	// The generated out-degree distribution must be heavy-tailed: the
	// fitted alpha from |V|,|E| should round-trip, and low degrees must
	// dominate.
	spec := Spec{Name: "dist", Vertices: 50000, Edges: 0, Kind: KindPowerLaw, Alpha: 2.1}
	g := mustGen(t, spec, 13)
	deg, count := graph.DegreeHistogram(g.OutDegrees())
	// count(1) > count(2) > count(4) in a power law.
	counts := map[int]int64{}
	for i, d := range deg {
		counts[d] = count[i]
	}
	if !(counts[1] > counts[2] && counts[2] > counts[4]) {
		t.Errorf("degree counts not heavy-tailed: 1:%d 2:%d 4:%d", counts[1], counts[2], counts[4])
	}
	// Mean degree should match the analytic model within 15%.
	got := g.AvgDegree()
	want := powerlaw.MeanDegree(2.1, g.NumVertices-1)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("avg degree %v, analytic %v", got, want)
	}
}

func TestAlphaRoundTripThroughGenerator(t *testing.T) {
	// Generate with declared alpha, fit alpha back from |V|,|E| — the core
	// loop of Section III-A3.
	for _, alpha := range []float64{1.95, 2.1, 2.3} {
		spec := Spec{Name: "rt", Vertices: 100000, Edges: 0, Kind: KindPowerLaw, Alpha: alpha}
		g := mustGen(t, spec, 17)
		fitted, err := powerlaw.FitAlpha(g.AvgDegree(), powerlaw.FitOptions{MaxDegree: g.NumVertices - 1})
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if math.Abs(fitted-alpha) > 0.12 {
			t.Errorf("alpha=%v: round-trip fitted %v", alpha, fitted)
		}
	}
}

func TestCitationIsAcyclicByConstruction(t *testing.T) {
	spec := Spec{Name: "cit", Vertices: 5000, Edges: 20000, Kind: KindCitation}
	g := mustGen(t, spec, 19)
	// Almost all edges must point from newer (higher ID) to older; the
	// uniform fallback for vertex 0 may add a handful of exceptions.
	violations := 0
	for _, e := range g.Edges {
		if e.Dst >= e.Src {
			violations++
		}
	}
	if float64(violations) > 0.01*float64(len(g.Edges)) {
		t.Errorf("%d/%d edges not newer->older", violations, len(g.Edges))
	}
}

func TestWikiHasHubs(t *testing.T) {
	spec := Spec{Name: "wk", Vertices: 20000, Edges: 60000, Kind: KindWiki}
	g := mustGen(t, spec, 23)
	in := g.InDegrees()
	// Hub vertices (first n/2000 IDs) should absorb roughly 40% of edges.
	hubs := len(in) / 2000
	if hubs == 0 {
		hubs = 1
	}
	hubIn := int64(0)
	for v := 0; v < hubs; v++ {
		hubIn += int64(in[v])
	}
	frac := float64(hubIn) / float64(len(g.Edges))
	if frac < 0.25 || frac > 0.6 {
		t.Errorf("hub in-edge fraction = %v, want ~0.4", frac)
	}
}

func TestAmazonHasMoreTrianglesThanProxy(t *testing.T) {
	// The structural point of the emulators: same size, different shape.
	// Amazon's locality must produce more triangles than a pure power law
	// of identical |V|,|E|.
	size := Spec{Vertices: 20000, Edges: 120000}
	am := mustGen(t, Spec{Name: "am", Vertices: size.Vertices, Edges: size.Edges, Kind: KindAmazon}, 29)
	pl := mustGen(t, Spec{Name: "pl", Vertices: size.Vertices, Edges: size.Edges, Kind: KindPowerLaw}, 29)
	if ta, tp := countTriangles(am), countTriangles(pl); ta <= tp {
		t.Errorf("amazon triangles %d <= proxy triangles %d", ta, tp)
	}
}

// countTriangles is a reference O(Σ min-degree) triangle counter used only in
// tests (the real implementation lives in internal/apps).
func countTriangles(g *graph.Graph) int64 {
	csr := g.BuildUndirectedCSR()
	var total int64
	for _, e := range g.Edges {
		total += int64(graph.IntersectionSize(csr.Neighbors(e.Src), csr.Neighbors(e.Dst)))
	}
	return total / 3
}

func TestSocialCommunityStructure(t *testing.T) {
	spec := Spec{Name: "soc", Vertices: 10240, Edges: 80000, Kind: KindSocial}
	g := mustGen(t, spec, 31)
	intra := 0
	for _, e := range g.Edges {
		if e.Src/1024 == e.Dst/1024 {
			intra++
		}
	}
	frac := float64(intra) / float64(len(g.Edges))
	if frac < 0.4 {
		t.Errorf("intra-community fraction = %v, want >= 0.4", frac)
	}
}

func TestRMATGenerates(t *testing.T) {
	spec := Spec{Name: "rmat", Vertices: 4096, Edges: 20000, Kind: KindRMAT}
	g := mustGen(t, spec, 37)
	if int64(g.NumEdges()) != spec.Edges {
		t.Errorf("rmat edges = %d, want exactly %d", g.NumEdges(), spec.Edges)
	}
	// R-MAT should be skewed: max degree far above average.
	if g.MaxDegree() < 5*int(math.Ceil(2*g.AvgDegree())) {
		t.Errorf("rmat max degree %d not skewed (avg %.1f)", g.MaxDegree(), g.AvgDegree())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Name: "tiny", Vertices: 1, Edges: 5}, 1); err == nil {
		t.Error("expected error for 1-vertex spec")
	}
	if _, err := Generate(Spec{Name: "bad-alpha", Vertices: 100, Edges: 200, Alpha: -3}, 1); err == nil {
		t.Error("expected error for negative alpha")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindPowerLaw: "powerlaw", KindAmazon: "amazon", KindCitation: "citation",
		KindSocial: "social", KindWiki: "wiki", KindRMAT: "rmat", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestScaledTableIIGeneratesQuickly(t *testing.T) {
	// The default experiment scale must generate all seven graphs without
	// trouble. Use a heavy scale divisor in unit tests.
	for _, spec := range TableII() {
		g := mustGen(t, spec.Scale(256), 41)
		if g.NumVertices == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", spec.Name)
		}
		avgWant := float64(spec.Edges) / float64(spec.Vertices)
		if math.Abs(g.AvgDegree()-avgWant)/avgWant > 0.25 {
			t.Errorf("%s: avg degree %.2f vs table %.2f", spec.Name, g.AvgDegree(), avgWant)
		}
	}
}

func BenchmarkGeneratePowerLaw(b *testing.B) {
	spec := Spec{Name: "bench", Vertices: 100000, Edges: 600000, Kind: KindPowerLaw, Alpha: 2.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFromDegreeSequenceMatchesDegrees(t *testing.T) {
	// Clone a power-law graph's degree shape through the configuration model.
	orig := mustGen(t, Spec{Name: "shape", Vertices: 5000, Edges: 30000, Kind: KindPowerLaw}, 51)
	seq := DegreeSequenceOf(orig)
	clone, err := FromDegreeSequence("clone", seq, 52)
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.Validate(); err != nil {
		t.Fatal(err)
	}
	got := clone.OutDegrees()
	mismatched := 0
	for v := range seq {
		if got[v] != seq[v] {
			mismatched++
		}
	}
	// Self-loop drops may lose a handful of edges.
	if float64(mismatched) > 0.01*float64(len(seq)) {
		t.Errorf("%d/%d vertices deviate from the requested degrees", mismatched, len(seq))
	}
	if math.Abs(float64(clone.NumEdges()-orig.NumEdges())) > 0.01*float64(orig.NumEdges()) {
		t.Errorf("edge counts diverge: %d vs %d", clone.NumEdges(), orig.NumEdges())
	}
}

func TestFromDegreeSequenceValidation(t *testing.T) {
	if _, err := FromDegreeSequence("x", []int32{1}, 1); err == nil {
		t.Error("single vertex should error")
	}
	if _, err := FromDegreeSequence("x", []int32{1, -1}, 1); err == nil {
		t.Error("negative degree should error")
	}
	if _, err := FromDegreeSequence("x", []int32{5, 1}, 1); err == nil {
		t.Error("degree exceeding n-1 should error")
	}
}

func TestFromDegreeSequenceDeterministic(t *testing.T) {
	seq := []int32{3, 2, 1, 0, 4, 2, 2, 1}
	a, err := FromDegreeSequence("det", seq, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromDegreeSequence("det", seq, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}
