package trace

import "strconv"

// frontierBuckets bounds the frontier-size histogram: decades up to a million
// active vertices cover every graph in the repository.
var frontierBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6}

// queueWaitBuckets covers queue waits from sub-millisecond dispatch on an
// idle service to tens of seconds under sustained overload.
var queueWaitBuckets = []float64{1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 30}

// Observer is a Collector that folds the event stream into a Registry. All
// metric names carry the proxygraph_ prefix; per-machine series are labelled
// machine="<index>". Attach it live via engine.Options.Trace, or replay a
// Recorder through Observe after the run.
type Observer struct {
	reg *Registry
}

// NewObserver returns an observer populating reg.
func NewObserver(reg *Registry) *Observer { return &Observer{reg: reg} }

// Observe replays a recorded event stream into reg.
func Observe(reg *Registry, events []Event) {
	o := NewObserver(reg)
	for _, e := range events {
		o.Event(e)
	}
}

// Event implements Collector.
func (o *Observer) Event(e Event) {
	r := o.reg
	switch e.Kind {
	case KindStepBegin:
		r.Histogram("proxygraph_frontier_size", "Active vertices driving each superstep.",
			frontierBuckets).Observe(float64(e.Frontier))
	case KindMachineStep:
		machine := strconv.Itoa(e.Machine)
		phase := func(name string, seconds float64) {
			r.Counter("proxygraph_machine_phase_seconds_total",
				"Per-machine simulated time attributed to each execution phase.",
				"machine", machine, "phase", name).Add(seconds)
		}
		phase("step", e.Seconds)
		phase("gather", e.GatherSeconds)
		phase("apply", e.ApplySeconds)
		phase("book", e.BookSeconds)
		phase("comm", e.CommSeconds)
		count := func(name, help string, v float64) {
			r.Counter(name, help, "machine", machine).Add(v)
		}
		count("proxygraph_machine_gathers_total", "Edge gathers charged per machine.", e.Gathers)
		count("proxygraph_machine_applies_total", "Vertex applies charged per machine.", e.Applies)
		count("proxygraph_machine_partials_out_total", "Gather partials sent to remote masters per machine.", e.PartialsOut)
		count("proxygraph_machine_updates_out_total", "Mirror value updates sent per machine.", e.UpdatesOut)
	case KindStepEnd:
		r.Counter("proxygraph_steps_total", "Supersteps (sync) and rounds (async) executed.",
			"kind", e.Label).Inc()
		r.Counter("proxygraph_barrier_seconds_total",
			"Simulated makespan advanced at superstep barriers.", "kind", e.Label).Add(e.Seconds)
	case KindStall:
		r.Counter("proxygraph_stalls_total", "Full-cluster stalls by kind.", "kind", e.Label).Inc()
		r.Counter("proxygraph_stall_seconds_total", "Simulated time lost to full-cluster stalls.",
			"kind", e.Label).Add(e.Seconds)
	case KindFault:
		r.Counter("proxygraph_faults_total", "Supersteps run under an injected perturbation.",
			"kind", e.Label).Inc()
	case KindCheckpoint:
		r.Counter("proxygraph_checkpoints_total", "Superstep checkpoints written.").Inc()
		r.Counter("proxygraph_checkpoint_bytes_total", "Encoded bytes of checkpoints written.").
			Add(float64(e.Bytes))
	case KindCrash:
		r.Counter("proxygraph_crashes_total", "Permanent machine failures fired.").Inc()
	case KindRecovery:
		r.Counter("proxygraph_recoveries_total", "Crash recoveries performed.", "policy", e.Label).Inc()
		r.Counter("proxygraph_recovery_seconds_total", "Simulated time charged to crash recovery.",
			"policy", e.Label).Add(e.Seconds)
		r.Counter("proxygraph_recovery_moved_edges_total",
			"Edges re-shipped to survivors during recovery.", "policy", e.Label).Add(float64(e.Moved))
	case KindRebalance:
		r.Counter("proxygraph_rebalances_total", "Dynamic rebalancing migrations.").Inc()
		r.Counter("proxygraph_rebalance_moved_edges_total",
			"Edges migrated by dynamic rebalancing.").Add(float64(e.Moved))
	case KindIngress:
		r.Counter("proxygraph_ingress_total", "Session jobs by placement-cache outcome.",
			"result", e.Label).Inc()
		r.Counter("proxygraph_ingress_seconds_total",
			"Simulated ingress makespan charged to session jobs.").Add(e.Seconds)
	case KindAdmit:
		r.Counter("proxygraph_admissions_total", "Job-service submissions by admission verdict.",
			"verdict", e.Label).Inc()
	case KindQueue:
		r.Histogram("proxygraph_queue_wait_seconds", "Time jobs waited in the service queue before dispatch.",
			queueWaitBuckets).Observe(e.Seconds)
	case KindRetry:
		r.Counter("proxygraph_retries_total", "Failed job attempts rescheduled with backoff.").Inc()
		r.Counter("proxygraph_backoff_seconds_total", "Backoff delay accumulated across retries.").
			Add(e.Seconds)
	case KindShed:
		r.Counter("proxygraph_shed_total", "Queued jobs evicted without running, by reason.",
			"reason", e.Label).Inc()
	case KindBreaker:
		r.Counter("proxygraph_breaker_transitions_total", "Circuit-breaker state transitions.",
			"transition", e.Label).Inc()
	case KindJournal:
		r.Counter("proxygraph_journal_events_total", "Write-ahead journal activity by kind.",
			"kind", e.Label).Inc()
	case KindDegraded:
		r.Counter("proxygraph_degraded_total", "Transitions into degraded (shedding) mode.",
			"cause", e.Label).Inc()
		r.Gauge("proxygraph_degraded", "1 while the job service is in degraded mode.").Set(1)
	}
}
