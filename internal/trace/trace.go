// Package trace is the simulator's structured observability layer: engines
// emit typed execution events into a Collector, and this package turns the
// stream into Chrome trace JSON (chrome.go), Prometheus text exposition
// (registry.go, observer.go) or a straggler summary (summary.go).
//
// The event stream is part of the engine's determinism contract: for the same
// program, placement, cluster and options, RunSyncReference, RunSync and
// RunSyncParallel emit identical event sequences — every quantity in an Event
// is one the equivalence suites already pin bit-identically across engines
// (step counters, per-machine charged times, frontier sizes, fault protocol
// decisions). The differential test in internal/apps locks this down.
//
// The package depends only on the standard library so every layer of the
// simulator can import it without cycles.
package trace

import "sync"

// Kind discriminates event types.
type Kind uint8

const (
	// KindStepBegin opens a superstep (or async round): Step, Frontier and
	// Label ("sync" or "async") are set.
	KindStepBegin Kind = iota
	// KindMachineStep reports one machine's charged time for the step:
	// Machine, Seconds (the max of compute and comm the accountant charged),
	// the per-phase attribution (GatherSeconds/ApplySeconds/BookSeconds and
	// the overlapped CommSeconds) and the raw step counters.
	KindMachineStep
	// KindStepEnd closes the step; for sync steps Seconds is the barrier time
	// (the slowest machine) by which the makespan advanced.
	KindStepEnd
	// KindStall is a full-cluster pause (Label: "migrate", "checkpoint",
	// "recover") of Seconds.
	KindStall
	// KindFault reports that the fault injector perturbed the cluster for
	// this step (straggler throttling or network degradation).
	KindFault
	// KindCheckpoint is a superstep checkpoint write: Step is the superstep
	// the checkpoint resumes at, Bytes its encoded footprint, Seconds the
	// storage stall charged for it.
	KindCheckpoint
	// KindCrash is a permanent machine failure at the barrier ending Step.
	KindCrash
	// KindRecovery reports the recovery decision after a crash: Label is
	// "checkpoint" or "restart", Resume the superstep execution rolls back
	// to, Moved the edges re-shipped to survivors, Seconds the stall charged.
	KindRecovery
	// KindRebalance is a dynamic rebalancing migration: Moved edges changed
	// machines (the migration stall follows as a KindStall "migrate" event).
	KindRebalance
	// KindIngress reports a job's partitioning/finalization outcome in a
	// workload session: Label is "hit" (placement served from the session's
	// placement cache) or "miss" (ingress ran), Seconds the simulated ingress
	// makespan charged to the session clock (zero for hits, and for sessions
	// that do not charge ingress).
	KindIngress
	// KindAdmit is the job service's admission verdict for one submission:
	// Step is the job id, Label one of "admit", "reject-overload",
	// "reject-breaker" or "reject-budget".
	KindAdmit
	// KindQueue reports a job leaving the service queue for a worker: Step is
	// the job id, Label the tenant, Seconds the time it waited since its last
	// enqueue (wall seconds in the live service, simulated seconds in a
	// replay).
	KindQueue
	// KindRetry is a failed attempt being rescheduled: Step is the job id,
	// Resume the attempt number that failed (1-based), Label the tenant,
	// Seconds the capped jittered backoff before the job becomes runnable.
	KindRetry
	// KindShed is a job evicted from the queue without running: Step is the
	// job id, Label the reason ("priority" for load shedding in favour of a
	// higher-priority arrival, "deadline" for jobs whose deadline expired
	// while queued).
	KindShed
	// KindBreaker is a circuit-breaker transition for one tenant: Label is
	// "trip", "half-open" or "close".
	KindBreaker
	// KindJournal is write-ahead journal activity in the job service: Label
	// is a record kind ("submit", "admit", "start", "retry", "complete",
	// "fail", "shed", "budget-charge") for appends, "error" for a failed
	// write, or "recover" for the startup replay (Step then carries the
	// number of records replayed).
	KindJournal
	// KindDegraded marks the service flipping into degraded (read-only /
	// shedding) mode after a journal write failure: Label names the cause.
	KindDegraded
)

var kindNames = [...]string{
	KindStepBegin:   "step-begin",
	KindMachineStep: "machine-step",
	KindStepEnd:     "step-end",
	KindStall:       "stall",
	KindFault:       "fault",
	KindCheckpoint:  "checkpoint",
	KindCrash:       "crash",
	KindRecovery:    "recovery",
	KindRebalance:   "rebalance",
	KindIngress:     "ingress",
	KindAdmit:       "admit",
	KindQueue:       "queue",
	KindRetry:       "retry",
	KindShed:        "shed",
	KindBreaker:     "breaker",
	KindJournal:     "journal",
	KindDegraded:    "degraded",
}

// String names the kind for logs and exporters.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one typed execution event. It is a flat comparable struct — no
// pointers, no slices — so collectors can compare, hash and store events
// without allocation, and the cross-engine differential test can use ==.
// Which fields are meaningful depends on Kind (see the Kind constants);
// unused fields are zero. Machine is -1 for cluster-wide events.
type Event struct {
	Kind    Kind
	Step    int
	Machine int
	// Label qualifies the kind: step kind ("sync"/"async"), stall kind,
	// recovery policy.
	Label string
	// Frontier is the active-vertex count driving the step (KindStepBegin).
	Frontier int
	// Resume is the superstep a recovery rolls back to (KindRecovery).
	Resume int
	// Seconds is the event's charged simulated time.
	Seconds float64
	// GatherSeconds/ApplySeconds/BookSeconds attribute a machine's compute
	// time to the gather, apply and bookkeeping phases; CommSeconds is the
	// communication time overlapped with them (KindMachineStep).
	GatherSeconds, ApplySeconds, BookSeconds, CommSeconds float64
	// Raw step counters (KindMachineStep).
	Gathers, Applies, PartialsOut, UpdatesOut float64
	// Bytes is a data footprint (checkpoint encoding size).
	Bytes int64
	// Moved counts edges that changed machines (rebalance, recovery).
	Moved int64
}

// Collector receives engine events. Implementations must not retain pointers
// into engine state (events are flat values, so there are none to retain) and
// must tolerate being called from a single goroutine per run. A nil Collector
// in engine.Options disables tracing with zero allocation and zero behaviour
// change.
type Collector interface {
	Event(Event)
}

// Recorder is the simplest Collector: it appends every event to Events in
// arrival order. The zero value is ready to use.
type Recorder struct {
	Events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Event implements Collector.
func (r *Recorder) Event(e Event) { r.Events = append(r.Events, e) }

// Reset discards the recorded events, keeping the backing array.
func (r *Recorder) Reset() { r.Events = r.Events[:0] }

// synchronized serializes Event calls with a mutex.
type synchronized struct {
	mu sync.Mutex
	c  Collector
}

func (s *synchronized) Event(e Event) {
	s.mu.Lock()
	s.c.Event(e)
	s.mu.Unlock()
}

// Synchronized wraps a collector so it may be shared by concurrent emitters —
// the Collector contract only requires tolerance of a single goroutine per
// run, which the multi-worker job service violates. A nil collector stays
// nil, so wrapping preserves "tracing disabled". Event order across emitters
// is arrival order under the lock and therefore not deterministic; consumers
// needing a reproducible stream must run single-threaded (service.Replay).
func Synchronized(c Collector) Collector {
	if c == nil {
		return nil
	}
	return &synchronized{c: c}
}

// multi fans events out to several collectors.
type multi []Collector

func (m multi) Event(e Event) {
	for _, c := range m {
		c.Event(e)
	}
}

// Multi combines collectors into one; nil entries are dropped. It returns nil
// when none remain, so Multi(nil, nil) still means "tracing disabled".
func Multi(cs ...Collector) Collector {
	var out multi
	for _, c := range cs {
		if c != nil {
			out = append(out, c)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
