package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a small self-contained counter/gauge/histogram registry with
// Prometheus text exposition (version 0.0.4). It exists so the simulator can
// expose run metrics in the format every metrics stack already parses without
// taking a client-library dependency. Handles are get-or-create: asking for
// the same (name, labels) twice returns the same series, so the Observer can
// resolve handles per event without bookkeeping.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// metricType is the TYPE line value of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

type family struct {
	name   string
	help   string
	typ    metricType
	series map[string]*series // keyed by rendered label set
}

type series struct {
	labels string // rendered `{k="v",...}` or ""
	// Scalar value for counters/gauges.
	val float64
	// Histogram state: ascending upper bounds (+Inf implicit) with
	// cumulative-at-render bucket counts, plus sum and count.
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// sanitizeName coerces s into a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*); illegal runes become '_'. Empty input becomes
// "_". Label names get the same treatment minus the colon.
func sanitizeName(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(allowColon && r == ':') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format; invalid
// UTF-8 bytes are replaced so the whole document stays valid UTF-8.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(strings.ToValidUTF8(s, "�"))
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(strings.ToValidUTF8(s, "�"))
}

// renderLabels turns alternating key/value pairs into a canonical
// `{k="v",...}` string (sorted by key, so the same set always renders the
// same). An odd trailing key gets an empty value rather than failing.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		v := ""
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		pairs = append(pairs, pair{k: sanitizeName(kv[i], false), v: v})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the series for (name, typ, labels), creating family and
// series as needed. A name already registered with a different type gets a
// type-suffixed alias so both series survive with valid exposition output.
func (r *Registry) lookup(name, help string, typ metricType, labels []string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	name = sanitizeName(name, true)
	f, ok := r.families[name]
	if ok && f.typ != typ {
		name = name + "_" + string(typ)
		f, ok = r.families[name]
	}
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing series.
type Counter struct {
	mu *sync.Mutex
	s  *series
}

// Counter returns the counter series for (name, labels), creating it if
// needed. labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	return Counter{mu: &r.mu, s: r.lookup(name, help, typeCounter, labels)}
}

// Add increases the counter; negative or non-finite deltas are ignored
// (counters only go up).
func (c Counter) Add(v float64) {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	c.mu.Lock()
	c.s.val += v
	c.mu.Unlock()
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Gauge is a series that can move both ways.
type Gauge struct {
	mu *sync.Mutex
	s  *series
}

// Gauge returns the gauge series for (name, labels), creating it if needed.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	return Gauge{mu: &r.mu, s: r.lookup(name, help, typeGauge, labels)}
}

// Set stores v; non-finite values are dropped to keep exposition parseable.
func (g Gauge) Set(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.mu.Lock()
	g.s.val = v
	g.mu.Unlock()
}

// Add shifts the gauge by v.
func (g Gauge) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.mu.Lock()
	g.s.val += v
	g.mu.Unlock()
}

// Histogram observes a value distribution into fixed buckets.
type Histogram struct {
	mu *sync.Mutex
	s  *series
}

// Histogram returns the histogram series for (name, labels), creating it with
// the given ascending bucket upper bounds (deduplicated; non-finite bounds
// dropped — +Inf is always implicit). The bounds of an existing series win.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) Histogram {
	s := r.lookup(name, help, typeHistogram, labels)
	r.mu.Lock()
	if s.bounds == nil {
		bounds := make([]float64, 0, len(buckets))
		for _, b := range buckets {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				continue
			}
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		bounds = slicesCompact(bounds)
		s.bounds = bounds
		s.counts = make([]uint64, len(bounds))
	}
	r.mu.Unlock()
	return Histogram{mu: &r.mu, s: s}
}

// slicesCompact removes adjacent duplicates from a sorted slice.
func slicesCompact(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Observe records v; NaN observations are dropped.
func (h Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	for i, b := range h.s.bounds {
		if v <= b {
			h.s.counts[i]++
			break
		}
	}
	h.s.count++
	if !math.IsInf(v, 0) {
		h.s.sum += v
	}
	h.mu.Unlock()
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel splices an extra label (e.g. le) into a rendered label set.
func withLabel(labels, key, val string) string {
	extra := key + `="` + escapeLabelValue(val) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders every family in text exposition format, sorted by
// family name and series label set so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if f.typ == typeHistogram {
				cum := uint64(0)
				for i, b := range s.bounds {
					cum += s.counts[i]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, withLabel(s.labels, "le", formatValue(b)), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, withLabel(s.labels, "le", "+Inf"), s.count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(s.sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.val)); err != nil {
				return err
			}
		}
	}
	return nil
}
