package trace

import (
	"strings"
	"testing"
)

func TestObserverReplay(t *testing.T) {
	r := NewRegistry()
	Observe(r, syntheticRun())
	out := expose(t, r)
	for _, want := range []string{
		`proxygraph_steps_total{kind="sync"} 2`,
		`proxygraph_steps_total{kind="async"} 1`,
		`proxygraph_barrier_seconds_total{kind="sync"} 3.5`,
		`proxygraph_machine_phase_seconds_total{machine="1",phase="step"} 3.5`,
		`proxygraph_machine_phase_seconds_total{machine="0",phase="gather"} 0.6`,
		`proxygraph_machine_gathers_total{machine="1"} 150`,
		`proxygraph_stall_seconds_total{kind="recover"} 0.75`,
		"proxygraph_checkpoints_total 1",
		"proxygraph_checkpoint_bytes_total 4096",
		"proxygraph_crashes_total 1",
		`proxygraph_recoveries_total{policy="checkpoint"} 1`,
		`proxygraph_frontier_size_bucket{le="100"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestObserverIsACollector pins the Observer to the live-attach use: feeding
// events one at a time through the Collector interface must equal a replay.
func TestObserverIsACollector(t *testing.T) {
	var live Collector = NewObserver(NewRegistry())
	for _, e := range syntheticRun() {
		live.Event(e)
	}
	lr := live.(*Observer).reg
	rr := NewRegistry()
	Observe(rr, syntheticRun())
	if expose(t, lr) != expose(t, rr) {
		t.Error("live collection and replay disagree")
	}
}
