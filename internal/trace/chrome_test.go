package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestChromeTraceValidAndDeterministic(t *testing.T) {
	events := syntheticRun()
	a, err := ChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(a) {
		t.Fatalf("output is not valid JSON:\n%s", a)
	}
	b, err := ChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same stream differ")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
		if p, ok := ev["pid"].(float64); ok {
			pids[p] = true
		}
	}
	for _, want := range []string{"process_name", "step 0", "gather", "comm", "stall:checkpoint", "crash", "recovery:checkpoint", "frontier", "checkpoint"} {
		if !names[want] {
			t.Errorf("trace missing %q events; have %v", want, names)
		}
	}
	// Two machine processes plus the synthetic cluster process.
	for p := 0.0; p <= 2.0; p++ {
		if !pids[p] {
			t.Errorf("missing process %v", p)
		}
	}
}

func TestChromeTraceBarrierTimeline(t *testing.T) {
	b, err := ChromeTrace(syntheticRun()[:10])
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	// Step 1 starts after step 0's barrier (2.0s) plus the checkpoint stall
	// (0.25s) = 2.25s = 2.25e6 µs, on both machines simultaneously.
	found := 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == "step 1" && ev.TID == tidStep {
			found++
			if ev.TS != 2.25e6 {
				t.Errorf("machine %d step 1 starts at %v µs, want 2.25e6", ev.PID, ev.TS)
			}
		}
	}
	if found != 2 {
		t.Errorf("found %d step-1 spans, want 2", found)
	}
}

func TestChromeTraceHostileInput(t *testing.T) {
	events := []Event{
		{Kind: KindStepBegin, Step: -5, Machine: -1, Label: "sync", Frontier: -3},
		{Kind: KindMachineStep, Machine: 0, Seconds: math.NaN(), GatherSeconds: math.Inf(1), Gathers: math.Inf(-1)},
		{Kind: KindMachineStep, Machine: 999999, Seconds: 1}, // beyond the process cap: dropped
		{Kind: KindStall, Machine: -1, Label: "bad\x00label\xff", Seconds: math.Inf(1)},
		{Kind: Kind(250), Machine: 3},
		{Kind: KindStepEnd, Machine: -1, Seconds: -1},
	}
	b, err := ChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatalf("hostile stream produced invalid JSON:\n%s", b)
	}
}
