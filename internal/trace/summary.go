package trace

import (
	"fmt"
	"sort"
	"strings"
)

// MachineSummary aggregates one machine's activity across a run.
type MachineSummary struct {
	Machine int
	// BusySeconds is the total charged step time (max of compute and comm,
	// exactly what the accountant charged); the phase fields attribute its
	// compute part.
	BusySeconds                                           float64
	GatherSeconds, ApplySeconds, BookSeconds, CommSeconds float64
	// StragglerSteps counts the sync steps this machine set the barrier.
	StragglerSteps int
	// IdleSeconds is the time spent waiting at barriers for slower machines —
	// the imbalance cost the paper's proxy-guided partitioning recovers.
	IdleSeconds float64
}

// Summary is the straggler report distilled from an event stream.
type Summary struct {
	// SyncSteps counts superstep barriers, AsyncRounds async phases.
	SyncSteps, AsyncRounds int
	// MakespanSeconds replays the stream against the accountant's clock:
	// barriers plus stalls plus folded async time.
	MakespanSeconds float64
	// BarrierSeconds sums sync barrier times; StallSeconds sums full-cluster
	// stalls by kind.
	BarrierSeconds float64
	StallSeconds   map[string]float64
	// Imbalance is the mean over sync steps of barrier time over the mean
	// step time of the machines that ran (1.0 = perfectly balanced).
	Imbalance float64
	// Fault-protocol counts.
	Checkpoints, Recoveries, Crashes, Rebalances int
	CheckpointBytes                              int64
	// Machines holds one entry per machine index seen in the stream.
	Machines []MachineSummary
}

// Summarize folds an event stream into a Summary. It replaces the ad-hoc
// straggler math experiments used to do on Result.Trace: the same numbers,
// derived from the structured stream.
func Summarize(events []Event) Summary {
	// Same process cap as the Chrome exporter: a corrupt stream must not
	// force a huge allocation.
	const maxMachines = 4096
	numMachines := 0
	for _, e := range events {
		if e.Machine+1 > numMachines && e.Machine < maxMachines {
			numMachines = e.Machine + 1
		}
	}
	s := Summary{
		StallSeconds: map[string]float64{},
		Machines:     make([]MachineSummary, numMachines),
	}
	for p := range s.Machines {
		s.Machines[p].Machine = p
	}

	// Cursor replay for the makespan (see chrome.go for the semantics).
	global := 0.0
	machineT := make([]float64, numMachines)
	stepStart := 0.0
	fold := func() {
		for _, t := range machineT {
			if t > global {
				global = t
			}
		}
		for i := range machineT {
			machineT[i] = global
		}
	}

	// Per-step scratch: the machines that ran the current sync step.
	type stepTime struct {
		machine int
		seconds float64
	}
	var cur []stepTime
	imbalanceSum := 0.0
	imbalanceSteps := 0

	for _, e := range events {
		switch e.Kind {
		case KindStepBegin:
			if e.Label != "async" {
				fold()
			}
			stepStart = global
			cur = cur[:0]
		case KindMachineStep:
			if e.Machine < 0 || e.Machine >= numMachines {
				continue
			}
			m := &s.Machines[e.Machine]
			m.BusySeconds += e.Seconds
			m.GatherSeconds += e.GatherSeconds
			m.ApplySeconds += e.ApplySeconds
			m.BookSeconds += e.BookSeconds
			m.CommSeconds += e.CommSeconds
			if e.Label == "async" {
				machineT[e.Machine] += fin(e.Seconds)
			} else {
				machineT[e.Machine] = stepStart + fin(e.Seconds)
				cur = append(cur, stepTime{machine: e.Machine, seconds: e.Seconds})
			}
		case KindStepEnd:
			if e.Label == "async" {
				s.AsyncRounds++
				continue
			}
			s.SyncSteps++
			s.BarrierSeconds += e.Seconds
			global = stepStart + fin(e.Seconds)
			for i := range machineT {
				machineT[i] = global
			}
			if len(cur) > 0 {
				mean := 0.0
				for _, st := range cur {
					mean += st.seconds
				}
				mean /= float64(len(cur))
				for _, st := range cur {
					m := &s.Machines[st.machine]
					m.IdleSeconds += e.Seconds - st.seconds
					if st.seconds >= e.Seconds {
						m.StragglerSteps++
					}
				}
				if mean > 0 {
					imbalanceSum += e.Seconds / mean
					imbalanceSteps++
				}
			}
		case KindStall:
			fold()
			s.StallSeconds[e.Label] += e.Seconds
			global += fin(e.Seconds)
			for i := range machineT {
				machineT[i] = global
			}
		case KindCheckpoint:
			s.Checkpoints++
			s.CheckpointBytes += e.Bytes
		case KindCrash:
			s.Crashes++
		case KindRecovery:
			s.Recoveries++
		case KindRebalance:
			s.Rebalances++
		}
	}
	fold()
	s.MakespanSeconds = global
	if imbalanceSteps > 0 {
		s.Imbalance = imbalanceSum / float64(imbalanceSteps)
	}
	return s
}

// fmtSeconds renders a duration compactly for the report.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	}
	return fmt.Sprintf("%.3fs", s)
}

// String renders the straggler report for terminals.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution summary: %d sync steps", s.SyncSteps)
	if s.AsyncRounds > 0 {
		fmt.Fprintf(&b, ", %d async rounds", s.AsyncRounds)
	}
	fmt.Fprintf(&b, ", makespan %s (barriers %s", fmtSeconds(s.MakespanSeconds), fmtSeconds(s.BarrierSeconds))
	if len(s.StallSeconds) > 0 {
		kinds := make([]string, 0, len(s.StallSeconds))
		for k := range s.StallSeconds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, ", %s %s", k, fmtSeconds(s.StallSeconds[k]))
		}
	}
	b.WriteString(")\n")
	if s.Checkpoints+s.Crashes+s.Recoveries+s.Rebalances > 0 {
		fmt.Fprintf(&b, "fault protocol: %d checkpoints (%d bytes), %d crashes, %d recoveries, %d rebalances\n",
			s.Checkpoints, s.CheckpointBytes, s.Crashes, s.Recoveries, s.Rebalances)
	}
	if s.Imbalance > 0 {
		fmt.Fprintf(&b, "step imbalance (barrier over mean machine time): %.2fx\n", s.Imbalance)
	}
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %10s %10s %10s\n",
		"machine", "busy", "gather", "apply", "book", "comm", "idle", "straggler")
	for _, m := range s.Machines {
		fmt.Fprintf(&b, "%-8d %10s %10s %10s %10s %10s %10s %9dx\n",
			m.Machine, fmtSeconds(m.BusySeconds), fmtSeconds(m.GatherSeconds), fmtSeconds(m.ApplySeconds),
			fmtSeconds(m.BookSeconds), fmtSeconds(m.CommSeconds), fmtSeconds(m.IdleSeconds), m.StragglerSteps)
	}
	return b.String()
}
