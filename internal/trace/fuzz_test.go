package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
	"unicode/utf8"
)

// eventsFromBytes decodes an arbitrary byte string into an event stream: 16
// bytes per event, every field driven by fuzzer-controlled data including
// non-finite floats and out-of-range kinds/machines. This is the shared
// hostile-input front end for both encoder fuzz targets.
func eventsFromBytes(data []byte) []Event {
	var events []Event
	for len(data) >= 16 {
		chunk := data[:16]
		data = data[16:]
		labels := []string{"sync", "async", "migrate", "checkpoint", "recover", "", "weird\xffbytes", "a\x00b"}
		bits := binary.LittleEndian.Uint64(chunk[8:])
		events = append(events, Event{
			Kind:          Kind(chunk[0]),
			Step:          int(int8(chunk[1])),
			Machine:       int(int8(chunk[2])),
			Label:         labels[int(chunk[3])%len(labels)],
			Frontier:      int(int8(chunk[4])),
			Resume:        int(int8(chunk[5])),
			Seconds:       math.Float64frombits(bits),
			GatherSeconds: math.Float64frombits(bits >> 1),
			ApplySeconds:  math.Float64frombits(bits << 1),
			BookSeconds:   float64(int8(chunk[6])),
			CommSeconds:   math.Float64frombits(^bits),
			Gathers:       math.Float64frombits(bits ^ 0xdead),
			Applies:       float64(chunk[7]),
			PartialsOut:   math.Float64frombits(bits * 3),
			UpdatesOut:    -float64(chunk[6]),
			Bytes:         int64(int8(chunk[1])) << 32,
			Moved:         int64(bits),
		})
	}
	return events
}

// FuzzChromeTrace asserts the Chrome exporter emits valid UTF-8 JSON for any
// event stream, however corrupt — the encoder must sanitize non-finite
// floats and out-of-range machine indices rather than crash or emit NaN
// literals encoding/json would reject.
func FuzzChromeTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(bytes.Repeat([]byte{1, 0}, 40))
	var seed []byte
	for i := 0; i < 10; i++ {
		var chunk [16]byte
		chunk[0] = byte(i)
		chunk[2] = byte(i % 3)
		binary.LittleEndian.PutUint64(chunk[8:], math.Float64bits(float64(i)*0.25))
		seed = append(seed, chunk[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		events := eventsFromBytes(data)
		out, err := ChromeTrace(events)
		if err != nil {
			t.Fatalf("encode failed: %v", err)
		}
		if !json.Valid(out) {
			t.Fatalf("invalid JSON for %d events:\n%s", len(events), out)
		}
		if !utf8.Valid(out) {
			t.Fatalf("invalid UTF-8 output")
		}
		// Determinism: re-encoding the same stream is byte-identical.
		out2, err := ChromeTrace(events)
		if err != nil || !bytes.Equal(out, out2) {
			t.Fatalf("re-encode differs (err=%v)", err)
		}
	})
}

// FuzzPrometheus drives the registry through arbitrary names, labels, values
// and event streams, and asserts the exposition output stays parseable: valid
// UTF-8, every line either a comment or `name[{labels}] value`.
func FuzzPrometheus(f *testing.F) {
	f.Add("metric", "label", []byte{1, 2, 3})
	f.Add("bad name!", "bad key\n", bytes.Repeat([]byte{0xff}, 32))
	f.Add("", "", []byte{})
	f.Fuzz(func(t *testing.T, name, label string, data []byte) {
		r := NewRegistry()
		for len(data) >= 9 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[1:9]))
			switch data[0] % 3 {
			case 0:
				r.Counter(name, "fuzzed", label, string(data[:1])).Add(v)
			case 1:
				r.Gauge(name+"_g", "fuzzed", label, label).Set(v)
			case 2:
				r.Histogram(name+"_h", "fuzzed", []float64{v, 1, 10}).Observe(v)
			}
			data = data[9:]
		}
		Observe(r, eventsFromBytes(data))
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("exposition failed: %v", err)
		}
		out := buf.String()
		if !utf8.ValidString(out) {
			t.Fatalf("invalid UTF-8 exposition")
		}
		for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
			if line == "" || strings.HasPrefix(line, "# ") {
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("sample line has no value: %q", line)
			}
			if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
				t.Fatalf("sample value unparseable in %q: %v", line, err)
			}
			ident := line[:sp]
			if i := strings.IndexByte(ident, '{'); i >= 0 {
				ident = ident[:i]
			}
			if ident == "" || !isMetricName(ident) {
				t.Fatalf("bad metric name in %q", line)
			}
		}
	})
}

func isMetricName(s string) bool {
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
