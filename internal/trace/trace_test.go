package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	for k := KindStepBegin; k <= KindIngress; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind: got %q", Kind(200).String())
	}
}

func TestRecorderAndMulti(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	c := Multi(nil, a, nil, b)
	if c == nil {
		t.Fatal("Multi dropped live collectors")
	}
	e := Event{Kind: KindStepBegin, Step: 3, Machine: -1, Label: "sync", Frontier: 17}
	c.Event(e)
	if len(a.Events) != 1 || len(b.Events) != 1 || a.Events[0] != e {
		t.Fatalf("fan-out failed: a=%v b=%v", a.Events, b.Events)
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil (tracing disabled)")
	}
	if Multi(a) != Collector(a) {
		t.Error("Multi of one collector should return it unwrapped")
	}
	a.Reset()
	if len(a.Events) != 0 {
		t.Error("Reset did not clear events")
	}
}

// syntheticRun is a two-machine stream: two sync steps (machine 1 straggles),
// one stall, a checkpoint, a crash with recovery, and one async round.
func syntheticRun() []Event {
	return []Event{
		{Kind: KindStepBegin, Step: 0, Machine: -1, Label: "sync", Frontier: 100},
		{Kind: KindMachineStep, Step: 0, Machine: 0, Label: "sync", Seconds: 1.0, GatherSeconds: 0.6, ApplySeconds: 0.2, BookSeconds: 0.1, CommSeconds: 0.3, Gathers: 50, Applies: 10},
		{Kind: KindMachineStep, Step: 0, Machine: 1, Label: "sync", Seconds: 2.0, GatherSeconds: 1.4, ApplySeconds: 0.3, BookSeconds: 0.2, CommSeconds: 0.5, Gathers: 90, Applies: 12},
		{Kind: KindStepEnd, Step: 0, Machine: -1, Label: "sync", Seconds: 2.0},
		{Kind: KindCheckpoint, Step: 1, Machine: -1, Seconds: 0.25, Bytes: 4096},
		{Kind: KindStall, Step: 0, Machine: -1, Label: "checkpoint", Seconds: 0.25},
		{Kind: KindStepBegin, Step: 1, Machine: -1, Label: "sync", Frontier: 40},
		{Kind: KindMachineStep, Step: 1, Machine: 0, Label: "sync", Seconds: 0.5, Gathers: 20, Applies: 5},
		{Kind: KindMachineStep, Step: 1, Machine: 1, Label: "sync", Seconds: 1.5, Gathers: 60, Applies: 9},
		{Kind: KindStepEnd, Step: 1, Machine: -1, Label: "sync", Seconds: 1.5},
		{Kind: KindCrash, Step: 1, Machine: 1},
		{Kind: KindRecovery, Step: 1, Machine: 1, Label: "checkpoint", Resume: 1, Seconds: 0.75, Moved: 120},
		{Kind: KindStall, Step: 1, Machine: -1, Label: "recover", Seconds: 0.75},
		{Kind: KindStepBegin, Step: 0, Machine: -1, Label: "async", Frontier: 100},
		{Kind: KindMachineStep, Step: 0, Machine: 0, Label: "async", Seconds: 0.4},
		{Kind: KindStepEnd, Step: 0, Machine: -1, Label: "async"},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(syntheticRun())
	if s.SyncSteps != 2 || s.AsyncRounds != 1 {
		t.Fatalf("got %d sync steps, %d async rounds; want 2, 1", s.SyncSteps, s.AsyncRounds)
	}
	if got, want := s.BarrierSeconds, 3.5; got != want {
		t.Errorf("barrier seconds %v, want %v", got, want)
	}
	// Makespan: barriers (2.0 + 1.5) + stalls (0.25 + 0.75) + folded async 0.4.
	if got, want := s.MakespanSeconds, 4.9; !approx(got, want) {
		t.Errorf("makespan %v, want %v", got, want)
	}
	if s.Checkpoints != 1 || s.CheckpointBytes != 4096 || s.Crashes != 1 || s.Recoveries != 1 {
		t.Errorf("fault counts wrong: %+v", s)
	}
	if len(s.Machines) != 2 {
		t.Fatalf("got %d machines, want 2", len(s.Machines))
	}
	m0, m1 := s.Machines[0], s.Machines[1]
	if !approx(m0.BusySeconds, 1.9) || !approx(m1.BusySeconds, 3.5) {
		t.Errorf("busy: m0=%v m1=%v", m0.BusySeconds, m1.BusySeconds)
	}
	if m0.StragglerSteps != 0 || m1.StragglerSteps != 2 {
		t.Errorf("straggler steps: m0=%d m1=%d, want 0 and 2", m0.StragglerSteps, m1.StragglerSteps)
	}
	// Machine 0 waited 1.0s at step 0's barrier and 1.0s at step 1's.
	if !approx(m0.IdleSeconds, 2.0) || !approx(m1.IdleSeconds, 0) {
		t.Errorf("idle: m0=%v m1=%v", m0.IdleSeconds, m1.IdleSeconds)
	}
	// Step 0: 2.0/1.5; step 1: 1.5/1.0. Mean of the two ratios.
	if want := (2.0/1.5 + 1.5/1.0) / 2; !approx(s.Imbalance, want) {
		t.Errorf("imbalance %v, want %v", s.Imbalance, want)
	}
	if s.StallSeconds["checkpoint"] != 0.25 || s.StallSeconds["recover"] != 0.75 {
		t.Errorf("stall seconds: %v", s.StallSeconds)
	}

	report := s.String()
	for _, want := range []string{"2 sync steps", "1 async rounds", "machine", "straggler", "1 checkpoints"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.SyncSteps != 0 || s.MakespanSeconds != 0 || len(s.Machines) != 0 {
		t.Errorf("empty stream should summarize to zero: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary should still render")
	}
}

func approx(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
