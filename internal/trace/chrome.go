package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Chrome trace-event exporter. The output is the Trace Event Format's JSON
// object form ({"traceEvents": [...]}) loadable in chrome://tracing and
// Perfetto: one "process" per simulated machine plus a synthetic "cluster"
// process for barrier-level activity (stalls, checkpoints, recoveries,
// rebalances, frontier counters). Within a machine, thread 0 carries the
// whole-step span and threads 1-4 the gather/apply/bookkeeping/comm phase
// attribution.
//
// The exporter replays the event stream against a simulated-time cursor:
// sync steps start all machines at the same barrier-aligned instant and the
// following KindStepEnd advances the cursor by the barrier time; async rounds
// advance per-machine cursors independently (the fold to the common barrier
// happens at the next sync step or stall, exactly as the accountant folds
// async time). Output is a pure function of the event slice, so engines that
// emit identical events produce byte-identical JSON — the property the
// cross-engine differential test asserts on.

// chromeEvent is one Trace Event Format record. Field order is fixed and
// Args is a map (encoding/json sorts map keys), so encoding is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Thread IDs within a machine process.
const (
	tidStep = iota
	tidGather
	tidApply
	tidBook
	tidComm
)

// fin clamps non-finite or negative durations/timestamps to zero so hostile
// event streams (the fuzz targets) still encode to valid JSON —
// encoding/json rejects NaN and ±Inf outright.
func fin(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		return 0
	}
	return x
}

// usec converts simulated seconds to the format's microsecond timebase. The
// outer fin matters: a huge-but-finite seconds value can overflow to +Inf
// only after the multiply, and encoding/json rejects non-finite numbers.
func usec(seconds float64) float64 { return fin(fin(seconds) * 1e6) }

// ChromeTrace renders the event stream to Chrome trace JSON.
func ChromeTrace(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteChromeTrace writes the event stream as Chrome trace JSON to w.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// maxProcesses bounds the per-machine process list so a corrupt stream
	// with a huge machine index cannot force a gigantic header; events beyond
	// the cap are dropped. Real clusters in this repository are ≤ 64 machines.
	const maxProcesses = 4096
	numMachines := 0
	for _, e := range events {
		if e.Machine+1 > numMachines && e.Machine < maxProcesses {
			numMachines = e.Machine + 1
		}
	}
	clusterPID := numMachines

	out := make([]chromeEvent, 0, 4*len(events)+2*numMachines+2)
	meta := func(pid int, key, name string) {
		out = append(out, chromeEvent{Name: key, Ph: "M", PID: pid, Args: map[string]any{"name": name}})
	}
	for p := 0; p < numMachines; p++ {
		meta(p, "process_name", fmt.Sprintf("machine %d", p))
	}
	meta(clusterPID, "process_name", "cluster")

	// Simulated-time cursors, in seconds.
	global := 0.0
	machineT := make([]float64, numMachines)
	stepStart := 0.0
	fold := func() {
		for _, t := range machineT {
			if t > global {
				global = t
			}
		}
		for i := range machineT {
			machineT[i] = global
		}
	}
	instant := func(pid int, name string, args map[string]any) {
		out = append(out, chromeEvent{Name: name, Ph: "i", PID: pid, TID: tidStep, TS: usec(global), S: "p", Args: args})
	}

	for _, e := range events {
		switch e.Kind {
		case KindStepBegin:
			if e.Label != "async" {
				fold()
			}
			stepStart = global
			out = append(out, chromeEvent{
				Name: "frontier", Ph: "C", PID: clusterPID, TID: tidStep, TS: usec(global),
				Args: map[string]any{"active": e.Frontier},
			})
		case KindMachineStep:
			if e.Machine < 0 || e.Machine >= numMachines {
				continue
			}
			start := stepStart
			if e.Label == "async" {
				start = machineT[e.Machine]
			}
			machineT[e.Machine] = start + fin(e.Seconds)
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("step %d", e.Step), Ph: "X", PID: e.Machine, TID: tidStep,
				TS: usec(start), Dur: usec(e.Seconds),
				Args: map[string]any{
					"gathers": fin(e.Gathers), "applies": fin(e.Applies),
					"partials_out": fin(e.PartialsOut), "updates_out": fin(e.UpdatesOut),
				},
			})
			phase := func(tid int, name string, at, dur float64) {
				if fin(dur) <= 0 {
					return
				}
				out = append(out, chromeEvent{Name: name, Ph: "X", PID: e.Machine, TID: tid, TS: usec(at), Dur: usec(dur)})
			}
			phase(tidGather, "gather", start, e.GatherSeconds)
			phase(tidApply, "apply", start+fin(e.GatherSeconds), e.ApplySeconds)
			phase(tidBook, "book", start+fin(e.GatherSeconds)+fin(e.ApplySeconds), e.BookSeconds)
			phase(tidComm, "comm", start, e.CommSeconds)
		case KindStepEnd:
			if e.Label != "async" {
				global = stepStart + fin(e.Seconds)
				for i := range machineT {
					machineT[i] = global
				}
			}
		case KindStall:
			fold()
			out = append(out, chromeEvent{
				Name: "stall:" + e.Label, Ph: "X", PID: clusterPID, TID: tidStep,
				TS: usec(global), Dur: usec(e.Seconds),
			})
			global += fin(e.Seconds)
			for i := range machineT {
				machineT[i] = global
			}
		case KindFault:
			instant(clusterPID, "fault:"+e.Label, map[string]any{"step": e.Step})
		case KindCheckpoint:
			instant(clusterPID, "checkpoint", map[string]any{"resume_step": e.Step, "bytes": e.Bytes})
		case KindCrash:
			pid := clusterPID
			if e.Machine >= 0 && e.Machine < numMachines {
				pid = e.Machine
			}
			instant(pid, "crash", map[string]any{"step": e.Step})
		case KindRecovery:
			instant(clusterPID, "recovery:"+e.Label, map[string]any{
				"step": e.Step, "machine": e.Machine, "resume_step": e.Resume, "moved_edges": e.Moved,
			})
		case KindRebalance:
			instant(clusterPID, "rebalance", map[string]any{"step": e.Step, "moved_edges": e.Moved})
		case KindIngress:
			// Ingress precedes the job's supersteps: render it like a stall so
			// the charged makespan pushes the whole cluster forward.
			fold()
			out = append(out, chromeEvent{
				Name: "ingress:" + e.Label, Ph: "X", PID: clusterPID, TID: tidStep,
				TS: usec(global), Dur: usec(e.Seconds),
			})
			global += fin(e.Seconds)
			for i := range machineT {
				machineT[i] = global
			}
		case KindAdmit:
			instant(clusterPID, "admit:"+e.Label, map[string]any{"job": e.Step})
		case KindQueue:
			instant(clusterPID, "dequeue", map[string]any{"job": e.Step, "tenant": e.Label, "wait_s": fin(e.Seconds)})
		case KindRetry:
			instant(clusterPID, "retry", map[string]any{"job": e.Step, "attempt": e.Resume, "backoff_s": fin(e.Seconds)})
		case KindShed:
			instant(clusterPID, "shed:"+e.Label, map[string]any{"job": e.Step})
		case KindBreaker:
			instant(clusterPID, "breaker:"+e.Label, nil)
		}
	}

	// One record per line: deterministic, and diffs stay readable.
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	for i, ev := range out {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
