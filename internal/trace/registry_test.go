package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", "method", "get")
	c.Inc()
	c.Add(2)
	c.Add(-5)            // counters never go down
	c.Add(math.NaN())    // dropped
	c.Add(math.Inf(1))   // dropped
	r.Counter("requests_total", "Requests served.", "method", "get").Inc() // same series
	g := r.Gauge("temperature", "Current temperature.")
	g.Set(20)
	g.Add(1.5)

	out := expose(t, r)
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{method="get"} 4`,
		"# TYPE temperature gauge",
		"temperature 21.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	out := expose(t, r)
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("bad name-1!", "he\nlp", "bad key!", `va"l\ue`+"\n").Inc()
	out := expose(t, r)
	for _, want := range []string{
		"# HELP bad_name_1_ he\\nlp",
		`bad_name_1_{bad_key_="va\"l\\ue\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryTypeConflictAliases(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(7)
	out := expose(t, r)
	if !strings.Contains(out, "x 1\n") || !strings.Contains(out, "x_gauge 7\n") {
		t.Errorf("type conflict should alias to a suffixed family:\n%s", out)
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, m := range order {
			r.Counter("zz_total", "", "machine", m).Inc()
			r.Counter("aa_total", "").Inc()
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"0", "2", "1"})
	b := build([]string{"1", "0", "2"})
	if a != b {
		t.Errorf("exposition depends on registration order:\n%s\nvs\n%s", a, b)
	}
	if strings.Index(a, "aa_total") > strings.Index(a, "zz_total") {
		t.Errorf("families not sorted:\n%s", a)
	}
}
