// Package advisor turns the paper's Section V-C observation — that synthetic
// graph profiling reveals machines' true cost efficiency for graph work —
// into a cluster-composition recommender: given hourly budget and a target
// application mix, it enumerates compositions of catalog machines and ranks
// them by proxy-profiled throughput, the projection cloud users "would have
// no insights about" from price sheets alone.
package advisor

import (
	"fmt"
	"math"
	"sort"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
)

// coordinationOverhead is the per-additional-machine throughput discount
// modelling synchronization and mirror traffic: a composition of M machines
// delivers Σ speeds / (1 + coordinationOverhead·(M−1)).
const coordinationOverhead = 0.04

// Speeds maps machine type to its proxy-profiled graph processing speed
// (arbitrary units; only ratios matter).
type Speeds map[string]float64

// MeasureSpeeds profiles every machine standalone on the proxy set across
// the given applications and returns the geometric-mean speed per machine
// type (the Fig 11 measurement, reduced to one number per machine).
func MeasureSpeeds(machines []cluster.Machine, applications []apps.App, profiler *core.ProxyProfiler) (Speeds, error) {
	if len(machines) == 0 || len(applications) == 0 {
		return nil, fmt.Errorf("advisor: need machines and applications")
	}
	if profiler == nil || len(profiler.Proxies) == 0 {
		return nil, fmt.Errorf("advisor: need a profiler with proxy graphs")
	}
	speeds := Speeds{}
	for _, m := range machines {
		if _, done := speeds[m.Name]; done {
			continue
		}
		solo, err := cluster.New(m)
		if err != nil {
			return nil, err
		}
		logSum := 0.0
		runs := 0
		for _, app := range applications {
			for _, proxy := range profiler.Proxies {
				res, err := app.Run(engine.SingleMachine(proxy), solo)
				if err != nil {
					return nil, fmt.Errorf("advisor: profiling %s on %s: %w", app.Name(), m.Name, err)
				}
				// A zero (or negative/non-finite) makespan would send the log
				// term to ±Inf/NaN and poison the geometric mean — every speed
				// built from it, and every Recommend ranking downstream, would
				// be garbage. Instant proxy runs can legitimately happen with a
				// degenerate proxy graph or a stubbed application, so fail
				// loudly instead of propagating the poison.
				if res.SimSeconds <= 0 || math.IsInf(res.SimSeconds, 0) || math.IsNaN(res.SimSeconds) {
					return nil, fmt.Errorf("advisor: profiling %s on %s returned non-positive makespan %v; cannot fold into geometric mean",
						app.Name(), m.Name, res.SimSeconds)
				}
				logSum += math.Log(1 / res.SimSeconds)
				runs++
			}
		}
		speeds[m.Name] = math.Exp(logSum / float64(runs))
	}
	return speeds, nil
}

// Objective selects what Recommend optimizes.
type Objective int

const (
	// MaxSpeed maximizes throughput within the budget.
	MaxSpeed Objective = iota
	// MaxSpeedPerDollar maximizes throughput per hourly dollar.
	MaxSpeedPerDollar
)

// Request parameterizes a recommendation.
type Request struct {
	// BudgetPerHour caps the composition's hourly cost (0 = unlimited).
	BudgetPerHour float64
	// MaxMachines caps the composition size (default 8, hard cap 16 to keep
	// the exhaustive enumeration cheap).
	MaxMachines int
	// MinMachines floors the composition size (default 1).
	MinMachines int
	// Objective selects the ranking criterion.
	Objective Objective
}

// Selection is one recommended composition.
type Selection struct {
	// MachineNames lists the chosen machines (sorted, with repeats).
	MachineNames []string
	// CostPerHour is the composition's hourly price.
	CostPerHour float64
	// Speed is the modelled aggregate throughput.
	Speed float64
	// SpeedPerDollar is Speed / CostPerHour.
	SpeedPerDollar float64
}

// Recommend exhaustively enumerates multisets of catalog machines and
// returns the best composition under the request, plus the ranked top
// candidates (at most 10).
func Recommend(catalog []cluster.Machine, speeds Speeds, req Request) (Selection, []Selection, error) {
	if len(catalog) == 0 {
		return Selection{}, nil, fmt.Errorf("advisor: empty catalog")
	}
	if req.MaxMachines <= 0 {
		req.MaxMachines = 8
	}
	if req.MaxMachines > 16 {
		req.MaxMachines = 16
	}
	if req.MinMachines <= 0 {
		req.MinMachines = 1
	}
	if req.MinMachines > req.MaxMachines {
		return Selection{}, nil, fmt.Errorf("advisor: MinMachines %d exceeds MaxMachines %d", req.MinMachines, req.MaxMachines)
	}
	for _, m := range catalog {
		if _, ok := speeds[m.Name]; !ok {
			return Selection{}, nil, fmt.Errorf("advisor: no measured speed for machine %q", m.Name)
		}
		if m.CostPerHour <= 0 {
			return Selection{}, nil, fmt.Errorf("advisor: machine %q has no hourly cost; the advisor targets priced (cloud) machines", m.Name)
		}
	}

	var results []Selection
	composition := make([]int, 0, req.MaxMachines)
	var walk func(start int, cost, speedSum float64)
	walk = func(start int, cost, speedSum float64) {
		n := len(composition)
		if n >= req.MinMachines {
			speed := speedSum / (1 + coordinationOverhead*float64(n-1))
			names := make([]string, n)
			for i, idx := range composition {
				names[i] = catalog[idx].Name
			}
			results = append(results, Selection{
				MachineNames:   names,
				CostPerHour:    cost,
				Speed:          speed,
				SpeedPerDollar: speed / cost,
			})
		}
		if n == req.MaxMachines {
			return
		}
		for i := start; i < len(catalog); i++ {
			nextCost := cost + catalog[i].CostPerHour
			if req.BudgetPerHour > 0 && nextCost > req.BudgetPerHour+1e-9 {
				continue
			}
			composition = append(composition, i)
			walk(i, nextCost, speedSum+speeds[catalog[i].Name])
			composition = composition[:len(composition)-1]
		}
	}
	walk(0, 0, 0)
	if len(results) == 0 {
		return Selection{}, nil, fmt.Errorf("advisor: no composition fits budget $%.3f/hour", req.BudgetPerHour)
	}

	sort.Slice(results, func(i, j int) bool {
		if req.Objective == MaxSpeedPerDollar {
			if results[i].SpeedPerDollar != results[j].SpeedPerDollar {
				return results[i].SpeedPerDollar > results[j].SpeedPerDollar
			}
		} else if results[i].Speed != results[j].Speed {
			return results[i].Speed > results[j].Speed
		}
		return results[i].CostPerHour < results[j].CostPerHour
	})
	top := results
	if len(top) > 10 {
		top = top[:10]
	}
	return results[0], top, nil
}
