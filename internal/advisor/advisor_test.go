package advisor

import (
	"math"
	"strings"
	"testing"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
)

func toyCatalog() []cluster.Machine {
	small, _ := cluster.ByName("c4.xlarge") // $0.209
	big, _ := cluster.ByName("c4.2xlarge")  // $0.419
	huge, _ := cluster.ByName("c4.8xlarge") // $1.675
	return []cluster.Machine{small, big, huge}
}

func toySpeeds() Speeds {
	return Speeds{"c4.xlarge": 1, "c4.2xlarge": 2.6, "c4.8xlarge": 6}
}

func TestRecommendRespectsBudget(t *testing.T) {
	best, top, err := Recommend(toyCatalog(), toySpeeds(), Request{BudgetPerHour: 1.0, Objective: MaxSpeed})
	if err != nil {
		t.Fatal(err)
	}
	if best.CostPerHour > 1.0+1e-9 {
		t.Errorf("best composition costs $%.3f, budget was $1", best.CostPerHour)
	}
	for _, s := range top {
		if s.CostPerHour > 1.0+1e-9 {
			t.Errorf("ranked composition %v over budget", s.MachineNames)
		}
	}
}

func TestRecommendMaxSpeedPicksBestWithinBudget(t *testing.T) {
	// Budget $0.85: two 2xlarge ($0.838, speed 5.2/(1.04)=5.0) beat
	// 4x xlarge ($0.836, speed 4/(1.12)=3.57) and anything with one machine.
	best, _, err := Recommend(toyCatalog(), toySpeeds(), Request{BudgetPerHour: 0.85, Objective: MaxSpeed})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(best.MachineNames, ","); got != "c4.2xlarge,c4.2xlarge" {
		t.Errorf("best = %v (speed %.2f, $%.3f)", best.MachineNames, best.Speed, best.CostPerHour)
	}
}

func TestRecommendSpeedPerDollar(t *testing.T) {
	// Per dollar: xlarge gives 1/0.209 = 4.78, 2xlarge 2.6/0.419 = 6.2,
	// 8xlarge 6/1.675 = 3.58 -> a single 2xlarge wins (no coordination tax).
	best, _, err := Recommend(toyCatalog(), toySpeeds(), Request{Objective: MaxSpeedPerDollar, MaxMachines: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(best.MachineNames) != 1 || best.MachineNames[0] != "c4.2xlarge" {
		t.Errorf("best per-dollar = %v", best.MachineNames)
	}
}

func TestRecommendMoreBudgetNeverSlower(t *testing.T) {
	prev := 0.0
	for _, budget := range []float64{0.25, 0.5, 1, 2, 4} {
		best, _, err := Recommend(toyCatalog(), toySpeeds(), Request{BudgetPerHour: budget, Objective: MaxSpeed, MaxMachines: 6})
		if err != nil {
			t.Fatal(err)
		}
		if best.Speed < prev-1e-9 {
			t.Errorf("budget $%v got slower composition (%.3f < %.3f)", budget, best.Speed, prev)
		}
		prev = best.Speed
	}
}

func TestRecommendMinMachines(t *testing.T) {
	best, _, err := Recommend(toyCatalog(), toySpeeds(), Request{MinMachines: 3, MaxMachines: 3, Objective: MaxSpeed})
	if err != nil {
		t.Fatal(err)
	}
	if len(best.MachineNames) != 3 {
		t.Errorf("composition size = %d, want 3", len(best.MachineNames))
	}
}

func TestRecommendErrors(t *testing.T) {
	if _, _, err := Recommend(nil, toySpeeds(), Request{}); err == nil {
		t.Error("empty catalog should error")
	}
	if _, _, err := Recommend(toyCatalog(), Speeds{}, Request{}); err == nil {
		t.Error("missing speeds should error")
	}
	if _, _, err := Recommend(toyCatalog(), toySpeeds(), Request{BudgetPerHour: 0.01}); err == nil {
		t.Error("impossible budget should error")
	}
	if _, _, err := Recommend(toyCatalog(), toySpeeds(), Request{MinMachines: 5, MaxMachines: 2}); err == nil {
		t.Error("min > max should error")
	}
	local := cluster.LocalXeon("free", 4, 2.5)
	if _, _, err := Recommend([]cluster.Machine{local}, Speeds{"free": 1}, Request{}); err == nil {
		t.Error("unpriced machines should error")
	}
}

func TestMeasureSpeedsOrdersMachines(t *testing.T) {
	pp, err := core.NewProxyProfiler(1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := cluster.ByName("c4.xlarge")
	big, _ := cluster.ByName("c4.8xlarge")
	speeds, err := MeasureSpeeds([]cluster.Machine{small, big, small}, apps.All(), pp)
	if err != nil {
		t.Fatal(err)
	}
	if len(speeds) != 2 {
		t.Fatalf("speeds = %v (duplicates should collapse)", speeds)
	}
	if speeds["c4.8xlarge"] <= speeds["c4.xlarge"] {
		t.Errorf("8xlarge should profile faster: %v", speeds)
	}
	// Validation.
	if _, err := MeasureSpeeds(nil, apps.All(), pp); err == nil {
		t.Error("no machines should error")
	}
	if _, err := MeasureSpeeds([]cluster.Machine{small}, apps.All(), &core.ProxyProfiler{}); err == nil {
		t.Error("empty profiler should error")
	}
}

func TestEndToEndRecommendation(t *testing.T) {
	pp, err := core.NewProxyProfiler(1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	catalog := toyCatalog()
	speeds, err := MeasureSpeeds(catalog, apps.All(), pp)
	if err != nil {
		t.Fatal(err)
	}
	best, top, err := Recommend(catalog, speeds, Request{BudgetPerHour: 2, Objective: MaxSpeed})
	if err != nil {
		t.Fatal(err)
	}
	if best.Speed <= 0 || best.SpeedPerDollar <= 0 {
		t.Errorf("degenerate recommendation %+v", best)
	}
	if len(top) == 0 || top[0].Speed != best.Speed {
		t.Error("ranking inconsistent with best")
	}
}

// zeroTimeApp reports a zero makespan from every run — the shape a stubbed or
// degenerate application produces. Folding it into the geometric mean would
// yield +Inf speeds; MeasureSpeeds must refuse instead.
type zeroTimeApp struct{}

func (zeroTimeApp) Name() string { return "zero-stub" }
func (zeroTimeApp) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return &engine.Result{SimSeconds: 0}, nil
}

func TestMeasureSpeedsRejectsZeroMakespan(t *testing.T) {
	pp, err := core.NewProxyProfiler(1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := cluster.ByName("c4.xlarge")
	speeds, err := MeasureSpeeds([]cluster.Machine{small}, []apps.App{zeroTimeApp{}}, pp)
	if err == nil {
		t.Fatalf("zero-makespan profiling run must error, got speeds %v", speeds)
	}
	for _, s := range speeds {
		if math.IsInf(s, 0) || math.IsNaN(s) {
			t.Fatalf("non-finite speed leaked out alongside the error: %v", speeds)
		}
	}
}
