package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"proxygraph/internal/engine"
	"proxygraph/internal/rng"
	"proxygraph/internal/trace"
	"proxygraph/internal/workload"
)

// floatsClose compares charged accounting with the chaos suite's relative
// tolerance (recovered values are bit copies; re-executed ones re-add floats).
func floatsClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// jobCatalog builds a Resolve function over a fixed job set, the way a real
// front end resolves recovered (app, graph, seed) identities from its loaded
// graph catalog (cmd/serve does exactly this).
func jobCatalog(jobs []workload.Job) func(app, graphName string, seed uint64) (workload.Job, error) {
	byName := make(map[string]workload.Job)
	for _, job := range jobs {
		app, g := jobNames(job)
		byName[app+"|"+g] = job
	}
	return func(app, graphName string, seed uint64) (workload.Job, error) {
		job, ok := byName[app+"|"+graphName]
		if !ok {
			return workload.Job{}, fmt.Errorf("unknown job %s on %s", app, graphName)
		}
		if job.Seed != seed {
			return workload.Job{}, fmt.Errorf("seed mismatch for %s on %s: %d != %d", app, graphName, seed, job.Seed)
		}
		return job, nil
	}
}

// TestServiceKillRecover is the crash-recovery headline: run a bursty
// 3-tenant load against a journaling service, "kill -9" it at seeded journal
// offsets (truncate the image mid-record, mid-magic, anywhere), recover a new
// service from the surviving prefix, idempotently resubmit everything, and
// require the exact same terminal states, the same per-job charges, stable
// ids for every acknowledged job, and tenant budgets without a double charge
// at any offset.
func TestServiceKillRecover(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(8, 256, 81)
	if err != nil {
		t.Fatal(err)
	}
	resolve := jobCatalog(jobs)
	tenants := []Tenant{
		{Name: "gold", Priority: 2},
		{Name: "silver", Priority: 1},
		{Name: "bronze", Priority: 0},
	}
	baseCfg := func() Config {
		return Config{
			Cluster: cl,
			Tenants: tenants,
			// No cache and no ingress charge: a job's charge is a pure function
			// of (app, graph, seed, cluster), so re-executed work charges what
			// the first execution did and budget comparisons are exact.
			Workers:    2,
			QueueBound: 32,
			Seed:       7,
		}
	}
	keyOf := func(i int) string { return fmt.Sprintf("req-%d", i) }
	tenantOf := func(i int) string { return tenants[i%len(tenants)].Name }

	// Baseline: run everything to completion, keep the journal image.
	journal := NewMemJournal()
	cfg := baseCfg()
	cfg.Journal = journal
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseID := make(map[string]int)
	for i, job := range jobs {
		id, err := svc.SubmitKey(context.Background(), tenantOf(i), keyOf(i), job)
		if err != nil {
			t.Fatalf("job %d rejected: %v", i, err)
		}
		baseID[keyOf(i)] = id
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	baseStatus := make(map[string]JobStatus)
	for i := range jobs {
		st, err := svc.Status(baseID[keyOf(i)])
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("baseline job %d state %s: %s", i, st.State, st.Error)
		}
		baseStatus[keyOf(i)] = st
	}
	baseSpend := make(map[string][2]float64)
	for _, u := range svc.Usage() {
		baseSpend[u.Tenant.Name] = [2]float64{u.SpentSeconds, u.SpentJoules}
	}
	svc.Close()
	img := journal.Bytes()

	// Crash offsets: both edges plus seeded cuts everywhere in between —
	// mid-magic, mid-frame, between a submit and its admit, between a
	// complete and its budget charge. The invariants must hold at ALL of them.
	offsets := []int{0, len(journalMagic) / 2, len(img) - 1, len(img)}
	for i := uint64(0); i < 5; i++ {
		offsets = append(offsets, int(rng.Hash3(81, 0x6b696c6c, i)%uint64(len(img))))
	}

	for _, cut := range offsets {
		t.Run(fmt.Sprintf("offset-%d", cut), func(t *testing.T) {
			check := leakCheck(t)
			j2, rec := NewMemJournalFrom(img[:cut])
			// What the surviving prefix acknowledged: submits whose admit
			// record also made it. Those ids must be stable across recovery.
			acked := make(map[string]int)
			subKeys := make(map[int]string)
			for _, r := range rec.Records {
				switch r.Kind {
				case RecordSubmit:
					subKeys[int(r.Seq)] = r.Key
				case RecordAdmit:
					if k, ok := subKeys[r.ID]; ok {
						acked[k] = r.ID
					}
				}
			}

			cfg := baseCfg()
			cfg.Journal = j2
			cfg.Recovery = rec
			cfg.Resolve = resolve
			svc2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer check()
			defer svc2.Close()

			// The client's crash protocol: resubmit everything with the same
			// idempotency keys. Survivors dedup, lost work re-admits — and
			// nothing conflicts.
			ids := make(map[string]int)
			for i, job := range jobs {
				id, err := svc2.SubmitKey(context.Background(), tenantOf(i), keyOf(i), job)
				if err != nil {
					t.Fatalf("resubmit %d after recovery: %v", i, err)
				}
				ids[keyOf(i)] = id
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := svc2.Drain(ctx); err != nil {
				t.Fatal(err)
			}

			for i := range jobs {
				k := keyOf(i)
				st, err := svc2.Status(ids[k])
				if err != nil {
					t.Fatal(err)
				}
				want := baseStatus[k]
				if st.State != "done" {
					t.Fatalf("cut %d job %s: state %s: %s", cut, k, st.State, st.Error)
				}
				if st.Tenant != want.Tenant || st.App != want.App || st.Graph != want.Graph {
					t.Fatalf("cut %d job %s: identity changed: %+v", cut, k, st)
				}
				if !floatsClose(st.ExecSeconds, want.ExecSeconds) || !floatsClose(st.EnergyJoules, want.EnergyJoules) {
					t.Fatalf("cut %d job %s: charges %g/%g, want %g/%g",
						cut, k, st.ExecSeconds, st.EnergyJoules, want.ExecSeconds, want.EnergyJoules)
				}
				if id, ok := acked[k]; ok && ids[k] != id {
					t.Fatalf("cut %d job %s: acknowledged id %d changed to %d", cut, k, id, ids[k])
				}
			}
			// Tenant budgets: recovered charges plus re-executed charges must
			// equal the baseline spend exactly once per job — a double charge
			// (complete record AND derived charge AND live re-charge) would
			// show up here at the offsets that split record pairs.
			for _, u := range svc2.Usage() {
				want, ok := baseSpend[u.Tenant.Name]
				if !ok {
					continue
				}
				if !floatsClose(u.SpentSeconds, want[0]) || !floatsClose(u.SpentJoules, want[1]) {
					t.Fatalf("cut %d tenant %s: spend %g/%g, want %g/%g",
						cut, u.Tenant.Name, u.SpentSeconds, u.SpentJoules, want[0], want[1])
				}
			}
			c := svc2.Counters()
			if got := int(c.Deduped); got != len(acked) {
				t.Fatalf("cut %d: deduped %d, want %d (one per acknowledged job)", cut, got, len(acked))
			}
			// The journal left behind must itself recover cleanly.
			if _, _, err := DecodeJournal(j2.Bytes()); err != nil {
				t.Fatalf("cut %d: post-recovery journal not clean: %v", cut, err)
			}
		})
	}
}

// TestServiceIdempotentResubmit pins the dedup contract on a live service:
// same key + same work returns the original id without re-executing or
// re-charging; same key + different work is a client bug (ErrKeyConflict).
func TestServiceIdempotentResubmit(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(3, 256, 91)
	if err != nil {
		t.Fatal(err)
	}
	check := leakCheck(t)
	svc, err := New(Config{Cluster: cl, Workers: 2, Journal: NewMemJournal()})
	if err != nil {
		t.Fatal(err)
	}
	defer check()
	defer svc.Close()

	id, err := svc.SubmitKey(context.Background(), "t", "once", jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Dedup while queued/running...
	id2, err := svc.SubmitKey(context.Background(), "t", "once", jobs[0])
	if err != nil || id2 != id {
		t.Fatalf("dup submit: id %d err %v, want %d", id2, err, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// ...and after completion.
	id3, err := svc.SubmitKey(context.Background(), "t", "once", jobs[0])
	if err != nil || id3 != id {
		t.Fatalf("post-done dup submit: id %d err %v, want %d", id3, err, id)
	}
	// Same key, different work: rejected, original job untouched.
	if _, err := svc.SubmitKey(context.Background(), "t", "once", jobs[1]); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("key conflict: got %v", err)
	}
	c := svc.Counters()
	if c.Completed != 1 || c.Deduped != 2 {
		t.Fatalf("counters: %+v", c)
	}
	st, err := svc.Status(id)
	if err != nil || st.State != "done" || st.Key != "once" {
		t.Fatalf("status: %+v err %v", st, err)
	}
	// Keyless submissions never dedup against each other.
	a, err := svc.Submit(context.Background(), "t", jobs[2])
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Submit(context.Background(), "t", jobs[2])
	if err != nil || a == b {
		t.Fatalf("keyless submits shared id %d", a)
	}
}

// TestServiceDrainCloseUnderLoad hammers Drain and Close while submitters are
// still racing: concurrent keyed and keyless submissions (including duplicate
// keys from different goroutines), then a drain, then a close mid-traffic.
// Every accepted job must reach a terminal state, duplicate keys must resolve
// to one id, and no goroutine may leak.
func TestServiceDrainCloseUnderLoad(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(4, 256, 101)
	if err != nil {
		t.Fatal(err)
	}
	check := leakCheck(t)
	svc, err := New(Config{
		Cluster:    cl,
		Workers:    4,
		QueueBound: 64,
		Journal:    NewMemJournal(),
		Tenants:    []Tenant{{Name: "gold", Priority: 1}, {Name: "bronze"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	const submitters = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	idsByKey := make(map[string]map[int]bool)
	accepted := make(map[int]bool)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				job := jobs[(g+i)%len(jobs)]
				tenant := "bronze"
				if g%2 == 0 {
					tenant = "gold"
				}
				// Half the traffic shares keys across goroutines: the dedup
				// index is exercised under real contention.
				key := ""
				if i%2 == 0 {
					key = fmt.Sprintf("shared-%d", (g+i)%len(jobs))
				}
				id, err := svc.SubmitKey(context.Background(), tenant, key, job)
				if err != nil {
					continue // overload/closed rejections are fine under load
				}
				mu.Lock()
				accepted[id] = true
				if key != "" {
					if idsByKey[key] == nil {
						idsByKey[key] = make(map[int]bool)
					}
					idsByKey[key][id] = true
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // idempotent
	check()

	for key, ids := range idsByKey {
		if len(ids) != 1 {
			t.Errorf("key %s resolved to %d distinct ids", key, len(ids))
		}
	}
	for id := range accepted {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "shed", "canceled":
		default:
			t.Errorf("job %d left in state %s", id, st.State)
		}
	}
	if _, err := svc.SubmitKey(context.Background(), "gold", "late", jobs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	// The journal the run left behind must decode cleanly.
	c := svc.Counters()
	if c.JournalErrors != 0 {
		t.Fatalf("journal errors under clean load: %+v", c)
	}
}

// TestServiceDegradedMode pins graceful degradation: an injected journal
// write failure flips the service into shedding mode — new submissions reject
// with ErrDegraded, admitted work drains, nothing panics, the trace stream
// carries the transition, and the journal image left behind recovers to a
// consistent prefix.
func TestServiceDegradedMode(t *testing.T) {
	t.Run("machine", func(t *testing.T) {
		inner := NewMemJournal()
		// Appends 1-2 are job 1's submit+admit; append 3 (job 2's submit)
		// tears, degrading the service mid-admission.
		fj, err := NewFaultJournal(inner, 11, JournalFaultSpec{EveryN: 3, Kinds: []JournalFaultKind{JournalTornTail}})
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		m := newMachine(mustNormalize(t, Config{Cluster: caseTwo(t), QueueBound: 8, Journal: fj, Trace: rec}))
		job := workload.Job{}

		js1, _, err := m.submit(0, "t", "", job, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.submit(1, "t", "", job, nil, 0); !errors.Is(err, ErrDegraded) {
			t.Fatalf("torn submit record: got %v", err)
		}
		if !m.degraded {
			t.Fatal("machine not degraded after journal failure")
		}
		// Degraded is sticky: later submissions shed at the door.
		if _, _, err := m.submit(2, "t", "", job, nil, 0); !errors.Is(err, ErrDegraded) {
			t.Fatalf("degraded submit: got %v", err)
		}
		// Admitted work still drains — and its lifecycle records are skipped,
		// not crashed on.
		if d, _ := m.dispatch(3); d != js1 {
			t.Fatal("queued job not dispatchable while degraded")
		}
		m.complete(3, js1, &workload.JobResult{Exec: &engine.Result{}})
		if js1.state != StateDone {
			t.Fatalf("job 1 state %s", js1.state)
		}
		c := m.counters
		if c.JournalErrors != 1 || c.RejectedDegraded != 1 || c.Admitted != 1 {
			t.Fatalf("counters: %+v", c)
		}
		degradedEvents := 0
		for _, e := range rec.Events {
			if e.Kind == trace.KindDegraded {
				degradedEvents++
			}
		}
		if degradedEvents != 1 {
			t.Fatalf("%d degraded trace events, want 1", degradedEvents)
		}
		// The torn image recovers to the intact prefix: job 1 fully admitted.
		recov := RecoverBytes(inner.Bytes())
		if recov.Err == nil || len(recov.Records) != 2 {
			t.Fatalf("recovery: %d records, err %v", len(recov.Records), recov.Err)
		}
	})

	t.Run("service", func(t *testing.T) {
		cl := caseTwo(t)
		jobs, err := workload.RandomJobs(2, 256, 111)
		if err != nil {
			t.Fatal(err)
		}
		fj, err := NewFaultJournal(NewMemJournal(), 13, JournalFaultSpec{EveryN: 1, Kinds: []JournalFaultKind{JournalSyncError}})
		if err != nil {
			t.Fatal(err)
		}
		check := leakCheck(t)
		svc, err := New(Config{Cluster: cl, Workers: 2, Journal: fj})
		if err != nil {
			t.Fatal(err)
		}
		defer check()
		defer svc.Close()

		if _, err := svc.Submit(context.Background(), "t", jobs[0]); !errors.Is(err, ErrDegraded) {
			t.Fatalf("first submit with failing journal: %v", err)
		}
		deg, derr := svc.Degraded()
		if !deg || derr == nil {
			t.Fatalf("Degraded() = %v, %v", deg, derr)
		}
		if _, err := svc.Submit(context.Background(), "t", jobs[1]); !errors.Is(err, ErrDegraded) {
			t.Fatalf("second submit: %v", err)
		}
		c := svc.Counters()
		if c.RejectedDegraded != 1 || c.JournalErrors != 1 {
			t.Fatalf("counters: %+v", c)
		}
	})
}

// TestServiceRecoverUnresolvable pins the loud-failure path for recovered
// in-flight work whose workload cannot be rebuilt: the job fails (visibly,
// with a journaled fail record) instead of haunting the queue.
func TestServiceRecoverUnresolvable(t *testing.T) {
	img := EncodeJournal([]Record{
		{Kind: RecordSubmit, Tenant: "t", App: "ghost-app", Graph: "ghost-graph", Key: "k1"},
		{Kind: RecordAdmit, ID: 1},
	})
	j, rec := NewMemJournalFrom(img)
	m := newMachine(mustNormalize(t, Config{Cluster: caseTwo(t), Journal: j}))
	m.restore(rec.Records, func(app, graphName string, seed uint64) (workload.Job, error) {
		return workload.Job{}, fmt.Errorf("no such graph")
	})
	js := m.jobs[1]
	if js == nil || js.state != StateFailed {
		t.Fatalf("unresolvable job: %+v", js)
	}
	if m.counters.RecoveredRequeued != 0 || m.counters.Failed != 1 {
		t.Fatalf("counters: %+v", m.counters)
	}
	// The fail was journaled, so the NEXT recovery agrees without a resolver.
	recs, _, err := DecodeJournal(j.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Kind != RecordFail || last.ID != 1 {
		t.Fatalf("last record %+v, want fail for job 1", last)
	}
	m2 := newMachine(mustNormalize(t, Config{Cluster: caseTwo(t)}))
	m2.restore(recs, nil)
	if js2 := m2.jobs[1]; js2 == nil || js2.state != StateFailed {
		t.Fatalf("second recovery: %+v", js2)
	}

	// A submit without its admit record was never acknowledged: dropped.
	img2 := EncodeJournal([]Record{
		{Kind: RecordSubmit, Tenant: "t", App: "a", Graph: "g", Key: "k2"},
	})
	m3 := newMachine(mustNormalize(t, Config{Cluster: caseTwo(t)}))
	_, rec3 := NewMemJournalFrom(img2)
	m3.restore(rec3.Records, nil)
	if len(m3.jobs) != 0 || m3.counters.Admitted != 0 {
		t.Fatalf("unacknowledged submit admitted: %d jobs", len(m3.jobs))
	}
}
