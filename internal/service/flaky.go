package service

import (
	"errors"
	"fmt"

	"proxygraph/internal/rng"
)

// ErrTransient marks an injected transient attempt failure; retries are
// expected to clear it.
var ErrTransient = errors.New("service: injected transient fault")

// Flaky injects deterministic transient errors into job attempts — the
// simulated analogue of flaky ingress I/O (a partition fetch timing out, a
// mirror-table exchange dropping a connection). Each job id draws a failure
// count in [0, MaxFailures] from Seed; the job's first that-many attempts
// fail with ErrTransient and every later attempt runs normally. The count is
// a pure function of (Seed, job id, attempt), so a service configured with
// MaxRetries >= MaxFailures deterministically completes every admitted job —
// the property the chaos-equivalence test pins.
type Flaky struct {
	// Seed selects the per-job failure pattern.
	Seed uint64
	// MaxFailures bounds the consecutive failures of any one job.
	MaxFailures int
}

// Failures returns how many leading attempts of jobID fail.
func (f *Flaky) Failures(jobID int) int {
	if f == nil || f.MaxFailures <= 0 {
		return 0
	}
	return int(rng.Hash3(f.Seed, 0x666c616b /* "flak" */, uint64(jobID)) % uint64(f.MaxFailures+1))
}

// Err returns the injected error for a job's attempt (0-based), or nil when
// the attempt should run. A nil *Flaky never fails anything.
func (f *Flaky) Err(jobID, attempt int) error {
	if n := f.Failures(jobID); attempt < n {
		return fmt.Errorf("%w (job %d attempt %d/%d)", ErrTransient, jobID, attempt, n)
	}
	return nil
}
