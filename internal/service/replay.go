package service

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"proxygraph/internal/apps"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/workload"
)

// Arrival is one submission in a replay scenario, timed in simulated seconds.
type Arrival struct {
	// AtSeconds is the submission time on the simulated clock. Arrivals are
	// processed in (AtSeconds, slice order).
	AtSeconds float64
	// Tenant names the submitting tenant.
	Tenant string
	// Job is the work.
	Job workload.Job
	// DeadlineSeconds, when positive, sheds the job if it has not started
	// running within that many seconds of arrival.
	DeadlineSeconds float64
}

// ReplayReport is the deterministic outcome of a replayed scenario: same
// Config and arrivals, byte-identical report — the property the overload
// study's golden file pins.
type ReplayReport struct {
	// Counters aggregates the run's control-plane activity.
	Counters Counters
	// Jobs holds every admitted job's final status, ordered by id.
	Jobs []JobStatus
	// Tenants holds per-tenant spend, ordered by name.
	Tenants []TenantUsage
	// Rejections maps each arrival index that was rejected to its verdict
	// ("overload", "breaker", "budget").
	Rejections map[int]string
	// QueueWaitP50 and QueueWaitP99 summarize the dispatch waits in
	// simulated seconds.
	QueueWaitP50, QueueWaitP99 float64
	// SimSeconds is the simulated clock when the last job finished.
	SimSeconds float64
	// Cache snapshots the placement cache after the run (zero value when the
	// config has none).
	Cache workload.CacheStats
}

// Replay runs a scenario through the exact control-plane state machine the
// live Service uses, but on a discrete-event simulated clock with
// cfg.Workers simulated executors: a running attempt occupies an executor
// for its simulated makespan (charged ingress plus execution), a failed
// attempt fails instantly and waits out its jittered backoff in simulated
// time. Replay is single-threaded, so identical inputs give identical
// output — the concurrency properties live in the Service tests, the policy
// and accounting determinism lives here.
func Replay(cfg Config, arrivals []Arrival) (*ReplayReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	pool, err := core.BuildPool(cfg.Cluster, apps.WithExtensions(), cfg.Estimator)
	if err != nil {
		return nil, err
	}
	session := &workload.Session{
		Cluster:       cfg.Cluster,
		Partitioner:   cfg.Partitioner,
		Cache:         cfg.Cache,
		ChargeIngress: cfg.ChargeIngress,
	}
	m := newMachine(cfg)
	rep := &ReplayReport{Rejections: map[int]string{}}

	// One executing attempt on a simulated worker.
	type run struct {
		js     *jobState
		finish float64
		jr     *workload.JobResult
	}
	var active []run
	clock, next := 0.0, 0
	for {
		// Admit every arrival due at the current clock.
		for next < len(arrivals) && arrivals[next].AtSeconds <= clock {
			a := arrivals[next]
			deadline := 0.0
			if a.DeadlineSeconds > 0 {
				deadline = a.AtSeconds + a.DeadlineSeconds
			}
			if _, _, err := m.submit(a.AtSeconds, a.Tenant, "", a.Job, nil, deadline); err != nil {
				rep.Rejections[next] = verdict(err)
			}
			next++
		}
		// Fill free executors. Failed attempts (injected or real) cost zero
		// simulated time and re-queue immediately with backoff, so the loop
		// continues until nothing is ready now.
		var idleWait float64
		for len(active) < cfg.Workers {
			js, wait := m.dispatch(clock)
			if js == nil {
				idleWait = wait
				break
			}
			if err := cfg.Flaky.Err(js.id, js.attempts); err != nil {
				m.fail(clock, js, err, true)
				continue
			}
			jr, err := session.RunJob(pool, js.job, engine.Options{Fault: cfg.Fault, Trace: cfg.Trace})
			if err != nil {
				m.fail(clock, js, err, true)
				continue
			}
			active = append(active, run{js: js, finish: clock + jr.IngressSeconds + jr.Exec.SimSeconds, jr: jr})
		}
		// Advance to the next event: an arrival, a finish, or a backoff
		// expiring while an executor is free.
		event := math.Inf(1)
		if next < len(arrivals) {
			event = arrivals[next].AtSeconds
		}
		for _, r := range active {
			event = math.Min(event, r.finish)
		}
		if len(active) < cfg.Workers && idleWait > 0 {
			event = math.Min(event, clock+idleWait)
		}
		if math.IsInf(event, 1) {
			break
		}
		clock = event
		// Complete finishes due now, deterministically ordered by (finish
		// time, job id).
		sort.Slice(active, func(a, b int) bool {
			if active[a].finish != active[b].finish {
				return active[a].finish < active[b].finish
			}
			return active[a].js.id < active[b].js.id
		})
		kept := active[:0]
		for _, r := range active {
			if r.finish <= clock {
				m.complete(clock, r.js, r.jr)
				rep.SimSeconds = clock
			} else {
				kept = append(kept, r)
			}
		}
		active = kept
	}
	if !m.idle() || len(active) > 0 {
		return nil, fmt.Errorf("service: replay stalled with %d queued, %d running", len(m.queue), len(active))
	}

	rep.Counters = m.counters
	rep.Jobs = m.list("")
	rep.Tenants = m.usage()
	rep.QueueWaitP50 = percentile(m.queueWaits, 0.50)
	rep.QueueWaitP99 = percentile(m.queueWaits, 0.99)
	if cfg.Cache != nil {
		rep.Cache = cfg.Cache.Stats()
	}
	return rep, nil
}

// verdict names a typed admission error for the rejection map.
func verdict(err error) string {
	switch {
	case errors.Is(err, ErrCircuitOpen):
		return "breaker"
	case errors.Is(err, ErrBudgetExhausted):
		return "budget"
	default:
		return "overload"
	}
}

// percentile returns the p-quantile (nearest-rank) of xs, 0 when empty.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}
