package service

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sampleRecords exercises every record kind, every string field, and the
// numeric edge cases (negative priority, NaN-free floats, max-ish ids).
func sampleRecords() []Record {
	return []Record{
		{Kind: RecordSubmit, Tenant: "gold", App: "pagerank", Graph: "LiveJournal", Key: "req-1",
			Seed: 0xdeadbeef, Fingerprint: 42, Priority: 2},
		{Kind: RecordAdmit, ID: 1},
		{Kind: RecordStart, ID: 1, Attempt: 0},
		{Kind: RecordRetry, ID: 1, Attempt: 1, Seconds: 0.125},
		{Kind: RecordComplete, ID: 1, Attempt: 1, Seconds: 3.5, Ingress: 0.25, Energy: 700.5, Flag: true},
		{Kind: RecordBudgetCharge, ID: 1, Tenant: "gold", Seconds: 3.75, Energy: 700.5},
		{Kind: RecordFail, ID: 2, Attempt: 3, Error: "service: transient attempt failure (injected)"},
		{Kind: RecordShed, ID: 3, Error: "priority"},
		{Kind: RecordSubmit, Tenant: "bronze", Priority: -1}, // empty strings, zero job
	}
}

// TestServiceJournalRoundTrip pins the canonical-codec property directly:
// encode∘decode is the identity, sequence numbers are positional, and a clean
// image decodes with no error and full coverage.
func TestServiceJournalRoundTrip(t *testing.T) {
	recs := sampleRecords()
	img := EncodeJournal(recs)
	got, good, err := DecodeJournal(img)
	if err != nil {
		t.Fatalf("clean decode: %v", err)
	}
	if good != len(img) {
		t.Fatalf("good=%d, want %d", good, len(img))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		want := recs[i]
		want.Seq = uint64(i + 1)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

// TestServiceJournalTornTail pins crash-artifact tolerance: truncating a clean
// image at EVERY byte offset decodes without panic to an intact prefix of
// whole records, and the reported good offset is re-decodable and appendable.
func TestServiceJournalTornTail(t *testing.T) {
	recs := sampleRecords()
	img := EncodeJournal(recs)
	for cut := 0; cut <= len(img); cut++ {
		torn := img[:cut]
		got, good, err := DecodeJournal(torn)
		if good > cut {
			t.Fatalf("cut %d: good=%d beyond image", cut, good)
		}
		if cut == len(img) && err != nil {
			t.Fatalf("full image decode failed: %v", err)
		}
		// Every decoded record must match the original prefix exactly.
		for i := range got {
			want := recs[i]
			want.Seq = uint64(i + 1)
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("cut %d record %d mismatch", cut, i)
			}
		}
		// The good prefix must itself decode cleanly (idempotent recovery).
		again, g2, err2 := DecodeJournal(torn[:good])
		if err2 != nil || g2 != good || len(again) != len(got) {
			t.Fatalf("cut %d: good prefix not clean: %v", cut, err2)
		}
	}
}

// TestServiceJournalCorruption flips every byte of a small image (one at a
// time) and asserts decode never panics, never fabricates extra records, and
// loses at most the records at or after the corrupted frame.
func TestServiceJournalCorruption(t *testing.T) {
	recs := sampleRecords()[:4]
	img := EncodeJournal(recs)
	for pos := 0; pos < len(img); pos++ {
		for _, bit := range []byte{0x01, 0x80} {
			corrupt := append([]byte(nil), img...)
			corrupt[pos] ^= bit
			got, good, _ := DecodeJournal(corrupt)
			if good > len(corrupt) {
				t.Fatalf("pos %d: good=%d beyond image", pos, good)
			}
			if len(got) > len(recs) {
				t.Fatalf("pos %d: decoded %d records from corrupt image of %d", pos, len(got), len(recs))
			}
			// Records decoded from before the corruption must be untouched.
			for i := range got {
				want := recs[i]
				want.Seq = uint64(i + 1)
				if !reflect.DeepEqual(got[i], want) && pos >= len(journalMagic) {
					t.Fatalf("pos %d: surviving record %d altered", pos, i)
				}
			}
		}
	}
}

// TestServiceFileJournal pins the file-backed journal end to end: append,
// reopen, recover, torn-tail truncation, and sequence continuation.
func TestServiceFileJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, rec, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(rec.Records))
	}
	recs := sampleRecords()
	for i, r := range recs {
		seq, err := j.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate kill -9 mid-write: chop half of the final frame off.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, img[:len(img)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec2.Err == nil {
		t.Fatal("torn tail not reported")
	}
	if len(rec2.Records) != len(recs)-1 {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(recs)-1)
	}
	// The torn tail must be truncated so the next append extends a clean image.
	seq, err := j2.Append(Record{Kind: RecordAdmit, ID: 99})
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(recs)) {
		t.Fatalf("sequence after recovery: %d, want %d", seq, len(recs))
	}
	img2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeJournal(img2)
	if err != nil {
		t.Fatalf("journal not clean after recovery+append: %v", err)
	}
	if len(got) != len(recs) || got[len(got)-1].ID != 99 {
		t.Fatalf("post-recovery image has %d records", len(got))
	}
}

// TestServiceMemJournalFrom pins the in-memory fake's recovery semantics
// against the file implementation's: same prefix keeping, same sequence.
func TestServiceMemJournalFrom(t *testing.T) {
	j := NewMemJournal()
	recs := sampleRecords()
	for _, r := range recs {
		if _, err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	img := j.Bytes()
	j2, rec := NewMemJournalFrom(img[:len(img)-3])
	if rec.Err == nil || len(rec.Records) != len(recs)-1 {
		t.Fatalf("recovered %d records, err %v", len(rec.Records), rec.Err)
	}
	seq, err := j2.Append(Record{Kind: RecordAdmit, ID: 7})
	if err != nil || seq != uint64(len(recs)) {
		t.Fatalf("seq %d err %v", seq, err)
	}
	if _, _, err := DecodeJournal(j2.Bytes()); err != nil {
		t.Fatalf("image not clean: %v", err)
	}
}

// TestServiceFaultJournal pins each injected fault kind's contract: what
// lands on disk, what error the writer sees, and what the next recovery
// salvages.
func TestServiceFaultJournal(t *testing.T) {
	r := Record{Kind: RecordSubmit, Tenant: "t", App: "a", Graph: "g"}

	t.Run("torn-tail", func(t *testing.T) {
		inner := NewMemJournal()
		fj, err := NewFaultJournal(inner, 1, JournalFaultSpec{EveryN: 2, Kinds: []JournalFaultKind{JournalTornTail}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fj.Append(r); err != nil {
			t.Fatal(err)
		}
		if _, err := fj.Append(r); err == nil || !strings.Contains(err.Error(), "torn") {
			t.Fatalf("torn append err = %v", err)
		}
		recs, _, derr := DecodeJournal(inner.Bytes())
		if derr == nil || len(recs) != 1 {
			t.Fatalf("recovered %d records, err %v", len(recs), derr)
		}
	})

	t.Run("short-write", func(t *testing.T) {
		inner := NewMemJournal()
		fj, err := NewFaultJournal(inner, 2, JournalFaultSpec{EveryN: 1, Kinds: []JournalFaultKind{JournalShortWrite}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fj.Append(r); !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("short write err = %v", err)
		}
		if recs, _, derr := DecodeJournal(inner.Bytes()); derr != nil || len(recs) != 0 {
			t.Fatalf("short write persisted something: %d records, err %v", len(recs), derr)
		}
	})

	t.Run("corrupt-bit", func(t *testing.T) {
		inner := NewMemJournal()
		fj, err := NewFaultJournal(inner, 3, JournalFaultSpec{EveryN: 3, Kinds: []JournalFaultKind{JournalCorruptBit}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := fj.Append(r); err != nil {
				t.Fatalf("append %d: bit rot must be silent, got %v", i, err)
			}
		}
		// The writer saw three successes; recovery catches the rot via CRC.
		recs, _, derr := DecodeJournal(inner.Bytes())
		if derr == nil {
			t.Fatal("corruption not detected at decode")
		}
		if len(recs) != 2 {
			t.Fatalf("recovered %d records, want the 2 intact ones", len(recs))
		}
	})

	t.Run("sync-error", func(t *testing.T) {
		inner := NewMemJournal()
		fj, err := NewFaultJournal(inner, 4, JournalFaultSpec{EveryN: 1, Kinds: []JournalFaultKind{JournalSyncError}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fj.Append(r); err == nil || !strings.Contains(err.Error(), "fsync") {
			t.Fatalf("sync err = %v", err)
		}
		// Bytes are present (the conservative model) but unacknowledged.
		if recs, _, derr := DecodeJournal(inner.Bytes()); derr != nil || len(recs) != 1 {
			t.Fatalf("sync-error image: %d records, err %v", len(recs), derr)
		}
	})

	t.Run("deterministic-schedule", func(t *testing.T) {
		pick := func() []JournalFaultKind {
			inner := NewMemJournal()
			fj, err := NewFaultJournal(inner, 9, JournalFaultSpec{EveryN: 2})
			if err != nil {
				t.Fatal(err)
			}
			var kinds []JournalFaultKind
			for i := uint64(1); i <= 10; i++ {
				kinds = append(kinds, fj.faultFor(i))
			}
			return kinds
		}
		a := pick()
		if !reflect.DeepEqual(pick(), a) {
			t.Fatal("schedule not deterministic")
		}
		faulted := 0
		for i, k := range a {
			if (i+1)%2 == 0 {
				if k < 0 {
					t.Fatalf("append %d should fault", i+1)
				}
				faulted++
			} else if k >= 0 {
				t.Fatalf("append %d should be clean", i+1)
			}
		}
		if faulted != 5 {
			t.Fatalf("faulted %d of 10", faulted)
		}
	})

	t.Run("spec-validation", func(t *testing.T) {
		if _, err := NewFaultJournal(NewMemJournal(), 0, JournalFaultSpec{EveryN: -1}); err == nil {
			t.Error("negative EveryN accepted")
		}
		if _, err := NewFaultJournal(NewMemJournal(), 0, JournalFaultSpec{Kinds: []JournalFaultKind{99}}); err == nil {
			t.Error("unknown kind accepted")
		}
		if _, err := NewFaultJournal(badJournal{}, 0, JournalFaultSpec{}); err == nil {
			t.Error("non-raw journal accepted")
		}
	})
}

// badJournal is a Journal without byte-level access.
type badJournal struct{}

func (badJournal) Append(Record) (uint64, error) { return 0, nil }
func (badJournal) Close() error                  { return nil }
