package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/fault"
	"proxygraph/internal/trace"
	"proxygraph/internal/workload"
)

func caseTwo(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(
		cluster.LocalXeon("xeon-4c", 4, 2.5),
		cluster.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// leakCheck fails the test if the goroutine count has not returned to its
// starting level shortly after the service closes.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after close", before, runtime.NumGoroutine())
	}
}

// TestServiceChaosEquivalence is the headline robustness property: under a
// fault schedule (crash + straggler with checkpoint recovery) plus injected
// transient attempt errors, the concurrent service with retries completes
// every admitted job, and every job's application output is bit-identical to
// a fault-free sequential Session run of the same jobs.
func TestServiceChaosEquivalence(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(12, 256, 21)
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free sequential baseline under the same estimator New defaults to.
	session := &workload.Session{Cluster: cl}
	pool, err := core.BuildPool(cl, apps.All(), core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	base := make([]*engine.Result, len(jobs))
	for i, job := range jobs {
		jr, err := session.RunJob(pool, job, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		base[i] = jr.Exec
	}

	sched := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, Step: 2, Machine: 0},
		{Kind: fault.Straggler, Step: 1, Machine: 1, Duration: 2, Factor: 0.5},
	}}
	if err := sched.Validate(len(cl.Machines)); err != nil {
		t.Fatal(err)
	}

	check := leakCheck(t)
	svc, err := New(Config{
		Cluster: cl,
		Fault: &engine.FaultConfig{
			Injector:        sched,
			CheckpointEvery: 2,
			Policy:          engine.RecoverCheckpoint,
		},
		Flaky:      &Flaky{Seed: 99, MaxFailures: 2},
		MaxRetries: 3,
		// Tight backoff keeps the wall-clock test fast; jitter still applies.
		BaseBackoff: 0.001, MaxBackoff: 0.01,
		Workers: 4,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer check()
	defer svc.Close()

	ids := make([]int, len(jobs))
	for i, job := range jobs {
		id, err := svc.Submit(context.Background(), "tenant-a", job)
		if err != nil {
			t.Fatalf("job %d rejected: %v", i, err)
		}
		ids[i] = id
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	retried := 0
	for i, id := range ids {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("job %d (%s/%s): state %s after %d attempts: %s",
				i, st.App, st.Graph, st.State, st.Attempts, st.Error)
		}
		retried += st.Attempts
		res, err := svc.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		// The recovery guarantee lifts to the service: the faulted, retried,
		// concurrent run matches the clean sequential run — exactly for
		// integer/min-style outputs, within the chaos suite's 1e-12 float
		// tolerance for sums that re-associate on the survivor placement.
		if !outputsClose(res.Output, base[i].Output) {
			t.Fatalf("job %d (%s on %s): output diverged from fault-free baseline", i, st.App, st.Graph)
		}
		if res.Recoveries == 0 && res.Supersteps > 2 {
			t.Errorf("job %d: crash at step 2 never recovered (supersteps %d)", i, res.Supersteps)
		}
	}
	if retried == 0 {
		t.Error("flaky injector with MaxFailures=2 caused no retries across 12 jobs")
	}
	c := svc.Counters()
	if c.Completed != uint64(len(jobs)) || c.Failed != 0 {
		t.Fatalf("counters: %+v", c)
	}
	if c.Retries == 0 {
		t.Error("no retries counted")
	}
}

// outputsClose compares application outputs structurally: floats within the
// chaos suite's relative 1e-12, everything else exactly.
func outputsClose(a, b any) bool {
	return valsClose(reflect.ValueOf(a), reflect.ValueOf(b))
}

func valsClose(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		x, y := a.Float(), b.Float()
		return math.Abs(x-y) <= 1e-12*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !valsClose(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Interface, reflect.Pointer:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return valsClose(a.Elem(), b.Elem())
	default:
		return a.CanInterface() && b.CanInterface() &&
			reflect.DeepEqual(a.Interface(), b.Interface())
	}
}

// TestServiceAdmissionControl pins queue bounds and priority shedding: a full
// global queue rejects equal-priority arrivals, sheds lower-priority queued
// jobs for higher-priority ones, and the per-tenant bound rejects a flooding
// tenant without touching others.
func TestServiceAdmissionControl(t *testing.T) {
	m := newMachine(mustNormalize(t, Config{
		Cluster:          caseTwo(t),
		QueueBound:       3,
		TenantQueueBound: 2,
		Tenants: []Tenant{
			{Name: "gold", Priority: 2},
			{Name: "bronze", Priority: 0},
		},
	}))
	job := workload.Job{}

	// bronze fills its per-tenant bound of 2.
	b1, _, err := m.submit(0, "bronze", "", job, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.submit(0, "bronze", "", job, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.submit(0, "bronze", "", job, nil, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("tenant bound: got %v", err)
	}
	// gold takes the last global slot...
	if _, _, err := m.submit(0, "gold", "", job, nil, 0); err != nil {
		t.Fatal(err)
	}
	// ...then sheds the oldest bronze job for the next gold arrival.
	g2, _, err := m.submit(0, "gold", "", job, nil, 0)
	if err != nil {
		t.Fatalf("priority arrival should shed, got %v", err)
	}
	if b1.state != StateShed {
		t.Fatalf("bronze job state %s, want shed", b1.state)
	}
	if g2.state != StateQueued {
		t.Fatalf("gold job state %s", g2.state)
	}
	// gold cannot shed gold: at its own per-tenant bound it is rejected.
	if _, _, err := m.submit(0, "gold", "", job, nil, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("equal-priority overload: got %v", err)
	}
	c := m.counters
	if c.ShedPriority != 1 || c.RejectedOverload != 2 || c.Admitted != 4 {
		t.Fatalf("counters: %+v", c)
	}
	// Dispatch order: gold jobs (higher priority) leave the queue first even
	// though bronze arrived earlier.
	first, _ := m.dispatch(1)
	if first == nil || first.priority != 2 {
		t.Fatalf("dispatched %+v, want a gold job", first)
	}
}

func mustNormalize(t *testing.T, cfg Config) Config {
	t.Helper()
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestServiceBreaker walks the breaker's full cycle on the state machine:
// consecutive failures trip it open, cooldown admits a half-open probe,
// a failed probe re-opens, a successful probe closes.
func TestServiceBreaker(t *testing.T) {
	cfg := mustNormalize(t, Config{
		Cluster:          caseTwo(t),
		BreakerThreshold: 2,
		BreakerCooldown:  5,
		QueueBound:       10,
	})
	m := newMachine(cfg)
	job := workload.Job{}
	failOnce := func(now float64) {
		js, _, err := m.submit(now, "t", "", job, nil, 0)
		if err != nil {
			t.Fatalf("submit at %g: %v", now, err)
		}
		d, _ := m.dispatch(now)
		if d != js {
			t.Fatalf("dispatch at %g returned %v", now, d)
		}
		m.fail(now, js, errors.New("boom"), false)
	}

	failOnce(0)
	failOnce(1) // second consecutive failure: trips
	if ts := m.tenant("t"); ts.breaker != breakerOpen {
		t.Fatalf("breaker state %d, want open", ts.breaker)
	}
	if _, _, err := m.submit(2, "t", "", job, nil, 0); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker admitted: %v", err)
	}
	// Cooldown elapses: one probe admitted, a second rejected while it runs.
	probe, _, err := m.submit(7, "t", "", job, nil, 0)
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if _, _, err := m.submit(7, "t", "", job, nil, 0); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second probe admitted: %v", err)
	}
	// Failed probe re-opens and counts a trip.
	if d, _ := m.dispatch(7); d != probe {
		t.Fatal("probe not dispatched")
	}
	m.fail(7, probe, errors.New("boom"), false)
	if ts := m.tenant("t"); ts.breaker != breakerOpen {
		t.Fatal("failed probe did not re-open breaker")
	}
	// Next cooldown: successful probe closes.
	probe2, _, err := m.submit(13, "t", "", job, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := m.dispatch(13); d != probe2 {
		t.Fatal("probe2 not dispatched")
	}
	m.complete(13, probe2, &workload.JobResult{Exec: &engine.Result{}})
	if ts := m.tenant("t"); ts.breaker != breakerClosed {
		t.Fatal("successful probe did not close breaker")
	}
	if m.counters.BreakerTrips != 2 {
		t.Fatalf("trips = %d, want 2", m.counters.BreakerTrips)
	}
}

// TestServiceBudget pins post-paid budget enforcement: jobs admit until the
// tenant's charged spend crosses its cap, then reject with ErrBudgetExhausted.
func TestServiceBudget(t *testing.T) {
	cfg := mustNormalize(t, Config{
		Cluster: caseTwo(t),
		Tenants: []Tenant{{Name: "metered", Budget: Budget{SimSeconds: 1.0}}},
	})
	m := newMachine(cfg)
	job := workload.Job{}
	js, _, err := m.submit(0, "metered", "", job, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := m.dispatch(0); d != js {
		t.Fatal("dispatch")
	}
	m.complete(0, js, &workload.JobResult{Exec: &engine.Result{SimSeconds: 0.6}, IngressSeconds: 0.3})
	// 0.9s spent: still under budget.
	js2, _, err := m.submit(1, "metered", "", job, nil, 0)
	if err != nil {
		t.Fatalf("under-budget submit rejected: %v", err)
	}
	if d, _ := m.dispatch(1); d != js2 {
		t.Fatal("dispatch 2")
	}
	m.complete(1, js2, &workload.JobResult{Exec: &engine.Result{SimSeconds: 0.5}})
	// 1.4s spent >= 1.0 cap: cut off.
	if _, _, err := m.submit(2, "metered", "", job, nil, 0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget submit: %v", err)
	}
	if m.counters.RejectedBudget != 1 {
		t.Fatalf("counters: %+v", m.counters)
	}
}

// TestServiceBackoffDeterministic pins the retry delay arithmetic: capped
// exponential growth, jitter within [0.5, 1.5), and bit-identical values for
// identical (seed, job, attempt) triples.
func TestServiceBackoffDeterministic(t *testing.T) {
	cfg := mustNormalize(t, Config{Cluster: caseTwo(t), BaseBackoff: 0.1, MaxBackoff: 1, Seed: 5})
	a, b := newMachine(cfg), newMachine(cfg)
	for attempt := 1; attempt <= 8; attempt++ {
		d := a.backoff(3, attempt)
		if d != b.backoff(3, attempt) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		base := math.Min(1, 0.1*math.Pow(2, float64(attempt-1)))
		if d < 0.5*base || d >= 1.5*base {
			t.Fatalf("attempt %d: backoff %g outside [%g, %g)", attempt, d, 0.5*base, 1.5*base)
		}
	}
	if a.backoff(3, 1) == a.backoff(4, 1) {
		t.Error("distinct jobs share jitter")
	}
}

// TestServiceReplayDeterministic pins the golden-file property: the same
// config and arrivals replay to a deeply equal report, twice in a row.
func TestServiceReplayDeterministic(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(8, 256, 31)
	if err != nil {
		t.Fatal(err)
	}
	scenario := func() (Config, []Arrival) {
		cfg := Config{
			Cluster:          cl,
			Cache:            workload.NewBoundedPlacementCache(4, 0),
			ChargeIngress:    true,
			Flaky:            &Flaky{Seed: 3, MaxFailures: 1},
			MaxRetries:       2,
			QueueBound:       4,
			TenantQueueBound: 3,
			Tenants: []Tenant{
				{Name: "gold", Priority: 1},
				{Name: "bronze", Priority: 0},
			},
			Workers: 2,
			Seed:    11,
		}
		arrivals := make([]Arrival, len(jobs))
		for i, job := range jobs {
			tenant := "bronze"
			if i%3 == 0 {
				tenant = "gold"
			}
			arrivals[i] = Arrival{AtSeconds: float64(i) * 0.01, Tenant: tenant, Job: job}
		}
		return cfg, arrivals
	}
	cfgA, arrA := scenario()
	repA, err := Replay(cfgA, arrA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB, arrB := scenario()
	repB, err := Replay(cfgB, arrB)
	if err != nil {
		t.Fatal(err)
	}
	// IngressWallSeconds is host wall time, legitimately nondeterministic.
	repA.Cache.IngressWallSeconds, repB.Cache.IngressWallSeconds = 0, 0
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("replays diverged:\nA: %+v\nB: %+v", repA, repB)
	}
	if repA.Counters.Completed == 0 {
		t.Fatal("replay completed nothing")
	}
	if repA.Counters.Retries == 0 {
		t.Error("flaky replay recorded no retries")
	}
	if repA.Cache.Hits == 0 {
		t.Error("repeated graphs should hit the placement cache")
	}
}

// TestServiceReplayDeadline pins deadline shedding on the simulated clock: a
// job whose deadline expires while it waits behind a long queue is shed, not
// run.
func TestServiceReplayDeadline(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(3, 256, 41)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cluster: cl, Workers: 1, QueueBound: 8}
	arrivals := []Arrival{
		{AtSeconds: 0, Tenant: "t", Job: jobs[0]},
		// Far too tight to outlive the first job's makespan on one worker.
		{AtSeconds: 0, Tenant: "t", Job: jobs[1], DeadlineSeconds: 1e-9},
		{AtSeconds: 0, Tenant: "t", Job: jobs[2]},
	}
	rep, err := Replay(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.ShedDeadline != 1 {
		t.Fatalf("counters: %+v", rep.Counters)
	}
	if rep.Jobs[1].State != "shed" {
		t.Fatalf("job states: %+v", rep.Jobs)
	}
	if rep.Jobs[0].State != "done" || rep.Jobs[2].State != "done" {
		t.Fatalf("surviving jobs: %+v", rep.Jobs)
	}
}

// TestServiceContextCancellation pins live cancellation: a queued job whose
// context is cancelled is shed without running.
func TestServiceContextCancellation(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(4, 256, 51)
	if err != nil {
		t.Fatal(err)
	}
	check := leakCheck(t)
	svc, err := New(Config{Cluster: cl, Workers: 1, QueueBound: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer check()
	defer svc.Close()

	if _, err := svc.Submit(context.Background(), "t", jobs[0]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	id, err := svc.Submit(ctx, "t", jobs[1])
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	st, err := svc.Wait(wctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "shed" && st.State != "failed" {
		t.Fatalf("cancelled job state %s", st.State)
	}
	if err := svc.Drain(wctx); err != nil {
		t.Fatal(err)
	}
}

// TestServiceClose pins shutdown: queued jobs cancel, Submit rejects with
// ErrClosed, Close is idempotent, workers exit (leak check).
func TestServiceClose(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(6, 256, 61)
	if err != nil {
		t.Fatal(err)
	}
	check := leakCheck(t)
	svc, err := New(Config{Cluster: cl, Workers: 1, QueueBound: 16})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, len(jobs))
	for _, job := range jobs {
		id, err := svc.Submit(context.Background(), "t", job)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	svc.Close()
	svc.Close() // idempotent
	check()
	if _, err := svc.Submit(context.Background(), "t", jobs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	c := svc.Counters()
	if c.Canceled == 0 {
		t.Error("close cancelled no queued jobs")
	}
	terminal := 0
	for _, id := range ids {
		st, err := svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "canceled", "failed", "shed":
			terminal++
		default:
			t.Errorf("job %d left in state %s", id, st.State)
		}
	}
	if terminal != len(ids) {
		t.Fatalf("%d/%d jobs terminal after close", terminal, len(ids))
	}
}

// TestServiceConfigValidation pins the loud-failure contract for bad configs.
func TestServiceConfigValidation(t *testing.T) {
	cl := caseTwo(t)
	cases := []Config{
		{},                              // no cluster
		{Cluster: cl, QueueBound: -1},   // negative bound
		{Cluster: cl, Workers: -2},      // negative workers
		{Cluster: cl, BaseBackoff: -1},  // negative duration
		{Cluster: cl, Tenants: []Tenant{{Name: "a"}, {Name: "a"}}}, // dup tenant
		{Cluster: cl, Tenants: []Tenant{{}}},                       // unnamed tenant
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := Replay(Config{}, nil); err == nil {
		t.Error("replay accepted missing cluster")
	}
}

// TestServiceTraceEvents pins the control-plane trace stream: a replayed
// overload scenario emits admission verdicts, queue waits, retries and shed
// events through the collector.
func TestServiceTraceEvents(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := workload.RandomJobs(6, 256, 71)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	cfg := Config{
		Cluster:    cl,
		Flaky:      &Flaky{Seed: 1, MaxFailures: 1},
		MaxRetries: 2,
		QueueBound: 2,
		Workers:    1,
		Trace:      rec,
	}
	arrivals := make([]Arrival, len(jobs))
	for i, job := range jobs {
		arrivals[i] = Arrival{AtSeconds: 0, Tenant: "t", Job: job}
	}
	if _, err := Replay(cfg, arrivals); err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]int{}
	for _, e := range rec.Events {
		kinds[e.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindAdmit, trace.KindQueue} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	// 6 arrivals into a 2-slot queue with 1 worker: some rejections.
	admits, rejects := 0, 0
	for _, e := range rec.Events {
		if e.Kind != trace.KindAdmit {
			continue
		}
		if e.Label == "admit" {
			admits++
		} else {
			rejects++
		}
	}
	if admits == 0 || rejects == 0 {
		t.Fatalf("admit=%d reject=%d, want both nonzero", admits, rejects)
	}
	if kinds[trace.KindRetry] == 0 {
		t.Error("flaky run emitted no retry events")
	}
}

// TestFlakyDeterministic pins the injector contract New and Replay rely on.
func TestFlakyDeterministic(t *testing.T) {
	f := &Flaky{Seed: 7, MaxFailures: 3}
	sawFailure := false
	for id := 1; id <= 50; id++ {
		n := f.Failures(id)
		if n < 0 || n > 3 {
			t.Fatalf("job %d: %d failures outside [0, 3]", id, n)
		}
		if n > 0 {
			sawFailure = true
		}
		for a := 0; a < 6; a++ {
			err := f.Err(id, a)
			if (a < n) != (err != nil) {
				t.Fatalf("job %d attempt %d: err=%v with %d failures", id, a, err, n)
			}
			if err != nil && !errors.Is(err, ErrTransient) {
				t.Fatalf("injected error not ErrTransient: %v", err)
			}
		}
	}
	if !sawFailure {
		t.Error("injector never fails anything")
	}
	var nilF *Flaky
	if nilF.Err(1, 0) != nil || nilF.Failures(9) != 0 {
		t.Error("nil injector should be a no-op")
	}
	_ = fmt.Sprintf("%v", f) // keep fmt imported alongside future debugging
}
