package service

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
)

// The write-ahead job journal makes the control plane crash-safe: every
// durable state transition (a job's admission, dispatch, retry, completion,
// failure, eviction, and the tenant budget charge a completion implies) is
// appended to the journal before the service acknowledges it, so a process
// crash loses at most the transition being written. Recovery replays the
// journal to rebuild tenant budgets, completed results and the queue, and
// re-enqueues work that was in flight at crash time.
//
// The encoding follows the PR 3 checkpoint codec's conventions: versioned
// magic, little-endian fixed layout, and a hostile-input-safe decoder that
// validates every declared length against the payload before allocating. On
// top of that, each record is framed with a length prefix and a CRC-32C
// checksum so a torn tail — the expected on-disk state after kill -9 mid
// write — is detected and cleanly discarded rather than misparsed.

// RecordKind discriminates journal records.
type RecordKind uint8

const (
	// RecordSubmit declares a job's identity at admission time: tenant, app
	// and graph names, partitioning seed, the client's idempotency key, the
	// job's content fingerprint and the priority it was admitted under. The
	// record's sequence number IS the job id — ids are derived from the
	// journal sequence, which is what keeps status URLs valid across a
	// restart.
	RecordSubmit RecordKind = iota
	// RecordAdmit commits the submission to the queue. It is the
	// acknowledgement barrier: Submit returns success only after this record
	// is durable, so a job whose RecordSubmit survived a crash but whose
	// RecordAdmit did not was never acknowledged and is dropped at recovery.
	RecordAdmit
	// RecordStart marks an attempt (0-based Attempt) leaving the queue for a
	// worker. A started job with no terminal record was running at crash time
	// and is re-enqueued by recovery.
	RecordStart
	// RecordRetry marks a failed attempt rescheduled with backoff; Attempt is
	// the attempt count after the failure.
	RecordRetry
	// RecordComplete is a job's successful terminal transition, carrying the
	// charged accounting (Seconds = execution sim-seconds, Ingress, Energy)
	// and the placement-cache outcome (Flag). The application output itself
	// is not journaled; after recovery Status reports the charges but Result
	// returns an accounting-only result.
	RecordComplete
	// RecordFail is a job's unsuccessful terminal transition; Error holds the
	// final attempt's error text.
	RecordFail
	// RecordShed is a queue eviction: Label("priority", "deadline") rides in
	// Error, and "canceled" marks jobs cancelled by a clean shutdown.
	RecordShed
	// RecordBudgetCharge applies a completed job's cost to its tenant's
	// budget: Seconds is the charged sim-seconds (execution plus ingress),
	// Energy the joules. It is written directly after RecordComplete; if a
	// crash separates the two, recovery derives the charge from the complete
	// record instead — the invariant is that a tenant is never charged twice
	// for one job, and never escapes a charge for a job journaled complete.
	RecordBudgetCharge

	numRecordKinds = iota
)

var recordKindNames = [...]string{
	"submit", "admit", "start", "retry", "complete", "fail", "shed", "budget-charge",
}

// String names the kind for logs and debugging.
func (k RecordKind) String() string {
	if int(k) < len(recordKindNames) {
		return recordKindNames[k]
	}
	return fmt.Sprintf("record(%d)", int(k))
}

// Record is one journal entry. Every field is always encoded (flat fixed
// layout plus five length-prefixed strings), so the codec is canonical:
// decode∘encode is the identity on accepted frames, which the fuzz target
// verifies.
type Record struct {
	// Kind discriminates the record.
	Kind RecordKind
	// Seq is the record's 1-based position in the journal. It is assigned by
	// the journal on append and by position on decode; it is not encoded.
	Seq uint64
	// ID is the job the record concerns (zero for RecordSubmit, whose own
	// sequence number becomes the id).
	ID int
	// Attempt is the 0-based attempt for start records and the post-failure
	// attempt count for retry/fail records.
	Attempt int
	// Priority is the priority the job was admitted under (RecordSubmit).
	Priority int
	// Tenant, App, Graph name the job's identity (RecordSubmit,
	// RecordBudgetCharge uses Tenant only).
	Tenant, App, Graph string
	// Key is the client-supplied idempotency key ("" when none).
	Key string
	// Seed is the job's partitioning seed (RecordSubmit).
	Seed uint64
	// Fingerprint is the job's content fingerprint (RecordSubmit) — recovery
	// and idempotent resubmission reject a key reused with different work.
	Fingerprint uint64
	// Seconds, Ingress, Energy carry charged accounting (complete,
	// budget-charge) or the backoff delay (retry).
	Seconds, Ingress, Energy float64
	// Flag is the placement-cache outcome of a completed job.
	Flag bool
	// Error is the failure text (fail) or the shed reason (shed).
	Error string
}

// journalMagic versions the journal encoding; it opens every journal.
const journalMagic = "PGWJ1\n"

// maxRecordPayload bounds a declared payload length: no legitimate record
// approaches it (strings are tenant/app/graph/key/error text), and the bound
// keeps a hostile length prefix from forcing a huge allocation.
const maxRecordPayload = 1 << 20

// recordFixedSize is the flat portion of a payload: kind, id, attempt,
// priority, seed, fingerprint, three float64s, flag.
const recordFixedSize = 1 + 8 + 4 + 4 + 8 + 8 + 8*3 + 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodePayload serializes a record's canonical payload.
func encodePayload(r Record) []byte {
	n := recordFixedSize + 5*4 + len(r.Tenant) + len(r.App) + len(r.Graph) + len(r.Key) + len(r.Error)
	buf := make([]byte, 0, n)
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Attempt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(r.Priority)))
	buf = binary.LittleEndian.AppendUint64(buf, r.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, r.Fingerprint)
	buf = appendFloat(buf, r.Seconds)
	buf = appendFloat(buf, r.Ingress)
	buf = appendFloat(buf, r.Energy)
	if r.Flag {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, s := range []string{r.Tenant, r.App, r.Graph, r.Key, r.Error} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// encodeFrame wraps a record's payload with the length prefix and CRC-32C.
func encodeFrame(r Record) []byte {
	payload := encodePayload(r)
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}

// decodePayload parses one payload. The declared string lengths are validated
// against the remaining bytes before any slice is taken, and the payload must
// be consumed exactly — trailing bytes mean the frame was not produced by
// encodePayload and are rejected, which keeps decode∘encode an identity.
func decodePayload(data []byte) (Record, error) {
	var r Record
	if len(data) < recordFixedSize {
		return r, fmt.Errorf("service: journal record truncated at %d bytes", len(data))
	}
	if data[0] >= numRecordKinds {
		return r, fmt.Errorf("service: unknown journal record kind %d", data[0])
	}
	r.Kind = RecordKind(data[0])
	off := 1
	r.ID = int(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	r.Attempt = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	r.Priority = int(int32(binary.LittleEndian.Uint32(data[off:])))
	off += 4
	r.Seed = binary.LittleEndian.Uint64(data[off:])
	off += 8
	r.Fingerprint = binary.LittleEndian.Uint64(data[off:])
	off += 8
	r.Seconds = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	r.Ingress = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	r.Energy = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	switch data[off] {
	case 0:
	case 1:
		r.Flag = true
	default:
		return r, fmt.Errorf("service: journal record flag is %d, want 0 or 1", data[off])
	}
	off++
	for _, dst := range []*string{&r.Tenant, &r.App, &r.Graph, &r.Key, &r.Error} {
		if len(data)-off < 4 {
			return r, fmt.Errorf("service: journal record string header truncated")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || n > len(data)-off {
			return r, fmt.Errorf("service: journal record string length %d exceeds %d remaining", n, len(data)-off)
		}
		*dst = string(data[off : off+n])
		off += n
	}
	if off != len(data) {
		return r, fmt.Errorf("service: journal record has %d trailing bytes", len(data)-off)
	}
	return r, nil
}

// EncodeJournal renders records as a complete journal image (magic plus one
// frame per record) — the inverse of DecodeJournal on clean input.
func EncodeJournal(recs []Record) []byte {
	buf := []byte(journalMagic)
	for _, r := range recs {
		buf = append(buf, encodeFrame(r)...)
	}
	return buf
}

// DecodeJournal parses a journal image, tolerating the torn or corrupt tail a
// crash leaves behind: it returns every cleanly framed record (Seq assigned
// by position, 1-based), the byte offset up to which the image is intact, and
// a non-nil err describing why decoding stopped early — nil when the whole
// image parsed. Decoding never panics and never allocates from a hostile
// length prefix; recovery keeps data[:good] and discards the rest.
func DecodeJournal(data []byte) (recs []Record, good int, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return nil, 0, fmt.Errorf("service: bad journal magic")
	}
	off := len(journalMagic)
	for off < len(data) {
		if len(data)-off < 8 {
			return recs, off, fmt.Errorf("service: torn frame header at offset %d", off)
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxRecordPayload {
			return recs, off, fmt.Errorf("service: frame at offset %d declares %d bytes (max %d)", off, plen, maxRecordPayload)
		}
		if plen > len(data)-off-8 {
			return recs, off, fmt.Errorf("service: torn frame at offset %d (%d declared, %d available)", off, plen, len(data)-off-8)
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, fmt.Errorf("service: checksum mismatch at offset %d", off)
		}
		r, derr := decodePayload(payload)
		if derr != nil {
			return recs, off, fmt.Errorf("service: frame at offset %d: %w", off, derr)
		}
		off += 8 + plen
		r.Seq = uint64(len(recs) + 1)
		recs = append(recs, r)
	}
	return recs, off, nil
}

// Journal is the durable record sink the service writes through. Append must
// persist the record before returning; the returned sequence number is the
// record's 1-based journal position (a RecordSubmit's sequence becomes its
// job's id). An Append error means durability is lost — the service responds
// by entering degraded mode rather than crashing or acknowledging
// un-journaled work. Implementations must be safe for use under the
// service's mutex (the service serializes calls itself).
type Journal interface {
	Append(Record) (uint64, error)
	Close() error
}

// Recovery is a decoded journal ready to replay into a new service.
type Recovery struct {
	// Records are the cleanly decoded records in journal order.
	Records []Record
	// GoodBytes is the intact prefix length; TotalBytes the raw image size.
	// They differ when a torn or corrupt tail was discarded.
	GoodBytes, TotalBytes int
	// Err describes why decoding stopped early (nil for a clean journal).
	// A torn tail is an expected crash artifact, not a recovery failure.
	Err error
}

// RecoverBytes decodes a journal image (e.g. a MemJournal snapshot).
func RecoverBytes(data []byte) *Recovery {
	recs, good, err := DecodeJournal(data)
	return &Recovery{Records: recs, GoodBytes: good, TotalBytes: len(data), Err: err}
}

// Recover reads and decodes the journal at path. A missing file is an empty
// recovery — the first boot of a durable service — while an unreadable one is
// an error the caller must surface rather than silently running state-free.
func Recover(path string) (*Recovery, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Recovery{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: read journal: %w", err)
	}
	return RecoverBytes(data), nil
}

// rawJournal is the byte-level surface shared by the concrete journals; the
// fault-injecting wrapper corrupts frames through it.
type rawJournal interface {
	writeRaw(b []byte) error
	syncRaw() error
	Close() error
}

// FileJournal appends checksummed frames to a file, fsyncing each append so
// an acknowledged record survives power loss.
type FileJournal struct {
	mu  sync.Mutex
	f   *os.File
	seq uint64
}

// OpenFileJournal opens (or creates) the journal at path for appending and
// decodes what is already there: the returned Recovery replays the prior
// incarnation's state, and any torn tail is truncated away so new appends
// extend the intact prefix. The journal's sequence continues after the
// recovered records, keeping job ids unique across restarts.
func OpenFileJournal(path string) (*FileJournal, *Recovery, error) {
	rec, err := Recover(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: open journal: %w", err)
	}
	if rec.GoodBytes == 0 {
		// New (or unrecoverably headerless) journal: start fresh with magic.
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(journalMagic), 0)
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("service: init journal: %w", err)
		}
		rec.GoodBytes = len(journalMagic)
	} else if rec.GoodBytes < rec.TotalBytes {
		if err := f.Truncate(int64(rec.GoodBytes)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("service: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(rec.GoodBytes), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &FileJournal{f: f, seq: uint64(len(rec.Records))}, rec, nil
}

// Append implements Journal: frame, write, fsync.
func (j *FileJournal) Append(r Record) (uint64, error) {
	if err := j.writeRaw(encodeFrame(r)); err != nil {
		return 0, err
	}
	if err := j.syncRaw(); err != nil {
		return 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	return j.seq, nil
}

// writeRaw and syncRaw lock internally (rather than relying on Append's
// critical section) so the fault-injecting wrapper can drive them directly
// without racing a concurrent reader.
func (j *FileJournal) writeRaw(b []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := j.f.Write(b)
	return err
}

func (j *FileJournal) syncRaw() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close releases the file. The journal is not usable afterwards.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// MemJournal is the in-memory Journal fake: same framing, no filesystem. It
// backs the crash-recovery tests — "kill -9" becomes truncating Bytes() at an
// arbitrary offset and recovering from the prefix.
type MemJournal struct {
	mu  sync.Mutex
	buf []byte
	seq uint64
}

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal {
	return &MemJournal{buf: []byte(journalMagic)}
}

// NewMemJournalFrom rebuilds a journal from a (possibly torn) image: the
// intact prefix is kept, the tail discarded, and the sequence continues after
// the recovered records — exactly what OpenFileJournal does on disk.
func NewMemJournalFrom(data []byte) (*MemJournal, *Recovery) {
	rec := RecoverBytes(data)
	j := NewMemJournal()
	if rec.GoodBytes > 0 {
		j.buf = append(j.buf[:0], data[:rec.GoodBytes]...)
	}
	j.seq = uint64(len(rec.Records))
	return j, rec
}

// Append implements Journal.
func (j *MemJournal) Append(r Record) (uint64, error) {
	if err := j.writeRaw(encodeFrame(r)); err != nil {
		return 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	return j.seq, nil
}

// writeRaw locks internally so the fault-injecting wrapper can drive it
// directly while Bytes snapshots concurrently.
func (j *MemJournal) writeRaw(b []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.buf = append(j.buf, b...)
	return nil
}

func (j *MemJournal) syncRaw() error { return nil }

// Close implements Journal (a no-op for memory).
func (j *MemJournal) Close() error { return nil }

// Bytes snapshots the journal image.
func (j *MemJournal) Bytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]byte(nil), j.buf...)
}
