package service

import (
	"bytes"
	"testing"
)

// FuzzDecodeJournal hammers the journal decoder with arbitrary bytes. The
// decoder faces whatever a crash, a torn write, or bit rot left on disk, so
// the contract is: never panic, never allocate for a hostile length prefix,
// report a good-byte offset inside the input, and hand back only records
// that re-encode to exactly the bytes they were decoded from (decode∘encode
// is the identity on the accepted prefix).
func FuzzDecodeJournal(f *testing.F) {
	good := EncodeJournal(sampleRecords())
	f.Add(good)
	f.Add(good[:len(good)-1])        // torn tail
	f.Add(append(bytes.Clone(good), 0xff))
	f.Add([]byte(journalMagic))      // empty journal
	f.Add([]byte{})
	f.Add([]byte("not a journal"))
	// Frame declaring a huge payload over a tiny image.
	huge := bytes.Clone(good[:len(journalMagic)+8])
	for i := len(journalMagic); i < len(journalMagic)+4; i++ {
		huge[i] = 0xff
	}
	f.Add(huge)
	// Valid length, corrupted checksum.
	badCRC := bytes.Clone(good)
	badCRC[len(journalMagic)+4] ^= 0x01
	f.Add(badCRC)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodN, _ := DecodeJournal(data)
		if goodN < 0 || goodN > len(data) {
			t.Fatalf("good offset %d outside input of %d bytes", goodN, len(data))
		}
		if len(recs) > 0 && goodN < len(journalMagic) {
			t.Fatalf("%d records decoded from %d good bytes", len(recs), goodN)
		}
		// The accepted prefix must re-encode byte-for-byte and re-decode
		// cleanly — recovery truncates to goodN and must end up consistent.
		if goodN >= len(journalMagic) {
			out := EncodeJournal(recs)
			if !bytes.Equal(out, data[:goodN]) {
				t.Fatalf("decode∘encode not identity: %d good bytes in, %d out", goodN, len(out))
			}
			again, againN, err := DecodeJournal(data[:goodN])
			if err != nil || againN != goodN || len(again) != len(recs) {
				t.Fatalf("good prefix not clean: %d bytes, %d records, err %v", againN, len(again), err)
			}
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("record %d has seq %d", i, r.Seq)
			}
		}
	})
}

// TestServiceJournalFuzzSeedRoundTrips keeps the fuzz seed corpus honest
// under plain `go test`: the canonical encoding must decode with full
// coverage and re-encode to identical bytes.
func TestServiceJournalFuzzSeedRoundTrips(t *testing.T) {
	data := EncodeJournal(sampleRecords())
	recs, good, err := DecodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if good != len(data) {
		t.Fatalf("good=%d, want %d", good, len(data))
	}
	if out := EncodeJournal(recs); !bytes.Equal(out, data) {
		t.Fatal("round trip changed bytes")
	}
}
