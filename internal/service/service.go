package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/partition"
	"proxygraph/internal/trace"
	"proxygraph/internal/workload"
)

// Config parameterizes a Service (and a Replay — both drivers share the
// policy fields). Zero values take the documented defaults; negative bounds
// are configuration errors so a mistyped flag fails loudly instead of
// silently disabling admission control.
type Config struct {
	// Cluster receives the jobs (required).
	Cluster *cluster.Cluster
	// Estimator drives CCR-guided placement; default core.NewThreadCount().
	Estimator core.Estimator
	// Partitioner is the ingress algorithm (default Hybrid, as in Session).
	Partitioner partition.Partitioner
	// Cache, when non-nil, memoizes placements across jobs and tenants.
	// Long-running services should bound it (NewBoundedPlacementCache).
	Cache *workload.PlacementCache
	// ChargeIngress adds cold ingress makespans to job accounting.
	ChargeIngress bool
	// Fault, when non-nil, applies the same fault schedule to every attempt
	// (crashes, stragglers, recovery — see engine.FaultConfig).
	Fault *engine.FaultConfig
	// Flaky, when non-nil, injects deterministic transient attempt errors
	// that retries overcome.
	Flaky *Flaky
	// Trace, when non-nil, receives both control-plane events (admission,
	// queue waits, retries, shedding, breaker transitions) and the engines'
	// execution events. The service wraps it with trace.Synchronized, so any
	// single-goroutine collector is safe.
	Trace trace.Collector
	// Tenants declares the known service classes. Unknown tenant names are
	// accepted with priority 0 and no budget.
	Tenants []Tenant
	// QueueBound caps the total queued jobs (default 64). At the bound, an
	// arrival either sheds a strictly lower-priority queued job or is
	// rejected with ErrOverloaded.
	QueueBound int
	// TenantQueueBound caps one tenant's queued jobs (default QueueBound).
	TenantQueueBound int
	// MaxRetries is the failed attempts retried per job (default 0 — the
	// first failure is terminal).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the retry delay in seconds:
	// min(MaxBackoff, BaseBackoff·2^(attempt−1)) scaled by deterministic
	// jitter in [0.5, 1.5). Defaults 0.05 and 1.
	BaseBackoff, MaxBackoff float64
	// BreakerThreshold trips a tenant's circuit breaker after that many
	// consecutive terminal failures (0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the open interval in seconds before the breaker
	// half-opens for a probe (default 1).
	BreakerCooldown float64
	// Workers sizes the worker pool — goroutines live, simulated executors
	// in a replay (default 4).
	Workers int
	// Seed drives the backoff jitter (and nothing else).
	Seed uint64
	// Journal, when non-nil, receives a durable write-ahead record of every
	// control-plane transition. Admission is strict: a submission whose
	// submit/admit records cannot be written is rejected and the service
	// flips to degraded mode. Job ids become the journal sequence numbers of
	// their submit records, so they stay stable across crash and recovery.
	// Use OpenFileJournal for a real file, NewMemJournal for tests.
	Journal Journal
	// Recovery, when non-nil, is a decoded journal (from Recover or
	// OpenFileJournal) replayed into the state machine before the workers
	// start: terminal jobs are rebuilt with their results and budget charges,
	// in-flight and queued jobs are re-enqueued.
	Recovery *Recovery
	// Resolve maps a recovered submit record's (app, graph, seed) identity
	// back to a runnable workload.Job so re-enqueued jobs can execute.
	// Recovered in-flight jobs that fail to resolve (nil Resolve, unknown
	// app/graph) are marked failed rather than silently dropped; terminal
	// jobs never need resolving.
	Resolve func(app, graphName string, seed uint64) (workload.Job, error)
}

// Validate reports the configuration errors normalize would: a missing
// cluster, negative bounds or durations, duplicate or unnamed tenants. It
// works on a copy, so the receiver's zero fields are not defaulted.
func (c Config) Validate() error { return c.normalize() }

// normalize validates bounds and applies defaults in place.
func (c *Config) normalize() error {
	if c.Cluster == nil {
		return fmt.Errorf("service: config needs a cluster")
	}
	for name, v := range map[string]int{
		"queue bound": c.QueueBound, "tenant queue bound": c.TenantQueueBound,
		"max retries": c.MaxRetries, "breaker threshold": c.BreakerThreshold,
		"workers": c.Workers,
	} {
		if v < 0 {
			return fmt.Errorf("service: negative %s (%d)", name, v)
		}
	}
	if c.BaseBackoff < 0 || c.MaxBackoff < 0 || c.BreakerCooldown < 0 {
		return fmt.Errorf("service: negative duration in config")
	}
	if c.Estimator == nil {
		c.Estimator = core.NewThreadCount()
	}
	if c.QueueBound == 0 {
		c.QueueBound = 64
	}
	if c.TenantQueueBound == 0 {
		c.TenantQueueBound = c.QueueBound
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 0.05
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 1
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 1
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	seen := map[string]bool{}
	for _, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("service: tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("service: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// Service is the live concurrent driver: a worker pool pulling from the
// machine's queues on the wall clock. Submit never blocks on execution — it
// returns an admission verdict immediately — and every policy decision is the
// machine's, so a Replay with the same Config makes the same decisions in
// simulated time.
type Service struct {
	cfg     Config
	session *workload.Session
	pool    *core.Pool
	tr      trace.Collector

	mu     sync.Mutex
	cond   *sync.Cond
	m      *machine
	closed bool
	wg     sync.WaitGroup
	start  time.Time
}

// New builds the CCR pool, starts cfg.Workers workers and returns the running
// service. Close releases it.
func New(cfg Config) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	pool, err := core.BuildPool(cfg.Cluster, apps.WithExtensions(), cfg.Estimator)
	if err != nil {
		return nil, err
	}
	// One synchronized collector serves both the machine (under s.mu) and
	// the engines (concurrent across workers).
	tr := trace.Synchronized(cfg.Trace)
	cfg.Trace = tr
	s := &Service{
		cfg: cfg,
		session: &workload.Session{
			Cluster:       cfg.Cluster,
			Partitioner:   cfg.Partitioner,
			Cache:         cfg.Cache,
			ChargeIngress: cfg.ChargeIngress,
		},
		pool:  pool,
		tr:    tr,
		m:     newMachine(cfg),
		start: time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	// Replay the recovered journal into the machine before any worker can
	// observe the queue: recovered in-flight jobs are runnable the moment the
	// pool starts.
	if cfg.Recovery != nil {
		s.m.restore(cfg.Recovery.Records, cfg.Resolve)
		s.m.emit(trace.Event{Kind: trace.KindJournal, Machine: -1,
			Step: len(cfg.Recovery.Records), Label: "recover"})
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// now is the service clock: wall seconds since start.
func (s *Service) now() float64 { return time.Since(s.start).Seconds() }

// Submit runs the admission pipeline and returns the admitted job's id. The
// context governs the job's whole lifetime: cancellation or an expired
// deadline sheds it from the queue, or fails it between attempts. Rejections
// return a typed error (ErrOverloaded, ErrCircuitOpen, ErrBudgetExhausted,
// ErrClosed) without creating a job.
func (s *Service) Submit(ctx context.Context, tenant string, job workload.Job) (int, error) {
	return s.SubmitKey(ctx, tenant, "", job)
}

// SubmitKey is Submit with a client-supplied idempotency key. A non-empty key
// makes the submission safe to retry: resubmitting the same job with the same
// key — after a client timeout, an HTTP retry, or a service crash and
// recovery — returns the original job's id instead of executing and charging
// it twice. Reusing a key for different work fails with ErrKeyConflict.
func (s *Service) SubmitKey(ctx context.Context, tenant, key string, job workload.Job) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	js, dup, err := s.m.submit(s.now(), tenant, key, job, ctx, 0)
	if err != nil {
		return 0, err
	}
	if !dup {
		s.cond.Broadcast()
	}
	return js.id, nil
}

// Degraded reports whether the service is in degraded mode (a journal write
// failed, so new submissions are rejected while admitted work drains) and the
// error that caused it.
func (s *Service) Degraded() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.degraded, s.m.degradedErr
}

// worker pulls dispatchable jobs until the service closes. Backoff and
// context deadlines are wall-clock here: timers re-broadcast the condition
// after first taking the mutex, which guarantees the waiting worker has
// already released it into Wait — no lost wakeups.
func (s *Service) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		js, wait := s.m.dispatch(s.now())
		if js != nil {
			s.mu.Unlock()
			jr, err := s.runAttempt(js)
			s.mu.Lock()
			if err == nil {
				s.m.complete(s.now(), js, jr)
			} else {
				// A closing service stops retrying; context errors are
				// terminal because the submitter gave up.
				retryable := !s.closed && js.ctx.Err() == nil
				s.m.fail(s.now(), js, err, retryable)
				if js.state == StateQueued {
					s.wakeAfter(js.readyAt - s.now())
				}
			}
			s.cond.Broadcast()
			continue
		}
		if s.closed {
			return
		}
		if wait > 0 {
			s.wakeAfter(wait)
		}
		s.cond.Wait()
	}
}

// runAttempt executes one attempt outside the lock.
func (s *Service) runAttempt(js *jobState) (*workload.JobResult, error) {
	if err := js.ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.cfg.Flaky.Err(js.id, js.attempts); err != nil {
		return nil, err
	}
	return s.session.RunJob(s.pool, js.job, engine.Options{Fault: s.cfg.Fault, Trace: s.tr})
}

// wakeAfter re-broadcasts the condition once d seconds elapse (with a small
// margin so the sleeper's readyAt has definitely passed). The callback takes
// and releases the mutex before broadcasting: a worker that computed the wait
// still holds the mutex until cond.Wait releases it, so the broadcast cannot
// slip into that window and be lost.
func (s *Service) wakeAfter(d float64) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(time.Duration(d*float64(time.Second))+time.Millisecond, func() {
		s.mu.Lock()
		s.mu.Unlock() //nolint:staticcheck // empty section orders the broadcast after Wait
		s.cond.Broadcast()
	})
}

// Status snapshots one job.
func (s *Service) Status(id int) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.m.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w (%d)", ErrUnknownJob, id)
	}
	return s.m.status(js), nil
}

// Result returns a completed job's engine result (nil until StateDone).
func (s *Service) Result(id int) (*engine.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w (%d)", ErrUnknownJob, id)
	}
	return js.result, nil
}

// Wait blocks until the job reaches a terminal state (or ctx expires) and
// returns its final status.
func (s *Service) Wait(ctx context.Context, id int) (JobStatus, error) {
	s.mu.Lock()
	js, ok := s.m.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("%w (%d)", ErrUnknownJob, id)
	}
	select {
	case <-js.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.status(js), nil
}

// List snapshots every job (or one tenant's), ordered by id.
func (s *Service) List(tenant string) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.list(tenant)
}

// Counters snapshots the control-plane counters.
func (s *Service) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.counters
}

// Usage snapshots every tenant's spend and breaker state.
func (s *Service) Usage() []TenantUsage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.usage()
}

// CacheStats snapshots the shared placement cache, or nil when the service
// runs uncached.
func (s *Service) CacheStats() *workload.CacheStats {
	if s.cfg.Cache == nil {
		return nil
	}
	stats := s.cfg.Cache.Stats()
	return &stats
}

// Healthy reports whether the service accepts submissions.
func (s *Service) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Drain blocks until no job is queued or running (retries included), or ctx
// expires.
func (s *Service) Drain(ctx context.Context) error {
	for {
		s.mu.Lock()
		idle := s.m.idle()
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops admission, cancels every queued job, waits for running
// attempts to finish and releases the workers. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.m.cancelQueued()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
