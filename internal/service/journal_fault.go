package service

import (
	"fmt"
	"io"

	"proxygraph/internal/rng"
)

// JournalFaultKind classifies an injected journal write fault. The four kinds
// cover the failure surface a real log file has: partial persistence, no
// persistence, silent corruption, and durable-but-unacknowledged writes.
type JournalFaultKind int

const (
	// JournalTornTail persists a strict prefix of the frame and reports an
	// error — the on-disk state a crash mid-write leaves behind. Recovery
	// must truncate the tail back to the last intact record.
	JournalTornTail JournalFaultKind = iota
	// JournalShortWrite persists nothing and reports io.ErrShortWrite.
	JournalShortWrite
	// JournalCorruptBit flips one bit of the frame and reports success:
	// silent bit rot, invisible to the writer, caught only by the CRC at the
	// next recovery — which keeps the intact prefix and discards the rest.
	JournalCorruptBit
	// JournalSyncError persists the frame but fails the fsync, so the write
	// may or may not survive a power cut. The injector models the
	// conservative case: bytes present, acknowledgement withheld.
	JournalSyncError

	numJournalFaultKinds = iota
)

var journalFaultNames = [...]string{"torn-tail", "short-write", "corrupt-bit", "sync-error"}

// String names the fault kind.
func (k JournalFaultKind) String() string {
	if int(k) < len(journalFaultNames) {
		return journalFaultNames[k]
	}
	return fmt.Sprintf("journal-fault(%d)", int(k))
}

// JournalFaultSpec shapes a FaultJournal's deterministic schedule, in the
// style of internal/fault: which append indices fault, and which kinds fire,
// are pure functions of (Seed, append index), so every run with the same spec
// observes the identical fault sequence.
type JournalFaultSpec struct {
	// EveryN faults every n-th Append call (1-based: appends N, 2N, ...).
	// 0 disables injection entirely.
	EveryN int
	// Kinds restricts which fault kinds fire (deterministically chosen per
	// faulted append). Empty means all four.
	Kinds []JournalFaultKind
}

// Validate reports spec errors.
func (s JournalFaultSpec) Validate() error {
	if s.EveryN < 0 {
		return fmt.Errorf("service: journal fault EveryN is %d, need >= 0", s.EveryN)
	}
	for i, k := range s.Kinds {
		if k < 0 || int(k) >= numJournalFaultKinds {
			return fmt.Errorf("service: journal fault kind %d at index %d is unknown", int(k), i)
		}
	}
	return nil
}

// jfltDomain keys the fault schedule's hash stream (decorrelated from the
// backoff-jitter and graph-fingerprint domains).
const jfltDomain = 0x6a666c74 // "jflt"

// FaultJournal wraps a FileJournal or MemJournal and injects write faults on
// the spec's deterministic seed-driven schedule. It exists to prove the
// degraded-mode contract: any injected failure must flip the service into
// shedding mode — never panic it, never acknowledge lost work — and the
// journal image left behind must recover to a consistent prefix.
type FaultJournal struct {
	raw     rawJournal
	seed    uint64
	spec    JournalFaultSpec
	seq     uint64 // acknowledged records, continues the inner journal's
	appends uint64 // Append calls made, the schedule's clock
}

// NewFaultJournal wraps inner (a *FileJournal or *MemJournal — the wrapper
// needs byte-level access to tear and corrupt frames) with the fault schedule.
func NewFaultJournal(inner Journal, seed uint64, spec JournalFaultSpec) (*FaultJournal, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fj := &FaultJournal{seed: seed, spec: spec}
	switch t := inner.(type) {
	case *FileJournal:
		fj.raw, fj.seq = t, t.seq
	case *MemJournal:
		fj.raw, fj.seq = t, t.seq
	default:
		return nil, fmt.Errorf("service: FaultJournal needs a *FileJournal or *MemJournal, got %T", inner)
	}
	return fj, nil
}

// faultFor returns the fault kind for the i-th append (1-based), or -1 when
// the append is clean.
func (j *FaultJournal) faultFor(i uint64) JournalFaultKind {
	if j.spec.EveryN <= 0 || i%uint64(j.spec.EveryN) != 0 {
		return -1
	}
	kinds := j.spec.Kinds
	if len(kinds) == 0 {
		kinds = []JournalFaultKind{JournalTornTail, JournalShortWrite, JournalCorruptBit, JournalSyncError}
	}
	return kinds[rng.Hash3(j.seed, jfltDomain, i)%uint64(len(kinds))]
}

// Append implements Journal, injecting the scheduled fault if the append's
// index is due. Clean appends pass through with write+sync semantics.
func (j *FaultJournal) Append(r Record) (uint64, error) {
	j.appends++
	frame := encodeFrame(r)
	switch j.faultFor(j.appends) {
	case JournalTornTail:
		cut := 1 + int(rng.Hash3(j.seed, jfltDomain+1, j.appends)%uint64(len(frame)-1))
		_ = j.raw.writeRaw(frame[:cut])
		_ = j.raw.syncRaw()
		return 0, fmt.Errorf("service: injected torn write (%d of %d bytes) at append %d", cut, len(frame), j.appends)
	case JournalShortWrite:
		return 0, fmt.Errorf("service: injected short write at append %d: %w", j.appends, io.ErrShortWrite)
	case JournalCorruptBit:
		h := rng.Hash3(j.seed, jfltDomain+2, j.appends)
		corrupt := append([]byte(nil), frame...)
		corrupt[h%uint64(len(corrupt))] ^= 1 << ((h >> 32) % 8)
		if err := j.raw.writeRaw(corrupt); err != nil {
			return 0, err
		}
		if err := j.raw.syncRaw(); err != nil {
			return 0, err
		}
		j.seq++ // silently acknowledged — that is the point
		return j.seq, nil
	case JournalSyncError:
		_ = j.raw.writeRaw(frame)
		return 0, fmt.Errorf("service: injected fsync error at append %d", j.appends)
	}
	if err := j.raw.writeRaw(frame); err != nil {
		return 0, err
	}
	if err := j.raw.syncRaw(); err != nil {
		return 0, err
	}
	j.seq++
	return j.seq, nil
}

// Close closes the wrapped journal.
func (j *FaultJournal) Close() error { return j.raw.Close() }
