package service

import (
	"context"
	"errors"
	"fmt"

	"proxygraph/internal/engine"
	"proxygraph/internal/workload"
)

// restore replays a decoded journal into a fresh machine, rebuilding tenant
// budgets, the queue, completed results and the idempotency index, and
// re-enqueueing every job that was queued or running at crash time.
//
// Recovery invariants (see DESIGN.md §Durability and recovery):
//
//   - A submit record without its admit record was never acknowledged to the
//     client (the admit write is the acknowledgement barrier), so it is
//     dropped — the client's retry with the same idempotency key re-admits it
//     exactly once.
//   - Complete records precede their budget-charge records in the journal. A
//     crash between the two loses only the charge record; restore derives the
//     charge from the complete record instead, so a tenant is charged exactly
//     once for every completed job at any crash offset.
//   - Terminal states are sticky: once a complete/fail/shed record is
//     replayed, later records for the same id (possible after an unclean
//     journal swap) are ignored.
//   - In-flight jobs are re-enqueued with a background context (the original
//     submitter's context did not survive the crash) and a zero readyAt —
//     pending retry backoffs collapse, the job is immediately runnable.
//
// restore never writes to the journal for replayed transitions (the records
// are already there); only jobs that cannot be re-resolved get a fresh fail
// record so the next recovery agrees with this one.
func (m *machine) restore(recs []Record, resolve func(app, graphName string, seed uint64) (workload.Job, error)) {
	subs := make(map[int]Record) // submit seq -> record, awaiting its admit
	charged := make(map[int]bool)
	maxSeq := 0
	for _, r := range recs {
		if int(r.Seq) > maxSeq {
			maxSeq = int(r.Seq)
		}
		switch r.Kind {
		case RecordSubmit:
			m.counters.Submitted++
			subs[int(r.Seq)] = r
		case RecordAdmit:
			sub, ok := subs[r.ID]
			if !ok || m.jobs[r.ID] != nil {
				continue
			}
			ts := m.tenant(sub.Tenant)
			js := &jobState{
				id:        r.ID,
				tenant:    sub.Tenant,
				priority:  sub.Priority,
				key:       sub.Key,
				fp:        sub.Fingerprint,
				appName:   sub.App,
				graphName: sub.Graph,
				seed:      sub.Seed,
				ctx:       context.Background(),
				state:     StateQueued,
				done:      make(chan struct{}),
			}
			m.jobs[js.id] = js
			m.queue = append(m.queue, js)
			ts.queued++
			if js.key != "" {
				m.idem[js.key] = js
			}
			m.counters.Admitted++
		case RecordStart:
			if js := m.jobs[r.ID]; js != nil && !js.terminal() {
				js.attempts = r.Attempt
			}
		case RecordRetry:
			if js := m.jobs[r.ID]; js != nil && !js.terminal() {
				js.attempts = r.Attempt
				m.counters.Retries++
			}
		case RecordComplete:
			js := m.jobs[r.ID]
			if js == nil || js.terminal() {
				continue
			}
			m.removeQueued(js)
			js.state = StateDone
			js.attempts = r.Attempt
			js.result = &engine.Result{SimSeconds: r.Seconds, EnergyJoules: r.Energy}
			js.ingress = r.Ingress
			js.cacheHit = r.Flag
			m.counters.Completed++
			m.counters.RecoveredDone++
			m.finish(js)
		case RecordBudgetCharge:
			if m.jobs[r.ID] == nil || charged[r.ID] {
				continue
			}
			charged[r.ID] = true
			ts := m.tenant(r.Tenant)
			ts.spentSeconds += r.Seconds
			ts.spentJoules += r.Energy
		case RecordFail:
			js := m.jobs[r.ID]
			if js == nil || js.terminal() {
				continue
			}
			m.removeQueued(js)
			js.state = StateFailed
			js.attempts = r.Attempt
			js.err = errors.New(r.Error)
			m.counters.Failed++
			m.counters.RecoveredDone++
			m.finish(js)
		case RecordShed:
			js := m.jobs[r.ID]
			if js == nil || js.terminal() {
				continue
			}
			m.removeQueued(js)
			if r.Error == shedReasonCanceled {
				js.state = StateCanceled
				js.err = ErrClosed
				m.counters.Canceled++
			} else {
				js.state = StateShed
				js.err = fmt.Errorf("service: shed (%s)", r.Error)
				if r.Error == "deadline" {
					m.counters.ShedDeadline++
				} else {
					m.counters.ShedPriority++
				}
			}
			m.counters.RecoveredDone++
			m.finish(js)
		}
	}

	// Derive the budget charge for any completed job whose paired charge
	// record was lost to the crash. complete() always writes the two records
	// adjacently under the machine lock, so a prefix cut can orphan at most
	// the tail pair — but the derivation is written to handle any number.
	for id, js := range m.jobs {
		if js.state == StateDone && !charged[id] {
			ts := m.tenant(js.tenant)
			ts.spentSeconds += js.ingress + js.result.SimSeconds
			ts.spentJoules += js.result.EnergyJoules
		}
	}

	// Re-resolve the workload for every job going back into the queue. The
	// journal stores identity (app, graph, seed), not the graph itself —
	// resolution rebuilds or looks up the actual job. Unresolvable jobs fail
	// loudly instead of haunting the queue.
	for _, js := range append([]*jobState(nil), m.queue...) {
		var job workload.Job
		err := errors.New("service: no Resolve configured")
		if resolve != nil {
			job, err = resolve(js.appName, js.graphName, js.seed)
		}
		if err != nil {
			m.removeQueued(js)
			js.state = StateFailed
			js.err = fmt.Errorf("service: unresolvable after recovery (app %q graph %q): %w", js.appName, js.graphName, err)
			m.counters.Failed++
			m.journalBest(Record{Kind: RecordFail, ID: js.id, Attempt: js.attempts, Error: js.err.Error()})
			m.finish(js)
			continue
		}
		js.job = job
		m.counters.RecoveredRequeued++
	}

	// Ids continue after the highest replayed sequence even if the journal
	// was swapped for a fresh one, so recovered status URLs stay unique.
	if maxSeq > m.nextID {
		m.nextID = maxSeq
	}
}
