// Package service turns workload.Session's batch loop into a long-running
// multi-tenant job service: per-tenant job streams enter through admission
// control (bounded per-tenant and global queues that reject rather than block),
// run on a worker pool with context deadline/cancellation propagation, retry
// transient failures with capped exponential backoff and deterministic seeded
// jitter, and degrade gracefully under pressure — priority load shedding, a
// per-tenant circuit breaker, and per-tenant simulated-cost/energy budgets
// charged from the advisor-guided execution accounting.
//
// The control-plane logic (admission verdicts, queue order, shedding, breaker
// transitions, backoff arithmetic, budget charging) lives in a time-abstract
// state machine (this file) that two drivers share: the live concurrent
// Service (service.go), whose clock is wall time, and the discrete-event
// Replay (replay.go), whose clock is simulated seconds — so the overload
// experiments are byte-deterministic while the live service exercises real
// goroutines, channels and contexts with identical policy decisions.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"proxygraph/internal/engine"
	"proxygraph/internal/rng"
	"proxygraph/internal/trace"
	"proxygraph/internal/workload"
)

// Typed admission errors. Callers (and the HTTP front end) distinguish these
// to map overload to backpressure, breaker rejections to retry-later, and
// budget exhaustion to a hard per-tenant stop.
var (
	// ErrOverloaded rejects a submission because the global or per-tenant
	// queue bound is reached and no lower-priority job can be shed for it.
	ErrOverloaded = errors.New("service: overloaded, queue bounds reached")
	// ErrCircuitOpen rejects a submission while the tenant's circuit breaker
	// is open after consecutive failures.
	ErrCircuitOpen = errors.New("service: circuit breaker open")
	// ErrBudgetExhausted rejects a submission because the tenant has spent
	// its simulated-time or energy budget.
	ErrBudgetExhausted = errors.New("service: tenant budget exhausted")
	// ErrClosed rejects submissions to a closed service.
	ErrClosed = errors.New("service: closed")
	// ErrUnknownJob reports a Status/Wait lookup for an id never issued.
	ErrUnknownJob = errors.New("service: unknown job id")
	// ErrDegraded rejects submissions while the service is in degraded mode:
	// a journal write failed, so new work cannot be made durable. Admitted
	// work keeps draining; only admission is shed. See DESIGN.md §Durability.
	ErrDegraded = errors.New("service: degraded, journal write failed")
	// ErrKeyConflict rejects a submission whose idempotency key is already
	// bound to a different job (the fingerprints disagree) — reusing a key
	// for new work is a client bug, not a retry.
	ErrKeyConflict = errors.New("service: idempotency key bound to a different job")
)

// State is a job's lifecycle position.
type State int

const (
	// StateQueued means admitted and waiting for a worker (or for a retry
	// backoff to elapse).
	StateQueued State = iota
	// StateRunning means an attempt is executing.
	StateRunning
	// StateDone means the job completed successfully.
	StateDone
	// StateFailed means every allowed attempt failed (or the job's context
	// was cancelled / its deadline expired before completion).
	StateFailed
	// StateShed means the job was evicted from the queue without running —
	// load shedding in favour of a higher-priority arrival, or a deadline
	// that expired while queued.
	StateShed
	// StateCanceled means the service closed before the job ran.
	StateCanceled
)

var stateNames = [...]string{"queued", "running", "done", "failed", "shed", "canceled"}

// String names the state for logs, tables and the HTTP API.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Budget caps a tenant's cumulative charged cost. Zero fields are unlimited.
type Budget struct {
	// SimSeconds caps charged simulated time (execution plus charged
	// ingress).
	SimSeconds float64
	// EnergyJoules caps charged cluster energy.
	EnergyJoules float64
}

// Tenant declares one tenant's service class.
type Tenant struct {
	// Name identifies the tenant in Submit calls.
	Name string
	// Priority orders tenants under pressure: higher-priority submissions
	// may shed queued lower-priority jobs when the global queue is full.
	Priority int
	// Budget bounds the tenant's cumulative charged cost; the zero value is
	// unlimited.
	Budget Budget
}

// Counters aggregates the service's control-plane activity.
type Counters struct {
	// Submitted counts Submit calls; Admitted the ones that entered a queue.
	Submitted, Admitted uint64
	// RejectedOverload / RejectedBreaker / RejectedBudget split the
	// rejections by verdict.
	RejectedOverload, RejectedBreaker, RejectedBudget uint64
	// ShedPriority counts queued jobs evicted for higher-priority arrivals;
	// ShedDeadline queued jobs dropped because their deadline expired.
	ShedPriority, ShedDeadline uint64
	// Retries counts failed attempts rescheduled with backoff.
	Retries uint64
	// Completed and Failed count terminal outcomes; Canceled jobs were
	// queued when the service closed.
	Completed, Failed, Canceled uint64
	// BreakerTrips counts closed→open transitions across tenants.
	BreakerTrips uint64
	// Deduped counts submissions answered by an existing job via its
	// idempotency key; RejectedDegraded submissions shed in degraded mode.
	Deduped, RejectedDegraded uint64
	// JournalAppends counts records made durable; JournalErrors failed writes
	// (the first one flips degraded mode, so this is effectively 0 or 1).
	JournalAppends, JournalErrors uint64
	// RecoveredDone and RecoveredRequeued count jobs rebuilt from the journal
	// at startup: already-terminal ones and in-flight ones re-enqueued.
	RecoveredDone, RecoveredRequeued uint64
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// tenantState is one tenant's runtime state.
type tenantState struct {
	Tenant
	queued       int
	spentSeconds float64
	spentJoules  float64

	breaker      int
	consecFails  int
	openedAt     float64
	probeRunning bool
}

// jobState is one submitted job's full record. The machine owns every field;
// drivers read snapshots via status().
type jobState struct {
	id       int
	tenant   string
	priority int
	job      workload.Job

	// key is the client-supplied idempotency key ("" = none); fp the job's
	// content fingerprint, used to detect key reuse for different work.
	key string
	fp  uint64
	// appName/graphName/seed identify the job durably: a recovered terminal
	// job never re-resolves its workload.Job, so status() must not reach
	// through js.job.
	appName   string
	graphName string
	seed      uint64

	// ctx is the submitter's context (live service only; nil in replays).
	ctx context.Context
	// deadline is an absolute clock value (replay only; 0 = none).
	deadline float64

	state       State
	attempts    int
	enqueuedAt  float64
	readyAt     float64
	submittedAt float64
	queueWait   float64 // accumulated across dispatches

	result  *engine.Result
	ingress float64
	cacheHit bool
	err     error

	done chan struct{} // closed on terminal state (live service)
}

// terminal reports whether the job reached a final state.
func (j *jobState) terminal() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateShed || j.state == StateCanceled
}

// machine is the shared control-plane state machine. It is not safe for
// concurrent use: the live Service guards it with its mutex, the replay
// driver is single-threaded. All times are opaque clock values supplied by
// the driver — wall seconds live, simulated seconds in replay.
type machine struct {
	cfg      Config
	tenants  map[string]*tenantState
	jobs     map[int]*jobState
	queue    []*jobState // admitted, waiting; unordered (selection scans)
	nextID   int
	running  int
	counters Counters
	// queueWaits collects every dispatch's wait for percentile reporting.
	queueWaits []float64
	// idem maps idempotency keys to their job: a resubmission with a known
	// key returns the existing job instead of double-executing it.
	idem map[string]*jobState
	// degraded flips on the first journal write error: new submissions are
	// rejected (durability can no longer be promised) while admitted work
	// drains, and further journal writes are skipped.
	degraded    bool
	degradedErr error
}

func newMachine(cfg Config) *machine {
	m := &machine{
		cfg:     cfg,
		tenants: make(map[string]*tenantState),
		jobs:    make(map[int]*jobState),
		idem:    make(map[string]*jobState),
	}
	for _, t := range cfg.Tenants {
		m.tenants[t.Name] = &tenantState{Tenant: t}
	}
	return m
}

// tenant returns (creating on first use) the named tenant's state. Unknown
// tenants get priority 0 and an unlimited budget.
func (m *machine) tenant(name string) *tenantState {
	ts, ok := m.tenants[name]
	if !ok {
		ts = &tenantState{Tenant: Tenant{Name: name}}
		m.tenants[name] = ts
	}
	return ts
}

// emit forwards a control-plane event to the configured collector.
func (m *machine) emit(e trace.Event) {
	if m.cfg.Trace != nil {
		m.cfg.Trace.Event(e)
	}
}

// degrade flips the service into degraded mode after a journal write error.
// It never panics and never loses in-memory state: admitted work drains,
// new submissions are rejected with ErrDegraded until the operator restarts
// the process against a healthy journal.
func (m *machine) degrade(err error) {
	if m.degraded {
		return
	}
	m.degraded = true
	m.degradedErr = err
	m.counters.JournalErrors++
	m.emit(trace.Event{Kind: trace.KindJournal, Machine: -1, Label: "error"})
	m.emit(trace.Event{Kind: trace.KindDegraded, Machine: -1, Label: "journal-error"})
}

// journalBest appends a record if journaling is enabled and healthy, flipping
// degraded mode on error. It is the best-effort path used for lifecycle
// records (start/retry/complete/fail/shed/charge): the in-memory transition
// proceeds regardless, because the work already exists — only *new* work is
// refused once durability is gone (see submit).
func (m *machine) journalBest(r Record) {
	if m.cfg.Journal == nil || m.degraded {
		return
	}
	if _, err := m.cfg.Journal.Append(r); err != nil {
		m.degrade(err)
		return
	}
	m.counters.JournalAppends++
	m.emit(trace.Event{Kind: trace.KindJournal, Machine: -1, Step: r.ID, Label: r.Kind.String()})
}

// jobNames extracts the durable identity fields from a job; both are empty
// for the zero Job used by policy-only tests.
func jobNames(job workload.Job) (app, graphName string) {
	if job.App != nil {
		app = job.App.Name()
	}
	if job.Graph != nil {
		graphName = job.Graph.Name
	}
	return app, graphName
}

// submit runs the admission pipeline at clock value now. On admission the
// returned job is queued; otherwise the typed error names the verdict. A
// non-empty key makes the submission idempotent: resubmitting the same work
// with the same key returns the original job (dup=true) instead of creating,
// executing and charging a second one.
func (m *machine) submit(now float64, tenant, key string, job workload.Job, ctx context.Context, deadline float64) (js *jobState, dup bool, err error) {
	m.counters.Submitted++

	// Idempotent resubmission: answered before any admission check, because
	// the original admission verdict already happened — a dedup hit must not
	// be double-counted, double-charged, or rejected by a now-full queue.
	fp := job.Fingerprint()
	if key != "" {
		if prev, ok := m.idem[key]; ok {
			if prev.fp != fp {
				m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Step: prev.id, Label: "reject-key-conflict"})
				return nil, false, fmt.Errorf("%w (key %q is job %d)", ErrKeyConflict, key, prev.id)
			}
			m.counters.Deduped++
			m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Step: prev.id, Label: "dedup"})
			return prev, true, nil
		}
	}

	// Degraded mode: the journal can no longer record new work, so admitting
	// it would silently break the durability contract. Shed at the door.
	if m.degraded {
		m.counters.RejectedDegraded++
		m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Label: "reject-degraded"})
		return nil, false, fmt.Errorf("%w: %v", ErrDegraded, m.degradedErr)
	}

	ts := m.tenant(tenant)

	// Circuit breaker: open rejects until the cooldown elapses; the first
	// submission after it becomes the half-open probe.
	if m.cfg.BreakerThreshold > 0 {
		switch ts.breaker {
		case breakerOpen:
			if now-ts.openedAt < m.cfg.BreakerCooldown {
				m.counters.RejectedBreaker++
				m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Label: "reject-breaker"})
				return nil, false, fmt.Errorf("%w (tenant %q, %.2fs into cooldown)", ErrCircuitOpen, tenant, now-ts.openedAt)
			}
			ts.breaker = breakerHalfOpen
			ts.probeRunning = false
			m.emit(trace.Event{Kind: trace.KindBreaker, Machine: -1, Label: "half-open"})
		case breakerHalfOpen:
			if ts.probeRunning {
				m.counters.RejectedBreaker++
				m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Label: "reject-breaker"})
				return nil, false, fmt.Errorf("%w (tenant %q, probe in flight)", ErrCircuitOpen, tenant)
			}
		}
	}

	// Budget: post-paid — jobs are admitted until the spend crosses the cap,
	// then the tenant is cut off. The charge is the advisor-guided execution
	// accounting (plus charged ingress), so budgets measure the same
	// simulated cost every experiment table reports.
	if (ts.Budget.SimSeconds > 0 && ts.spentSeconds >= ts.Budget.SimSeconds) ||
		(ts.Budget.EnergyJoules > 0 && ts.spentJoules >= ts.Budget.EnergyJoules) {
		m.counters.RejectedBudget++
		m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Label: "reject-budget"})
		return nil, false, fmt.Errorf("%w (tenant %q spent %.3fs / %.1fJ)", ErrBudgetExhausted, tenant, ts.spentSeconds, ts.spentJoules)
	}

	// Per-tenant bound: a tenant flooding its own queue is rejected without
	// touching anyone else's jobs.
	if ts.queued >= m.cfg.TenantQueueBound {
		m.counters.RejectedOverload++
		m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Label: "reject-overload"})
		return nil, false, fmt.Errorf("%w (tenant %q queue at bound %d)", ErrOverloaded, tenant, m.cfg.TenantQueueBound)
	}

	// Global bound: shed the lowest-priority queued job if the arrival
	// outranks it, otherwise reject.
	if len(m.queue) >= m.cfg.QueueBound {
		victim := m.shedCandidate(ts.Priority)
		if victim == nil {
			m.counters.RejectedOverload++
			m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Label: "reject-overload"})
			return nil, false, fmt.Errorf("%w (global queue at bound %d)", ErrOverloaded, m.cfg.QueueBound)
		}
		m.shed(victim, "priority")
		if m.degraded {
			// Journaling the shed failed — the service degraded mid-admission.
			m.counters.RejectedDegraded++
			m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Label: "reject-degraded"})
			return nil, false, fmt.Errorf("%w: %v", ErrDegraded, m.degradedErr)
		}
	}

	// Durable admission: the job's id IS its submit record's journal sequence
	// number, so status URLs stay valid across crash and recovery. The admit
	// record after it is the acknowledgement barrier — a submit whose admit
	// never made it to disk was never acknowledged to the client, and recovery
	// drops it. Both writes are strict: if either fails the submission is
	// rejected and the service degrades, because accepting work that cannot
	// be made durable would silently break the contract.
	appName, graphName := jobNames(job)
	var id int
	if m.cfg.Journal != nil {
		seq, err := m.cfg.Journal.Append(Record{
			Kind: RecordSubmit, Tenant: tenant, App: appName, Graph: graphName,
			Seed: job.Seed, Key: key, Fingerprint: fp, Priority: ts.Priority,
		})
		if err != nil {
			m.degrade(err)
			return nil, false, fmt.Errorf("%w: %v", ErrDegraded, err)
		}
		m.counters.JournalAppends++
		id = int(seq)
		if id <= m.nextID { // monotonic guard (journal swapped mid-flight)
			id = m.nextID + 1
		}
		m.nextID = id
		if _, err := m.cfg.Journal.Append(Record{Kind: RecordAdmit, ID: id}); err != nil {
			m.degrade(err)
			return nil, false, fmt.Errorf("%w: %v", ErrDegraded, err)
		}
		m.counters.JournalAppends++
		m.emit(trace.Event{Kind: trace.KindJournal, Machine: -1, Step: id, Label: RecordSubmit.String()})
		m.emit(trace.Event{Kind: trace.KindJournal, Machine: -1, Step: id, Label: RecordAdmit.String()})
	} else {
		m.nextID++
		id = m.nextID
	}
	js = &jobState{
		id:          id,
		tenant:      tenant,
		priority:    ts.Priority,
		job:         job,
		key:         key,
		fp:          fp,
		appName:     appName,
		graphName:   graphName,
		seed:        job.Seed,
		ctx:         ctx,
		deadline:    deadline,
		state:       StateQueued,
		enqueuedAt:  now,
		readyAt:     now,
		submittedAt: now,
		done:        make(chan struct{}),
	}
	m.jobs[js.id] = js
	m.queue = append(m.queue, js)
	ts.queued++
	if key != "" {
		m.idem[key] = js
	}
	if m.cfg.BreakerThreshold > 0 && ts.breaker == breakerHalfOpen {
		ts.probeRunning = true
	}
	m.counters.Admitted++
	m.emit(trace.Event{Kind: trace.KindAdmit, Machine: -1, Step: js.id, Label: "admit"})
	return js, false, nil
}

// shedCandidate returns the queued job load shedding would evict for an
// arrival of the given priority: the lowest-priority strictly-outranked job,
// oldest first among equals — or nil when nothing is outranked.
func (m *machine) shedCandidate(arriving int) *jobState {
	var victim *jobState
	for _, js := range m.queue {
		if js.priority >= arriving {
			continue
		}
		if victim == nil || js.priority < victim.priority ||
			(js.priority == victim.priority && js.id < victim.id) {
			victim = js
		}
	}
	return victim
}

// shedReasonCanceled is the RecordShed reason distinguishing shutdown
// cancellation from load shedding in the journal; recovery maps it back to
// StateCanceled.
const shedReasonCanceled = "canceled"

// shed evicts a queued job with the given reason ("priority" or "deadline").
func (m *machine) shed(js *jobState, reason string) {
	m.removeQueued(js)
	js.state = StateShed
	js.err = fmt.Errorf("service: shed (%s)", reason)
	if reason == "deadline" {
		m.counters.ShedDeadline++
	} else {
		m.counters.ShedPriority++
	}
	m.journalBest(Record{Kind: RecordShed, ID: js.id, Error: reason})
	m.emit(trace.Event{Kind: trace.KindShed, Machine: -1, Step: js.id, Label: reason})
	m.finish(js)
}

// removeQueued drops a job from the queue slice and its tenant's count.
func (m *machine) removeQueued(js *jobState) {
	for i, q := range m.queue {
		if q == js {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	m.tenant(js.tenant).queued--
}

// finish closes the job's completion channel (idempotently safe because it is
// only called once per terminal transition).
func (m *machine) finish(js *jobState) {
	if js.done != nil {
		close(js.done)
	}
}

// dispatch selects the next runnable job at clock value now: the
// highest-priority queued job whose backoff has elapsed, FIFO among equals.
// Queued jobs whose deadline already passed are shed on the way. It returns
// nil when nothing is ready; wait is then the delay until the earliest
// backoff expires (0 when the queue is empty).
func (m *machine) dispatch(now float64) (js *jobState, wait float64) {
	// Shed expired jobs first so they never occupy a worker.
	for i := 0; i < len(m.queue); {
		q := m.queue[i]
		expired := q.deadline > 0 && now > q.deadline
		if !expired && q.ctx != nil && q.ctx.Err() != nil {
			expired = true
		}
		if expired {
			m.shed(q, "deadline")
			continue // removeQueued shifted the slice; same index again
		}
		i++
	}
	var best *jobState
	minReady := math.Inf(1)
	for _, q := range m.queue {
		if q.readyAt > now {
			if q.readyAt < minReady {
				minReady = q.readyAt
			}
			continue
		}
		if best == nil || q.priority > best.priority ||
			(q.priority == best.priority && q.id < best.id) {
			best = q
		}
	}
	if best == nil {
		if math.IsInf(minReady, 1) {
			return nil, 0
		}
		return nil, minReady - now
	}
	m.removeQueued(best)
	best.state = StateRunning
	m.running++
	m.journalBest(Record{Kind: RecordStart, ID: best.id, Attempt: best.attempts})
	w := now - best.enqueuedAt
	best.queueWait += w
	m.queueWaits = append(m.queueWaits, w)
	m.emit(trace.Event{Kind: trace.KindQueue, Machine: -1, Step: best.id, Label: best.tenant, Seconds: w})
	return best, 0
}

// complete records a successful attempt finishing at clock value now: budget
// charges, breaker close, terminal bookkeeping.
func (m *machine) complete(now float64, js *jobState, jr *workload.JobResult) {
	ts := m.tenant(js.tenant)
	js.state = StateDone
	js.result = jr.Exec
	js.ingress = jr.IngressSeconds
	js.cacheHit = jr.CacheHit
	ts.spentSeconds += jr.IngressSeconds + jr.Exec.SimSeconds
	ts.spentJoules += jr.Exec.EnergyJoules
	m.running--
	m.counters.Completed++
	// Complete before charge, always in that order: recovery derives the
	// missing charge from the complete record if the crash lands between
	// them, so a tenant is never double-charged at any journal offset.
	m.journalBest(Record{
		Kind: RecordComplete, ID: js.id, Attempt: js.attempts,
		Seconds: jr.Exec.SimSeconds, Ingress: jr.IngressSeconds,
		Energy: jr.Exec.EnergyJoules, Flag: jr.CacheHit,
	})
	m.journalBest(Record{
		Kind: RecordBudgetCharge, ID: js.id, Tenant: js.tenant,
		Seconds: jr.IngressSeconds + jr.Exec.SimSeconds, Energy: jr.Exec.EnergyJoules,
	})
	if m.cfg.BreakerThreshold > 0 {
		ts.consecFails = 0
		if ts.breaker != breakerClosed {
			ts.breaker = breakerClosed
			ts.probeRunning = false
			m.emit(trace.Event{Kind: trace.KindBreaker, Machine: -1, Label: "close"})
		}
	}
	m.finish(js)
}

// fail records a failed attempt at clock value now. Retryable failures go
// back into the queue with capped exponential backoff and deterministic
// seeded jitter; exhausted (or cancelled) jobs become terminal and feed the
// tenant's circuit breaker.
func (m *machine) fail(now float64, js *jobState, err error, retryable bool) {
	m.running--
	js.attempts++
	js.err = err
	if retryable && js.attempts <= m.cfg.MaxRetries {
		backoff := m.backoff(js.id, js.attempts)
		js.state = StateQueued
		js.enqueuedAt = now
		js.readyAt = now + backoff
		m.queue = append(m.queue, js)
		m.tenant(js.tenant).queued++
		m.counters.Retries++
		m.journalBest(Record{Kind: RecordRetry, ID: js.id, Attempt: js.attempts, Seconds: backoff})
		m.emit(trace.Event{Kind: trace.KindRetry, Machine: -1, Step: js.id, Resume: js.attempts, Label: js.tenant, Seconds: backoff})
		return
	}
	js.state = StateFailed
	m.counters.Failed++
	m.journalBest(Record{Kind: RecordFail, ID: js.id, Attempt: js.attempts, Error: err.Error()})
	ts := m.tenant(js.tenant)
	if m.cfg.BreakerThreshold > 0 {
		ts.consecFails++
		tripped := ts.breaker == breakerClosed && ts.consecFails >= m.cfg.BreakerThreshold
		reopened := ts.breaker == breakerHalfOpen // failed probe
		if tripped || reopened {
			ts.breaker = breakerOpen
			ts.openedAt = now
			ts.probeRunning = false
			m.counters.BreakerTrips++
			m.emit(trace.Event{Kind: trace.KindBreaker, Machine: -1, Label: "trip"})
		}
	}
	m.finish(js)
}

// backoff returns the capped exponential backoff with deterministic jitter
// for a job's n-th failed attempt (n >= 1): base·2^(n−1), capped, scaled by a
// jitter factor in [0.5, 1.5) drawn from the service seed, the job id and the
// attempt — the same triple always yields the same delay, which keeps replays
// and chaos tests bit-reproducible (internal/rng, not math/rand).
func (m *machine) backoff(jobID, attempt int) float64 {
	d := m.cfg.BaseBackoff * math.Pow(2, float64(attempt-1))
	if d > m.cfg.MaxBackoff {
		d = m.cfg.MaxBackoff
	}
	u := float64(rng.Hash3(m.cfg.Seed, uint64(jobID), uint64(attempt))>>11) / (1 << 53)
	return d * (0.5 + u)
}

// cancelQueued marks every queued job canceled (service shutdown).
func (m *machine) cancelQueued() {
	for _, js := range m.queue {
		m.tenant(js.tenant).queued--
		js.state = StateCanceled
		js.err = ErrClosed
		m.counters.Canceled++
		m.journalBest(Record{Kind: RecordShed, ID: js.id, Error: shedReasonCanceled})
		m.finish(js)
	}
	m.queue = nil
}

// idle reports no queued or running work.
func (m *machine) idle() bool { return len(m.queue) == 0 && m.running == 0 }

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	ID       int     `json:"id"`
	Tenant   string  `json:"tenant"`
	App      string  `json:"app"`
	Graph    string  `json:"graph"`
	Priority int     `json:"priority"`
	State    string  `json:"state"`
	Attempts int     `json:"attempts"`
	// Key is the client-supplied idempotency key, if any.
	Key string `json:"idempotency_key,omitempty"`
	// QueueWaitSeconds accumulates the waits of every dispatch (clock units
	// of the driver: wall seconds live, simulated seconds in replay).
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	// ExecSeconds / IngressSeconds / EnergyJoules are the simulated charges
	// of the successful attempt (zero otherwise).
	ExecSeconds    float64 `json:"exec_seconds"`
	IngressSeconds float64 `json:"ingress_seconds"`
	EnergyJoules   float64 `json:"energy_joules"`
	CacheHit       bool    `json:"cache_hit"`
	Error          string  `json:"error,omitempty"`
}

// status snapshots a job.
func (m *machine) status(js *jobState) JobStatus {
	st := JobStatus{
		ID:               js.id,
		Tenant:           js.tenant,
		App:              js.appName,
		Graph:            js.graphName,
		Priority:         js.priority,
		State:            js.state.String(),
		Attempts:         js.attempts,
		Key:              js.key,
		QueueWaitSeconds: js.queueWait,
		IngressSeconds:   js.ingress,
		CacheHit:         js.cacheHit,
	}
	if js.result != nil {
		st.ExecSeconds = js.result.SimSeconds
		st.EnergyJoules = js.result.EnergyJoules
	}
	if js.err != nil {
		st.Error = js.err.Error()
	}
	return st
}

// list snapshots every job (optionally one tenant's), sorted by id.
func (m *machine) list(tenant string) []JobStatus {
	out := make([]JobStatus, 0, len(m.jobs))
	for _, js := range m.jobs {
		if tenant != "" && js.tenant != tenant {
			continue
		}
		out = append(out, m.status(js))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// TenantUsage is one tenant's cumulative spend against its budget.
type TenantUsage struct {
	Tenant       Tenant  `json:"tenant"`
	SpentSeconds float64 `json:"spent_seconds"`
	SpentJoules  float64 `json:"spent_joules"`
	Queued       int     `json:"queued"`
	BreakerOpen  bool    `json:"breaker_open"`
}

// usage snapshots every tenant, sorted by name.
func (m *machine) usage() []TenantUsage {
	out := make([]TenantUsage, 0, len(m.tenants))
	for _, ts := range m.tenants {
		out = append(out, TenantUsage{
			Tenant:       ts.Tenant,
			SpentSeconds: ts.spentSeconds,
			SpentJoules:  ts.spentJoules,
			Queued:       ts.queued,
			BreakerOpen:  ts.breaker == breakerOpen,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Tenant.Name < out[b].Tenant.Name })
	return out
}
