package engine

import (
	"math/bits"
	"testing"

	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

// benchPowerLaw is the dense-workload input: a power-law proxy graph whose
// hubs stress the destination-grouped sweep.
func benchPowerLaw(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.Generate(gen.Spec{
		Name: "bench-pl", Vertices: 20000, Edges: 80000, Kind: gen.KindPowerLaw,
	}, 7)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchRing is the sparse-workload input: a ring with long-range chords, so
// single-source traversal runs a couple of hundred supersteps with a frontier
// far below the hybrid threshold — the regime the worklist sweep targets.
func benchRing() *graph.Graph {
	const n = 20000
	g := &graph.Graph{Name: "bench-ring", NumVertices: n}
	for i := 0; i < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n)})
	}
	for i := 0; i < n; i += 100 {
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 97) % n)})
	}
	return g
}

func benchPlacement(b *testing.B, g *graph.Graph) *Placement {
	b.Helper()
	pl, err := NewPlacement(g, moduloOwner(g, 4), 4)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

// unreachedHop is benchSSSPProgram's "no distance yet" sentinel.
const unreachedHop = ^uint32(0)

// benchSSSPProgram is single-source shortest paths over unit weights:
// frontier-driven, GatherBoth, exact min accumulator.
type benchSSSPProgram struct{}

func (benchSSSPProgram) Name() string       { return "bench-sssp" }
func (benchSSSPProgram) Coeffs() CostCoeffs { return rankProgram{}.Coeffs() }
func (benchSSSPProgram) Direction() Direction {
	return GatherBoth
}
func (benchSSSPProgram) ApplyAll() bool     { return false }
func (benchSSSPProgram) MaxSupersteps() int { return 1 << 20 }
func (benchSSSPProgram) Init(v graph.VertexID, outDeg, inDeg int32) uint32 {
	if v == 0 {
		return 0
	}
	return unreachedHop
}
func (benchSSSPProgram) Gather(src uint32) uint32 {
	if src == unreachedHop {
		return unreachedHop
	}
	return src + 1
}
func (benchSSSPProgram) Sum(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
func (benchSSSPProgram) Apply(v graph.VertexID, old, acc uint32, has bool, rt *Runtime) (uint32, bool) {
	if has && acc < old {
		return acc, true
	}
	return old, false
}

// runGatherBench measures whole executions of run and reports useful-gather
// throughput. Gathers is charged identically by every engine (inactive edges
// never count), so edges/s ratios between the *Reference benchmarks and their
// counterparts are true speedups on the same work.
func runGatherBench[V, A any](b *testing.B, prog Program[V, A], pl *Placement,
	run func(Program[V, A], *Placement) (*Result, []V, error)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var gathers float64
	for i := 0; i < b.N; i++ {
		res, _, err := run(prog, pl)
		if err != nil {
			b.Fatal(err)
		}
		gathers += res.Gathers
	}
	b.ReportMetric(gathers/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkEngineGatherPageRank(b *testing.B) {
	pl := benchPlacement(b, benchPowerLaw(b))
	cl := testCluster(b, "c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge")
	runGatherBench[float64, float64](b, rankProgram{}, pl,
		func(p Program[float64, float64], pl *Placement) (*Result, []float64, error) {
			return RunSync[float64, float64](p, pl, cl)
		})
}

func BenchmarkEngineGatherPageRankReference(b *testing.B) {
	pl := benchPlacement(b, benchPowerLaw(b))
	cl := testCluster(b, "c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge")
	runGatherBench[float64, float64](b, rankProgram{}, pl,
		func(p Program[float64, float64], pl *Placement) (*Result, []float64, error) {
			return RunSyncReference[float64, float64](p, pl, cl)
		})
}

// withAutoShards pins the worker knob to "one worker per CPU" so the
// parallel-engine benchmarks scale with the harness's -cpu list — the
// GOMAXPROCS axis of make bench-scaling.
func withAutoShards(b *testing.B) {
	b.Helper()
	prev := ParallelShards
	ParallelShards = 0
	b.Cleanup(func() { ParallelShards = prev })
}

func BenchmarkEngineParallelPageRank(b *testing.B) {
	withAutoShards(b)
	pl := benchPlacement(b, benchPowerLaw(b))
	cl := testCluster(b, "c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge")
	runGatherBench[float64, float64](b, rankProgram{}, pl,
		func(p Program[float64, float64], pl *Placement) (*Result, []float64, error) {
			return RunSyncParallel[float64, float64](p, pl, cl)
		})
}

func BenchmarkEngineParallelSSSP(b *testing.B) {
	withAutoShards(b)
	pl := benchPlacement(b, benchRing())
	cl := testCluster(b, "c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge")
	runGatherBench[uint32, uint32](b, benchSSSPProgram{}, pl,
		func(p Program[uint32, uint32], pl *Placement) (*Result, []uint32, error) {
			return RunSyncParallel[uint32, uint32](p, pl, cl)
		})
}

func BenchmarkEngineGatherSSSP(b *testing.B) {
	pl := benchPlacement(b, benchRing())
	cl := testCluster(b, "c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge")
	runGatherBench[uint32, uint32](b, benchSSSPProgram{}, pl,
		func(p Program[uint32, uint32], pl *Placement) (*Result, []uint32, error) {
			return RunSync[uint32, uint32](p, pl, cl)
		})
}

func BenchmarkEngineGatherSSSPReference(b *testing.B) {
	pl := benchPlacement(b, benchRing())
	cl := testCluster(b, "c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge")
	runGatherBench[uint32, uint32](b, benchSSSPProgram{}, pl,
		func(p Program[uint32, uint32], pl *Placement) (*Result, []uint32, error) {
			return RunSyncReference[uint32, uint32](p, pl, cl)
		})
}

// benchClusterState mirrors the apps package's packed ClusterBFS state (the
// engine cannot import apps): a 64-lane reach word plus per-lane distances.
type benchClusterState struct {
	seen uint64
	dist [64]int32
}

// benchClusterProgram is bit-parallel batched BFS: 64 sources, one bit lane
// each, OR-accumulated reach words. The 264-byte vertex state and the
// word-wide accumulator stress the engines' generic value plumbing in a way
// the scalar benchmarks cannot.
type benchClusterProgram struct{}

func (benchClusterProgram) Name() string         { return "bench-clusterbfs" }
func (benchClusterProgram) Coeffs() CostCoeffs   { return rankProgram{}.Coeffs() }
func (benchClusterProgram) Direction() Direction { return GatherBoth }
func (benchClusterProgram) ApplyAll() bool       { return false }
func (benchClusterProgram) MaxSupersteps() int   { return 1 << 20 }
func (benchClusterProgram) Init(v graph.VertexID, outDeg, inDeg int32) benchClusterState {
	var st benchClusterState
	for j := range st.dist {
		st.dist[j] = -1
	}
	// Sources spread every 300 vertices across the 20000-vertex inputs.
	if int(v)%300 == 0 && int(v)/300 < 64 {
		st.seen = 1 << uint(int(v)/300)
		st.dist[int(v)/300] = 0
	}
	return st
}
func (benchClusterProgram) Gather(src benchClusterState) uint64 { return src.seen }
func (benchClusterProgram) Sum(a, b uint64) uint64              { return a | b }
func (benchClusterProgram) Apply(v graph.VertexID, old benchClusterState, acc uint64, has bool, rt *Runtime) (benchClusterState, bool) {
	if !has {
		return old, false
	}
	fresh := acc &^ old.seen
	if fresh == 0 {
		return old, false
	}
	old.seen |= fresh
	d := int32(rt.Step) + 1
	for m := fresh; m != 0; m &= m - 1 {
		old.dist[bits.TrailingZeros64(m)] = d
	}
	return old, true
}

func BenchmarkEngineClusterBFS(b *testing.B) {
	pl := benchPlacement(b, benchRing())
	cl := testCluster(b, "c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge")
	runGatherBench[benchClusterState, uint64](b, benchClusterProgram{}, pl,
		func(p Program[benchClusterState, uint64], pl *Placement) (*Result, []benchClusterState, error) {
			return RunSync[benchClusterState, uint64](p, pl, cl)
		})
}

func BenchmarkEngineClusterBFSParallel(b *testing.B) {
	withAutoShards(b)
	pl := benchPlacement(b, benchRing())
	cl := testCluster(b, "c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge")
	runGatherBench[benchClusterState, uint64](b, benchClusterProgram{}, pl,
		func(p Program[benchClusterState, uint64], pl *Placement) (*Result, []benchClusterState, error) {
			return RunSyncParallel[benchClusterState, uint64](p, pl, cl)
		})
}
