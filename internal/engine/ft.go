package engine

import (
	"fmt"
	"sort"

	"proxygraph/internal/cluster"
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
	"proxygraph/internal/trace"
)

// FaultInjector feeds a deterministic fault schedule into a synchronous run.
// Implementations must be pure functions of the step number so that every
// engine — and every replay after a rollback — observes the identical
// schedule. internal/fault provides the seed-driven implementation.
type FaultInjector interface {
	// Perturb returns the cluster superstep `step` should be charged against:
	// cl itself when the step runs at full health, or a modified copy when a
	// transient fault (straggler throttling, network degradation) is active.
	// The returned cluster must have the same machine count as cl.
	Perturb(step int, cl *cluster.Cluster) *cluster.Cluster
	// Crash returns the machine that permanently fails at the barrier ending
	// `step`, or a negative value when none does. Crashes against machines
	// that are already dead are ignored.
	Crash(step int) int
}

// RecoveryPolicy selects how a run resumes after a machine crash.
type RecoveryPolicy int

const (
	// RecoverCheckpoint rolls back to the most recent superstep checkpoint
	// (or to the initial state when none has been written yet) and resumes on
	// the surviving machines with the dead machine's edges repartitioned
	// across them.
	RecoverCheckpoint RecoveryPolicy = iota
	// RecoverRestart is the baseline: the run restarts from superstep 0 on
	// the survivors, discarding any checkpoints.
	RecoverRestart
)

// FaultConfig enables fault injection and checkpoint-based recovery on a
// synchronous run.
type FaultConfig struct {
	// Injector supplies the fault schedule; nil disables faults (checkpoints
	// may still be written and charged).
	Injector FaultInjector
	// CheckpointEvery writes a checkpoint after every k-th superstep barrier
	// (k > 0); zero disables checkpointing.
	CheckpointEvery int
	// Policy selects the recovery strategy after a crash.
	Policy RecoveryPolicy
}

// Options bundles the optional behaviours of a synchronous run.
type Options struct {
	// Rebalancer, when non-nil, is invoked after every superstep barrier
	// exactly as in RunSyncRebalanced.
	Rebalancer Rebalancer
	// Fault, when non-nil, enables fault injection and checkpointing.
	Fault *FaultConfig
	// Trace, when non-nil, receives structured execution events (see
	// internal/trace). Nil disables tracing with zero behaviour change:
	// accounting is bit-identical either way.
	Trace trace.Collector
	// InitialActive, when non-nil, seeds superstep 0's frontier with exactly
	// these vertices instead of the full vertex set — the warm-start hook for
	// delta-based re-execution (apps.Resume*), where only vertices touched by
	// an edge batch need reprocessing. A non-nil empty slice is a valid seed:
	// the run terminates after one idle superstep. Ignored for ApplyAll
	// programs: those gather from every vertex each superstep in all engines,
	// so a partial seed has no consistent meaning there. The seed is captured
	// by the superstep-0 baseline, so fault-schedule replays and full restarts
	// resume from the same warm frontier.
	InitialActive []graph.VertexID
}

// validateInitialActive bounds-checks a warm-start seed against the vertex
// count before any engine state is built from it.
func validateInitialActive(seed []graph.VertexID, n int) error {
	for _, v := range seed {
		if int(v) >= n {
			return fmt.Errorf("engine: initial-active vertex %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

// ftRun drives one run's fault-tolerance protocol. A nil *ftRun is a valid
// no-op controller, so the engines call its hooks unconditionally.
type ftRun[V any] struct {
	cfg  *FaultConfig
	base *cluster.Cluster
	dead []bool
	// init is the free superstep-0 snapshot full restarts roll back to; ckpt
	// is the most recent paid checkpoint.
	init *Checkpoint[V]
	ckpt *Checkpoint[V]

	checkpoints int
	recoveries  int
}

func newFTRun[V any](cfg *FaultConfig, cl *cluster.Cluster) (*ftRun[V], error) {
	if cfg == nil {
		return nil, nil
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("engine: checkpoint interval %d is negative", cfg.CheckpointEvery)
	}
	if cfg.Policy != RecoverCheckpoint && cfg.Policy != RecoverRestart {
		return nil, fmt.Errorf("engine: unknown recovery policy %d", cfg.Policy)
	}
	return &ftRun[V]{cfg: cfg, base: cl, dead: make([]bool, cl.Size())}, nil
}

// baseline records the initial state (after Init, before superstep 0). It is
// free: every machine can re-derive it from the input graph, which is exactly
// what a full restart does.
func (f *ftRun[V]) baseline(vals []V, active []bool, activeCount int, a *Accountant) {
	if f == nil {
		return
	}
	f.init = snapshotCheckpoint(0, vals, active, activeCount, a)
}

// beforeStep installs the effective cluster for the coming superstep.
func (f *ftRun[V]) beforeStep(step int, a *Accountant) {
	if f == nil || f.cfg.Injector == nil {
		return
	}
	eff := f.cfg.Injector.Perturb(step, f.base)
	if eff != f.base {
		// Perturb returns the base cluster pointer on healthy steps, so this
		// fires exactly on perturbed ones — deterministically, since the
		// injector is a pure function of the step number.
		a.emit(trace.Event{Kind: trace.KindFault, Step: step, Machine: -1, Label: "perturb"})
	}
	a.setEffective(eff)
}

// barrier runs the fault protocol at the barrier ending `step`: write a
// checkpoint if one is due, then fire a scheduled crash. vals/active/
// activeCount describe the post-barrier state (the frontier that will drive
// step+1); terminated reports that the run is about to stop, which suppresses
// both checkpointing and crashes (a machine lost after the last barrier
// cannot change the result).
//
// A non-nil restore tells the engine to roll its state back to that
// checkpoint and resume at restore.Step; a non-nil newPl is the repartitioned
// survivor placement to continue on. All recovery costs are charged to the
// accountant before returning.
func (f *ftRun[V]) barrier(step int, terminated bool, a *Accountant, vals []V, active []bool, activeCount int, pl *Placement) (restore *Checkpoint[V], newPl *Placement, err error) {
	if f == nil {
		return nil, nil, nil
	}
	if f.cfg.CheckpointEvery > 0 && !terminated && (step+1)%f.cfg.CheckpointEvery == 0 {
		vsize, err := stateSize[V]()
		if err != nil {
			return nil, nil, err
		}
		f.ckpt = snapshotCheckpoint(step+1, vals, active, activeCount, a)
		stall := f.storageSeconds(pl, vsize)
		a.emit(trace.Event{
			Kind: trace.KindCheckpoint, Step: step + 1, Machine: -1,
			Seconds: stall, Bytes: checkpointSize(len(vals), len(f.dead), vsize),
		})
		a.Stall(stall, "checkpoint")
		f.checkpoints++
	}
	if f.cfg.Injector == nil || terminated {
		return nil, nil, nil
	}
	p := f.cfg.Injector.Crash(step)
	if p < 0 || p >= len(f.dead) || f.dead[p] {
		return nil, nil, nil
	}
	alive := 0
	for _, d := range f.dead {
		if !d {
			alive++
		}
	}
	if alive <= 1 {
		// Losing the last machine would kill the job outright; the schedule
		// generator never asks for it, and we refuse to model it.
		return nil, nil, nil
	}
	f.dead[p] = true
	a.Retire(p)
	a.emit(trace.Event{Kind: trace.KindCrash, Step: step, Machine: p})
	newPl, moved, err := RepartitionSurvivors(pl, f.dead)
	if err != nil {
		return nil, nil, err
	}
	restore = f.init
	fromDisk := false
	if f.cfg.Policy == RecoverCheckpoint && f.ckpt != nil {
		restore = f.ckpt
		fromDisk = true
	}
	// Recovery stalls the cluster for: failure detection (one timeout
	// exchange), re-shipping the dead machine's edges to their new owners,
	// and — when rolling back to a written checkpoint — re-reading the
	// checkpointed masters from storage on the survivors.
	seconds := f.base.Net.LatencySec + f.base.Net.TransferTime(float64(moved)*migratedEdgeBytes)
	if fromDisk {
		vsize, err := stateSize[V]()
		if err != nil {
			return nil, nil, err
		}
		seconds += f.storageSeconds(newPl, vsize)
	}
	policy := "restart"
	if fromDisk {
		policy = "checkpoint"
	}
	a.emit(trace.Event{
		Kind: trace.KindRecovery, Step: step, Machine: p, Label: policy,
		Resume: restore.Step, Seconds: seconds, Moved: moved,
	})
	a.Stall(seconds, "recover")
	f.recoveries++
	return restore, newPl, nil
}

// finish copies the protocol counters onto the run's result.
func (f *ftRun[V]) finish(res *Result) {
	if f == nil {
		return
	}
	res.Checkpoints = f.checkpoints
	res.Recoveries = f.recoveries
}

// storageSeconds is the barrier cost of moving each alive machine's share of
// a checkpoint (its masters' values plus frontier flags) through its storage:
// machines write/read in parallel, so the cluster waits for the slowest, plus
// one network exchange to agree the checkpoint is durable.
func (f *ftRun[V]) storageSeconds(pl *Placement, vsize int) float64 {
	worst := 0.0
	for p := 0; p < pl.M; p++ {
		if f.dead[p] {
			continue
		}
		bw := f.base.Machines[p].DiskBWGBs
		if bw <= 0 {
			bw = cluster.DefaultDiskGBs
		}
		t := float64(len(pl.MasterVerts[p])) * float64(vsize+1) / (bw * 1e9)
		if t > worst {
			worst = t
		}
	}
	return worst + f.base.Net.LatencySec
}

// RepartitionSurvivors reassigns every edge owned by a dead machine to the
// surviving machines, proportionally to the edge counts the survivors already
// hold (largest-remainder rounding, deterministic), and returns the finalized
// placement plus the number of edges that moved. Machine indices are
// preserved — dead machines remain in the placement with no edges and no
// masters — so per-machine accounting stays aligned across the crash.
func RepartitionSurvivors(pl *Placement, dead []bool) (*Placement, int64, error) {
	if len(dead) != pl.M {
		return nil, 0, fmt.Errorf("engine: %d dead flags for %d machines", len(dead), pl.M)
	}
	var survivors []int
	for p, d := range dead {
		if !d {
			survivors = append(survivors, p)
		}
	}
	if len(survivors) == 0 {
		return nil, 0, fmt.Errorf("engine: no surviving machines to repartition onto")
	}

	owner := append([]int32(nil), pl.EdgeOwner...)
	var orphans []int32
	for i, o := range owner {
		if dead[o] {
			orphans = append(orphans, int32(i))
		}
	}
	if len(orphans) > 0 {
		counts := make([]int64, len(survivors))
		var total int64
		for i, s := range survivors {
			counts[i] = int64(len(pl.LocalEdges[s]))
			total += counts[i]
		}
		n := int64(len(orphans))
		quota := make([]int64, len(survivors))
		if total > 0 {
			// Largest-remainder apportionment of the orphans against the
			// survivors' existing loads, so the crash preserves whatever
			// (possibly CCR-weighted) balance the partitioner produced.
			assigned := int64(0)
			type rem struct {
				r   int64
				idx int
			}
			rems := make([]rem, len(survivors))
			for i := range survivors {
				quota[i] = n * counts[i] / total
				assigned += quota[i]
				rems[i] = rem{r: (n * counts[i]) % total, idx: i}
			}
			sort.Slice(rems, func(a, b int) bool {
				if rems[a].r != rems[b].r {
					return rems[a].r > rems[b].r
				}
				return rems[a].idx < rems[b].idx
			})
			for k := int64(0); k < n-assigned; k++ {
				quota[rems[k].idx]++
			}
		} else {
			base, extra := n/int64(len(survivors)), n%int64(len(survivors))
			for i := range quota {
				quota[i] = base
				if int64(i) < extra {
					quota[i]++
				}
			}
		}
		oi := 0
		for i, s := range survivors {
			for k := int64(0); k < quota[i]; k++ {
				owner[orphans[oi]] = int32(s)
				oi++
			}
		}
	}

	newPl, err := NewPlacement(pl.G, owner, pl.M)
	if err != nil {
		return nil, 0, fmt.Errorf("engine: repartition after crash: %w", err)
	}
	// NewPlacement masters every vertex on an owner of one of its edges, and
	// dead machines now own none — only edge-less vertices, hashed across all
	// machine indices, can land on a dead machine. Re-hash those onto the
	// survivors and rebuild the master lists. Isolated vertices never appear
	// in the compiled gather blocks, so the blocks stay valid.
	rehashed := false
	for v, p := range newPl.Master {
		if dead[p] {
			newPl.Master[v] = int32(survivors[rng.Hash64(uint64(v))%uint64(len(survivors))])
			rehashed = true
		}
	}
	if rehashed {
		for p := range newPl.MasterVerts {
			newPl.MasterVerts[p] = nil
		}
		for v, p := range newPl.Master {
			newPl.MasterVerts[p] = append(newPl.MasterVerts[p], graph.VertexID(v))
		}
	}
	return newPl, int64(len(orphans)), nil
}
