package engine

import (
	"testing"

	"proxygraph/internal/cluster"
)

func TestAccountantStallErrorPaths(t *testing.T) {
	cl := testCluster(t, "c4.xlarge", "c4.2xlarge")
	a := NewAccountant(cl, CostCoeffs{})

	// Negative and zero stalls are no-ops: no time, no trace entry.
	a.Stall(-1, "bogus")
	a.Stall(0, "bogus")
	if got := a.Finish("x", "g", nil); got.SimSeconds != 0 || len(got.Trace) != 0 {
		t.Fatalf("non-positive stalls charged: sim=%v trace=%d", got.SimSeconds, len(got.Trace))
	}

	// A positive stall charges every alive machine, but not retired ones.
	b := NewAccountant(cl, CostCoeffs{})
	b.Retire(1)
	b.Stall(2.5, "checkpoint")
	if b.simTime != 2.5 {
		t.Fatalf("stall did not advance makespan: %v", b.simTime)
	}
	last := b.LastStep()
	if last.Kind != "checkpoint" || last.PerMachine[0] != 2.5 || last.PerMachine[1] != 0 {
		t.Fatalf("stall trace = %+v", last)
	}
}

func TestAccountantRetire(t *testing.T) {
	cl := testCluster(t, "c4.xlarge", "c4.xlarge")
	coeffs := CostCoeffs{OpsPerGather: 1e9}
	a := NewAccountant(cl, coeffs)
	a.Superstep([]StepCounters{{Gathers: 10}, {Gathers: 10}})
	tAlive := a.simTime
	a.Retire(1)
	if !a.Retired(1) || a.Retired(0) {
		t.Fatal("retired flags wrong")
	}
	a.Retire(1) // idempotent
	a.Superstep([]StepCounters{{Gathers: 10}, {Gathers: 10}})
	res := a.Finish("x", "g", nil)
	// The dead machine charged nothing in the second step.
	if res.BusySeconds[1] >= res.BusySeconds[0] {
		t.Fatalf("dead machine kept charging: %v vs %v", res.BusySeconds[1], res.BusySeconds[0])
	}
	// Energy: machine 1 was powered off at tAlive, so it draws idle power for
	// tAlive only while machine 0 idles until the final makespan.
	m := cl.Machines[0]
	want := m.Energy(res.BusySeconds[0], res.SimSeconds) + m.Energy(res.BusySeconds[1], tAlive)
	if res.EnergyJoules != want {
		t.Fatalf("energy = %v, want %v", res.EnergyJoules, want)
	}
	// Out-of-range retire is ignored.
	a.Retire(-1)
	a.Retire(99)
}

func TestAccountantSnapshotDeepCopies(t *testing.T) {
	cl := testCluster(t, "c4.xlarge")
	a := NewAccountant(cl, CostCoeffs{OpsPerGather: 1e6, AccumBytes: 10})
	a.Superstep([]StepCounters{{Gathers: 5, PartialsOut: 2}})
	snap := a.Snapshot()
	if snap.SimSeconds != a.simTime || snap.Supersteps != 1 || snap.Gathers != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	snap.BusySeconds[0] = -1
	snap.CommBytes[0] = -1
	if a.busy[0] < 0 || a.comm[0] < 0 {
		t.Fatal("snapshot aliases the accountant's slices")
	}
}

func TestAccountantEffectiveCluster(t *testing.T) {
	cl := testCluster(t, "c4.xlarge")
	a := NewAccountant(cl, CostCoeffs{OpsPerGather: 1e9})
	a.Superstep([]StepCounters{{Gathers: 10}})
	healthy := a.simTime

	// A throttled effective cluster makes the same work slower.
	slow := &cluster.Cluster{Machines: append([]cluster.Machine(nil), cl.Machines...), Net: cl.Net}
	slow.Machines[0].FreqGHz /= 2
	b := NewAccountant(cl, CostCoeffs{OpsPerGather: 1e9})
	b.setEffective(slow)
	b.Superstep([]StepCounters{{Gathers: 10}})
	if b.simTime <= healthy {
		t.Fatalf("throttled step not slower: %v vs %v", b.simTime, healthy)
	}
	// Passing the base cluster resets to healthy charging.
	b.setEffective(cl)
	if b.effective() != cl {
		t.Fatal("setEffective(base) did not reset")
	}
}

func TestRepartitionSurvivors(t *testing.T) {
	g := testGraph(3, 200, 1000)
	pl, err := NewPlacement(g, moduloOwner(g, 4), 4)
	if err != nil {
		t.Fatal(err)
	}

	dead := []bool{false, true, false, false}
	newPl, moved, err := RepartitionSurvivors(pl, dead)
	if err != nil {
		t.Fatal(err)
	}
	if moved != int64(len(pl.LocalEdges[1])) {
		t.Fatalf("moved %d edges, machine 1 owned %d", moved, len(pl.LocalEdges[1]))
	}
	if len(newPl.LocalEdges[1]) != 0 {
		t.Fatalf("dead machine still owns %d edges", len(newPl.LocalEdges[1]))
	}
	if len(newPl.MasterVerts[1]) != 0 {
		t.Fatalf("dead machine still masters %d vertices", len(newPl.MasterVerts[1]))
	}
	// Machine count and total edges preserved; survivor edges unchanged where
	// they already were.
	if newPl.M != pl.M {
		t.Fatalf("machine count changed: %d", newPl.M)
	}
	total := 0
	for p := range newPl.LocalEdges {
		total += len(newPl.LocalEdges[p])
	}
	if total != len(g.Edges) {
		t.Fatalf("edges lost: %d of %d", total, len(g.Edges))
	}
	for i, o := range pl.EdgeOwner {
		if o != 1 && newPl.EdgeOwner[i] != o {
			t.Fatalf("edge %d moved off surviving machine %d", i, o)
		}
	}
	// Determinism: same inputs, same output.
	again, moved2, err := RepartitionSurvivors(pl, dead)
	if err != nil || moved2 != moved {
		t.Fatalf("second repartition: %v, moved %d", err, moved2)
	}
	for i := range newPl.EdgeOwner {
		if newPl.EdgeOwner[i] != again.EdgeOwner[i] {
			t.Fatalf("repartition not deterministic at edge %d", i)
		}
	}

	// Cascading failure: kill another machine on top.
	dead[3] = true
	newPl2, _, err := RepartitionSurvivors(newPl, dead)
	if err != nil {
		t.Fatal(err)
	}
	if len(newPl2.LocalEdges[1]) != 0 || len(newPl2.LocalEdges[3]) != 0 {
		t.Fatal("dead machines own edges after cascade")
	}

	// Error paths.
	if _, _, err := RepartitionSurvivors(pl, []bool{true}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := RepartitionSurvivors(pl, []bool{true, true, true, true}); err == nil {
		t.Error("all-dead accepted")
	}
}

func TestNewFTRunValidation(t *testing.T) {
	cl := testCluster(t, "c4.xlarge")
	if ft, err := newFTRun[int32](nil, cl); ft != nil || err != nil {
		t.Fatalf("nil config: %v, %v", ft, err)
	}
	if _, err := newFTRun[int32](&FaultConfig{CheckpointEvery: -1}, cl); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := newFTRun[int32](&FaultConfig{Policy: RecoveryPolicy(9)}, cl); err == nil {
		t.Error("unknown policy accepted")
	}
	// The nil controller's hooks are all no-ops.
	var ft *ftRun[int32]
	a := NewAccountant(cl, CostCoeffs{})
	ft.baseline(nil, nil, 0, a)
	ft.beforeStep(0, a)
	if r, p, err := ft.barrier(0, false, a, nil, nil, 0, nil); r != nil || p != nil || err != nil {
		t.Fatal("nil controller acted")
	}
	ft.finish(&Result{})
}
