package engine

import (
	"strings"
	"testing"
)

// ckptState is a representative POD vertex state (mirrors apps' prState).
type ckptState struct {
	Rank   float64
	InvOut float64
	Flag   bool
}

func sampleCheckpoint() *Checkpoint[ckptState] {
	c := &Checkpoint[ckptState]{
		Step:        7,
		Vals:        make([]ckptState, 100),
		Active:      make([]bool, 100),
		ActiveCount: 0,
		Acct: AccountSnapshot{
			SimSeconds:  3.25,
			BusySeconds: []float64{1.5, 0.25, 3.0},
			CommBytes:   []float64{1024, 0, 4096},
			Supersteps:  7,
			Gathers:     123456,
		},
	}
	for i := range c.Vals {
		c.Vals[i] = ckptState{Rank: float64(i) * 0.5, InvOut: 1 / float64(i+1), Flag: i%3 == 0}
		if i%2 == 0 {
			c.Active[i] = true
			c.ActiveCount++
		}
	}
	return c
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	data, err := c.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if sz, err := c.SizeBytes(); err != nil || sz != int64(len(data)) {
		t.Fatalf("SizeBytes = %d, %v; encoded %d bytes", sz, err, len(data))
	}
	got, err := DecodeCheckpoint[ckptState](data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != c.Step || got.ActiveCount != c.ActiveCount {
		t.Fatalf("header mismatch: %d/%d vs %d/%d", got.Step, got.ActiveCount, c.Step, c.ActiveCount)
	}
	for i := range c.Vals {
		if got.Vals[i] != c.Vals[i] {
			t.Fatalf("vertex %d: %+v != %+v", i, got.Vals[i], c.Vals[i])
		}
		if got.Active[i] != c.Active[i] {
			t.Fatalf("active %d: %v != %v", i, got.Active[i], c.Active[i])
		}
	}
	if got.Acct.SimSeconds != c.Acct.SimSeconds || got.Acct.Supersteps != c.Acct.Supersteps || got.Acct.Gathers != c.Acct.Gathers {
		t.Fatalf("accounting scalars mismatch: %+v vs %+v", got.Acct, c.Acct)
	}
	for p := range c.Acct.BusySeconds {
		if got.Acct.BusySeconds[p] != c.Acct.BusySeconds[p] || got.Acct.CommBytes[p] != c.Acct.CommBytes[p] {
			t.Fatalf("accounting machine %d mismatch", p)
		}
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	c := sampleCheckpoint()
	data, err := c.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation must produce a clean error, never a panic.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeCheckpoint[ckptState](data[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := DecodeCheckpoint[ckptState](bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt magic: err = %v", err)
	}

	// Wrong state size (decoding with a different V).
	if _, err := DecodeCheckpoint[float64](data); err == nil {
		t.Fatal("decoding with mismatched state type succeeded")
	}

	// A hostile header declaring a huge vertex count must be rejected by the
	// total-size check before any allocation happens.
	hostile := append([]byte(nil), data...)
	off := len(checkpointMagic) + 4 + 8
	for i := 0; i < 8; i++ {
		hostile[off+i] = 0xff
	}
	if _, err := DecodeCheckpoint[ckptState](hostile); err == nil {
		t.Fatal("hostile vertex count decoded successfully")
	}

	// A non-0/1 active flag is corruption.
	vsize, err := stateSize[ckptState]()
	if err != nil {
		t.Fatal(err)
	}
	badFlag := append([]byte(nil), data...)
	headerLen := len(checkpointMagic) + 4 + 8 + 8 + 8 + 4
	badFlag[headerLen+len(c.Vals)*vsize] = 2
	if _, err := DecodeCheckpoint[ckptState](badFlag); err == nil {
		t.Fatal("corrupt active flag decoded successfully")
	}
}

func TestCheckpointRejectsPointerStates(t *testing.T) {
	type bad struct{ P *int }
	c := &Checkpoint[bad]{Vals: make([]bad, 1), Active: make([]bool, 1)}
	if _, err := c.EncodeBinary(); err == nil {
		t.Fatal("encoding a pointer-bearing state succeeded")
	}
	if _, err := DecodeCheckpoint[bad](nil); err == nil {
		t.Fatal("decoding a pointer-bearing state succeeded")
	}
}
