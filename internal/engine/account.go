package engine

import (
	"fmt"
	"math"

	"proxygraph/internal/cluster"
	"proxygraph/internal/trace"
)

// CostCoeffs are an application's simulation cost constants: how much CPU and
// memory work each instrumented event charges to its machine, and how many
// wire bytes each exchanged record costs. They play the role the real
// hardware played in the paper — the coefficients are calibrated so the
// per-application scaling behaviours of Fig 2 hold (see DESIGN.md).
type CostCoeffs struct {
	// OpsPerGather / BytesPerGather charge one edge gather.
	OpsPerGather, BytesPerGather float64
	// OpsPerApply / BytesPerApply charge one vertex apply.
	OpsPerApply, BytesPerApply float64
	// OpsPerVertex / BytesPerVertex charge per-vertex scheduling bookkeeping
	// every superstep (PowerGraph's engine walks its vertex sets each
	// barrier regardless of activity). This is why profiling inputs must be
	// adequately dense: an edge-subsampled graph keeps its full vertex set,
	// so bookkeeping swamps the edge work and distorts the measured CCR.
	OpsPerVertex, BytesPerVertex float64
	// SerialFrac is the Amdahl serial fraction of the application's
	// per-superstep work (framework dispatch, reductions, skew).
	SerialFrac float64
	// StepOverheadOps is fully-serial per-superstep framework overhead.
	StepOverheadOps float64
	// AccumBytes is the wire size of one gather partial sent to a master.
	AccumBytes float64
	// ValueBytes is the wire size of one mirror value update.
	ValueBytes float64
}

// StepCounters collects one machine's instrumented events during one
// superstep or async phase.
type StepCounters struct {
	// Gathers counts edge gathers (or probe units for Triangle Count).
	Gathers float64
	// Applies counts vertex applies.
	Applies float64
	// Vertices counts the vertices this machine bookkeeps in the step.
	Vertices float64
	// MaxUnit is the largest indivisible chunk of gather work in the step —
	// the gathers funnelling into one hub vertex, the merge of one edge's
	// neighbor lists, one vertex's neighborhood scan. Such a chunk runs on
	// one core, so degree skew caps multicore scaling; the effect grows with
	// thread count, which is why skewed natural graphs and hash-random
	// proxies scale machines slightly differently (the paper's Fig 8a
	// Triangle Count mismatch at 8xlarge).
	MaxUnit float64
	// PartialsOut counts gather partials sent to remote masters.
	PartialsOut float64
	// UpdatesOut counts mirror value updates sent from local masters.
	UpdatesOut float64
}

// skewSerialWeight converts the dominant-unit share of a step's gathers into
// additional Amdahl serial fraction.
const skewSerialWeight = 0.5

// work converts counters into machine-model work units.
func (sc StepCounters) work(c CostCoeffs) cluster.Work {
	serial := c.SerialFrac
	if sc.Gathers > 0 && sc.MaxUnit > 0 {
		serial += skewSerialWeight * sc.MaxUnit / sc.Gathers
	}
	w := cluster.Work{
		CPUOps:     sc.Gathers*c.OpsPerGather + sc.Applies*c.OpsPerApply + sc.Vertices*c.OpsPerVertex,
		MemBytes:   sc.Gathers*c.BytesPerGather + sc.Applies*c.BytesPerApply + sc.Vertices*c.BytesPerVertex,
		SerialFrac: serial,
	}
	w.Add(cluster.Work{CPUOps: c.StepOverheadOps, SerialFrac: 1})
	return w
}

// commBytes returns the wire bytes this machine sends in the step.
func (sc StepCounters) commBytes(c CostCoeffs) float64 {
	return sc.PartialsOut*c.AccumBytes + sc.UpdatesOut*c.ValueBytes
}

// Result reports one application execution on a cluster.
type Result struct {
	// App and Graph label the run.
	App, Graph string
	// SimSeconds is the simulated wall-clock makespan.
	SimSeconds float64
	// BusySeconds[p] is machine p's compute-busy time.
	BusySeconds []float64
	// CommBytes[p] is the bytes machine p sent.
	CommBytes []float64
	// Supersteps counts synchronous barriers (0 for pure async runs).
	Supersteps int
	// Gathers is the total number of edge gathers charged across the run, the
	// work measure behind throughput metrics like edges/second.
	Gathers float64
	// EnergyJoules is the total cluster energy over the makespan.
	EnergyJoules float64
	// Trace records per-phase per-machine timings for straggler analysis
	// (see TraceGantt and StragglerShare).
	Trace []StepTiming
	// Checkpoints counts superstep checkpoints written during the run and
	// Recoveries the crash recoveries performed; both zero on fault-free
	// runs. Their time and energy costs are folded into SimSeconds,
	// EnergyJoules and the "checkpoint"/"recover" trace phases.
	Checkpoints, Recoveries int
	// Output carries the application result (ranks, labels, counts...).
	Output any
}

// Accountant turns per-machine step counters into simulated time and energy.
// Synchronous steps impose a barrier (makespan advances by the slowest
// machine); asynchronous phases accumulate per-machine busy time and fold
// into the makespan as max at the next barrier or at Finish, modelling
// engines that let machines proceed independently (the paper's Coloring runs
// asynchronously).
type Accountant struct {
	cl     *cluster.Cluster
	coeffs CostCoeffs

	// eff, when non-nil, is the cluster steps are charged against instead of
	// cl — the fault layer's perturbation hook (straggler throttling, network
	// degradation). Energy at Finish always uses cl: the hardware is the
	// same, it is just running degraded.
	eff *cluster.Cluster
	// retiredAt[p] is the simulated time machine p crashed, -1 while alive.
	// Retired machines charge no further time, bytes or energy.
	retiredAt []float64

	simTime    float64
	busy       []float64
	comm       []float64
	steps      int
	gathers    float64
	asyncBusy  []float64 // pending async time per machine, not yet folded
	asyncDirty bool
	trace      []StepTiming

	// tc, when non-nil, receives structured execution events; curStep and
	// curKind carry the engine's step context (set by StepBegin) into the
	// charging methods. The engine's step number is authoritative — after a
	// crash rollback it rewinds while a.steps keeps counting replayed work.
	tc      trace.Collector
	curStep int
	curKind string
}

// NewAccountant creates an accountant for a run over cl.
func NewAccountant(cl *cluster.Cluster, coeffs CostCoeffs) *Accountant {
	retired := make([]float64, cl.Size())
	for i := range retired {
		retired[i] = -1
	}
	return &Accountant{
		cl:        cl,
		coeffs:    coeffs,
		retiredAt: retired,
		busy:      make([]float64, cl.Size()),
		comm:      make([]float64, cl.Size()),
		asyncBusy: make([]float64, cl.Size()),
	}
}

// SetCollector installs a structured-event collector (nil disables tracing;
// the engines pass Options.Trace through unconditionally). With a nil
// collector every emission site is a single nil check, so accounting is
// bit-identical and allocation-free relative to an untraced run.
func (a *Accountant) SetCollector(c trace.Collector) {
	a.tc = c
}

// emit forwards an event to the collector, if any.
func (a *Accountant) emit(e trace.Event) {
	if a.tc != nil {
		a.tc.Event(e)
	}
}

// StepBegin declares the step the next charges belong to: the engine's step
// number (not a.steps, which diverges during crash replay), the frontier size
// driving it, and the step kind ("sync" or "async").
func (a *Accountant) StepBegin(step, frontier int, kind string) {
	a.curStep = step
	a.curKind = kind
	a.emit(trace.Event{Kind: trace.KindStepBegin, Step: step, Machine: -1, Label: kind, Frontier: frontier})
}

// phaseSeconds attributes one machine's superstep compute time to the
// gather, apply and bookkeeping phases by pricing each phase's work in
// isolation. The phases share the machine's Amdahl serial behaviour, so the
// parts do not sum exactly to the step's charged compute time — they are an
// attribution for profiling, while Event.Seconds stays the exact charge.
func phaseSeconds(sc StepCounters, c CostCoeffs, m cluster.Machine) (gather, apply, book float64) {
	serial := c.SerialFrac
	if sc.Gathers > 0 && sc.MaxUnit > 0 {
		serial += skewSerialWeight * sc.MaxUnit / sc.Gathers
	}
	if sc.Gathers > 0 {
		gather = m.ComputeTime(cluster.Work{
			CPUOps:     sc.Gathers * c.OpsPerGather,
			MemBytes:   sc.Gathers * c.BytesPerGather,
			SerialFrac: serial,
		})
	}
	if sc.Applies > 0 {
		apply = m.ComputeTime(cluster.Work{
			CPUOps:     sc.Applies * c.OpsPerApply,
			MemBytes:   sc.Applies * c.BytesPerApply,
			SerialFrac: c.SerialFrac,
		})
	}
	w := cluster.Work{
		CPUOps:     sc.Vertices * c.OpsPerVertex,
		MemBytes:   sc.Vertices * c.BytesPerVertex,
		SerialFrac: c.SerialFrac,
	}
	w.Add(cluster.Work{CPUOps: c.StepOverheadOps, SerialFrac: 1})
	book = m.ComputeTime(w)
	return gather, apply, book
}

// emitMachineStep reports one machine's charged step time plus its phase
// attribution and raw counters.
func (a *Accountant) emitMachineStep(p int, sc StepCounters, m cluster.Machine, net cluster.Network, seconds float64) {
	gather, apply, book := phaseSeconds(sc, a.coeffs, m)
	a.tc.Event(trace.Event{
		Kind:          trace.KindMachineStep,
		Step:          a.curStep,
		Machine:       p,
		Label:         a.curKind,
		Seconds:       seconds,
		GatherSeconds: gather,
		ApplySeconds:  apply,
		BookSeconds:   book,
		CommSeconds:   net.TransferTime(sc.commBytes(a.coeffs)),
		Gathers:       sc.Gathers,
		Applies:       sc.Applies,
		PartialsOut:   sc.PartialsOut,
		UpdatesOut:    sc.UpdatesOut,
	})
}

// setEffective installs the cluster the next phases are charged against
// (nil restores the real cluster). The fault injector calls this before each
// superstep so throttled machines and degraded links cost what they should.
func (a *Accountant) setEffective(cl *cluster.Cluster) {
	if cl == a.cl {
		cl = nil
	}
	a.eff = cl
}

// effective returns the cluster used for time charging.
func (a *Accountant) effective() *cluster.Cluster {
	if a.eff != nil {
		return a.eff
	}
	return a.cl
}

// Retire marks machine p as permanently failed at the current simulated
// time: it charges nothing from now on and its idle power stops accruing at
// the moment of death.
func (a *Accountant) Retire(p int) {
	if p >= 0 && p < len(a.retiredAt) && a.retiredAt[p] < 0 {
		a.retiredAt[p] = a.simTime
	}
}

// Retired reports whether machine p has been retired by a fault.
func (a *Accountant) Retired(p int) bool {
	return p >= 0 && p < len(a.retiredAt) && a.retiredAt[p] >= 0
}

// Superstep charges one synchronous step: every machine computes and
// communicates, then all meet at the barrier. Communication overlaps
// computation (PowerGraph pipelines sends during the gather/scatter sweeps),
// so a machine's step time is the larger of the two, not their sum.
func (a *Accountant) Superstep(counters []StepCounters) {
	a.foldAsync()
	a.steps++
	eff := a.effective()
	worst := 0.0
	perMachine := make([]float64, len(counters))
	for p, sc := range counters {
		if a.retiredAt[p] >= 0 {
			continue // dead machines do no work, not even step overhead
		}
		m := eff.Machines[p]
		a.gathers += sc.Gathers
		tCompute := m.ComputeTime(sc.work(a.coeffs))
		bytes := sc.commBytes(a.coeffs)
		tComm := eff.Net.TransferTime(bytes)
		a.busy[p] += tCompute
		a.comm[p] += bytes
		t := math.Max(tCompute, tComm)
		perMachine[p] = t
		if t > worst {
			worst = t
		}
	}
	a.simTime += worst
	a.trace = append(a.trace, StepTiming{Kind: "sync", PerMachine: perMachine, Barrier: worst})
	if a.tc != nil {
		for p, sc := range counters {
			if a.retiredAt[p] >= 0 {
				continue
			}
			a.emitMachineStep(p, sc, eff.Machines[p], eff.Net, perMachine[p])
		}
		a.tc.Event(trace.Event{Kind: trace.KindStepEnd, Step: a.curStep, Machine: -1, Label: a.curKind, Seconds: worst})
	}
}

// Async charges one asynchronous phase: machines work independently with no
// barrier; their busy times accumulate until the next fold.
func (a *Accountant) Async(counters []StepCounters) {
	eff := a.effective()
	perMachine := make([]float64, len(counters))
	for p, sc := range counters {
		if a.retiredAt[p] >= 0 {
			continue
		}
		m := eff.Machines[p]
		a.gathers += sc.Gathers
		t := math.Max(m.ComputeTime(sc.work(a.coeffs)), eff.Net.TransferTime(sc.commBytes(a.coeffs)))
		a.asyncBusy[p] += t
		a.busy[p] += m.ComputeTime(sc.work(a.coeffs))
		a.comm[p] += sc.commBytes(a.coeffs)
		a.asyncDirty = true
		perMachine[p] = t
	}
	a.trace = append(a.trace, StepTiming{Kind: "async", PerMachine: perMachine})
	if a.tc != nil {
		for p, sc := range counters {
			if a.retiredAt[p] >= 0 {
				continue
			}
			a.emitMachineStep(p, sc, eff.Machines[p], eff.Net, perMachine[p])
		}
		// Async rounds have no barrier; the zero-second StepEnd just closes
		// the round for exporters.
		a.tc.Event(trace.Event{Kind: trace.KindStepEnd, Step: a.curStep, Machine: -1, Label: a.curKind})
	}
}

// LastStep returns the most recently recorded phase timing (zero value when
// nothing has been charged yet).
func (a *Accountant) LastStep() StepTiming {
	if len(a.trace) == 0 {
		return StepTiming{}
	}
	return a.trace[len(a.trace)-1]
}

// Stall charges a full-cluster pause of the given duration (e.g. a dynamic
// rebalancing migration): the makespan advances with no machine busy.
func (a *Accountant) Stall(seconds float64, kind string) {
	if seconds <= 0 {
		return
	}
	a.foldAsync()
	per := make([]float64, len(a.busy))
	for i := range per {
		if a.retiredAt[i] < 0 {
			per[i] = seconds
		}
	}
	a.simTime += seconds
	a.trace = append(a.trace, StepTiming{Kind: kind, PerMachine: per, Barrier: seconds})
	a.emit(trace.Event{Kind: trace.KindStall, Step: a.curStep, Machine: -1, Label: kind, Seconds: seconds})
}

func (a *Accountant) foldAsync() {
	if !a.asyncDirty {
		return
	}
	worst := 0.0
	for p, t := range a.asyncBusy {
		if t > worst {
			worst = t
		}
		a.asyncBusy[p] = 0
	}
	a.simTime += worst
	a.asyncDirty = false
}

// Finish folds pending async time and produces the Result. Energy integrates
// each machine's busy power over its busy time and idle power over the
// remainder of the makespan (the straggler-wait energy the paper's load
// balancing recovers).
func (a *Accountant) Finish(app, graphName string, output any) *Result {
	a.foldAsync()
	res := &Result{
		App:         app,
		Graph:       graphName,
		SimSeconds:  a.simTime,
		BusySeconds: a.busy,
		CommBytes:   a.comm,
		Supersteps:  a.steps,
		Gathers:     a.gathers,
		Trace:       a.trace,
		Output:      output,
	}
	for p, m := range a.cl.Machines {
		on := a.simTime
		if a.retiredAt[p] >= 0 {
			// A crashed machine is powered off from the moment of death.
			on = a.retiredAt[p]
		}
		res.EnergyJoules += m.Energy(a.busy[p], on)
	}
	return res
}

// AccountSnapshot is the accounting state a checkpoint persists: everything
// the Result accumulates, frozen at the barrier the checkpoint was written.
type AccountSnapshot struct {
	SimSeconds  float64
	BusySeconds []float64
	CommBytes   []float64
	Supersteps  int
	Gathers     float64
}

// Snapshot captures the accumulated counters (deep copies, safe to retain).
func (a *Accountant) Snapshot() AccountSnapshot {
	return AccountSnapshot{
		SimSeconds:  a.simTime,
		BusySeconds: append([]float64(nil), a.busy...),
		CommBytes:   append([]float64(nil), a.comm...),
		Supersteps:  a.steps,
		Gathers:     a.gathers,
	}
}

// Validate checks that a counters slice matches the cluster size.
func (a *Accountant) Validate(counters []StepCounters) error {
	if len(counters) != a.cl.Size() {
		return fmt.Errorf("engine: %d counter slots for %d machines", len(counters), a.cl.Size())
	}
	return nil
}
