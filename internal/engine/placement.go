// Package engine is the distributed graph-processing substrate: a
// PowerGraph-style gather–apply–scatter engine that executes vertex programs
// for real on a vertex-cut partitioned graph while charging simulated time to
// the heterogeneous machine models of package cluster.
//
// The separation mirrors the paper's Fig 7b flow: a partitioner assigns every
// edge to a machine (package partition), the engine "finalizes" the graph by
// constructing master/mirror replicas and the connections between machines,
// then executes the application superstep by superstep. Computation results
// are exact (they do not depend on the partition); execution time, energy and
// communication volume do, which is precisely the effect the paper measures.
package engine

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// MaxMachines bounds cluster size; replica sets are stored as 64-bit masks.
const MaxMachines = 64

// Placement is a finalized vertex-cut: every edge owned by one machine, every
// vertex replicated onto the machines its edges touch, one replica per vertex
// designated master (PowerGraph's finalization step).
type Placement struct {
	G *graph.Graph
	// M is the number of machines.
	M int
	// EdgeOwner[i] is the machine owning G.Edges[i].
	EdgeOwner []int32
	// LocalEdges[p] lists the indices of edges owned by machine p.
	LocalEdges [][]int32
	// ReplicaMask[v] has bit p set when vertex v has a replica on machine p.
	ReplicaMask []uint64
	// Master[v] is the machine holding vertex v's master replica.
	Master []int32
	// MasterVerts[p] lists the vertices mastered on machine p.
	MasterVerts [][]graph.VertexID

	// Compiled machine-local gather layouts (see machineBlocks). The
	// in-direction blocks are built at NewPlacement time; the both-direction
	// blocks double the record count and are compiled on first use.
	inBlocks   []machineBlocks
	bothBlocks []machineBlocks
	bothOnce   sync.Once
}

// machineBlocks is one machine's compiled gather layout: its local edges
// expanded into gather records (from, into) and grouped twice.
//
// byDst groups records by gather destination, so the engine's dense sweep is
// a single sequential pass over contiguous [dst | src...] runs with no
// indirection through g.Edges, and the per-destination bookkeeping the
// accountant needs (contributions per destination, one partial per remote
// master) falls out of the group boundaries for free. Records within a group
// keep local-edge order, so per-destination Sum order — and therefore
// floating-point results — is bit-identical to a walk of LocalEdges.
//
// bySrc groups the same records by gather source, giving the sparse-frontier
// sweep O(log K) lookup of an active vertex's local records so supersteps
// with small frontiers skip inactive edges entirely.
type machineBlocks struct {
	byDst graph.Grouped
	bySrc graph.Grouped
	// remote[i] reports that byDst.Keys[i]'s master is on another machine,
	// precomputing the PartialsOut test of the gather hot loop.
	remote []bool
}

// blockCompiler carries one worker's reusable compile workspace: the |V|
// counting-sort scratch and the record staging slices, allocated once per
// worker instead of once per machine.
type blockCompiler struct {
	pl                                 *Placement
	scratch                            []int32
	dstKeys, srcKeys, dstVals, srcVals []graph.VertexID
}

// compile expands machine p's local edges into gather records for the given
// direction and groups them. For GatherIn each edge (u,v) yields one record
// v←u; for GatherBoth it yields v←u then u←v, matching the reference engine's
// per-edge gather order so stable grouping preserves per-destination
// accumulation order exactly.
func (c *blockCompiler) compile(p int, both bool) machineBlocks {
	pl := c.pl
	dstKeys, dstVals := c.dstKeys[:0], c.dstVals[:0]
	srcKeys, srcVals := c.srcKeys[:0], c.srcVals[:0]
	for _, ei := range pl.LocalEdges[p] {
		e := pl.G.Edges[ei]
		dstKeys = append(dstKeys, e.Dst)
		dstVals = append(dstVals, e.Src)
		srcKeys = append(srcKeys, e.Src)
		srcVals = append(srcVals, e.Dst)
		if both {
			dstKeys = append(dstKeys, e.Src)
			dstVals = append(dstVals, e.Dst)
			srcKeys = append(srcKeys, e.Dst)
			srcVals = append(srcVals, e.Src)
		}
	}
	c.dstKeys, c.dstVals = dstKeys, dstVals
	c.srcKeys, c.srcVals = srcKeys, srcVals
	var b machineBlocks
	b.byDst = graph.GroupPairs(dstKeys, dstVals, c.scratch)
	b.bySrc = graph.GroupPairs(srcKeys, srcVals, c.scratch)
	b.remote = make([]bool, len(b.byDst.Keys))
	for i, d := range b.byDst.Keys {
		b.remote[i] = pl.Master[d] != int32(p)
	}
	return b
}

// compileWorkers resolves the worker count for compiling m machine blocks:
// one worker per block, bounded by the host parallelism knob. Each worker
// allocates a |V| scratch, so the bound also caps compile memory.
func compileWorkers(m int) int {
	w := ParallelShards
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// compileBlocks builds every machine's gather layout. Blocks are mutually
// independent — each reads only LocalEdges[p], the shared graph and the
// master table — so they compile through the shared work-stealing loop, one
// machine block per task, with bit-identical output at any worker count.
// Compile workspaces are per worker (each holds a |V| counting-sort scratch),
// created lazily so only workers that actually win a task pay for one.
func (pl *Placement) compileBlocks(both bool) []machineBlocks {
	blocks := make([]machineBlocks, pl.M)
	workers := compileWorkers(pl.M)
	compilers := make([]*blockCompiler, workers)
	stealTasks(workers, pl.M, func(w, p int) {
		c := compilers[w]
		if c == nil {
			c = &blockCompiler{pl: pl, scratch: make([]int32, pl.G.NumVertices)}
			compilers[w] = c
		}
		blocks[p] = c.compile(p, both)
	})
	return blocks
}

// blocks returns the compiled gather layout for the requested direction.
func (pl *Placement) blocks(both bool) []machineBlocks {
	if !both {
		return pl.inBlocks
	}
	pl.bothOnce.Do(func() { pl.bothBlocks = pl.compileBlocks(true) })
	return pl.bothBlocks
}

// NewPlacement finalizes an edge assignment. owner must assign every edge of
// g to a machine in [0, m).
func NewPlacement(g *graph.Graph, owner []int32, m int) (*Placement, error) {
	if m < 1 || m > MaxMachines {
		return nil, fmt.Errorf("engine: machine count %d outside [1, %d]", m, MaxMachines)
	}
	if len(owner) != len(g.Edges) {
		return nil, fmt.Errorf("engine: owner length %d != edge count %d", len(owner), len(g.Edges))
	}
	pl := &Placement{
		G:           g,
		M:           m,
		EdgeOwner:   owner,
		LocalEdges:  make([][]int32, m),
		ReplicaMask: make([]uint64, g.NumVertices),
		Master:      make([]int32, g.NumVertices),
		MasterVerts: make([][]graph.VertexID, m),
	}
	counts := make([]int64, m)
	for i, p := range owner {
		if p < 0 || int(p) >= m {
			return nil, fmt.Errorf("engine: edge %d assigned to machine %d outside [0, %d)", i, p, m)
		}
		counts[p]++
		e := g.Edges[i]
		pl.ReplicaMask[e.Src] |= 1 << uint(p)
		pl.ReplicaMask[e.Dst] |= 1 << uint(p)
	}
	for p := range pl.LocalEdges {
		pl.LocalEdges[p] = make([]int32, 0, counts[p])
	}
	for i, p := range owner {
		pl.LocalEdges[p] = append(pl.LocalEdges[p], int32(i))
	}
	// Master selection: each vertex's master is the owner of one of its
	// incident edges, picked by a deterministic reservoir sample over the
	// incidences. A machine holding a fraction f of v's edges becomes master
	// with probability f, so master load follows the (possibly CCR-weighted)
	// edge distribution — the PowerLyra-style locality heuristic that keeps
	// vertex-phase work (applies, coloring sweeps) aligned with the edge
	// shares the partitioner produced. Vertices with no edges are hashed
	// across all machines.
	incidences := make([]int32, g.NumVertices)
	pickMaster := func(v graph.VertexID, p int32) {
		incidences[v]++
		if rng.Hash2(uint64(v), uint64(incidences[v]))%uint64(incidences[v]) == 0 {
			pl.Master[v] = p
		}
	}
	for v := range pl.Master {
		pl.Master[v] = -1
	}
	for i, p := range owner {
		e := g.Edges[i]
		pickMaster(e.Src, p)
		pickMaster(e.Dst, p)
	}
	for v := range pl.Master {
		if pl.Master[v] < 0 {
			pl.Master[v] = int32(rng.Hash64(uint64(v)) % uint64(m))
		}
	}
	for v, p := range pl.Master {
		pl.MasterVerts[p] = append(pl.MasterVerts[p], graph.VertexID(v))
	}
	pl.inBlocks = pl.compileBlocks(false)
	return pl, nil
}

// nthSetBit returns the position of the k-th (0-based) set bit of mask.
func nthSetBit(mask uint64, k int) int {
	for i := 0; i < k; i++ {
		mask &= mask - 1
	}
	return bits.TrailingZeros64(mask)
}

// Replicas returns the total number of vertex replicas (masters + mirrors).
func (pl *Placement) Replicas() int64 {
	var total int64
	for _, mask := range pl.ReplicaMask {
		total += int64(bits.OnesCount64(mask))
	}
	return total
}

// ReplicationFactor returns average replicas per vertex, the standard
// vertex-cut quality metric ("mirrors" in the paper's Section II-B).
// Vertices with no edges count one replica (their master).
func (pl *Placement) ReplicationFactor() float64 {
	if pl.G.NumVertices == 0 {
		return 0
	}
	var total int64
	for _, mask := range pl.ReplicaMask {
		c := bits.OnesCount64(mask)
		if c == 0 {
			c = 1
		}
		total += int64(c)
	}
	return float64(total) / float64(pl.G.NumVertices)
}

// EdgeCounts returns the number of edges owned by each machine.
func (pl *Placement) EdgeCounts() []int64 {
	counts := make([]int64, pl.M)
	for p, local := range pl.LocalEdges {
		counts[p] = int64(len(local))
	}
	return counts
}

// Imbalance returns max load divided by the weighted ideal load for the given
// target shares (which must sum to ~1). With uniform shares this is the
// classic load-imbalance factor; with CCR shares it measures how well the
// partition hit the heterogeneity target.
func (pl *Placement) Imbalance(shares []float64) float64 {
	counts := pl.EdgeCounts()
	total := float64(len(pl.G.Edges))
	if total == 0 {
		return 1
	}
	worst := 0.0
	for p, c := range counts {
		share := shares[p]
		if share <= 0 {
			share = 1e-12
		}
		ratio := float64(c) / (total * share)
		if ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// SingleMachine places every edge of g on one machine, the layout used by the
// profiling runs of Section III-B (each profiling set executes on one machine
// "without communication interference").
func SingleMachine(g *graph.Graph) *Placement {
	owner := make([]int32, len(g.Edges))
	pl, err := NewPlacement(g, owner, 1)
	if err != nil {
		// Unreachable: a single-machine assignment is always valid.
		panic(err)
	}
	return pl
}
