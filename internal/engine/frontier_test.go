package engine

import (
	"testing"

	"proxygraph/internal/graph"
)

func TestFrontierSparseLifecycle(t *testing.T) {
	f := newFrontier(100)
	if f.count != 0 || f.overflow {
		t.Fatal("new frontier should be empty and sparse")
	}
	f.add(7)
	f.add(3)
	f.add(42)
	if !f.sparse() || f.count != 3 {
		t.Fatalf("count=%d sparse=%v, want 3/sparse", f.count, f.sparse())
	}
	if !f.has(7) || !f.has(3) || !f.has(42) || f.has(8) {
		t.Fatal("membership wrong")
	}
	got := f.sorted()
	want := []graph.VertexID{3, 7, 42}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", got, want)
		}
	}
	f.reset()
	if f.count != 0 || f.has(7) || f.has(3) || f.has(42) {
		t.Fatal("reset should deactivate everything")
	}
}

func TestFrontierDegradesToBitmap(t *testing.T) {
	const n = 80
	f := newFrontier(n)
	// Threshold is n/sparseFrontierDenom + 1 = 11; adding more must overflow.
	for v := 0; v < n/2; v++ {
		f.add(graph.VertexID(v))
	}
	if f.sparse() {
		t.Fatalf("frontier with %d/%d vertices should have degraded", n/2, n)
	}
	if f.count != n/2 {
		t.Fatalf("count = %d, want %d", f.count, n/2)
	}
	for v := 0; v < n/2; v++ {
		if !f.has(graph.VertexID(v)) {
			t.Fatalf("vertex %d lost on overflow", v)
		}
	}
	f.reset()
	for v := 0; v < n; v++ {
		if f.has(graph.VertexID(v)) {
			t.Fatalf("vertex %d survived reset", v)
		}
	}
	if !f.sparse() {
		t.Fatal("reset should restore sparse mode")
	}
}

func TestFrontierFill(t *testing.T) {
	f := newFrontier(10)
	f.fill()
	if f.count != 10 || f.sparse() {
		t.Fatalf("fill: count=%d sparse=%v", f.count, f.sparse())
	}
	for v := 0; v < 10; v++ {
		if !f.has(graph.VertexID(v)) {
			t.Fatalf("vertex %d inactive after fill", v)
		}
	}
}
