package engine

import (
	"fmt"
	"math/bits"

	"proxygraph/internal/cluster"
	"proxygraph/internal/graph"
	"proxygraph/internal/trace"
)

// RunSyncReference executes prog with the original edge-list engine: every
// superstep walks pl.LocalEdges[p] as an index list into g.Edges and filters
// sources against a dense active bitmap. It is the executable specification
// of the engine's accounting semantics — RunSync (machine-local CSR blocks,
// hybrid frontier) and RunSyncParallel (destination sharding) must charge
// per-machine times, energy and communication bit-identically to this
// function; the equivalence suite in internal/apps enforces exactly that.
// Use RunSync for real work: it computes the same answer faster.
func RunSyncReference[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster) (*Result, []V, error) {
	return RunSyncReferenceOpts[V, A](prog, pl, cl, Options{})
}

// RunSyncReferenceOpts is RunSyncReference with the full option set
// (rebalancing and fault injection), so the executable specification covers
// the optional behaviours too and the equivalence suite can pin the fast
// engines against it under rebalancing and fault schedules.
func RunSyncReferenceOpts[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster, opts Options) (*Result, []V, error) {
	rb := opts.Rebalancer
	if cl.Size() != pl.M {
		return nil, nil, fmt.Errorf("engine: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	rt := &Runtime{NumVertices: n, NumEdges: len(g.Edges)}

	outDeg := g.OutDegrees()
	inDeg := g.InDegrees()
	vals := make([]V, n)
	for v := range vals {
		vals[v] = prog.Init(graph.VertexID(v), outDeg[v], inDeg[v])
	}

	acc := make([]A, n)
	has := make([]bool, n)
	active := make([]bool, n)
	nextActive := make([]bool, n)
	// touched[v] stamps the last (superstep, machine) pair that contributed a
	// partial for v, so each (machine, vertex) partial is counted once;
	// contribs[v] counts that pair's gathers into v for skew accounting.
	touched := make([]int64, n)
	for v := range touched {
		touched[v] = -1
	}
	contribs := make([]int32, n)

	applyAll := prog.ApplyAll()
	both := prog.Direction() == GatherBoth
	account := NewAccountant(cl, prog.Coeffs())
	account.SetCollector(opts.Trace)

	// frontCount tracks the active-set size for checkpointing. The frontier
	// starts full unless a warm-start seed narrows it (see
	// Options.InitialActive).
	frontCount := 0
	if opts.InitialActive != nil && !applyAll {
		if err := validateInitialActive(opts.InitialActive, n); err != nil {
			return nil, nil, err
		}
		for _, v := range opts.InitialActive {
			if !active[v] {
				active[v] = true
				frontCount++
			}
		}
	} else {
		for v := range active {
			active[v] = true
		}
		frontCount = n
	}
	ft, err := newFTRun[V](opts.Fault, cl)
	if err != nil {
		return nil, nil, err
	}
	ft.baseline(vals, active, frontCount, account)

	// Per-superstep scratch, allocated once and cleared in place.
	counters := make([]StepCounters, pl.M)

	maxSteps := prog.MaxSupersteps()
	for step := 0; step < maxSteps; step++ {
		rt.Step = step
		account.StepBegin(step, frontCount, "sync")
		ft.beforeStep(step, account)
		clear(counters)

		// Gather phase: every machine walks its local edges and accumulates
		// contributions from active sources into target accumulators. The
		// first contribution a machine makes toward a remote master costs one
		// partial on the wire.
		for p := 0; p < pl.M; p++ {
			sc := &counters[p]
			sc.Vertices = float64(len(pl.MasterVerts[p]))
			// The stamp is unique per (step, machine) pair: p < pl.M makes
			// step*M+p injective over pairs, and the +1 keeps every stamp
			// above the -1 the touched array is initialised with.
			stampBase := int64(step)*int64(pl.M) + int64(p) + 1
			for _, ei := range pl.LocalEdges[p] {
				e := g.Edges[ei]
				if active[e.Src] {
					gatherInto(prog, vals, acc, has, e.Src, e.Dst)
					sc.Gathers++
					if touched[e.Dst] != stampBase {
						touched[e.Dst] = stampBase
						contribs[e.Dst] = 0
						if pl.Master[e.Dst] != int32(p) {
							sc.PartialsOut++
						}
					}
					contribs[e.Dst]++
					if u := float64(contribs[e.Dst]); u > sc.MaxUnit {
						sc.MaxUnit = u
					}
				}
				if both && active[e.Dst] {
					gatherInto(prog, vals, acc, has, e.Dst, e.Src)
					sc.Gathers++
					if touched[e.Src] != stampBase {
						touched[e.Src] = stampBase
						contribs[e.Src] = 0
						if pl.Master[e.Src] != int32(p) {
							sc.PartialsOut++
						}
					}
					contribs[e.Src]++
					if u := float64(contribs[e.Src]); u > sc.MaxUnit {
						sc.MaxUnit = u
					}
				}
			}
		}

		// Apply phase: masters apply and broadcast changed values to mirrors.
		// nextCount tracks the next frontier size as it is built, replacing a
		// post-swap O(|V|) emptiness scan.
		anyChanged := false
		nextCount := 0
		for p := 0; p < pl.M; p++ {
			sc := &counters[p]
			for _, v := range pl.MasterVerts[p] {
				if !applyAll && !has[v] {
					continue
				}
				newVal, changed := prog.Apply(v, vals[v], acc[v], has[v], rt)
				sc.Applies++
				vals[v] = newVal
				if changed {
					anyChanged = true
					mirrors := bits.OnesCount64(pl.ReplicaMask[v])
					if pl.ReplicaMask[v]&(1<<uint(p)) != 0 {
						mirrors--
					}
					sc.UpdatesOut += float64(mirrors)
					if !applyAll {
						nextActive[v] = true
						nextCount++
					}
				}
			}
		}

		account.Superstep(counters)

		// Dynamic rebalancing hook, identical to RunSyncRebalanced's.
		if rb != nil {
			last := account.LastStep()
			if owner, moved, ok := rb.Decide(step, last.PerMachine, pl); ok {
				newPl, err := NewPlacement(g, owner, pl.M)
				if err != nil {
					return nil, nil, fmt.Errorf("engine: rebalance at step %d: %w", step, err)
				}
				pl = newPl
				account.emit(trace.Event{Kind: trace.KindRebalance, Step: step, Machine: -1, Moved: moved})
				account.Stall(cl.Net.TransferTime(float64(moved)*migratedEdgeBytes), "migrate")
			}
		}

		// Reset accumulators for the next superstep.
		clear(has)
		clear(acc)

		terminated := !anyChanged
		if !applyAll && !terminated {
			active, nextActive = nextActive, active
			clear(nextActive)
			frontCount = nextCount
			if frontCount == 0 {
				terminated = true
			}
		}

		// Fault barrier: checkpoint if due, then fire a scheduled crash and
		// roll back onto the repartitioned survivors (see RunSyncOpts).
		restore, newPl, err := ft.barrier(step, terminated, account, vals, active, frontCount, pl)
		if err != nil {
			return nil, nil, err
		}
		if newPl != nil {
			pl = newPl
		}
		if restore != nil {
			copy(vals, restore.Vals)
			copy(active, restore.Active)
			frontCount = restore.ActiveCount
			clear(nextActive)
			// Zero stamps never collide with the positive replay stamps.
			clear(touched)
			step = restore.Step - 1 // loop increment lands on restore.Step
			continue
		}
		if terminated {
			break
		}
	}

	res := account.Finish(prog.Name(), g.Name, nil)
	ft.finish(res)
	return res, vals, nil
}
