package engine

import (
	"sync"
	"sync/atomic"
)

// stealTasks runs fn(w, task) for every task in [0, tasks), distributing
// tasks over workers goroutines through a shared atomic claim counter — the
// work-stealing loop the parallel block compile introduced, factored out so
// every engine phase that is a bag of independent tasks (block compiles,
// value-array init, dense apply chunks) shares one implementation. Worker w
// processes whichever tasks it wins, so fn must be safe for any (worker,
// task) pairing; phases that need deterministic results therefore key their
// writes on the task (disjoint vertex ranges) and keep per-worker state
// restricted to values whose merge is order-insensitive (exact integer sums,
// maxima).
//
// With one worker the loop runs inline on the caller's goroutine: no spawn,
// no atomics contention, identical task order to a plain loop.
func stealTasks(workers, tasks int, fn func(w, task int)) {
	if tasks <= 0 {
		return
	}
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for task := 0; task < tasks; task++ {
			fn(0, task)
		}
		return
	}
	var next int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				task := int(atomic.AddInt32(&next, 1)) - 1
				if task >= tasks {
					return
				}
				fn(w, task)
			}
		}(w)
	}
	wg.Wait()
}
