package engine

import (
	"fmt"
	"math/bits"

	"proxygraph/internal/cluster"
	"proxygraph/internal/graph"
	"proxygraph/internal/trace"
)

// Direction selects which edge endpoints a program gathers from.
type Direction int

const (
	// GatherIn gathers along in-edges only (PageRank).
	GatherIn Direction = iota
	// GatherBoth gathers along both directions (label propagation).
	GatherBoth
)

// Runtime exposes per-run globals to vertex programs.
type Runtime struct {
	// NumVertices and NumEdges describe the input graph.
	NumVertices, NumEdges int
	// Step is the current superstep, starting at 0.
	Step int
}

// Program is a PowerGraph-style gather–apply–scatter vertex program.
// V is the per-vertex state, A the gather accumulator.
type Program[V, A any] interface {
	// Name labels the application.
	Name() string
	// Coeffs supplies the simulation cost constants.
	Coeffs() CostCoeffs
	// Direction selects the gather neighborhood.
	Direction() Direction
	// ApplyAll reports whether every vertex applies each superstep
	// (fixed-point style, PageRank) rather than only signalled ones.
	ApplyAll() bool
	// MaxSupersteps bounds the iteration count.
	MaxSupersteps() int
	// Init produces vertex v's initial state.
	Init(v graph.VertexID, outDeg, inDeg int32) V
	// Gather returns the contribution of a neighbor with state src along one
	// edge.
	Gather(src V) A
	// Sum combines two gather contributions (must be commutative and
	// associative, PowerGraph's requirement for distributing the gather).
	Sum(a, b A) A
	// Apply combines vertex v's old state with the gathered accumulator and
	// reports whether the state changed (changed vertices signal their
	// neighbors in scatter).
	Apply(v graph.VertexID, old V, acc A, hasAcc bool, rt *Runtime) (V, bool)
}

// Rebalancer lets a dynamic load-balancing policy (e.g. the Mizan-style
// migrator in internal/dynamic) reassign edges between supersteps, the
// related-work alternative to the paper's static CCR-guided ingress. After
// each barrier the engine reports the step's per-machine times; the policy
// may return a replacement owner vector plus the number of edges it moved,
// and the engine charges the migration traffic as a stall before continuing.
type Rebalancer interface {
	// Decide inspects the last superstep and optionally returns a new owner
	// assignment. moved is the number of edges that changed machines.
	Decide(step int, perMachineSeconds []float64, pl *Placement) (owner []int32, moved int64, ok bool)
}

// migratedEdgeBytes is the wire cost of moving one edge (endpoints plus the
// associated vertex state) during dynamic rebalancing.
const migratedEdgeBytes = 48

// RunSync executes prog over the placement on cl and returns the execution
// report plus the final vertex states. The computation is exact; only the
// charged time depends on the placement.
//
// This is the engine's fast path. Each superstep sweeps the machine-local
// CSR-style edge blocks compiled at NewPlacement time (records grouped by
// gather destination, so the sweep is sequential with no indirection through
// g.Edges and the per-destination skew/partial bookkeeping falls out of the
// group boundaries), and frontier-driven programs switch to a sparse
// worklist sweep whenever the active set drops below the hybrid frontier's
// density threshold, skipping inactive edges entirely. Simulated times,
// energy and communication are bit-identical to RunSyncReference; vertex
// values are bit-identical too on dense supersteps, and agree up to
// floating-point re-association on sparse ones (exactly for min/max/integer
// Sums).
func RunSync[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster) (*Result, []V, error) {
	return RunSyncOpts[V, A](prog, pl, cl, Options{})
}

// RunSyncRebalanced is RunSync with an optional dynamic rebalancing policy
// invoked after every superstep (nil behaves exactly like RunSync).
func RunSyncRebalanced[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster, rb Rebalancer) (*Result, []V, error) {
	return RunSyncOpts[V, A](prog, pl, cl, Options{Rebalancer: rb})
}

// RunSyncOpts is RunSync with the full option set: an optional dynamic
// rebalancing policy invoked after every superstep, and an optional fault
// configuration enabling deterministic fault injection, superstep
// checkpointing and crash recovery (see FaultConfig).
func RunSyncOpts[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster, opts Options) (*Result, []V, error) {
	rb := opts.Rebalancer
	if cl.Size() != pl.M {
		return nil, nil, fmt.Errorf("engine: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	rt := &Runtime{NumVertices: n, NumEdges: len(g.Edges)}

	outDeg := g.OutDegrees()
	inDeg := g.InDegrees()
	vals := make([]V, n)
	for v := range vals {
		vals[v] = prog.Init(graph.VertexID(v), outDeg[v], inDeg[v])
	}

	acc := make([]A, n)
	has := make([]bool, n)

	applyAll := prog.ApplyAll()
	both := prog.Direction() == GatherBoth
	blocks := pl.blocks(both)
	account := NewAccountant(cl, prog.Coeffs())
	account.SetCollector(opts.Trace)

	// The frontier starts full — every vertex gathers in superstep 0, exactly
	// as the reference engine's all-true active bitmap prescribes — unless a
	// warm-start seed narrows it to the vertices a delta batch touched.
	front := newFrontier(n)
	if opts.InitialActive != nil && !applyAll {
		if err := validateInitialActive(opts.InitialActive, n); err != nil {
			return nil, nil, err
		}
		front.seed(opts.InitialActive)
	} else {
		front.fill()
	}
	next := newFrontier(n)

	ft, err := newFTRun[V](opts.Fault, cl)
	if err != nil {
		return nil, nil, err
	}
	ft.baseline(vals, front.bits, front.count, account)

	// Per-superstep scratch, allocated once and reused. touched/contribs
	// back the sparse sweep's per-(machine, destination) partial accounting;
	// dirty lists the destinations gathered into during a sparse step so the
	// accumulator reset costs O(gathered), not O(|V|).
	counters := make([]StepCounters, pl.M)
	var (
		touched  []int64
		contribs []int32
		dirty    []graph.VertexID
	)
	if !applyAll {
		touched = make([]int64, n)
		contribs = make([]int32, n)
	}

	maxSteps := prog.MaxSupersteps()
	for step := 0; step < maxSteps; step++ {
		rt.Step = step
		account.StepBegin(step, front.count, "sync")
		ft.beforeStep(step, account)
		clear(counters)
		for p := range counters {
			// Per-vertex scheduling bookkeeping is charged every superstep
			// regardless of activity (see CostCoeffs.OpsPerVertex).
			counters[p].Vertices = float64(len(pl.MasterVerts[p]))
		}

		// Direction choice, made per superstep: a sparse frontier drives a
		// worklist sweep over the source-grouped blocks; otherwise every
		// machine scans its destination-grouped block sequentially.
		sparse := !applyAll && front.sparse()
		if sparse {
			srcs := front.sorted()
			for p := 0; p < pl.M; p++ {
				sc := &counters[p]
				blk := &blocks[p].bySrc
				// The stamp is unique per (step, machine) pair: p < pl.M
				// makes step*M+p injective over pairs, and the +1 keeps every
				// stamp above touched's zero initialisation.
				stamp := int64(step)*int64(pl.M) + int64(p) + 1
				for _, s := range srcs {
					gi := blk.Find(s)
					if gi < 0 {
						continue
					}
					for _, d := range blk.Group(gi) {
						a := prog.Gather(vals[s])
						if has[d] {
							acc[d] = prog.Sum(acc[d], a)
						} else {
							acc[d] = a
							has[d] = true
							dirty = append(dirty, d)
						}
						sc.Gathers++
						if touched[d] != stamp {
							touched[d] = stamp
							contribs[d] = 0
							if pl.Master[d] != int32(p) {
								sc.PartialsOut++
							}
						}
						contribs[d]++
						if u := float64(contribs[d]); u > sc.MaxUnit {
							sc.MaxUnit = u
						}
					}
				}
			}
		} else {
			act := front.bits
			if applyAll {
				act = nil // every vertex is a gather source; skip the test
			}
			for p := 0; p < pl.M; p++ {
				sc := &counters[p]
				blk := &blocks[p]
				for gi, d := range blk.byDst.Keys {
					var c int32
					for _, s := range blk.byDst.Group(gi) {
						if act != nil && !act[s] {
							continue
						}
						gatherInto(prog, vals, acc, has, s, d)
						c++
					}
					// One destination group = one (machine, vertex) partial:
					// its size is the contribution count the reference engine
					// reconstructs with touched/contribs stamps.
					if c > 0 {
						sc.Gathers += float64(c)
						if blk.remote[gi] {
							sc.PartialsOut++
						}
						if u := float64(c); u > sc.MaxUnit {
							sc.MaxUnit = u
						}
					}
				}
			}
		}

		// Apply phase: masters apply and broadcast changed values to mirrors.
		anyChanged := false
		if sparse {
			// Only gathered destinations can apply (applyAll programs never
			// run sparse), so the sweep visits the dirty set instead of every
			// machine's full master list.
			for _, d := range dirty {
				p := pl.Master[d]
				sc := &counters[p]
				newVal, changed := prog.Apply(d, vals[d], acc[d], true, rt)
				sc.Applies++
				vals[d] = newVal
				if changed {
					anyChanged = true
					mirrors := bits.OnesCount64(pl.ReplicaMask[d])
					if pl.ReplicaMask[d]&(1<<uint(p)) != 0 {
						mirrors--
					}
					sc.UpdatesOut += float64(mirrors)
					next.add(d)
				}
			}
		} else {
			for p := 0; p < pl.M; p++ {
				sc := &counters[p]
				for _, v := range pl.MasterVerts[p] {
					if !applyAll && !has[v] {
						continue
					}
					newVal, changed := prog.Apply(v, vals[v], acc[v], has[v], rt)
					sc.Applies++
					vals[v] = newVal
					if changed {
						anyChanged = true
						mirrors := bits.OnesCount64(pl.ReplicaMask[v])
						if pl.ReplicaMask[v]&(1<<uint(p)) != 0 {
							mirrors--
						}
						sc.UpdatesOut += float64(mirrors)
						if !applyAll {
							next.add(v)
						}
					}
				}
			}
		}

		account.Superstep(counters)

		// Dynamic rebalancing hook: migrate edges between barriers, paying
		// for the moved state on the wire. The new placement arrives with
		// freshly compiled edge blocks.
		if rb != nil {
			last := account.LastStep()
			if owner, moved, ok := rb.Decide(step, last.PerMachine, pl); ok {
				newPl, err := NewPlacement(g, owner, pl.M)
				if err != nil {
					return nil, nil, fmt.Errorf("engine: rebalance at step %d: %w", step, err)
				}
				pl = newPl
				blocks = pl.blocks(both)
				account.emit(trace.Event{Kind: trace.KindRebalance, Step: step, Machine: -1, Moved: moved})
				account.Stall(cl.Net.TransferTime(float64(moved)*migratedEdgeBytes), "migrate")
			}
		}

		// Reset accumulators for the next superstep: O(gathered) after a
		// sparse step, a wholesale clear after a dense one.
		if sparse {
			var zero A
			for _, d := range dirty {
				acc[d] = zero
				has[d] = false
			}
			dirty = dirty[:0]
		} else {
			clear(has)
			clear(acc)
		}

		terminated := !anyChanged
		if !applyAll && !terminated {
			front, next = next, front
			next.reset()
			// The frontier count is maintained live by the apply phase, so
			// termination needs no O(|V|) emptiness scan.
			if front.count == 0 {
				terminated = true
			}
		}

		// Fault barrier: write a due checkpoint, then fire a scheduled crash.
		// On a crash the run rolls back to the returned checkpoint and resumes
		// on the repartitioned survivor placement; replayed supersteps are
		// charged again — lost work is the recovery overhead being measured.
		restore, newPl, err := ft.barrier(step, terminated, account, vals, front.bits, front.count, pl)
		if err != nil {
			return nil, nil, err
		}
		if newPl != nil {
			pl = newPl
			blocks = pl.blocks(both)
		}
		if restore != nil {
			copy(vals, restore.Vals)
			front.restore(restore.Active, restore.ActiveCount)
			next.reset()
			if touched != nil {
				// Stamps are always positive, so zeroing cannot collide with
				// the stamps replayed steps will generate.
				clear(touched)
			}
			step = restore.Step - 1 // loop increment lands on restore.Step
			continue
		}
		if terminated {
			break
		}
	}

	res := account.Finish(prog.Name(), g.Name, nil)
	ft.finish(res)
	return res, vals, nil
}

// gatherInto accumulates the contribution of src's state into dst.
func gatherInto[V, A any](prog Program[V, A], vals []V, acc []A, has []bool, src, dst graph.VertexID) {
	a := prog.Gather(vals[src])
	if has[dst] {
		acc[dst] = prog.Sum(acc[dst], a)
	} else {
		acc[dst] = a
		has[dst] = true
	}
}
