package engine

import (
	"fmt"
	"math/bits"

	"proxygraph/internal/cluster"
	"proxygraph/internal/graph"
)

// Direction selects which edge endpoints a program gathers from.
type Direction int

const (
	// GatherIn gathers along in-edges only (PageRank).
	GatherIn Direction = iota
	// GatherBoth gathers along both directions (label propagation).
	GatherBoth
)

// Runtime exposes per-run globals to vertex programs.
type Runtime struct {
	// NumVertices and NumEdges describe the input graph.
	NumVertices, NumEdges int
	// Step is the current superstep, starting at 0.
	Step int
}

// Program is a PowerGraph-style gather–apply–scatter vertex program.
// V is the per-vertex state, A the gather accumulator.
type Program[V, A any] interface {
	// Name labels the application.
	Name() string
	// Coeffs supplies the simulation cost constants.
	Coeffs() CostCoeffs
	// Direction selects the gather neighborhood.
	Direction() Direction
	// ApplyAll reports whether every vertex applies each superstep
	// (fixed-point style, PageRank) rather than only signalled ones.
	ApplyAll() bool
	// MaxSupersteps bounds the iteration count.
	MaxSupersteps() int
	// Init produces vertex v's initial state.
	Init(v graph.VertexID, outDeg, inDeg int32) V
	// Gather returns the contribution of a neighbor with state src along one
	// edge.
	Gather(src V) A
	// Sum combines two gather contributions (must be commutative and
	// associative, PowerGraph's requirement for distributing the gather).
	Sum(a, b A) A
	// Apply combines vertex v's old state with the gathered accumulator and
	// reports whether the state changed (changed vertices signal their
	// neighbors in scatter).
	Apply(v graph.VertexID, old V, acc A, hasAcc bool, rt *Runtime) (V, bool)
}

// Rebalancer lets a dynamic load-balancing policy (e.g. the Mizan-style
// migrator in internal/dynamic) reassign edges between supersteps, the
// related-work alternative to the paper's static CCR-guided ingress. After
// each barrier the engine reports the step's per-machine times; the policy
// may return a replacement owner vector plus the number of edges it moved,
// and the engine charges the migration traffic as a stall before continuing.
type Rebalancer interface {
	// Decide inspects the last superstep and optionally returns a new owner
	// assignment. moved is the number of edges that changed machines.
	Decide(step int, perMachineSeconds []float64, pl *Placement) (owner []int32, moved int64, ok bool)
}

// migratedEdgeBytes is the wire cost of moving one edge (endpoints plus the
// associated vertex state) during dynamic rebalancing.
const migratedEdgeBytes = 48

// RunSync executes prog over the placement on cl and returns the execution
// report plus the final vertex states. The computation is exact; only the
// charged time depends on the placement.
func RunSync[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster) (*Result, []V, error) {
	return RunSyncRebalanced[V, A](prog, pl, cl, nil)
}

// RunSyncRebalanced is RunSync with an optional dynamic rebalancing policy
// invoked after every superstep (nil behaves exactly like RunSync).
func RunSyncRebalanced[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster, rb Rebalancer) (*Result, []V, error) {
	if cl.Size() != pl.M {
		return nil, nil, fmt.Errorf("engine: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	rt := &Runtime{NumVertices: n, NumEdges: len(g.Edges)}

	outDeg := g.OutDegrees()
	inDeg := g.InDegrees()
	vals := make([]V, n)
	for v := range vals {
		vals[v] = prog.Init(graph.VertexID(v), outDeg[v], inDeg[v])
	}

	acc := make([]A, n)
	has := make([]bool, n)
	active := make([]bool, n)
	nextActive := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	// touched[v] stamps the last (superstep, machine) pair that contributed a
	// partial for v, so each (machine, vertex) partial is counted once;
	// contribs[v] counts that pair's gathers into v for skew accounting.
	touched := make([]int64, n)
	for v := range touched {
		touched[v] = -1
	}
	contribs := make([]int32, n)

	applyAll := prog.ApplyAll()
	both := prog.Direction() == GatherBoth
	account := NewAccountant(cl, prog.Coeffs())

	maxSteps := prog.MaxSupersteps()
	for step := 0; step < maxSteps; step++ {
		rt.Step = step
		counters := make([]StepCounters, pl.M)

		// Gather phase: every machine walks its local edges and accumulates
		// contributions from active sources into target accumulators. The
		// first contribution a machine makes toward a remote master costs one
		// partial on the wire.
		for p := 0; p < pl.M; p++ {
			sc := &counters[p]
			sc.Vertices = float64(len(pl.MasterVerts[p]))
			stampBase := (int64(step)*int64(pl.M) + int64(p) + 1) * 1
			for _, ei := range pl.LocalEdges[p] {
				e := g.Edges[ei]
				if active[e.Src] {
					gatherInto(prog, vals, acc, has, e.Src, e.Dst)
					sc.Gathers++
					if touched[e.Dst] != stampBase {
						touched[e.Dst] = stampBase
						contribs[e.Dst] = 0
						if pl.Master[e.Dst] != int32(p) {
							sc.PartialsOut++
						}
					}
					contribs[e.Dst]++
					if u := float64(contribs[e.Dst]); u > sc.MaxUnit {
						sc.MaxUnit = u
					}
				}
				if both && active[e.Dst] {
					gatherInto(prog, vals, acc, has, e.Dst, e.Src)
					sc.Gathers++
					if touched[e.Src] != stampBase {
						touched[e.Src] = stampBase
						contribs[e.Src] = 0
						if pl.Master[e.Src] != int32(p) {
							sc.PartialsOut++
						}
					}
					contribs[e.Src]++
					if u := float64(contribs[e.Src]); u > sc.MaxUnit {
						sc.MaxUnit = u
					}
				}
			}
		}

		// Apply phase: masters apply and broadcast changed values to mirrors.
		anyChanged := false
		for p := 0; p < pl.M; p++ {
			sc := &counters[p]
			for _, v := range pl.MasterVerts[p] {
				if !applyAll && !has[v] {
					continue
				}
				newVal, changed := prog.Apply(v, vals[v], acc[v], has[v], rt)
				sc.Applies++
				vals[v] = newVal
				if changed {
					anyChanged = true
					mirrors := bits.OnesCount64(pl.ReplicaMask[v])
					if pl.ReplicaMask[v]&(1<<uint(p)) != 0 {
						mirrors--
					}
					sc.UpdatesOut += float64(mirrors)
					if !applyAll {
						nextActive[v] = true
					}
				}
			}
		}

		account.Superstep(counters)

		// Dynamic rebalancing hook: migrate edges between barriers, paying
		// for the moved state on the wire.
		if rb != nil {
			last := account.LastStep()
			if owner, moved, ok := rb.Decide(step, last.PerMachine, pl); ok {
				newPl, err := NewPlacement(g, owner, pl.M)
				if err != nil {
					return nil, nil, fmt.Errorf("engine: rebalance at step %d: %w", step, err)
				}
				pl = newPl
				account.Stall(cl.Net.TransferTime(float64(moved)*migratedEdgeBytes), "migrate")
			}
		}

		// Reset accumulators for the next superstep.
		clear(has)
		clear(acc)

		if !anyChanged {
			break
		}
		if !applyAll {
			active, nextActive = nextActive, active
			clear(nextActive)
			anyActive := false
			for _, a := range active {
				if a {
					anyActive = true
					break
				}
			}
			if !anyActive {
				break
			}
		}
	}

	res := account.Finish(prog.Name(), g.Name, nil)
	return res, vals, nil
}

// gatherInto accumulates the contribution of src's state into dst.
func gatherInto[V, A any](prog Program[V, A], vals []V, acc []A, has []bool, src, dst graph.VertexID) {
	a := prog.Gather(vals[src])
	if has[dst] {
		acc[dst] = prog.Sum(acc[dst], a)
	} else {
		acc[dst] = a
		has[dst] = true
	}
}
