package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"unsafe"
)

// Checkpoint is the state a synchronous run persists at a superstep barrier:
// everything needed to resume execution at Step after losing every machine's
// in-memory state — the vertex values, the frontier that will drive the next
// gather, and the accumulated accounting a real framework would have to
// reconcile after recovery. Checkpoints are placement-independent, so a
// checkpoint written before a crash restores cleanly onto the repartitioned
// survivor placement.
type Checkpoint[V any] struct {
	// Step is the next superstep to execute when resuming from this state.
	Step int
	// Vals is the complete vertex-state vector at the barrier.
	Vals []V
	// Active is the frontier bitmap driving superstep Step; ActiveCount is
	// its population count (the hybrid frontier rebuilds its worklist from
	// these two on restore).
	Active      []bool
	ActiveCount int
	// Acct freezes the accumulated Result counters at the barrier.
	Acct AccountSnapshot
}

// checkpointMagic versions the binary encoding.
const checkpointMagic = "PGCK1\n"

// podType reports whether t is plain old data: fixed-size, pointer-free, and
// therefore safe to snapshot and restore as raw bytes. Vertex states in this
// repository (floats, ints, bools, small structs of them) all qualify.
func podType(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int,
		reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uint, reflect.Uintptr,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return podType(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !podType(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// stateSize returns V's in-memory size in bytes, or an error when V is not
// plain old data (pointers cannot be persisted).
func stateSize[V any]() (int, error) {
	t := reflect.TypeFor[V]()
	if !podType(t) {
		return 0, fmt.Errorf("engine: vertex state %v holds pointers and cannot be checkpointed", t)
	}
	return int(t.Size()), nil
}

// stateBytes reinterprets a vertex-state slice as its raw backing bytes.
func stateBytes[V any](vals []V, size int) []byte {
	if len(vals) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(vals))), len(vals)*size)
}

// checkpointSize returns the exact encoded footprint for n vertices and m
// machines given V's byte size.
func checkpointSize(n, m, vsize int) int64 {
	const header = len(checkpointMagic) + 4 /*vsize*/ + 8 /*step*/ + 8 /*n*/ + 8 /*activeCount*/ + 4 /*m*/
	const acct = 8 /*sim*/ + 8 /*steps*/ + 8 /*gathers*/
	return int64(header) + int64(n)*int64(vsize+1) + int64(m)*16 + acct
}

// SizeBytes returns the encoded size of the checkpoint without encoding it —
// the footprint the engine charges to simulated storage at write time.
func (c *Checkpoint[V]) SizeBytes() (int64, error) {
	vsize, err := stateSize[V]()
	if err != nil {
		return 0, err
	}
	return checkpointSize(len(c.Vals), len(c.Acct.BusySeconds), vsize), nil
}

// EncodeBinary serializes the checkpoint (little-endian, versioned magic).
// DecodeCheckpoint round-trips it exactly.
func (c *Checkpoint[V]) EncodeBinary() ([]byte, error) {
	vsize, err := stateSize[V]()
	if err != nil {
		return nil, err
	}
	if len(c.Active) != len(c.Vals) {
		return nil, fmt.Errorf("engine: checkpoint has %d active flags for %d values", len(c.Active), len(c.Vals))
	}
	if len(c.Acct.CommBytes) != len(c.Acct.BusySeconds) {
		return nil, fmt.Errorf("engine: checkpoint has %d comm counters for %d busy counters",
			len(c.Acct.CommBytes), len(c.Acct.BusySeconds))
	}
	n, m := len(c.Vals), len(c.Acct.BusySeconds)
	buf := make([]byte, 0, checkpointSize(n, m, vsize))
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(vsize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Step))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.ActiveCount))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	buf = append(buf, stateBytes(c.Vals, vsize)...)
	for _, a := range c.Active {
		if a {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Acct.SimSeconds))
	for _, b := range c.Acct.BusySeconds {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b))
	}
	for _, b := range c.Acct.CommBytes {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Acct.Supersteps))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Acct.Gathers))
	return buf, nil
}

// DecodeCheckpoint parses a checkpoint written by EncodeBinary. Corrupt or
// truncated input produces a clean error; the declared counts are validated
// against the payload length before any allocation, so a hostile header
// cannot force a huge pre-allocation.
func DecodeCheckpoint[V any](data []byte) (*Checkpoint[V], error) {
	vsize, err := stateSize[V]()
	if err != nil {
		return nil, err
	}
	const fixedHeader = len(checkpointMagic) + 4 + 8 + 8 + 8 + 4
	if len(data) < fixedHeader {
		return nil, fmt.Errorf("engine: checkpoint truncated at %d bytes", len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("engine: bad checkpoint magic %q", data[:len(checkpointMagic)])
	}
	off := len(checkpointMagic)
	gotSize := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if int(gotSize) != vsize {
		return nil, fmt.Errorf("engine: checkpoint state size %d, decoder expects %d", gotSize, vsize)
	}
	step := binary.LittleEndian.Uint64(data[off:])
	off += 8
	n := binary.LittleEndian.Uint64(data[off:])
	off += 8
	activeCount := binary.LittleEndian.Uint64(data[off:])
	off += 8
	m := uint64(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	want := checkpointSize(int(n), int(m), vsize)
	if int64(len(data)) != want {
		return nil, fmt.Errorf("engine: checkpoint declares %d vertices, %d machines (%d bytes) but holds %d",
			n, m, want, len(data))
	}
	if activeCount > n {
		return nil, fmt.Errorf("engine: checkpoint active count %d exceeds %d vertices", activeCount, n)
	}
	c := &Checkpoint[V]{
		Step:        int(step),
		Vals:        make([]V, n),
		Active:      make([]bool, n),
		ActiveCount: int(activeCount),
	}
	copy(stateBytes(c.Vals, vsize), data[off:off+int(n)*vsize])
	off += int(n) * vsize
	popCount := uint64(0)
	for i := range c.Active {
		switch data[off+i] {
		case 0:
		case 1:
			c.Active[i] = true
			popCount++
		default:
			return nil, fmt.Errorf("engine: checkpoint active flag %d is %d, want 0 or 1", i, data[off+i])
		}
	}
	off += int(n)
	if popCount != activeCount {
		return nil, fmt.Errorf("engine: checkpoint active bitmap holds %d vertices, header says %d", popCount, activeCount)
	}
	c.Acct.SimSeconds = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	c.Acct.BusySeconds = make([]float64, m)
	for i := range c.Acct.BusySeconds {
		c.Acct.BusySeconds[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	c.Acct.CommBytes = make([]float64, m)
	for i := range c.Acct.CommBytes {
		c.Acct.CommBytes[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	c.Acct.Supersteps = int(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	c.Acct.Gathers = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	return c, nil
}

// snapshotCheckpoint deep-copies the live engine state into a checkpoint
// resuming at step.
func snapshotCheckpoint[V any](step int, vals []V, active []bool, activeCount int, a *Accountant) *Checkpoint[V] {
	return &Checkpoint[V]{
		Step:        step,
		Vals:        append([]V(nil), vals...),
		Active:      append([]bool(nil), active...),
		ActiveCount: activeCount,
		Acct:        a.Snapshot(),
	}
}
