package engine

import (
	"math"
	"math/bits"
	"testing"

	"proxygraph/internal/cluster"
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

func testGraph(seed uint64, n, m int) *graph.Graph {
	src := rng.New(seed)
	g := &graph.Graph{Name: "t", NumVertices: n}
	for len(g.Edges) < m {
		u := graph.VertexID(src.Intn(n))
		v := graph.VertexID(src.Intn(n))
		if u != v {
			g.Edges = append(g.Edges, graph.Edge{Src: u, Dst: v})
		}
	}
	return g
}

func moduloOwner(g *graph.Graph, m int) []int32 {
	owner := make([]int32, len(g.Edges))
	for i := range owner {
		owner[i] = int32(i % m)
	}
	return owner
}

func testCluster(t testing.TB, names ...string) *cluster.Cluster {
	t.Helper()
	machines := make([]cluster.Machine, len(names))
	for i, n := range names {
		m, ok := cluster.ByName(n)
		if !ok {
			t.Fatalf("unknown machine %q", n)
		}
		machines[i] = m
	}
	cl, err := cluster.New(machines...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestNewPlacementValidation(t *testing.T) {
	g := testGraph(1, 10, 30)
	if _, err := NewPlacement(g, moduloOwner(g, 2), 0); err == nil {
		t.Error("0 machines should error")
	}
	if _, err := NewPlacement(g, moduloOwner(g, 2), MaxMachines+1); err == nil {
		t.Error("too many machines should error")
	}
	if _, err := NewPlacement(g, make([]int32, 3), 2); err == nil {
		t.Error("owner length mismatch should error")
	}
	bad := moduloOwner(g, 2)
	bad[0] = 7
	if _, err := NewPlacement(g, bad, 2); err == nil {
		t.Error("out-of-range owner should error")
	}
}

func TestPlacementInvariants(t *testing.T) {
	g := testGraph(2, 100, 1000)
	const m = 4
	pl, err := NewPlacement(g, moduloOwner(g, m), m)
	if err != nil {
		t.Fatal(err)
	}
	// Every edge appears in exactly one machine's local list.
	seen := make([]bool, len(g.Edges))
	for p := 0; p < m; p++ {
		for _, ei := range pl.LocalEdges[p] {
			if seen[ei] {
				t.Fatalf("edge %d assigned twice", ei)
			}
			seen[ei] = true
			if pl.EdgeOwner[ei] != int32(p) {
				t.Fatalf("edge %d in machine %d's list but owned by %d", ei, p, pl.EdgeOwner[ei])
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("edge %d unassigned", i)
		}
	}
	// Every edge endpoint has a replica on the owning machine; masters are
	// replicas (or hashed for isolated vertices).
	for i, e := range g.Edges {
		p := uint(pl.EdgeOwner[i])
		if pl.ReplicaMask[e.Src]&(1<<p) == 0 || pl.ReplicaMask[e.Dst]&(1<<p) == 0 {
			t.Fatalf("edge %d endpoints lack replica on owner", i)
		}
	}
	for v := 0; v < g.NumVertices; v++ {
		mask := pl.ReplicaMask[v]
		master := pl.Master[v]
		if mask != 0 && mask&(1<<uint(master)) == 0 {
			t.Fatalf("vertex %d master %d not among replicas %b", v, master, mask)
		}
	}
	// Master lists partition the vertex set.
	total := 0
	for p := 0; p < m; p++ {
		for _, v := range pl.MasterVerts[p] {
			if pl.Master[v] != int32(p) {
				t.Fatalf("vertex %d in machine %d master list but Master=%d", v, p, pl.Master[v])
			}
		}
		total += len(pl.MasterVerts[p])
	}
	if total != g.NumVertices {
		t.Fatalf("master lists cover %d of %d vertices", total, g.NumVertices)
	}
}

func TestReplicationFactorBounds(t *testing.T) {
	g := testGraph(3, 50, 500)
	const m = 4
	pl, _ := NewPlacement(g, moduloOwner(g, m), m)
	rf := pl.ReplicationFactor()
	if rf < 1 || rf > float64(m) {
		t.Errorf("replication factor %v outside [1, %d]", rf, m)
	}
	// Single machine: replication factor exactly 1.
	single := SingleMachine(g)
	if got := single.ReplicationFactor(); got != 1 {
		t.Errorf("single-machine replication factor = %v", got)
	}
}

func TestEdgeCountsAndImbalance(t *testing.T) {
	g := testGraph(4, 50, 400)
	pl, _ := NewPlacement(g, moduloOwner(g, 4), 4)
	counts := pl.EdgeCounts()
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != int64(len(g.Edges)) {
		t.Errorf("edge counts sum %d != %d", sum, len(g.Edges))
	}
	// Modulo assignment is perfectly uniform.
	imb := pl.Imbalance([]float64{0.25, 0.25, 0.25, 0.25})
	if imb < 1 || imb > 1.01 {
		t.Errorf("uniform imbalance = %v, want ~1", imb)
	}
	// Against a skewed target, a uniform partition is badly imbalanced.
	skewed := pl.Imbalance([]float64{0.7, 0.1, 0.1, 0.1})
	if skewed < 2 {
		t.Errorf("skewed-target imbalance = %v, want >> 1", skewed)
	}
}

func TestNthSetBit(t *testing.T) {
	mask := uint64(0b101101)
	want := []int{0, 2, 3, 5}
	for k, w := range want {
		if got := nthSetBit(mask, k); got != w {
			t.Errorf("nthSetBit(%b, %d) = %d, want %d", mask, k, got, w)
		}
	}
}

func TestAccountantSuperstepBarrier(t *testing.T) {
	cl := testCluster(t, "c4.xlarge", "c4.8xlarge")
	coeffs := CostCoeffs{OpsPerGather: 10, BytesPerGather: 10, SerialFrac: 0}
	a := NewAccountant(cl, coeffs)
	// Equal counters: the slow machine sets the barrier.
	counters := []StepCounters{{Gathers: 1e6}, {Gathers: 1e6}}
	a.Superstep(counters)
	res := a.Finish("x", "g", nil)
	slow := cl.Machines[0].ComputeTime(counters[0].work(coeffs))
	fast := cl.Machines[1].ComputeTime(counters[1].work(coeffs))
	if fast >= slow {
		t.Fatal("test premise broken: 8xlarge should be faster")
	}
	if math.Abs(res.SimSeconds-slow) > 1e-12 {
		t.Errorf("makespan %v, want slow machine's %v", res.SimSeconds, slow)
	}
	if res.BusySeconds[1] >= res.BusySeconds[0] {
		t.Error("fast machine should have less busy time")
	}
	if res.Supersteps != 1 {
		t.Errorf("supersteps = %d", res.Supersteps)
	}
}

func TestAccountantAsyncNoBarrier(t *testing.T) {
	cl := testCluster(t, "c4.xlarge", "c4.xlarge")
	coeffs := CostCoeffs{OpsPerGather: 10, BytesPerGather: 10}
	// Two async rounds then finish: makespan = max over machines of total
	// busy, NOT the sum of per-round maxima. With identical machines and
	// anti-correlated loads the async engine must win.
	a := NewAccountant(cl, coeffs)
	r1 := []StepCounters{{Gathers: 1e6}, {Gathers: 4e6}}
	r2 := []StepCounters{{Gathers: 4e6}, {Gathers: 1e6}}
	a.Async(r1)
	a.Async(r2)
	res := a.Finish("x", "g", nil)

	b := NewAccountant(cl, coeffs)
	b.Superstep(r1)
	b.Superstep(r2)
	sres := b.Finish("x", "g", nil)
	if res.SimSeconds >= sres.SimSeconds {
		t.Errorf("async makespan %v should beat barriered %v on anti-correlated load", res.SimSeconds, sres.SimSeconds)
	}
}

func TestAccountantEnergyIncludesIdleWait(t *testing.T) {
	cl := testCluster(t, "c4.xlarge", "c4.8xlarge")
	coeffs := CostCoeffs{OpsPerGather: 10, BytesPerGather: 40}
	// Imbalanced load: the idle tail of the fast machine burns energy.
	a := NewAccountant(cl, coeffs)
	a.Superstep([]StepCounters{{Gathers: 5e6}, {Gathers: 1e5}})
	imbalanced := a.Finish("x", "g", nil)

	b := NewAccountant(cl, coeffs)
	b.Superstep([]StepCounters{{Gathers: 1e6}, {Gathers: 4.1e6}})
	balanced := b.Finish("x", "g", nil)
	if balanced.SimSeconds >= imbalanced.SimSeconds {
		t.Fatalf("balanced run should be faster: %v vs %v", balanced.SimSeconds, imbalanced.SimSeconds)
	}
	if balanced.EnergyJoules >= imbalanced.EnergyJoules {
		t.Errorf("balanced run should save energy: %v vs %v", balanced.EnergyJoules, imbalanced.EnergyJoules)
	}
}

func TestAccountantCommCharged(t *testing.T) {
	cl := testCluster(t, "c4.xlarge", "c4.xlarge")
	coeffs := CostCoeffs{OpsPerGather: 1, AccumBytes: 100, ValueBytes: 50}
	a := NewAccountant(cl, coeffs)
	a.Superstep([]StepCounters{{Gathers: 10, PartialsOut: 3, UpdatesOut: 2}, {}})
	res := a.Finish("x", "g", nil)
	if res.CommBytes[0] != 3*100+2*50 {
		t.Errorf("comm bytes = %v, want 400", res.CommBytes[0])
	}
	if res.CommBytes[1] != 0 {
		t.Errorf("idle machine comm = %v", res.CommBytes[1])
	}
}

func TestAccountantValidate(t *testing.T) {
	cl := testCluster(t, "c4.xlarge")
	a := NewAccountant(cl, CostCoeffs{})
	if err := a.Validate(make([]StepCounters, 2)); err == nil {
		t.Error("mismatched counters should error")
	}
	if err := a.Validate(make([]StepCounters, 1)); err != nil {
		t.Error(err)
	}
}

// sumProgram is a minimal GAS program: each vertex counts its in-neighbors.
type sumProgram struct{}

func (sumProgram) Name() string { return "sum" }
func (sumProgram) Coeffs() CostCoeffs {
	return CostCoeffs{OpsPerGather: 1, BytesPerGather: 1, AccumBytes: 12, ValueBytes: 12}
}
func (sumProgram) Direction() Direction                             { return GatherIn }
func (sumProgram) ApplyAll() bool                                   { return true }
func (sumProgram) MaxSupersteps() int                               { return 1 }
func (sumProgram) Init(v graph.VertexID, outDeg, inDeg int32) int64 { return 0 }
func (sumProgram) Gather(src int64) int64                           { return 1 }
func (sumProgram) Sum(a, b int64) int64                             { return a + b }
func (sumProgram) Apply(v graph.VertexID, old, acc int64, has bool, rt *Runtime) (int64, bool) {
	if !has {
		return 0, false
	}
	return acc, acc != old
}

func TestRunSyncComputesExactResultAcrossPlacements(t *testing.T) {
	g := testGraph(5, 60, 600)
	want := g.InDegrees()

	for _, m := range []int{1, 2, 4} {
		names := make([]string, m)
		for i := range names {
			names[i] = "c4.xlarge"
		}
		cl := testCluster(t, names...)
		pl, err := NewPlacement(g, moduloOwner(g, m), m)
		if err != nil {
			t.Fatal(err)
		}
		res, vals, err := RunSync[int64, int64](sumProgram{}, pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		for v := range vals {
			if vals[v] != int64(want[v]) {
				t.Fatalf("m=%d: vertex %d sum %d, want %d", m, v, vals[v], want[v])
			}
		}
		if res.SimSeconds <= 0 {
			t.Errorf("m=%d: non-positive sim time", m)
		}
	}
}

func TestRunSyncClusterSizeMismatch(t *testing.T) {
	g := testGraph(6, 10, 20)
	pl, _ := NewPlacement(g, moduloOwner(g, 2), 2)
	cl := testCluster(t, "c4.xlarge")
	if _, _, err := RunSync[int64, int64](sumProgram{}, pl, cl); err == nil {
		t.Error("expected mismatch error")
	}
}

func TestRunSyncChargesMoreCommForMoreMirrors(t *testing.T) {
	g := testGraph(7, 40, 800)
	coeffs := sumProgram{}.Coeffs()
	_ = coeffs
	cl1 := testCluster(t, "c4.xlarge")
	cl4 := testCluster(t, "c4.xlarge", "c4.xlarge", "c4.xlarge", "c4.xlarge")
	res1, _, err := RunSync[int64, int64](sumProgram{}, SingleMachine(g), cl1)
	if err != nil {
		t.Fatal(err)
	}
	pl4, _ := NewPlacement(g, moduloOwner(g, 4), 4)
	res4, _, err := RunSync[int64, int64](sumProgram{}, pl4, cl4)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(xs []float64) float64 {
		t := 0.0
		for _, x := range xs {
			t += x
		}
		return t
	}
	if sum(res1.CommBytes) != 0 {
		t.Error("single machine run should have zero communication")
	}
	if sum(res4.CommBytes) == 0 {
		t.Error("4-machine run should communicate")
	}
}

func TestMaxMachinesMaskInvariant(t *testing.T) {
	// ReplicaMask is a uint64; the bound must not exceed its width.
	if MaxMachines > 64 {
		t.Fatal("MaxMachines must fit a 64-bit replica mask")
	}
	var mask uint64 = 1<<uint(MaxMachines-1) | 1
	if bits.OnesCount64(mask) != 2 {
		t.Fatal("mask sanity")
	}
}

// equalResults asserts two runs agree on all accounting.
func equalResults(t *testing.T, a, b *Result) {
	t.Helper()
	if a.SimSeconds != b.SimSeconds {
		t.Errorf("SimSeconds %v != %v", a.SimSeconds, b.SimSeconds)
	}
	if a.Supersteps != b.Supersteps {
		t.Errorf("Supersteps %d != %d", a.Supersteps, b.Supersteps)
	}
	if a.Gathers != b.Gathers {
		t.Errorf("Gathers %v != %v", a.Gathers, b.Gathers)
	}
	for p := range a.BusySeconds {
		if a.BusySeconds[p] != b.BusySeconds[p] {
			t.Errorf("machine %d busy %v != %v", p, a.BusySeconds[p], b.BusySeconds[p])
		}
		if a.CommBytes[p] != b.CommBytes[p] {
			t.Errorf("machine %d comm %v != %v", p, a.CommBytes[p], b.CommBytes[p])
		}
	}
	if a.EnergyJoules != b.EnergyJoules {
		t.Errorf("energy %v != %v", a.EnergyJoules, b.EnergyJoules)
	}
}

// rankProgram is a PageRank-like float program exercising non-associative
// float rounding, so ordering differences between engines would show up.
type rankProgram struct{}

func (rankProgram) Name() string { return "rank" }
func (rankProgram) Coeffs() CostCoeffs {
	return CostCoeffs{OpsPerGather: 6, BytesPerGather: 34, OpsPerApply: 12,
		BytesPerApply: 32, OpsPerVertex: 25, BytesPerVertex: 16,
		SerialFrac: 0.02, AccumBytes: 12, ValueBytes: 12}
}
func (rankProgram) Direction() Direction { return GatherIn }
func (rankProgram) ApplyAll() bool       { return true }
func (rankProgram) MaxSupersteps() int   { return 8 }
func (rankProgram) Init(v graph.VertexID, outDeg, inDeg int32) float64 {
	return 1 / float64(outDeg+1)
}
func (rankProgram) Gather(src float64) float64 { return src * 0.31 }
func (rankProgram) Sum(a, b float64) float64   { return a + b }
func (rankProgram) Apply(v graph.VertexID, old, acc float64, has bool, rt *Runtime) (float64, bool) {
	return 0.15 + 0.85*acc, true
}

func TestRunSyncParallelMatchesSequential(t *testing.T) {
	g := testGraph(20, 500, 6000)
	for _, m := range []int{1, 2, 4, 8} {
		names := make([]string, m)
		for i := range names {
			if i%2 == 0 {
				names[i] = "c4.xlarge"
			} else {
				names[i] = "c4.2xlarge"
			}
		}
		cl := testCluster(t, names...)
		pl, err := NewPlacement(g, moduloOwner(g, m), m)
		if err != nil {
			t.Fatal(err)
		}
		seqRes, seqVals, err := RunSync[float64, float64](rankProgram{}, pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		parRes, parVals, err := RunSyncParallel[float64, float64](rankProgram{}, pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		for v := range seqVals {
			diff := seqVals[v] - parVals[v]
			if diff < 0 {
				diff = -diff
			}
			// Float programs agree up to re-association of the partial sums.
			if diff > 1e-9*(1+seqVals[v]) {
				t.Fatalf("m=%d: vertex %d: %v != %v", m, v, seqVals[v], parVals[v])
			}
		}
		equalResults(t, seqRes, parRes)
	}
}

// minProgram exercises the frontier path (ApplyAll=false, GatherBoth).
type minProgram struct{}

func (minProgram) Name() string                                      { return "min" }
func (minProgram) Coeffs() CostCoeffs                                { return rankProgram{}.Coeffs() }
func (minProgram) Direction() Direction                              { return GatherBoth }
func (minProgram) ApplyAll() bool                                    { return false }
func (minProgram) MaxSupersteps() int                                { return 1000 }
func (minProgram) Init(v graph.VertexID, outDeg, inDeg int32) uint32 { return uint32(v) }
func (minProgram) Gather(src uint32) uint32                          { return src }
func (minProgram) Sum(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
func (minProgram) Apply(v graph.VertexID, old, acc uint32, has bool, rt *Runtime) (uint32, bool) {
	if has && acc < old {
		return acc, true
	}
	return old, false
}

func TestRunSyncParallelFrontierMatchesSequential(t *testing.T) {
	g := testGraph(21, 400, 2000)
	cl := testCluster(t, "c4.xlarge", "c4.2xlarge", "c4.8xlarge")
	pl, err := NewPlacement(g, moduloOwner(g, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, seqVals, err := RunSync[uint32, uint32](minProgram{}, pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	parRes, parVals, err := RunSyncParallel[uint32, uint32](minProgram{}, pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	for v := range seqVals {
		if seqVals[v] != parVals[v] {
			t.Fatalf("vertex %d: %v != %v", v, seqVals[v], parVals[v])
		}
	}
	equalResults(t, seqRes, parRes)
}

func TestRunSyncParallelClusterMismatch(t *testing.T) {
	g := testGraph(22, 20, 60)
	pl, _ := NewPlacement(g, moduloOwner(g, 2), 2)
	cl := testCluster(t, "c4.xlarge")
	if _, _, err := RunSyncParallel[float64, float64](rankProgram{}, pl, cl); err == nil {
		t.Error("expected mismatch error")
	}
}
