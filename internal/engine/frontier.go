package engine

import (
	"slices"

	"proxygraph/internal/graph"
)

// sparseFrontierDenom sets the hybrid frontier's density threshold: a
// superstep runs the sparse (worklist-driven) gather only while the frontier
// holds at most |V|/sparseFrontierDenom vertices. Below that density the
// worklist sweep — O(Σ deg(f) + |F| log K) over active vertices f — beats the
// dense sweep's O(local records) scan by roughly the density ratio; above it
// the bitmap sweep's sequential access pattern wins, the same crossover
// direction-optimizing BFS engines switch on.
const sparseFrontierDenom = 8

// frontier is the hybrid active-vertex set: a dense bitmap that is always
// maintained (for O(1) membership tests during dense sweeps) plus a sparse
// worklist kept only while the frontier stays under the density threshold.
// Once the worklist overflows the frontier degrades to bitmap-only and the
// engine runs dense supersteps; resetting costs O(active), not O(|V|), while
// the worklist survives.
type frontier struct {
	bits []bool
	list []graph.VertexID
	// listCap is the worklist length at which the frontier degrades; it is
	// |V|/sparseFrontierDenom + 1, so overflow ⇔ the step must run dense.
	listCap  int
	count    int
	overflow bool
}

func newFrontier(n int) *frontier {
	return &frontier{bits: make([]bool, n), listCap: n/sparseFrontierDenom + 1}
}

// fill activates every vertex (the first superstep's frontier), in
// bitmap-only form.
func (f *frontier) fill() {
	for i := range f.bits {
		f.bits[i] = true
	}
	f.count = len(f.bits)
	f.list = f.list[:0]
	f.overflow = true
}

// seed activates exactly the given vertices (the warm-start superstep-0
// frontier). Duplicates are tolerated — Options.InitialActive is
// caller-supplied — by testing the bitmap before each add.
func (f *frontier) seed(vs []graph.VertexID) {
	for _, v := range vs {
		if !f.bits[v] {
			f.add(v)
		}
	}
}

// add activates v. Each vertex is applied at most once per superstep (masters
// partition the vertex set), so callers never add the same vertex twice and
// the worklist needs no deduplication.
func (f *frontier) add(v graph.VertexID) {
	f.bits[v] = true
	f.count++
	if !f.overflow {
		if len(f.list) >= f.listCap {
			f.overflow = true
			f.list = f.list[:0]
		} else {
			f.list = append(f.list, v)
		}
	}
}

// has reports whether v is active.
func (f *frontier) has(v graph.VertexID) bool { return f.bits[v] }

// sparse reports whether the frontier is under the density threshold and
// still carries its worklist.
func (f *frontier) sparse() bool { return !f.overflow }

// sorted returns the worklist in ascending vertex order (sorting in place),
// giving the sparse sweep a deterministic, cache-friendly visit order.
func (f *frontier) sorted() []graph.VertexID {
	slices.Sort(f.list)
	return f.list
}

// restore overwrites the frontier from a checkpointed bitmap. The worklist is
// rebuilt in ascending order exactly when the set is under the density
// threshold, matching what organic add()s would have produced (overflow
// triggers on the add that would push the list past listCap, so a finished
// frontier overflows iff count > listCap).
func (f *frontier) restore(active []bool, count int) {
	copy(f.bits, active)
	f.count = count
	f.list = f.list[:0]
	f.overflow = count > f.listCap
	if !f.overflow {
		for v, on := range active {
			if on {
				f.list = append(f.list, graph.VertexID(v))
			}
		}
	}
}

// reset deactivates everything in O(active) when sparse, O(|V|) otherwise.
func (f *frontier) reset() {
	if f.overflow {
		clear(f.bits)
	} else {
		for _, v := range f.list {
			f.bits[v] = false
		}
	}
	f.list = f.list[:0]
	f.count = 0
	f.overflow = false
}
