package engine

import (
	"bytes"
	"math"
	"testing"
)

// fuzzCheckpoint builds a representative checkpoint for the seed corpus.
func fuzzCheckpoint() *Checkpoint[float64] {
	return &Checkpoint[float64]{
		Step:        7,
		Vals:        []float64{0.5, math.Inf(1), -3, math.NaN(), 0},
		Active:      []bool{true, false, true, false, false},
		ActiveCount: 2,
		Acct: AccountSnapshot{
			SimSeconds:  1.25,
			BusySeconds: []float64{0.5, 0.75},
			CommBytes:   []float64{1024, 2048},
			Supersteps:  7,
			Gathers:     9000,
		},
	}
}

// FuzzDecodeCheckpoint hammers the binary checkpoint decoder with arbitrary
// bytes: it must either reject the input with a clean error or produce a
// checkpoint that re-encodes to the identical bytes (decode∘encode is the
// identity on accepted inputs). The decoder's length validation means no
// input may crash it or force a huge allocation.
func FuzzDecodeCheckpoint(f *testing.F) {
	good, err := fuzzCheckpoint().EncodeBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add(append(bytes.Clone(good), 0))
	f.Add([]byte(checkpointMagic))
	f.Add([]byte{})
	// Header declaring a huge vertex count over a tiny payload.
	huge := bytes.Clone(good)
	for i := len(checkpointMagic) + 4 + 8; i < len(checkpointMagic)+4+16; i++ {
		huge[i] = 0xff
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint[float64](data)
		if err != nil {
			return
		}
		out, err := c.EncodeBinary()
		if err != nil {
			t.Fatalf("accepted checkpoint failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode∘encode not identity: %d bytes in, %d out", len(data), len(out))
		}
	})
}

// TestCheckpointFuzzSeedRoundTrips keeps the seed corpus honest under plain
// `go test`: the canonical encoding must decode and round-trip.
func TestCheckpointFuzzSeedRoundTrips(t *testing.T) {
	ck := fuzzCheckpoint()
	data, err := ck.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint[float64](data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := got.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round trip changed bytes")
	}
	if got.Step != ck.Step || got.ActiveCount != ck.ActiveCount || got.Acct.Supersteps != ck.Acct.Supersteps {
		t.Fatalf("round trip changed fields: %+v", got)
	}
}
