package engine

import (
	"fmt"
	"strings"
)

// StepTiming records one accounted phase of an execution: how long each
// machine spent in it and what the phase contributed to the makespan. It is
// the raw material for straggler analysis — exactly the imbalance the
// paper's CCR-guided partitioning removes.
type StepTiming struct {
	// Kind is "sync" for barriered supersteps, "async" for asynchronous
	// phases folded at the next barrier.
	Kind string
	// PerMachine is each machine's time in the phase (max of compute and
	// overlapped communication).
	PerMachine []float64
	// Barrier is the phase's contribution to the simulated makespan
	// (the slowest machine for sync steps; 0 for async rounds, whose
	// contribution lands when the pending time folds).
	Barrier float64
}

// Straggler returns the index of the slowest machine in the phase.
func (st StepTiming) Straggler() int {
	worst, idx := -1.0, 0
	for p, t := range st.PerMachine {
		if t > worst {
			worst, idx = t, p
		}
	}
	return idx
}

// TraceGantt renders an execution trace as an ASCII timeline, one row per
// (step, machine), bars scaled to the slowest phase. The straggler of each
// step is marked with '*': on an imbalanced partition the same machine
// stars in every step.
//
//	step  0 sync  m0 |############********|*
//	              m1 |########            |
func TraceGantt(res *Result, width int) string {
	if width < 10 {
		width = 10
	}
	var maxT float64
	for _, st := range res.Trace {
		for _, t := range st.PerMachine {
			if t > maxT {
				maxT = t
			}
		}
	}
	if maxT == 0 {
		return "(empty trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d phases, makespan %.6fs\n", res.App, res.Graph, len(res.Trace), res.SimSeconds)
	for i, st := range res.Trace {
		straggler := st.Straggler()
		for p, t := range st.PerMachine {
			bar := int(t / maxT * float64(width))
			label := " "
			if p == straggler {
				label = "*"
			}
			head := ""
			if p == 0 {
				head = fmt.Sprintf("step %3d %-5s", i, st.Kind)
			}
			fmt.Fprintf(&b, "%-14s m%-2d |%-*s|%s\n", head, p, width, strings.Repeat("#", bar), label)
		}
	}
	return b.String()
}

// StragglerShare returns, per machine, the fraction of phases in which it
// was the straggler. A perfectly balanced heterogeneous run spreads
// stragglers; a thread-count-misestimated run pins them on one machine.
func StragglerShare(res *Result) []float64 {
	if len(res.Trace) == 0 || len(res.BusySeconds) == 0 {
		return nil
	}
	counts := make([]float64, len(res.BusySeconds))
	for _, st := range res.Trace {
		counts[st.Straggler()]++
	}
	for i := range counts {
		counts[i] /= float64(len(res.Trace))
	}
	return counts
}
