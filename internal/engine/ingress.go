package engine

import (
	"fmt"
	"math/bits"

	"proxygraph/internal/cluster"
)

// Ingress models the loading/finalization phase of Fig 7b: before execution,
// every machine reads its edge partition from storage and the cluster
// exchanges the mirror tables that connect masters to replicas ("the
// framework needs to finalize the graph by constructing the connections
// among machines"). Heterogeneity-aware partitions move more bytes onto the
// faster machines, so ingress, too, is skewed by the CCR shares.

// textBytesPerEdge matches Table II's text footprint (see
// graph.FootprintBytes).
const textBytesPerEdge = 13.6

// mirrorRecordBytes is the wire size of one (vertex, machine) mirror-table
// record exchanged during finalization.
const mirrorRecordBytes = 8.0

// IngressReport breaks down the loading phase per machine.
type IngressReport struct {
	// LoadSeconds is the time each machine spends reading its edges.
	LoadSeconds []float64
	// ExchangeSeconds is the time each machine spends sending its share of
	// the mirror tables.
	ExchangeSeconds []float64
	// Makespan is the ingress barrier: the slowest machine's total.
	Makespan float64
}

// Ingress estimates the loading/finalization cost of a placement on a
// cluster. Machines with zero configured storage bandwidth default to
// DefaultDiskGBs.
func Ingress(pl *Placement, cl *cluster.Cluster) (*IngressReport, error) {
	if cl.Size() != pl.M {
		return nil, fmt.Errorf("engine: ingress placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	rep := &IngressReport{
		LoadSeconds:     make([]float64, pl.M),
		ExchangeSeconds: make([]float64, pl.M),
	}
	// Mirror records are announced by every replica holder.
	mirrorRecords := make([]float64, pl.M)
	for v := range pl.ReplicaMask {
		mask := pl.ReplicaMask[v]
		if bits.OnesCount64(mask) < 2 {
			continue // purely local vertices need no connection setup
		}
		for m := mask; m != 0; m &= m - 1 {
			mirrorRecords[bits.TrailingZeros64(m)]++
		}
	}
	for p := 0; p < pl.M; p++ {
		m := cl.Machines[p]
		disk := m.DiskBWGBs
		if disk <= 0 {
			disk = cluster.DefaultDiskGBs
		}
		loadBytes := float64(len(pl.LocalEdges[p])) * textBytesPerEdge
		rep.LoadSeconds[p] = loadBytes / (disk * 1e9)
		rep.ExchangeSeconds[p] = cl.Net.TransferTime(mirrorRecords[p] * mirrorRecordBytes)
		if t := rep.LoadSeconds[p] + rep.ExchangeSeconds[p]; t > rep.Makespan {
			rep.Makespan = t
		}
	}
	return rep, nil
}
