package engine

import (
	"testing"

	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// TestCompileBlocksParallelMatchesSequential pins the parallel machine-block
// compiler to its sequential path: every field of every machine's layout must
// be identical at any worker count, for both gather directions.
func TestCompileBlocksParallelMatchesSequential(t *testing.T) {
	const n, m, machines = 400, 3200, 7
	g := &graph.Graph{NumVertices: n}
	owner := make([]int32, 0, m)
	for i := 0; i < m; i++ {
		u := graph.VertexID(rng.Hash2(91, uint64(i)) % n)
		v := graph.VertexID(rng.Hash2(93, uint64(i)) % n)
		if u == v {
			v = (v + 1) % n
		}
		g.Edges = append(g.Edges, graph.Edge{Src: u, Dst: v})
		owner = append(owner, int32(rng.Hash2(97, uint64(i))%machines))
	}

	prev := ParallelShards
	t.Cleanup(func() { ParallelShards = prev })

	ParallelShards = 1
	seq, err := NewPlacement(g, owner, machines)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8} {
		ParallelShards = shards
		par, err := NewPlacement(g, owner, machines)
		if err != nil {
			t.Fatal(err)
		}
		for _, both := range []bool{false, true} {
			a, b := seq.blocks(both), par.blocks(both)
			for p := 0; p < machines; p++ {
				if !groupedEqual(a[p].byDst, b[p].byDst) || !groupedEqual(a[p].bySrc, b[p].bySrc) {
					t.Fatalf("shards=%d both=%v: machine %d blocks differ", shards, both, p)
				}
				if len(a[p].remote) != len(b[p].remote) {
					t.Fatalf("shards=%d both=%v: machine %d remote length differs", shards, both, p)
				}
				for i := range a[p].remote {
					if a[p].remote[i] != b[p].remote[i] {
						t.Fatalf("shards=%d both=%v: machine %d remote[%d] differs", shards, both, p, i)
					}
				}
			}
		}
	}
}

func groupedEqual(a, b graph.Grouped) bool {
	if len(a.Keys) != len(b.Keys) || len(a.Offs) != len(b.Offs) || len(a.Vals) != len(b.Vals) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	for i := range a.Offs {
		if a.Offs[i] != b.Offs[i] {
			return false
		}
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			return false
		}
	}
	return true
}
