package engine

import (
	"fmt"
	"math/bits"
	"sync"

	"proxygraph/internal/cluster"
	"proxygraph/internal/graph"
)

// RunSyncParallel executes a vertex program exactly like RunSync but runs
// each simulated machine's gather and apply sweeps on its own goroutine —
// the real parallelism inside one host that mirrors the distributed
// parallelism being simulated. Gather contributions accumulate in
// machine-private buffers and merge at the barrier in machine order.
// All simulation accounting (times, energy, communication) is bit-identical
// to the sequential engine; vertex values are bit-identical whenever Sum is
// exactly associative (min, max, integer sums) and agree up to
// floating-point re-association otherwise — the same contract PowerGraph's
// own distributed gather offers.
//
// Memory grows by O(|V|) per machine for the private buffers, the classic
// space-for-parallelism trade. Dynamic rebalancing is not supported here;
// use RunSyncRebalanced for that.
func RunSyncParallel[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster) (*Result, []V, error) {
	if cl.Size() != pl.M {
		return nil, nil, fmt.Errorf("engine: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	rt := &Runtime{NumVertices: n, NumEdges: len(g.Edges)}

	outDeg := g.OutDegrees()
	inDeg := g.InDegrees()
	vals := make([]V, n)
	for v := range vals {
		vals[v] = prog.Init(graph.VertexID(v), outDeg[v], inDeg[v])
	}

	// Global accumulators (merged) and per-machine private buffers.
	acc := make([]A, n)
	has := make([]bool, n)
	type workerBuf[A any] struct {
		acc     []A
		has     []bool
		cnt     []int32
		touched []graph.VertexID // discovery order, for deterministic merge
	}
	workers := make([]workerBuf[A], pl.M)
	for p := range workers {
		workers[p] = workerBuf[A]{
			acc: make([]A, n),
			has: make([]bool, n),
			cnt: make([]int32, n),
		}
	}

	active := make([]bool, n)
	nextActive := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	applyAll := prog.ApplyAll()
	both := prog.Direction() == GatherBoth
	account := NewAccountant(cl, prog.Coeffs())

	maxSteps := prog.MaxSupersteps()
	for step := 0; step < maxSteps; step++ {
		rt.Step = step
		counters := make([]StepCounters, pl.M)
		changedFlags := make([]bool, pl.M)

		// Gather phase: one goroutine per machine, private accumulation.
		var wg sync.WaitGroup
		wg.Add(pl.M)
		for p := 0; p < pl.M; p++ {
			go func(p int) {
				defer wg.Done()
				sc := &counters[p]
				sc.Vertices = float64(len(pl.MasterVerts[p]))
				wb := &workers[p]
				gather := func(src, dst graph.VertexID) {
					a := prog.Gather(vals[src])
					if wb.has[dst] {
						wb.acc[dst] = prog.Sum(wb.acc[dst], a)
					} else {
						wb.acc[dst] = a
						wb.has[dst] = true
						wb.touched = append(wb.touched, dst)
						if pl.Master[dst] != int32(p) {
							sc.PartialsOut++
						}
					}
					sc.Gathers++
					wb.cnt[dst]++
					if u := float64(wb.cnt[dst]); u > sc.MaxUnit {
						sc.MaxUnit = u
					}
				}
				for _, ei := range pl.LocalEdges[p] {
					e := g.Edges[ei]
					if active[e.Src] {
						gather(e.Src, e.Dst)
					}
					if both && active[e.Dst] {
						gather(e.Dst, e.Src)
					}
				}
			}(p)
		}
		wg.Wait()

		// Merge in machine order: identical Sum ordering to the sequential
		// engine (machine 0's contributions first, each in edge order).
		for p := 0; p < pl.M; p++ {
			wb := &workers[p]
			for _, v := range wb.touched {
				if has[v] {
					acc[v] = prog.Sum(acc[v], wb.acc[v])
				} else {
					acc[v] = wb.acc[v]
					has[v] = true
				}
				wb.has[v] = false
				wb.cnt[v] = 0
				var zero A
				wb.acc[v] = zero
			}
			wb.touched = wb.touched[:0]
		}

		// Apply phase: masters are disjoint across machines, so each
		// machine's sweep writes its own vertices only.
		wg.Add(pl.M)
		for p := 0; p < pl.M; p++ {
			go func(p int) {
				defer wg.Done()
				sc := &counters[p]
				for _, v := range pl.MasterVerts[p] {
					if !applyAll && !has[v] {
						continue
					}
					newVal, changed := prog.Apply(v, vals[v], acc[v], has[v], rt)
					sc.Applies++
					vals[v] = newVal
					if changed {
						changedFlags[p] = true
						mirrors := bits.OnesCount64(pl.ReplicaMask[v])
						if pl.ReplicaMask[v]&(1<<uint(p)) != 0 {
							mirrors--
						}
						sc.UpdatesOut += float64(mirrors)
						if !applyAll {
							nextActive[v] = true
						}
					}
				}
			}(p)
		}
		wg.Wait()

		account.Superstep(counters)

		clear(has)
		clear(acc)

		anyChanged := false
		for _, c := range changedFlags {
			anyChanged = anyChanged || c
		}
		if !anyChanged {
			break
		}
		if !applyAll {
			active, nextActive = nextActive, active
			clear(nextActive)
			anyActive := false
			for _, a := range active {
				if a {
					anyActive = true
					break
				}
			}
			if !anyActive {
				break
			}
		}
	}

	res := account.Finish(prog.Name(), g.Name, nil)
	return res, vals, nil
}
