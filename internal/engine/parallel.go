package engine

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"

	"proxygraph/internal/cluster"
	"proxygraph/internal/graph"
	"proxygraph/internal/trace"
)

// ParallelShards overrides the engine's worker counts when positive — the
// destination-sharded sweeps of RunSyncParallel and the per-machine gather
// block compile inside NewPlacement; zero (the default) means one worker per
// available CPU. Worker count never affects results or accounting, only
// host-side execution speed, so tests set it to exercise multi-shard
// execution regardless of GOMAXPROCS.
var ParallelShards int

// span is a half-open range of group indices into one machine's byDst block.
type span struct{ lo, hi int32 }

// applyChunksPerWorker oversubdivides the dense apply sweep: each worker's
// vertex range is split into this many steal-able chunks, so a worker whose
// range happens to hold the expensive masters (frontier clusters, hub-heavy
// stretches) sheds work to idle peers instead of serializing the barrier.
const applyChunksPerWorker = 4

// serialSparseCutoff is the frontier size below which a sparse superstep runs
// every worker's loop inline on the caller's goroutine. Near-empty frontiers
// (SSSP tails, cascade endgames) carry so little work that spawning 2W
// goroutines per superstep costs more than the sweep itself; the inline path
// executes the identical per-worker loops in worker order, so results and
// accounting are unchanged.
const serialSparseCutoff = 256

// parallelMergeCutoff is the next-frontier size above which the worklist
// concatenation copies per-worker segments in parallel.
const parallelMergeCutoff = 4096

// RunSyncParallel executes a vertex program exactly like RunSync but splits
// each superstep's phases across destination-sharded workers: every worker
// owns a disjoint vertex range of the global acc/has arrays during gather, so
// accumulation is merge-free and the engine's memory stays O(|V|) — no
// per-machine private accumulator copies. Because each machine's
// destination-grouped edge block is sorted by destination, a worker's share
// of every machine is a contiguous group range, found once per run by binary
// search. The apply/scatter sweep, the value-array init, the accumulator
// reset and the frontier merge run in parallel too (see RunSyncParallelOpts),
// so every O(|V|) or O(records) phase of a superstep scales with the worker
// count.
//
// All simulation accounting (times, energy, communication) is bit-identical
// to RunSync and RunSyncReference: each per-machine counter is either a sum
// of exactly-representable integer counts over disjoint vertex sets or a max
// over them, so worker scheduling cannot perturb it. Vertex values are
// bit-identical to RunSync whenever Sum is exactly associative (min, max,
// integer sums) and also for float programs on dense supersteps, since each
// destination's contributions are still summed machine-major in local record
// order — by the worker that owns the destination.
//
// Buffers are allocated once per run and reused across supersteps.
func RunSyncParallel[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster) (*Result, []V, error) {
	return RunSyncParallelOpts[V, A](prog, pl, cl, Options{})
}

// RunSyncParallelOpts is RunSyncParallel with the full option set: dynamic
// rebalancing (parity with RunSyncRebalanced — the policy sees identical
// per-machine times and its migrations are charged identically) and fault
// injection with checkpoint recovery. Placement changes recompile the gather
// blocks and re-derive each worker's group spans against them; the vertex
// shard bounds stay fixed, which affects host-side balance only, never
// results or accounting.
//
// Phase parallelism per superstep:
//
//   - gather: one task per destination shard (static vertex ranges, so the
//     shared acc/has arrays see disjoint writes), dispatched through the
//     work-stealing loop shared with the placement compile;
//   - apply+scatter: the dense sweep steals applyChunksPerWorker×W vertex
//     chunks, so frontier clustering cannot serialize the barrier; counters
//     are keyed by the claiming worker and merged as exact integer sums, so
//     chunk scheduling never shows up in the accounting;
//   - reset and frontier merge: sharded over the same vertex ranges.
func RunSyncParallelOpts[V, A any](prog Program[V, A], pl *Placement, cl *cluster.Cluster, opts Options) (*Result, []V, error) {
	rb := opts.Rebalancer
	if cl.Size() != pl.M {
		return nil, nil, fmt.Errorf("engine: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	rt := &Runtime{NumVertices: n, NumEdges: len(g.Edges)}

	// Destination sharding: vertex ranges balanced by gather-record count,
	// plus each worker's contiguous group range within every machine's block.
	W := ParallelShards
	if W <= 0 {
		W = runtime.GOMAXPROCS(0)
	}
	if W > n && n > 0 {
		W = n
	}
	if W < 1 {
		W = 1
	}

	outDeg := g.OutDegreesParallel(W)
	inDeg := g.InDegreesParallel(W)
	vals := make([]V, n)
	stealTasks(W, W, func(_, t int) {
		for v := n * t / W; v < n*(t+1)/W; v++ {
			vals[v] = prog.Init(graph.VertexID(v), outDeg[v], inDeg[v])
		}
	})

	acc := make([]A, n)
	has := make([]bool, n)

	applyAll := prog.ApplyAll()
	both := prog.Direction() == GatherBoth
	blocks := pl.blocks(both)
	account := NewAccountant(cl, prog.Coeffs())
	account.SetCollector(opts.Trace)

	prefix, total := gatherPrefix(blocks, n)
	bounds := cutBounds(prefix, total, n, W)
	spans := shardSpans(blocks, bounds, pl.M, W)

	// Finer-grained cut points for the stealable dense apply sweep. Like
	// bounds, they are fixed for the run: rebalancing shifts masters between
	// machines but the chunk ranges only steer host-side balance.
	applyChunks := W * applyChunksPerWorker
	if applyChunks > n && n > 0 {
		applyChunks = n
	}
	if applyChunks < 1 {
		applyChunks = 1
	}
	applyBounds := cutBounds(prefix, total, n, applyChunks)

	front := newFrontier(n)
	if opts.InitialActive != nil && !applyAll {
		if err := validateInitialActive(opts.InitialActive, n); err != nil {
			return nil, nil, err
		}
		front.seed(opts.InitialActive)
	} else {
		front.fill()
	}
	next := newFrontier(n)

	ft, err := newFTRun[V](opts.Fault, cl)
	if err != nil {
		return nil, nil, err
	}
	ft.baseline(vals, front.bits, front.count, account)

	// Per-run scratch, reused across supersteps. workC holds per-(worker,
	// machine) counter shards merged after each step; dirty[w] lists the
	// destinations shard w gathered into during a sparse step; nextAdds[w]
	// collects the vertices worker w activates.
	counters := make([]StepCounters, pl.M)
	workC := make([]StepCounters, W*pl.M)
	changedFlags := make([]bool, W)
	nextCounts := make([]int, W)
	dirty := make([][]graph.VertexID, W)
	nextAdds := make([][]graph.VertexID, W)
	mergeOffs := make([]int, W+1)
	var (
		touched  []int64
		contribs []int32
	)
	if !applyAll {
		// Shared across gather shards: each destination belongs to exactly
		// one shard's range, so the stamp arrays see disjoint writes.
		touched = make([]int64, n)
		contribs = make([]int32, n)
	}

	maxSteps := prog.MaxSupersteps()
	for step := 0; step < maxSteps; step++ {
		rt.Step = step
		account.StepBegin(step, front.count, "sync")
		ft.beforeStep(step, account)
		clear(workC)
		clear(changedFlags)
		clear(nextCounts)

		sparse := !applyAll && front.sparse()
		var srcs []graph.VertexID
		var act []bool
		if sparse {
			srcs = front.sorted()
		} else if !applyAll {
			act = front.bits
		}

		// Near-empty frontiers run all phases inline: same loops, same worker
		// indices, zero goroutines.
		phaseWorkers := W
		if sparse && len(srcs) < serialSparseCutoff {
			phaseWorkers = 1
		}

		// Gather phase: shard t accumulates every machine's contributions
		// into its own destination range — machine-major, so per-destination
		// Sum order matches the sequential engine — with no merge step. All
		// scratch is keyed by the shard (= destination-range) index, so any
		// claiming worker computes the identical result.
		gatherShard := func(t int) {
			bLo, bHi := bounds[t], bounds[t+1]
			for p := 0; p < pl.M; p++ {
				wc := &workC[t*pl.M+p]
				if sparse {
					blk := &blocks[p].bySrc
					// Unique per (step, machine); destinations are
					// shard-disjoint, so the shared stamp arrays race
					// with no one.
					stamp := int64(step)*int64(pl.M) + int64(p) + 1
					for _, s := range srcs {
						gi := blk.Find(s)
						if gi < 0 {
							continue
						}
						for _, d := range blk.Group(gi) {
							if d < bLo || d >= bHi {
								continue
							}
							a := prog.Gather(vals[s])
							if has[d] {
								acc[d] = prog.Sum(acc[d], a)
							} else {
								acc[d] = a
								has[d] = true
								dirty[t] = append(dirty[t], d)
							}
							wc.Gathers++
							if touched[d] != stamp {
								touched[d] = stamp
								contribs[d] = 0
								if pl.Master[d] != int32(p) {
									wc.PartialsOut++
								}
							}
							contribs[d]++
							if u := float64(contribs[d]); u > wc.MaxUnit {
								wc.MaxUnit = u
							}
						}
					}
					continue
				}
				blk := &blocks[p]
				sp := spans[t*pl.M+p]
				for gi := sp.lo; gi < sp.hi; gi++ {
					d := blk.byDst.Keys[gi]
					var c int32
					for _, s := range blk.byDst.Group(int(gi)) {
						if act != nil && !act[s] {
							continue
						}
						gatherInto(prog, vals, acc, has, s, d)
						c++
					}
					if c > 0 {
						wc.Gathers += float64(c)
						if blk.remote[gi] {
							wc.PartialsOut++
						}
						if u := float64(c); u > wc.MaxUnit {
							wc.MaxUnit = u
						}
					}
				}
			}
		}
		stealTasks(phaseWorkers, W, func(_, t int) { gatherShard(t) })

		// Apply+scatter phase: masters apply, changed vertices count their
		// mirror broadcasts and activate themselves in the next frontier.
		// Value writes and frontier bits stay disjoint because chunks (dense)
		// and dirty lists (sparse) partition the vertex space; counters are
		// attributed to each vertex's master machine under the claiming
		// worker's shard and merged as exact integer sums below.
		apply := func(w int, v graph.VertexID, hasAcc bool) {
			p := pl.Master[v]
			wc := &workC[w*pl.M+int(p)]
			newVal, changed := prog.Apply(v, vals[v], acc[v], hasAcc, rt)
			wc.Applies++
			vals[v] = newVal
			if changed {
				changedFlags[w] = true
				mirrors := bits.OnesCount64(pl.ReplicaMask[v])
				if pl.ReplicaMask[v]&(1<<uint(p)) != 0 {
					mirrors--
				}
				wc.UpdatesOut += float64(mirrors)
				if !applyAll {
					next.bits[v] = true
					nextAdds[w] = append(nextAdds[w], v)
					nextCounts[w]++
				}
			}
		}
		if sparse {
			stealTasks(phaseWorkers, W, func(w, t int) {
				for _, d := range dirty[t] {
					apply(w, d, true)
				}
			})
		} else {
			stealTasks(W, applyChunks, func(w, c int) {
				for v := applyBounds[c]; v < applyBounds[c+1]; v++ {
					if !applyAll && !has[v] {
						continue
					}
					apply(w, v, has[v])
				}
			})
		}

		// Merge the counter shards in worker order: counts are sums of
		// exactly-representable integer counts over disjoint destination (or
		// master) sets, MaxUnit a max over whole per-destination units, so
		// the merged counters equal the sequential engine's bit for bit
		// regardless of which worker claimed which chunk.
		for p := 0; p < pl.M; p++ {
			sc := &counters[p]
			*sc = StepCounters{Vertices: float64(len(pl.MasterVerts[p]))}
			for w := 0; w < W; w++ {
				wc := &workC[w*pl.M+p]
				sc.Gathers += wc.Gathers
				sc.Applies += wc.Applies
				sc.PartialsOut += wc.PartialsOut
				sc.UpdatesOut += wc.UpdatesOut
				if wc.MaxUnit > sc.MaxUnit {
					sc.MaxUnit = wc.MaxUnit
				}
			}
		}
		account.Superstep(counters)

		// Dynamic rebalancing hook, identical to RunSyncRebalanced's; the new
		// placement arrives with freshly compiled blocks and worker spans.
		if rb != nil {
			last := account.LastStep()
			if owner, moved, ok := rb.Decide(step, last.PerMachine, pl); ok {
				newPl, err := NewPlacement(g, owner, pl.M)
				if err != nil {
					return nil, nil, fmt.Errorf("engine: rebalance at step %d: %w", step, err)
				}
				pl = newPl
				blocks = pl.blocks(both)
				spans = shardSpans(blocks, bounds, pl.M, W)
				account.emit(trace.Event{Kind: trace.KindRebalance, Step: step, Machine: -1, Moved: moved})
				account.Stall(cl.Net.TransferTime(float64(moved)*migratedEdgeBytes), "migrate")
			}
		}

		// Reset accumulators: O(gathered) after a sparse step, a sharded
		// wholesale clear after a dense one.
		if sparse {
			var zero A
			for t := 0; t < W; t++ {
				for _, d := range dirty[t] {
					acc[d] = zero
					has[d] = false
				}
				dirty[t] = dirty[t][:0]
			}
		} else {
			stealTasks(W, W, func(_, t int) {
				lo, hi := bounds[t], bounds[t+1]
				clear(has[lo:hi])
				clear(acc[lo:hi])
			})
		}

		anyChanged := false
		for _, c := range changedFlags {
			anyChanged = anyChanged || c
		}
		terminated := !anyChanged
		if !applyAll && !terminated {
			// Finalize the next frontier from the per-worker activation
			// lists (bits were set during apply), then swap. List order is
			// scheduling-dependent under work stealing, which is invisible:
			// every consumer sorts the worklist or reads the bitmap.
			total := 0
			for _, c := range nextCounts {
				total += c
			}
			next.count = total
			next.overflow = total > next.listCap
			if !next.overflow {
				mergeOffs[0] = 0
				for w, adds := range nextAdds {
					mergeOffs[w+1] = mergeOffs[w] + len(adds)
				}
				if cap(next.list) < total {
					next.list = make([]graph.VertexID, total)
				} else {
					next.list = next.list[:total]
				}
				mergeWorkers := 1
				if total >= parallelMergeCutoff {
					mergeWorkers = W
				}
				stealTasks(mergeWorkers, W, func(_, w int) {
					copy(next.list[mergeOffs[w]:mergeOffs[w+1]], nextAdds[w])
				})
			} else {
				next.list = next.list[:0]
			}
			for w := range nextAdds {
				nextAdds[w] = nextAdds[w][:0]
			}
			front, next = next, front
			next.reset()
			if front.count == 0 {
				terminated = true
			}
		}

		// Fault barrier: checkpoint if due, then fire a scheduled crash and
		// roll back onto the repartitioned survivors (see RunSyncOpts).
		restore, newPl, err := ft.barrier(step, terminated, account, vals, front.bits, front.count, pl)
		if err != nil {
			return nil, nil, err
		}
		if newPl != nil {
			pl = newPl
			blocks = pl.blocks(both)
			spans = shardSpans(blocks, bounds, pl.M, W)
		}
		if restore != nil {
			copy(vals, restore.Vals)
			front.restore(restore.Active, restore.ActiveCount)
			next.reset()
			if touched != nil {
				// Zero stamps never collide with the positive replay stamps.
				clear(touched)
			}
			step = restore.Step - 1 // loop increment lands on restore.Step
			continue
		}
		if terminated {
			break
		}
	}

	res := account.Finish(prog.Name(), g.Name, nil)
	ft.finish(res)
	return res, vals, nil
}

// shardSpans binary-searches each worker's contiguous group range within
// every machine's destination-grouped block for the given vertex cut points.
func shardSpans(blocks []machineBlocks, bounds []graph.VertexID, m, workers int) []span {
	spans := make([]span, workers*m)
	for w := 0; w < workers; w++ {
		for p := 0; p < m; p++ {
			keys := blocks[p].byDst.Keys
			lo := sort.Search(len(keys), func(i int) bool { return keys[i] >= bounds[w] })
			hi := sort.Search(len(keys), func(i int) bool { return keys[i] >= bounds[w+1] })
			spans[w*m+p] = span{lo: int32(lo), hi: int32(hi)}
		}
	}
	return spans
}

// gatherPrefix builds the per-vertex prefix weights the shard cuts balance
// on: destination-grouped gather records plus one unit per vertex, so
// masterless stretches still spread. Built once per run and shared by the
// gather-shard and apply-chunk cut points.
func gatherPrefix(blocks []machineBlocks, n int) (prefix []int64, total int64) {
	prefix = make([]int64, n+1)
	for v := 0; v < n; v++ {
		prefix[v+1] = 1
	}
	total = int64(n)
	for i := range blocks {
		b := &blocks[i].byDst
		for gi, k := range b.Keys {
			sz := int64(b.Offs[gi+1] - b.Offs[gi])
			prefix[k+1] += sz
			total += sz
		}
	}
	for v := 0; v < n; v++ {
		prefix[v+1] += prefix[v]
	}
	return prefix, total
}

// cutBounds splits the vertex space into ranges of roughly equal prefix
// weight, returning workers+1 ascending cut points.
func cutBounds(prefix []int64, total int64, n, workers int) []graph.VertexID {
	bounds := make([]graph.VertexID, workers+1)
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		v := sort.Search(n, func(i int) bool { return prefix[i+1] >= target })
		bounds[w] = graph.VertexID(v)
	}
	bounds[workers] = graph.VertexID(n)
	return bounds
}
