package engine

import (
	"strings"
	"testing"
)

func traceResult(t *testing.T) *Result {
	t.Helper()
	cl := testCluster(t, "c4.xlarge", "c4.8xlarge")
	coeffs := CostCoeffs{OpsPerGather: 10, BytesPerGather: 10}
	a := NewAccountant(cl, coeffs)
	a.Superstep([]StepCounters{{Gathers: 4e6}, {Gathers: 4e6}})
	a.Superstep([]StepCounters{{Gathers: 2e6}, {Gathers: 8e6}})
	a.Async([]StepCounters{{Gathers: 1e6}, {Gathers: 1e6}})
	return a.Finish("tracetest", "g", nil)
}

func TestTraceRecorded(t *testing.T) {
	res := traceResult(t)
	if len(res.Trace) != 3 {
		t.Fatalf("trace has %d phases, want 3", len(res.Trace))
	}
	if res.Trace[0].Kind != "sync" || res.Trace[2].Kind != "async" {
		t.Errorf("trace kinds = %v/%v", res.Trace[0].Kind, res.Trace[2].Kind)
	}
	// Step 0: equal gathers on unequal machines -> the xlarge straggles.
	if got := res.Trace[0].Straggler(); got != 0 {
		t.Errorf("step 0 straggler = m%d, want m0 (xlarge)", got)
	}
	// Sync barriers must sum (with the async fold) to the makespan.
	sum := 0.0
	for _, st := range res.Trace {
		sum += st.Barrier
	}
	if sum > res.SimSeconds {
		t.Errorf("barrier sum %v exceeds makespan %v", sum, res.SimSeconds)
	}
	// Async rounds carry no per-phase barrier.
	if res.Trace[2].Barrier != 0 {
		t.Errorf("async phase barrier = %v, want 0", res.Trace[2].Barrier)
	}
}

func TestTraceGanttRenders(t *testing.T) {
	res := traceResult(t)
	out := TraceGantt(res, 30)
	for _, want := range []string{"tracetest", "step", "sync", "async", "#", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	// One row per (phase, machine) plus a header.
	lines := strings.Count(out, "\n")
	if lines != 1+3*2 {
		t.Errorf("gantt has %d lines, want 7:\n%s", lines, out)
	}
	// Degenerate inputs do not panic.
	if got := TraceGantt(&Result{}, 5); !strings.Contains(got, "empty trace") {
		t.Errorf("empty trace rendering = %q", got)
	}
}

func TestStragglerShare(t *testing.T) {
	res := traceResult(t)
	shares := StragglerShare(res)
	if len(shares) != 2 {
		t.Fatalf("shares = %v", shares)
	}
	total := shares[0] + shares[1]
	if total < 0.99 || total > 1.01 {
		t.Errorf("straggler shares sum to %v", total)
	}
	// The small machine straggles in steps 0 and 2 (equal load), the big one
	// in step 1 (4x load).
	if shares[0] <= shares[1] {
		t.Errorf("xlarge should straggle more: %v", shares)
	}
	if StragglerShare(&Result{}) != nil {
		t.Error("empty result should yield nil shares")
	}
}

func TestIngressReport(t *testing.T) {
	g := testGraph(10, 200, 4000)
	cl := testCluster(t, "c4.xlarge", "c4.8xlarge")
	pl, err := NewPlacement(g, moduloOwner(g, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Ingress(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("ingress makespan should be positive")
	}
	for p := 0; p < 2; p++ {
		if rep.LoadSeconds[p] <= 0 {
			t.Errorf("machine %d: zero load time", p)
		}
		if rep.LoadSeconds[p]+rep.ExchangeSeconds[p] > rep.Makespan+1e-12 {
			t.Errorf("machine %d exceeds makespan", p)
		}
	}
	// Mismatched cluster errors.
	one := testCluster(t, "c4.xlarge")
	if _, err := Ingress(pl, one); err == nil {
		t.Error("expected machine-count mismatch error")
	}
	// Skewed placements load the loaded machine longer.
	skewOwner := make([]int32, len(g.Edges))
	for i := range skewOwner {
		if i%10 == 0 {
			skewOwner[i] = 1
		}
	}
	skewPl, err := NewPlacement(g, skewOwner, 2)
	if err != nil {
		t.Fatal(err)
	}
	skewRep, err := Ingress(skewPl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if skewRep.LoadSeconds[0] <= skewRep.LoadSeconds[1] {
		t.Error("machine holding 90% of edges should load longer")
	}
	// A single-machine placement exchanges nothing.
	soloRep, err := Ingress(SingleMachine(g), one)
	if err != nil {
		t.Fatal(err)
	}
	if soloRep.ExchangeSeconds[0] != 0 {
		t.Errorf("single machine exchange = %v, want 0", soloRep.ExchangeSeconds[0])
	}
}
