package engine

import (
	"testing"

	"proxygraph/internal/graph"
)

// withShards forces RunSyncParallel to use w workers for the duration of the
// test, so destination sharding is exercised even on single-CPU machines.
func withShards(t *testing.T, w int) {
	t.Helper()
	old := ParallelShards
	ParallelShards = w
	t.Cleanup(func() { ParallelShards = old })
}

func TestRunSyncParallelShardedMatchesSequential(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 7} {
		withShards(t, shards)
		g := testGraph(31, 120, 1200)
		owner := moduloOwner(g, 3)
		pl, err := NewPlacement(g, owner, 3)
		if err != nil {
			t.Fatal(err)
		}
		cl := testCluster(t, "c4.xlarge", "c4.2xlarge", "c4.8xlarge")

		seqRes, seqVals, err := RunSync[float64, float64](rankProgram{}, pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		parRes, parVals, err := RunSyncParallel[float64, float64](rankProgram{}, pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, seqRes, parRes)
		for v := range seqVals {
			if seqVals[v] != parVals[v] {
				t.Fatalf("shards=%d vertex %d: parallel %v != sequential %v", shards, v, parVals[v], seqVals[v])
			}
		}
	}
}

func TestRunSyncParallelShardedFrontier(t *testing.T) {
	for _, shards := range []int{2, 4} {
		withShards(t, shards)
		g := testGraph(32, 120, 800)
		owner := moduloOwner(g, 3)
		pl, err := NewPlacement(g, owner, 3)
		if err != nil {
			t.Fatal(err)
		}
		cl := testCluster(t, "c4.xlarge", "c4.2xlarge", "c4.8xlarge")

		seqRes, seqVals, err := RunSync[uint32, uint32](minProgram{}, pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		parRes, parVals, err := RunSyncParallel[uint32, uint32](minProgram{}, pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, seqRes, parRes)
		for v := range seqVals {
			if seqVals[v] != parVals[v] {
				t.Fatalf("shards=%d vertex %d: parallel %d != sequential %d", shards, v, parVals[v], seqVals[v])
			}
		}
	}
}

func TestShardBoundsCoverAndBalance(t *testing.T) {
	g := testGraph(33, 60, 400)
	owner := moduloOwner(g, 3)
	pl, err := NewPlacement(g, owner, 3)
	if err != nil {
		t.Fatal(err)
	}
	blocks := pl.blocks(false)
	prefix, total := gatherPrefix(blocks, g.NumVertices)
	for _, w := range []int{1, 2, 5} {
		b := cutBounds(prefix, total, g.NumVertices, w)
		if len(b) != w+1 {
			t.Fatalf("w=%d: got %d bounds", w, len(b))
		}
		if b[0] != 0 || b[w] != graph.VertexID(g.NumVertices) {
			t.Fatalf("w=%d: bounds %v do not cover [0,%d)", w, b, g.NumVertices)
		}
		for i := 1; i <= w; i++ {
			if b[i] < b[i-1] {
				t.Fatalf("w=%d: bounds not ascending: %v", w, b)
			}
		}
	}
}
