package partition

import (
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// hdrfTie ranks machine p for seed-deterministic tie-breaking on edge i.
func hdrfTie(seed uint64, i, p int) uint64 {
	return rng.Hash3(seed, uint64(i), uint64(p))
}

// HDRF is the High-Degree (are) Replicated First streaming vertex-cut of
// Petroni et al. (CIKM 2015) — an extension beyond the paper's five
// algorithms, included as a stronger replication-minimizing baseline. For
// each edge it prefers replicating the endpoint whose (partial) degree is
// higher, since hubs will be replicated anyway:
//
//	score(p) = C_rep(p) + Lambda · C_bal(p)
//	C_rep(p) = g(u, p) + g(v, p)
//	g(u, p)  = 1 + (1 − θ(u))   if machine p already hosts u, else 0
//	θ(u)     = δ(u) / (δ(u) + δ(v))   (partial-degree fraction)
//	C_bal(p) = (maxLoad − load(p)) / (1 + maxLoad − minLoad)
//
// The heterogeneity-aware extension applies the same trick as the paper's
// Section II: loads are normalized by the machines' CCR shares, so "least
// loaded" means furthest below the CCR target.
//
// Score ties are broken by a seed-keyed hash of (edge index, machine), not
// by machine order: on the very first edges every machine scores identically
// (no replicas anywhere, all loads zero), so an index-order tie-break would
// bias early placement toward machine 0 regardless of seed. The seed
// parameter affects placement only through this tie-breaking — the scores
// themselves are fully determined by the stream.
type HDRF struct {
	// Lambda weights the balance term (Petroni et al. default 1).
	Lambda float64
}

// NewHDRF returns the algorithm with the published default.
func NewHDRF() *HDRF { return &HDRF{Lambda: 1} }

// Name implements Partitioner.
func (*HDRF) Name() string { return "hdrf" }

// Partition implements Partitioner. Multi-shard runs window-batch the
// stream: a cheap sequential pre-pass advances the partial degrees (two
// increments per edge) recording each edge's degree snapshot, a parallel
// phase turns those into the per-endpoint gather scores g(u,p)'s
// degree-dependent factors and snapshots the replica masks, and the
// sequential commit validates the mask hints with per-vertex epoch stamps
// (stale → re-read live) before scoring. The balance term needs the live
// min/max of the evolving load vector, so the O(m) score scan itself stays in
// the commit loop — windowing moves the per-edge float work off the critical
// path but HDRF remains commit-dominated, unlike oblivious's single-candidate
// fast path. Owner vectors are bit-identical to referenceHDRF at every shard
// count and window size.
func (h *HDRF) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	m := len(shares)
	placed := make([]uint64, g.NumVertices) // replica bitmasks
	partial := make([]int32, g.NumVertices) // streaming partial degrees
	load := make([]float64, m)              // share-normalized loads
	rawLoad := make([]int64, m)
	owner := make([]int32, len(g.Edges))

	// scoreEdge picks edge i's machine from its endpoint replica masks and
	// precomputed gather scores, exactly as the spec's scan.
	scoreEdge := func(i int, maskU, maskV uint64, gU, gV float64) int32 {
		minLoad, maxLoad := load[0], load[0]
		for _, l := range load[1:] {
			if l < minLoad {
				minLoad = l
			}
			if l > maxLoad {
				maxLoad = l
			}
		}
		best := int32(0)
		bestScore := -1.0
		for p := 0; p < m; p++ {
			rep := 0.0
			bit := uint64(1) << uint(p)
			if maskU&bit != 0 {
				rep += gU
			}
			if maskV&bit != 0 {
				rep += gV
			}
			bal := (maxLoad - load[p]) / (1 + maxLoad - minLoad)
			score := rep + h.Lambda*bal
			if score > bestScore {
				bestScore, best = score, int32(p)
			} else if score == bestScore && hdrfTie(seed, i, p) > hdrfTie(seed, i, int(best)) {
				best = int32(p)
			}
		}
		return best
	}

	if resolveShards(len(g.Edges)) == 1 {
		for i, e := range g.Edges {
			partial[e.Src]++
			partial[e.Dst]++
			du, dv := float64(partial[e.Src]), float64(partial[e.Dst])
			thetaU := du / (du + dv)
			thetaV := 1 - thetaU
			best := scoreEdge(i, placed[e.Src], placed[e.Dst], 1+(1-thetaU), 1+(1-thetaV))
			owner[i] = best
			rawLoad[best]++
			// Normalized load: edges relative to the CCR-proportional target.
			load[best] = float64(rawLoad[best]) / (shares[best] * float64(len(g.Edges)+1))
			placed[e.Src] |= 1 << uint(best)
			placed[e.Dst] |= 1 << uint(best)
		}
		return owner, nil
	}

	// touched[v] is the 1-based window index in which placed[v] last gained a
	// bit (see oblivious.go for the epoch scheme).
	touched := make([]int32, g.NumVertices)
	sc := streamScratchPool.Get().(*streamScratch)
	defer streamScratchPool.Put(sc)
	w := streamWindowSize
	sc.maskU, sc.maskV = growMasks(sc.maskU, w), growMasks(sc.maskV, w)
	sc.gU, sc.gV = growFloats(sc.gU, w), growFloats(sc.gV, w)
	sc.du, sc.dv = growInts(sc.du, w), growInts(sc.dv, w)
	for lo := 0; lo < len(g.Edges); lo += w {
		hi := lo + w
		if hi > len(g.Edges) {
			hi = len(g.Edges)
		}
		win := int32(lo/w) + 1
		// Degree pre-pass: the partial degrees an edge scores with are those
		// after its own endpoints' increments, captured here in stream order.
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			partial[e.Src]++
			partial[e.Dst]++
			sc.du[i-lo] = partial[e.Src]
			sc.dv[i-lo] = partial[e.Dst]
		}
		parallelRanges(hi-lo, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				e := g.Edges[lo+r]
				sc.maskU[r] = placed[e.Src]
				sc.maskV[r] = placed[e.Dst]
				du, dv := float64(sc.du[r]), float64(sc.dv[r])
				thetaU := du / (du + dv)
				thetaV := 1 - thetaU
				sc.gU[r] = 1 + (1 - thetaU)
				sc.gV[r] = 1 + (1 - thetaV)
			}
		})
		for i := lo; i < hi; i++ {
			r := i - lo
			e := g.Edges[i]
			maskU, maskV := sc.maskU[r], sc.maskV[r]
			if touched[e.Src] == win {
				maskU = placed[e.Src]
			}
			if touched[e.Dst] == win {
				maskV = placed[e.Dst]
			}
			best := scoreEdge(i, maskU, maskV, sc.gU[r], sc.gV[r])
			owner[i] = best
			rawLoad[best]++
			load[best] = float64(rawLoad[best]) / (shares[best] * float64(len(g.Edges)+1))
			bit := uint64(1) << uint(best)
			if placed[e.Src]&bit == 0 {
				placed[e.Src] |= bit
				touched[e.Src] = win
			}
			if placed[e.Dst]&bit == 0 {
				placed[e.Dst] |= bit
				touched[e.Dst] = win
			}
		}
	}
	return owner, nil
}
