package partition

import (
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// hdrfTie ranks machine p for seed-deterministic tie-breaking on edge i.
func hdrfTie(seed uint64, i, p int) uint64 {
	return rng.Hash3(seed, uint64(i), uint64(p))
}

// HDRF is the High-Degree (are) Replicated First streaming vertex-cut of
// Petroni et al. (CIKM 2015) — an extension beyond the paper's five
// algorithms, included as a stronger replication-minimizing baseline. For
// each edge it prefers replicating the endpoint whose (partial) degree is
// higher, since hubs will be replicated anyway:
//
//	score(p) = C_rep(p) + Lambda · C_bal(p)
//	C_rep(p) = g(u, p) + g(v, p)
//	g(u, p)  = 1 + (1 − θ(u))   if machine p already hosts u, else 0
//	θ(u)     = δ(u) / (δ(u) + δ(v))   (partial-degree fraction)
//	C_bal(p) = (maxLoad − load(p)) / (1 + maxLoad − minLoad)
//
// The heterogeneity-aware extension applies the same trick as the paper's
// Section II: loads are normalized by the machines' CCR shares, so "least
// loaded" means furthest below the CCR target.
//
// Score ties are broken by a seed-keyed hash of (edge index, machine), not
// by machine order: on the very first edges every machine scores identically
// (no replicas anywhere, all loads zero), so an index-order tie-break would
// bias early placement toward machine 0 regardless of seed. The seed
// parameter affects placement only through this tie-breaking — the scores
// themselves are fully determined by the stream.
type HDRF struct {
	// Lambda weights the balance term (Petroni et al. default 1).
	Lambda float64
}

// NewHDRF returns the algorithm with the published default.
func NewHDRF() *HDRF { return &HDRF{Lambda: 1} }

// Name implements Partitioner.
func (*HDRF) Name() string { return "hdrf" }

// Partition implements Partitioner.
func (h *HDRF) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	m := len(shares)
	placed := make([]uint64, g.NumVertices) // replica bitmasks
	partial := make([]int32, g.NumVertices) // streaming partial degrees
	load := make([]float64, m)              // share-normalized loads
	rawLoad := make([]int64, m)

	owner := make([]int32, len(g.Edges))
	for i, e := range g.Edges {
		partial[e.Src]++
		partial[e.Dst]++
		du, dv := float64(partial[e.Src]), float64(partial[e.Dst])
		thetaU := du / (du + dv)
		thetaV := 1 - thetaU

		minLoad, maxLoad := load[0], load[0]
		for _, l := range load[1:] {
			if l < minLoad {
				minLoad = l
			}
			if l > maxLoad {
				maxLoad = l
			}
		}
		best := int32(0)
		bestScore := -1.0
		for p := 0; p < m; p++ {
			rep := 0.0
			bit := uint64(1) << uint(p)
			if placed[e.Src]&bit != 0 {
				rep += 1 + (1 - thetaU)
			}
			if placed[e.Dst]&bit != 0 {
				rep += 1 + (1 - thetaV)
			}
			bal := (maxLoad - load[p]) / (1 + maxLoad - minLoad)
			score := rep + h.Lambda*bal
			if score > bestScore {
				bestScore, best = score, int32(p)
			} else if score == bestScore && hdrfTie(seed, i, p) > hdrfTie(seed, i, int(best)) {
				best = int32(p)
			}
		}
		owner[i] = best
		rawLoad[best]++
		// Normalized load: edges relative to the CCR-proportional target.
		load[best] = float64(rawLoad[best]) / (shares[best] * float64(len(g.Edges)+1))
		placed[e.Src] |= 1 << uint(best)
		placed[e.Dst] |= 1 << uint(best)
	}
	return owner, nil
}
