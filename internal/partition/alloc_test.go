package partition

import (
	"testing"

	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

// Allocation guards for the ingress hot paths. The budgets are deliberately
// loose multiples of the measured steady state (pools warm, which
// AllocsPerRun's warm-up call guarantees) so they only trip on a regression
// class — a per-edge or per-vertex allocation sneaking back in — not on
// incidental churn. Ginger's guard is the headline: its refinement sweep
// allocated ~200k times per call (per-row sort.Slice inside the sorted CSR
// build) before the pooled unsorted CSR arena cut it to the low hundreds.
const (
	randomAllocBudget = 200
	hybridAllocBudget = 200
	gingerAllocBudget = 5000
)

func allocGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Spec{
		Name: "alloc", Vertices: 20000, Edges: 160000, Kind: gen.KindPowerLaw,
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIngressAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budgets only hold in normal builds")
	}
	g := allocGraph(t)
	shares := UniformShares(8)
	cases := []struct {
		name   string
		budget float64
		p      Partitioner
	}{
		{"random", randomAllocBudget, NewRandomHash()},
		{"hybrid", hybridAllocBudget, NewHybrid()},
		{"ginger", gingerAllocBudget, NewGinger()},
	}
	for _, shards := range []int{1, 8} {
		setShards(t, shards)
		for _, c := range cases {
			t.Run(c.name, func(t *testing.T) {
				avg := testing.AllocsPerRun(3, func() {
					if _, err := c.p.Partition(g, shares, 7); err != nil {
						t.Fatal(err)
					}
				})
				t.Logf("%s shards=%d: %.0f allocs/op", c.name, shards, avg)
				if avg > c.budget {
					t.Errorf("%s shards=%d: %.0f allocs/op exceeds budget %.0f",
						c.name, shards, avg, c.budget)
				}
			})
		}
	}
}

// TestHybridShardedBytesRegression pins the fix for the sharded ingress
// memory blowup: hybrid at 8 shards used to allocate a fresh workers×|V|
// count matrix inside the parallel in-degree scan (9.6MB/op vs 6.8MB at one
// shard on the tracked benchmark). With the pooled degree scratch the sharded
// path must stay within a small factor of the single-shard bytes.
func TestHybridShardedBytesRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews bytes/op")
	}
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	g := allocGraph(t)
	shares := UniformShares(8)
	h := NewHybrid()
	run := func(shards int) testing.BenchmarkResult {
		prev := ParallelShards
		ParallelShards = shards
		defer func() { ParallelShards = prev }()
		// Warm the degree-scratch pool so the measurement sees steady state.
		if _, err := h.Partition(g, shares, 7); err != nil {
			t.Fatal(err)
		}
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := h.Partition(g, shares, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	one := run(1)
	eight := run(8)
	b1, b8 := one.AllocedBytesPerOp(), eight.AllocedBytesPerOp()
	t.Logf("hybrid bytes/op: shards1=%d shards8=%d", b1, b8)
	if b1 == 0 {
		t.Fatal("no bytes measured at one shard")
	}
	if ratio := float64(b8) / float64(b1); ratio > 1.15 {
		t.Errorf("sharded hybrid allocates %.2fx the single-shard bytes (%d vs %d); scratch is no longer pooled",
			ratio, b8, b1)
	}
}
