package partition

import (
	"testing"

	"proxygraph/internal/rng"
)

// setShards overrides the package worker knob for one test.
func setShards(t *testing.T, n int) {
	t.Helper()
	prev := ParallelShards
	ParallelShards = n
	t.Cleanup(func() { ParallelShards = prev })
}

// setWindows shrinks the window-batching sizes for one test, forcing many
// windows (and the cross-window hint validation paths) on small test graphs.
func setWindows(t *testing.T, n int) {
	t.Helper()
	prevG, prevS := gingerWindowSize, streamWindowSize
	gingerWindowSize, streamWindowSize = n, n
	t.Cleanup(func() { gingerWindowSize, streamWindowSize = prevG, prevS })
}

// diffShareVectors are the share shapes the differential suite sweeps: the
// homogeneous baseline and a CCR-like skew (Case 2's 1:3.5 extended).
func diffShareVectors(t *testing.T, m int) [][]float64 {
	t.Helper()
	vectors := [][]float64{UniformShares(m)}
	if m > 1 {
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = 1 + 2.5*float64(i)/float64(m-1)
		}
		skewed, err := NormalizeShares(weights)
		if err != nil {
			t.Fatal(err)
		}
		vectors = append(vectors, skewed)
	}
	return vectors
}

// TestIngressDifferential pins the parallel production partitioners to their
// sequential executable specs: random, hybrid, ginger, oblivious and hdrf
// must produce bit-identical owner vectors to reference.go at every shard
// count, window size, machine count and share shape, and every partitioner
// must be invariant to the shard and window knobs. The 64-entry window forces
// dozens of windows on the test graph, exercising the cross-window hint
// validation (ginger's histogram patching, the streaming epoch stamps) that a
// single window would never hit.
func TestIngressDifferential(t *testing.T) {
	g := testGraph(t, 71, 800, 6400)
	const seed = 101
	for _, m := range []int{1, 2, 4, 7, 8} {
		for si, shares := range diffShareVectors(t, m) {
			refs := map[string][]int32{
				"random":    referenceRandom(g, shares, seed),
				"hybrid":    referenceHybrid(NewHybrid(), g, shares, seed),
				"ginger":    referenceGinger(NewGinger(), g, shares, seed),
				"oblivious": referenceOblivious(g, shares),
				"hdrf":      referenceHDRF(NewHDRF(), g, shares, seed),
			}
			// Baseline owner vectors, shared across every shard count and
			// window size: the knobs must never change a single edge.
			base := map[string][]int32{}
			for _, window := range []int{64, 4096} {
				setWindows(t, window)
				for _, shards := range []int{1, 2, 3, 8} {
					setShards(t, shards)
					for _, p := range WithExtensions() {
						owner, err := p.Partition(g, shares, seed)
						if err != nil {
							t.Fatalf("%s/m=%d/shares=%d/shards=%d: %v", p.Name(), m, si, shards, err)
						}
						if want, ok := refs[p.Name()]; ok {
							for i := range owner {
								if owner[i] != want[i] {
									t.Fatalf("%s/m=%d/shares=%d/shards=%d/window=%d: edge %d owner %d, reference %d",
										p.Name(), m, si, shards, window, i, owner[i], want[i])
								}
							}
						}
						if prev, ok := base[p.Name()]; !ok {
							base[p.Name()] = owner
						} else {
							for i := range owner {
								if owner[i] != prev[i] {
									t.Fatalf("%s/m=%d/shares=%d: shards %d window %d changed edge %d (%d vs %d)",
										p.Name(), m, si, shards, window, i, owner[i], prev[i])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestPickerMatchesPick checks the quantized lookup against the binary-search
// contract on dense and adversarially tiny shares.
func TestPickerMatchesPick(t *testing.T) {
	vectors := [][]float64{
		{1},
		{0.5, 0.5},
		{0.001, 0.999},
		{0.999, 0.001},
	}
	for m := 2; m <= 64; m *= 2 {
		vectors = append(vectors, UniformShares(m))
		weights := make([]float64, m)
		for i := range weights {
			weights[i] = float64(i + 1)
		}
		skewed, err := NormalizeShares(weights)
		if err != nil {
			t.Fatal(err)
		}
		vectors = append(vectors, skewed)
	}
	for vi, shares := range vectors {
		pk := newPicker(shares)
		cum := cumulative(shares)
		for i := 0; i < 20000; i++ {
			h := rng.Hash2(uint64(vi), uint64(i))
			if got, want := pk.pick(h), pick(cum, h); got != want {
				t.Fatalf("shares %v hash %#x: picker %d, pick %d", shares, h, got, want)
			}
		}
		// Boundary hashes: u exactly at bucket edges and cumulative points.
		for _, h := range []uint64{0, ^uint64(0), 1 << 11, (1 << 63) + (1 << 11)} {
			if got, want := pk.pick(h), pick(cum, h); got != want {
				t.Fatalf("shares %v boundary hash %#x: picker %d, pick %d", shares, h, got, want)
			}
		}
	}
}

// TestUnionBest is the regression test for the grid fallback: the old
// append(su, sv...) both aliased the cached constraint slice (when su had
// spare capacity, appending overwrote the cache's backing array) and scored
// machines in su ∩ sv twice. unionBest must score each machine exactly once
// and never write through its arguments.
func TestUnionBest(t *testing.T) {
	// su has spare capacity: append(su, sv...) would have clobbered backing[2].
	backing := []int32{0, 1, 99}
	su := backing[:2]
	sv := []int32{1, 2}
	inSet := make([]bool, 4)
	for _, p := range su {
		inSet[p] = true
	}
	calls := map[int32]int{}
	score := func(p int32) float64 {
		calls[p]++
		return float64(p) // machine 2 wins
	}
	if best := unionBest(su, sv, inSet, score); best != 2 {
		t.Fatalf("unionBest = %d, want 2", best)
	}
	if backing[2] != 99 {
		t.Fatalf("unionBest wrote through its argument: backing = %v", backing)
	}
	for p, n := range calls {
		if n != 1 {
			t.Errorf("machine %d scored %d times, want exactly once", p, n)
		}
	}
	if len(calls) != 3 {
		t.Errorf("scored %d machines, want the 3 distinct members of the union", len(calls))
	}
}

// TestGridNonSquareMachineCounts exercises the shapes that use the fallback
// machinery: a 2x3 grid and a prime (1x7, pure weighted greedy).
func TestGridNonSquareMachineCounts(t *testing.T) {
	g := testGraph(t, 73, 600, 4800)
	for _, m := range []int{6, 7} {
		for si, shares := range diffShareVectors(t, m) {
			a, err := NewGrid().Partition(g, shares, 79)
			if err != nil {
				t.Fatalf("grid/m=%d/shares=%d: %v", m, si, err)
			}
			edgeShares(t, g, a, m) // validates ownership range
			b, err := NewGrid().Partition(g, shares, 79)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("grid/m=%d/shares=%d: nondeterministic at edge %d", m, si, i)
				}
			}
		}
	}
}

// TestHDRFSeedAffectsTieBreaks pins the seed semantics: HDRF is deterministic
// per seed, and distinct seeds resolve the early all-tied edges differently
// instead of always handing them to machine 0.
func TestHDRFSeedAffectsTieBreaks(t *testing.T) {
	g := testGraph(t, 77, 400, 3200)
	shares := UniformShares(4)
	h := NewHDRF()
	a1, err := h.Partition(g, shares, 1)
	if err != nil {
		t.Fatal(err)
	}
	a1again, err := h.Partition(g, shares, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a1again[i] {
			t.Fatalf("hdrf nondeterministic at edge %d for a fixed seed", i)
		}
	}
	// The first edge of the stream is a full tie (no replicas, all loads
	// zero): across a handful of seeds its placement must vary.
	first := map[int32]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		owner, err := h.Partition(g, shares, seed)
		if err != nil {
			t.Fatal(err)
		}
		first[owner[0]] = true
	}
	if len(first) < 2 {
		t.Errorf("first-edge placement identical across 8 seeds (%v): seed is still ignored", first)
	}
}
