//go:build !race

package partition

// raceEnabled reports whether the race detector instruments this test binary;
// the alloc-count guards skip under it (instrumentation allocates).
const raceEnabled = false
