package partition

import (
	"math/bits"

	"proxygraph/internal/graph"
)

// Oblivious is PowerGraph's greedy streaming vertex-cut (Section II-B2):
// each edge prefers machines that already host its endpoints, breaking ties
// toward the least-loaded machine. The heterogeneity-aware extension
// normalizes each machine's load by its share, so "least loaded" means
// furthest below its CCR-proportional target.
type Oblivious struct{}

// NewOblivious returns the algorithm.
func NewOblivious() *Oblivious { return &Oblivious{} }

// Name implements Partitioner.
func (*Oblivious) Name() string { return "oblivious" }

// obliviousCandidates derives an edge's candidate machine set from its
// endpoints' replica masks: machines hosting both endpoints (no new mirror),
// else machines hosting either (one new mirror), else everyone.
func obliviousCandidates(maskU, maskV, allMask uint64) uint64 {
	switch {
	case maskU&maskV != 0:
		return maskU & maskV
	case maskU != 0 && maskV != 0:
		return maskU | maskV
	case maskU != 0:
		return maskU
	case maskV != 0:
		return maskV
	}
	return allMask
}

// Partition implements Partitioner. The stream is order-dependent (each
// placement updates the replica masks and loads the next edge reads), so
// multi-shard runs window-batch it: a parallel phase computes every window
// edge's candidate mask against the replica masks frozen at the window
// boundary, and the sequential commit consumes a hint only when neither
// endpoint's mask changed inside the window (per-vertex epoch stamps),
// recomputing from live state otherwise. Single-candidate hints commit
// without touching the load vector at all — the common case once the stream
// warms up, since most edges land inside an endpoint's existing replica set.
// Owner vectors are bit-identical to referenceOblivious at every shard count
// and window size.
func (*Oblivious) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	m := len(shares)
	// placed[v] is the bitmask of machines already hosting a replica of v.
	placed := make([]uint64, g.NumVertices)
	load := make([]int64, m)
	owner := make([]int32, len(g.Edges))
	allMask := uint64(1)<<uint(m) - 1

	// pickBest resolves a non-empty candidate set exactly as the spec's scan:
	// lowest normalized load, first index winning ties. A single candidate
	// needs no scan — the scan could only return that machine.
	pickBest := func(candidates uint64) int32 {
		if candidates&(candidates-1) == 0 {
			return int32(bits.TrailingZeros64(candidates))
		}
		best := int32(-1)
		bestScore := 0.0
		for mask := candidates; mask != 0; mask &= mask - 1 {
			p := int32(bits.TrailingZeros64(mask))
			// Normalized load: edges held relative to the CCR target share.
			score := float64(load[p]) / shares[p]
			if best == -1 || score < bestScore {
				best, bestScore = p, score
			}
		}
		return best
	}

	if resolveShards(len(g.Edges)) == 1 {
		for i, e := range g.Edges {
			best := pickBest(obliviousCandidates(placed[e.Src], placed[e.Dst], allMask))
			owner[i] = best
			load[best]++
			placed[e.Src] |= 1 << uint(best)
			placed[e.Dst] |= 1 << uint(best)
		}
		return owner, nil
	}

	// touched[v] is the 1-based window index in which placed[v] last gained a
	// bit; a hint is stale iff either endpoint was touched in the current
	// window (earlier windows' changes are already in the snapshot).
	touched := make([]int32, g.NumVertices)
	sc := streamScratchPool.Get().(*streamScratch)
	defer streamScratchPool.Put(sc)
	sc.cand = growMasks(sc.cand, streamWindowSize)
	cand := sc.cand
	for lo := 0; lo < len(g.Edges); lo += streamWindowSize {
		hi := lo + streamWindowSize
		if hi > len(g.Edges) {
			hi = len(g.Edges)
		}
		win := int32(lo/streamWindowSize) + 1
		parallelRanges(hi-lo, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				e := g.Edges[lo+r]
				cand[r] = obliviousCandidates(placed[e.Src], placed[e.Dst], allMask)
			}
		})
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			candidates := cand[i-lo]
			if touched[e.Src] == win || touched[e.Dst] == win {
				candidates = obliviousCandidates(placed[e.Src], placed[e.Dst], allMask)
			}
			best := pickBest(candidates)
			owner[i] = best
			load[best]++
			bit := uint64(1) << uint(best)
			if placed[e.Src]&bit == 0 {
				placed[e.Src] |= bit
				touched[e.Src] = win
			}
			if placed[e.Dst]&bit == 0 {
				placed[e.Dst] |= bit
				touched[e.Dst] = win
			}
		}
	}
	return owner, nil
}
