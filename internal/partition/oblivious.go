package partition

import (
	"math/bits"

	"proxygraph/internal/graph"
)

// Oblivious is PowerGraph's greedy streaming vertex-cut (Section II-B2):
// each edge prefers machines that already host its endpoints, breaking ties
// toward the least-loaded machine. The heterogeneity-aware extension
// normalizes each machine's load by its share, so "least loaded" means
// furthest below its CCR-proportional target.
type Oblivious struct{}

// NewOblivious returns the algorithm.
func NewOblivious() *Oblivious { return &Oblivious{} }

// Name implements Partitioner.
func (*Oblivious) Name() string { return "oblivious" }

// Partition implements Partitioner.
func (*Oblivious) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	m := len(shares)
	// placed[v] is the bitmask of machines already hosting a replica of v.
	placed := make([]uint64, g.NumVertices)
	load := make([]int64, m)

	owner := make([]int32, len(g.Edges))
	allMask := uint64(1)<<uint(m) - 1
	for i, e := range g.Edges {
		maskU, maskV := placed[e.Src], placed[e.Dst]
		var candidates uint64
		switch {
		case maskU&maskV != 0:
			// Some machine hosts both endpoints: reuse it (no new mirror).
			candidates = maskU & maskV
		case maskU != 0 && maskV != 0:
			// Both endpoints placed but disjoint: one new mirror either way.
			candidates = maskU | maskV
		case maskU != 0:
			candidates = maskU
		case maskV != 0:
			candidates = maskV
		default:
			candidates = allMask
		}
		best := int32(-1)
		bestScore := 0.0
		for mask := candidates; mask != 0; mask &= mask - 1 {
			p := int32(bits.TrailingZeros64(mask))
			// Normalized load: edges held relative to the CCR target share.
			score := float64(load[p]) / shares[p]
			if best == -1 || score < bestScore {
				best, bestScore = p, score
			}
		}
		owner[i] = best
		load[best]++
		placed[e.Src] |= 1 << uint(best)
		placed[e.Dst] |= 1 << uint(best)
	}
	return owner, nil
}
