package partition

import (
	"testing"
	"testing/quick"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// arbitraryGraph builds a small graph from fuzz input.
func arbitraryGraph(seed uint64, rawN, rawM uint16) *graph.Graph {
	n := 2 + int(rawN%500)
	m := 1 + int(rawM%4000)
	src := rng.New(seed)
	g := &graph.Graph{Name: "prop", NumVertices: n}
	for len(g.Edges) < m {
		u := graph.VertexID(src.Intn(n))
		v := graph.VertexID(src.Intn(n))
		if u != v {
			g.Edges = append(g.Edges, graph.Edge{Src: u, Dst: v})
		}
	}
	return g
}

// arbitraryShares builds a valid normalized share vector from fuzz input.
func arbitraryShares(raw []uint8) []float64 {
	m := 1 + len(raw)%7
	ws := make([]float64, m)
	for i := range ws {
		w := 1.0
		if i < len(raw) {
			w = 1 + float64(raw[i])
		}
		ws[i] = w
	}
	shares, _ := NormalizeShares(ws)
	return shares
}

// TestPropertyAllPartitionersTotal checks, for every algorithm and random
// graph/share/seed combinations: every edge assigned, every owner in range,
// and assignment deterministic.
func TestPropertyAllPartitionersTotal(t *testing.T) {
	for _, p := range WithExtensions() {
		p := p
		f := func(seed uint64, rawN, rawM uint16, rawShares []uint8) bool {
			g := arbitraryGraph(seed, rawN, rawM)
			shares := arbitraryShares(rawShares)
			owner, err := p.Partition(g, shares, seed)
			if err != nil {
				return false
			}
			if len(owner) != len(g.Edges) {
				return false
			}
			for _, o := range owner {
				if o < 0 || int(o) >= len(shares) {
					return false
				}
			}
			again, err := p.Partition(g, shares, seed)
			if err != nil {
				return false
			}
			for i := range owner {
				if owner[i] != again[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

// TestPropertyPlacementInvariants checks that finalization preserves the
// structural invariants for arbitrary assignments.
func TestPropertyPlacementInvariants(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16, rawShares []uint8) bool {
		g := arbitraryGraph(seed, rawN, rawM)
		shares := arbitraryShares(rawShares)
		pl, err := Apply(NewRandomHash(), g, shares, seed)
		if err != nil {
			return false
		}
		// Edge conservation.
		total := int64(0)
		for _, c := range pl.EdgeCounts() {
			total += c
		}
		if total != int64(len(g.Edges)) {
			return false
		}
		// Replication factor bounds.
		rf := pl.ReplicationFactor()
		if rf < 1 || rf > float64(len(shares)) {
			return false
		}
		// Masters sit on replica machines for every connected vertex.
		for v := 0; v < g.NumVertices; v++ {
			mask := pl.ReplicaMask[v]
			if mask != 0 && mask&(1<<uint(pl.Master[v])) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGridReplicationBound checks HDRF-independent structural bound:
// grid replicas never exceed rows+cols-1.
func TestPropertyGridReplicationBound(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16, rawMachines uint8) bool {
		g := arbitraryGraph(seed, rawN, rawM)
		m := 1 + int(rawMachines%12)
		shares := UniformShares(m)
		pl, err := Apply(NewGrid(), g, shares, seed)
		if err != nil {
			return false
		}
		rows, cols := gridShape(m)
		bound := rows + cols - 1
		for v := 0; v < g.NumVertices; v++ {
			count := 0
			for mask := pl.ReplicaMask[v]; mask != 0; mask &= mask - 1 {
				count++
			}
			if count > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyHybridLowDegreeColocation checks Hybrid's defining invariant on
// arbitrary graphs.
func TestPropertyHybridLowDegreeColocation(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16) bool {
		g := arbitraryGraph(seed, rawN, rawM)
		h := NewHybrid()
		owner, err := h.Partition(g, UniformShares(4), seed)
		if err != nil {
			return false
		}
		inDeg := g.InDegrees()
		at := map[graph.VertexID]int32{}
		for i, e := range g.Edges {
			if inDeg[e.Dst] > h.Threshold {
				continue
			}
			if prev, ok := at[e.Dst]; ok && prev != owner[i] {
				return false
			}
			at[e.Dst] = owner[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

var _ = engine.MaxMachines
