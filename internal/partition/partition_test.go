package partition

import (
	"math"
	"testing"

	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

func testGraph(t *testing.T, seed uint64, n, m int) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Spec{
		Name: "part-test", Vertices: int64(n), Edges: int64(m), Kind: gen.KindPowerLaw,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func edgeShares(t *testing.T, g *graph.Graph, owner []int32, m int) []float64 {
	t.Helper()
	counts := make([]float64, m)
	for i, p := range owner {
		if p < 0 || int(p) >= m {
			t.Fatalf("edge %d assigned to %d outside [0,%d)", i, p, m)
		}
		counts[p]++
	}
	for i := range counts {
		counts[i] /= float64(len(owner))
	}
	return counts
}

func TestAllAndByName(t *testing.T) {
	ps := All()
	if len(ps) != 5 {
		t.Fatalf("All() = %d algorithms, want the paper's 5", len(ps))
	}
	want := []string{"random", "oblivious", "grid", "hybrid", "ginger"}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Errorf("algorithm %d = %q, want %q", i, p.Name(), want[i])
		}
		got, err := ByName(want[i])
		if err != nil || got.Name() != want[i] {
			t.Errorf("ByName(%q) failed: %v", want[i], err)
		}
	}
	if _, err := ByName("metis"); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestUniformShares(t *testing.T) {
	s := UniformShares(4)
	for _, v := range s {
		if v != 0.25 {
			t.Fatalf("UniformShares(4) = %v", s)
		}
	}
}

func TestNormalizeShares(t *testing.T) {
	s, err := NormalizeShares([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 0.25 || s[1] != 0.75 {
		t.Errorf("NormalizeShares = %v", s)
	}
	if _, err := NormalizeShares(nil); err == nil {
		t.Error("empty weights should error")
	}
	if _, err := NormalizeShares([]float64{1, 0}); err == nil {
		t.Error("zero weight should error")
	}
	if _, err := NormalizeShares([]float64{1, -2}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestPartitionersRejectBadShares(t *testing.T) {
	g := testGraph(t, 1, 100, 500)
	for _, p := range All() {
		if _, err := p.Partition(g, nil, 1); err == nil {
			t.Errorf("%s: empty shares should error", p.Name())
		}
		if _, err := p.Partition(g, []float64{0.2, 0.2}, 1); err == nil {
			t.Errorf("%s: non-normalized shares should error", p.Name())
		}
		if _, err := p.Partition(g, []float64{1.5, -0.5}, 1); err == nil {
			t.Errorf("%s: negative share should error", p.Name())
		}
	}
}

func TestPartitionersCoverAllEdges(t *testing.T) {
	g := testGraph(t, 2, 500, 4000)
	for _, m := range []int{1, 2, 4, 9} {
		shares := UniformShares(m)
		for _, p := range All() {
			owner, err := p.Partition(g, shares, 7)
			if err != nil {
				t.Fatalf("%s/m=%d: %v", p.Name(), m, err)
			}
			if len(owner) != len(g.Edges) {
				t.Fatalf("%s/m=%d: owner length %d", p.Name(), m, len(owner))
			}
			edgeShares(t, g, owner, m) // validates range
		}
	}
}

func TestPartitionersDeterministic(t *testing.T) {
	g := testGraph(t, 3, 300, 2000)
	shares := UniformShares(4)
	for _, p := range All() {
		a, err := p.Partition(g, shares, 11)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Partition(g, shares, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: assignment not deterministic at edge %d", p.Name(), i)
			}
		}
	}
}

func TestUniformSharesBalance(t *testing.T) {
	g := testGraph(t, 4, 2000, 20000)
	const m = 4
	for _, p := range All() {
		owner, err := p.Partition(g, UniformShares(m), 13)
		if err != nil {
			t.Fatal(err)
		}
		got := edgeShares(t, g, owner, m)
		for i, s := range got {
			if math.Abs(s-0.25) > 0.08 {
				t.Errorf("%s: machine %d got share %.3f, want ~0.25", p.Name(), i, s)
			}
		}
	}
}

func TestWeightedSharesFollowCCR(t *testing.T) {
	// The core heterogeneity-aware property (Fig 4): edge shares track the
	// CCR-derived target.
	g := testGraph(t, 5, 2000, 24000)
	target := []float64{0.1, 0.2, 0.3, 0.4}
	for _, p := range All() {
		owner, err := p.Partition(g, target, 17)
		if err != nil {
			t.Fatal(err)
		}
		got := edgeShares(t, g, owner, len(target))
		for i, s := range got {
			// Grid's constraint sets and Oblivious' locality heuristics trade
			// some balance for mirrors ("do not guarantee an exact balance in
			// accordance with CCR"), so allow slack.
			if math.Abs(s-target[i]) > 0.10 {
				t.Errorf("%s: machine %d share %.3f, target %.3f", p.Name(), i, s, target[i])
			}
		}
	}
}

func TestTwoMachineWeighted(t *testing.T) {
	// The paper's Case 2 shape: shares 1:3.5.
	g := testGraph(t, 6, 3000, 30000)
	shares, err := NormalizeShares([]float64{1, 3.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range All() {
		owner, err := p.Partition(g, shares, 19)
		if err != nil {
			t.Fatal(err)
		}
		got := edgeShares(t, g, owner, 2)
		if math.Abs(got[1]-shares[1]) > 0.09 {
			t.Errorf("%s: fast machine share %.3f, want ~%.3f", p.Name(), got[1], shares[1])
		}
	}
}

func replicationFactor(t *testing.T, g *graph.Graph, owner []int32, m int) float64 {
	t.Helper()
	pl, err := engine.NewPlacement(g, owner, m)
	if err != nil {
		t.Fatal(err)
	}
	return pl.ReplicationFactor()
}

func TestObliviousBeatsRandomOnReplication(t *testing.T) {
	// Oblivious's whole point is fewer mirrors than random hashing.
	g := testGraph(t, 7, 2000, 16000)
	const m = 8
	shares := UniformShares(m)
	rnd, err := NewRandomHash().Partition(g, shares, 23)
	if err != nil {
		t.Fatal(err)
	}
	obl, err := NewOblivious().Partition(g, shares, 23)
	if err != nil {
		t.Fatal(err)
	}
	rfRnd := replicationFactor(t, g, rnd, m)
	rfObl := replicationFactor(t, g, obl, m)
	if rfObl >= rfRnd {
		t.Errorf("oblivious replication %.2f >= random %.2f", rfObl, rfRnd)
	}
}

func TestGridBoundsReplication(t *testing.T) {
	// In a rows×cols grid, a vertex's replicas live in one row plus one
	// column: at most rows+cols-1 machines.
	g := testGraph(t, 8, 1000, 12000)
	const m = 9 // 3x3
	owner, err := NewGrid().Partition(g, UniformShares(m), 29)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := engine.NewPlacement(g, owner, m)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices; v++ {
		replicas := 0
		for mask := pl.ReplicaMask[v]; mask != 0; mask &= mask - 1 {
			replicas++
		}
		if replicas > 5 { // 3+3-1
			t.Fatalf("vertex %d has %d replicas, grid bound is 5", v, replicas)
		}
	}
}

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 9: {3, 3}, 12: {3, 4}, 16: {4, 4}, 7: {1, 7},
	}
	for m, want := range cases {
		r, c := gridShape(m)
		if r != want[0] || c != want[1] {
			t.Errorf("gridShape(%d) = %dx%d, want %dx%d", m, r, c, want[0], want[1])
		}
		if r*c != m {
			t.Errorf("gridShape(%d) does not multiply back", m)
		}
	}
}

func TestHybridGroupsLowDegreeInEdges(t *testing.T) {
	// All in-edges of a low-degree vertex must land on one machine.
	g := testGraph(t, 9, 1500, 9000)
	h := NewHybrid()
	owner, err := h.Partition(g, UniformShares(4), 31)
	if err != nil {
		t.Fatal(err)
	}
	inDeg := g.InDegrees()
	at := map[graph.VertexID]int32{}
	for i, e := range g.Edges {
		if inDeg[e.Dst] > h.Threshold {
			continue
		}
		if prev, ok := at[e.Dst]; ok && prev != owner[i] {
			t.Fatalf("low-degree vertex %d has in-edges on machines %d and %d", e.Dst, prev, owner[i])
		}
		at[e.Dst] = owner[i]
	}
}

func TestHybridCutsHighDegreeVertices(t *testing.T) {
	// A star graph: the center has in-degree >> threshold, so its in-edges
	// must spread across machines (vertex cut), not pile on one.
	const n = 4000
	g := &graph.Graph{NumVertices: n}
	for v := 1; v < n; v++ {
		g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(v), Dst: 0})
	}
	owner, err := NewHybrid().Partition(g, UniformShares(4), 37)
	if err != nil {
		t.Fatal(err)
	}
	got := edgeShares(t, g, owner, 4)
	for p, s := range got {
		if math.Abs(s-0.25) > 0.05 {
			t.Errorf("machine %d got %.3f of the star's edges, want ~0.25", p, s)
		}
	}
}

func TestGingerLowersReplicationVsHybrid(t *testing.T) {
	// Ginger's re-placement should colocate neighborhoods: replication at or
	// below Hybrid's on a clustered graph.
	g, err := gen.Generate(gen.Spec{
		Name: "ginger-test", Vertices: 3000, Edges: 24000, Kind: gen.KindSocial,
	}, 41)
	if err != nil {
		t.Fatal(err)
	}
	const m = 4
	shares := UniformShares(m)
	hb, err := NewHybrid().Partition(g, shares, 43)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := NewGinger().Partition(g, shares, 43)
	if err != nil {
		t.Fatal(err)
	}
	rfH := replicationFactor(t, g, hb, m)
	rfG := replicationFactor(t, g, gi, m)
	if rfG > rfH*1.02 {
		t.Errorf("ginger replication %.3f much worse than hybrid %.3f", rfG, rfH)
	}
}

func TestApplyProducesPlacement(t *testing.T) {
	g := testGraph(t, 10, 400, 2400)
	pl, err := Apply(NewRandomHash(), g, UniformShares(3), 47)
	if err != nil {
		t.Fatal(err)
	}
	if pl.M != 3 || len(pl.EdgeOwner) != len(g.Edges) {
		t.Error("placement malformed")
	}
}

func TestDuplicateEdgesColocateUnderRandomHash(t *testing.T) {
	g := &graph.Graph{NumVertices: 10, Edges: []graph.Edge{
		{Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 1, Dst: 2}, {Src: 1, Dst: 2},
	}}
	owner, err := NewRandomHash().Partition(g, UniformShares(4), 53)
	if err != nil {
		t.Fatal(err)
	}
	if owner[0] != owner[2] || owner[0] != owner[3] {
		t.Errorf("duplicate edges split across machines: %v", owner)
	}
}

func TestSingleMachineDegenerate(t *testing.T) {
	g := testGraph(t, 11, 100, 600)
	for _, p := range All() {
		owner, err := p.Partition(g, UniformShares(1), 59)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for _, o := range owner {
			if o != 0 {
				t.Fatalf("%s: single machine assignment %d", p.Name(), o)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &graph.Graph{NumVertices: 10}
	for _, p := range All() {
		owner, err := p.Partition(g, UniformShares(2), 61)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(owner) != 0 {
			t.Fatalf("%s: non-empty owner for empty graph", p.Name())
		}
	}
}

func BenchmarkPartitioners(b *testing.B) {
	g, err := gen.Generate(gen.Spec{
		Name: "bench", Vertices: 50000, Edges: 400000, Kind: gen.KindPowerLaw,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	shares := UniformShares(8)
	for _, p := range All() {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Partition(g, shares, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
