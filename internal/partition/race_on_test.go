//go:build race

package partition

// raceEnabled reports whether the race detector instruments this test binary.
const raceEnabled = true
