package partition

import (
	"fmt"
	"testing"

	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

// amendShapes are the delta shapes the differential suite sweeps.
var amendShapes = []struct {
	name             string
	inserts, deletes int
}{
	{"insert-only", 400, 0},
	{"delete-only", 0, 400},
	{"mixed", 300, 300},
}

// normImbalance is the owner vector's worst per-machine overload relative to
// its share target: 1.0 is perfect proportionality.
func normImbalance(t *testing.T, owner []int32, shares []float64) float64 {
	t.Helper()
	counts := make([]float64, len(shares))
	for i, p := range owner {
		if p < 0 || int(p) >= len(shares) {
			t.Fatalf("edge %d assigned to machine %d outside [0,%d)", i, p, len(shares))
		}
		counts[p]++
	}
	worst := 0.0
	for p := range counts {
		if r := counts[p] / float64(len(owner)) / shares[p]; r > worst {
			worst = r
		}
	}
	return worst
}

// sameOwners asserts two owner vectors are bit-identical.
func sameOwners(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d owners vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: owner %d is %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestAmendDifferential sweeps every Amender across window sizes, shard
// counts, delta shapes, machine counts and share skews, checking the
// per-algorithm fidelity contract documented on Amender:
//
//   - random and hybrid amendments are bit-identical to a full Partition of
//     the evolved graph;
//   - oblivious, hdrf and ginger amendments stay within the imbalance
//     envelope (10% relative + 0.05 absolute) of a full re-ingress;
//   - every amended vector is valid and invariant to the parallelism knobs.
func TestAmendDifferential(t *testing.T) {
	base := testGraph(t, 71, 800, 6400)
	const seed = 101
	exact := map[string]bool{"random": true, "hybrid": true}

	// Knob invariance: the amended vector for a config must not depend on
	// the window/shard settings. Keyed per (partitioner, shape, m, share).
	pinned := map[string][]int32{}

	for _, shape := range amendShapes {
		d, err := gen.RandomDelta(base, gen.DeltaSpec{
			Inserts: shape.inserts, Deletes: shape.deletes, Time: 1,
		}, 37)
		if err != nil {
			t.Fatal(err)
		}
		evolved, err := d.Apply(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, windows := range []int{64, 4096} {
			for _, shards := range []int{1, 8} {
				setWindows(t, windows)
				setShards(t, shards)
				for _, m := range []int{1, 8} {
					for si, shares := range diffShareVectors(t, m) {
						for _, p := range WithExtensions() {
							a, ok := p.(Amender)
							if !ok {
								continue
							}
							label := fmt.Sprintf("%s/%s/w%d/s%d/m%d/share%d",
								p.Name(), shape.name, windows, shards, m, si)
							baseOwner, err := p.Partition(base, shares, seed)
							if err != nil {
								t.Fatal(label, err)
							}
							amended, err := a.Amend(base, baseOwner, d, evolved, shares, seed)
							if err != nil {
								t.Fatal(label, err)
							}
							full, err := p.Partition(evolved, shares, seed)
							if err != nil {
								t.Fatal(label, err)
							}
							if exact[p.Name()] {
								sameOwners(t, label, amended, full)
							} else {
								got := normImbalance(t, amended, shares)
								want := normImbalance(t, full, shares)
								if got > want*1.10+0.05 {
									t.Errorf("%s: amended imbalance %.4f exceeds envelope over full %.4f",
										label, got, want)
								}
							}
							key := fmt.Sprintf("%s/%s/m%d/share%d", p.Name(), shape.name, m, si)
							if prev, ok := pinned[key]; !ok {
								pinned[key] = amended
							} else {
								sameOwners(t, key+" knob invariance", amended, prev)
							}
						}
					}
				}
			}
		}
	}
}

// TestAmendRejectsMismatchedInputs pins the cross-checks that keep Amend from
// silently trusting a stale or misaligned base.
func TestAmendRejectsMismatchedInputs(t *testing.T) {
	base := testGraph(t, 5, 100, 800)
	// Asymmetric counts, so the evolved edge count differs from the base's
	// and the wrong-evolved-graph check below can trip on it.
	d, err := gen.RandomDelta(base, gen.DeltaSpec{Inserts: 10, Deletes: 4, Time: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	evolved, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	shares := UniformShares(2)
	for _, p := range WithExtensions() {
		a, ok := p.(Amender)
		if !ok {
			continue
		}
		owner, err := p.Partition(base, shares, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Amend(base, owner[:len(owner)-1], d, evolved, shares, 1); err == nil {
			t.Errorf("%s: accepted a short owner vector", p.Name())
		}
		if _, err := a.Amend(base, owner, d, base, shares, 1); err == nil {
			t.Errorf("%s: accepted an evolved graph with the wrong edge count", p.Name())
		}
		if _, err := a.Amend(base, owner, d, evolved, []float64{0.5, 0.1}, 1); err == nil {
			t.Errorf("%s: accepted non-normalized shares", p.Name())
		}
	}
}

// TestAmendGrowsVertexSpace exercises amendment across a vertex-space grow,
// where the evolved graph has endpoints the base never saw.
func TestAmendGrowsVertexSpace(t *testing.T) {
	base := testGraph(t, 9, 200, 1600)
	d := &graph.Delta{
		Time:        2,
		Inserts:     []graph.Edge{{Src: graph.VertexID(base.NumVertices), Dst: 0}, {Src: 1, Dst: graph.VertexID(base.NumVertices + 3)}},
		NumVertices: base.NumVertices + 4,
	}
	evolved, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	shares := UniformShares(4)
	for _, p := range WithExtensions() {
		a, ok := p.(Amender)
		if !ok {
			continue
		}
		owner, err := p.Partition(base, shares, 2)
		if err != nil {
			t.Fatal(err)
		}
		amended, err := a.Amend(base, owner, d, evolved, shares, 2)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		normImbalance(t, amended, shares) // validity: every owner in range
		if len(amended) != len(evolved.Edges) {
			t.Fatalf("%s: %d owners for %d evolved edges", p.Name(), len(amended), len(evolved.Edges))
		}
	}
}
