// Package partition implements the graph ingress algorithms of Section II of
// the paper: the vertex-cut partitioners Random Hash, Oblivious and Grid
// (from PowerGraph) and the mixed-cut partitioners Hybrid and Ginger (from
// PowerLyra/Fennel), each extended to be heterogeneity-aware.
//
// Every partitioner takes a share vector: machine p should receive share[p]
// of the edges. Uniform shares reproduce the original homogeneous
// algorithms; CCR-derived shares (package core) produce the paper's
// heterogeneity-aware variants. The same code path serves both — the paper's
// point is precisely that only the weights change.
package partition

import (
	"fmt"
	"sort"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// Partitioner assigns every edge of a graph to one of len(shares) machines.
type Partitioner interface {
	// Name identifies the algorithm ("random", "oblivious", ...).
	Name() string
	// Partition returns the owning machine of every edge. shares must be a
	// normalized distribution over machines; seed drives the hashing.
	Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error)
}

// All returns the paper's five partitioning algorithms with default
// parameters, in the order the figures list them (random, oblivious, grid,
// hybrid, ginger).
func All() []Partitioner {
	return []Partitioner{
		NewRandomHash(),
		NewOblivious(),
		NewGrid(),
		NewHybrid(),
		NewGinger(),
	}
}

// ByName returns the named partitioner (including extensions) with default
// parameters.
func ByName(name string) (Partitioner, error) {
	for _, p := range WithExtensions() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("partition: unknown algorithm %q", name)
}

// UniformShares returns the equal-share vector for m machines.
func UniformShares(m int) []float64 {
	shares := make([]float64, m)
	for i := range shares {
		shares[i] = 1 / float64(m)
	}
	return shares
}

// NormalizeShares scales a positive weight vector (e.g. raw CCRs) to sum
// to 1. It errors on empty input or non-positive weights.
func NormalizeShares(weights []float64) ([]float64, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("partition: empty weight vector")
	}
	sum := 0.0
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("partition: weight %d is %v, must be positive", i, w)
		}
		sum += w
	}
	shares := make([]float64, len(weights))
	for i, w := range weights {
		shares[i] = w / sum
	}
	return shares, nil
}

// checkShares validates a share vector for m machines.
func checkShares(shares []float64, minMachines int) error {
	if len(shares) < minMachines {
		return fmt.Errorf("partition: %d machines, need at least %d", len(shares), minMachines)
	}
	if len(shares) > engine.MaxMachines {
		return fmt.Errorf("partition: %d machines exceeds limit %d", len(shares), engine.MaxMachines)
	}
	sum := 0.0
	for i, s := range shares {
		if s <= 0 {
			return fmt.Errorf("partition: share %d is %v, must be positive", i, s)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("partition: shares sum to %v, want 1 (use NormalizeShares)", sum)
	}
	return nil
}

// cumulative returns the prefix sums of shares for inverse-CDF picking.
func cumulative(shares []float64) []float64 {
	cum := make([]float64, len(shares))
	acc := 0.0
	for i, s := range shares {
		acc += s
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // absorb rounding
	return cum
}

// pick maps a hash to a machine with probability proportional to the shares,
// the weighted extension of PowerGraph's random edge placement (Fig 4 of the
// paper: "the probability of generating indexes for each machine strictly
// follows the CCR").
func pick(cum []float64, hash uint64) int32 {
	u := float64(hash>>11) / (1 << 53)
	idx := sort.SearchFloat64s(cum, u)
	if idx >= len(cum) {
		idx = len(cum) - 1
	}
	return int32(idx)
}

// Apply runs the partitioner and finalizes the result into a Placement.
func Apply(p Partitioner, g *graph.Graph, shares []float64, seed uint64) (*engine.Placement, error) {
	owner, err := p.Partition(g, shares, seed)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
	}
	return engine.NewPlacement(g, owner, len(shares))
}

// edgeHash gives every (src, dst) pair a stable hash so duplicate edges
// co-locate, as PowerGraph's hashed ingress does.
func edgeHash(seed uint64, e graph.Edge) uint64 {
	return rng.Hash3(seed, uint64(e.Src), uint64(e.Dst))
}

// vertexHash gives every vertex a stable per-seed hash.
func vertexHash(seed uint64, v graph.VertexID) uint64 {
	return rng.Hash2(seed, uint64(v))
}

// WithExtensions returns All plus the algorithms beyond the paper's set
// (currently HDRF).
func WithExtensions() []Partitioner {
	return append(All(), NewHDRF())
}
