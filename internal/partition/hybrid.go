package partition

import "proxygraph/internal/graph"

// Hybrid is the mixed-cut of PowerLyra (Section II-C): edge-cut for
// low-degree vertices, vertex-cut for high-degree ones.
//
// Phase 1 assigns every edge by a (share-weighted) hash of its target
// vertex, grouping each vertex's in-edges with it — an edge cut with no
// mirrors for low-degree vertices. After the scan, vertices whose in-degree
// exceeds Threshold have their in-edges reassigned by hashing the source
// vertex, so a high-degree vertex's mirrors are bounded by the number of
// machines instead of its degree. Both phases use the CCR-weighted hash, the
// paper's heterogeneity-aware extension ("exactly the same as in the Random
// Hash method").
type Hybrid struct {
	// Threshold is the in-degree above which a vertex is treated as
	// high-degree (PowerLyra's default is 100).
	Threshold int32
}

// NewHybrid returns the algorithm with PowerLyra's default threshold.
func NewHybrid() *Hybrid { return &Hybrid{Threshold: 100} }

// Name implements Partitioner.
func (*Hybrid) Name() string { return "hybrid" }

// Partition implements Partitioner. Given exact in-degrees, every edge's
// owner is a pure function of its endpoints and the seed, so both the
// in-degree count and the assignment scan shard across ParallelShards
// workers; the result is bit-identical to referenceHybrid at any shard count.
func (h *Hybrid) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	pk := newPicker(shares)
	owner := make([]int32, len(g.Edges))
	inDeg := g.InDegreesParallel(resolveShards(len(g.Edges)))

	parallelRanges(len(g.Edges), func(lo, hi int) {
		edges := g.Edges[lo:hi]
		for i := range edges {
			e := edges[i]
			if inDeg[e.Dst] > h.Threshold {
				// Second pass, folded in: the full scan already gave us exact
				// in-degrees, so high-degree targets reassign by source hash.
				owner[lo+i] = pk.pick(vertexHash(seed+1, e.Src))
			} else {
				owner[lo+i] = pk.pick(vertexHash(seed, e.Dst))
			}
		}
	})
	return owner, nil
}
