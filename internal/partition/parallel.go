package partition

import (
	"runtime"
	"sort"
	"sync"
)

// ParallelShards overrides the ingress pipeline's worker count when positive;
// zero (the default) means one worker per available CPU. Like
// engine.ParallelShards, the shard count never affects results: the
// order-independent partitioners (random, hybrid, ginger's hash phases)
// shard freely, and the order-dependent streams (oblivious, hdrf, ginger's
// greedy refinement) run window-batched — parallel hint phases against a
// window-boundary snapshot, sequential validated commits (see window.go) —
// so every owner vector is bit-identical to the sequential specs in
// reference.go at any shard count, pinned by the ingress differential test.
// Grid remains fully sequential (its constraint sets are cheap lookups with
// nothing to precompute).
var ParallelShards int

// resolveShards returns the worker count for n independent items.
func resolveShards(n int) int {
	s := ParallelShards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// parallelRanges splits [0, n) into contiguous per-shard ranges and runs fn
// on every range, concurrently when more than one shard resolves. fn must
// write only to slots it owns by index; because every slot's value is a pure
// function of its index, shard boundaries cannot affect the output.
func parallelRanges(n int, fn func(lo, hi int)) {
	shards := resolveShards(n)
	if shards == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(n*s/shards, n*(s+1)/shards)
	}
	wg.Wait()
}

// pickerBuckets sizes the quantized start-index table of picker. 512 buckets
// keep the forward scan near zero steps even for 64 machines with skewed
// shares, at 2KB per partition call.
const pickerBuckets = 512

// picker resolves weighted machine picks with exactly the semantics of pick
// (binary search over the cumulative shares) but in O(1) expected time: a
// start-index table quantizes [0,1) into buckets, each holding the first
// machine whose cumulative share reaches the bucket's lower bound, so a pick
// is one table lookup plus a short forward scan. Both the table and the scan
// reproduce sort.SearchFloat64s' "first index with cum[i] >= u" contract, so
// picker.pick(h) == pick(cum, h) for every hash — the property the ingress
// differential test pins.
type picker struct {
	cum   []float64
	table []int32
}

// newPicker builds the quantized lookup for a validated share vector.
func newPicker(shares []float64) picker {
	cum := cumulative(shares)
	table := make([]int32, pickerBuckets)
	for b := range table {
		table[b] = int32(sort.SearchFloat64s(cum, float64(b)/pickerBuckets))
	}
	return picker{cum: cum, table: table}
}

// pick maps a hash to a machine exactly as pick(cum, hash) does.
func (pk *picker) pick(hash uint64) int32 {
	u := float64(hash>>11) / (1 << 53)
	idx := pk.table[int(u*pickerBuckets)]
	for pk.cum[idx] < u {
		idx++
	}
	return idx
}
