package partition

import (
	"testing"

	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

// Ingress micro-benchmarks, tracked in BENCH_INGRESS.json. Each hash-based
// partitioner runs three ways over the same graph and shares: the sequential
// executable spec from reference.go (naive per-edge binary search), and the
// production path at 1 and 8 shards (quantized picker + sharded scans). The
// differential test pins all three to identical owner vectors, so edges/s
// ratios are true speedups on the same work.

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.Generate(gen.Spec{
		Name: "ingress-bench", Vertices: 100000, Edges: 1600000, Kind: gen.KindPowerLaw,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func runIngressBench(b *testing.B, g *graph.Graph, run func() []int32) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if owner := run(); len(owner) != len(g.Edges) {
			b.Fatal("partitioner dropped edges")
		}
	}
	b.ReportMetric(float64(len(g.Edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func benchVariants(b *testing.B, g *graph.Graph, reference func() []int32, production func() []int32) {
	b.Helper()
	prev := ParallelShards
	b.Cleanup(func() { ParallelShards = prev })
	b.Run("reference", func(b *testing.B) { runIngressBench(b, g, reference) })
	for _, shards := range []int{1, 8} {
		shards := shards
		b.Run(map[int]string{1: "shards1", 8: "shards8"}[shards], func(b *testing.B) {
			ParallelShards = shards
			runIngressBench(b, g, production)
		})
	}
	// auto follows GOMAXPROCS (the -cpu axis of make bench-scaling), so its
	// entries show how the production path scales with real cores rather
	// than with a fixed shard count.
	b.Run("auto", func(b *testing.B) {
		ParallelShards = 0
		runIngressBench(b, g, production)
	})
}

func BenchmarkIngressRandom(b *testing.B) {
	g := benchGraph(b)
	shares := UniformShares(8)
	p := NewRandomHash()
	benchVariants(b, g,
		func() []int32 { return referenceRandom(g, shares, 1) },
		func() []int32 {
			owner, err := p.Partition(g, shares, 1)
			if err != nil {
				b.Fatal(err)
			}
			return owner
		})
}

func BenchmarkIngressHybrid(b *testing.B) {
	g := benchGraph(b)
	shares := UniformShares(8)
	p := NewHybrid()
	benchVariants(b, g,
		func() []int32 { return referenceHybrid(p, g, shares, 1) },
		func() []int32 {
			owner, err := p.Partition(g, shares, 1)
			if err != nil {
				b.Fatal(err)
			}
			return owner
		})
}

func BenchmarkIngressGinger(b *testing.B) {
	g := benchGraph(b)
	shares := UniformShares(8)
	p := NewGinger()
	benchVariants(b, g,
		func() []int32 { return referenceGinger(p, g, shares, 1) },
		func() []int32 {
			owner, err := p.Partition(g, shares, 1)
			if err != nil {
				b.Fatal(err)
			}
			return owner
		})
}
