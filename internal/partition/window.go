package partition

import "sync"

// Window-batched streaming: the order-dependent partitioners (oblivious,
// hdrf, ginger's refinement) process their stream in fixed-size windows. Each
// window runs two phases: a parallel phase computes per-element hints against
// a snapshot of the mutable state frozen at the window boundary, then a
// sequential commit walks the window in stream order, validating every hint
// against what actually changed inside the window (per-vertex epoch stamps or
// explicit histogram patching) before consuming it. Stale hints are
// recomputed from live state, so the committed decisions — and therefore the
// owner vectors — are bit-identical to the sequential specs in reference.go
// at every shard count and window size, which TestIngressDifferential pins.
//
// The window sizes are variables only so tests can shrink them to force many
// windows (and the cross-window validation paths) on small graphs.
var (
	// gingerWindowSize is the vertex count per refinement window.
	gingerWindowSize = 4096
	// streamWindowSize is the edge count per oblivious/hdrf window.
	streamWindowSize = 4096
)

// streamScratch is the reusable per-window hint storage of the streaming
// partitioners, pooled so repeated ingress runs allocate it once: candidate
// masks (oblivious), endpoint mask snapshots, degree counts and gather scores
// (hdrf). Slices grow to the window size on first use and are reused as-is.
type streamScratch struct {
	cand, maskU, maskV []uint64
	gU, gV             []float64
	du, dv             []int32
}

var streamScratchPool = sync.Pool{New: func() any { return new(streamScratch) }}

func growMasks(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
