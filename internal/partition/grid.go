package partition

import (
	"proxygraph/internal/graph"
)

// Grid is the 2D constrained vertex-cut of Section II-B3: machines form a
// rows×cols matrix, every vertex hashes to a shard, and an edge may only go
// to machines in the intersection of its endpoints' constraint sets (the
// union of the shard's row and column), which bounds replication at
// rows+cols-1. Each candidate machine is scored by how far it is below its
// CCR-proportional target, "considering the current edge distribution and
// the edge placements suggested by CCR"; the edge goes to the highest score.
//
// The paper requires a square machine count. To keep the algorithm usable on
// the paper's own two-machine clusters (Fig 9 runs Grid there), non-square
// counts fall back to the most square rows×cols factorization — for prime
// counts this degenerates to a 1×M grid, i.e. weighted greedy placement.
type Grid struct{}

// NewGrid returns the algorithm.
func NewGrid() *Grid { return &Grid{} }

// Name implements Partitioner.
func (*Grid) Name() string { return "grid" }

// gridShape factors m into rows <= cols with rows maximal.
func gridShape(m int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= m; r++ {
		if m%r == 0 {
			rows = r
		}
	}
	return rows, m / rows
}

// unionBest returns the best-scoring machine of su ∪ sv, where inSet marks
// exactly su's members. The union is walked without materializing it —
// appending sv onto su (the previous implementation) would alias the caller's
// cached constraint slice whenever len(su) < cap(su), and would score
// machines present in both sets twice.
func unionBest(su, sv []int32, inSet []bool, score func(int32) float64) int32 {
	best := int32(-1)
	bestScore := 0.0
	for _, p := range su {
		if s := score(p); best == -1 || s > bestScore {
			best, bestScore = p, s
		}
	}
	for _, p := range sv {
		if inSet[p] {
			continue // already scored as a member of su
		}
		if s := score(p); best == -1 || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// Partition implements Partitioner.
func (*Grid) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	m := len(shares)
	rows, cols := gridShape(m)
	// Machine p sits at (p/cols, p%cols).
	// constraint(v): all machines in row r(v) plus all machines in column
	// c(v), where v's shard is (r, c) = (hash mod rows, hash' mod cols).
	constraint := func(v graph.VertexID) []int32 {
		h := vertexHash(seed, v)
		r := int(h % uint64(rows))
		c := int((h >> 32) % uint64(cols))
		set := make([]int32, 0, rows+cols-1)
		for j := 0; j < cols; j++ {
			set = append(set, int32(r*cols+j))
		}
		for i := 0; i < rows; i++ {
			if i != r {
				set = append(set, int32(i*cols+c))
			}
		}
		return set
	}

	// Cache per-vertex constraint sets lazily; natural graphs reuse
	// endpoints constantly.
	cache := make([][]int32, g.NumVertices)
	sets := func(v graph.VertexID) []int32 {
		if cache[v] == nil {
			cache[v] = constraint(v)
		}
		return cache[v]
	}

	load := make([]int64, m)
	total := int64(0)
	owner := make([]int32, len(g.Edges))
	inSet := make([]bool, m)
	for i, e := range g.Edges {
		su, sv := sets(e.Src), sets(e.Dst)
		for _, p := range su {
			inSet[p] = true
		}
		best := int32(-1)
		bestScore := 0.0
		score := func(p int32) float64 {
			// Deficit below the CCR-suggested placement: positive when the
			// machine is under target.
			return shares[p]*float64(total+1) - float64(load[p])
		}
		for _, p := range sv {
			if inSet[p] {
				if s := score(p); best == -1 || s > bestScore {
					best, bestScore = p, s
				}
			}
		}
		if best == -1 {
			// Constraint sets always intersect (shared row machine), but be
			// safe: fall back to the emptiest machine of the union.
			best = unionBest(su, sv, inSet, score)
		}
		for _, p := range su {
			inSet[p] = false
		}
		owner[i] = best
		load[best]++
		total++
	}
	return owner, nil
}
