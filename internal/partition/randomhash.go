package partition

import "proxygraph/internal/graph"

// RandomHash is the baseline vertex-cut of PowerGraph, extended per Section
// II-B1 of the paper: each edge is assigned by a random hash, with machine
// pick probabilities weighted by the shares. With uniform shares every
// machine is equally likely (the original algorithm); with CCR shares the
// index distribution "strictly follows the CCR".
type RandomHash struct{}

// NewRandomHash returns the algorithm.
func NewRandomHash() *RandomHash { return &RandomHash{} }

// Name implements Partitioner.
func (*RandomHash) Name() string { return "random" }

// Partition implements Partitioner.
func (*RandomHash) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	cum := cumulative(shares)
	owner := make([]int32, len(g.Edges))
	for i, e := range g.Edges {
		owner[i] = pick(cum, edgeHash(seed, e))
	}
	return owner, nil
}
