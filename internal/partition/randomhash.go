package partition

import "proxygraph/internal/graph"

// RandomHash is the baseline vertex-cut of PowerGraph, extended per Section
// II-B1 of the paper: each edge is assigned by a random hash, with machine
// pick probabilities weighted by the shares. With uniform shares every
// machine is equally likely (the original algorithm); with CCR shares the
// index distribution "strictly follows the CCR".
type RandomHash struct{}

// NewRandomHash returns the algorithm.
func NewRandomHash() *RandomHash { return &RandomHash{} }

// Name implements Partitioner.
func (*RandomHash) Name() string { return "random" }

// Partition implements Partitioner. Every edge's owner is a pure function of
// its endpoints and the seed, so the scan is sharded across ParallelShards
// workers; the result is bit-identical to referenceRandom at any shard count.
func (*RandomHash) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	pk := newPicker(shares)
	owner := make([]int32, len(g.Edges))
	parallelRanges(len(g.Edges), func(lo, hi int) {
		edges := g.Edges[lo:hi]
		for i := range edges {
			owner[lo+i] = pk.pick(edgeHash(seed, edges[i]))
		}
	})
	return owner, nil
}
