package partition

import (
	"math"
	"testing"

	"proxygraph/internal/gen"
)

func TestHDRFRegistered(t *testing.T) {
	if len(WithExtensions()) != 6 {
		t.Fatalf("extensions registry has %d algorithms, want 6", len(WithExtensions()))
	}
	p, err := ByName("hdrf")
	if err != nil || p.Name() != "hdrf" {
		t.Fatalf("ByName(hdrf): %v", err)
	}
	// The paper's set stays at five.
	if len(All()) != 5 {
		t.Error("All() must remain the paper's five algorithms")
	}
}

func TestHDRFCoversAndBalances(t *testing.T) {
	g := testGraph(t, 80, 2000, 20000)
	const m = 4
	owner, err := NewHDRF().Partition(g, UniformShares(m), 81)
	if err != nil {
		t.Fatal(err)
	}
	got := edgeShares(t, g, owner, m)
	for i, s := range got {
		if math.Abs(s-0.25) > 0.08 {
			t.Errorf("machine %d share %.3f, want ~0.25", i, s)
		}
	}
}

func TestHDRFFollowsWeights(t *testing.T) {
	g := testGraph(t, 82, 2000, 24000)
	target := []float64{0.1, 0.2, 0.3, 0.4}
	owner, err := NewHDRF().Partition(g, target, 83)
	if err != nil {
		t.Fatal(err)
	}
	got := edgeShares(t, g, owner, len(target))
	for i, s := range got {
		if math.Abs(s-target[i]) > 0.1 {
			t.Errorf("machine %d share %.3f, target %.3f", i, s, target[i])
		}
	}
}

func TestHDRFBeatsRandomOnReplication(t *testing.T) {
	// HDRF's selling point: lower replication than hash partitioning on
	// skewed graphs.
	g, err := gen.Generate(gen.Spec{
		Name: "hdrf-skew", Vertices: 3000, Edges: 30000, Kind: gen.KindPowerLaw,
	}, 85)
	if err != nil {
		t.Fatal(err)
	}
	const m = 8
	shares := UniformShares(m)
	rnd, err := NewRandomHash().Partition(g, shares, 87)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := NewHDRF().Partition(g, shares, 87)
	if err != nil {
		t.Fatal(err)
	}
	rfRnd := replicationFactor(t, g, rnd, m)
	rfHD := replicationFactor(t, g, hd, m)
	if rfHD >= rfRnd {
		t.Errorf("hdrf replication %.3f >= random %.3f", rfHD, rfRnd)
	}
}

func TestHDRFValidation(t *testing.T) {
	g := testGraph(t, 88, 100, 500)
	if _, err := NewHDRF().Partition(g, []float64{0.2, 0.2}, 1); err == nil {
		t.Error("non-normalized shares should error")
	}
}

func TestHDRFDeterministic(t *testing.T) {
	g := testGraph(t, 89, 500, 4000)
	a, err := NewHDRF().Partition(g, UniformShares(3), 90)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHDRF().Partition(g, UniformShares(3), 90)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("hdrf not deterministic")
		}
	}
}
