package partition

import (
	"sync"

	"proxygraph/internal/graph"
)

// Ginger is the heuristic refinement of Hybrid from PowerLyra, following
// Fennel (Section II-C1). High-degree vertices are handled exactly as in
// Hybrid. Each low-degree vertex v is then re-assigned (with its grouped
// in-edges) to the machine maximizing
//
//	score(v, p) = |N_in(v) ∩ V_p| − h_p · b(p)
//	b(p)        = ½ (|V_p| + |V|/|E| · |E_p|)
//
// where V_p, E_p are the vertices and edges already on machine p: affinity
// to in-neighbors minus a balance penalty. The paper's heterogeneity factor
// h_p = 1/(CCR share · M) shrinks the penalty for fast machines so they
// "gain a better score" and absorb proportionally more vertices.
type Ginger struct {
	// Threshold is the high-degree cutoff shared with Hybrid.
	Threshold int32
	// Gamma scales the balance penalty (1 reproduces PowerLyra's b(p)).
	Gamma float64
}

// NewGinger returns the algorithm with default parameters.
func NewGinger() *Ginger { return &Ginger{Threshold: 100, Gamma: 1} }

// Name implements Partitioner.
func (*Ginger) Name() string { return "ginger" }

// gingerScratch holds the refinement sweep's large reusable buffers: the
// unsorted in/out adjacency (rebuilt in place per call, see graph.InCSRInto)
// and the window histogram arena. Pooled so repeated ingress runs stop paying
// the CSR construction allocations — the per-row sort.Slice of the old
// BuildInCSR path alone was ~200k allocs per partition call on the ingress
// benchmark graph.
type gingerScratch struct {
	in, out graph.CSR
	hist    []int32
}

var gingerScratchPool = sync.Pool{New: func() any { return new(gingerScratch) }}

// Partition implements Partitioner. Phase 1 (the per-vertex seed hash) and
// the final edge scan are pure per-element functions and shard across
// ParallelShards workers; the greedy refinement between them visits vertices
// in ID order against evolving loads and runs window-batched (see refine).
// The owner vector is bit-identical to referenceGinger at any shard count.
func (gp *Ginger) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	pk := newPicker(shares)
	inDeg := g.InDegreesParallel(resolveShards(len(g.Edges)))
	owner := make([]int32, len(g.Edges))

	// Phase 1 (as Hybrid): low-degree in-edges group with the target,
	// high-degree in-edges scatter by source hash.
	assign := make([]int32, g.NumVertices) // low-degree vertex -> machine
	parallelRanges(len(assign), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			assign[v] = pk.pick(vertexHash(seed, graph.VertexID(v)))
		}
	})

	gp.refine(g, shares, inDeg, assign)

	parallelRanges(len(g.Edges), func(lo, hi int) {
		edges := g.Edges[lo:hi]
		for i := range edges {
			e := edges[i]
			if inDeg[e.Dst] > gp.Threshold {
				owner[lo+i] = pk.pick(vertexHash(seed+1, e.Src))
			} else {
				owner[lo+i] = assign[e.Dst]
			}
		}
	})
	return owner, nil
}

// refine is phase 2: greedily re-place each low-degree vertex by the
// Fennel-style score over its in-neighborhood, visiting vertices in ID order
// against the evolving per-machine loads. The sweep is order-dependent, so
// it cannot shard naively; instead it runs window-batched (refineWindowed)
// when more than one worker resolves, falling back to the direct sequential
// loop at one shard — where windowing is pure overhead — while keeping the
// pooled unsorted CSR, which is what makes the single-shard production path
// faster than referenceGinger's sorted-CSR build. refineSequential in
// reference.go is the executable spec both paths are pinned against.
func (gp *Ginger) refine(g *graph.Graph, shares []float64, inDeg []int32, assign []int32) {
	m := len(shares)
	vCount := make([]float64, m)
	eCount := make([]float64, m)
	for v := range assign {
		vCount[assign[v]]++
		eCount[assign[v]] += float64(inDeg[v])
	}
	ratio := 0.0
	if len(g.Edges) > 0 {
		ratio = float64(g.NumVertices) / float64(len(g.Edges))
	}
	hetFactor := make([]float64, m)
	for p := range hetFactor {
		hetFactor[p] = 1 / (shares[p] * float64(m))
	}

	sc := gingerScratchPool.Get().(*gingerScratch)
	defer gingerScratchPool.Put(sc)
	g.InCSRInto(&sc.in)

	if resolveShards(g.NumVertices) == 1 {
		gp.refineDirect(g, &sc.in, inDeg, assign, vCount, eCount, hetFactor, ratio)
		return
	}
	gp.refineWindowed(g, sc, inDeg, assign, vCount, eCount, hetFactor, ratio)
}

// refineDirect is the single-shard sweep: the sequential spec's loop over the
// pooled unsorted in-CSR. Row order within a neighborhood differs from the
// sorted reference CSR, which is invisible: the histogram accumulates exact
// integer counts, so per-machine neighborCount — and every score — is
// bit-identical.
func (gp *Ginger) refineDirect(g *graph.Graph, in *graph.CSR, inDeg []int32, assign []int32, vCount, eCount, hetFactor []float64, ratio float64) {
	m := len(hetFactor)
	neighborCount := make([]float64, m)
	for v := 0; v < g.NumVertices; v++ {
		if inDeg[v] > gp.Threshold {
			continue
		}
		cur := assign[v]
		// Remove v from its current machine while scoring (self-exclusion).
		vCount[cur]--
		eCount[cur] -= float64(inDeg[v])

		for p := range neighborCount {
			neighborCount[p] = 0
		}
		for _, u := range in.Neighbors(graph.VertexID(v)) {
			if inDeg[u] <= gp.Threshold {
				neighborCount[assign[u]]++
			}
		}
		best := int32(0)
		bestScore := 0.0
		for p := 0; p < m; p++ {
			balance := 0.5 * gp.Gamma * (vCount[p] + ratio*eCount[p])
			score := neighborCount[p] - hetFactor[p]*balance
			if p == 0 || score > bestScore {
				best, bestScore = int32(p), score
			}
		}
		assign[v] = best
		vCount[best]++
		eCount[best] += float64(inDeg[v])
	}
}

// refineWindowed is the multi-shard sweep. Each window of gingerWindowSize
// vertices runs two phases:
//
//  1. parallel histogram fill: every window vertex counts its low-degree
//     in-neighbors per machine against the assignment frozen at the window
//     boundary — safe because the commit loop of the previous window has
//     finished and this window's has not started;
//  2. sequential commit in ID order: score each vertex from its histogram row
//     and the live vCount/eCount, move it, and patch the rows of its
//     not-yet-committed out-neighbors inside the window when it moved.
//
// The patching is what makes the result exact rather than approximate: at
// vertex v's commit, a low-degree in-neighbor u contributes to v's row under
// u's frozen machine if u is outside the window or after v (where frozen =
// live), and under its patched — i.e. live — machine if u moved earlier in
// this window. Every score therefore sees exactly the assignment the
// sequential spec would, and the sweep is bit-identical to refineSequential
// at every shard count and window size.
func (gp *Ginger) refineWindowed(g *graph.Graph, sc *gingerScratch, inDeg []int32, assign []int32, vCount, eCount, hetFactor []float64, ratio float64) {
	m := len(hetFactor)
	window := gingerWindowSize
	g.OutCSRInto(&sc.out)
	sc.hist = growInts(sc.hist, window*m)
	hist := sc.hist
	n := g.NumVertices
	for lo := 0; lo < n; lo += window {
		hi := lo + window
		if hi > n {
			hi = n
		}
		parallelRanges(hi-lo, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				v := graph.VertexID(lo + r)
				row := hist[r*m : r*m+m]
				clear(row)
				if inDeg[v] > gp.Threshold {
					continue
				}
				for _, u := range sc.in.Neighbors(v) {
					if inDeg[u] <= gp.Threshold {
						row[assign[u]]++
					}
				}
			}
		})
		for v := lo; v < hi; v++ {
			if inDeg[v] > gp.Threshold {
				continue
			}
			cur := assign[v]
			vCount[cur]--
			eCount[cur] -= float64(inDeg[v])

			row := hist[(v-lo)*m : (v-lo)*m+m]
			best := int32(0)
			bestScore := 0.0
			for p := 0; p < m; p++ {
				balance := 0.5 * gp.Gamma * (vCount[p] + ratio*eCount[p])
				score := float64(row[p]) - hetFactor[p]*balance
				if p == 0 || score > bestScore {
					best, bestScore = int32(p), score
				}
			}
			assign[v] = best
			vCount[best]++
			eCount[best] += float64(inDeg[v])
			if best != cur {
				// v's move invalidates the frozen histograms of the window
				// vertices it feeds; shift its count to the new machine. Only
				// rows after v still get consumed, and only low-degree
				// in-neighbors were counted (v is low-degree here).
				for _, w := range sc.out.Neighbors(graph.VertexID(v)) {
					if int(w) > v && int(w) < hi && inDeg[w] <= gp.Threshold {
						hist[(int(w)-lo)*m+int(cur)]--
						hist[(int(w)-lo)*m+int(best)]++
					}
				}
			}
		}
	}
}
