package partition

import (
	"proxygraph/internal/graph"
)

// Ginger is the heuristic refinement of Hybrid from PowerLyra, following
// Fennel (Section II-C1). High-degree vertices are handled exactly as in
// Hybrid. Each low-degree vertex v is then re-assigned (with its grouped
// in-edges) to the machine maximizing
//
//	score(v, p) = |N_in(v) ∩ V_p| − h_p · b(p)
//	b(p)        = ½ (|V_p| + |V|/|E| · |E_p|)
//
// where V_p, E_p are the vertices and edges already on machine p: affinity
// to in-neighbors minus a balance penalty. The paper's heterogeneity factor
// h_p = 1/(CCR share · M) shrinks the penalty for fast machines so they
// "gain a better score" and absorb proportionally more vertices.
type Ginger struct {
	// Threshold is the high-degree cutoff shared with Hybrid.
	Threshold int32
	// Gamma scales the balance penalty (1 reproduces PowerLyra's b(p)).
	Gamma float64
}

// NewGinger returns the algorithm with default parameters.
func NewGinger() *Ginger { return &Ginger{Threshold: 100, Gamma: 1} }

// Name implements Partitioner.
func (*Ginger) Name() string { return "ginger" }

// Partition implements Partitioner. Phase 1 (the per-vertex seed hash) and
// the final edge scan are pure per-element functions and shard across
// ParallelShards workers; the greedy refinement between them visits vertices
// in ID order against evolving loads and stays sequential. The owner vector
// is bit-identical to referenceGinger at any shard count.
func (gp *Ginger) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	pk := newPicker(shares)
	inDeg := g.InDegreesParallel(resolveShards(len(g.Edges)))
	owner := make([]int32, len(g.Edges))

	// Phase 1 (as Hybrid): low-degree in-edges group with the target,
	// high-degree in-edges scatter by source hash.
	assign := make([]int32, g.NumVertices) // low-degree vertex -> machine
	parallelRanges(len(assign), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			assign[v] = pk.pick(vertexHash(seed, graph.VertexID(v)))
		}
	})

	gp.refine(g, shares, inDeg, assign)

	parallelRanges(len(g.Edges), func(lo, hi int) {
		edges := g.Edges[lo:hi]
		for i := range edges {
			e := edges[i]
			if inDeg[e.Dst] > gp.Threshold {
				owner[lo+i] = pk.pick(vertexHash(seed+1, e.Src))
			} else {
				owner[lo+i] = assign[e.Dst]
			}
		}
	})
	return owner, nil
}

// refine is phase 2, shared verbatim between the production path and
// referenceGinger: greedily re-place each low-degree vertex by the
// Fennel-style score over its in-neighborhood. Vertices are visited in ID
// order; vCount/eCount track the evolving per-machine loads, which makes the
// sweep order-dependent and therefore sequential.
func (gp *Ginger) refine(g *graph.Graph, shares []float64, inDeg []int32, assign []int32) {
	m := len(shares)
	inCSR := g.BuildInCSR()
	vCount := make([]float64, m)
	eCount := make([]float64, m)
	for v := range assign {
		vCount[assign[v]]++
		eCount[assign[v]] += float64(inDeg[v])
	}
	ratio := 0.0
	if len(g.Edges) > 0 {
		ratio = float64(g.NumVertices) / float64(len(g.Edges))
	}
	hetFactor := make([]float64, m)
	for p := range hetFactor {
		hetFactor[p] = 1 / (shares[p] * float64(m))
	}

	neighborCount := make([]float64, m)
	for v := 0; v < g.NumVertices; v++ {
		if inDeg[v] > gp.Threshold {
			continue
		}
		vid := graph.VertexID(v)
		cur := assign[v]
		// Remove v from its current machine while scoring (self-exclusion).
		vCount[cur]--
		eCount[cur] -= float64(inDeg[v])

		for p := range neighborCount {
			neighborCount[p] = 0
		}
		for _, u := range inCSR.Neighbors(vid) {
			if inDeg[u] <= gp.Threshold {
				neighborCount[assign[u]]++
			}
		}
		best := int32(0)
		bestScore := 0.0
		for p := 0; p < m; p++ {
			balance := 0.5 * gp.Gamma * (vCount[p] + ratio*eCount[p])
			score := neighborCount[p] - hetFactor[p]*balance
			if p == 0 || score > bestScore {
				best, bestScore = int32(p), score
			}
		}
		assign[v] = best
		vCount[best]++
		eCount[best] += float64(inDeg[v])
	}
}
