package partition

import (
	"fmt"
	"math/bits"
	"sort"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// Amender is implemented by partitioners that can patch an existing owner
// vector for an evolved graph instead of re-ingressing from scratch. Amend
// receives the base graph with its owner vector, the delta, and the evolved
// graph the delta produced (d.Apply(base) — survivors in stream order,
// inserts at the tail), and returns an owner vector aligned with
// evolved.Edges.
//
// Fidelity differs by algorithm and is part of each contract:
//
//   - RandomHash and Hybrid owners are pure per-edge functions, so Amend is
//     bit-identical to a full Partition of the evolved graph.
//   - Oblivious and HDRF are order-dependent streams; Amend keeps the
//     surviving owners and streams only the inserts against state rebuilt
//     from the survivors. A full re-ingress would instead replay every edge
//     with the deleted ones absent, so owners differ — but the balance
//     objective is maintained live during the continuation, so the amended
//     imbalance stays within the envelope the differential tests document
//     (10% relative + 0.05 absolute over full re-ingress).
//   - Ginger recovers its per-vertex assignment from the surviving owners,
//     re-refines only the vertices the delta disturbed, and re-runs the pure
//     final edge scan; the same envelope applies.
//
// dynamic.Migrator composes with any of these: residual drift the amendment
// leaves behind is absorbed by migration during execution.
type Amender interface {
	Partitioner
	Amend(base *graph.Graph, owner []int32, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) ([]int32, error)
}

// AmendApply patches a base placement for the evolved graph via a.Amend and
// finalizes the result into a Placement, the incremental counterpart of
// Apply.
func AmendApply(a Amender, basePl *engine.Placement, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) (*engine.Placement, error) {
	owner, err := a.Amend(basePl.G, basePl.EdgeOwner, d, evolved, shares, seed)
	if err != nil {
		return nil, fmt.Errorf("partition: amend %s: %w", a.Name(), err)
	}
	return engine.NewPlacement(evolved, owner, len(shares))
}

// amendSurvivors drops the deleted edges' owners in step with Delta.Apply's
// compaction and returns the surviving owners in stream order, with capacity
// for the insert tail. It also cross-checks that evolved really is d applied
// to base, since Amend trusts evolved.Edges' layout.
func amendSurvivors(base *graph.Graph, owner []int32, d *graph.Delta, evolved *graph.Graph) ([]int32, error) {
	if len(owner) != len(base.Edges) {
		return nil, fmt.Errorf("owner vector has %d entries for %d base edges", len(owner), len(base.Edges))
	}
	deleted, err := d.DeletedIndices(base)
	if err != nil {
		return nil, err
	}
	keptCount := len(base.Edges) - len(deleted)
	if len(evolved.Edges) != keptCount+len(d.Inserts) {
		return nil, fmt.Errorf("evolved graph has %d edges, delta implies %d", len(evolved.Edges), keptCount+len(d.Inserts))
	}
	kept := make([]int32, 0, keptCount+len(d.Inserts))
	di := 0
	for i, o := range owner {
		if di < len(deleted) && deleted[di] == i {
			di++
			continue
		}
		kept = append(kept, o)
	}
	return kept, nil
}

// Amend implements Amender. RandomHash owners are pure per-edge hashes, so
// surviving owners are already what a full re-ingress would produce and only
// the inserts need hashing — the result is bit-identical to Partition on the
// evolved graph.
func (rh *RandomHash) Amend(base *graph.Graph, owner []int32, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	kept, err := amendSurvivors(base, owner, d, evolved)
	if err != nil {
		return nil, err
	}
	pk := newPicker(shares)
	for _, e := range evolved.Edges[len(kept):] {
		kept = append(kept, pk.pick(edgeHash(seed, e)))
	}
	return kept, nil
}

// Amend implements Amender. A Hybrid owner depends on its edge, the seed and
// the destination's degree class, so surviving owners stay valid except where
// the delta moved a destination across the threshold; those edges and the
// inserts are re-hashed, and the result is bit-identical to Partition on the
// evolved graph.
func (h *Hybrid) Amend(base *graph.Graph, owner []int32, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	kept, err := amendSurvivors(base, owner, d, evolved)
	if err != nil {
		return nil, err
	}
	pk := newPicker(shares)
	baseIn := base.InDegrees()
	evolvedIn := evolved.InDegreesParallel(resolveShards(len(evolved.Edges)))
	flipped := classFlips(baseIn, evolvedIn, h.Threshold)
	keptCount := len(kept)
	kept = kept[:len(evolved.Edges)]
	parallelRanges(len(evolved.Edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := evolved.Edges[i]
			if i < keptCount && !flipped[e.Dst] {
				continue
			}
			if evolvedIn[e.Dst] > h.Threshold {
				kept[i] = pk.pick(vertexHash(seed+1, e.Src))
			} else {
				kept[i] = pk.pick(vertexHash(seed, e.Dst))
			}
		}
	})
	return kept, nil
}

// classFlips reports, per evolved vertex, whether the delta moved its
// in-degree across the high-degree threshold.
func classFlips(baseIn, evolvedIn []int32, threshold int32) []bool {
	flipped := make([]bool, len(evolvedIn))
	for v := range evolvedIn {
		var db int32
		if v < len(baseIn) {
			db = baseIn[v]
		}
		flipped[v] = (db > threshold) != (evolvedIn[v] > threshold)
	}
	return flipped
}

// Amend implements Amender. The surviving owners keep their machines; the
// replica masks and loads they imply are rebuilt exactly as a stream over the
// survivors would leave them, and the inserts then continue that stream
// through the same greedy rule as Partition. Deleted edges' mirrors and load
// are genuinely forgotten — the rebuilt state reflects only what survives.
func (ob *Oblivious) Amend(base *graph.Graph, owner []int32, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	kept, err := amendSurvivors(base, owner, d, evolved)
	if err != nil {
		return nil, err
	}
	m := len(shares)
	placed := make([]uint64, evolved.NumVertices)
	load := make([]int64, m)
	for i, o := range kept {
		e := evolved.Edges[i]
		placed[e.Src] |= 1 << uint(o)
		placed[e.Dst] |= 1 << uint(o)
		load[o]++
	}
	allMask := uint64(1)<<uint(m) - 1
	for _, e := range evolved.Edges[len(kept):] {
		candidates := obliviousCandidates(placed[e.Src], placed[e.Dst], allMask)
		best := int32(-1)
		bestScore := 0.0
		for mask := candidates; mask != 0; mask &= mask - 1 {
			p := int32(bits.TrailingZeros64(mask))
			score := float64(load[p]) / shares[p]
			if best == -1 || score < bestScore {
				best, bestScore = p, score
			}
		}
		kept = append(kept, best)
		load[best]++
		placed[e.Src] |= 1 << uint(best)
		placed[e.Dst] |= 1 << uint(best)
	}
	return kept, nil
}

// Amend implements Amender. Like Oblivious: replica masks, loads and partial
// degrees are rebuilt from the survivors, and the inserts continue the HDRF
// stream — scored at their evolved edge indices (so tie-breaking matches what
// a full ingress would hash for the tail) with loads normalized against the
// evolved edge count.
func (h *HDRF) Amend(base *graph.Graph, owner []int32, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	kept, err := amendSurvivors(base, owner, d, evolved)
	if err != nil {
		return nil, err
	}
	m := len(shares)
	placed := make([]uint64, evolved.NumVertices)
	partial := make([]int32, evolved.NumVertices)
	rawLoad := make([]int64, m)
	load := make([]float64, m)
	denom := float64(len(evolved.Edges) + 1)
	for i, o := range kept {
		e := evolved.Edges[i]
		placed[e.Src] |= 1 << uint(o)
		placed[e.Dst] |= 1 << uint(o)
		partial[e.Src]++
		partial[e.Dst]++
		rawLoad[o]++
	}
	for p := 0; p < m; p++ {
		load[p] = float64(rawLoad[p]) / (shares[p] * denom)
	}
	for i := len(kept); i < len(evolved.Edges); i++ {
		e := evolved.Edges[i]
		partial[e.Src]++
		partial[e.Dst]++
		du, dv := float64(partial[e.Src]), float64(partial[e.Dst])
		thetaU := du / (du + dv)
		gU, gV := 1+(1-thetaU), 1+thetaU

		minLoad, maxLoad := load[0], load[0]
		for _, l := range load[1:] {
			if l < minLoad {
				minLoad = l
			}
			if l > maxLoad {
				maxLoad = l
			}
		}
		best := int32(0)
		bestScore := -1.0
		for p := 0; p < m; p++ {
			rep := 0.0
			bit := uint64(1) << uint(p)
			if placed[e.Src]&bit != 0 {
				rep += gU
			}
			if placed[e.Dst]&bit != 0 {
				rep += gV
			}
			bal := (maxLoad - load[p]) / (1 + maxLoad - minLoad)
			score := rep + h.Lambda*bal
			if score > bestScore {
				bestScore, best = score, int32(p)
			} else if score == bestScore && hdrfTie(seed, i, p) > hdrfTie(seed, i, int(best)) {
				best = int32(p)
			}
		}
		kept = append(kept, best)
		rawLoad[best]++
		load[best] = float64(rawLoad[best]) / (shares[best] * denom)
		placed[e.Src] |= 1 << uint(best)
		placed[e.Dst] |= 1 << uint(best)
	}
	return kept, nil
}

// Amend implements Amender. Ginger's owner vector is a pure edge scan over
// its refined per-vertex assignment, so amendment recovers that assignment
// from the surviving owners (every in-edge of a low-degree destination
// carries its machine), hash-seeds the vertices it cannot recover, re-runs
// the Fennel refinement over only the vertices the delta disturbed, and
// replays the final scan.
func (gp *Ginger) Amend(base *graph.Graph, owner []int32, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	if err := checkShares(shares, 1); err != nil {
		return nil, err
	}
	kept, err := amendSurvivors(base, owner, d, evolved)
	if err != nil {
		return nil, err
	}
	pk := newPicker(shares)
	baseIn := base.InDegrees()
	inDeg := evolved.InDegreesParallel(resolveShards(len(evolved.Edges)))
	flipped := classFlips(baseIn, inDeg, gp.Threshold)

	// Recover assign from surviving low→low edges: the refined placement
	// grouped each low-degree destination's in-edges on one machine.
	assign := make([]int32, evolved.NumVertices)
	recovered := make([]bool, evolved.NumVertices)
	for i, o := range kept {
		dst := evolved.Edges[i].Dst
		if !flipped[dst] && inDeg[dst] <= gp.Threshold {
			assign[dst] = o
			recovered[dst] = true
		}
	}
	for v := range assign {
		if !recovered[v] {
			assign[v] = pk.pick(vertexHash(seed, graph.VertexID(v)))
		}
	}

	// Re-refine exactly the disturbed vertices: endpoints the delta touched,
	// degree-class flips, and unrecovered vertices that actually feed the
	// edge scan.
	subset := map[graph.VertexID]bool{}
	for _, v := range d.Touched() {
		if int(v) < evolved.NumVertices && inDeg[v] <= gp.Threshold {
			subset[v] = true
		}
	}
	for v := range assign {
		if inDeg[v] <= gp.Threshold && (flipped[v] || (!recovered[v] && inDeg[v] > 0)) {
			subset[graph.VertexID(v)] = true
		}
	}
	gp.refineSubset(evolved, inDeg, assign, shares, subset)

	keptCount := len(kept)
	kept = kept[:len(evolved.Edges)]
	parallelRanges(len(evolved.Edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := evolved.Edges[i]
			if i < keptCount && !flipped[e.Dst] && inDeg[e.Dst] <= gp.Threshold && !subset[e.Dst] {
				// Surviving low-degree edge whose assignment didn't move.
				continue
			}
			if inDeg[e.Dst] > gp.Threshold {
				kept[i] = pk.pick(vertexHash(seed+1, e.Src))
			} else {
				kept[i] = assign[e.Dst]
			}
		}
	})
	return kept, nil
}

// refineSubset runs the Fennel-style refinement sweep of refineDirect over
// only the given vertices (in ID order, as the full sweep visits them),
// against loads accumulated from the complete assignment.
func (gp *Ginger) refineSubset(g *graph.Graph, inDeg []int32, assign []int32, shares []float64, subset map[graph.VertexID]bool) {
	if len(subset) == 0 {
		return
	}
	m := len(shares)
	vCount := make([]float64, m)
	eCount := make([]float64, m)
	for v := range assign {
		vCount[assign[v]]++
		eCount[assign[v]] += float64(inDeg[v])
	}
	ratio := 0.0
	if len(g.Edges) > 0 {
		ratio = float64(g.NumVertices) / float64(len(g.Edges))
	}
	hetFactor := make([]float64, m)
	for p := range hetFactor {
		hetFactor[p] = 1 / (shares[p] * float64(m))
	}

	order := make([]int, 0, len(subset))
	for v := range subset {
		order = append(order, int(v))
	}
	sort.Ints(order)

	sc := gingerScratchPool.Get().(*gingerScratch)
	defer gingerScratchPool.Put(sc)
	g.InCSRInto(&sc.in)
	neighborCount := make([]float64, m)
	for _, v := range order {
		cur := assign[v]
		vCount[cur]--
		eCount[cur] -= float64(inDeg[v])
		for p := range neighborCount {
			neighborCount[p] = 0
		}
		for _, u := range sc.in.Neighbors(graph.VertexID(v)) {
			if inDeg[u] <= gp.Threshold {
				neighborCount[assign[u]]++
			}
		}
		best := int32(0)
		bestScore := 0.0
		for p := 0; p < m; p++ {
			balance := 0.5 * gp.Gamma * (vCount[p] + ratio*eCount[p])
			score := neighborCount[p] - hetFactor[p]*balance
			if p == 0 || score > bestScore {
				best, bestScore = int32(p), score
			}
		}
		assign[v] = best
		vCount[best]++
		eCount[best] += float64(inDeg[v])
	}
}
