package partition

import "proxygraph/internal/graph"

// This file keeps the original single-threaded partitioner loops as
// executable specifications, mirroring how engine.RunSyncReference anchors
// the optimized engines: the production paths in randomhash.go, hybrid.go and
// ginger.go shard their scans and use the quantized picker, and the ingress
// differential test asserts their owner vectors are bit-identical to these
// references at every shard count and share vector.

// referenceRandom is the sequential spec of RandomHash.Partition.
func referenceRandom(g *graph.Graph, shares []float64, seed uint64) []int32 {
	cum := cumulative(shares)
	owner := make([]int32, len(g.Edges))
	for i, e := range g.Edges {
		owner[i] = pick(cum, edgeHash(seed, e))
	}
	return owner
}

// referenceHybrid is the sequential spec of Hybrid.Partition.
func referenceHybrid(h *Hybrid, g *graph.Graph, shares []float64, seed uint64) []int32 {
	cum := cumulative(shares)
	owner := make([]int32, len(g.Edges))
	inDeg := g.InDegrees()
	for i, e := range g.Edges {
		if inDeg[e.Dst] > h.Threshold {
			owner[i] = pick(cum, vertexHash(seed+1, e.Src))
		} else {
			owner[i] = pick(cum, vertexHash(seed, e.Dst))
		}
	}
	return owner
}

// referenceGinger is the sequential spec of Ginger.Partition. The greedy
// refinement is shared with the production path (it is order-dependent and
// sequential in both); only the hash phases differ in execution strategy.
func referenceGinger(gp *Ginger, g *graph.Graph, shares []float64, seed uint64) []int32 {
	cum := cumulative(shares)
	inDeg := g.InDegrees()
	owner := make([]int32, len(g.Edges))
	assign := make([]int32, g.NumVertices)
	for v := range assign {
		assign[v] = pick(cum, vertexHash(seed, graph.VertexID(v)))
	}
	gp.refine(g, shares, inDeg, assign)
	for i, e := range g.Edges {
		if inDeg[e.Dst] > gp.Threshold {
			owner[i] = pick(cum, vertexHash(seed+1, e.Src))
		} else {
			owner[i] = assign[e.Dst]
		}
	}
	return owner
}
