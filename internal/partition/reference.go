package partition

import (
	"math/bits"

	"proxygraph/internal/graph"
)

// This file keeps the original single-threaded partitioner loops as
// executable specifications, mirroring how engine.RunSyncReference anchors
// the optimized engines: the production paths in randomhash.go, hybrid.go,
// ginger.go, oblivious.go and hdrf.go shard their scans, window-batch their
// order-dependent streams and use the quantized picker, and the ingress
// differential test asserts their owner vectors are bit-identical to these
// references at every shard count, window size and share vector. The specs
// deliberately share no code with the production paths (naive binary-search
// picks, sorted CSR builds, straight-line per-edge loops), so the
// differential is a real cross-implementation check.

// referenceRandom is the sequential spec of RandomHash.Partition.
func referenceRandom(g *graph.Graph, shares []float64, seed uint64) []int32 {
	cum := cumulative(shares)
	owner := make([]int32, len(g.Edges))
	for i, e := range g.Edges {
		owner[i] = pick(cum, edgeHash(seed, e))
	}
	return owner
}

// referenceHybrid is the sequential spec of Hybrid.Partition.
func referenceHybrid(h *Hybrid, g *graph.Graph, shares []float64, seed uint64) []int32 {
	cum := cumulative(shares)
	owner := make([]int32, len(g.Edges))
	inDeg := g.InDegrees()
	for i, e := range g.Edges {
		if inDeg[e.Dst] > h.Threshold {
			owner[i] = pick(cum, vertexHash(seed+1, e.Src))
		} else {
			owner[i] = pick(cum, vertexHash(seed, e.Dst))
		}
	}
	return owner
}

// refineSequential is the sequential spec of Ginger's greedy refinement:
// vertices in ID order against evolving per-machine loads, in-neighborhoods
// from a freshly built sorted CSR.
func refineSequential(gp *Ginger, g *graph.Graph, shares []float64, inDeg []int32, assign []int32) {
	m := len(shares)
	inCSR := g.BuildInCSR()
	vCount := make([]float64, m)
	eCount := make([]float64, m)
	for v := range assign {
		vCount[assign[v]]++
		eCount[assign[v]] += float64(inDeg[v])
	}
	ratio := 0.0
	if len(g.Edges) > 0 {
		ratio = float64(g.NumVertices) / float64(len(g.Edges))
	}
	hetFactor := make([]float64, m)
	for p := range hetFactor {
		hetFactor[p] = 1 / (shares[p] * float64(m))
	}

	neighborCount := make([]float64, m)
	for v := 0; v < g.NumVertices; v++ {
		if inDeg[v] > gp.Threshold {
			continue
		}
		vid := graph.VertexID(v)
		cur := assign[v]
		// Remove v from its current machine while scoring (self-exclusion).
		vCount[cur]--
		eCount[cur] -= float64(inDeg[v])

		for p := range neighborCount {
			neighborCount[p] = 0
		}
		for _, u := range inCSR.Neighbors(vid) {
			if inDeg[u] <= gp.Threshold {
				neighborCount[assign[u]]++
			}
		}
		best := int32(0)
		bestScore := 0.0
		for p := 0; p < m; p++ {
			balance := 0.5 * gp.Gamma * (vCount[p] + ratio*eCount[p])
			score := neighborCount[p] - hetFactor[p]*balance
			if p == 0 || score > bestScore {
				best, bestScore = int32(p), score
			}
		}
		assign[v] = best
		vCount[best]++
		eCount[best] += float64(inDeg[v])
	}
}

// referenceGinger is the sequential spec of Ginger.Partition: naive hash
// phases around the sequential refinement sweep.
func referenceGinger(gp *Ginger, g *graph.Graph, shares []float64, seed uint64) []int32 {
	cum := cumulative(shares)
	inDeg := g.InDegrees()
	owner := make([]int32, len(g.Edges))
	assign := make([]int32, g.NumVertices)
	for v := range assign {
		assign[v] = pick(cum, vertexHash(seed, graph.VertexID(v)))
	}
	refineSequential(gp, g, shares, inDeg, assign)
	for i, e := range g.Edges {
		if inDeg[e.Dst] > gp.Threshold {
			owner[i] = pick(cum, vertexHash(seed+1, e.Src))
		} else {
			owner[i] = assign[e.Dst]
		}
	}
	return owner
}

// referenceOblivious is the sequential spec of Oblivious.Partition: one
// straight-line pass, candidate set derived and scored per edge.
func referenceOblivious(g *graph.Graph, shares []float64) []int32 {
	m := len(shares)
	placed := make([]uint64, g.NumVertices)
	load := make([]int64, m)
	owner := make([]int32, len(g.Edges))
	allMask := uint64(1)<<uint(m) - 1
	for i, e := range g.Edges {
		maskU, maskV := placed[e.Src], placed[e.Dst]
		var candidates uint64
		switch {
		case maskU&maskV != 0:
			candidates = maskU & maskV
		case maskU != 0 && maskV != 0:
			candidates = maskU | maskV
		case maskU != 0:
			candidates = maskU
		case maskV != 0:
			candidates = maskV
		default:
			candidates = allMask
		}
		best := int32(-1)
		bestScore := 0.0
		for mask := candidates; mask != 0; mask &= mask - 1 {
			p := int32(bits.TrailingZeros64(mask))
			score := float64(load[p]) / shares[p]
			if best == -1 || score < bestScore {
				best, bestScore = p, score
			}
		}
		owner[i] = best
		load[best]++
		placed[e.Src] |= 1 << uint(best)
		placed[e.Dst] |= 1 << uint(best)
	}
	return owner
}

// referenceHDRF is the sequential spec of HDRF.Partition: one straight-line
// pass, partial degrees, thetas and the full score scan inline per edge.
func referenceHDRF(h *HDRF, g *graph.Graph, shares []float64, seed uint64) []int32 {
	m := len(shares)
	placed := make([]uint64, g.NumVertices)
	partial := make([]int32, g.NumVertices)
	load := make([]float64, m)
	rawLoad := make([]int64, m)
	owner := make([]int32, len(g.Edges))
	for i, e := range g.Edges {
		partial[e.Src]++
		partial[e.Dst]++
		du, dv := float64(partial[e.Src]), float64(partial[e.Dst])
		thetaU := du / (du + dv)
		thetaV := 1 - thetaU

		minLoad, maxLoad := load[0], load[0]
		for _, l := range load[1:] {
			if l < minLoad {
				minLoad = l
			}
			if l > maxLoad {
				maxLoad = l
			}
		}
		best := int32(0)
		bestScore := -1.0
		for p := 0; p < m; p++ {
			rep := 0.0
			bit := uint64(1) << uint(p)
			if placed[e.Src]&bit != 0 {
				rep += 1 + (1 - thetaU)
			}
			if placed[e.Dst]&bit != 0 {
				rep += 1 + (1 - thetaV)
			}
			bal := (maxLoad - load[p]) / (1 + maxLoad - minLoad)
			score := rep + h.Lambda*bal
			if score > bestScore {
				bestScore, best = score, int32(p)
			} else if score == bestScore && hdrfTie(seed, i, p) > hdrfTie(seed, i, int(best)) {
				best = int32(p)
			}
		}
		owner[i] = best
		rawLoad[best]++
		load[best] = float64(rawLoad[best]) / (shares[best] * float64(len(g.Edges)+1))
		placed[e.Src] |= 1 << uint(best)
		placed[e.Dst] |= 1 << uint(best)
	}
	return owner
}
