// Package cliutil holds the small parsers the command-line tools share:
// cluster specifications, share vectors, and estimator selection.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
)

// ParseCluster turns a comma-separated machine list into a Cluster. Each
// entry is either a Table I catalog name ("c4.2xlarge") or a custom local
// Xeon in name:cores:freqGHz form ("xeon:12:2.5").
func ParseCluster(spec string) (*cluster.Cluster, error) {
	var machines []cluster.Machine
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := ParseMachine(part)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
	}
	return cluster.New(machines...)
}

// ParseMachine parses one machine entry (see ParseCluster).
func ParseMachine(entry string) (cluster.Machine, error) {
	if m, ok := cluster.ByName(entry); ok {
		return m, nil
	}
	fields := strings.Split(entry, ":")
	if len(fields) != 3 {
		return cluster.Machine{}, fmt.Errorf("machine %q: not in catalog and not name:cores:freqGHz", entry)
	}
	cores, err := strconv.Atoi(fields[1])
	if err != nil {
		return cluster.Machine{}, fmt.Errorf("machine %q: bad core count: %v", entry, err)
	}
	freq, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return cluster.Machine{}, fmt.Errorf("machine %q: bad frequency: %v", entry, err)
	}
	return cluster.LocalXeon(fmt.Sprintf("%s-%dc", fields[0], cores), cores, freq), nil
}

// ParseShares parses a comma-separated weight list ("1,3.5") into normalized
// shares; an empty string yields uniform shares over machines.
func ParseShares(weights string, machines int) ([]float64, error) {
	if weights == "" {
		return uniform(machines), nil
	}
	var ws []float64
	for _, f := range strings.Split(weights, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q: %v", f, err)
		}
		ws = append(ws, v)
	}
	return normalize(ws)
}

func uniform(m int) []float64 {
	shares := make([]float64, m)
	for i := range shares {
		shares[i] = 1 / float64(m)
	}
	return shares
}

func normalize(ws []float64) ([]float64, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("empty weight vector")
	}
	sum := 0.0
	for _, w := range ws {
		if w <= 0 {
			return nil, fmt.Errorf("weight %v must be positive", w)
		}
		sum += w
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = w / sum
	}
	return out, nil
}

// ParseEstimator builds the named CCR estimator: "proxy" (profiling at
// 1/scale), "prior-work" (thread counts) or "default" (uniform).
func ParseEstimator(name string, scale int, seed uint64) (core.Estimator, error) {
	switch name {
	case "proxy":
		return core.NewProxyProfiler(scale, seed)
	case "prior-work":
		return core.NewThreadCount(), nil
	case "default":
		return core.Uniform{}, nil
	default:
		return nil, fmt.Errorf("unknown estimator %q (want proxy, prior-work or default)", name)
	}
}
