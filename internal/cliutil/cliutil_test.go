package cliutil

import (
	"math"
	"testing"
)

func TestParseClusterCatalogNames(t *testing.T) {
	cl, err := ParseCluster("m4.2xlarge, c4.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 2 || cl.Machines[0].Name != "m4.2xlarge" {
		t.Errorf("cluster = %v", cl.Machines)
	}
}

func TestParseClusterCustomXeons(t *testing.T) {
	cl, err := ParseCluster("xeon:4:2.5,xeon:12:2.5")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 2 {
		t.Fatalf("size = %d", cl.Size())
	}
	m := cl.Machines[0]
	if m.Name != "xeon-4c" || m.ComputeThreads != 4 || m.FreqGHz != 2.5 {
		t.Errorf("machine = %+v", m)
	}
}

func TestParseClusterMixedAndSpaces(t *testing.T) {
	cl, err := ParseCluster(" c4.xlarge , xeon:8:2.2 , ")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 2 {
		t.Errorf("size = %d", cl.Size())
	}
}

func TestParseClusterErrors(t *testing.T) {
	for _, spec := range []string{"nonexistent", "xeon:4", "xeon:x:2.5", "xeon:4:y", ""} {
		if _, err := ParseCluster(spec); err == nil {
			t.Errorf("spec %q should error", spec)
		}
	}
}

func TestParseSharesUniform(t *testing.T) {
	s, err := ParseShares("", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if v != 0.25 {
			t.Fatalf("uniform shares = %v", s)
		}
	}
}

func TestParseSharesWeighted(t *testing.T) {
	s, err := ParseShares("1, 3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-0.25) > 1e-12 || math.Abs(s[1]-0.75) > 1e-12 {
		t.Errorf("shares = %v", s)
	}
}

func TestParseSharesErrors(t *testing.T) {
	for _, spec := range []string{"1,x", "0,1", "-1,2"} {
		if _, err := ParseShares(spec, 2); err == nil {
			t.Errorf("spec %q should error", spec)
		}
	}
}

func TestParseEstimator(t *testing.T) {
	for _, name := range []string{"prior-work", "default"} {
		est, err := ParseEstimator(name, 64, 1)
		if err != nil || est == nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	est, err := ParseEstimator("proxy", 4096, 1)
	if err != nil || est.Name() != "proxy" {
		t.Errorf("proxy: %v", err)
	}
	if _, err := ParseEstimator("magic", 64, 1); err == nil {
		t.Error("unknown estimator should error")
	}
}
