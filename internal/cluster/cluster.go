package cluster

import (
	"fmt"
	"sort"
)

// Network models the interconnect between machines: full bisection bandwidth
// per node plus a per-exchange latency. The paper's local nodes are
// "connected via high-speed router"; minimizing communication is explicitly
// out of the paper's scope (Section III-B), so a simple linear model
// suffices.
type Network struct {
	// BandwidthGBs is per-machine NIC bandwidth in GB/s.
	BandwidthGBs float64
	// LatencySec is the fixed cost of one synchronization exchange.
	LatencySec float64
}

// DefaultNetwork returns a 10 Gb/s, 50 µs interconnect.
func DefaultNetwork() Network {
	return Network{BandwidthGBs: 1.25, LatencySec: 50e-6}
}

// TransferTime returns the seconds one machine spends moving bytes.
func (n Network) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return n.LatencySec + bytes/(n.BandwidthGBs*1e9)
}

// Cluster is a set of machines with an interconnect.
type Cluster struct {
	Machines []Machine
	Net      Network
}

// New builds a cluster over the given machines with the default network.
func New(machines ...Machine) (*Cluster, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("cluster: need at least one machine")
	}
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, err
		}
	}
	return &Cluster{Machines: machines, Net: DefaultNetwork()}, nil
}

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.Machines) }

// Groups partitions machine indices by machine type (Name). Profiling runs
// once per group (Section III-B: "all C4.xlarge machines within the deployed
// cluster should be treated as one group, but only one of them needs to be
// profiled"). Group keys are returned in sorted order for determinism.
func (c *Cluster) Groups() (keys []string, members map[string][]int) {
	members = map[string][]int{}
	for i, m := range c.Machines {
		members[m.Name] = append(members[m.Name], i)
	}
	keys = make([]string, 0, len(members))
	for k := range members {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, members
}

// Representatives returns one machine index per group, keyed by group name.
func (c *Cluster) Representatives() map[string]int {
	_, members := c.Groups()
	reps := make(map[string]int, len(members))
	for k, idx := range members {
		reps[k] = idx[0]
	}
	return reps
}

// TotalCostPerHour sums the machines' hourly rates.
func (c *Cluster) TotalCostPerHour() float64 {
	total := 0.0
	for _, m := range c.Machines {
		total += m.CostPerHour
	}
	return total
}
