// Package cluster models the heterogeneous machines the paper runs on.
//
// The paper's testbeds are Amazon EC2 instances (Table I) and local Xeon E5
// servers, neither of which is available here, so this package is the
// simulation substrate standing in for them: an analytic machine model that
// converts instrumented application work into execution time, power and
// cost. The model is a classic roofline with an Amdahl term:
//
//	t_cpu = (s + (1-s)/P) · CPUOps / (freq · IPC)
//	t_mem = MemBytes / MemBW
//	t     = max(t_cpu, t_mem)
//
// so compute-bound applications (Triangle Count) scale with cores and
// frequency while memory-bound ones (PageRank) saturate on bandwidth —
// exactly the application-diverse scaling of the paper's Fig 2 that makes
// thread-count capability estimates wrong by ~108%.
package cluster

import (
	"fmt"
	"math"
)

// Machine describes one compute node. Machines are value types; construct
// from the catalog or the helper constructors and customize by copying.
type Machine struct {
	// Name is the instance type, e.g. "c4.2xlarge"; machines of the same
	// Name belong to the same profiling group (Section III-B).
	Name string
	// HWThreads is the hardware thread count as advertised (Table I).
	HWThreads int
	// ComputeThreads is the thread count available to graph computation;
	// the paper reserves two logical cores per node for communication.
	ComputeThreads int
	// FreqGHz is the sustained core clock.
	FreqGHz float64
	// IPC is the sustained scalar operations per cycle for graph workloads.
	IPC float64
	// MemBWGBs is the achievable memory bandwidth in GB/s.
	MemBWGBs float64
	// CostPerHour is the hourly price in USD (0 for local machines).
	CostPerHour float64
	// Virtual reports whether this is a cloud instance (Table I "Type").
	Virtual bool
	// IdleWatts is drawn whenever the machine is on.
	IdleWatts float64
	// CoreWatts is the additional draw per active core at RefFreqGHz.
	CoreWatts float64
	// RefFreqGHz is the frequency CoreWatts is specified at.
	RefFreqGHz float64
	// DiskBWGBs is sustained storage read bandwidth in GB/s; zero selects
	// DefaultDiskGBs in consumers.
	DiskBWGBs float64
}

// DefaultDiskGBs is the storage bandwidth assumed for machines that do not
// configure one (EBS-class network storage).
const DefaultDiskGBs = 0.25

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("cluster: machine has no name")
	case m.ComputeThreads < 1:
		return fmt.Errorf("cluster: machine %q has %d compute threads, need >= 1", m.Name, m.ComputeThreads)
	case m.FreqGHz <= 0:
		return fmt.Errorf("cluster: machine %q has non-positive frequency", m.Name)
	case m.IPC <= 0:
		return fmt.Errorf("cluster: machine %q has non-positive IPC", m.Name)
	case m.MemBWGBs <= 0:
		return fmt.Errorf("cluster: machine %q has non-positive memory bandwidth", m.Name)
	}
	return nil
}

// CoreRate returns one core's scalar throughput in operations per second.
func (m Machine) CoreRate() float64 {
	return m.FreqGHz * 1e9 * m.IPC
}

// Work is the instrumented cost of a chunk of graph computation, produced by
// the engine's counters and consumed by the machine model.
type Work struct {
	// CPUOps counts scalar operation units (edge gathers, set-intersection
	// probes, vertex applies...).
	CPUOps float64
	// MemBytes counts bytes moved through the memory system.
	MemBytes float64
	// SerialFrac is the fraction of CPUOps on the critical path that cannot
	// use more than one core (framework dispatch, reductions).
	SerialFrac float64
}

// Add accumulates other into w. SerialFrac is combined as a CPUOps-weighted
// average.
func (w *Work) Add(other Work) {
	total := w.CPUOps + other.CPUOps
	if total > 0 {
		w.SerialFrac = (w.SerialFrac*w.CPUOps + other.SerialFrac*other.CPUOps) / total
	}
	w.CPUOps = total
	w.MemBytes += other.MemBytes
}

// Scale returns w with both cost terms multiplied by f.
func (w Work) Scale(f float64) Work {
	w.CPUOps *= f
	w.MemBytes *= f
	return w
}

// ComputeTime returns the seconds this machine needs to execute w.
func (m Machine) ComputeTime(w Work) float64 {
	if w.CPUOps <= 0 && w.MemBytes <= 0 {
		return 0
	}
	s := w.SerialFrac
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	p := float64(m.ComputeThreads)
	tCPU := (s + (1-s)/p) * w.CPUOps / m.CoreRate()
	tMem := w.MemBytes / (m.MemBWGBs * 1e9)
	return math.Max(tCPU, tMem)
}

// Power returns the machine's draw in watts with active cores busy.
// Dynamic power scales as f^2.5 around the reference frequency, the usual
// DVFS approximation (P_dyn ∝ f·V² with V roughly linear in f).
func (m Machine) Power(activeCores int) float64 {
	if activeCores < 0 {
		activeCores = 0
	}
	if activeCores > m.ComputeThreads {
		activeCores = m.ComputeThreads
	}
	ref := m.RefFreqGHz
	if ref <= 0 {
		ref = m.FreqGHz
	}
	scale := math.Pow(m.FreqGHz/ref, 2.5)
	return m.IdleWatts + float64(activeCores)*m.CoreWatts*scale
}

// Energy returns joules consumed over a run in which the machine is busy on
// all compute cores for busySeconds and on for totalSeconds (idling for the
// remainder, e.g. waiting at the synchronization barrier for stragglers).
func (m Machine) Energy(busySeconds, totalSeconds float64) float64 {
	if totalSeconds < busySeconds {
		totalSeconds = busySeconds
	}
	busyPower := m.Power(m.ComputeThreads)
	return busyPower*busySeconds + m.IdleWatts*(totalSeconds-busySeconds)
}

// CostPerTask returns the paper's Fig 11 cost-efficiency metric: task
// runtime multiplied by the machine's hourly rate, in USD.
func (m Machine) CostPerTask(runtimeSeconds float64) float64 {
	return runtimeSeconds / 3600 * m.CostPerHour
}

// WithFrequency returns a copy of m clocked at freqGHz. Memory bandwidth
// scales superlinearly with the frequency ratio (exponent 2.5): downclocked
// "tiny ARM-like" parts lose uncore frequency, miss concurrency and prefetch
// depth together, which is how the paper's Case 3 frequency manipulation
// shifts the CCRs far beyond the plain core-count ratio (PageRank going
// above 1:6 while Triangle Count only reaches 1:4.5).
func (m Machine) WithFrequency(freqGHz float64) Machine {
	ratio := freqGHz / m.FreqGHz
	m.MemBWGBs *= math.Pow(ratio, 2.5)
	m.FreqGHz = freqGHz
	m.Name = fmt.Sprintf("%s@%.1fGHz", m.Name, freqGHz)
	return m
}

// Catalog returns the machines of Table I. EC2 parameters (frequency, IPC,
// bandwidth) are calibrated so the relative behaviours the paper measured
// hold: c4 (compute-optimized, 2.9GHz Haswell) ≈1.2× m4 (2.4GHz), r3
// (memory-optimized, 2.5GHz with more bandwidth) ≈1.1× m4, and memory
// bandwidth grows sublinearly with instance size so memory-bound
// applications saturate (Fig 2, Fig 8a).
func Catalog() []Machine {
	return []Machine{
		ec2("c4.xlarge", 4, 2, 2.9, 1.00, 11, 0.209),
		ec2("c4.2xlarge", 8, 6, 2.9, 1.00, 33, 0.419),
		ec2("m4.2xlarge", 8, 6, 2.4, 1.00, 27, 0.479),
		ec2("r3.2xlarge", 8, 6, 2.5, 1.00, 30, 0.665),
		ec2("c4.4xlarge", 16, 14, 2.9, 1.00, 55, 0.838),
		ec2("c4.8xlarge", 36, 34, 2.9, 1.00, 62, 1.675),
		XeonServerS(),
		XeonServerL(),
	}
}

func ec2(name string, hw, compute int, freq, ipc, membw, cost float64) Machine {
	return Machine{
		Name:           name,
		HWThreads:      hw,
		ComputeThreads: compute,
		FreqGHz:        freq,
		IPC:            ipc,
		MemBWGBs:       membw,
		CostPerHour:    cost,
		Virtual:        true,
		IdleWatts:      30 + 2.2*float64(hw),
		CoreWatts:      5.5,
		RefFreqGHz:     2.9,
		DiskBWGBs:      0.25, // EBS-class volumes
	}
}

// XeonServerS is the small local physical server of Table I
// (4 hardware threads, 2 computing threads).
func XeonServerS() Machine {
	m := LocalXeon("XeonServerS", 4, 2.5)
	m.HWThreads = 4
	m.ComputeThreads = 2
	m.MemBWGBs = 9
	return m
}

// XeonServerL is the large local physical server of Table I. The paper's
// Case 2/3 text identifies it as a 12-core machine at up to 2.5GHz.
func XeonServerL() Machine {
	return LocalXeon("XeonServerL", 12, 2.5)
}

// LocalXeon constructs a physical Intel Xeon E5-class machine with the given
// number of compute cores, all usable for computation, at freqGHz.
// Achievable memory bandwidth is concurrency-limited: each core sustains a
// bounded number of outstanding misses (~4.3 GB/s here), so bandwidth grows
// with core count until the socket cap — the effect that lets bigger local
// machines beat the pure Amdahl ratio, as the paper's Case 2 CCRs (~1:3.5
// for 4 vs 12 cores) show.
func LocalXeon(name string, cores int, freqGHz float64) Machine {
	return Machine{
		Name:           name,
		HWThreads:      cores, // hyperthreading disabled, as on the paper's local servers (Table I: Xeon S has 4 HW / 2 computing threads)
		ComputeThreads: cores,
		FreqGHz:        freqGHz,
		IPC:            1.0,
		MemBWGBs:       math.Min(4.3*float64(cores), 55),
		CostPerHour:    0,
		Virtual:        false,
		IdleWatts:      40 + 3*float64(cores),
		CoreWatts:      6.0,
		RefFreqGHz:     2.5,
		DiskBWGBs:      0.5, // local SATA SSD
	}
}

// ByName returns the catalog machine with the given name.
func ByName(name string) (Machine, bool) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}
