package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogMatchesTableI(t *testing.T) {
	want := map[string]struct {
		hw, compute int
		cost        float64
		virtual     bool
	}{
		"c4.xlarge":   {4, 2, 0.209, true},
		"c4.2xlarge":  {8, 6, 0.419, true},
		"m4.2xlarge":  {8, 6, 0.479, true},
		"r3.2xlarge":  {8, 6, 0.665, true},
		"c4.4xlarge":  {16, 14, 0.838, true},
		"c4.8xlarge":  {36, 34, 1.675, true},
		"XeonServerS": {4, 2, 0, false},
	}
	for name, w := range want {
		m, ok := ByName(name)
		if !ok {
			t.Errorf("machine %q missing from catalog", name)
			continue
		}
		if m.HWThreads != w.hw || m.ComputeThreads != w.compute {
			t.Errorf("%s: threads %d/%d, want %d/%d", name, m.HWThreads, m.ComputeThreads, w.hw, w.compute)
		}
		if m.CostPerHour != w.cost {
			t.Errorf("%s: cost %v, want %v", name, m.CostPerHour, w.cost)
		}
		if m.Virtual != w.virtual {
			t.Errorf("%s: virtual = %v", name, m.Virtual)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should miss for unknown machines")
	}
}

func TestCatalogValidates(t *testing.T) {
	for _, m := range Catalog() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	good, _ := ByName("c4.xlarge")
	cases := []func(Machine) Machine{
		func(m Machine) Machine { m.Name = ""; return m },
		func(m Machine) Machine { m.ComputeThreads = 0; return m },
		func(m Machine) Machine { m.FreqGHz = 0; return m },
		func(m Machine) Machine { m.IPC = -1; return m },
		func(m Machine) Machine { m.MemBWGBs = 0; return m },
	}
	for i, mutate := range cases {
		if err := mutate(good).Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestComputeTimeZeroWork(t *testing.T) {
	m, _ := ByName("c4.xlarge")
	if got := m.ComputeTime(Work{}); got != 0 {
		t.Errorf("zero work should cost 0 seconds, got %v", got)
	}
}

func TestComputeTimeMoreCoresFaster(t *testing.T) {
	// Compute-bound parallel work: more compute threads must be faster.
	w := Work{CPUOps: 1e9, SerialFrac: 0.02}
	small, _ := ByName("c4.xlarge")
	big, _ := ByName("c4.8xlarge")
	if small.ComputeTime(w) <= big.ComputeTime(w) {
		t.Error("8xlarge should beat xlarge on parallel compute-bound work")
	}
}

func TestComputeTimeMemoryBoundSaturates(t *testing.T) {
	// Memory-bound work scales with bandwidth, not threads: the 8xlarge
	// advantage must be far below its 17x thread advantage (the Fig 2
	// PageRank saturation effect).
	w := Work{CPUOps: 1e8, MemBytes: 4e9, SerialFrac: 0.02}
	small, _ := ByName("c4.xlarge")
	big, _ := ByName("c4.8xlarge")
	speedup := small.ComputeTime(w) / big.ComputeTime(w)
	threadRatio := float64(big.ComputeThreads) / float64(small.ComputeThreads)
	if speedup >= threadRatio/2 {
		t.Errorf("memory-bound speedup %v too close to thread ratio %v", speedup, threadRatio)
	}
	if speedup < 1.5 {
		t.Errorf("memory-bound speedup %v: bigger machine should still win some", speedup)
	}
}

func TestComputeTimeSerialFracLimits(t *testing.T) {
	// Fully serial work: core count must not matter.
	w := Work{CPUOps: 1e9, SerialFrac: 1}
	small, _ := ByName("c4.xlarge")
	big, _ := ByName("c4.8xlarge")
	ts, tb := small.ComputeTime(w), big.ComputeTime(w)
	if math.Abs(ts-tb)/ts > 1e-9 {
		t.Errorf("serial work times differ: %v vs %v", ts, tb)
	}
}

func TestComputeTimeClampsSerialFrac(t *testing.T) {
	m, _ := ByName("c4.xlarge")
	w := Work{CPUOps: 1e9, SerialFrac: -0.5}
	if m.ComputeTime(w) <= 0 {
		t.Error("clamped serial fraction should still produce positive time")
	}
	w.SerialFrac = 2
	if m.ComputeTime(w) != m.ComputeTime(Work{CPUOps: 1e9, SerialFrac: 1}) {
		t.Error("serial fraction should clamp to 1")
	}
}

func TestC4BeatsM4SlightlyAndR3InBetween(t *testing.T) {
	// Paper Fig 8b: c4.2xlarge ≈ 1.2x m4.2xlarge; r3.2xlarge ≈ 1.1x.
	// Check on a mixed workload.
	w := Work{CPUOps: 2e9, MemBytes: 4e9, SerialFrac: 0.03}
	c4, _ := ByName("c4.2xlarge")
	m4, _ := ByName("m4.2xlarge")
	r3, _ := ByName("r3.2xlarge")
	sC4 := m4.ComputeTime(w) / c4.ComputeTime(w)
	sR3 := m4.ComputeTime(w) / r3.ComputeTime(w)
	if sC4 < 1.05 || sC4 > 1.4 {
		t.Errorf("c4/m4 speedup = %v, want ~1.2", sC4)
	}
	if sR3 < 1.0 || sR3 > 1.3 {
		t.Errorf("r3/m4 speedup = %v, want ~1.1", sR3)
	}
}

func TestWorkAdd(t *testing.T) {
	w := Work{CPUOps: 100, MemBytes: 10, SerialFrac: 0.1}
	w.Add(Work{CPUOps: 300, MemBytes: 30, SerialFrac: 0.5})
	if w.CPUOps != 400 || w.MemBytes != 40 {
		t.Errorf("Add totals wrong: %+v", w)
	}
	want := (0.1*100 + 0.5*300) / 400
	if math.Abs(w.SerialFrac-want) > 1e-12 {
		t.Errorf("SerialFrac = %v, want %v", w.SerialFrac, want)
	}
	// Adding zero work is a no-op.
	before := w
	w.Add(Work{})
	if w != before {
		t.Errorf("adding zero work changed %+v to %+v", before, w)
	}
}

func TestWorkScale(t *testing.T) {
	w := Work{CPUOps: 100, MemBytes: 10, SerialFrac: 0.2}
	s := w.Scale(2.5)
	if s.CPUOps != 250 || s.MemBytes != 25 || s.SerialFrac != 0.2 {
		t.Errorf("Scale result %+v", s)
	}
}

func TestPowerMonotone(t *testing.T) {
	m, _ := ByName("c4.2xlarge")
	if m.Power(0) != m.IdleWatts {
		t.Errorf("Power(0) = %v, want idle %v", m.Power(0), m.IdleWatts)
	}
	prev := m.Power(0)
	for c := 1; c <= m.ComputeThreads; c++ {
		p := m.Power(c)
		if p <= prev {
			t.Fatalf("power not increasing at %d cores", c)
		}
		prev = p
	}
	// Clamping: requesting more cores than exist caps at full power.
	if m.Power(100) != m.Power(m.ComputeThreads) {
		t.Error("power should clamp at compute thread count")
	}
	if m.Power(-5) != m.IdleWatts {
		t.Error("negative active cores should clamp to idle")
	}
}

func TestFrequencyScalingReducesPower(t *testing.T) {
	m := XeonServerL()
	slow := m.WithFrequency(1.8)
	if slow.FreqGHz != 1.8 {
		t.Fatalf("WithFrequency did not set freq: %v", slow.FreqGHz)
	}
	if slow.MemBWGBs >= m.MemBWGBs {
		t.Error("bandwidth should shrink with frequency")
	}
	if slow.Power(slow.ComputeThreads) >= m.Power(m.ComputeThreads) {
		t.Error("downclocked machine should draw less at full load")
	}
	if slow.Name == m.Name {
		t.Error("WithFrequency should rename the machine (new profiling group)")
	}
}

func TestEnergyAccountsIdleTail(t *testing.T) {
	m := XeonServerL()
	// Busy 10s within a 20s makespan must cost more than busy 10s/10s
	// (idle tail burns IdleWatts) but less than busy 20s/20s.
	e10in20 := m.Energy(10, 20)
	e10in10 := m.Energy(10, 10)
	e20in20 := m.Energy(20, 20)
	if !(e10in10 < e10in20 && e10in20 < e20in20) {
		t.Errorf("energy ordering violated: %v, %v, %v", e10in10, e10in20, e20in20)
	}
	// Degenerate input: total < busy clamps to busy.
	if m.Energy(10, 5) != m.Energy(10, 10) {
		t.Error("total < busy should clamp")
	}
}

func TestCostPerTask(t *testing.T) {
	m, _ := ByName("c4.xlarge")
	got := m.CostPerTask(3600)
	if math.Abs(got-0.209) > 1e-12 {
		t.Errorf("1 hour on c4.xlarge = $%v, want $0.209", got)
	}
}

func TestComputeTimePositiveProperty(t *testing.T) {
	m, _ := ByName("m4.2xlarge")
	f := func(ops, bytes uint32, sf uint8) bool {
		w := Work{
			CPUOps:     float64(ops),
			MemBytes:   float64(bytes),
			SerialFrac: float64(sf) / 255,
		}
		tm := m.ComputeTime(w)
		if ops == 0 && bytes == 0 {
			return tm == 0
		}
		return tm >= 0 && !math.IsNaN(tm) && !math.IsInf(tm, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetworkTransferTime(t *testing.T) {
	n := DefaultNetwork()
	if n.TransferTime(0) != 0 {
		t.Error("zero bytes should cost 0")
	}
	small := n.TransferTime(1)
	big := n.TransferTime(1e9)
	if small <= 0 || big <= small {
		t.Errorf("transfer times: %v, %v", small, big)
	}
	// 1GB at 1.25GB/s ≈ 0.8s + latency.
	if math.Abs(big-(0.8+n.LatencySec)) > 1e-9 {
		t.Errorf("1GB transfer = %v, want ~0.8s", big)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty cluster should error")
	}
	bad := Machine{Name: "bad"}
	if _, err := New(bad); err == nil {
		t.Error("invalid machine should error")
	}
	m, _ := ByName("c4.xlarge")
	c, err := New(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Errorf("Size = %d", c.Size())
	}
}

func TestGroupsAndRepresentatives(t *testing.T) {
	c4x, _ := ByName("c4.xlarge")
	c42, _ := ByName("c4.2xlarge")
	c, err := New(c4x, c42, c4x, c4x)
	if err != nil {
		t.Fatal(err)
	}
	keys, members := c.Groups()
	if len(keys) != 2 {
		t.Fatalf("groups = %v", keys)
	}
	if len(members["c4.xlarge"]) != 3 || len(members["c4.2xlarge"]) != 1 {
		t.Errorf("membership wrong: %v", members)
	}
	reps := c.Representatives()
	if len(reps) != 2 {
		t.Errorf("representatives = %v", reps)
	}
	if c.Machines[reps["c4.xlarge"]].Name != "c4.xlarge" {
		t.Error("representative points at wrong machine")
	}
}

func TestTotalCostPerHour(t *testing.T) {
	c4x, _ := ByName("c4.xlarge")
	c42, _ := ByName("c4.2xlarge")
	c, _ := New(c4x, c42)
	want := 0.209 + 0.419
	if math.Abs(c.TotalCostPerHour()-want) > 1e-12 {
		t.Errorf("TotalCostPerHour = %v, want %v", c.TotalCostPerHour(), want)
	}
}

func TestLocalXeonScaling(t *testing.T) {
	small := LocalXeon("s", 4, 2.5)
	large := LocalXeon("l", 12, 2.5)
	if large.MemBWGBs <= small.MemBWGBs {
		t.Error("more cores should come with more bandwidth")
	}
	if ratio := large.MemBWGBs / small.MemBWGBs; ratio > 3.01 {
		t.Errorf("bandwidth ratio %v should not exceed the core ratio (3x)", ratio)
	}
	// The socket cap binds eventually: a 32-core part cannot keep scaling.
	huge := LocalXeon("h", 32, 2.5)
	if huge.MemBWGBs > 55.01 {
		t.Errorf("bandwidth %v exceeds the socket cap", huge.MemBWGBs)
	}
}

func TestComputeTimeLinearInWork(t *testing.T) {
	// Doubling the work doubles the time (the linearity the CCR-to-share
	// mapping relies on).
	m, _ := ByName("c4.2xlarge")
	f := func(rawOps, rawBytes uint32) bool {
		w := Work{CPUOps: 1 + float64(rawOps%1000000), MemBytes: 1 + float64(rawBytes%1000000), SerialFrac: 0.05}
		t1 := m.ComputeTime(w)
		t2 := m.ComputeTime(w.Scale(2))
		return math.Abs(t2-2*t1) < 1e-12*t2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyAdditiveInBusyTime(t *testing.T) {
	m := XeonServerL()
	// With a fixed makespan, energy is linear in busy time.
	e0 := m.Energy(0, 10)
	e5 := m.Energy(5, 10)
	e10 := m.Energy(10, 10)
	if math.Abs((e5-e0)-(e10-e5)) > 1e-9 {
		t.Errorf("energy not linear in busy time: %v, %v, %v", e0, e5, e10)
	}
	if e0 != m.IdleWatts*10 {
		t.Errorf("all-idle energy = %v, want %v", e0, m.IdleWatts*10)
	}
}

func TestWithFrequencyRenames(t *testing.T) {
	m := LocalXeon("node", 8, 2.5)
	slow := m.WithFrequency(1.8)
	if slow.Name != "node@1.8GHz" {
		t.Errorf("name = %q", slow.Name)
	}
	// Renaming matters: downclocked machines form their own profiling group.
	cl, err := New(m, slow)
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := cl.Groups()
	if len(keys) != 2 {
		t.Errorf("groups = %v, want 2 distinct", keys)
	}
}

func TestDiskBandwidthDefaults(t *testing.T) {
	for _, m := range Catalog() {
		if m.DiskBWGBs <= 0 {
			t.Errorf("%s: no disk bandwidth configured", m.Name)
		}
	}
	if DefaultDiskGBs <= 0 {
		t.Error("DefaultDiskGBs must be positive")
	}
}
