package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(42) != Hash64(42) {
		t.Fatal("Hash64 is not deterministic")
	}
	if Hash64(42) == Hash64(43) {
		t.Fatal("Hash64(42) == Hash64(43): suspicious collision on adjacent inputs")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 200
	totalFlips := 0
	for i := uint64(0); i < trials; i++ {
		base := Hash64(i)
		flipped := Hash64(i ^ 1)
		diff := base ^ flipped
		for diff != 0 {
			totalFlips += int(diff & 1)
			diff >>= 1
		}
	}
	mean := float64(totalFlips) / trials
	if mean < 24 || mean > 40 {
		t.Errorf("avalanche mean bit flips = %.2f, want near 32", mean)
	}
}

func TestHash2OrderSensitive(t *testing.T) {
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Error("Hash2 should not be symmetric")
	}
}

func TestHash3Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for a := uint64(0); a < 10; a++ {
		for b := uint64(0); b < 10; b++ {
			for c := uint64(0); c < 10; c++ {
				h := Hash3(a, b, c)
				if seen[h] {
					t.Fatalf("collision at (%d,%d,%d)", a, b, c)
				}
				seen[h] = true
			}
		}
	}
}

func TestHashStringBasic(t *testing.T) {
	if HashString("pagerank") == HashString("coloring") {
		t.Error("different strings should hash differently")
	}
	if HashString("x") != HashString("x") {
		t.Error("HashString not deterministic")
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical outputs across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// Child stream should not replicate the parent's next outputs.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("%d collisions between parent and child streams", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check over 10 buckets.
	s := New(123)
	const buckets, samples = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[s.Uint64n(buckets)]++
	}
	expect := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 9 degrees of freedom; 99.9th percentile is about 27.9.
	if chi2 > 28 {
		t.Errorf("chi-squared = %.2f, distribution looks non-uniform: %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(17)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(29)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64() = %v invalid", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1.0", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(31)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(13)
	data := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range data {
		sum += v
	}
	s.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	got := 0
	for _, v := range data {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: %v", data)
	}
}

func TestMul64AgainstBigArithmetic(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via decomposition into 32-bit halves computed independently.
		aLo, aHi := a&0xffffffff, a>>32
		bLo, bHi := b&0xffffffff, b>>32
		ll := aLo * bLo
		lh := aLo * bHi
		hl := aHi * bLo
		hh := aHi * bHi
		carry := (ll >> 32) + (lh & 0xffffffff) + (hl & 0xffffffff)
		wantLo := a * b
		wantHi := hh + (lh >> 32) + (hl >> 32) + (carry >> 32)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64Injective(t *testing.T) {
	// SplitMix64's output function is a bijection on 64-bit inputs; check a
	// window for collisions as a regression guard.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Hash64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Hash64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64(uint64(i))
	}
	_ = sink
}
