// Package rng provides small, fast, deterministic pseudo-random number
// generators used by every stochastic component in this repository.
//
// All experiments in the paper reproduction must be bit-reproducible across
// runs and platforms, so we do not use math/rand's global state. Instead we
// implement SplitMix64 (for seeding and stateless hashing) and xoshiro256**
// (for bulk stream generation), both public-domain algorithms by Blackman and
// Vigna. A Source can be split into independent child streams, which lets
// parallel workers draw from decorrelated sequences without locking.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used both as a seed expander and as a cheap stateless hash.
func splitMix64(state uint64) (next uint64, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Hash64 returns a well-mixed 64-bit hash of x. It is stateless and
// deterministic, suitable for hash partitioning decisions.
func Hash64(x uint64) uint64 {
	_, out := splitMix64(x)
	return out
}

// Hash2 mixes two 64-bit values into one hash. Order matters:
// Hash2(a, b) != Hash2(b, a) in general.
func Hash2(a, b uint64) uint64 {
	return Hash64(a ^ (Hash64(b) + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2)))
}

// Hash3 mixes three 64-bit values into one hash.
func Hash3(a, b, c uint64) uint64 {
	return Hash2(Hash2(a, b), c)
}

// HashString returns a 64-bit FNV-1a style hash of s, further mixed through
// SplitMix64 to improve avalanche behaviour for short strings.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return Hash64(h)
}

// Source is a xoshiro256** generator. The zero value is not valid; construct
// with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation (never seed xoshiro state directly with
// low-entropy values).
func New(seed uint64) *Source {
	var src Source
	state := seed
	for i := range src.s {
		state, src.s[i] = splitMix64(state)
	}
	// xoshiro requires a nonzero state; SplitMix64 outputs are zero for at
	// most one of the four words, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value in the stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split derives an independent child Source. The child's stream is
// decorrelated from the parent's future output, so parallel workers can each
// take a Split without coordination.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa0761d6478bd642f)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Lemire rejection sampling on the high bits.
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with rate 1,
// via inverse transform sampling.
func (s *Source) ExpFloat64() float64 {
	u := s.Float64()
	// Float64 is in [0,1); 1-u is in (0,1], so the log is finite.
	return -math.Log(1 - u)
}

// NormFloat64 returns a standard normal value via the Box-Muller transform.
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		if u1 == 0 {
			continue
		}
		u2 := s.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a pseudo-random permutation of [0, n) as a slice,
// using the Fisher-Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
