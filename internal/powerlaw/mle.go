package powerlaw

import (
	"fmt"
	"math"
)

// This file adds maximum-likelihood α estimation from observed degrees —
// the Clauset–Shalizi–Newman approach — complementing the paper's
// moment-matching fit (Eq 7), which only needs |V| and |E|. When the full
// degree sequence is available (e.g. from cmd/graphstats), the MLE uses all
// of it and is robust to the tail truncation that skews moment fits.

// FitAlphaMLE estimates α by maximizing the discrete power-law likelihood
// over degrees >= dmin:
//
//	L(α) = Σ_{d >= dmin} count(d) · [ -α·ln d − ln ζ(α, dmin) ]
//
// where ζ(α, dmin) is the truncated zeta Σ_{i=dmin..D} i^(-α). degrees may
// contain zeros (isolated vertices), which are ignored along with anything
// below dmin. dmin <= 0 selects 1.
func FitAlphaMLE(degrees []int32, dmin int) (float64, error) {
	if dmin <= 0 {
		dmin = 1
	}
	var (
		n      float64
		sumLog float64
		maxDeg int
	)
	for _, d := range degrees {
		if int(d) < dmin {
			continue
		}
		n++
		sumLog += math.Log(float64(d))
		if int(d) > maxDeg {
			maxDeg = int(d)
		}
	}
	return solveMLE(n, sumLog, dmin, maxDeg)
}

// FitAlphaFromHistogram is FitAlphaMLE over (degree, count) pairs, the form
// graph.DegreeHistogram produces.
func FitAlphaFromHistogram(deg []int, count []int64, dmin int) (float64, error) {
	if len(deg) != len(count) {
		return 0, fmt.Errorf("powerlaw: histogram lengths differ (%d vs %d)", len(deg), len(count))
	}
	if dmin <= 0 {
		dmin = 1
	}
	var (
		n      float64
		sumLog float64
		maxDeg int
	)
	for i, d := range deg {
		if d < dmin || count[i] <= 0 {
			continue
		}
		c := float64(count[i])
		n += c
		sumLog += c * math.Log(float64(d))
		if d > maxDeg {
			maxDeg = d
		}
	}
	return solveMLE(n, sumLog, dmin, maxDeg)
}

// solveMLE finds α solving the score equation
//
//	Σ_{i=dmin..D} ln(i)·i^(-α) / Σ_{i=dmin..D} i^(-α) = sumLog / n
//
// The left side is strictly decreasing in α, so bisection converges.
func solveMLE(n, sumLog float64, dmin, maxDeg int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("powerlaw: need at least 2 observations >= %d for an MLE fit", dmin)
	}
	if maxDeg <= dmin {
		// Every observation sits at dmin: the decay rate is unidentifiable
		// (any steep alpha fits); report the bracket edge.
		return 6.0, nil
	}
	meanLog := sumLog / n
	expectedLog := func(alpha float64) float64 {
		var z, lz float64
		for i := dmin; i <= maxDeg; i++ {
			fi := float64(i)
			p := math.Exp(-alpha * math.Log(fi))
			z += p
			lz += math.Log(fi) * p
		}
		return lz / z
	}
	lo, hi := 1.01, 6.0
	if expectedLog(lo) < meanLog {
		return 0, fmt.Errorf("powerlaw: degrees too heavy-tailed for alpha > %.2f", lo)
	}
	if expectedLog(hi) > meanLog {
		// Degrees so concentrated at dmin that α is effectively unbounded;
		// report the bracket edge.
		return hi, nil
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if expectedLog(mid) > meanLog {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
