package powerlaw

import (
	"math"
	"testing"

	"proxygraph/internal/rng"
)

// sampleDegrees draws n degrees from a truncated power law.
func samplePowerLawDegrees(t *testing.T, alpha float64, n, maxDeg int, seed uint64) []int32 {
	t.Helper()
	d, err := NewDist(alpha, maxDeg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.Quantile(src.Float64()))
	}
	return out
}

func TestFitAlphaMLERecoversKnownAlpha(t *testing.T) {
	for _, alpha := range []float64{1.8, 2.1, 2.5} {
		degrees := samplePowerLawDegrees(t, alpha, 50000, 1<<15, 7)
		got, err := FitAlphaMLE(degrees, 1)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if math.Abs(got-alpha) > 0.05 {
			t.Errorf("alpha=%v: MLE fitted %v", alpha, got)
		}
	}
}

func TestFitAlphaMLEIgnoresBelowDmin(t *testing.T) {
	degrees := samplePowerLawDegrees(t, 2.2, 30000, 1<<14, 9)
	// Adding isolated vertices (degree 0) must not change the fit.
	withZeros := append(append([]int32{}, degrees...), make([]int32, 10000)...)
	a, err := FitAlphaMLE(degrees, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitAlphaMLE(withZeros, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("zeros changed the fit: %v vs %v", a, b)
	}
}

func TestFitAlphaMLEErrors(t *testing.T) {
	if _, err := FitAlphaMLE(nil, 1); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FitAlphaMLE([]int32{5}, 1); err == nil {
		t.Error("single observation should error")
	}
	if _, err := FitAlphaMLE([]int32{0, 0, 0}, 1); err == nil {
		t.Error("all-below-dmin should error")
	}
}

func TestFitAlphaMLEConcentratedDegrees(t *testing.T) {
	// Every vertex has degree exactly dmin: alpha is effectively unbounded;
	// the fit reports the bracket edge instead of failing.
	degrees := make([]int32, 100)
	for i := range degrees {
		degrees[i] = 1
	}
	got, err := FitAlphaMLE(degrees, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 5.9 {
		t.Errorf("concentrated degrees fitted %v, want the bracket edge ~6", got)
	}
}

func TestFitAlphaFromHistogramMatchesMLE(t *testing.T) {
	degrees := samplePowerLawDegrees(t, 2.0, 40000, 1<<14, 11)
	counts := map[int]int64{}
	for _, d := range degrees {
		counts[int(d)]++
	}
	var deg []int
	var count []int64
	for d := 1; d <= 1<<14; d++ {
		if counts[d] > 0 {
			deg = append(deg, d)
			count = append(count, counts[d])
		}
	}
	a, err := FitAlphaMLE(degrees, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitAlphaFromHistogram(deg, count, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("histogram fit %v != sequence fit %v", b, a)
	}
	if _, err := FitAlphaFromHistogram([]int{1}, []int64{1, 2}, 1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestFitAlphaMLEWithDminCut(t *testing.T) {
	// Fitting only the tail (dmin=4) still recovers alpha.
	degrees := samplePowerLawDegrees(t, 2.1, 80000, 1<<15, 13)
	got, err := FitAlphaMLE(degrees, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.1) > 0.1 {
		t.Errorf("tail fit = %v, want ~2.1", got)
	}
}
