// Package powerlaw implements the power-law distribution numerics of
// Section III of the paper: the truncated discrete power-law (zeta)
// distribution over vertex degrees, its first moment, the numerical
// procedure for fitting the exponent α from a graph's vertex and edge
// counts (Eq 7, solved with Newton's method), and inverse-CDF sampling
// used by the synthetic graph generator (Algorithm 1).
//
// A graph follows a power law when P(d) ∝ d^(-α) for vertex degree d
// (Eq 3). We work with the truncated normalized form
//
//	P(d) = d^(-α) / Σ_{i=1..D} i^(-α)            (Eq 4)
//
// where D is the maximum degree considered. The first moment is
//
//	E[d] = Σ_{d=1..D} d^(1-α) / Σ_{i=1..D} i^(-α)  (Eq 5)
//
// and is matched to the empirical average degree |E|/|V| (Eq 6) to
// recover α as the root of F(α) = E[d](α) - |E|/|V| (Eq 7).
package powerlaw

import (
	"errors"
	"fmt"
	"math"
)

// DefaultMaxDegree caps the support of the truncated distribution when the
// caller does not supply one. Natural graphs have maximum degrees far below
// their vertex counts, and the partial zeta sums converge long before 10^7
// terms for the α range of interest (1.5..3.5).
const DefaultMaxDegree = 1 << 20 // ~1M

// Dist is a truncated discrete power-law distribution over degrees 1..D
// with exponent Alpha. Construct with NewDist.
type Dist struct {
	Alpha float64
	D     int
	// cdf[i] is P(d <= i+1); cdf[D-1] == 1.
	cdf []float64
}

// NewDist builds the distribution with exponent alpha over degrees 1..maxDegree.
// It returns an error when alpha is not positive or maxDegree < 1.
func NewDist(alpha float64, maxDegree int) (*Dist, error) {
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("powerlaw: alpha must be positive and finite, got %v", alpha)
	}
	if maxDegree < 1 {
		return nil, fmt.Errorf("powerlaw: maxDegree must be >= 1, got %d", maxDegree)
	}
	d := &Dist{Alpha: alpha, D: maxDegree}
	pdf := make([]float64, maxDegree)
	sum := 0.0
	for i := 1; i <= maxDegree; i++ {
		p := math.Pow(float64(i), -alpha)
		pdf[i-1] = p
		sum += p
	}
	cdf := pdf // reuse storage; transform pdf -> cdf in place
	acc := 0.0
	for i := range cdf {
		acc += cdf[i] / sum
		cdf[i] = acc
	}
	cdf[maxDegree-1] = 1 // absorb rounding
	d.cdf = cdf
	return d, nil
}

// PDF returns P(d) for degree d, or 0 if d is outside 1..D.
func (ds *Dist) PDF(d int) float64 {
	if d < 1 || d > ds.D {
		return 0
	}
	if d == 1 {
		return ds.cdf[0]
	}
	return ds.cdf[d-1] - ds.cdf[d-2]
}

// CDF returns P(degree <= d).
func (ds *Dist) CDF(d int) float64 {
	if d < 1 {
		return 0
	}
	if d >= ds.D {
		return 1
	}
	return ds.cdf[d-1]
}

// Mean returns E[d] for the distribution.
func (ds *Dist) Mean() float64 {
	return MeanDegree(ds.Alpha, ds.D)
}

// Quantile returns the smallest degree d with CDF(d) >= u for u in [0,1].
// This is the "multinomial(cdf)" sampling primitive from Algorithm 1 of the
// paper: feeding it a uniform variate yields a power-law distributed degree.
func (ds *Dist) Quantile(u float64) int {
	if u <= 0 {
		return 1
	}
	if u >= 1 {
		return ds.D
	}
	// Binary search the first index with cdf >= u.
	lo, hi := 0, ds.D-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ds.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// partialSums returns (Σ_{i=1..D} i^(-α), Σ_{i=1..D} i^(1-α)) along with the
// log-weighted sums needed for the Newton derivative:
// (Σ ln(i)·i^(-α), Σ ln(i)·i^(1-α)).
func partialSums(alpha float64, maxDegree int) (s0, s1, ls0, ls1 float64) {
	for i := 1; i <= maxDegree; i++ {
		fi := float64(i)
		li := math.Log(fi)
		p := math.Exp(-alpha * li) // i^(-α), stable for large i
		s0 += p
		s1 += fi * p
		ls0 += li * p
		ls1 += li * fi * p
	}
	return s0, s1, ls0, ls1
}

// MeanDegree returns E[d] of the truncated power law with exponent alpha over
// support 1..maxDegree (Eq 5).
func MeanDegree(alpha float64, maxDegree int) float64 {
	s0, s1, _, _ := partialSums(alpha, maxDegree)
	return s1 / s0
}

// ErrNoRoot is returned by FitAlpha when the target average degree is outside
// the range attainable by any alpha in the search bracket.
var ErrNoRoot = errors.New("powerlaw: average degree outside attainable range for alpha in bracket")

// FitOptions configures FitAlpha.
type FitOptions struct {
	// MaxDegree is the support bound D in Eq 4. Zero selects DefaultMaxDegree
	// (or the vertex count, whichever is smaller, when fitting from a graph).
	MaxDegree int
	// Lo, Hi bracket the search. Zeros select [1.05, 4.5], which covers the
	// 1.9..2.4 band the paper reports for natural graphs with wide margin.
	Lo, Hi float64
	// Tol is the absolute tolerance on F(α). Zero selects 1e-9.
	Tol float64
	// MaxIter bounds Newton iterations. Zero selects 100.
	MaxIter int
}

func (o *FitOptions) defaults() {
	if o.MaxDegree == 0 {
		o.MaxDegree = DefaultMaxDegree
	}
	if o.Lo == 0 {
		o.Lo = 1.05
	}
	if o.Hi == 0 {
		o.Hi = 4.5
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
}

// FitAlpha solves Eq 7 for α given the empirical average degree
// avgDegree = |E| / |V|. It runs Newton's method on
//
//	F(α) = Σ d^(1-α) / Σ i^(-α) − avgDegree
//
// with an analytic derivative, falling back to bisection whenever a Newton
// step leaves the bracket (guaranteeing convergence: F is strictly
// decreasing in α).
func FitAlpha(avgDegree float64, opts FitOptions) (float64, error) {
	if avgDegree <= 0 || math.IsNaN(avgDegree) || math.IsInf(avgDegree, 0) {
		return 0, fmt.Errorf("powerlaw: average degree must be positive and finite, got %v", avgDegree)
	}
	opts.defaults()

	f := func(alpha float64) (val, deriv float64) {
		s0, s1, ls0, ls1 := partialSums(alpha, opts.MaxDegree)
		val = s1/s0 - avgDegree
		// d/dα (s1/s0) = (s1'·s0 − s1·s0') / s0²  with s1' = −ls1, s0' = −ls0.
		deriv = (-ls1*s0 + s1*ls0) / (s0 * s0)
		return val, deriv
	}

	lo, hi := opts.Lo, opts.Hi
	fLo, _ := f(lo)
	fHi, _ := f(hi)
	// F is decreasing: high alpha -> sparse -> small mean degree.
	if fLo < 0 || fHi > 0 {
		return 0, fmt.Errorf("%w: avg degree %.4g attainable range [%.4g, %.4g] for alpha in [%g, %g]",
			ErrNoRoot, avgDegree, avgDegree+fHi, avgDegree+fLo, lo, hi)
	}

	alpha := (lo + hi) / 2
	for i := 0; i < opts.MaxIter; i++ {
		val, deriv := f(alpha)
		if math.Abs(val) < opts.Tol {
			return alpha, nil
		}
		// Maintain the bracket for the bisection fallback.
		if val > 0 {
			lo = alpha
		} else {
			hi = alpha
		}
		next := alpha - val/deriv
		if !(next > lo && next < hi) || math.IsNaN(next) {
			next = (lo + hi) / 2 // bisection step
		}
		if math.Abs(next-alpha) < 1e-13 {
			return next, nil
		}
		alpha = next
	}
	return alpha, nil
}

// FitAlphaForGraph fits α from vertex and edge counts, the form used
// throughout the paper ("with only the number of vertices and edges given").
// For directed graphs pass the total edge count; the average degree used is
// edges/vertices, matching Eq 6.
func FitAlphaForGraph(vertices, edges int64) (float64, error) {
	if vertices <= 0 {
		return 0, fmt.Errorf("powerlaw: vertex count must be positive, got %d", vertices)
	}
	if edges < 0 {
		return 0, fmt.Errorf("powerlaw: edge count must be non-negative, got %d", edges)
	}
	opts := FitOptions{}
	// Degrees cannot exceed the number of other vertices.
	if vertices-1 < DefaultMaxDegree && vertices > 1 {
		opts.MaxDegree = int(vertices - 1)
	}
	return FitAlpha(float64(edges)/float64(vertices), opts)
}
