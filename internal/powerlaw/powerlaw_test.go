package powerlaw

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"proxygraph/internal/rng"
)

func TestNewDistValidation(t *testing.T) {
	cases := []struct {
		alpha float64
		maxD  int
	}{
		{0, 10}, {-1, 10}, {math.NaN(), 10}, {math.Inf(1), 10}, {2.0, 0}, {2.0, -5},
	}
	for _, c := range cases {
		if _, err := NewDist(c.alpha, c.maxD); err == nil {
			t.Errorf("NewDist(%v, %d): expected error", c.alpha, c.maxD)
		}
	}
	if _, err := NewDist(2.1, 1000); err != nil {
		t.Errorf("NewDist(2.1, 1000): unexpected error %v", err)
	}
}

func TestPDFSumsToOne(t *testing.T) {
	for _, alpha := range []float64{1.5, 1.95, 2.1, 2.3, 3.0} {
		d, err := NewDist(alpha, 5000)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 1; i <= 5000; i++ {
			sum += d.PDF(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: PDF sums to %v, want 1", alpha, sum)
		}
	}
}

func TestPDFMonotoneDecreasing(t *testing.T) {
	d, err := NewDist(2.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 1000; i++ {
		if d.PDF(i) < d.PDF(i+1) {
			t.Fatalf("PDF not decreasing at degree %d: %v < %v", i, d.PDF(i), d.PDF(i+1))
		}
	}
}

func TestPDFOutOfSupport(t *testing.T) {
	d, _ := NewDist(2.0, 100)
	if d.PDF(0) != 0 || d.PDF(-3) != 0 || d.PDF(101) != 0 {
		t.Error("PDF outside support should be 0")
	}
}

func TestCDFProperties(t *testing.T) {
	d, _ := NewDist(2.0, 500)
	if d.CDF(0) != 0 {
		t.Error("CDF(0) should be 0")
	}
	if d.CDF(500) != 1 || d.CDF(10000) != 1 {
		t.Error("CDF at or beyond D should be 1")
	}
	prev := 0.0
	for i := 1; i <= 500; i++ {
		c := d.CDF(i)
		if c < prev {
			t.Fatalf("CDF not monotone at %d", i)
		}
		prev = c
	}
}

func TestHigherAlphaIsSparser(t *testing.T) {
	// Small alpha -> high density (paper Section III-A1).
	m195 := MeanDegree(1.95, 1<<16)
	m21 := MeanDegree(2.1, 1<<16)
	m23 := MeanDegree(2.3, 1<<16)
	if !(m195 > m21 && m21 > m23) {
		t.Errorf("mean degrees not decreasing in alpha: %v, %v, %v", m195, m21, m23)
	}
}

func TestMeanDegreeMatchesTableII(t *testing.T) {
	// Table II synthetic graphs: N=3.2M with alpha 1.95/2.1/2.3 give
	// ~42M/16M/7M edges, i.e. average degrees ~13.1/5.0/2.2.
	// With support capped at D=N the model reproduces that band.
	cases := []struct {
		alpha float64
		loAvg float64
		hiAvg float64
	}{
		{1.95, 10, 16},
		{2.1, 4, 7},
		{2.3, 1.8, 3.2},
	}
	for _, c := range cases {
		m := MeanDegree(c.alpha, 3_200_000)
		if m < c.loAvg || m > c.hiAvg {
			t.Errorf("alpha=%v: mean degree %v outside [%v, %v]", c.alpha, m, c.loAvg, c.hiAvg)
		}
	}
}

func TestQuantileInverseOfCDF(t *testing.T) {
	d, _ := NewDist(2.2, 2000)
	for _, u := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.9999, 1} {
		q := d.Quantile(u)
		if q < 1 || q > 2000 {
			t.Fatalf("Quantile(%v) = %d out of support", u, q)
		}
		if d.CDF(q) < u {
			t.Errorf("CDF(Quantile(%v)) = %v < u", u, d.CDF(q))
		}
		if q > 1 && d.CDF(q-1) >= u && u > 0 {
			t.Errorf("Quantile(%v) = %d is not minimal", u, q)
		}
	}
}

func TestQuantileSamplingMatchesPDF(t *testing.T) {
	// Draw many samples through the inverse CDF and compare empirical
	// frequencies of low degrees to the analytic PDF.
	d, _ := NewDist(2.1, 10000)
	src := rng.New(42)
	const n = 200000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[d.Quantile(src.Float64())]++
	}
	for deg := 1; deg <= 5; deg++ {
		want := d.PDF(deg)
		got := float64(counts[deg]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("degree %d: empirical freq %v vs PDF %v", deg, got, want)
		}
	}
}

func TestFitAlphaRecoversKnownAlpha(t *testing.T) {
	// Round-trip: compute the mean degree of a known alpha, then fit it back.
	for _, alpha := range []float64{1.8, 1.95, 2.1, 2.3, 2.8} {
		const D = 100000
		mean := MeanDegree(alpha, D)
		got, err := FitAlpha(mean, FitOptions{MaxDegree: D})
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if math.Abs(got-alpha) > 1e-6 {
			t.Errorf("alpha=%v: fitted %v", alpha, got)
		}
	}
}

func TestFitAlphaForGraphTableII(t *testing.T) {
	// The paper reports natural-graph alphas in roughly 1.9..2.4 and the
	// synthetic proxies at 1.95/2.1/2.3. Fit alphas for the Table II
	// synthetic graph sizes and check they land near the declared values.
	cases := []struct {
		name     string
		vertices int64
		edges    int64
		wantLo   float64
		wantHi   float64
	}{
		{"synthetic_one", 3_200_000, 42_011_862, 1.85, 2.05},
		{"synthetic_two", 3_200_000, 15_962_953, 2.0, 2.2},
		{"synthetic_three", 3_200_000, 7_061_709, 2.15, 2.45},
	}
	for _, c := range cases {
		got, err := FitAlphaForGraph(c.vertices, c.edges)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got < c.wantLo || got > c.wantHi {
			t.Errorf("%s: alpha = %v, want in [%v, %v]", c.name, got, c.wantLo, c.wantHi)
		}
	}
}

func TestFitAlphaMonotone(t *testing.T) {
	// Denser graphs must fit smaller alphas.
	a1, err := FitAlpha(20, FitOptions{MaxDegree: 100000})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := FitAlpha(3, FitOptions{MaxDegree: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if a1 >= a2 {
		t.Errorf("denser graph fitted larger alpha: %v >= %v", a1, a2)
	}
}

func TestFitAlphaErrors(t *testing.T) {
	if _, err := FitAlpha(-1, FitOptions{}); err == nil {
		t.Error("negative average degree should error")
	}
	if _, err := FitAlpha(math.NaN(), FitOptions{}); err == nil {
		t.Error("NaN average degree should error")
	}
	// Average degree 1e6 is unattainable with alpha >= 1.05 and D = 4096.
	if _, err := FitAlpha(1e6, FitOptions{MaxDegree: 4096}); !errors.Is(err, ErrNoRoot) {
		t.Errorf("expected ErrNoRoot, got %v", err)
	}
	if _, err := FitAlphaForGraph(0, 10); err == nil {
		t.Error("zero vertices should error")
	}
	if _, err := FitAlphaForGraph(10, -1); err == nil {
		t.Error("negative edges should error")
	}
}

func TestFitAlphaRoundTripProperty(t *testing.T) {
	// Property: for any alpha in the natural-graph band, fitting the model
	// mean recovers alpha within tolerance.
	f := func(raw uint16) bool {
		alpha := 1.6 + float64(raw)/float64(1<<16)*1.4 // in [1.6, 3.0)
		const D = 1 << 14
		mean := MeanDegree(alpha, D)
		got, err := FitAlpha(mean, FitOptions{MaxDegree: D})
		return err == nil && math.Abs(got-alpha) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDistMeanConsistency(t *testing.T) {
	d, _ := NewDist(2.05, 30000)
	// E[d] from the Dist must equal the direct sum Σ d·P(d).
	direct := 0.0
	for i := 1; i <= 30000; i++ {
		direct += float64(i) * d.PDF(i)
	}
	if math.Abs(direct-d.Mean()) > 1e-6*d.Mean() {
		t.Errorf("Mean()=%v vs direct sum %v", d.Mean(), direct)
	}
}

func BenchmarkFitAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FitAlpha(13.1, FitOptions{MaxDegree: 1 << 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantile(b *testing.B) {
	d, _ := NewDist(2.1, 1<<20)
	src := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Quantile(src.Float64())
	}
}
