package workload

import (
	"sync"
	"testing"

	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
	"proxygraph/internal/trace"
)

func cacheGraph(t *testing.T, seed uint64, n, m int) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Spec{
		Name: "cache-test", Vertices: int64(n), Edges: int64(m), Kind: gen.KindPowerLaw,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlacementCacheHitsAndKeying(t *testing.T) {
	c := NewPlacementCache()
	g := cacheGraph(t, 1, 300, 2400)
	part := partition.NewHybrid()
	shares := partition.UniformShares(2)

	a, hit, err := c.Place(part, g, shares, 7)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request reported a hit")
	}
	b, hit, err := c.Place(part, g, shares, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || b != a {
		t.Fatal("repeat request should return the cached placement")
	}

	// Every dimension of the key must miss independently.
	if _, hit, _ := c.Place(part, g, shares, 8); hit {
		t.Error("different seed hit the cache")
	}
	if _, hit, _ := c.Place(partition.NewRandomHash(), g, shares, 7); hit {
		t.Error("different partitioner hit the cache")
	}
	if _, hit, _ := c.Place(part, g, []float64{0.25, 0.75}, 7); hit {
		t.Error("different shares hit the cache")
	}
	if _, hit, _ := c.Place(part, cacheGraph(t, 2, 300, 2400), shares, 7); hit {
		t.Error("different graph hit the cache")
	}
	// A tuned instance of the same algorithm is a different key.
	tuned := partition.NewHybrid()
	tuned.Threshold += 17
	if _, hit, _ := c.Place(tuned, g, shares, 7); hit {
		t.Error("re-tuned partitioner hit the cache")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 6 {
		t.Errorf("stats = %+v, want 1 hit / 6 misses", st)
	}
	if st.IngressWallSeconds <= 0 {
		t.Error("misses recorded no ingress wall time")
	}
	if c.Len() != 6 {
		t.Errorf("cache holds %d entries, want 6", c.Len())
	}
}

func TestPlacementCacheErrorsNotCached(t *testing.T) {
	c := NewPlacementCache()
	g := cacheGraph(t, 3, 100, 600)
	bad := []float64{0.2, 0.2} // non-normalized: partitioners reject it
	if _, _, err := c.Place(partition.NewHybrid(), g, bad, 1); err == nil {
		t.Fatal("expected share-validation error")
	}
	if c.Len() != 0 {
		t.Fatal("failed ingress left an entry in the cache")
	}
	if _, hit, err := c.Place(partition.NewHybrid(), g, partition.UniformShares(2), 1); err != nil || hit {
		t.Fatal("retry after failure should run ingress fresh")
	}
}

func TestPlacementCacheSingleFlight(t *testing.T) {
	c := NewPlacementCache()
	g := cacheGraph(t, 4, 2000, 30000)
	part := partition.NewGinger()
	shares := partition.UniformShares(4)

	const callers = 8
	var wg sync.WaitGroup
	wg.Add(callers)
	results := make([]interface{}, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			pl, _, err := c.Place(part, g, shares, 5)
			if err != nil {
				results[i] = err
				return
			}
			results[i] = pl
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different placement object: single-flight failed", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("%d concurrent callers ran ingress %d times, want exactly 1", callers, st.Misses)
	}
	if st.Hits != callers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, callers-1)
	}
}

// TestPlacementCacheBounds pins the LRU policy: the cache never holds more
// completed entries (or approximate bytes) than configured, evicts in
// least-recently-used order, and counts every eviction.
func TestPlacementCacheBounds(t *testing.T) {
	c := NewBoundedPlacementCache(3, 0)
	part := partition.NewHybrid()
	shares := partition.UniformShares(2)
	graphs := make([]*graph.Graph, 5)
	for i := range graphs {
		graphs[i] = cacheGraph(t, uint64(10+i), 200, 1200)
	}
	for _, g := range graphs[:3] {
		if _, _, err := c.Place(part, g, shares, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Touch graph 0 so graph 1 is now the least recently used.
	if _, hit, _ := c.Place(part, graphs[0], shares, 1); !hit {
		t.Fatal("graph 0 should still be cached")
	}
	if _, _, err := c.Place(part, graphs[3], shares, 1); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries after eviction, want 3", c.Len())
	}
	if _, hit, _ := c.Place(part, graphs[1], shares, 1); hit {
		t.Error("least-recently-used entry (graph 1) survived eviction")
	}
	if _, hit, _ := c.Place(part, graphs[0], shares, 1); !hit {
		t.Error("recently-touched entry (graph 0) was evicted before the LRU one")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("bounded cache over capacity recorded no evictions")
	}
	if st.Entries > 3 {
		t.Errorf("entry bound violated: %d > 3", st.Entries)
	}

	// Byte bound: a budget smaller than one placement means nothing is ever
	// retained — every request misses, the caller still gets a placement, and
	// the resident byte count stays at zero.
	tiny := NewBoundedPlacementCache(0, 1)
	pl, _, err := tiny.Place(part, graphs[0], shares, 1)
	if err != nil || pl == nil {
		t.Fatalf("oversized placement must still be built: %v", err)
	}
	if _, hit, _ := tiny.Place(part, graphs[0], shares, 1); hit {
		t.Error("placement larger than the byte budget was retained")
	}
	if st := tiny.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Errorf("byte-bounded cache retained %d bytes / %d entries, want 0/0", st.Bytes, st.Entries)
	}
}

// TestPlacementCacheContention is the -race stress test: concurrent callers
// on the same key must collapse to exactly one ingress (single-flight),
// distinct keys must each run exactly once, and the hit/miss/eviction
// counters must balance — all while a bounded cache is evicting under load.
func TestPlacementCacheContention(t *testing.T) {
	const (
		sameKeyCallers = 8
		distinctKeys   = 6
		maxEntries     = 3
	)
	c := NewBoundedPlacementCache(maxEntries, 0)
	part := partition.NewHybrid()
	shares := partition.UniformShares(2)
	shared := cacheGraph(t, 99, 400, 3200)
	distinct := make([]*graph.Graph, distinctKeys)
	for i := range distinct {
		distinct[i] = cacheGraph(t, uint64(100+i), 200, 1200)
	}

	// Phase 1: every same-key caller races the same build. The phases are
	// sequential so a later distinct-key build can never evict the shared
	// entry out from under a same-key caller that has not looked it up yet —
	// that would turn an expected hit into a second miss and make the exact
	// counter assertions below scheduling-dependent.
	var wg sync.WaitGroup
	sameResults := make([]*engine.Placement, sameKeyCallers)
	for i := 0; i < sameKeyCallers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pl, _, err := c.Place(part, shared, shares, 5)
			if err != nil {
				t.Error(err)
				return
			}
			sameResults[i] = pl
		}(i)
	}
	wg.Wait()
	// Phase 2: distinct keys race each other and force evictions.
	for i := 0; i < distinctKeys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := c.Place(part, distinct[i], shares, 5); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	for i := 1; i < sameKeyCallers; i++ {
		if sameResults[i] != sameResults[0] {
			t.Fatalf("caller %d got a different placement object: single-flight failed", i)
		}
	}
	st := c.Stats()
	// Exactly one ingress per distinct key: the shared key plus each distinct
	// graph. Same-key callers beyond the builder are hits.
	if st.Misses != distinctKeys+1 {
		t.Errorf("misses = %d, want %d (one ingress per key)", st.Misses, distinctKeys+1)
	}
	if st.Hits != sameKeyCallers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, sameKeyCallers-1)
	}
	if st.Entries > maxEntries {
		t.Errorf("entry bound violated under contention: %d > %d", st.Entries, maxEntries)
	}
	wantEvict := uint64(distinctKeys + 1 - maxEntries)
	if st.Evictions != wantEvict {
		t.Errorf("evictions = %d, want %d", st.Evictions, wantEvict)
	}
	if st.Bytes < 0 {
		t.Errorf("negative resident byte count %d", st.Bytes)
	}
}

// TestSessionCacheIdenticalAccounting is the acceptance check of the hit
// path: a cached session must report bit-identical execution accounting to an
// uncached one — hits change only which jobs pay ingress, never the results.
func TestSessionCacheIdenticalAccounting(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(12, 256, 21)
	if err != nil {
		t.Fatal(err)
	}
	est := core.NewThreadCount()

	cold := &Session{Cluster: cl}
	coldRep, err := cold.Run(jobs, est)
	if err != nil {
		t.Fatal(err)
	}
	cached := &Session{Cluster: cl, Cache: NewPlacementCache()}
	cachedRep, err := cached.Run(jobs, est)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if coldRep.JobSeconds[i] != cachedRep.JobSeconds[i] {
			t.Fatalf("job %d: cached %.12f != cold %.12f", i, cachedRep.JobSeconds[i], coldRep.JobSeconds[i])
		}
	}
	if coldRep.TotalEnergyJoules != cachedRep.TotalEnergyJoules {
		t.Error("cache changed the session's energy accounting")
	}
	if coldRep.Total() != cachedRep.Total() {
		t.Error("cache changed the cumulative clock of an uncharged session")
	}
	// 12 jobs over a handful of graphs under one estimator must repeat keys.
	if cachedRep.CacheHits == 0 {
		t.Fatal("session with a cache never hit: RandomJobs seeds defeat the key")
	}
	if cachedRep.CacheHits+cachedRep.CacheMisses != len(jobs) {
		t.Errorf("hits %d + misses %d != %d jobs", cachedRep.CacheHits, cachedRep.CacheMisses, len(jobs))
	}
	if coldRep.CacheHits != 0 || coldRep.CacheMisses != 0 {
		t.Error("uncached session reported cache counters")
	}
}

// TestSessionChargeIngress pins the throughput effect: misses pay the
// simulated ingress makespan on the cumulative clock, hits pay nothing, and
// every outcome is visible as a KindIngress trace event.
func TestSessionChargeIngress(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(10, 256, 23)
	if err != nil {
		t.Fatal(err)
	}
	est := core.NewThreadCount()

	rec := trace.NewRecorder()
	s := &Session{Cluster: cl, Cache: NewPlacementCache(), ChargeIngress: true, Trace: rec}
	rep, err := s.Run(jobs, est)
	if err != nil {
		t.Fatal(err)
	}
	uncached := &Session{Cluster: cl, ChargeIngress: true}
	uncachedRep, err := uncached.Run(jobs, est)
	if err != nil {
		t.Fatal(err)
	}

	if rep.CacheHits == 0 {
		t.Fatal("charged session never hit the cache")
	}
	hits, misses := 0, 0
	for i, e := range rec.Events {
		if e.Kind != trace.KindIngress {
			continue
		}
		switch e.Label {
		case "hit":
			hits++
			if e.Seconds != 0 {
				t.Errorf("event %d: cache hit charged %.6fs of ingress", i, e.Seconds)
			}
		case "miss":
			misses++
			if e.Seconds <= 0 {
				t.Errorf("event %d: charged miss carries no ingress time", i)
			}
		default:
			t.Errorf("event %d: unexpected ingress label %q", i, e.Label)
		}
	}
	if hits != rep.CacheHits || misses != rep.CacheMisses {
		t.Errorf("trace saw %d/%d hit/miss events, report says %d/%d", hits, misses, rep.CacheHits, rep.CacheMisses)
	}

	var charged, uncharged float64
	for i := range jobs {
		charged += rep.IngressSeconds[i]
		uncharged += uncachedRep.IngressSeconds[i]
		if rep.JobSeconds[i] != uncachedRep.JobSeconds[i] {
			t.Fatalf("job %d: execution time depends on the cache", i)
		}
	}
	if charged >= uncharged {
		t.Errorf("cached session charged %.6fs of ingress, uncached %.6fs — hits saved nothing", charged, uncharged)
	}
	if rep.Total() >= uncachedRep.Total() {
		t.Error("placement cache did not improve charged session throughput")
	}
	// The cumulative clock must account for exactly the charged ingress.
	sum := rep.ProfilingSeconds
	for i := range jobs {
		sum += rep.IngressSeconds[i] + rep.JobSeconds[i]
	}
	if !approxEq(sum, rep.Total()) {
		t.Errorf("cumulative %.9f != profiling+ingress+exec %.9f", rep.Total(), sum)
	}
}

func TestRandomJobsSeedDomains(t *testing.T) {
	jobs, err := RandomJobs(40, 256, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs on the same graph share an ingress seed; distinct graphs get
	// distinct seeds (the per-graph derivation that makes caching effective).
	byGraph := map[string]uint64{}
	seeds := map[uint64]string{}
	for i, j := range jobs {
		if prev, ok := byGraph[j.Graph.Name]; ok {
			if prev != j.Seed {
				t.Fatalf("job %d on %s has seed %d, earlier jobs had %d", i, j.Graph.Name, j.Seed, prev)
			}
			continue
		}
		byGraph[j.Graph.Name] = j.Seed
		if other, dup := seeds[j.Seed]; dup {
			t.Fatalf("graphs %s and %s share ingress seed %d", other, j.Graph.Name, j.Seed)
		}
		seeds[j.Seed] = j.Graph.Name
	}
	// The ingress seeds must not replay the generator's seed sequence: no job
	// seed may collide with any graph-generation seed.
	if len(byGraph) < 2 {
		t.Fatal("workload degenerated to a single graph; seed-domain test is vacuous")
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
