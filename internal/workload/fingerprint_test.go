package workload

import (
	"runtime"
	"testing"
	"time"

	"proxygraph/internal/graph"
)

// fpBase builds a weighted graph with duplicate (Src, Dst) pairs at distinct
// weights — the case where delete-to-weight matching matters.
func fpBase() *graph.Graph {
	return &graph.Graph{
		Name:        "fp-base",
		NumVertices: 6,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5}},
		Weights:     []float32{1, 2, 3, 4, 5, 6},
	}
}

// rescanCopy re-hashes a structural copy of g, so the memo entry written by
// EvolveFingerprint cannot mask a wrong incremental value.
func rescanCopy(g *graph.Graph) uint64 {
	cp := &graph.Graph{
		Name:        g.Name,
		NumVertices: g.NumVertices,
		Edges:       append([]graph.Edge(nil), g.Edges...),
	}
	if g.Weights != nil {
		cp.Weights = append([]float32(nil), g.Weights...)
	}
	return GraphFingerprint(cp)
}

func TestEvolveFingerprintMatchesRescan(t *testing.T) {
	cases := []struct {
		name string
		base *graph.Graph
		d    *graph.Delta
	}{
		{
			"weighted mixed",
			fpBase(),
			&graph.Delta{
				Time:          3,
				Deletes:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 3, Dst: 4}},
				Inserts:       []graph.Edge{{Src: 5, Dst: 0}, {Src: 0, Dst: 1}},
				InsertWeights: []float32{7, 9},
			},
		},
		{
			"weighted duplicate deletes",
			fpBase(),
			&graph.Delta{Time: 4, Deletes: []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}},
		},
		{
			"unweighted grow",
			&graph.Graph{Name: "u", NumVertices: 3, Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}},
			&graph.Delta{Time: 5, Inserts: []graph.Edge{{Src: 2, Dst: 6}}, NumVertices: 8},
		},
		{
			"unweighted shrink",
			&graph.Graph{Name: "u", NumVertices: 5, Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 4}}},
			&graph.Delta{Time: 6, Deletes: []graph.Edge{{Src: 1, Dst: 4}}, NumVertices: 2},
		},
		{
			"weighted inserts on unweighted base",
			&graph.Graph{Name: "u", NumVertices: 4, Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}},
			&graph.Delta{Time: 7, Inserts: []graph.Edge{{Src: 1, Dst: 3}}, InsertWeights: []float32{2.5}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evolved, err := tc.d.Apply(tc.base)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvolveFingerprint(tc.base, tc.d, evolved)
			if err != nil {
				t.Fatal(err)
			}
			if want := rescanCopy(evolved); got != want {
				t.Fatalf("EvolveFingerprint = %#x, rescan = %#x", got, want)
			}
			// The incremental path must have memoized the evolved graph.
			if memo := GraphFingerprint(evolved); memo != got {
				t.Fatalf("memoized fingerprint %#x differs from evolve result %#x", memo, got)
			}
			// Versions are distinguishable unless the content is identical.
			if tc.d.Size() > 0 && got == GraphFingerprint(tc.base) {
				t.Fatal("non-empty delta left the fingerprint unchanged")
			}
		})
	}
}

func TestEvolveFingerprintChain(t *testing.T) {
	// Chaining several deltas stays bit-identical to rescanning the final
	// version — the property the placement cache's (baseFP, deltaFP)
	// revalidation rests on.
	cur := fpBase()
	for step := uint64(1); step <= 4; step++ {
		d := &graph.Delta{
			Time:          step,
			Deletes:       []graph.Edge{cur.Edges[int(step)%len(cur.Edges)]},
			Inserts:       []graph.Edge{{Src: graph.VertexID(step % 6), Dst: (graph.VertexID(step%6) + 1) % 6}},
			InsertWeights: []float32{float32(step)},
		}
		evolved, err := d.Apply(cur)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := EvolveFingerprint(cur, d, evolved)
		if err != nil {
			t.Fatal(err)
		}
		if want := rescanCopy(evolved); fp != want {
			t.Fatalf("step %d: chained fp %#x, rescan %#x", step, fp, want)
		}
		cur = evolved
	}
}

func TestFingerprintUnweightedEqualsUnitWeights(t *testing.T) {
	bare := &graph.Graph{NumVertices: 4, Edges: []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}}
	unit := &graph.Graph{
		NumVertices: 4,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}},
		Weights:     []float32{1, 1, 1},
	}
	if GraphFingerprint(bare) != GraphFingerprint(unit) {
		t.Fatal("unweighted graph and its all-1-weight twin must fingerprint identically")
	}
	scaled := &graph.Graph{
		NumVertices: 4,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}},
		Weights:     []float32{1, 1, 2},
	}
	if GraphFingerprint(bare) == GraphFingerprint(scaled) {
		t.Fatal("a changed weight must change the fingerprint")
	}
}

func TestFingerprintPermutationInvariance(t *testing.T) {
	a := &graph.Graph{
		NumVertices: 4,
		Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}},
		Weights:     []float32{3, 2, 1},
	}
	b := &graph.Graph{
		NumVertices: 4,
		Edges:       []graph.Edge{{Src: 2, Dst: 3}, {Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
		Weights:     []float32{1, 3, 2},
	}
	if GraphFingerprint(a) != GraphFingerprint(b) {
		t.Fatal("edge-list permutation changed the multiset fingerprint")
	}
}

func TestReleaseGraphFingerprint(t *testing.T) {
	g := fpBase()
	GraphFingerprint(g)
	before := FingerprintMemoSize()
	ReleaseGraphFingerprint(g)
	if after := FingerprintMemoSize(); after != before-1 {
		t.Fatalf("release left memo at %d (was %d)", after, before)
	}
	// Releasing again (or releasing a never-fingerprinted graph) is a no-op.
	ReleaseGraphFingerprint(g)
	ReleaseGraphFingerprint(nil)
	// Re-fingerprinting after release re-memoizes at the same value.
	want := rescanCopy(g)
	if got := GraphFingerprint(g); got != want {
		t.Fatalf("re-fingerprint after release: %#x, want %#x", got, want)
	}
}

// TestFingerprintedGraphsAreCollectable is the regression test for the memo
// leak: the old sync.Map keyed on *graph.Graph pinned every fingerprinted
// graph forever. With weak keys the graphs must become collectable once the
// caller drops them, and the collection-time cleanup must drain the memo.
func TestFingerprintedGraphsAreCollectable(t *testing.T) {
	const batch = 64
	base := FingerprintMemoSize()
	func() {
		for i := 0; i < batch; i++ {
			g := &graph.Graph{
				Name:        "ephemeral",
				NumVertices: 8 + i,
				Edges:       []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}},
			}
			GraphFingerprint(g)
		}
	}()
	if grown := FingerprintMemoSize(); grown < base+batch {
		t.Fatalf("memo holds %d entries after %d fingerprints (base %d)", grown, batch, base)
	}
	// Cleanups run asynchronously after collection; poll across GC cycles.
	deadline := time.Now().Add(10 * time.Second)
	for FingerprintMemoSize() > base {
		if time.Now().After(deadline) {
			t.Fatalf("memo stuck at %d entries (want <= %d): fingerprinted graphs are not collectable",
				FingerprintMemoSize(), base)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
