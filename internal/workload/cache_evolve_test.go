package workload

import (
	"errors"
	"sync"
	"testing"
	"time"

	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
)

// blockingFailPart blocks inside Partition until released, then fails —
// enough rope for concurrent callers to pile onto the single-flight entry.
type blockingFailPart struct {
	startedOnce sync.Once
	started     chan struct{}
	release     chan struct{}
}

func newBlockingFailPart() *blockingFailPart {
	return &blockingFailPart{started: make(chan struct{}), release: make(chan struct{})}
}

func (p *blockingFailPart) Name() string { return "blocking-fail" }

func (p *blockingFailPart) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	p.startedOnce.Do(func() { close(p.started) })
	<-p.release
	return nil, errors.New("ingress exploded")
}

// TestPlacementCacheJoinOnFailedBuild is the regression test for the
// hit-inflation bug: Place used to count a hit the moment a caller joined an
// in-flight build, before knowing whether the build would succeed. Callers
// joining a build that fails must get (hit=false, err) and the Hits counter
// must stay at zero — they received an error, not a cached placement.
func TestPlacementCacheJoinOnFailedBuild(t *testing.T) {
	c := NewPlacementCache()
	g := cacheGraph(t, 5, 50, 200)
	part := newBlockingFailPart()
	shares := partition.UniformShares(2)

	firstErr := make(chan error, 1)
	go func() {
		_, hit, err := c.Place(part, g, shares, 1)
		if hit {
			err = errors.New("builder reported a hit")
		}
		firstErr <- err
	}()
	<-part.started // the single-flight entry is installed before Partition runs

	const waiters = 6
	var wg, ready sync.WaitGroup
	wg.Add(waiters)
	ready.Add(waiters)
	errs := make([]error, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			ready.Done()
			_, hits[i], errs[i] = c.Place(part, g, shares, 1)
		}(i)
	}
	// Let the waiters reach the in-flight entry before the build fails, so
	// they exercise the join path rather than running fresh builds.
	ready.Wait()
	time.Sleep(50 * time.Millisecond)
	close(part.release)
	wg.Wait()

	if err := <-firstErr; err == nil {
		t.Fatal("builder did not surface the ingress error")
	}
	for i := 0; i < waiters; i++ {
		if errs[i] == nil {
			t.Fatalf("waiter %d got no error from the failed build", i)
		}
		if hits[i] {
			t.Fatalf("waiter %d reported hit=true on a failed build", i)
		}
	}
	st := c.Stats()
	if st.Hits != 0 {
		t.Fatalf("failed build inflated Hits to %d", st.Hits)
	}
	if st.Misses != 1 {
		t.Fatalf("single-flighted failure counted %d misses, want 1", st.Misses)
	}
	if c.Len() != 0 {
		t.Fatal("failed build left an entry cached")
	}
}

// pointerTunedPart is the regression shape for the %+v fingerprint bug: its
// tuning lives behind a pointer, a slice and a map. Two structurally equal
// instances used to fingerprint differently because %+v renders the pointer's
// address.
type pointerTunedPart struct {
	Bias    *float64
	Weights []float64
	Knobs   map[string]int
}

func (p *pointerTunedPart) Name() string { return "pointer-tuned" }
func (p *pointerTunedPart) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	return nil, errors.New("fingerprint-only stub")
}

func TestPartitionerFingerprintStability(t *testing.T) {
	// Fresh instances of every registered partitioner must fingerprint
	// identically to a second fresh instance: equal config ⇒ equal key.
	a, b := partition.WithExtensions(), partition.WithExtensions()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("registry returned %d vs %d partitioners", len(a), len(b))
	}
	seen := map[uint64]string{}
	for i := range a {
		fa, fb := partitionerFingerprint(a[i]), partitionerFingerprint(b[i])
		if fa != fb {
			t.Errorf("%s: two default instances fingerprint %#x vs %#x", a[i].Name(), fa, fb)
		}
		if prev, dup := seen[fa]; dup {
			t.Errorf("%s and %s share fingerprint %#x", a[i].Name(), prev, fa)
		}
		seen[fa] = a[i].Name()
	}

	// Changing any tuning knob must change the fingerprint.
	tuned := []partition.Partitioner{
		func() partition.Partitioner { p := partition.NewHDRF(); p.Lambda *= 2; return p }(),
		func() partition.Partitioner { p := partition.NewHybrid(); p.Threshold += 17; return p }(),
		func() partition.Partitioner { p := partition.NewGinger(); p.Gamma += 0.5; return p }(),
		func() partition.Partitioner { p := partition.NewGinger(); p.Threshold += 1; return p }(),
	}
	for _, p := range tuned {
		fp := partitionerFingerprint(p)
		if name, dup := seen[fp]; dup {
			t.Errorf("re-tuned %s collides with default %s fingerprint", p.Name(), name)
		}
	}

	// Pointer/slice/map-valued tuning: structurally equal instances at
	// different addresses must share a fingerprint, and a changed pointee
	// must change it.
	mk := func(bias float64) *pointerTunedPart {
		return &pointerTunedPart{
			Bias:    &bias,
			Weights: []float64{0.25, 0.75},
			Knobs:   map[string]int{"alpha": 1, "beta": 2},
		}
	}
	if partitionerFingerprint(mk(1.5)) != partitionerFingerprint(mk(1.5)) {
		t.Error("structurally equal pointer-tuned instances fingerprint differently (address leaked)")
	}
	if partitionerFingerprint(mk(1.5)) == partitionerFingerprint(mk(2.5)) {
		t.Error("changed pointee did not change the fingerprint")
	}
}

// plainPart hides a partitioner's Amend method, modeling an algorithm with no
// incremental path.
type plainPart struct{ inner partition.Partitioner }

func (p plainPart) Name() string { return p.inner.Name() }
func (p plainPart) Partition(g *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	return p.inner.Partition(g, shares, seed)
}

// failAmender amends by failing, exercising the fallback-to-full-build path.
type failAmender struct{ *partition.Hybrid }

func (f failAmender) Amend(base *graph.Graph, owner []int32, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) ([]int32, error) {
	return nil, errors.New("amend refused")
}

func evolveOnce(t *testing.T, g *graph.Graph, seed uint64) (*graph.Delta, *graph.Graph) {
	t.Helper()
	d, err := gen.RandomDelta(g, gen.DeltaSpec{Inserts: 40, Deletes: 40, Time: 1}, seed)
	if err != nil {
		t.Fatal(err)
	}
	evolved, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	return d, evolved
}

func TestPlaceEvolvedOutcomes(t *testing.T) {
	c := NewPlacementCache()
	g := cacheGraph(t, 6, 400, 3000)
	part := partition.NewHDRF()
	shares := partition.UniformShares(2)

	if _, hit, err := c.Place(part, g, shares, 3); err != nil || hit {
		t.Fatalf("base ingress: hit=%v err=%v", hit, err)
	}
	d, evolved := evolveOnce(t, g, 11)

	pl, outcome, err := c.PlaceEvolved(part, g, d, evolved, shares, 3)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PlaceAmend {
		t.Fatalf("cached base version amended as %v", outcome)
	}
	again, outcome, err := c.PlaceEvolved(part, g, d, evolved, shares, 3)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PlaceHit || again != pl {
		t.Fatalf("repeat request: outcome %v, same object %v", outcome, again == pl)
	}
	// Plain Place on the evolved graph revalidates by content and hits too.
	if _, hit, err := c.Place(part, evolved, shares, 3); err != nil || !hit {
		t.Fatalf("content-keyed Place on evolved graph: hit=%v err=%v", hit, err)
	}
	st := c.Stats()
	if st.Amends != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 amend / 2 hits / 1 miss", st)
	}

	// Cold cache: no base placement to amend from, so a full build runs.
	cold := NewPlacementCache()
	if _, outcome, err := cold.PlaceEvolved(part, g, d, evolved, shares, 3); err != nil || outcome != PlaceMiss {
		t.Fatalf("cold cache: outcome %v err %v", outcome, err)
	}

	// A partitioner without an Amend path misses even with the base cached.
	noAmend := NewPlacementCache()
	pp := plainPart{inner: partition.NewRandomHash()}
	if _, _, err := noAmend.Place(pp, g, shares, 3); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := noAmend.PlaceEvolved(pp, g, d, evolved, shares, 3); err != nil || outcome != PlaceMiss {
		t.Fatalf("non-amender: outcome %v err %v", outcome, err)
	}
}

func TestPlaceEvolvedAmendFailureFallsBack(t *testing.T) {
	c := NewPlacementCache()
	g := cacheGraph(t, 7, 300, 2000)
	part := failAmender{partition.NewHybrid()}
	shares := partition.UniformShares(3)

	if _, _, err := c.Place(part, g, shares, 9); err != nil {
		t.Fatal(err)
	}
	d, evolved := evolveOnce(t, g, 13)
	pl, outcome, err := c.PlaceEvolved(part, g, d, evolved, shares, 9)
	if err != nil {
		t.Fatalf("fallback build failed: %v", err)
	}
	if outcome != PlaceMiss {
		t.Fatalf("failed amendment classified as %v, want miss", outcome)
	}
	st := c.Stats()
	if st.Amends != 0 {
		t.Fatalf("failed amendment left Amends at %d", st.Amends)
	}
	if st.Misses != 2 {
		t.Fatalf("misses %d, want 2 (base build + fallback)", st.Misses)
	}
	// The fallback result is the full deterministic build.
	want, err := partition.Apply(part, evolved, shares, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.EdgeOwner) != len(want.EdgeOwner) {
		t.Fatalf("fallback owner vector length %d vs %d", len(pl.EdgeOwner), len(want.EdgeOwner))
	}
	for i := range want.EdgeOwner {
		if pl.EdgeOwner[i] != want.EdgeOwner[i] {
			t.Fatalf("fallback owner %d differs from full build", i)
		}
	}
}
