package workload

import (
	"math"
	"sync"

	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// graphFPs memoizes content fingerprints per *graph.Graph. Graphs in this
// repository are immutable after construction, so the pointer is a sound memo
// key while the content hash keeps distinct graphs at the same address from
// colliding across process lifetimes (the hash, not the pointer, is what ends
// up in cache keys, journals and idempotency checks).
var graphFPs sync.Map // *graph.Graph -> uint64

// GraphFingerprint hashes a graph's content (vertex count, edge list,
// weights) into a stable 64-bit fingerprint, memoized per pointer. A nil
// graph fingerprints to 0.
func GraphFingerprint(g *graph.Graph) uint64 {
	if g == nil {
		return 0
	}
	if fp, ok := graphFPs.Load(g); ok {
		return fp.(uint64)
	}
	h := rng.Hash2(0x67726170 /* "grap" domain */, uint64(g.NumVertices))
	for _, e := range g.Edges {
		h = rng.Hash3(h, uint64(e.Src), uint64(e.Dst))
	}
	for _, w := range g.Weights {
		h = rng.Hash2(h, uint64(math.Float32bits(w)))
	}
	graphFPs.Store(g, h)
	return h
}

// Fingerprint is the job's content identity: app name, graph content and
// partitioning seed. Two jobs with equal fingerprints perform the same work,
// which is what idempotent resubmission needs to decide whether a reused
// idempotency key is a retry of the same job or a client bug. The zero Job
// fingerprints deterministically too (empty app, nil graph).
func (j Job) Fingerprint() uint64 {
	app := ""
	if j.App != nil {
		app = j.App.Name()
	}
	h := rng.Hash2(0x6a6f6266 /* "jobf" domain */, rng.HashString(app))
	h = rng.Hash2(h, GraphFingerprint(j.Graph))
	return rng.Hash2(h, j.Seed)
}
