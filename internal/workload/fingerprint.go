package workload

import (
	"math"
	"runtime"
	"sync"
	"weak"

	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

// Fingerprint domains. Every term of a graph fingerprint is keyed into its
// own SplitMix64 stream so vertex-count and edge terms cannot cancel.
const (
	fpGraphDomain = 0x67726170 // "grap"
	fpEdgeDomain  = 0x65646765 // "edge"
	fpJobDomain   = 0x6a6f6266 // "jobf"
)

// edgeTerm is one edge's contribution to a graph fingerprint. The weight is
// always folded in (1 for unweighted graphs, matching graph.Weight), so an
// unweighted graph and the same graph with an explicit all-1 weight column —
// which are semantically identical — fingerprint identically, and a weighted
// delta over an unweighted base stays incrementally computable.
func edgeTerm(e graph.Edge, w float32) uint64 {
	return rng.Hash2(rng.Hash3(fpEdgeDomain, uint64(e.Src), uint64(e.Dst)), uint64(math.Float32bits(w)))
}

// vertexTerm is the vertex-count contribution.
func vertexTerm(n int) uint64 {
	return rng.Hash2(fpGraphDomain, uint64(n))
}

// rescanFingerprint hashes a graph's full content. The edge terms combine by
// addition mod 2^64 — an incremental multiset hash — so the fingerprint
// identifies (vertex count, weighted-edge multiset) and a Delta can update it
// in O(|batch|) (see EvolveFingerprint) with a result identical to a rescan
// of the evolved graph. The deliberate trade: two graphs whose edge lists are
// permutations of each other share a fingerprint. Execution results depend
// only on the multiset, so a placement-cache hit across a permutation is
// sound for outputs; charged times reflect the cached stream order, which is
// the same blur dynamic rebalancing already introduces.
func rescanFingerprint(g *graph.Graph) uint64 {
	fp := vertexTerm(g.NumVertices)
	for i, e := range g.Edges {
		fp += edgeTerm(e, g.Weight(i))
	}
	return fp
}

// fpMu guards fpMemo. The memo keys on weak pointers so it never pins a
// graph: once every strong reference to a fingerprinted graph is dropped the
// graph is collectable, and the runtime cleanup removes its entry — a
// long-running service no longer retains every graph ever submitted (the old
// sync.Map memo keyed on the raw pointer and kept it alive forever). A weak
// key also cannot stale-hit: weak.Make on a new allocation at a reused
// address yields a distinct handle, so eviction is race-free by construction.
var (
	fpMu   sync.Mutex
	fpMemo = map[weak.Pointer[graph.Graph]]uint64{}
)

// GraphFingerprint hashes a graph's content (vertex count, weighted edge
// multiset) into a stable 64-bit fingerprint, memoized per graph object. A
// nil graph fingerprints to 0. Graphs are immutable after construction, which
// is what makes the memo sound; evolved versions are new objects whose
// fingerprints the Delta path registers via EvolveFingerprint.
func GraphFingerprint(g *graph.Graph) uint64 {
	if g == nil {
		return 0
	}
	w := weak.Make(g)
	fpMu.Lock()
	if fp, ok := fpMemo[w]; ok {
		fpMu.Unlock()
		return fp
	}
	fpMu.Unlock()
	fp := rescanFingerprint(g)
	memoFingerprint(g, w, fp)
	return fp
}

// memoFingerprint stores fp for g and arms the collection-time eviction. The
// double-checked insert keeps AddCleanup single-shot per entry when two
// goroutines fingerprint the same graph concurrently.
func memoFingerprint(g *graph.Graph, w weak.Pointer[graph.Graph], fp uint64) {
	fpMu.Lock()
	defer fpMu.Unlock()
	if _, ok := fpMemo[w]; ok {
		return
	}
	fpMemo[w] = fp
	runtime.AddCleanup(g, func(key weak.Pointer[graph.Graph]) {
		fpMu.Lock()
		delete(fpMemo, key)
		fpMu.Unlock()
	}, w)
}

// ReleaseGraphFingerprint drops g's memoized fingerprint immediately — the
// explicit invalidation hook for callers retiring a graph before the garbage
// collector would notice (e.g. a service evicting a tenant's graphs on
// deadline). Safe to call for graphs that were never fingerprinted; the
// collection-time cleanup tolerates the entry already being gone.
func ReleaseGraphFingerprint(g *graph.Graph) {
	if g == nil {
		return
	}
	fpMu.Lock()
	delete(fpMemo, weak.Make(g))
	fpMu.Unlock()
}

// FingerprintMemoSize reports the number of memoized graph fingerprints,
// for tests and capacity monitoring.
func FingerprintMemoSize() int {
	fpMu.Lock()
	defer fpMu.Unlock()
	return len(fpMemo)
}

// EvolveFingerprint returns evolved's content fingerprint computed from
// base's memoized fingerprint and the batch alone — O(|batch|) hashing
// instead of an O(|E|) rescan (deletes over a weighted base additionally pay
// the index scan that matches occurrences to their weights) — and memoizes it
// for evolved so the Delta path updates the memo rather than rescanning. The
// result is bit-identical to GraphFingerprint(evolved): the multiset hash
// makes "chain over the batch" and "rescan the result" the same number.
func EvolveFingerprint(base *graph.Graph, d *graph.Delta, evolved *graph.Graph) (uint64, error) {
	fp := GraphFingerprint(base)
	fp -= vertexTerm(base.NumVertices)
	fp += vertexTerm(evolved.NumVertices)
	if base.Weights == nil {
		for _, e := range d.Deletes {
			fp -= edgeTerm(e, 1)
		}
	} else {
		idx, err := d.DeletedIndices(base)
		if err != nil {
			return 0, err
		}
		for _, i := range idx {
			fp -= edgeTerm(base.Edges[i], base.Weights[i])
		}
	}
	for i, e := range d.Inserts {
		w := float32(1)
		if d.InsertWeights != nil {
			w = d.InsertWeights[i]
		}
		fp += edgeTerm(e, w)
	}
	memoFingerprint(evolved, weak.Make(evolved), fp)
	return fp, nil
}

// Fingerprint is the job's content identity: app name, graph content and
// partitioning seed. Two jobs with equal fingerprints perform the same work,
// which is what idempotent resubmission needs to decide whether a reused
// idempotency key is a retry of the same job or a client bug. The zero Job
// fingerprints deterministically too (empty app, nil graph).
func (j Job) Fingerprint() uint64 {
	app := ""
	if j.App != nil {
		app = j.App.Name()
	}
	h := rng.Hash2(fpJobDomain, rng.HashString(app))
	h = rng.Hash2(h, GraphFingerprint(j.Graph))
	return rng.Hash2(h, j.Seed)
}
