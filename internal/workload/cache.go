package workload

import (
	"container/list"
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
	"proxygraph/internal/rng"
)

// PlacementCache memoizes finalized placements across the jobs of a session
// (or across sessions sharing the cache), keyed by the content of everything
// ingress depends on: the graph's edges, the partitioner and its parameters,
// the share vector and the hashing seed. A repeated (graph, partitioner,
// shares, seed) job skips partitioning and finalization entirely — the paper's
// Section III-B amortization argument ("graph applications are often reused
// to analyze dozens of different real world graphs") applied to ingress.
//
// Concurrent callers asking for the same key are single-flighted: the first
// runs ingress, later ones block on its completion and share the placement.
// Sharing is sound because a Placement is immutable once finalized — every
// engine entry point treats it as read-only (the lazily compiled GatherBoth
// blocks are behind a sync.Once).
//
// A cache shared by a long-running multi-tenant service cannot grow without
// bound, so the cache optionally enforces an entry-count and an
// approximate-byte limit with LRU eviction: whenever a build completes, the
// least-recently-used finished entries are dropped until both limits hold
// again. In-flight builds are never evicted (their waiters hold the entry),
// so a burst of more concurrent distinct keys than MaxEntries can transiently
// exceed the entry limit until those builds finish; completed state never
// does. Evicting never invalidates placements already handed out — callers
// keep their references, the cache just forgets.
type PlacementCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	// lru orders completed entries, most recently used at the front. Values
	// are *cacheEntry; in-flight entries are not in the list.
	lru        *list.List
	maxEntries int
	maxBytes   int64
	bytes      int64

	hits, misses, amends, evictions uint64
	ingressWall                     time.Duration
}

// PlaceOutcome reports how PlaceEvolved satisfied a request.
type PlaceOutcome int

const (
	// PlaceMiss means a full ingress ran.
	PlaceMiss PlaceOutcome = iota
	// PlaceHit means the placement was served from the cache.
	PlaceHit
	// PlaceAmend means the base version's cached placement was patched
	// incrementally for the evolved graph.
	PlaceAmend
)

// String renders the outcome for experiment tables.
func (o PlaceOutcome) String() string {
	switch o {
	case PlaceHit:
		return "hit"
	case PlaceAmend:
		return "amend"
	default:
		return "miss"
	}
}

// cacheKey is the content fingerprint of one ingress invocation.
type cacheKey struct {
	graphFP  uint64
	partFP   uint64
	sharesFP uint64
	seed     uint64
	machines int
}

// cacheEntry is a single-flight slot: done closes when the placement (or the
// ingress error) is available.
type cacheEntry struct {
	key   cacheKey
	done  chan struct{}
	pl    *engine.Placement
	err   error
	bytes int64
	elem  *list.Element // nil while the build is in flight or after eviction
}

// NewPlacementCache returns an empty, unbounded cache.
func NewPlacementCache() *PlacementCache {
	return &PlacementCache{entries: make(map[cacheKey]*cacheEntry), lru: list.New()}
}

// NewBoundedPlacementCache returns a cache evicting least-recently-used
// placements beyond maxEntries entries or approximately maxBytes of placement
// footprint. A zero (or negative) limit means unbounded in that dimension, so
// NewBoundedPlacementCache(0, 0) behaves exactly like NewPlacementCache.
func NewBoundedPlacementCache(maxEntries int, maxBytes int64) *PlacementCache {
	c := NewPlacementCache()
	c.maxEntries = maxEntries
	c.maxBytes = maxBytes
	return c
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	// Hits counts placements served from the cache, including callers that
	// joined an in-flight build — but only joins that received a placement. A
	// join on a build that fails is not a hit: the caller got an error, not a
	// cached placement.
	Hits uint64
	// Misses counts full ingress runs the cache performed.
	Misses uint64
	// Amends counts evolved-graph requests served by incrementally patching
	// the base version's placement (see PlaceEvolved) — cheaper than a miss,
	// not as free as a hit, so they are counted separately from both.
	Amends uint64
	// Evictions counts completed entries dropped to satisfy the entry or
	// byte bound.
	Evictions uint64
	// Entries is the current entry count (including in-flight builds) and
	// Bytes the approximate footprint of the completed ones.
	Entries int
	Bytes   int64
	// IngressWallSeconds is the host wall-clock time spent inside
	// partition.Apply on misses — the time hits avoid.
	IngressWallSeconds float64
}

// Stats returns the current counters.
func (c *PlacementCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:               c.hits,
		Misses:             c.misses,
		Amends:             c.amends,
		Evictions:          c.evictions,
		Entries:            len(c.entries),
		Bytes:              c.bytes,
		IngressWallSeconds: c.ingressWall.Seconds(),
	}
}

// Len returns the number of cached placements (including in-flight builds).
func (c *PlacementCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Place returns the finalized placement for (part, g, shares, seed), running
// ingress on the first request for a key and serving every repeat from the
// cache. hit reports whether ingress was skipped.
func (c *PlacementCache) Place(part partition.Partitioner, g *graph.Graph, shares []float64, seed uint64) (pl *engine.Placement, hit bool, err error) {
	key := c.keyFP(GraphFingerprint(g), part, shares, seed)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		return c.join(e)
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	start := time.Now()
	e.pl, e.err = partition.Apply(part, g, shares, seed)
	c.finish(e, time.Since(start))
	return e.pl, false, e.err
}

// PlaceEvolved returns the finalized placement for the evolved graph (d
// applied to base) under (part, shares, seed), revalidating by content: the
// evolved version's fingerprint is chained from base's over the batch
// (EvolveFingerprint), a cached evolved placement is a hit, and when the base
// version's placement is cached and the partitioner can amend, the evolved
// placement is patched incrementally from it instead of re-ingressing —
// falling back to a full build if amendment fails. evolved must be
// d.Apply(base)'s result.
func (c *PlacementCache) PlaceEvolved(part partition.Partitioner, base *graph.Graph, d *graph.Delta, evolved *graph.Graph, shares []float64, seed uint64) (pl *engine.Placement, outcome PlaceOutcome, err error) {
	evolvedFP, err := EvolveFingerprint(base, d, evolved)
	if err != nil {
		return nil, PlaceMiss, fmt.Errorf("workload: evolve fingerprint: %w", err)
	}
	key := c.keyFP(evolvedFP, part, shares, seed)
	baseKey := c.keyFP(GraphFingerprint(base), part, shares, seed)

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		pl, hit, err := c.join(e)
		if !hit {
			return nil, PlaceMiss, err
		}
		return pl, PlaceHit, nil
	}
	// The base placement is usable for amendment only if its build already
	// completed cleanly; an in-flight base build is not waited on — a full
	// ingress of the evolved graph is no slower than one of the base.
	var basePl *engine.Placement
	amender, canAmend := part.(partition.Amender)
	if be, ok := c.entries[baseKey]; ok && canAmend {
		select {
		case <-be.done:
			if be.err == nil {
				basePl = be.pl
				if be.elem != nil {
					c.lru.MoveToFront(be.elem)
				}
			}
		default:
		}
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	if basePl != nil {
		c.amends++
	} else {
		c.misses++
	}
	c.mu.Unlock()

	outcome = PlaceMiss
	start := time.Now()
	if basePl != nil {
		outcome = PlaceAmend
		e.pl, e.err = partition.AmendApply(amender, basePl, d, evolved, shares, seed)
		if e.err != nil {
			// Amendment is an optimization, not a contract: rebuild from
			// scratch and reclassify the request as a miss.
			outcome = PlaceMiss
			c.mu.Lock()
			c.amends--
			c.misses++
			c.mu.Unlock()
			e.pl, e.err = partition.Apply(part, evolved, shares, seed)
		}
	} else {
		e.pl, e.err = partition.Apply(part, evolved, shares, seed)
	}
	c.finish(e, time.Since(start))
	return e.pl, outcome, e.err
}

// join serves a request from an existing entry, blocking on an in-flight
// build. The caller must hold c.mu; join releases it. A join on a build that
// fails reports hit=false and counts nothing — the caller received an error,
// not a placement.
func (c *PlacementCache) join(e *cacheEntry) (*engine.Placement, bool, error) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	<-e.done
	if e.err != nil {
		return nil, false, e.err
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return e.pl, true, nil
}

// finish publishes a build's result: wake the waiters, then either drop the
// entry (failures are not cached — a later retry must re-run ingress) or
// promote it into the LRU order and enforce the bounds.
func (c *PlacementCache) finish(e *cacheEntry, elapsed time.Duration) {
	close(e.done)
	c.mu.Lock()
	c.ingressWall += elapsed
	if e.err != nil {
		delete(c.entries, e.key)
	} else if cur, still := c.entries[e.key]; still && cur == e {
		e.bytes = placementBytes(e.pl)
		c.bytes += e.bytes
		e.elem = c.lru.PushFront(e)
		c.evictOverLimitLocked(e)
	}
	c.mu.Unlock()
}

// evictOverLimitLocked drops least-recently-used completed entries until both
// bounds hold. keep is the entry that just completed: it is evicted last, so
// a placement larger than the whole byte budget passes through the cache
// without ever being retained — the caller still gets it, the cache just
// refuses to keep it.
func (c *PlacementCache) evictOverLimitLocked(keep *cacheEntry) {
	over := func() bool {
		return (c.maxEntries > 0 && c.lru.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)
	}
	for over() && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		if e == keep {
			// keep is the only other candidate; fall through to the final
			// check below.
			break
		}
		c.removeLocked(e)
	}
	if over() {
		c.removeLocked(keep)
	}
}

// removeLocked evicts one completed entry.
func (c *PlacementCache) removeLocked(e *cacheEntry) {
	c.lru.Remove(e.elem)
	e.elem = nil
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.evictions++
}

// placementBytes approximates a finalized placement's resident footprint: the
// ownership and replica tables plus the compiled per-machine gather blocks,
// which expand every edge into a (from, into) record grouped two ways (and
// may double once the both-direction blocks compile lazily — the estimate
// charges them up front so eviction errs toward staying under the bound).
func placementBytes(pl *engine.Placement) int64 {
	edges := int64(len(pl.EdgeOwner))
	verts := int64(len(pl.Master))
	// EdgeOwner (4B) + LocalEdges indices (4B) + two grouped copies of
	// 8B gather records for each of the in- and both-direction layouts.
	edgeBytes := edges * (4 + 4 + 4*16)
	// ReplicaMask (8B) + Master (4B) + MasterVerts entries (4B) + grouped
	// key/offset tables (~16B across the compiled blocks).
	vertBytes := verts * (8 + 4 + 4 + 16)
	return edgeBytes + vertBytes
}

// keyFP fingerprints one ingress invocation, with the graph identified by an
// already-computed content fingerprint.
func (c *PlacementCache) keyFP(graphFP uint64, part partition.Partitioner, shares []float64, seed uint64) cacheKey {
	sharesFP := uint64(0x73686172) // "shar" domain
	for _, s := range shares {
		sharesFP = rng.Hash2(sharesFP, math.Float64bits(s))
	}
	return cacheKey{
		graphFP:  graphFP,
		partFP:   partitionerFingerprint(part),
		sharesFP: sharesFP,
		seed:     seed,
		machines: len(shares),
	}
}

// partitionerFingerprint identifies the algorithm and its parameters by
// hashing the type name, Name() and every exported field value explicitly, so
// two instances of the same type with different tuning never share placements
// and two instances with equal tuning always do. The previous %+v rendering
// broke the second half of that contract the moment a partitioner grew a
// pointer- or slice-valued field: %+v prints addresses for those, making the
// fingerprint differ between structurally identical instances (and between
// process runs).
func partitionerFingerprint(part partition.Partitioner) uint64 {
	h := rng.Hash2(0x70617274 /* "part" */, rng.HashString(part.Name()))
	h = rng.Hash2(h, rng.HashString(fmt.Sprintf("%T", part)))
	v := reflect.ValueOf(part)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return rng.Hash2(h, 0)
		}
		v = v.Elem()
	}
	return hashReflect(h, v)
}

// hashReflect folds a value's content into h by structure, not by rendering:
// numeric and string leaves hash their values, composites recurse in
// declaration/index order, and pointers hash their pointees (with a nil/non-
// nil discriminant) — never their addresses.
func hashReflect(h uint64, v reflect.Value) uint64 {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			h = rng.Hash2(h, rng.HashString(f.Name))
			h = hashReflect(h, v.Field(i))
		}
		return h
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return rng.Hash2(h, 0)
		}
		return hashReflect(rng.Hash2(h, 1), v.Elem())
	case reflect.Slice, reflect.Array:
		h = rng.Hash2(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			h = hashReflect(h, v.Index(i))
		}
		return h
	case reflect.Map:
		// Order-independent: sum the entry hashes so iteration order cannot
		// leak into the fingerprint.
		var sum uint64
		for it := v.MapRange(); it.Next(); {
			sum += rng.Hash2(hashReflect(0x6b, it.Key()), hashReflect(0x76, it.Value()))
		}
		return rng.Hash2(rng.Hash2(h, uint64(v.Len())), sum)
	case reflect.Bool:
		if v.Bool() {
			return rng.Hash2(h, 1)
		}
		return rng.Hash2(h, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return rng.Hash2(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return rng.Hash2(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		return rng.Hash2(h, math.Float64bits(v.Float()))
	case reflect.String:
		return rng.Hash2(h, rng.HashString(v.String()))
	default:
		// Funcs, chans, unsafe pointers: no stable content to hash. Fold in
		// the kind so the field still participates in the fingerprint.
		return rng.Hash2(h, uint64(v.Kind()))
	}
}
