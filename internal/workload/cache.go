package workload

import (
	"fmt"
	"math"
	"sync"
	"time"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
	"proxygraph/internal/rng"
)

// PlacementCache memoizes finalized placements across the jobs of a session
// (or across sessions sharing the cache), keyed by the content of everything
// ingress depends on: the graph's edges, the partitioner and its parameters,
// the share vector and the hashing seed. A repeated (graph, partitioner,
// shares, seed) job skips partitioning and finalization entirely — the paper's
// Section III-B amortization argument ("graph applications are often reused
// to analyze dozens of different real world graphs") applied to ingress.
//
// Concurrent callers asking for the same key are single-flighted: the first
// runs ingress, later ones block on its completion and share the placement.
// Sharing is sound because a Placement is immutable once finalized — every
// engine entry point treats it as read-only (the lazily compiled GatherBoth
// blocks are behind a sync.Once).
type PlacementCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	hits, misses uint64
	ingressWall  time.Duration
	graphFP      sync.Map // *graph.Graph -> uint64; graphs are immutable
}

// cacheKey is the content fingerprint of one ingress invocation.
type cacheKey struct {
	graphFP  uint64
	partFP   uint64
	sharesFP uint64
	seed     uint64
	machines int
}

// cacheEntry is a single-flight slot: done closes when the placement (or the
// ingress error) is available.
type cacheEntry struct {
	done chan struct{}
	pl   *engine.Placement
	err  error
}

// NewPlacementCache returns an empty cache.
func NewPlacementCache() *PlacementCache {
	return &PlacementCache{entries: make(map[cacheKey]*cacheEntry)}
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	// Hits counts placements served from the cache (including callers that
	// joined an in-flight build).
	Hits uint64
	// Misses counts ingress runs the cache performed.
	Misses uint64
	// IngressWallSeconds is the host wall-clock time spent inside
	// partition.Apply on misses — the time hits avoid.
	IngressWallSeconds float64
}

// Stats returns the current counters.
func (c *PlacementCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:               c.hits,
		Misses:             c.misses,
		IngressWallSeconds: c.ingressWall.Seconds(),
	}
}

// Len returns the number of cached placements (including in-flight builds).
func (c *PlacementCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Place returns the finalized placement for (part, g, shares, seed), running
// ingress on the first request for a key and serving every repeat from the
// cache. hit reports whether ingress was skipped.
func (c *PlacementCache) Place(part partition.Partitioner, g *graph.Graph, shares []float64, seed uint64) (pl *engine.Placement, hit bool, err error) {
	key := c.key(part, g, shares, seed)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.pl, true, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	start := time.Now()
	e.pl, e.err = partition.Apply(part, g, shares, seed)
	elapsed := time.Since(start)
	close(e.done)

	c.mu.Lock()
	c.ingressWall += elapsed
	if e.err != nil {
		// Do not cache failures: a later retry (e.g. after the caller fixes
		// its share vector) must re-run ingress.
		delete(c.entries, key)
	}
	c.mu.Unlock()
	return e.pl, false, e.err
}

// key fingerprints one ingress invocation.
func (c *PlacementCache) key(part partition.Partitioner, g *graph.Graph, shares []float64, seed uint64) cacheKey {
	sharesFP := uint64(0x73686172) // "shar" domain
	for _, s := range shares {
		sharesFP = rng.Hash2(sharesFP, math.Float64bits(s))
	}
	return cacheKey{
		graphFP:  c.graphFingerprint(g),
		partFP:   partitionerFingerprint(part),
		sharesFP: sharesFP,
		seed:     seed,
		machines: len(shares),
	}
}

// graphFingerprint hashes the graph's content (vertex count, edge list,
// weights), memoized per *graph.Graph — graphs in this repository are
// immutable after construction, so the pointer is a sound memo key while the
// content hash keeps distinct graphs at the same address from colliding
// across cache lifetimes.
func (c *PlacementCache) graphFingerprint(g *graph.Graph) uint64 {
	if fp, ok := c.graphFP.Load(g); ok {
		return fp.(uint64)
	}
	h := rng.Hash2(0x67726170 /* "grap" domain */, uint64(g.NumVertices))
	for _, e := range g.Edges {
		h = rng.Hash3(h, uint64(e.Src), uint64(e.Dst))
	}
	for _, w := range g.Weights {
		h = rng.Hash2(h, uint64(math.Float32bits(w)))
	}
	c.graphFP.Store(g, h)
	return h
}

// partitionerFingerprint identifies the algorithm and its parameters. The
// %+v rendering covers every exported field (thresholds, gammas, lambdas), so
// two instances of the same type with different tuning never share placements.
func partitionerFingerprint(part partition.Partitioner) uint64 {
	return rng.HashString(fmt.Sprintf("%s|%T%+v", part.Name(), part, part))
}
