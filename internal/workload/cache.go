package workload

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"time"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
	"proxygraph/internal/rng"
)

// PlacementCache memoizes finalized placements across the jobs of a session
// (or across sessions sharing the cache), keyed by the content of everything
// ingress depends on: the graph's edges, the partitioner and its parameters,
// the share vector and the hashing seed. A repeated (graph, partitioner,
// shares, seed) job skips partitioning and finalization entirely — the paper's
// Section III-B amortization argument ("graph applications are often reused
// to analyze dozens of different real world graphs") applied to ingress.
//
// Concurrent callers asking for the same key are single-flighted: the first
// runs ingress, later ones block on its completion and share the placement.
// Sharing is sound because a Placement is immutable once finalized — every
// engine entry point treats it as read-only (the lazily compiled GatherBoth
// blocks are behind a sync.Once).
//
// A cache shared by a long-running multi-tenant service cannot grow without
// bound, so the cache optionally enforces an entry-count and an
// approximate-byte limit with LRU eviction: whenever a build completes, the
// least-recently-used finished entries are dropped until both limits hold
// again. In-flight builds are never evicted (their waiters hold the entry),
// so a burst of more concurrent distinct keys than MaxEntries can transiently
// exceed the entry limit until those builds finish; completed state never
// does. Evicting never invalidates placements already handed out — callers
// keep their references, the cache just forgets.
type PlacementCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	// lru orders completed entries, most recently used at the front. Values
	// are *cacheEntry; in-flight entries are not in the list.
	lru        *list.List
	maxEntries int
	maxBytes   int64
	bytes      int64

	hits, misses, evictions uint64
	ingressWall             time.Duration
}

// cacheKey is the content fingerprint of one ingress invocation.
type cacheKey struct {
	graphFP  uint64
	partFP   uint64
	sharesFP uint64
	seed     uint64
	machines int
}

// cacheEntry is a single-flight slot: done closes when the placement (or the
// ingress error) is available.
type cacheEntry struct {
	key   cacheKey
	done  chan struct{}
	pl    *engine.Placement
	err   error
	bytes int64
	elem  *list.Element // nil while the build is in flight or after eviction
}

// NewPlacementCache returns an empty, unbounded cache.
func NewPlacementCache() *PlacementCache {
	return &PlacementCache{entries: make(map[cacheKey]*cacheEntry), lru: list.New()}
}

// NewBoundedPlacementCache returns a cache evicting least-recently-used
// placements beyond maxEntries entries or approximately maxBytes of placement
// footprint. A zero (or negative) limit means unbounded in that dimension, so
// NewBoundedPlacementCache(0, 0) behaves exactly like NewPlacementCache.
func NewBoundedPlacementCache(maxEntries int, maxBytes int64) *PlacementCache {
	c := NewPlacementCache()
	c.maxEntries = maxEntries
	c.maxBytes = maxBytes
	return c
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	// Hits counts placements served from the cache (including callers that
	// joined an in-flight build).
	Hits uint64
	// Misses counts ingress runs the cache performed.
	Misses uint64
	// Evictions counts completed entries dropped to satisfy the entry or
	// byte bound.
	Evictions uint64
	// Entries is the current entry count (including in-flight builds) and
	// Bytes the approximate footprint of the completed ones.
	Entries int
	Bytes   int64
	// IngressWallSeconds is the host wall-clock time spent inside
	// partition.Apply on misses — the time hits avoid.
	IngressWallSeconds float64
}

// Stats returns the current counters.
func (c *PlacementCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:               c.hits,
		Misses:             c.misses,
		Evictions:          c.evictions,
		Entries:            len(c.entries),
		Bytes:              c.bytes,
		IngressWallSeconds: c.ingressWall.Seconds(),
	}
}

// Len returns the number of cached placements (including in-flight builds).
func (c *PlacementCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Place returns the finalized placement for (part, g, shares, seed), running
// ingress on the first request for a key and serving every repeat from the
// cache. hit reports whether ingress was skipped.
func (c *PlacementCache) Place(part partition.Partitioner, g *graph.Graph, shares []float64, seed uint64) (pl *engine.Placement, hit bool, err error) {
	key := c.key(part, g, shares, seed)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.done
		return e.pl, true, e.err
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	start := time.Now()
	e.pl, e.err = partition.Apply(part, g, shares, seed)
	elapsed := time.Since(start)
	close(e.done)

	c.mu.Lock()
	c.ingressWall += elapsed
	if e.err != nil {
		// Do not cache failures: a later retry (e.g. after the caller fixes
		// its share vector) must re-run ingress.
		delete(c.entries, key)
	} else if _, still := c.entries[key]; still {
		// The build finished and nothing raced it out of the map: promote it
		// into the LRU order and enforce the bounds.
		e.bytes = placementBytes(e.pl)
		c.bytes += e.bytes
		e.elem = c.lru.PushFront(e)
		c.evictOverLimitLocked(e)
	}
	c.mu.Unlock()
	return e.pl, false, e.err
}

// evictOverLimitLocked drops least-recently-used completed entries until both
// bounds hold. keep is the entry that just completed: it is evicted last, so
// a placement larger than the whole byte budget passes through the cache
// without ever being retained — the caller still gets it, the cache just
// refuses to keep it.
func (c *PlacementCache) evictOverLimitLocked(keep *cacheEntry) {
	over := func() bool {
		return (c.maxEntries > 0 && c.lru.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)
	}
	for over() && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		if e == keep {
			// keep is the only other candidate; fall through to the final
			// check below.
			break
		}
		c.removeLocked(e)
	}
	if over() {
		c.removeLocked(keep)
	}
}

// removeLocked evicts one completed entry.
func (c *PlacementCache) removeLocked(e *cacheEntry) {
	c.lru.Remove(e.elem)
	e.elem = nil
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.evictions++
}

// placementBytes approximates a finalized placement's resident footprint: the
// ownership and replica tables plus the compiled per-machine gather blocks,
// which expand every edge into a (from, into) record grouped two ways (and
// may double once the both-direction blocks compile lazily — the estimate
// charges them up front so eviction errs toward staying under the bound).
func placementBytes(pl *engine.Placement) int64 {
	edges := int64(len(pl.EdgeOwner))
	verts := int64(len(pl.Master))
	// EdgeOwner (4B) + LocalEdges indices (4B) + two grouped copies of
	// 8B gather records for each of the in- and both-direction layouts.
	edgeBytes := edges * (4 + 4 + 4*16)
	// ReplicaMask (8B) + Master (4B) + MasterVerts entries (4B) + grouped
	// key/offset tables (~16B across the compiled blocks).
	vertBytes := verts * (8 + 4 + 4 + 16)
	return edgeBytes + vertBytes
}

// key fingerprints one ingress invocation.
func (c *PlacementCache) key(part partition.Partitioner, g *graph.Graph, shares []float64, seed uint64) cacheKey {
	sharesFP := uint64(0x73686172) // "shar" domain
	for _, s := range shares {
		sharesFP = rng.Hash2(sharesFP, math.Float64bits(s))
	}
	return cacheKey{
		graphFP:  GraphFingerprint(g),
		partFP:   partitionerFingerprint(part),
		sharesFP: sharesFP,
		seed:     seed,
		machines: len(shares),
	}
}

// partitionerFingerprint identifies the algorithm and its parameters. The
// %+v rendering covers every exported field (thresholds, gammas, lambdas), so
// two instances of the same type with different tuning never share placements.
func partitionerFingerprint(part partition.Partitioner) uint64 {
	return rng.HashString(fmt.Sprintf("%s|%T%+v", part.Name(), part, part))
}
