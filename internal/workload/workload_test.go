package workload

import (
	"testing"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/partition"
	"proxygraph/internal/trace"
)

func caseTwo(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(
		cluster.LocalXeon("xeon-4c", 4, 2.5),
		cluster.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestRandomJobsDeterministic(t *testing.T) {
	a, err := RandomJobs(10, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomJobs(10, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 {
		t.Fatalf("jobs = %d", len(a))
	}
	for i := range a {
		if a[i].App.Name() != b[i].App.Name() || a[i].Graph.Name != b[i].Graph.Name {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	if _, err := RandomJobs(0, 512, 7); err == nil {
		t.Error("zero jobs should error")
	}
}

func TestSessionProfilingAmortizes(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(30, 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	session := &Session{Cluster: cl}

	defaultRep, err := session.Run(jobs, core.Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	// Proxies profile at a fraction of the production graph size: CCRs are
	// scale-invariant (see the scale-invariance ablation), so the offline
	// cost shrinks without losing accuracy.
	pp, err := core.NewProxyProfiler(1024, 11)
	if err != nil {
		t.Fatal(err)
	}
	proxyRep, err := session.Run(jobs, pp)
	if err != nil {
		t.Fatal(err)
	}

	if defaultRep.ProfilingSeconds != 0 {
		t.Error("uniform estimator should have no profiling cost")
	}
	if proxyRep.ProfilingSeconds <= 0 {
		t.Error("proxy system must pay an offline profiling cost")
	}
	// Per job, proxy must be faster on this heterogeneous cluster.
	for i := range jobs {
		if proxyRep.JobSeconds[i] >= defaultRep.JobSeconds[i] {
			t.Fatalf("job %d: proxy %.5f not faster than default %.5f",
				i, proxyRep.JobSeconds[i], defaultRep.JobSeconds[i])
		}
	}
	// The one-time cost amortizes: the proxy system's cumulative time must
	// cross below the default's within the session.
	cross := Crossover(proxyRep, defaultRep)
	if cross == 0 {
		t.Fatalf("profiling never amortized over %d jobs (proxy total %.4f vs default %.4f)",
			len(jobs), proxyRep.Total(), defaultRep.Total())
	}
	t.Logf("profiling cost %.4fs amortized after %d jobs", proxyRep.ProfilingSeconds, cross)
	if proxyRep.Total() >= defaultRep.Total() {
		t.Error("proxy session should win in total")
	}
	if proxyRep.TotalEnergyJoules >= defaultRep.TotalEnergyJoules {
		t.Error("proxy session should save energy")
	}
}

func TestSessionValidation(t *testing.T) {
	jobs, err := RandomJobs(1, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := &Session{}
	if _, err := s.Run(jobs, core.Uniform{}); err == nil {
		t.Error("missing cluster should error")
	}
}

func TestSessionCustomPartitioner(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(3, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := &Session{Cluster: cl, Partitioner: partition.NewRandomHash()}
	rep, err := s.Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.JobSeconds) != 3 || rep.Total() <= 0 {
		t.Errorf("report malformed: %+v", rep)
	}
	// Cumulative is monotone.
	prev := 0.0
	for _, c := range rep.CumulativeSeconds {
		if c <= prev {
			t.Fatal("cumulative time not increasing")
		}
		prev = c
	}
}

func TestCrossoverSemantics(t *testing.T) {
	a := &Report{CumulativeSeconds: []float64{5, 6, 7}}
	b := &Report{CumulativeSeconds: []float64{2, 4, 9}}
	if got := Crossover(a, b); got != 3 {
		t.Errorf("crossover = %d, want 3", got)
	}
	never := &Report{CumulativeSeconds: []float64{9, 10, 11}}
	if got := Crossover(never, b); got != 0 {
		t.Errorf("crossover = %d, want 0", got)
	}
}

// TestCrossoverUnequalLengths pins the common-prefix semantics: only indices
// present in both reports are compared, so a crossover that would first occur
// past the shorter report's end does not count.
func TestCrossoverUnequalLengths(t *testing.T) {
	// b shorter than a: a beats b only at index 2, which b does not reach.
	a := &Report{CumulativeSeconds: []float64{5, 6, 3}}
	b := &Report{CumulativeSeconds: []float64{2, 4}}
	if got := Crossover(a, b); got != 0 {
		t.Errorf("crossover past b's end = %d, want 0", got)
	}
	// b shorter, but the crossover lies inside the common prefix.
	early := &Report{CumulativeSeconds: []float64{5, 3, 1}}
	if got := Crossover(early, b); got != 2 {
		t.Errorf("crossover = %d, want 2", got)
	}
	// a shorter than b: b's tail is ignored symmetrically.
	short := &Report{CumulativeSeconds: []float64{3}}
	long := &Report{CumulativeSeconds: []float64{4, 0, 0}}
	if got := Crossover(short, long); got != 1 {
		t.Errorf("crossover = %d, want 1", got)
	}
	// Empty reports never cross.
	if got := Crossover(&Report{}, b); got != 0 {
		t.Errorf("empty report crossed at %d", got)
	}
}

// TestSessionContinueOnError pins per-job failure containment: a failing job
// aborts a default session, while a ContinueOnError session records the error
// in JobErrors, zeroes the job's time columns, and keeps going with accounting
// identical to a session that never saw the bad job.
func TestSessionContinueOnError(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(4, 512, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Extension apps now join the pool, so a missing pool entry no longer
	// fails a job; an out-of-range BFS root still does, rejected by the typed
	// source validation at run time.
	bad := jobs[1]
	badBFS := apps.NewBFS()
	badBFS.Source = 1 << 30
	bad.App = badBFS
	withBad := append(append([]Job{}, jobs[:2]...), bad)
	withBad = append(withBad, jobs[2:]...)

	s := &Session{Cluster: cl}
	if _, err := s.Run(withBad, core.NewThreadCount()); err == nil {
		t.Fatal("fail-stop session should abort on the bad job")
	}

	tolerant := &Session{Cluster: cl, ContinueOnError: true}
	rep, err := tolerant.Run(withBad, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.JobSeconds) != len(withBad) || len(rep.JobErrors) != len(withBad) {
		t.Fatalf("report covers %d/%d jobs, want %d", len(rep.JobSeconds), len(rep.JobErrors), len(withBad))
	}
	if rep.FailedJobs() != 1 || rep.JobErrors[2] == nil {
		t.Fatalf("JobErrors = %v, want exactly index 2 failed", rep.JobErrors)
	}
	if rep.JobSeconds[2] != 0 || rep.IngressSeconds[2] != 0 {
		t.Error("failed job charged time")
	}
	if rep.CumulativeSeconds[2] != rep.CumulativeSeconds[1] {
		t.Error("failed job advanced the session clock")
	}
	// The surviving jobs' accounting matches a clean session of just them.
	clean, err := (&Session{Cluster: cl}).Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	got := append(append([]float64{}, rep.JobSeconds[:2]...), rep.JobSeconds[3:]...)
	for i := range clean.JobSeconds {
		if clean.JobSeconds[i] != got[i] {
			t.Fatalf("surviving job %d: %.9f != clean %.9f", i, got[i], clean.JobSeconds[i])
		}
	}
	if clean.TotalEnergyJoules != rep.TotalEnergyJoules {
		t.Error("failed job contributed energy")
	}
	// A clean ContinueOnError run reports a full slice of nil errors.
	tolerantClean, err := tolerant.Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if len(tolerantClean.JobErrors) != len(jobs) || tolerantClean.FailedJobs() != 0 {
		t.Fatalf("clean tolerant run JobErrors = %v", tolerantClean.JobErrors)
	}
}

func TestSessionTraceIdenticalResults(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(4, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Session{Cluster: cl}
	plainRep, err := plain.Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	traced := &Session{Cluster: cl, Trace: rec}
	tracedRep, err := traced.Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	// Attaching a collector must not perturb the accounting of any job.
	for i := range jobs {
		if plainRep.JobSeconds[i] != tracedRep.JobSeconds[i] {
			t.Fatalf("job %d: traced %.9f != plain %.9f", i, tracedRep.JobSeconds[i], plainRep.JobSeconds[i])
		}
	}
	if len(rec.Events) == 0 {
		t.Fatal("session with a collector recorded no events")
	}
	// Every traced job contributes at least its superstep begins.
	begins := 0
	for _, e := range rec.Events {
		if e.Kind == trace.KindStepBegin {
			begins++
		}
	}
	if begins == 0 {
		t.Fatal("no superstep events across the session")
	}
}

// TestSessionBatchJobs runs the batched-traversal family (ClusterBFS, the
// landmark oracle, k-seed reachability) through a cached session: extension
// jobs dispatch through the job-unioned CCR pool, repeated batches hit the
// placement cache, and each batch charges the session clock exactly once.
func TestSessionBatchJobs(t *testing.T) {
	cl := caseTwo(t)
	base, err := RandomJobs(1, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := base[0].Graph
	jobs := []Job{
		{App: apps.NewClusterBFS(), Graph: g, Seed: 1},
		{App: apps.NewLandmarkOracle(), Graph: g, Seed: 1},
		{App: apps.NewKSeedReach(), Graph: g, Seed: 1},
		{App: apps.NewClusterBFS(), Graph: g, Seed: 1},
	}
	s := &Session{Cluster: cl, Cache: NewPlacementCache(), ChargeIngress: true}
	rep, err := s.Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.JobSeconds) != len(jobs) {
		t.Fatalf("report covers %d jobs, want %d", len(rep.JobSeconds), len(jobs))
	}
	for i, sec := range rep.JobSeconds {
		if sec <= 0 {
			t.Errorf("job %d (%s) charged %v seconds", i, jobs[i].App.Name(), sec)
		}
	}
	if rep.CacheHits+rep.CacheMisses != len(jobs) {
		t.Fatalf("cache outcomes %d+%d do not cover %d jobs", rep.CacheHits, rep.CacheMisses, len(jobs))
	}
	if rep.CacheHits < 1 {
		t.Error("repeated batch on the same graph never hit the placement cache")
	}
	if rep.IngressSeconds[0] <= 0 {
		t.Error("cold batch charged no ingress")
	}
	if rep.IngressSeconds[len(jobs)-1] != 0 {
		t.Error("cached batch charged ingress")
	}
}
