package workload

import (
	"testing"

	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/partition"
	"proxygraph/internal/trace"
)

func caseTwo(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(
		cluster.LocalXeon("xeon-4c", 4, 2.5),
		cluster.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestRandomJobsDeterministic(t *testing.T) {
	a, err := RandomJobs(10, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomJobs(10, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 {
		t.Fatalf("jobs = %d", len(a))
	}
	for i := range a {
		if a[i].App.Name() != b[i].App.Name() || a[i].Graph.Name != b[i].Graph.Name {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	if _, err := RandomJobs(0, 512, 7); err == nil {
		t.Error("zero jobs should error")
	}
}

func TestSessionProfilingAmortizes(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(30, 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	session := &Session{Cluster: cl}

	defaultRep, err := session.Run(jobs, core.Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	// Proxies profile at a fraction of the production graph size: CCRs are
	// scale-invariant (see the scale-invariance ablation), so the offline
	// cost shrinks without losing accuracy.
	pp, err := core.NewProxyProfiler(1024, 11)
	if err != nil {
		t.Fatal(err)
	}
	proxyRep, err := session.Run(jobs, pp)
	if err != nil {
		t.Fatal(err)
	}

	if defaultRep.ProfilingSeconds != 0 {
		t.Error("uniform estimator should have no profiling cost")
	}
	if proxyRep.ProfilingSeconds <= 0 {
		t.Error("proxy system must pay an offline profiling cost")
	}
	// Per job, proxy must be faster on this heterogeneous cluster.
	for i := range jobs {
		if proxyRep.JobSeconds[i] >= defaultRep.JobSeconds[i] {
			t.Fatalf("job %d: proxy %.5f not faster than default %.5f",
				i, proxyRep.JobSeconds[i], defaultRep.JobSeconds[i])
		}
	}
	// The one-time cost amortizes: the proxy system's cumulative time must
	// cross below the default's within the session.
	cross := Crossover(proxyRep, defaultRep)
	if cross == 0 {
		t.Fatalf("profiling never amortized over %d jobs (proxy total %.4f vs default %.4f)",
			len(jobs), proxyRep.Total(), defaultRep.Total())
	}
	t.Logf("profiling cost %.4fs amortized after %d jobs", proxyRep.ProfilingSeconds, cross)
	if proxyRep.Total() >= defaultRep.Total() {
		t.Error("proxy session should win in total")
	}
	if proxyRep.TotalEnergyJoules >= defaultRep.TotalEnergyJoules {
		t.Error("proxy session should save energy")
	}
}

func TestSessionValidation(t *testing.T) {
	jobs, err := RandomJobs(1, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := &Session{}
	if _, err := s.Run(jobs, core.Uniform{}); err == nil {
		t.Error("missing cluster should error")
	}
}

func TestSessionCustomPartitioner(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(3, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := &Session{Cluster: cl, Partitioner: partition.NewRandomHash()}
	rep, err := s.Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.JobSeconds) != 3 || rep.Total() <= 0 {
		t.Errorf("report malformed: %+v", rep)
	}
	// Cumulative is monotone.
	prev := 0.0
	for _, c := range rep.CumulativeSeconds {
		if c <= prev {
			t.Fatal("cumulative time not increasing")
		}
		prev = c
	}
}

func TestCrossoverSemantics(t *testing.T) {
	a := &Report{CumulativeSeconds: []float64{5, 6, 7}}
	b := &Report{CumulativeSeconds: []float64{2, 4, 9}}
	if got := Crossover(a, b); got != 3 {
		t.Errorf("crossover = %d, want 3", got)
	}
	never := &Report{CumulativeSeconds: []float64{9, 10, 11}}
	if got := Crossover(never, b); got != 0 {
		t.Errorf("crossover = %d, want 0", got)
	}
}

func TestSessionTraceIdenticalResults(t *testing.T) {
	cl := caseTwo(t)
	jobs, err := RandomJobs(4, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Session{Cluster: cl}
	plainRep, err := plain.Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	traced := &Session{Cluster: cl, Trace: rec}
	tracedRep, err := traced.Run(jobs, core.NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	// Attaching a collector must not perturb the accounting of any job.
	for i := range jobs {
		if plainRep.JobSeconds[i] != tracedRep.JobSeconds[i] {
			t.Fatalf("job %d: traced %.9f != plain %.9f", i, tracedRep.JobSeconds[i], plainRep.JobSeconds[i])
		}
	}
	if len(rec.Events) == 0 {
		t.Fatal("session with a collector recorded no events")
	}
	// Every traced job contributes at least its superstep begins.
	begins := 0
	for _, e := range rec.Events {
		if e.Kind == trace.KindStepBegin {
			begins++
		}
	}
	if begins == 0 {
		t.Fatal("no superstep events across the session")
	}
}
