// Package workload simulates data-center graph-processing sessions: streams
// of jobs (application × input graph) arriving at a heterogeneous cluster.
// It operationalizes the paper's Section III-B cost argument — CCR profiling
// is a one-time offline step whose cost amortizes because "graph
// applications are often reused to analyze dozens of different real world
// graphs" — by charging the proxy system its profiling time up front and
// measuring the cumulative makespan crossover against the default and
// prior-work systems.
package workload

import (
	"fmt"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
	"proxygraph/internal/rng"
	"proxygraph/internal/trace"
)

// Job is one unit of work: run an application over a graph.
type Job struct {
	// App is the application to execute.
	App apps.App
	// Graph is the input.
	Graph *graph.Graph
	// Seed drives the job's partitioning hash.
	Seed uint64
}

// Seed-derivation domains for RandomJobs. Graph generation and job
// partitioning must draw from decorrelated streams: the generator consumes
// hashes of its seed and the partitioners consume hashes of the job seed, so
// handing both the same seed+i arithmetic sequence correlates the synthetic
// edge structure with the ingress hash decisions. Hash3(seed, domain, i)
// keys each consumer into its own SplitMix64 stream.
const (
	seedDomainGraphGen = 0x67656e // "gen"
	seedDomainIngress  = 0x696e67 // "ing"
)

// RandomJobs draws n jobs over the Table II real-world graphs (at 1/scale)
// and the paper's four applications, the "dozens of different real world
// graphs" mix. Graphs are generated once and reused across jobs, and every
// job on the same graph carries the same ingress seed — a stored graph is
// re-partitioned identically on each reuse, which is what lets a placement
// cache skip repeated ingress.
func RandomJobs(n, scale int, seed uint64) ([]Job, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive job count")
	}
	specs := gen.RealGraphs()
	graphs := make([]*graph.Graph, len(specs))
	ingressSeeds := make([]uint64, len(specs))
	for i, spec := range specs {
		g, err := gen.Generate(spec.Scale(scale), rng.Hash3(seed, seedDomainGraphGen, uint64(i)))
		if err != nil {
			return nil, err
		}
		graphs[i] = g
		ingressSeeds[i] = rng.Hash3(seed, seedDomainIngress, uint64(i))
	}
	applications := apps.All()
	src := rng.New(seed ^ 0xfeed)
	jobs := make([]Job, n)
	for i := range jobs {
		ai := src.Intn(len(applications))
		gi := src.Intn(len(graphs))
		jobs[i] = Job{App: applications[ai], Graph: graphs[gi], Seed: ingressSeeds[gi]}
	}
	return jobs, nil
}

// Report summarizes one session under one system.
type Report struct {
	// System names the estimator used.
	System string
	// ProfilingSeconds is the one-time offline profiling cost in simulated
	// seconds (zero for configuration-based estimators).
	ProfilingSeconds float64
	// JobSeconds holds each job's execution makespan (zero for jobs that
	// failed under ContinueOnError).
	JobSeconds []float64
	// IngressSeconds holds each job's charged ingress makespan: zero unless
	// the session sets ChargeIngress, and zero for placement-cache hits.
	IngressSeconds []float64
	// CumulativeSeconds[i] is profiling plus the first i+1 jobs (including
	// their charged ingress).
	CumulativeSeconds []float64
	// TotalEnergyJoules sums the jobs' energy.
	TotalEnergyJoules float64
	// CacheHits and CacheMisses count this run's placement-cache outcomes
	// (both zero when the session has no cache).
	CacheHits, CacheMisses int
	// JobErrors records each job's failure, index-aligned with JobSeconds
	// (nil entries are successes). It is only populated when the session
	// runs with ContinueOnError; otherwise the first error aborts the run
	// and JobErrors stays nil.
	JobErrors []error
}

// FailedJobs counts the non-nil entries of JobErrors.
func (r *Report) FailedJobs() int {
	n := 0
	for _, err := range r.JobErrors {
		if err != nil {
			n++
		}
	}
	return n
}

// Total returns profiling plus all job time.
func (r *Report) Total() float64 {
	if len(r.CumulativeSeconds) == 0 {
		return r.ProfilingSeconds
	}
	return r.CumulativeSeconds[len(r.CumulativeSeconds)-1]
}

// Session executes a job stream on a cluster under a CCR estimator.
type Session struct {
	// Cluster receives the jobs.
	Cluster *cluster.Cluster
	// Partitioner is the ingress algorithm (default Hybrid).
	Partitioner partition.Partitioner
	// Trace, when non-nil, receives structured execution events from every
	// job that supports the full-options entry point. Jobs without one (the
	// async Coloring, Triangle Count) run untraced with identical results.
	// Sessions additionally emit one KindIngress event per job reporting the
	// placement-cache outcome and any charged ingress makespan.
	Trace trace.Collector
	// Cache, when non-nil, memoizes finalized placements across jobs: a
	// repeated (graph, partitioner, shares, seed) combination skips
	// partitioning and finalization. Execution results and accounting are
	// unaffected — a hit returns the exact placement a cold run would build.
	Cache *PlacementCache
	// ChargeIngress adds each cold job's simulated ingress makespan
	// (engine.Ingress: edge loading plus mirror-table exchange) to the
	// cumulative session clock. Placement-cache hits charge nothing, which is
	// the cumulative-makespan effect the session-throughput experiment
	// measures. JobSeconds stays execution-only either way.
	ChargeIngress bool
	// ContinueOnError keeps the session going past a failing job: the error
	// is recorded in Report.JobErrors at the job's index (with zeroed time
	// columns) instead of aborting the whole run. Session-level failures —
	// a missing cluster, an unbuildable CCR pool — still abort.
	ContinueOnError bool
}

// Run executes the jobs. For the proxy profiler, the one-time profiling cost
// is the simulated wall-clock of the profiling sets: machine groups profile
// in parallel (Fig 7a), each group running every application over every
// proxy graph in sequence.
func (s *Session) Run(jobs []Job, est core.Estimator) (*Report, error) {
	if s.Cluster == nil {
		return nil, fmt.Errorf("workload: session has no cluster")
	}

	rep := &Report{System: est.Name()}
	if pp, ok := est.(*core.ProxyProfiler); ok {
		cost, err := profilingCost(s.Cluster, pp)
		if err != nil {
			return nil, err
		}
		rep.ProfilingSeconds = cost
	}

	// The CCR pool covers the paper's four applications plus whatever the job
	// stream actually brings (deduplicated by name): extension jobs — BFS,
	// the batched ClusterBFS family — dispatch through the same pool, share
	// the placement cache, and charge the budget once per batch.
	poolApps := apps.All()
	pooled := make(map[string]bool, len(poolApps))
	for _, a := range poolApps {
		pooled[a.Name()] = true
	}
	for _, job := range jobs {
		if job.App != nil && !pooled[job.App.Name()] {
			pooled[job.App.Name()] = true
			poolApps = append(poolApps, job.App)
		}
	}
	pool, err := core.BuildPool(s.Cluster, poolApps, est)
	if err != nil {
		return nil, err
	}

	cumulative := rep.ProfilingSeconds
	for _, job := range jobs {
		jr, err := s.RunJob(pool, job, engine.Options{})
		if err != nil {
			if !s.ContinueOnError {
				return nil, err
			}
			// Per-job failure containment: the job contributes zeroed time
			// columns and its error, the session clock does not advance.
			rep.JobSeconds = append(rep.JobSeconds, 0)
			rep.IngressSeconds = append(rep.IngressSeconds, 0)
			rep.CumulativeSeconds = append(rep.CumulativeSeconds, cumulative)
			if rep.JobErrors == nil {
				rep.JobErrors = make([]error, len(rep.JobSeconds)-1, len(jobs))
			}
			rep.JobErrors = append(rep.JobErrors, err)
			continue
		}
		if s.Cache != nil {
			if jr.CacheHit {
				rep.CacheHits++
			} else {
				rep.CacheMisses++
			}
		}
		rep.JobSeconds = append(rep.JobSeconds, jr.Exec.SimSeconds)
		rep.IngressSeconds = append(rep.IngressSeconds, jr.IngressSeconds)
		cumulative += jr.IngressSeconds + jr.Exec.SimSeconds
		rep.CumulativeSeconds = append(rep.CumulativeSeconds, cumulative)
		rep.TotalEnergyJoules += jr.Exec.EnergyJoules
		if rep.JobErrors != nil {
			rep.JobErrors = append(rep.JobErrors, nil)
		}
	}
	if s.ContinueOnError && rep.JobErrors == nil {
		rep.JobErrors = make([]error, len(rep.JobSeconds))
	}
	return rep, nil
}

// JobResult is the outcome of one job executed through RunJob.
type JobResult struct {
	// Exec is the engine result (makespan, energy, application output).
	Exec *engine.Result
	// IngressSeconds is the simulated ingress makespan charged to the job:
	// zero unless the session sets ChargeIngress, and zero on cache hits.
	IngressSeconds float64
	// CacheHit reports whether the placement came from the session's cache.
	CacheHit bool
}

// RunJob executes a single job against a prepared CCR pool: derive the
// application's shares, build (or fetch) the placement, charge ingress if the
// session does, and run. opts is merged with the session's collector — an
// explicit opts.Trace wins, otherwise the session's is used — so callers like
// the job service can attach per-job fault schedules while keeping session
// tracing. RunJob is safe for concurrent use when the session's fields are
// not mutated: the cache single-flights and everything else is read-only.
func (s *Session) RunJob(pool *core.Pool, job Job, opts engine.Options) (*JobResult, error) {
	part := s.Partitioner
	if part == nil {
		part = partition.NewHybrid()
	}
	ccr, ok := pool.Get(job.App.Name())
	if !ok {
		return nil, fmt.Errorf("workload: no CCR for %q", job.App.Name())
	}
	shares, err := ccr.SharesFor(s.Cluster)
	if err != nil {
		return nil, err
	}
	pl, hit, err := s.place(part, job, shares)
	if err != nil {
		return nil, err
	}
	ingress := 0.0
	if s.ChargeIngress && !hit {
		ir, err := engine.Ingress(pl, s.Cluster)
		if err != nil {
			return nil, err
		}
		ingress = ir.Makespan
	}
	if opts.Trace == nil {
		opts.Trace = s.Trace
	}
	if opts.Trace != nil {
		label := "miss"
		if hit {
			label = "hit"
		}
		opts.Trace.Event(trace.Event{Kind: trace.KindIngress, Machine: -1, Label: label, Seconds: ingress})
	}
	res, err := s.runJob(job.App, pl, opts)
	if err != nil {
		return nil, err
	}
	return &JobResult{Exec: res, IngressSeconds: ingress, CacheHit: hit}, nil
}

// place builds (or fetches) the job's finalized placement. Without a cache
// every job is a miss by definition — hit is false and partitioning runs
// directly, so uncached sessions behave exactly as before.
func (s *Session) place(part partition.Partitioner, job Job, shares []float64) (*engine.Placement, bool, error) {
	if s.Cache == nil {
		pl, err := partition.Apply(part, job.Graph, shares, job.Seed)
		return pl, false, err
	}
	return s.Cache.Place(part, job.Graph, shares, job.Seed)
}

// runJob executes one job, routing through the OptsRunner path when any
// engine option (collector, fault schedule, rebalancer) is set. Apps without
// the full-options entry point (the async Coloring, Triangle Count) run plain
// with identical results — they have no supersteps for options to act on.
func (s *Session) runJob(app apps.App, pl *engine.Placement, opts engine.Options) (*engine.Result, error) {
	if opts.Trace != nil || opts.Fault != nil || opts.Rebalancer != nil {
		if fr, ok := app.(apps.OptsRunner); ok {
			return fr.RunOpts(pl, s.Cluster, opts)
		}
	}
	return app.Run(pl, s.Cluster)
}

// profilingCost charges the proxy profiling flow: each machine group's
// representative runs every (application, proxy) set standalone; groups run
// in parallel, so the offline cost is the slowest group's total.
func profilingCost(cl *cluster.Cluster, pp *core.ProxyProfiler) (float64, error) {
	reps := cl.Representatives()
	worst := 0.0
	for _, idx := range reps {
		solo, err := cluster.New(cl.Machines[idx])
		if err != nil {
			return 0, err
		}
		total := 0.0
		for _, app := range apps.All() {
			for _, proxy := range pp.Proxies {
				res, err := app.Run(engine.SingleMachine(proxy), solo)
				if err != nil {
					return 0, err
				}
				total += res.SimSeconds
			}
		}
		if total > worst {
			worst = total
		}
	}
	return worst, nil
}

// Crossover returns the 1-based job index at which a's cumulative time
// (including profiling) drops below b's, or 0 if it never does. Reports of
// unequal length are compared over their common prefix only: jobs beyond the
// shorter report have no counterpart to beat, so a crossover that would first
// occur there reports 0 rather than comparing against missing data. In
// particular, when b is shorter than a, a's tail is ignored entirely.
func Crossover(a, b *Report) int {
	n := len(a.CumulativeSeconds)
	if len(b.CumulativeSeconds) < n {
		n = len(b.CumulativeSeconds)
	}
	for i := 0; i < n; i++ {
		if a.CumulativeSeconds[i] < b.CumulativeSeconds[i] {
			return i + 1
		}
	}
	return 0
}
