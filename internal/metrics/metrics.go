// Package metrics provides the summary statistics and table formatting the
// experiment harness (package exp), the benchmarks and cmd/bench share.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean; inputs must be positive.
// It returns 0 for empty input and NaN if any input is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Max returns the maximum, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Min returns the minimum, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}

// Table is a titled grid of cells used for every experiment's output, so the
// benchmark harness and cmd/bench print the same rows the paper's tables and
// figures report.
type Table struct {
	// Title heads the rendered table (e.g. "Fig 9a: Pagerank, Case 1").
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold the data cells.
	Rows [][]string
	// Notes are free-form lines appended after the grid.
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			} else if i >= len(width) {
				width = append(width, len(cell))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < len(width); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(width))
	for i, w := range width {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given decimal places.
func F(v float64, places int) string {
	return fmt.Sprintf("%.*f", places, v)
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}

// Speedup formats a ratio in the paper's "1.45x" style.
func Speedup(v float64) string {
	return fmt.Sprintf("%.2fx", v)
}

// Seconds formats a duration in seconds with adaptive precision.
func Seconds(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0fs", v)
	case v >= 1:
		return fmt.Sprintf("%.2fs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.0fµs", v*1e6)
	}
}
