package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("negative input should yield NaN")
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Max(xs) != 5 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty extrema should be 0")
	}
}

func TestGeoMeanLeqMeanProperty(t *testing.T) {
	// AM-GM inequality as a property test.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableString(t *testing.T) {
	tab := NewTable("Demo", "graph", "speedup")
	tab.AddRow("amazon", "1.45x")
	tab.AddRow("wiki", "1.10x")
	tab.AddNote("average %.2fx", 1.275)
	out := tab.String()
	for _, want := range []string{"== Demo ==", "graph", "speedup", "amazon", "1.45x", "# average 1.27x", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableAlignsWideCells(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("very-long-cell", "extra-column")
	out := tab.String()
	if !strings.Contains(out, "very-long-cell") || !strings.Contains(out, "extra-column") {
		t.Errorf("wide/extra cells lost:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("x", "name", "value")
	tab.AddRow("plain", "1")
	tab.AddRow("with,comma", "quo\"te")
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"with,comma","quo""te"` {
		t.Errorf("quoted row = %q", lines[2])
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Error(F(1.2345, 2))
	}
	if Pct(0.236) != "23.6%" {
		t.Error(Pct(0.236))
	}
	if Speedup(1.447) != "1.45x" {
		t.Error(Speedup(1.447))
	}
	cases := map[float64]string{
		150:    "150s",
		2.5:    "2.50s",
		0.0042: "4.20ms",
		1e-5:   "10µs",
	}
	for v, want := range cases {
		if got := Seconds(v); got != want {
			t.Errorf("Seconds(%v) = %q, want %q", v, got, want)
		}
	}
}
