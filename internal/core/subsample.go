package core

import (
	"fmt"
	"math"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/powerlaw"
)

// SubsampleProfiler is the alternative the paper dismisses in its
// introduction: profile machines with a *subsample of a natural graph*
// instead of synthetic proxies. "It is difficult to subsample from a natural
// graph to capture its underlying characteristics, as vertices and edges are
// not evenly distributed in it. Again, this may lead to inaccurate modeling
// of machines' capability." This estimator exists so the claim can be
// quantified — the AblationSubsample experiment compares its CCR error
// against the proxy profiler's.
type SubsampleProfiler struct {
	// Reference is the natural graph being sampled.
	Reference *graph.Graph
	// Fraction of edges to keep (e.g. 0.05 for a 5% sample).
	Fraction float64
	// Seed drives the sampling.
	Seed uint64

	sample *graph.Graph // cached
}

// NewSubsampleProfiler creates the estimator.
func NewSubsampleProfiler(reference *graph.Graph, fraction float64, seed uint64) *SubsampleProfiler {
	return &SubsampleProfiler{Reference: reference, Fraction: fraction, Seed: seed}
}

// Name implements Estimator.
func (sp *SubsampleProfiler) Name() string { return "subsample" }

// Estimate implements Estimator: measure the CCR on the edge sample.
func (sp *SubsampleProfiler) Estimate(cl *cluster.Cluster, app apps.App) (CCR, error) {
	if sp.Reference == nil {
		return CCR{}, fmt.Errorf("core: subsample profiler has no reference graph")
	}
	if sp.sample == nil {
		s, err := graph.SampleEdges(sp.Reference, sp.Fraction, sp.Seed)
		if err != nil {
			return CCR{}, err
		}
		sp.sample = s
	}
	return MeasureCCR(cl, app, sp.sample)
}

// --- Proxy-set coverage maintenance (Section III-A3's closing flow) ---

// CoveredAlphaRange returns the α span of the profiler's current proxy set.
func (pp *ProxyProfiler) CoveredAlphaRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, p := range pp.Proxies {
		if p.Alpha < lo {
			lo = p.Alpha
		}
		if p.Alpha > hi {
			hi = p.Alpha
		}
	}
	return lo, hi
}

// Covers reports whether alpha lies within the proxy set's range, with the
// tolerance the paper implies by spacing proxies ~0.15 apart.
func (pp *ProxyProfiler) Covers(alpha float64) bool {
	lo, hi := pp.CoveredAlphaRange()
	const slack = 0.1
	return alpha >= lo-slack && alpha <= hi+slack
}

// ClosestProxy returns the proxy whose α is nearest to alpha, for flows that
// pick "one corresponding CCR set" per input graph.
func (pp *ProxyProfiler) ClosestProxy(alpha float64) (*graph.Graph, error) {
	if len(pp.Proxies) == 0 {
		return nil, fmt.Errorf("core: proxy profiler has no proxy graphs")
	}
	best := pp.Proxies[0]
	for _, p := range pp.Proxies[1:] {
		if math.Abs(p.Alpha-alpha) < math.Abs(best.Alpha-alpha) {
			best = p
		}
	}
	return best, nil
}

// EnsureCoverage implements the paper's coverage-extension rule: "If its α
// is beyond the covered range, an additional synthetic graph can be
// generated and added to the current set." The new proxy matches the
// existing proxies' vertex count and is generated at the requested α. It
// returns true when a proxy was added.
func (pp *ProxyProfiler) EnsureCoverage(alpha float64, seed uint64) (bool, error) {
	if alpha <= 1 {
		return false, fmt.Errorf("core: alpha %v not a valid power-law exponent", alpha)
	}
	if len(pp.Proxies) == 0 {
		return false, fmt.Errorf("core: proxy profiler has no proxy graphs")
	}
	if pp.Covers(alpha) {
		return false, nil
	}
	vertices := int64(pp.Proxies[0].NumVertices)
	spec := gen.Spec{
		Name:     fmt.Sprintf("proxy-alpha%.2f", alpha),
		Vertices: vertices,
		Alpha:    alpha,
		Kind:     gen.KindPowerLaw,
	}
	g, err := gen.Generate(spec, seed)
	if err != nil {
		return false, err
	}
	pp.Proxies = append(pp.Proxies, g)
	return true, nil
}

// EstimateForGraph estimates the CCR using only the proxy closest in α to
// the given input graph (fitted from its |V| and |E|), the per-input variant
// of the pooled flow. It falls back to the fitted α being outside any proxy
// by extending coverage first.
func (pp *ProxyProfiler) EstimateForGraph(cl *cluster.Cluster, app apps.App, g *graph.Graph, seed uint64) (CCR, error) {
	alpha := g.Alpha
	if alpha == 0 {
		fitted, err := powerlaw.FitAlphaForGraph(int64(g.NumVertices), int64(g.NumEdges()))
		if err != nil {
			return CCR{}, err
		}
		alpha = fitted
	}
	if _, err := pp.EnsureCoverage(alpha, seed); err != nil {
		return CCR{}, err
	}
	proxy, err := pp.ClosestProxy(alpha)
	if err != nil {
		return CCR{}, err
	}
	return MeasureCCR(cl, app, proxy)
}
