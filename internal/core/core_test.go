package core

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

func mustCluster(t *testing.T, names ...string) *cluster.Cluster {
	t.Helper()
	machines := make([]cluster.Machine, len(names))
	for i, n := range names {
		m, ok := cluster.ByName(n)
		if !ok {
			t.Fatalf("unknown machine %q", n)
		}
		machines[i] = m
	}
	cl, err := cluster.New(machines...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestFromTimesEq1(t *testing.T) {
	c, err := FromTimes("pagerank", map[string]float64{"slow": 10, "fast": 5, "mid": 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratios["slow"] != 1 {
		t.Errorf("slowest ratio = %v, want 1", c.Ratios["slow"])
	}
	if c.Ratios["fast"] != 2 {
		t.Errorf("fast ratio = %v, want 2", c.Ratios["fast"])
	}
	if c.Ratios["mid"] != 1.25 {
		t.Errorf("mid ratio = %v, want 1.25", c.Ratios["mid"])
	}
}

func TestFromTimesErrors(t *testing.T) {
	if _, err := FromTimes("x", nil); err == nil {
		t.Error("empty times should error")
	}
	if _, err := FromTimes("x", map[string]float64{"a": 0}); err == nil {
		t.Error("zero time should error")
	}
	if _, err := FromTimes("x", map[string]float64{"a": -1}); err == nil {
		t.Error("negative time should error")
	}
	if _, err := FromTimes("x", map[string]float64{"a": math.NaN()}); err == nil {
		t.Error("NaN time should error")
	}
}

func TestSharesFor(t *testing.T) {
	cl := mustCluster(t, "c4.xlarge", "c4.2xlarge", "c4.xlarge")
	c := CCR{App: "pagerank", Ratios: map[string]float64{"c4.xlarge": 1, "c4.2xlarge": 2}}
	shares, err := c.SharesFor(cl)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-12 {
			t.Errorf("shares = %v, want %v", shares, want)
			break
		}
	}
	// Missing group errors.
	bad := CCR{App: "x", Ratios: map[string]float64{"c4.xlarge": 1}}
	if _, err := bad.SharesFor(cl); err == nil {
		t.Error("missing group should error")
	}
}

func TestCCRError(t *testing.T) {
	truth := CCR{Ratios: map[string]float64{"a": 1, "b": 2}}
	est := CCR{Ratios: map[string]float64{"a": 1, "b": 3}}
	got, err := est.Error(truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 { // (0 + 0.5)/2
		t.Errorf("error = %v, want 0.25", got)
	}
	if _, err := est.Error(CCR{}); err == nil {
		t.Error("empty truth should error")
	}
	if _, err := (CCR{Ratios: map[string]float64{"a": 1}}).Error(truth); err == nil {
		t.Error("missing group should error")
	}
}

func TestGroupsSorted(t *testing.T) {
	c := CCR{Ratios: map[string]float64{"z": 1, "a": 2, "m": 3}}
	gs := c.Groups()
	if len(gs) != 3 || gs[0] != "a" || gs[1] != "m" || gs[2] != "z" {
		t.Errorf("Groups() = %v", gs)
	}
}

func TestPoolBasics(t *testing.T) {
	p := NewPool()
	if p.Len() != 0 {
		t.Error("new pool not empty")
	}
	p.Put(CCR{App: "pagerank", Ratios: map[string]float64{"a": 1}})
	p.Put(CCR{App: "bfs", Ratios: map[string]float64{"a": 1}})
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
	if _, ok := p.Get("pagerank"); !ok {
		t.Error("pagerank missing")
	}
	if _, ok := p.Get("nope"); ok {
		t.Error("unexpected hit")
	}
	if got := p.Apps(); got[0] != "bfs" || got[1] != "pagerank" {
		t.Errorf("Apps() = %v", got)
	}
}

func TestPoolJSONRoundTrip(t *testing.T) {
	p := NewPool()
	p.Put(CCR{App: "pagerank", Ratios: map[string]float64{"c4.xlarge": 1, "c4.8xlarge": 5.5}})
	p.Put(CCR{App: "coloring", Ratios: map[string]float64{"c4.xlarge": 1, "c4.8xlarge": 4.2}})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Pool
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost entries: %d", back.Len())
	}
	c, _ := back.Get("pagerank")
	if c.Ratios["c4.8xlarge"] != 5.5 {
		t.Errorf("ratio lost: %v", c.Ratios)
	}
}

func TestUniformEstimator(t *testing.T) {
	cl := mustCluster(t, "c4.xlarge", "c4.8xlarge")
	c, err := Uniform{}.Estimate(cl, apps.NewPageRank())
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratios["c4.xlarge"] != 1 || c.Ratios["c4.8xlarge"] != 1 {
		t.Errorf("uniform ratios = %v", c.Ratios)
	}
}

func TestThreadCountEstimatorPaperExample(t *testing.T) {
	// Paper Section III-B: machine A with 4 HW threads vs B with 8 gives
	// 1:3 after reserving 2 threads each.
	cl := mustCluster(t, "c4.xlarge", "c4.2xlarge") // 4 and 8 HW threads
	c, err := NewThreadCount().Estimate(cl, apps.NewPageRank())
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratios["c4.xlarge"] != 1 || c.Ratios["c4.2xlarge"] != 3 {
		t.Errorf("thread-count ratios = %v, want 1:3", c.Ratios)
	}
}

func TestThreadCountClampsTinyMachines(t *testing.T) {
	tiny := cluster.LocalXeon("tiny", 1, 1.0)
	tiny.HWThreads = 2 // 2-2 = 0 -> clamp to 1
	big, _ := cluster.ByName("c4.2xlarge")
	cl, err := cluster.New(tiny, big)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewThreadCount().Estimate(cl, apps.NewPageRank())
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratios["tiny"] != 1 || c.Ratios["c4.2xlarge"] != 6 {
		t.Errorf("ratios = %v, want 1:6", c.Ratios)
	}
}

func TestMeasureCCRSlowestIsOne(t *testing.T) {
	cl := mustCluster(t, "c4.xlarge", "c4.8xlarge")
	g, err := gen.Generate(gen.Spec{Name: "m", Vertices: 2000, Edges: 16000, Kind: gen.KindPowerLaw}, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MeasureCCR(cl, apps.NewPageRank(), g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratios["c4.xlarge"] != 1 {
		t.Errorf("xlarge should be the slowest: %v", c.Ratios)
	}
	if c.Ratios["c4.8xlarge"] <= 1.5 {
		t.Errorf("8xlarge ratio %v suspiciously low", c.Ratios["c4.8xlarge"])
	}
}

func TestProxyProfilerBeatsThreadCount(t *testing.T) {
	// The headline claim (Section V-A): proxy-profiled CCRs track real-graph
	// CCRs far better than thread-count estimates. Measure both errors on an
	// emulated natural graph across a heterogeneous ladder.
	cl := mustCluster(t, "c4.xlarge", "c4.2xlarge", "c4.8xlarge")
	pp, err := NewProxyProfiler(1024, 7) // small proxies for test speed
	if err != nil {
		t.Fatal(err)
	}
	real, err := gen.Generate(gen.RealGraphs()[2].Scale(1024), 9) // social network
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.All() {
		truth, err := MeasureCCR(cl, app, real)
		if err != nil {
			t.Fatal(err)
		}
		proxyCCR, err := pp.Estimate(cl, app)
		if err != nil {
			t.Fatal(err)
		}
		threadsCCR, err := NewThreadCount().Estimate(cl, app)
		if err != nil {
			t.Fatal(err)
		}
		proxyErr, err := proxyCCR.Error(truth)
		if err != nil {
			t.Fatal(err)
		}
		threadErr, err := threadsCCR.Error(truth)
		if err != nil {
			t.Fatal(err)
		}
		if proxyErr >= threadErr {
			t.Errorf("%s: proxy error %.3f not better than thread-count %.3f",
				app.Name(), proxyErr, threadErr)
		}
		if proxyErr > 0.25 {
			t.Errorf("%s: proxy error %.3f too large", app.Name(), proxyErr)
		}
	}
}

func TestProxyProfilerErrors(t *testing.T) {
	cl := mustCluster(t, "c4.xlarge")
	empty := &ProxyProfiler{}
	if _, err := empty.Estimate(cl, apps.NewPageRank()); err == nil {
		t.Error("profiler without proxies should error")
	}
}

func TestBuildPoolAndRefresh(t *testing.T) {
	cl := mustCluster(t, "c4.xlarge", "c4.2xlarge")
	pool, err := BuildPool(cl, apps.All(), NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 4 {
		t.Fatalf("pool has %d apps, want 4", pool.Len())
	}
	// Refresh with the same cluster: nothing to do.
	n, err := pool.Refresh(cl, apps.All(), NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("refresh updated %d apps on unchanged cluster", n)
	}
	// Add a new machine type: every app needs a refresh.
	bigger := mustCluster(t, "c4.xlarge", "c4.2xlarge", "c4.8xlarge")
	n, err = pool.Refresh(bigger, apps.All(), NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("refresh updated %d apps, want 4", n)
	}
	c, _ := pool.Get("pagerank")
	if _, ok := c.Ratios["c4.8xlarge"]; !ok {
		t.Error("refresh did not add the new group")
	}
	// New applications get added too.
	extra := len(apps.WithExtensions()) - len(apps.All())
	n, err = pool.Refresh(bigger, apps.WithExtensions(), NewThreadCount())
	if err != nil {
		t.Fatal(err)
	}
	if n != extra {
		t.Errorf("refresh added %d apps, want %d (the extensions)", n, extra)
	}
}

func TestProxyCCRAppSpecific(t *testing.T) {
	// CCRs must differ by application on the same cluster (Fig 2's point).
	cl := mustCluster(t, "c4.xlarge", "c4.8xlarge")
	pp, err := NewProxyProfiler(256, 11)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pp.Estimate(cl, apps.NewPageRank())
	if err != nil {
		t.Fatal(err)
	}
	tc, err := pp.Estimate(cl, apps.NewTriangleCount())
	if err != nil {
		t.Fatal(err)
	}
	rPR := pr.Ratios["c4.8xlarge"]
	rTC := tc.Ratios["c4.8xlarge"]
	if math.Abs(rPR-rTC) < 0.2 {
		t.Errorf("pagerank (%.2f) and triangle count (%.2f) CCRs should differ", rPR, rTC)
	}
	if rTC <= rPR {
		t.Errorf("compute-bound TC (%.2f) should scale better than memory-bound PR (%.2f)", rTC, rPR)
	}
}

var _ = graph.VertexID(0)

func TestPoolFileRoundTrip(t *testing.T) {
	p := NewPool()
	p.Put(CCR{App: "pagerank", Ratios: map[string]float64{"a": 1, "b": 2.5}})
	path := t.TempDir() + "/pool.json"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPoolFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := back.Get("pagerank")
	if !ok || c.Ratios["b"] != 2.5 {
		t.Errorf("round trip lost data: %+v", c)
	}
	if _, err := LoadPoolFile(path + ".missing"); err == nil {
		t.Error("missing file should error")
	}
	bad := t.TempDir() + "/bad.json"
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadPoolFile(bad); err == nil {
		t.Error("corrupt file should error")
	}
}

func TestMeasureCCRParallelDeterministic(t *testing.T) {
	// The per-group profiling runs execute concurrently; the assembled CCR
	// must not depend on scheduling.
	cl := mustCluster(t, "c4.xlarge", "c4.2xlarge", "c4.4xlarge", "c4.8xlarge")
	g, err := gen.Generate(gen.Spec{Name: "par", Vertices: 3000, Edges: 24000, Kind: gen.KindPowerLaw}, 77)
	if err != nil {
		t.Fatal(err)
	}
	base, err := MeasureCCR(cl, apps.NewPageRank(), g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := MeasureCCR(cl, apps.NewPageRank(), g)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range base.Ratios {
			if again.Ratios[k] != v {
				t.Fatalf("run %d: ratio %q changed: %v vs %v", i, k, again.Ratios[k], v)
			}
		}
	}
}
