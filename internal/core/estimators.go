package core

import (
	"fmt"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

// Estimator produces an application's CCR for a cluster. Three estimators
// reproduce the paper's three systems under comparison:
//
//   - Uniform: the default PowerGraph assumption (all machines equal).
//   - ThreadCount: prior work (LeBeane et al. [5]), which reads hardware
//     configurations — capability proportional to hardware threads minus the
//     two reserved for communication.
//   - ProxyProfiler: this paper — profile the application on synthetic
//     power-law proxy graphs, one machine per group, and take the measured
//     speedups (Section III-B).
type Estimator interface {
	// Name identifies the estimator in experiment tables.
	Name() string
	// Estimate returns the CCR of app on cl.
	Estimate(cl *cluster.Cluster, app apps.App) (CCR, error)
}

// Uniform treats every machine group as equally capable: the default
// system's implicit assumption.
type Uniform struct{}

// Name implements Estimator.
func (Uniform) Name() string { return "default" }

// Estimate implements Estimator.
func (Uniform) Estimate(cl *cluster.Cluster, app apps.App) (CCR, error) {
	keys, _ := cl.Groups()
	c := CCR{App: app.Name(), Ratios: make(map[string]float64, len(keys))}
	for _, g := range keys {
		c.Ratios[g] = 1
	}
	return c, nil
}

// ThreadCount reproduces the prior work's estimate: a machine's graph
// processing capability is its number of computing threads (hardware threads
// with ReservedThreads subtracted for communication). The paper's running
// example: 4 threads vs 8 threads gives 1:3, i.e. (4-2):(8-2).
type ThreadCount struct {
	// ReservedThreads are subtracted from each machine's hardware threads
	// (default 2, per the paper).
	ReservedThreads int
}

// NewThreadCount returns the estimator with the paper's reservation of two
// communication threads.
func NewThreadCount() *ThreadCount { return &ThreadCount{ReservedThreads: 2} }

// Name implements Estimator.
func (*ThreadCount) Name() string { return "prior-work" }

// Estimate implements Estimator.
func (tc *ThreadCount) Estimate(cl *cluster.Cluster, app apps.App) (CCR, error) {
	keys, members := cl.Groups()
	capability := make(map[string]float64, len(keys))
	slowest := 0.0
	for _, g := range keys {
		m := cl.Machines[members[g][0]]
		threads := m.HWThreads - tc.ReservedThreads
		if threads < 1 {
			threads = 1
		}
		capability[g] = float64(threads)
	}
	// Normalize so the weakest group is 1, matching Eq 1's convention.
	for _, v := range capability {
		if slowest == 0 || v < slowest {
			slowest = v
		}
	}
	c := CCR{App: app.Name(), Ratios: make(map[string]float64, len(keys))}
	for g, v := range capability {
		c.Ratios[g] = v / slowest
	}
	return c, nil
}

// ProxyProfiler is the paper's methodology: execute the application on
// synthetic power-law proxy graphs, one representative machine per group in
// isolation (no communication interference), and derive the CCR from the
// measured times. Profiling is a one-time offline process per application;
// the generated proxies are reused across applications and clusters.
type ProxyProfiler struct {
	// Proxies are the profiling inputs, typically the three Table II
	// synthetic graphs (α = 1.95, 2.1, 2.3) at the chosen scale.
	Proxies []*graph.Graph
}

// NewProxyProfiler generates the paper's three proxy graphs at 1/scale of
// their Table II size ("generating three deployed proxies took 67 seconds"
// — a one-time cost).
func NewProxyProfiler(scale int, seed uint64) (*ProxyProfiler, error) {
	specs := gen.ProxyGraphs()
	proxies := make([]*graph.Graph, len(specs))
	for i, spec := range specs {
		g, err := gen.Generate(spec.Scale(scale), seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("core: generating proxy %q: %w", spec.Name, err)
		}
		proxies[i] = g
	}
	return &ProxyProfiler{Proxies: proxies}, nil
}

// Name implements Estimator.
func (*ProxyProfiler) Name() string { return "proxy" }

// Estimate implements Estimator. The per-group capability is averaged
// (geometric mean) over the proxy set, which covers the α range of natural
// graphs.
func (pp *ProxyProfiler) Estimate(cl *cluster.Cluster, app apps.App) (CCR, error) {
	if len(pp.Proxies) == 0 {
		return CCR{}, fmt.Errorf("core: proxy profiler has no proxy graphs")
	}
	keys, _ := cl.Groups()
	logSum := make(map[string]float64, len(keys))
	for _, proxy := range pp.Proxies {
		c, err := MeasureCCR(cl, app, proxy)
		if err != nil {
			return CCR{}, err
		}
		for g, r := range c.Ratios {
			logSum[g] += logOf(r)
		}
	}
	c := CCR{App: app.Name(), Ratios: make(map[string]float64, len(keys))}
	slowest := 0.0
	for g, s := range logSum {
		v := expOf(s / float64(len(pp.Proxies)))
		c.Ratios[g] = v
		if slowest == 0 || v < slowest {
			slowest = v
		}
	}
	for g := range c.Ratios {
		c.Ratios[g] /= slowest
	}
	return c, nil
}

// MeasureCCR measures the ground-truth CCR of app on cl using graph g: one
// standalone run per machine group, executed concurrently as in Section
// III-B ("each profiling set is executed on one machine from each group in
// parallel", without communication interference — the runs share nothing).
// With a natural graph as g this is the "real" CCR the paper validates
// proxies against in Fig 8.
func MeasureCCR(cl *cluster.Cluster, app apps.App, g *graph.Graph) (CCR, error) {
	reps := cl.Representatives()
	pl := engine.SingleMachine(g)

	type outcome struct {
		group string
		time  float64
		err   error
	}
	results := make(chan outcome, len(reps))
	for group, idx := range reps {
		go func(group string, m cluster.Machine) {
			solo, err := cluster.New(m)
			if err != nil {
				results <- outcome{group: group, err: err}
				return
			}
			res, err := app.Run(pl, solo)
			if err != nil {
				results <- outcome{group: group, err: fmt.Errorf("core: profiling %s on %s: %w", app.Name(), group, err)}
				return
			}
			results <- outcome{group: group, time: res.SimSeconds}
		}(group, cl.Machines[idx])
	}
	times := make(map[string]float64, len(reps))
	var firstErr error
	for range reps {
		o := <-results
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		times[o.group] = o.time
	}
	if firstErr != nil {
		return CCR{}, firstErr
	}
	return FromTimes(app.Name(), times)
}

// BuildPool profiles every application with the estimator and collects the
// CCRs into a pool (the offline flow of Fig 7a).
func BuildPool(cl *cluster.Cluster, applications []apps.App, est Estimator) (*Pool, error) {
	pool := NewPool()
	for _, app := range applications {
		c, err := est.Estimate(cl, app)
		if err != nil {
			return nil, err
		}
		pool.Put(c)
	}
	return pool, nil
}

// Refresh re-profiles only the machine groups missing from the pool's CCRs,
// supporting the paper's incremental flow: "re-profiling is only required if
// new machine types are deployed". It returns how many applications were
// updated.
func (p *Pool) Refresh(cl *cluster.Cluster, applications []apps.App, est Estimator) (int, error) {
	keys, _ := cl.Groups()
	updated := 0
	for _, app := range applications {
		c, ok := p.Get(app.Name())
		missing := !ok
		if ok {
			for _, g := range keys {
				if _, has := c.Ratios[g]; !has {
					missing = true
					break
				}
			}
		}
		if !missing {
			continue
		}
		fresh, err := est.Estimate(cl, app)
		if err != nil {
			return updated, err
		}
		p.Put(fresh)
		updated++
	}
	return updated, nil
}
