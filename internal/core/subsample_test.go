package core

import (
	"testing"

	"proxygraph/internal/apps"
	"proxygraph/internal/gen"
)

func TestSubsampleProfilerWorksButIsWorseThanProxies(t *testing.T) {
	// Quantify the paper's motivating claim: profiling with a subsample of a
	// natural graph estimates CCRs worse than synthetic proxies do.
	cl := mustCluster(t, "c4.xlarge", "c4.2xlarge", "c4.8xlarge")
	real, err := gen.Generate(gen.RealGraphs()[2].Scale(512), 9)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewProxyProfiler(512, 7)
	if err != nil {
		t.Fatal(err)
	}
	sub := NewSubsampleProfiler(real, 0.02, 7)

	var proxyTotal, subTotal float64
	for _, app := range apps.All() {
		truth, err := MeasureCCR(cl, app, real)
		if err != nil {
			t.Fatal(err)
		}
		proxyCCR, err := pp.Estimate(cl, app)
		if err != nil {
			t.Fatal(err)
		}
		subCCR, err := sub.Estimate(cl, app)
		if err != nil {
			t.Fatal(err)
		}
		proxyErr, err := proxyCCR.Error(truth)
		if err != nil {
			t.Fatal(err)
		}
		subErr, err := subCCR.Error(truth)
		if err != nil {
			t.Fatal(err)
		}
		proxyTotal += proxyErr
		subTotal += subErr
	}
	// The sparse subsample must lose on aggregate (the paper's Section I
	// argument; the full sweep lives in the abl-subsample experiment).
	if subTotal <= proxyTotal {
		t.Errorf("subsample mean error %.4f not worse than proxies %.4f", subTotal/4, proxyTotal/4)
	}
}

func TestSubsampleProfilerValidation(t *testing.T) {
	cl := mustCluster(t, "c4.xlarge")
	empty := &SubsampleProfiler{}
	if _, err := empty.Estimate(cl, apps.NewPageRank()); err == nil {
		t.Error("missing reference should error")
	}
	g, _ := gen.Generate(gen.Spec{Name: "s", Vertices: 100, Edges: 500}, 1)
	bad := NewSubsampleProfiler(g, 2.0, 1)
	if _, err := bad.Estimate(cl, apps.NewPageRank()); err == nil {
		t.Error("invalid fraction should error")
	}
}

func TestProxyCoverage(t *testing.T) {
	pp, err := NewProxyProfiler(2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := pp.CoveredAlphaRange()
	if lo != 1.95 || hi != 2.3 {
		t.Fatalf("covered range [%v, %v], want [1.95, 2.3]", lo, hi)
	}
	for _, alpha := range []float64{1.95, 2.1, 2.3, 1.9, 2.35} {
		if !pp.Covers(alpha) {
			t.Errorf("alpha %v should be covered", alpha)
		}
	}
	for _, alpha := range []float64{1.5, 3.0} {
		if pp.Covers(alpha) {
			t.Errorf("alpha %v should not be covered", alpha)
		}
	}
}

func TestClosestProxy(t *testing.T) {
	pp, err := NewProxyProfiler(2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{
		1.9:  1.95,
		2.05: 2.1,
		2.5:  2.3,
	}
	for alpha, want := range cases {
		p, err := pp.ClosestProxy(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if p.Alpha != want {
			t.Errorf("ClosestProxy(%v).Alpha = %v, want %v", alpha, p.Alpha, want)
		}
	}
	empty := &ProxyProfiler{}
	if _, err := empty.ClosestProxy(2); err == nil {
		t.Error("empty profiler should error")
	}
}

func TestEnsureCoverageExtendsProxySet(t *testing.T) {
	pp, err := NewProxyProfiler(2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Covered alpha: no new proxy.
	added, err := pp.EnsureCoverage(2.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if added || len(pp.Proxies) != 3 {
		t.Error("covered alpha should not grow the set")
	}
	// Out-of-range alpha: one new proxy at that alpha.
	added, err = pp.EnsureCoverage(2.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !added || len(pp.Proxies) != 4 {
		t.Fatalf("expected a 4th proxy, have %d", len(pp.Proxies))
	}
	if pp.Proxies[3].Alpha != 2.8 {
		t.Errorf("new proxy alpha = %v", pp.Proxies[3].Alpha)
	}
	if !pp.Covers(2.8) {
		t.Error("2.8 should now be covered")
	}
	// Invalid alphas error.
	if _, err := pp.EnsureCoverage(0.5, 5); err == nil {
		t.Error("alpha <= 1 should error")
	}
}

func TestEstimateForGraphPicksNearbyProxy(t *testing.T) {
	cl := mustCluster(t, "c4.xlarge", "c4.8xlarge")
	pp, err := NewProxyProfiler(2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A dense graph (alpha ~1.9): estimation must work and yield a sensible
	// ratio ordering.
	g, err := gen.Generate(gen.Spec{Name: "near", Vertices: 20000, Edges: 260000, Kind: gen.KindPowerLaw}, 11)
	if err != nil {
		t.Fatal(err)
	}
	ccr, err := pp.EstimateForGraph(cl, apps.NewPageRank(), g, 13)
	if err != nil {
		t.Fatal(err)
	}
	if ccr.Ratios["c4.8xlarge"] <= 1 {
		t.Errorf("8xlarge ratio %v should exceed 1", ccr.Ratios["c4.8xlarge"])
	}
	// A graph whose alpha is outside the covered band triggers extension.
	before := len(pp.Proxies)
	sparse, err := gen.Generate(gen.Spec{Name: "sparse", Vertices: 20000, Edges: 24000, Kind: gen.KindPowerLaw}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.EstimateForGraph(cl, apps.NewPageRank(), sparse, 17); err != nil {
		t.Fatal(err)
	}
	if len(pp.Proxies) <= before {
		t.Error("sparse graph should have extended the proxy set")
	}
}
