// Package core implements the paper's primary contribution: the Computation
// Capability Ratio (CCR) metric, the synthetic-proxy profiling methodology
// that measures it, and the estimators it is compared against.
//
// For application i and machine j, Eq 1 defines
//
//	CCR_{i,j} = max_j(t_{i,j}) / t_{i,j}
//
// where t is the application's execution time on machine j in isolation: the
// slowest machine has ratio 1, a machine twice as fast has ratio 2. The CCRs
// become edge shares for the heterogeneity-aware partitioners of package
// partition, so "heterogeneous machines can reach the synchronization
// barrier at the same time".
package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"proxygraph/internal/cluster"
	"proxygraph/internal/partition"
)

// CCR holds one application's capability ratios by machine group (machine
// type name). The slowest group has ratio 1.
type CCR struct {
	// App is the application the ratios were measured for.
	App string `json:"app"`
	// Ratios maps machine group name to capability ratio (>= 1 except for
	// numerical noise; the slowest group is 1).
	Ratios map[string]float64 `json:"ratios"`
}

// FromTimes builds a CCR from per-group execution times (Eq 1).
func FromTimes(app string, times map[string]float64) (CCR, error) {
	if len(times) == 0 {
		return CCR{}, fmt.Errorf("core: no execution times for %q", app)
	}
	slowest := 0.0
	for g, t := range times {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return CCR{}, fmt.Errorf("core: invalid time %v for group %q", t, g)
		}
		if t > slowest {
			slowest = t
		}
	}
	c := CCR{App: app, Ratios: make(map[string]float64, len(times))}
	for g, t := range times {
		c.Ratios[g] = slowest / t
	}
	return c, nil
}

// Groups returns the group names in sorted order.
func (c CCR) Groups() []string {
	gs := make([]string, 0, len(c.Ratios))
	for g := range c.Ratios {
		gs = append(gs, g)
	}
	sort.Strings(gs)
	return gs
}

// SharesFor converts the CCR into a normalized per-machine share vector for
// the given cluster: each machine's share is proportional to its group's
// ratio. This is the weight vector the heterogeneity-aware partitioners
// consume.
func (c CCR) SharesFor(cl *cluster.Cluster) ([]float64, error) {
	weights := make([]float64, cl.Size())
	for i, m := range cl.Machines {
		r, ok := c.Ratios[m.Name]
		if !ok {
			return nil, fmt.Errorf("core: CCR for %q has no ratio for machine group %q", c.App, m.Name)
		}
		weights[i] = r
	}
	return partition.NormalizeShares(weights)
}

// Error returns the mean relative error of this CCR against a ground-truth
// CCR over the groups of truth, the accuracy metric of Section V-A
// ("we reduce the heterogeneity estimation error from 108% to 8%").
func (c CCR) Error(truth CCR) (float64, error) {
	if len(truth.Ratios) == 0 {
		return 0, fmt.Errorf("core: empty ground truth")
	}
	sum, n := 0.0, 0
	for g, want := range truth.Ratios {
		got, ok := c.Ratios[g]
		if !ok {
			return 0, fmt.Errorf("core: estimate missing group %q", g)
		}
		if want == 0 {
			return 0, fmt.Errorf("core: zero ground-truth ratio for %q", g)
		}
		sum += math.Abs(got-want) / want
		n++
	}
	return sum / float64(n), nil
}

// Pool is the CCR pool of Fig 7a: the offline-profiled CCR of every reusable
// application, keyed by application name. Pools serialize to JSON so
// cmd/profiler can persist them ("each application's CCR will be collected
// into a CCR pool for future use").
type Pool struct {
	ccrs map[string]CCR
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{ccrs: map[string]CCR{}} }

// Put stores an application's CCR, replacing any previous entry.
func (p *Pool) Put(c CCR) { p.ccrs[c.App] = c }

// Get returns the CCR for the application.
func (p *Pool) Get(app string) (CCR, bool) {
	c, ok := p.ccrs[app]
	return c, ok
}

// Apps returns the pooled application names in sorted order.
func (p *Pool) Apps() []string {
	names := make([]string, 0, len(p.ccrs))
	for n := range p.ccrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of pooled applications.
func (p *Pool) Len() int { return len(p.ccrs) }

// MarshalJSON implements json.Marshaler.
func (p *Pool) MarshalJSON() ([]byte, error) {
	list := make([]CCR, 0, len(p.ccrs))
	for _, name := range p.Apps() {
		list = append(list, p.ccrs[name])
	}
	return json.Marshal(list)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Pool) UnmarshalJSON(data []byte) error {
	var list []CCR
	if err := json.Unmarshal(data, &list); err != nil {
		return err
	}
	p.ccrs = make(map[string]CCR, len(list))
	for _, c := range list {
		p.ccrs[c.App] = c
	}
	return nil
}

// logOf and expOf keep the geometric-mean helpers local without pulling math
// into the estimator file's import block twice.
func logOf(x float64) float64 { return math.Log(x) }
func expOf(x float64) float64 { return math.Exp(x) }

// SaveFile writes the pool as indented JSON to path.
func (p *Pool) SaveFile(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadPoolFile reads a pool written by SaveFile (or cmd/profiler).
func LoadPoolFile(path string) (*Pool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p := NewPool()
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("core: parsing pool %s: %w", path, err)
	}
	return p, nil
}
