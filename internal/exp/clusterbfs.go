package exp

import (
	"proxygraph/internal/apps"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
)

// ClusterBFSStudy probes the proxy model on bitset-state applications: the
// batched ClusterBFS family carries 264-byte packed vertex state and
// OR-accumulated words, a gather/apply profile none of the paper's scalar
// apps exhibit. For scalar BFS and each batch workload it compares the
// proxy-predicted CCR against the CCR measured on the real graph (plus the
// prior thread-count estimate), then runs the app under all three systems'
// shares and reports the resulting makespans — proxy-predicted guidance vs
// measured outcome for bitset-state apps. The note quantifies the batch
// amortization itself: one packed 64-lane pass vs 64 sequential single-source
// BFS runs of the same roots.
func (l *Lab) ClusterBFSStudy() (*metrics.Table, error) {
	cl := Case2Cluster()
	g, err := l.Graph(gen.RealGraphs()[0])
	if err != nil {
		return nil, err
	}
	pp, err := l.Profiler()
	if err != nil {
		return nil, err
	}
	systems, err := l.Systems()
	if err != nil {
		return nil, err
	}
	part := partition.NewHybrid()

	batch := apps.NewClusterBFS()
	studyApps := []apps.App{apps.NewBFS(), batch, apps.NewLandmarkOracle(), apps.NewKSeedReach()}

	t := metrics.NewTable("ClusterBFS study: proxy-predicted vs measured placement for bitset-state apps (Case 2)",
		"app", "proxy CCR err", "prior CCR err", "default", "prior-work", "proxy (ours)", "speedup")

	var packedSeconds float64
	for _, app := range studyApps {
		truth, err := core.MeasureCCR(cl, app, g)
		if err != nil {
			return nil, err
		}
		proxy, err := pp.Estimate(cl, app)
		if err != nil {
			return nil, err
		}
		prior, err := core.NewThreadCount().Estimate(cl, app)
		if err != nil {
			return nil, err
		}
		proxyErr, err := proxy.Error(truth)
		if err != nil {
			return nil, err
		}
		priorErr, err := prior.Error(truth)
		if err != nil {
			return nil, err
		}

		makespans := make([]float64, len(systems))
		for i, sys := range systems {
			ccr, err := sys.Est.Estimate(cl, app)
			if err != nil {
				return nil, err
			}
			shares, err := ccr.SharesFor(cl)
			if err != nil {
				return nil, err
			}
			pl, err := partition.Apply(part, g, shares, l.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			res, err := l.runApp(app, pl, cl)
			if err != nil {
				return nil, err
			}
			makespans[i] = res.SimSeconds
			if app.Name() == batch.Name() && sys.Name == "proxy (ours)" {
				packedSeconds = res.SimSeconds
			}
		}
		t.AddRow(app.Name(),
			metrics.Pct(proxyErr), metrics.Pct(priorErr),
			metrics.Seconds(makespans[0]), metrics.Seconds(makespans[1]), metrics.Seconds(makespans[2]),
			metrics.Speedup(makespans[0]/makespans[2]))
	}

	// Batch amortization: the same 64 roots, one at a time, under the proxy
	// system's scalar-BFS shares.
	ccr, err := pp.Estimate(cl, apps.NewBFS())
	if err != nil {
		return nil, err
	}
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		return nil, err
	}
	pl, err := partition.Apply(part, g, shares, l.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	var scalarSeconds float64
	for _, src := range batch.Sources {
		b := &apps.BFS{Source: src, MaxIters: 1000}
		res, err := b.RunOpts(pl, cl, engine.Options{})
		if err != nil {
			return nil, err
		}
		scalarSeconds += res.SimSeconds
	}
	t.AddNote("batch amortization: 64 scalar BFS runs %s vs one packed pass %s (%s)",
		metrics.Seconds(scalarSeconds), metrics.Seconds(packedSeconds),
		metrics.Speedup(scalarSeconds/packedSeconds))
	return t, nil
}
