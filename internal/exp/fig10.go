package exp

import (
	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
)

// Fig10a reproduces the paper's Fig 10a: performance and energy on the local
// cluster whose machines share a frequency range but differ in core count
// (Case 2). Each application runs on the four real-world graphs with the
// Hybrid partitioner (the paper's best mixed cut); speedups and energy
// savings are relative to the default (uniform) system and averaged
// geometrically across graphs.
func (l *Lab) Fig10a() (*metrics.Table, error) {
	return l.figure10("Fig 10a: local cluster, same frequency range (Case 2)", Case2Cluster())
}

// Fig10b reproduces Fig 10b: the same comparison on the Case 3 cluster whose
// little machine is downclocked to 1.8GHz (the "tiny ARM-like server"
// projection).
func (l *Lab) Fig10b() (*metrics.Table, error) {
	return l.figure10("Fig 10b: local cluster, different frequency ranges (Case 3)", Case3Cluster())
}

func (l *Lab) figure10(title string, cl *cluster.Cluster) (*metrics.Table, error) {
	systems, err := l.Systems()
	if err != nil {
		return nil, err
	}
	reals, err := l.realGraphs()
	if err != nil {
		return nil, err
	}
	part := partition.NewHybrid()

	t := metrics.NewTable(title,
		"app", "speedup(prior)", "speedup(ours)", "energy saved(prior)", "energy saved(ours)", "CCR(ours)")
	var sPriorAll, sOursAll, ePriorAll, eOursAll []float64
	for _, app := range apps.All() {
		var sPrior, sOurs, ePrior, eOurs []float64
		for _, g := range reals {
			var times, energies [3]float64
			for i, sys := range systems {
				res, err := l.runWithSystem(cl, sys, app, g, part)
				if err != nil {
					return nil, err
				}
				times[i] = res.SimSeconds
				energies[i] = res.EnergyJoules
			}
			sPrior = append(sPrior, times[0]/times[1])
			sOurs = append(sOurs, times[0]/times[2])
			ePrior = append(ePrior, 1-energies[1]/energies[0])
			eOurs = append(eOurs, 1-energies[2]/energies[0])
		}
		pool, err := l.Pool(cl, systems[2].Est)
		if err != nil {
			return nil, err
		}
		ccr, _ := pool.Get(app.Name())
		ratio := describeTwoMachineCCR(cl, ccr.Ratios)
		t.AddRow(app.Name(),
			metrics.Speedup(metrics.GeoMean(sPrior)),
			metrics.Speedup(metrics.GeoMean(sOurs)),
			metrics.Pct(metrics.Mean(ePrior)),
			metrics.Pct(metrics.Mean(eOurs)),
			ratio)
		sPriorAll = append(sPriorAll, sPrior...)
		sOursAll = append(sOursAll, sOurs...)
		ePriorAll = append(ePriorAll, ePrior...)
		eOursAll = append(eOursAll, eOurs...)
	}
	t.AddNote("averages over apps: prior %s / ours %s speedup; prior %s / ours %s energy saved (vs default, hybrid cut)",
		metrics.Speedup(metrics.GeoMean(sPriorAll)), metrics.Speedup(metrics.GeoMean(sOursAll)),
		metrics.Pct(metrics.Mean(ePriorAll)), metrics.Pct(metrics.Mean(eOursAll)))
	return t, nil
}

// describeTwoMachineCCR formats a two-group CCR as "1 : r" with the slow
// machine first; other sizes fall back to a blank.
func describeTwoMachineCCR(cl *cluster.Cluster, ratios map[string]float64) string {
	keys, _ := cl.Groups()
	if len(keys) != 2 {
		return ""
	}
	a, b := ratios[keys[0]], ratios[keys[1]]
	if a <= b {
		return "1 : " + metrics.F(b/a, 1)
	}
	return "1 : " + metrics.F(a/b, 1)
}
