package exp

import (
	"fmt"

	"proxygraph/internal/apps"
	"proxygraph/internal/core"
	"proxygraph/internal/dynamic"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
	"proxygraph/internal/workload"
)

// placementImbalance is the placement's worst per-machine edge overload
// relative to its share target (1.0 = perfectly proportional).
func placementImbalance(pl *engine.Placement, shares []float64) float64 {
	counts := make([]float64, len(shares))
	for _, p := range pl.EdgeOwner {
		counts[p]++
	}
	worst := 0.0
	for p := range counts {
		if r := counts[p] / float64(len(pl.EdgeOwner)) / shares[p]; r > worst {
			worst = r
		}
	}
	return worst
}

// EvolveStudy drives one graph through a chain of mutation batches and
// compares, per version, the full-rebuild pipeline (re-ingress from scratch,
// cold connected-components run) against the incremental one (placement
// amended through the cache's content-keyed PlaceEvolved, labels resumed from
// the previous version's output). Columns report the cache outcome, the
// proxy's CCR error on the evolved graph (the guidance stays accurate as the
// graph drifts), the imbalance of both placements, the superstep counts and
// makespans, and the end-to-end speedup of warm over cold. The note
// quantifies how a dynamic migrator absorbs the residual drift amendment
// leaves behind on the final version.
func (l *Lab) EvolveStudy() (*metrics.Table, error) {
	cl := Case2Cluster()
	base, err := l.Graph(gen.RealGraphs()[0])
	if err != nil {
		return nil, err
	}
	pp, err := l.Profiler()
	if err != nil {
		return nil, err
	}
	app := apps.NewConnectedComponents()
	proxy, err := pp.Estimate(cl, app)
	if err != nil {
		return nil, err
	}
	shares, err := proxy.SharesFor(cl)
	if err != nil {
		return nil, err
	}
	part := partition.NewHDRF()
	cache := workload.NewPlacementCache()
	seed := l.Cfg.Seed

	pl0, _, err := cache.Place(part, base, shares, seed)
	if err != nil {
		return nil, err
	}
	res0, err := app.RunOpts(pl0, cl, engine.Options{Trace: l.Cfg.Collector})
	if err != nil {
		return nil, err
	}
	prior := res0.Output.(apps.Components).Labels

	t := metrics.NewTable("Evolving graphs: amended placement + resumed CC vs full rebuild (Case 2, proxy shares)",
		"version", "churn", "cache", "proxy CCR err",
		"imb full", "imb amend", "steps cold→warm", "cold", "warm", "speedup")

	// Versions t1-t3 grow the graph (pure insertion churn), the regime where
	// incremental recomputation pays; t4 adds heavy deletions, where a
	// deletion inside a component resets the whole component's labels
	// (splits can strand too-small labels anywhere), so the warm run
	// degenerates to roughly a cold one by construction — the table shows
	// both regimes.
	inserts := len(base.Edges) / 20
	if inserts < 1 {
		inserts = 1
	}
	cur := base
	var lastResume *apps.ConnectedComponentsResume
	var lastPl *engine.Placement
	var lastWarm float64
	for k := 1; k <= 4; k++ {
		deletes := 0
		if k == 4 {
			deletes = inserts
		}
		d, err := gen.RandomDelta(cur, gen.DeltaSpec{
			Inserts: inserts, Deletes: deletes, Time: uint64(k),
		}, seed+uint64(k))
		if err != nil {
			return nil, err
		}
		evolved, err := d.Apply(cur)
		if err != nil {
			return nil, err
		}

		// Full rebuild: re-ingress from scratch, cold run.
		fullPl, err := partition.Apply(part, evolved, shares, seed)
		if err != nil {
			return nil, err
		}
		coldRes, err := app.RunOpts(fullPl, cl, engine.Options{Trace: l.Cfg.Collector})
		if err != nil {
			return nil, err
		}

		// Incremental: content-keyed amendment plus warm-started resume.
		amendPl, outcome, err := cache.PlaceEvolved(part, cur, d, evolved, shares, seed)
		if err != nil {
			return nil, err
		}
		resume := app.Resume(prior, d, evolved)
		warmRes, err := resume.RunOpts(amendPl, cl, engine.Options{Trace: l.Cfg.Collector})
		if err != nil {
			return nil, err
		}

		// The resumed labelling must agree with the cold one — CC's fixed
		// point is unique, so any divergence is a bug, not noise.
		coldOut := coldRes.Output.(apps.Components)
		warmOut := warmRes.Output.(apps.Components)
		if coldOut.Count != warmOut.Count || coldOut.Largest != warmOut.Largest {
			return nil, fmt.Errorf("exp: evolve version %d: resumed components %d/%d, cold %d/%d",
				k, warmOut.Count, warmOut.Largest, coldOut.Count, coldOut.Largest)
		}

		truth, err := core.MeasureCCR(cl, app, evolved)
		if err != nil {
			return nil, err
		}
		proxyErr, err := proxy.Error(truth)
		if err != nil {
			return nil, err
		}

		t.AddRow(
			fmt.Sprintf("t%d", k),
			fmt.Sprintf("+%d/-%d", len(d.Inserts), len(d.Deletes)),
			outcome.String(),
			metrics.Pct(proxyErr),
			metrics.F(placementImbalance(fullPl, shares), 3),
			metrics.F(placementImbalance(amendPl, shares), 3),
			fmt.Sprintf("%d→%d", coldRes.Supersteps, warmRes.Supersteps),
			metrics.Seconds(coldRes.SimSeconds),
			metrics.Seconds(warmRes.SimSeconds),
			metrics.Speedup(coldRes.SimSeconds/warmRes.SimSeconds),
		)

		prior = warmOut.Labels
		cur = evolved
		lastResume, lastPl, lastWarm = resume, amendPl, warmRes.SimSeconds
	}

	// Host ingress wall time is deliberately not reported: it would make the
	// golden-pinned table nondeterministic.
	st := cache.Stats()
	t.AddNote("cache outcomes across the chain: %d miss, %d amend, %d hit",
		st.Misses, st.Amends, st.Hits)

	// Residual drift absorption: replay the last warm run with a migrator
	// rebalancing after each superstep barrier.
	migRes, err := lastResume.RunOpts(lastPl, cl, engine.Options{
		Rebalancer: dynamic.NewMigrator(seed),
		Trace:      l.Cfg.Collector,
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("migrator on the amended placement (t4): %s → %s (%s)",
		metrics.Seconds(lastWarm), metrics.Seconds(migRes.SimSeconds),
		metrics.Speedup(lastWarm/migRes.SimSeconds))
	return t, nil
}
