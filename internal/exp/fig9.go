package exp

import (
	"fmt"

	"proxygraph/internal/apps"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
)

// Fig9 reproduces the paper's Fig 9 (a-d): Case 1 application runtimes on
// the Amazon cluster of one m4.2xlarge and one c4.2xlarge, for all four
// real-world graphs and all five partitioning algorithms, comparing the
// prior work's partitioning against CCR-guided partitioning. The two
// machines have identical thread counts, so the prior work degenerates to
// the uniform default — exactly the blind spot the paper exploits — and the
// reported speedup of "ours vs prior" equals "ours vs default".
//
// One table per application is returned, in the paper's order (9a PageRank,
// 9b Coloring, 9c Connected Component, 9d Triangle Count).
func (l *Lab) Fig9() ([]*metrics.Table, error) {
	cl := Case1Cluster()
	systems, err := l.Systems()
	if err != nil {
		return nil, err
	}
	prior, ours := systems[1], systems[2]
	reals, err := l.realGraphs()
	if err != nil {
		return nil, err
	}
	parts := partition.All()

	var tables []*metrics.Table
	labels := map[string]string{
		"pagerank":             "Fig 9a: Pagerank",
		"coloring":             "Fig 9b: Coloring",
		"connected_components": "Fig 9c: Connected Component",
		"triangle_count":       "Fig 9d: Triangle Count",
	}
	// Pre-warm the CCR pools so the parallel workers below only read them.
	for _, sys := range []System{prior, ours} {
		if _, err := l.Pool(cl, sys.Est); err != nil {
			return nil, err
		}
	}
	allApps := apps.All()
	type cell struct{ tPrior, tOurs float64 }
	cells := make([]cell, len(allApps)*len(reals)*len(parts))
	err = runParallel(len(cells), func(i int) error {
		app := allApps[i/(len(reals)*len(parts))]
		g := reals[i/len(parts)%len(reals)]
		part := parts[i%len(parts)]
		resPrior, err := l.runWithSystem(cl, prior, app, g, part)
		if err != nil {
			return err
		}
		resOurs, err := l.runWithSystem(cl, ours, app, g, part)
		if err != nil {
			return err
		}
		cells[i] = cell{resPrior.SimSeconds, resOurs.SimSeconds}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for a, app := range allApps {
		t := metrics.NewTable(labels[app.Name()]+" on Case 1 (m4.2xlarge + c4.2xlarge)",
			"graph", "partitioner", "t(prior)", "t(ours)", "speedup")
		var speedups []float64
		for gi, g := range reals {
			for pi, part := range parts {
				c := cells[(a*len(reals)+gi)*len(parts)+pi]
				s := c.tPrior / c.tOurs
				speedups = append(speedups, s)
				t.AddRow(g.Name, part.Name(),
					metrics.Seconds(c.tPrior),
					metrics.Seconds(c.tOurs),
					metrics.Speedup(s))
			}
		}
		t.AddNote("average speedup %s, max %s (prior work sees identical thread counts, so it equals the default here)",
			metrics.Speedup(metrics.Mean(speedups)), metrics.Speedup(metrics.Max(speedups)))
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig9Summary condenses Fig9 into one row per application (average and max
// speedup), the numbers quoted in the paper's Section V-B1.
func (l *Lab) Fig9Summary() (*metrics.Table, error) {
	tables, err := l.Fig9()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Fig 9 summary: Case 1 speedup of CCR-guided over prior work",
		"app", "avg speedup", "max speedup")
	for i, app := range apps.All() {
		var speedups []float64
		for _, row := range tables[i].Rows {
			var v float64
			if _, err := fmt.Sscanf(row[4], "%fx", &v); err == nil {
				speedups = append(speedups, v)
			}
		}
		t.AddRow(app.Name(),
			metrics.Speedup(metrics.Mean(speedups)),
			metrics.Speedup(metrics.Max(speedups)))
	}
	return t, nil
}
