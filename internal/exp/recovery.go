package exp

import (
	"proxygraph/internal/apps"
	"proxygraph/internal/engine"
	"proxygraph/internal/fault"
	"proxygraph/internal/gen"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
)

// RecoveryStudy sweeps the checkpoint interval against the expected makespan
// under a single machine crash on the c4 ladder: frequent checkpoints pay
// storage stalls on every run, sparse ones replay more lost supersteps after
// a failure. One row per interval; the fault-free column isolates the pure
// checkpoint overhead, the crash columns show recovery cost by the class of
// the machine lost (the ladder's smallest vs its largest), and the final
// column is the restart-from-scratch baseline the checkpoint policy must
// beat. PageRank runs a fixed 20 supersteps (tolerance 0) so every cell does
// identical useful work; the crash fires at the barrier ending step 10.
func (l *Lab) RecoveryStudy() (*metrics.Table, error) {
	cl := LadderC4()
	g, err := l.Graph(gen.RealGraphs()[2])
	if err != nil {
		return nil, err
	}
	// Proxy-guided shares: on a balanced placement losing any machine is a
	// genuine capacity loss. (A uniform split would make the ladder's smallest
	// machine the straggler, and crashing it would speed the run up.)
	pp, err := l.Profiler()
	if err != nil {
		return nil, err
	}
	pool, err := l.Pool(cl, pp)
	if err != nil {
		return nil, err
	}
	ccr, _ := pool.Get("pagerank")
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		return nil, err
	}
	pl, err := partition.Apply(partition.NewHybrid(), g, shares, l.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	pr := func() *apps.PageRank {
		p := apps.NewPageRank()
		p.Tolerance = 0
		p.MaxIters = 20
		return p
	}
	const crashStep = 10
	small, big := 0, len(cl.Machines)-1
	crash := func(machine int) *fault.Schedule {
		return &fault.Schedule{Events: []fault.Event{{Kind: fault.Crash, Step: crashStep, Machine: machine}}}
	}
	run := func(inj engine.FaultInjector, every int, policy engine.RecoveryPolicy) (*engine.Result, error) {
		return pr().RunOpts(pl, cl, engine.Options{
			Fault: &engine.FaultConfig{
				Injector:        inj,
				CheckpointEvery: every,
				Policy:          policy,
			},
			Trace: l.Cfg.Collector,
		})
	}

	base, err := l.runApp(pr(), pl, cl)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Checkpoint interval vs recovery cost (pagerank, c4 ladder, crash at step 10)",
		"interval", "fault-free", "ckpt overhead",
		"crash "+cl.Machines[small].Name, "crash "+cl.Machines[big].Name, "full restart")
	for _, every := range []int{1, 2, 4, 8} {
		clean, err := run(nil, every, engine.RecoverCheckpoint)
		if err != nil {
			return nil, err
		}
		crashSmall, err := run(crash(small), every, engine.RecoverCheckpoint)
		if err != nil {
			return nil, err
		}
		crashBig, err := run(crash(big), every, engine.RecoverCheckpoint)
		if err != nil {
			return nil, err
		}
		restart, err := run(crash(small), every, engine.RecoverRestart)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			metrics.F(float64(every), 0),
			metrics.Seconds(clean.SimSeconds),
			metrics.Pct(clean.SimSeconds/base.SimSeconds-1),
			metrics.Seconds(crashSmall.SimSeconds),
			metrics.Seconds(crashBig.SimSeconds),
			metrics.Seconds(restart.SimSeconds))
	}
	t.AddNote("fault-free baseline without checkpointing: %s"+
		"; survivors absorb the dead machine's edges, so losing the ladder's largest machine costs more than losing its smallest",
		metrics.Seconds(base.SimSeconds))
	return t, nil
}
