package exp

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"proxygraph/internal/gen"
)

// testLab runs experiments at a tiny scale so the suite stays fast; the
// benchmark harness exercises the default scale.
func testLab() *Lab {
	return NewLab(Config{Scale: 256, Seed: 42})
}

func parseSpeedup(t *testing.T, cell string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(cell, "%fx", &v); err != nil {
		t.Fatalf("cannot parse speedup cell %q: %v", cell, err)
	}
	return v
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(cell, "%f%%", &v); err != nil {
		t.Fatalf("cannot parse percent cell %q: %v", cell, err)
	}
	return v / 100
}

func TestTableI(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != 8 {
		t.Fatalf("Table I has %d machines, want 8", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"c4.xlarge", "c4.8xlarge", "m4.2xlarge", "r3.2xlarge", "XeonServerS", "$0.209/hour", "Virtual", "Physical"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTableII(t *testing.T) {
	lab := testLab()
	tab, err := lab.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("Table II has %d graphs, want 7", len(tab.Rows))
	}
	// Fitted alphas must land in the natural-graph band the paper reports.
	for _, row := range tab.Rows {
		var alpha float64
		if _, err := fmt.Sscanf(row[4], "%f", &alpha); err != nil {
			t.Fatalf("bad alpha cell %q", row[4])
		}
		if alpha < 1.6 || alpha > 3.2 {
			t.Errorf("%s: fitted alpha %v outside plausible band", row[0], alpha)
		}
	}
}

func TestFig2ShapesMatchPaper(t *testing.T) {
	lab := testLab()
	tab, err := lab.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig 2 has %d series, want 5", len(tab.Rows))
	}
	// Row 0 is the prior-work estimate: 1, 3, 7, 17.
	est := tab.Rows[0]
	wantEst := []float64{1, 3, 7, 17}
	for i, w := range wantEst {
		if got := parseSpeedup(t, est[i+1]); got != w {
			t.Errorf("estimate[%d] = %v, want %v", i, got, w)
		}
	}
	// Every application's real speedup is monotone along the ladder and far
	// below the 17x estimate at 8xlarge.
	for _, row := range tab.Rows[1:] {
		prev := 0.0
		for i := 1; i < len(row); i++ {
			v := parseSpeedup(t, row[i])
			if v < prev*0.98 {
				t.Errorf("%s: speedup not monotone: %v after %v", row[0], v, prev)
			}
			prev = v
		}
		last := parseSpeedup(t, row[len(row)-1])
		if last >= 12 {
			t.Errorf("%s: real 8xlarge speedup %v suspiciously close to the 17x estimate", row[0], last)
		}
		if last < 2 {
			t.Errorf("%s: real 8xlarge speedup %v too small", row[0], last)
		}
	}
}

func TestFig6PowerLawDecay(t *testing.T) {
	lab := testLab()
	tab, err := lab.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("Fig 6 has only %d degree buckets", len(tab.Rows))
	}
	// Counts must decay across log buckets (allowing the last sparse tail).
	var first, second int64
	fmt.Sscanf(tab.Rows[0][1], "%d", &first)
	fmt.Sscanf(tab.Rows[1][1], "%d", &second)
	if first <= second {
		t.Errorf("degree distribution not decaying: bucket0=%d bucket1=%d", first, second)
	}
}

func TestFig8Accuracy(t *testing.T) {
	lab := testLab()
	tabA, err := lab.Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := lab.Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		rows int
		note string
	}{
		{"8a", 12, tabA.Notes[0]},
		{"8b", 12, tabB.Notes[0]},
	} {
		var proxyAcc, proxyErr, priorErr float64
		if _, err := fmt.Sscanf(tc.note, "proxy accuracy %f%% (error %f%%); prior-work error %f%%",
			&proxyAcc, &proxyErr, &priorErr); err != nil {
			t.Fatalf("fig %s: cannot parse note %q: %v", tc.name, tc.note, err)
		}
		if proxyErr >= priorErr {
			t.Errorf("fig %s: proxy error %v%% not better than prior %v%%", tc.name, proxyErr, priorErr)
		}
		if proxyAcc < 80 {
			t.Errorf("fig %s: proxy accuracy %v%% below 80%%", tc.name, proxyAcc)
		}
	}
	if len(tabA.Rows) != 12 || len(tabB.Rows) != 12 {
		t.Errorf("fig8 tables have %d/%d rows, want 12 (4 apps x 3 series)", len(tabA.Rows), len(tabB.Rows))
	}
}

func TestFig9CaseOne(t *testing.T) {
	lab := testLab()
	tables, err := lab.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("Fig 9 has %d tables, want 4", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 20 { // 4 graphs x 5 partitioners
			t.Fatalf("%s: %d rows, want 20", tab.Title, len(tab.Rows))
		}
		var speedups []float64
		for _, row := range tab.Rows {
			speedups = append(speedups, parseSpeedup(t, row[4]))
		}
		mean := 0.0
		for _, s := range speedups {
			mean += s
		}
		mean /= float64(len(speedups))
		// CCR-guided must beat prior work on average on this cluster where
		// prior work is blind (Case 1's entire point).
		if mean < 1.01 {
			t.Errorf("%s: mean speedup %.3f, want > 1", tab.Title, mean)
		}
		if mean > 2 {
			t.Errorf("%s: mean speedup %.3f implausibly high", tab.Title, mean)
		}
	}
}

func TestFig10CasesTwoAndThree(t *testing.T) {
	lab := testLab()
	tabA, err := lab.Fig10a()
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := lab.Fig10b()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, rows [][]string) (oursMean float64) {
		if len(rows) != 4 {
			t.Fatalf("%s: %d rows, want 4 apps", name, len(rows))
		}
		var oursSum, priorSum float64
		for _, row := range rows {
			sPrior := parseSpeedup(t, row[1])
			sOurs := parseSpeedup(t, row[2])
			ePrior := parsePct(t, row[3])
			eOurs := parsePct(t, row[4])
			// Per-application, ours must stay competitive (the paper's
			// Case 3 notes Triangle Count lands close to prior work).
			if sOurs < sPrior*0.90 {
				t.Errorf("%s/%s: ours %.3f far below prior %.3f", name, row[0], sOurs, sPrior)
			}
			if eOurs < ePrior-0.05 {
				t.Errorf("%s/%s: ours energy %.3f far below prior %.3f", name, row[0], eOurs, ePrior)
			}
			oursSum += sOurs
			priorSum += sPrior
		}
		// On average over the four applications ours must win, the paper's
		// headline comparison.
		if oursSum < priorSum {
			t.Errorf("%s: mean ours %.3f below mean prior %.3f", name, oursSum/4, priorSum/4)
		}
		return oursSum / 4
	}
	meanA := check("fig10a", tabA.Rows)
	meanB := check("fig10b", tabB.Rows)
	if meanA <= 1.05 {
		t.Errorf("Case 2 mean speedup %.3f too small", meanA)
	}
	// Case 3's deeper heterogeneity should help at least as much as Case 2.
	if meanB < meanA*0.95 {
		t.Errorf("Case 3 speedup %.3f should be at least Case 2's %.3f", meanB, meanA)
	}
}

func TestFig11Pareto(t *testing.T) {
	lab := testLab()
	tab, err := lab.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 24 { // 6 machines x 4 apps
		t.Fatalf("Fig 11 has %d rows, want 24", len(tab.Rows))
	}
	// The 8xlarge should never be the cheapest option (the paper's "most
	// expensive machine for graph workloads" observation).
	cheapest := map[string]string{}
	costs := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		machine, app := row[0], row[1]
		var cost float64
		fmt.Sscanf(row[3], "%f", &cost)
		if costs[app] == nil {
			costs[app] = map[string]float64{}
		}
		costs[app][machine] = cost
	}
	for app, byMachine := range costs {
		best, bestCost := "", 0.0
		for m, c := range byMachine {
			if best == "" || c < bestCost {
				best, bestCost = m, c
			}
		}
		cheapest[app] = best
		if best == "c4.8xlarge" {
			t.Errorf("%s: 8xlarge is the cheapest per task, contradicting the paper's Pareto", app)
		}
	}
}

func TestAblations(t *testing.T) {
	lab := testLab()
	ht, err := lab.AblationHybridThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if len(ht.Rows) != 6 {
		t.Errorf("hybrid threshold ablation rows = %d", len(ht.Rows))
	}
	gg, err := lab.AblationGingerGamma()
	if err != nil {
		t.Fatal(err)
	}
	if len(gg.Rows) != 5 {
		t.Errorf("ginger gamma ablation rows = %d", len(gg.Rows))
	}
	ps, err := lab.AblationProxySet()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Rows) != 4 {
		t.Errorf("proxy set ablation rows = %d", len(ps.Rows))
	}
	si, err := lab.AblationScaleInvariance()
	if err != nil {
		t.Fatal(err)
	}
	if len(si.Rows) != 4 {
		t.Errorf("scale invariance ablation rows = %d", len(si.Rows))
	}
	// CCR must be stable across scales within 15%.
	var ratios []float64
	for _, row := range si.Rows {
		var v float64
		fmt.Sscanf(row[1], "%f", &v)
		ratios = append(ratios, v)
	}
	for _, r := range ratios[1:] {
		if r < ratios[0]*0.85 || r > ratios[0]*1.15 {
			t.Errorf("CCR not scale invariant: %v vs %v", r, ratios[0])
		}
	}
}

func TestLabGraphCaching(t *testing.T) {
	lab := testLab()
	a, err := lab.Graph(gen.RealGraphs()[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.Graph(gen.RealGraphs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("graph cache miss on identical spec")
	}
}

func TestSystemsOrder(t *testing.T) {
	lab := testLab()
	systems, err := lab.Systems()
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 3 || systems[0].Name != "default" || systems[1].Name != "prior-work" {
		t.Errorf("systems = %+v", systems)
	}
}

func TestReplicationStudy(t *testing.T) {
	lab := testLab()
	tab, err := lab.ReplicationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("replication study rows = %d, want 4 graphs", len(tab.Rows))
	}
	if len(tab.Columns) != 7 { // graph + 6 algorithms
		t.Fatalf("columns = %v", tab.Columns)
	}
	// Replication factors parse and sit in [1, 8].
	for _, row := range tab.Rows {
		var rnd float64
		fmt.Sscanf(row[1], "%f", &rnd)
		for c := 1; c < len(row); c++ {
			var v float64
			if _, err := fmt.Sscanf(row[c], "%f", &v); err != nil {
				t.Fatalf("bad cell %q", row[c])
			}
			if v < 1 || v > 8 {
				t.Errorf("%s/%s: replication %v out of range", row[0], tab.Columns[c], v)
			}
		}
	}
}

func TestAblationSubsample(t *testing.T) {
	lab := testLab()
	tab, err := lab.AblationSubsample()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	proxyMean := parsePct(t, tab.Rows[0][5])
	worstSubsample := 0.0
	for _, row := range tab.Rows[1:] {
		if v := parsePct(t, row[5]); v > worstSubsample {
			worstSubsample = v
		}
	}
	// The paper's motivation: at least the aggressive subsamples must be
	// clearly worse than the synthetic proxies.
	if worstSubsample <= proxyMean {
		t.Errorf("worst subsample error %.3f not worse than proxies %.3f", worstSubsample, proxyMean)
	}
}

func TestIngressStudy(t *testing.T) {
	lab := testLab()
	tab, err := lab.IngressStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestDynamicStudy(t *testing.T) {
	lab := testLab()
	tab, err := lab.DynamicStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Dynamic balancing must beat the default on the biggest graph, and the
	// static proxy ingress must be at least competitive with dynamic.
	for _, row := range tab.Rows {
		if row[0] != "social_network/"+fmt.Sprint(lab.Cfg.Scale) {
			continue
		}
		ratio := parseSpeedup(t, row[6])
		if ratio < 0.9 {
			t.Errorf("proxy static lost badly to dynamic: %v", ratio)
		}
	}
}

func parseSeconds(t *testing.T, cell string) float64 {
	t.Helper()
	var v float64
	var unit string
	if _, err := fmt.Sscanf(cell, "%f%s", &v, &unit); err != nil {
		t.Fatalf("cannot parse seconds cell %q: %v", cell, err)
	}
	switch unit {
	case "s":
		return v
	case "ms":
		return v * 1e-3
	case "µs":
		return v * 1e-6
	}
	t.Fatalf("unknown unit in seconds cell %q", cell)
	return 0
}

func TestRecoveryStudy(t *testing.T) {
	lab := testLab()
	tab, err := lab.RecoveryStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		clean := parseSeconds(t, row[1])
		crashSmall := parseSeconds(t, row[3])
		crashBig := parseSeconds(t, row[4])
		restart := parseSeconds(t, row[5])
		// A crash always costs more than the fault-free run at the same
		// checkpoint interval, and recovery from a checkpoint never loses to
		// restarting from scratch.
		if crashSmall <= clean || crashBig <= clean {
			t.Errorf("interval %s: crash runs (%v, %v) not above fault-free %v",
				row[0], crashSmall, crashBig, clean)
		}
		if restart < crashSmall {
			t.Errorf("interval %s: full restart %v beat checkpoint recovery %v",
				row[0], restart, crashSmall)
		}
	}
	// Checkpoint overhead shrinks as the interval grows.
	first := parseSeconds(t, tab.Rows[0][1])
	last := parseSeconds(t, tab.Rows[len(tab.Rows)-1][1])
	if last >= first {
		t.Errorf("fault-free makespan did not shrink with sparser checkpoints: %v vs %v", last, first)
	}
}

func TestAmortizationStudy(t *testing.T) {
	lab := testLab()
	tab, err := lab.AmortizationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// By the final checkpoint the proxy system must be ahead of the default.
	last := tab.Rows[len(tab.Rows)-1]
	parse := func(cell string) float64 {
		var v float64
		var unit string
		fmt.Sscanf(cell, "%f%s", &v, &unit)
		switch unit {
		case "ms":
			v /= 1e3
		case "µs":
			v /= 1e6
		}
		return v
	}
	if parse(last[3]) >= parse(last[1]) {
		t.Errorf("proxy cumulative %s not below default %s after 30 jobs", last[3], last[1])
	}
}

func TestFrequencySweep(t *testing.T) {
	lab := testLab()
	tab, err := lab.FrequencySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// PageRank's CCR must decrease monotonically as the little machine
	// speeds up, ending above the thread estimate at low frequency.
	parseRatio := func(cell string) float64 {
		var v float64
		fmt.Sscanf(cell, "1 : %f", &v)
		return v
	}
	prev := math.Inf(1)
	for _, row := range tab.Rows {
		v := parseRatio(row[1])
		if v > prev+1e-9 {
			t.Errorf("pagerank CCR not decreasing with frequency: %v after %v", v, prev)
		}
		prev = v
	}
	slowest := parseRatio(tab.Rows[0][1])
	estimate := parseRatio(tab.Rows[0][5])
	if slowest <= estimate {
		t.Errorf("at 1.2GHz the real CCR (%v) should exceed the frequency-blind estimate (%v)", slowest, estimate)
	}
}
