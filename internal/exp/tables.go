package exp

import (
	"fmt"
	"math"

	"proxygraph/internal/cluster"
	"proxygraph/internal/gen"
	"proxygraph/internal/metrics"
	"proxygraph/internal/powerlaw"
)

func logOf(x float64) float64 { return math.Log(x) }
func expOf(x float64) float64 { return math.Exp(x) }

// TableI reproduces the paper's Table I: the Amazon virtual machine and
// local physical machine configurations.
func TableI() *metrics.Table {
	t := metrics.NewTable("Table I: Amazon Virtual Machine and Local Physical Machine Configurations",
		"Name", "HW Threads", "Computing Threads", "Cost Rate", "Type")
	for _, m := range cluster.Catalog() {
		cost := "N/A"
		if m.CostPerHour > 0 {
			cost = fmt.Sprintf("$%.3f/hour", m.CostPerHour)
		}
		kind := "Physical"
		if m.Virtual {
			kind = "Virtual"
		}
		t.AddRow(m.Name, fmt.Sprint(m.HWThreads), fmt.Sprint(m.ComputeThreads), cost, kind)
	}
	return t
}

// TableII reproduces the paper's Table II: the real-world and synthetic
// graphs with vertex/edge counts, footprints and fitted α values. Graphs are
// generated at the lab's scale; the α column is fitted from the generated
// graph via the Newton procedure of Section III-A3, and the full-size
// published counts are shown alongside.
func (l *Lab) TableII() (*metrics.Table, error) {
	t := metrics.NewTable(fmt.Sprintf("Table II: graphs at scale 1/%d", l.Cfg.Scale),
		"Name", "Vertices", "Edges", "Footprint", "Alpha (fitted)", "Paper |V|", "Paper |E|")
	for _, spec := range gen.TableII() {
		g, err := l.Graph(spec)
		if err != nil {
			return nil, err
		}
		alpha, err := powerlaw.FitAlphaForGraph(int64(g.NumVertices), int64(g.NumEdges()))
		if err != nil {
			return nil, err
		}
		t.AddRow(
			spec.Name,
			fmt.Sprint(g.NumVertices),
			fmt.Sprint(g.NumEdges()),
			fmt.Sprintf("%.1fMB", float64(g.FootprintBytes())/(1<<20)),
			metrics.F(alpha, 2),
			fmt.Sprint(spec.Vertices),
			fmt.Sprint(spec.Edges),
		)
	}
	t.AddNote("synthetic proxies declare alpha 1.95 / 2.1 / 2.3 (paper Table II)")
	return t, nil
}
