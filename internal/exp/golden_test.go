package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files with the current output:
//
//	go test ./internal/exp -run TestGoldenTables -update
//
// Review the resulting testdata/*.golden diff like any other code change —
// these files pin the rendered experiment tables byte-for-byte, so an
// unexpected diff means an accounting, partitioning, or formatting change.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenTables locks the rendered output of a representative experiment
// slice (scaling ladder, cross-category cluster, fault recovery, and the new
// trace-derived execution profiles) against checked-in golden files. The whole
// pipeline under each table — generation, proxy profiling, partitioning, all
// three engines' accounting, and table formatting — is deterministic for a
// fixed (Scale, Seed), so any byte of drift is a real behaviour change.
func TestGoldenTables(t *testing.T) {
	lab := NewLab(Config{Scale: 1024, Seed: 42})
	cases := []struct {
		name string
		run  func() (interface{ String() string }, error)
	}{
		{"fig2", func() (interface{ String() string }, error) { return lab.Fig2() }},
		{"fig4", func() (interface{ String() string }, error) { return lab.Fig4() }},
		{"fig8a", func() (interface{ String() string }, error) { return lab.Fig8a() }},
		{"recovery", func() (interface{ String() string }, error) { return lab.RecoveryStudy() }},
		{"overload", func() (interface{ String() string }, error) { return lab.ServiceOverloadStudy() }},
		{"clusterbfs", func() (interface{ String() string }, error) { return lab.ClusterBFSStudy() }},
		{"evolve", func() (interface{ String() string }, error) { return lab.EvolveStudy() }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tab, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			got := tab.String()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from %s (rerun with -update if intended)\n--- want ---\n%s\n--- got ---\n%s",
					path, want, got)
			}
		})
	}
}
