package exp

import (
	"fmt"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/fault"
	"proxygraph/internal/metrics"
	"proxygraph/internal/rng"
	"proxygraph/internal/service"
	"proxygraph/internal/workload"
)

// ServiceOverloadStudy drives the multi-tenant job service through a bursty
// overload-and-recovery scenario on the deterministic replay driver: three
// tenants (gold/silver/bronze at priorities 2/1/0, with a simulated-time
// budget on silver) submit bursts of mixed jobs into deliberately small
// queues while a fault schedule (crash + straggler, checkpoint recovery) and
// flaky transient ingress errors push the retry path, all through a bounded
// shared placement cache. The replay's simulated clock makes every admission
// verdict, shed decision, retry backoff and queue wait a pure function of the
// seed — the table is byte-reproducible, which is what lets a golden file pin
// the whole control plane.
func (l *Lab) ServiceOverloadStudy() (*metrics.Table, error) {
	cl := Case2Cluster()
	seed := rng.Hash2(l.Cfg.Seed, 0x6f766c64 /* "ovld" */)
	jobs, err := workload.RandomJobs(30, l.Cfg.Scale, seed)
	if err != nil {
		return nil, err
	}
	sched := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, Step: 2, Machine: 0},
		{Kind: fault.Straggler, Step: 0, Machine: 1, Duration: 2, Factor: 0.5},
	}}
	if err := sched.Validate(len(cl.Machines)); err != nil {
		return nil, err
	}

	// Tenant mix: bronze floods first (6 of every 10 arrivals, opening each
	// burst), gold and silver submit two each at the tail — so gold bursts
	// land on queues bronze already filled and must shed their way in. Three
	// bursts of 10 land 50 simulated milliseconds apart, far faster than two
	// workers drain jobs that each take tens of milliseconds.
	tenantOf := func(i int) string {
		switch i % 10 {
		case 6, 8:
			return "gold"
		case 7, 9:
			return "silver"
		default:
			return "bronze"
		}
	}
	arrivals := make([]service.Arrival, len(jobs))
	for i, job := range jobs {
		a := service.Arrival{
			AtSeconds: float64(i/10) * 0.05,
			Tenant:    tenantOf(i),
			Job:       job,
		}
		// Bronze jobs carry a tight deadline: under overload the tail of the
		// burst waits past it and is shed rather than run late.
		if a.Tenant == "bronze" {
			a.DeadlineSeconds = 0.05
		}
		arrivals[i] = a
	}

	// Calibrate silver's budget from a probe run of its first job so the cap
	// tracks the lab's scale: roughly two completed jobs, then cut off.
	probeCfg := l.overloadConfig(cl, sched, nil)
	probeCfg.QueueBound = 4
	var probeJob workload.Job
	for i := range arrivals {
		if arrivals[i].Tenant == "silver" {
			probeJob = arrivals[i].Job
			break
		}
	}
	probe, err := service.Replay(probeCfg, []service.Arrival{{Tenant: "silver", Job: probeJob}})
	if err != nil {
		return nil, err
	}
	probeSpend := probe.Tenants[0].SpentSeconds
	budget := 2.5 * probeSpend

	cache := workload.NewBoundedPlacementCache(4, 0)
	cfg := l.overloadConfig(cl, sched, cache)
	cfg.Tenants = []service.Tenant{
		{Name: "gold", Priority: 2},
		{Name: "silver", Priority: 1, Budget: service.Budget{SimSeconds: budget}},
		{Name: "bronze", Priority: 0},
	}
	rep, err := service.Replay(cfg, arrivals)
	if err != nil {
		return nil, err
	}

	// Fold the replay into per-tenant rows.
	type row struct {
		submitted, admitted                int
		rejOverload, rejBudget, rejBreaker int
		shed, completed, failed, retries   int
	}
	rows := map[string]*row{}
	get := func(name string) *row {
		r, ok := rows[name]
		if !ok {
			r = &row{}
			rows[name] = r
		}
		return r
	}
	for i, a := range arrivals {
		r := get(a.Tenant)
		r.submitted++
		switch rep.Rejections[i] {
		case "overload":
			r.rejOverload++
		case "budget":
			r.rejBudget++
		case "breaker":
			r.rejBreaker++
		}
	}
	for _, js := range rep.Jobs {
		r := get(js.Tenant)
		r.admitted++
		switch js.State {
		case "done":
			r.completed++
			r.retries += js.Attempts
		case "failed":
			r.failed++
			if js.Attempts > 0 {
				r.retries += js.Attempts - 1
			}
		case "shed":
			r.shed++
		}
	}

	t := metrics.NewTable(
		"Service under overload: bursty multi-tenant arrivals, faults + flaky ingress (Case 2, replay)",
		"tenant", "priority", "submitted", "admitted", "rej overload", "rej budget",
		"shed", "completed", "failed", "retries")
	for _, tn := range cfg.Tenants {
		r := get(tn.Name)
		t.AddRow(tn.Name, fmt.Sprint(tn.Priority),
			fmt.Sprint(r.submitted), fmt.Sprint(r.admitted),
			fmt.Sprint(r.rejOverload), fmt.Sprint(r.rejBudget),
			fmt.Sprint(r.shed), fmt.Sprint(r.completed),
			fmt.Sprint(r.failed), fmt.Sprint(r.retries))
	}
	c := rep.Counters
	t.AddRow("total", "-",
		fmt.Sprint(c.Submitted), fmt.Sprint(c.Admitted),
		fmt.Sprint(c.RejectedOverload), fmt.Sprint(c.RejectedBudget),
		fmt.Sprint(c.ShedPriority+c.ShedDeadline), fmt.Sprint(c.Completed),
		fmt.Sprint(c.Failed), fmt.Sprint(c.Retries))

	t.AddNote("faults %s with checkpoint-every-2 recovery; flaky ingress fails up to 2 leading attempts/job, 3 retries",
		sched.String())
	t.AddNote("queue wait p50 %s, p99 %s (simulated); drained at %s",
		metrics.Seconds(rep.QueueWaitP50), metrics.Seconds(rep.QueueWaitP99), metrics.Seconds(rep.SimSeconds))
	t.AddNote("placement cache (4 entries): %d hits, %d misses, %d evictions; silver budget %s (2.5x probe job)",
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Evictions, metrics.Seconds(budget))
	t.AddNote("shed column: priority eviction (%d) + expired bronze deadlines (%d)",
		c.ShedPriority, c.ShedDeadline)
	return t, nil
}

// overloadConfig is the shared service shape of the overload study: small
// queues, two simulated workers, retries over flaky ingress, fault schedule
// with checkpoint recovery.
func (l *Lab) overloadConfig(cl *cluster.Cluster, sched *fault.Schedule, cache *workload.PlacementCache) service.Config {
	return service.Config{
		Cluster:       cl,
		Cache:         cache,
		ChargeIngress: true,
		Fault: &engine.FaultConfig{
			Injector:        sched,
			CheckpointEvery: 2,
			Policy:          engine.RecoverCheckpoint,
		},
		Flaky:            &service.Flaky{Seed: rng.Hash2(l.Cfg.Seed, 0x666c6b), MaxFailures: 2},
		MaxRetries:       3,
		QueueBound:       6,
		TenantQueueBound: 4,
		BaseBackoff:      0.05,
		MaxBackoff:       0.5,
		BreakerThreshold: 4,
		BreakerCooldown:  2,
		Workers:          2,
		Seed:             rng.Hash2(l.Cfg.Seed, 0x73767263 /* "svrc" */),
	}
}
