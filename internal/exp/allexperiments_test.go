package exp

import (
	"strings"
	"testing"

	"proxygraph/internal/metrics"
)

// TestEveryExperimentProducesWellFormedTables runs the complete experiment
// catalog once at a tiny scale and checks structural invariants shared by
// all outputs: a title, a header, at least one row, rectangular-enough rows,
// and CSV that round-trips the row count. This is the integration net under
// cmd/bench and the benchmark harness.
func TestEveryExperimentProducesWellFormedTables(t *testing.T) {
	lab := NewLab(Config{Scale: 1024, Seed: 42})
	catalog := []struct {
		name string
		run  func() ([]*metrics.Table, error)
	}{
		{"table1", func() ([]*metrics.Table, error) { return []*metrics.Table{TableI()}, nil }},
		{"table2", wrap(lab.TableII)},
		{"fig2", wrap(lab.Fig2)},
		{"fig4", wrap(lab.Fig4)},
		{"fig6", wrap(lab.Fig6)},
		{"fig8a", wrap(lab.Fig8a)},
		{"fig8b", wrap(lab.Fig8b)},
		{"fig9", lab.Fig9},
		{"fig9summary", wrap(lab.Fig9Summary)},
		{"fig10a", wrap(lab.Fig10a)},
		{"fig10b", wrap(lab.Fig10b)},
		{"fig11", wrap(lab.Fig11)},
		{"replication", wrap(lab.ReplicationStudy)},
		{"ingress", wrap(lab.IngressStudy)},
		{"dynamic", wrap(lab.DynamicStudy)},
		{"amortization", wrap(lab.AmortizationStudy)},
		{"session", wrap(lab.SessionThroughputStudy)},
		{"recovery", wrap(lab.RecoveryStudy)},
		{"freqsweep", wrap(lab.FrequencySweep)},
		{"abl-hybrid", wrap(lab.AblationHybridThreshold)},
		{"abl-ginger", wrap(lab.AblationGingerGamma)},
		{"abl-proxyset", wrap(lab.AblationProxySet)},
		{"abl-scale", wrap(lab.AblationScaleInvariance)},
		{"abl-subsample", wrap(lab.AblationSubsample)},
	}
	for _, exp := range catalog {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			tables, err := exp.run()
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if tab.Title == "" {
					t.Error("table has no title")
				}
				if len(tab.Columns) < 2 {
					t.Errorf("table %q has %d columns", tab.Title, len(tab.Columns))
				}
				if len(tab.Rows) == 0 {
					t.Errorf("table %q has no rows", tab.Title)
				}
				for i, row := range tab.Rows {
					if len(row) > len(tab.Columns) {
						t.Errorf("table %q row %d wider than header", tab.Title, i)
					}
					for j, cell := range row {
						if strings.TrimSpace(cell) == "" {
							t.Errorf("table %q cell (%d,%d) empty", tab.Title, i, j)
						}
					}
				}
				csv := tab.CSV()
				lines := strings.Count(strings.TrimSpace(csv), "\n") + 1
				if lines != len(tab.Rows)+1 {
					t.Errorf("table %q CSV has %d lines, want %d", tab.Title, lines, len(tab.Rows)+1)
				}
				text := tab.String()
				if !strings.Contains(text, tab.Title) {
					t.Errorf("rendering lost the title of %q", tab.Title)
				}
			}
		})
	}
}

func wrap(f func() (*metrics.Table, error)) func() ([]*metrics.Table, error) {
	return func() ([]*metrics.Table, error) {
		tab, err := f()
		if err != nil {
			return nil, err
		}
		return []*metrics.Table{tab}, nil
	}
}
