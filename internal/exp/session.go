package exp

import (
	"fmt"

	"proxygraph/internal/core"
	"proxygraph/internal/metrics"
	"proxygraph/internal/workload"
)

// SessionThroughputStudy measures the placement cache's effect on session
// throughput: the same 24-job stream runs on Case 2 with ingress charged to
// the cumulative clock, once rebuilding every placement and once through a
// content-keyed cache. Jobs reuse a handful of stored graphs (RandomJobs
// derives one ingress seed per graph), so repeated (graph, partitioner,
// shares, seed) combinations skip partitioning and finalization — the
// Section III-B amortization argument applied to ingress itself. Execution
// times are bit-identical between the two runs; only the ingress column
// (and therefore the total) moves.
func (l *Lab) SessionThroughputStudy() (*metrics.Table, error) {
	cl := Case2Cluster()
	jobs, err := workload.RandomJobs(24, l.Cfg.Scale, l.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	est := core.NewThreadCount()

	cold := &workload.Session{Cluster: cl, ChargeIngress: true}
	coldRep, err := cold.Run(jobs, est)
	if err != nil {
		return nil, err
	}
	cache := workload.NewPlacementCache()
	cached := &workload.Session{Cluster: cl, ChargeIngress: true, Cache: cache}
	cachedRep, err := cached.Run(jobs, est)
	if err != nil {
		return nil, err
	}

	sum := func(xs []float64) float64 {
		total := 0.0
		for _, x := range xs {
			total += x
		}
		return total
	}
	t := metrics.NewTable("Session throughput: placement cache on Case 2 (24 mixed jobs, ingress charged)",
		"session", "cache hits", "cache misses", "ingress (sim)", "execution (sim)", "total", "speedup")
	for _, row := range []struct {
		name         string
		rep          *workload.Report
		hits, misses string
	}{
		{"rebuild every job", coldRep, "-", "-"},
		{"placement cache", cachedRep, fmt.Sprint(cachedRep.CacheHits), fmt.Sprint(cachedRep.CacheMisses)},
	} {
		t.AddRow(row.name,
			row.hits,
			row.misses,
			metrics.Seconds(sum(row.rep.IngressSeconds)),
			metrics.Seconds(sum(row.rep.JobSeconds)),
			metrics.Seconds(row.rep.Total()),
			metrics.Speedup(coldRep.Total()/row.rep.Total()))
	}
	st := cache.Stats()
	t.AddNote("cache served %d of %d jobs; execution accounting is bit-identical across rows — only ingress amortizes",
		st.Hits, len(jobs))
	return t, nil
}
