package exp

import (
	"proxygraph/internal/apps"
	"proxygraph/internal/core"
	"proxygraph/internal/gen"
	"proxygraph/internal/metrics"
)

// Fig2 reproduces the paper's Fig 2: "Speedup estimated by prior work vs
// real speedup". Each application runs standalone on the c4 ladder with the
// social-network graph; the real speedups are compared against the prior
// work's thread-count estimate (the dotted line: 1x, 3x, 7x, 17x).
func (l *Lab) Fig2() (*metrics.Table, error) {
	cl := LadderC4()
	g, err := l.Graph(gen.RealGraphs()[2]) // social_network
	if err != nil {
		return nil, err
	}
	groups, _ := cl.Groups()
	// Order the ladder by size rather than lexicographically.
	order := []string{"c4.xlarge", "c4.2xlarge", "c4.4xlarge", "c4.8xlarge"}
	cols := append([]string{"series"}, order...)
	t := metrics.NewTable("Fig 2: speedup estimated by prior work vs real speedup (social_network)", cols...)

	est, err := core.NewThreadCount().Estimate(cl, apps.NewPageRank())
	if err != nil {
		return nil, err
	}
	row := []string{"estimate (prior work)"}
	for _, m := range order {
		row = append(row, metrics.Speedup(est.Ratios[m]))
	}
	t.AddRow(row...)

	for _, app := range apps.All() {
		ccr, err := core.MeasureCCR(cl, app, g)
		if err != nil {
			return nil, err
		}
		row := []string{app.Name()}
		for _, m := range order {
			row = append(row, metrics.Speedup(ccr.Ratios[m]))
		}
		t.AddRow(row...)
	}
	_ = groups
	t.AddNote("real speedups are relative to c4.xlarge (Eq 1); prior work reads (HW threads - 2)")
	return t, nil
}

// Fig6 reproduces the paper's Fig 6: a natural graph's degree distribution
// following a power law. The paper plots the Friendster social network; we
// plot the densest synthetic proxy (α = 1.95) in log-spaced degree buckets,
// demonstrating the linear log-log decay.
func (l *Lab) Fig6() (*metrics.Table, error) {
	// Natural density (no edge-count target): at reduced scale the truncated
	// support shifts the attainable mean degree, and rescaling degrees to a
	// target would distort exactly the low-degree buckets this figure is
	// about.
	spec := gen.ProxyGraphs()[0].Scale(l.Cfg.Scale)
	spec.Edges = 0
	spec.Name = "friendster-like"
	g, err := gen.Generate(spec, l.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	deg, count := degreeHistogram(g)
	t := metrics.NewTable("Fig 6: power-law degree distribution ("+g.Name+")",
		"degree bucket", "vertices")
	// Log-spaced buckets: [1,2), [2,4), [4,8), ...
	bucketLo := 1
	idx := 0
	for bucketLo <= maxInt(deg) {
		hi := bucketLo * 2
		total := int64(0)
		for idx < len(deg) && deg[idx] < hi {
			total += count[idx]
			idx++
		}
		if total > 0 {
			t.AddRow(formatRange(bucketLo, hi-1), formatCount(total))
		}
		bucketLo = hi
	}
	t.AddNote("alpha (declared) = %.2f; counts decay linearly in log-log space", g.Alpha)
	return t, nil
}
