// Package exp reproduces every table and figure of the paper's evaluation
// (Section V) plus the ablations DESIGN.md calls out. Each experiment is a
// method on Lab returning metrics.Tables, so the root benchmarks and
// cmd/bench print identical output.
//
// Experiments run at 1/Config.Scale of the paper's Table II graph sizes.
// CCRs and speedups are ratios, and the paper itself notes that graph size
// "only affects the magnitude of execution time" (§II-A), so the shape of
// every result is preserved; cmd/bench -scale 1 reproduces full-size runs.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
	"proxygraph/internal/trace"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Scale divides every Table II graph size (default 64).
	Scale int
	// Seed drives all generation and hashing.
	Seed uint64
	// Collector, when non-nil, receives structured execution events from
	// every engine run an experiment performs through an OptsRunner app
	// (cmd/bench's -trace-out/-metrics-out plumb a recorder through here).
	Collector trace.Collector
}

// DefaultConfig returns the benchmark-friendly configuration.
func DefaultConfig() Config { return Config{Scale: 64, Seed: 42} }

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Lab owns the cached graphs, proxies and CCR pools an experiment session
// needs, mirroring the paper's flow where proxy generation and profiling are
// one-time offline steps whose outputs are reused.
type Lab struct {
	Cfg Config

	mu       sync.Mutex
	graphs   map[string]*graph.Graph
	profiler *core.ProxyProfiler
	pools    map[string]*core.Pool
}

// NewLab creates a Lab for the given configuration.
func NewLab(cfg Config) *Lab {
	cfg.defaults()
	return &Lab{
		Cfg:    cfg,
		graphs: map[string]*graph.Graph{},
		pools:  map[string]*core.Pool{},
	}
}

// Graph returns the generated (and cached) graph for a Table II spec at the
// lab's scale.
func (l *Lab) Graph(spec gen.Spec) (*graph.Graph, error) {
	scaled := spec.Scale(l.Cfg.Scale)
	l.mu.Lock()
	defer l.mu.Unlock()
	if g, ok := l.graphs[scaled.Name]; ok {
		return g, nil
	}
	g, err := gen.Generate(scaled, l.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	l.graphs[scaled.Name] = g
	return g, nil
}

// Profiler returns the lab's shared proxy profiler (three Table II proxies
// at the lab's scale), generating it on first use.
func (l *Lab) Profiler() (*core.ProxyProfiler, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.profiler == nil {
		pp, err := core.NewProxyProfiler(l.Cfg.Scale, l.Cfg.Seed+1000)
		if err != nil {
			return nil, err
		}
		l.profiler = pp
	}
	return l.profiler, nil
}

// Pool returns the cached CCR pool for (cluster groups, estimator),
// profiling on first use.
func (l *Lab) Pool(cl *cluster.Cluster, est core.Estimator) (*core.Pool, error) {
	keys, _ := cl.Groups()
	key := est.Name() + "|" + strings.Join(keys, ",")
	l.mu.Lock()
	if p, ok := l.pools[key]; ok {
		l.mu.Unlock()
		return p, nil
	}
	l.mu.Unlock()
	pool, err := core.BuildPool(cl, apps.All(), est)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.pools[key] = pool
	l.mu.Unlock()
	return pool, nil
}

// System is one of the three partitioning-guidance systems the paper
// compares: the default uniform framework, the prior thread-count work, and
// the proxy-guided contribution.
type System struct {
	Name string
	Est  core.Estimator
}

// Systems returns the paper's three systems. The proxy system shares the
// lab's profiler.
func (l *Lab) Systems() ([]System, error) {
	pp, err := l.Profiler()
	if err != nil {
		return nil, err
	}
	return []System{
		{Name: "default", Est: core.Uniform{}},
		{Name: "prior-work", Est: core.NewThreadCount()},
		{Name: "proxy (ours)", Est: pp},
	}, nil
}

// --- Cluster constructors for the paper's testbeds ---

func mustByName(name string) cluster.Machine {
	m, ok := cluster.ByName(name)
	if !ok {
		panic(fmt.Sprintf("exp: machine %q missing from catalog", name))
	}
	return m
}

// LadderC4 is the compute-optimized scaling ladder of Fig 2 / Fig 8a.
func LadderC4() *cluster.Cluster {
	cl, err := cluster.New(
		mustByName("c4.xlarge"),
		mustByName("c4.2xlarge"),
		mustByName("c4.4xlarge"),
		mustByName("c4.8xlarge"),
	)
	if err != nil {
		panic(err)
	}
	return cl
}

// Cross2xlarge is the same-thread-count cross-category cluster of Fig 8b.
func Cross2xlarge() *cluster.Cluster {
	cl, err := cluster.New(
		mustByName("m4.2xlarge"),
		mustByName("c4.2xlarge"),
		mustByName("r3.2xlarge"),
	)
	if err != nil {
		panic(err)
	}
	return cl
}

// Case1Cluster is the paper's Case 1: m4.2xlarge + c4.2xlarge, identical
// thread counts — invisible heterogeneity to the prior work.
func Case1Cluster() *cluster.Cluster {
	cl, err := cluster.New(mustByName("m4.2xlarge"), mustByName("c4.2xlarge"))
	if err != nil {
		panic(err)
	}
	return cl
}

// Case2Cluster is Case 2: local servers with 4 and 12 compute threads at the
// same frequency range.
func Case2Cluster() *cluster.Cluster {
	cl, err := cluster.New(
		cluster.LocalXeon("xeon-4c", 4, 2.5),
		cluster.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		panic(err)
	}
	return cl
}

// Case3Cluster is Case 3: the 12-core machine at 2.5GHz and the little
// 4-core machine downclocked to 1.8GHz, emulating tiny ARM-like servers.
func Case3Cluster() *cluster.Cluster {
	little := cluster.LocalXeon("xeon-4c", 4, 2.5).WithFrequency(1.8)
	cl, err := cluster.New(little, cluster.LocalXeon("xeon-12c", 12, 2.5))
	if err != nil {
		panic(err)
	}
	return cl
}

// --- Shared run helpers ---

// runWithSystem partitions g for cl guided by the system's CCR estimate and
// executes the app, returning the result.
func (l *Lab) runWithSystem(cl *cluster.Cluster, sys System, app apps.App,
	g *graph.Graph, part partition.Partitioner) (*engine.Result, error) {
	pool, err := l.Pool(cl, sys.Est)
	if err != nil {
		return nil, err
	}
	ccr, ok := pool.Get(app.Name())
	if !ok {
		return nil, fmt.Errorf("exp: no pooled CCR for %q under %s", app.Name(), sys.Name)
	}
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		return nil, err
	}
	pl, err := partition.Apply(part, g, shares, l.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	return l.runApp(app, pl, cl)
}

// runApp executes the app, routing through the OptsRunner path when the lab
// carries an event collector; apps without the full-options entry point (the
// async Coloring, Triangle Count) run untraced, which changes nothing about
// their results.
func (l *Lab) runApp(app apps.App, pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	if l.Cfg.Collector != nil {
		if fr, ok := app.(apps.OptsRunner); ok {
			return fr.RunOpts(pl, cl, engine.Options{Trace: l.Cfg.Collector})
		}
	}
	return app.Run(pl, cl)
}

// realGraphs loads the four emulated Table II real-world graphs.
func (l *Lab) realGraphs() ([]*graph.Graph, error) {
	specs := gen.RealGraphs()
	gs := make([]*graph.Graph, len(specs))
	for i, s := range specs {
		g, err := l.Graph(s)
		if err != nil {
			return nil, err
		}
		gs[i] = g
	}
	return gs, nil
}

// geoMeanMap returns per-key geometric means over a list of ratio maps.
func geoMeanMap(ms []map[string]float64) map[string]float64 {
	if len(ms) == 0 {
		return nil
	}
	sums := map[string]float64{}
	for _, m := range ms {
		for k, v := range m {
			sums[k] += logOf(v)
		}
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = expOf(s / float64(len(ms)))
	}
	return out
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
