package exp

import (
	"fmt"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/graph"
	"proxygraph/internal/metrics"
)

// Fig8a reproduces the paper's Fig 8a: CCRs acquired from real-world graphs
// vs synthetic proxy graphs across the c4 ladder (machines with different
// thread counts in the same category), plus the prior work's estimate. The
// note reports the aggregate accuracies the paper quotes (proxy ≈92%
// accurate; thread-count estimate ≈108% error).
func (l *Lab) Fig8a() (*metrics.Table, error) {
	order := []string{"c4.xlarge", "c4.2xlarge", "c4.4xlarge", "c4.8xlarge"}
	return l.figure8("Fig 8a: CCR from real vs synthetic graphs (c4 ladder)", LadderC4(), order)
}

// Fig8b reproduces Fig 8b: the same comparison for machines with identical
// thread counts from three categories (m4 / c4 / r3 2xlarge), heterogeneity
// the prior work cannot see at all.
func (l *Lab) Fig8b() (*metrics.Table, error) {
	order := []string{"m4.2xlarge", "c4.2xlarge", "r3.2xlarge"}
	return l.figure8("Fig 8b: CCR from real vs synthetic graphs (2xlarge categories)", Cross2xlarge(), order)
}

func (l *Lab) figure8(title string, cl *cluster.Cluster, order []string) (*metrics.Table, error) {
	reals, err := l.realGraphs()
	if err != nil {
		return nil, err
	}
	pp, err := l.Profiler()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(title, append([]string{"app", "series"}, order...)...)

	var proxyErrs, priorErrs []float64
	for _, app := range apps.All() {
		truth, err := l.realCCR(cl, app, reals)
		if err != nil {
			return nil, err
		}
		proxy, err := pp.Estimate(cl, app)
		if err != nil {
			return nil, err
		}
		prior, err := core.NewThreadCount().Estimate(cl, app)
		if err != nil {
			return nil, err
		}
		addSeries := func(label string, c core.CCR) {
			row := []string{app.Name(), label}
			for _, m := range order {
				row = append(row, metrics.Speedup(c.Ratios[m]))
			}
			t.AddRow(row...)
		}
		addSeries("real graphs", truth)
		addSeries("synthetic", proxy)
		addSeries("prior estimate", prior)

		pe, err := proxy.Error(truth)
		if err != nil {
			return nil, err
		}
		we, err := prior.Error(truth)
		if err != nil {
			return nil, err
		}
		proxyErrs = append(proxyErrs, pe)
		priorErrs = append(priorErrs, we)
	}
	t.AddNote("proxy accuracy %s (error %s); prior-work error %s",
		metrics.Pct(1-metrics.Mean(proxyErrs)), metrics.Pct(metrics.Mean(proxyErrs)),
		metrics.Pct(metrics.Mean(priorErrs)))
	return t, nil
}

// realCCR measures the ground-truth CCR as the geometric mean over the four
// emulated real-world graphs.
func (l *Lab) realCCR(cl *cluster.Cluster, app apps.App, reals []*graph.Graph) (core.CCR, error) {
	ratioMaps := make([]map[string]float64, 0, len(reals))
	for _, g := range reals {
		c, err := core.MeasureCCR(cl, app, g)
		if err != nil {
			return core.CCR{}, err
		}
		ratioMaps = append(ratioMaps, c.Ratios)
	}
	agg := geoMeanMap(ratioMaps)
	// Renormalize so the slowest group is exactly 1.
	slowest := 0.0
	for _, v := range agg {
		if slowest == 0 || v < slowest {
			slowest = v
		}
	}
	for k := range agg {
		agg[k] /= slowest
	}
	return core.CCR{App: app.Name(), Ratios: agg}, nil
}

func maxInt(xs []int) int {
	best := 0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

func formatRange(lo, hi int) string {
	if lo == hi {
		return fmt.Sprint(lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

func formatCount(c int64) string { return fmt.Sprint(c) }

// degreeHistogram adapts graph.DegreeHistogram over out-degrees, the side
// of the distribution Algorithm 1 samples from its power law.
func degreeHistogram(g *graph.Graph) ([]int, []int64) {
	return graph.DegreeHistogram(g.OutDegrees())
}
