package exp

import (
	"fmt"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/dynamic"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
	"proxygraph/internal/workload"
)

// ReplicationStudy reports the replication factor (average mirrors per
// vertex) of every partitioning algorithm — the paper's five plus the HDRF
// extension — on every Table II real-world graph over an 8-machine cluster.
// It reproduces the vertex-cut-quality comparison implicit in Section II:
// mixed cuts (Hybrid/Ginger) beat pure vertex cuts on low-degree-heavy
// graphs, Grid bounds replication structurally, and HDRF is the strongest
// streaming heuristic.
func (l *Lab) ReplicationStudy() (*metrics.Table, error) {
	reals, err := l.realGraphs()
	if err != nil {
		return nil, err
	}
	const m = 8
	shares := partition.UniformShares(m)
	parts := partition.WithExtensions()

	cols := []string{"graph"}
	for _, p := range parts {
		cols = append(cols, p.Name())
	}
	t := metrics.NewTable("Replication factor by algorithm (8 machines, uniform shares)", cols...)
	for _, g := range reals {
		row := []string{g.Name}
		for _, p := range parts {
			pl, err := partition.Apply(p, g, shares, l.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, metrics.F(pl.ReplicationFactor(), 3))
		}
		t.AddRow(row...)
	}
	t.AddNote("lower is better; random is the upper baseline, grid is structurally bounded, hdrf is the extension")
	return t, nil
}

// AblationSubsample quantifies the paper's motivating claim that profiling
// with subsampled natural graphs misestimates CCRs: it compares the CCR
// error of synthetic proxies against edge subsamples of the social-network
// graph at several sampling fractions, on the c4 ladder.
func (l *Lab) AblationSubsample() (*metrics.Table, error) {
	cl := LadderC4()
	reals, err := l.realGraphs()
	if err != nil {
		return nil, err
	}
	social, err := l.Graph(gen.RealGraphs()[2])
	if err != nil {
		return nil, err
	}
	pp, err := l.Profiler()
	if err != nil {
		return nil, err
	}

	estimators := []core.Estimator{
		pp,
		core.NewSubsampleProfiler(social, 0.01, l.Cfg.Seed),
		core.NewSubsampleProfiler(social, 0.05, l.Cfg.Seed),
		core.NewSubsampleProfiler(social, 0.20, l.Cfg.Seed),
	}
	labels := []string{"synthetic proxies", "1% subsample", "5% subsample", "20% subsample"}

	t := metrics.NewTable("Ablation: synthetic proxies vs natural-graph subsampling (mean CCR error, c4 ladder)",
		"profiling input", "pagerank", "coloring", "connected_components", "triangle_count", "mean")
	for i, est := range estimators {
		row := []string{labels[i]}
		var errs []float64
		for _, app := range apps.All() {
			truth, err := l.realCCR(cl, app, reals)
			if err != nil {
				return nil, err
			}
			got, err := est.Estimate(cl, app)
			if err != nil {
				return nil, err
			}
			e, err := got.Error(truth)
			if err != nil {
				return nil, err
			}
			errs = append(errs, e)
			row = append(row, metrics.Pct(e))
		}
		row = append(row, metrics.Pct(metrics.Mean(errs)))
		t.AddRow(row...)
	}
	t.AddNote("aggressive samples distort the degree structure and mis-profile; mild samples track better but must be re-profiled per input graph, while the synthetic proxy set is generated once and reused (Section III-A2)")
	return t, nil
}

// IngressStudy reports the loading/finalization makespan (Fig 7b's first
// phases) for uniform versus CCR-guided partitions on the Case 2 cluster:
// heterogeneity-aware ingress also skews the load time toward the machines
// that can absorb it.
func (l *Lab) IngressStudy() (*metrics.Table, error) {
	cl := Case2Cluster()
	systems, err := l.Systems()
	if err != nil {
		return nil, err
	}
	reals, err := l.realGraphs()
	if err != nil {
		return nil, err
	}
	part := partition.NewHybrid()
	app := apps.NewPageRank()

	t := metrics.NewTable("Ingress (load + finalize) makespan on Case 2, hybrid cut",
		"graph", "default", "proxy-guided", "replication default", "replication guided")
	for _, g := range reals {
		var makespans [2]float64
		var repl [2]float64
		for i, sys := range []System{systems[0], systems[2]} {
			pool, err := l.Pool(cl, sys.Est)
			if err != nil {
				return nil, err
			}
			ccr, _ := pool.Get(app.Name())
			shares, err := ccr.SharesFor(cl)
			if err != nil {
				return nil, err
			}
			pl, err := partition.Apply(part, g, shares, l.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			rep, err := engine.Ingress(pl, cl)
			if err != nil {
				return nil, err
			}
			makespans[i] = rep.Makespan
			repl[i] = pl.ReplicationFactor()
		}
		t.AddRow(g.Name,
			metrics.Seconds(makespans[0]), metrics.Seconds(makespans[1]),
			metrics.F(repl[0], 3), metrics.F(repl[1], 3))
	}
	t.AddNote("loading is storage-bound, so skewing bytes toward fast machines lengthens their load phase slightly while shortening execution")
	return t, nil
}

// DynamicStudy compares the paper's static proxy-guided ingress against
// Mizan-style dynamic load balancing (related work [13]): PageRank on the
// Case 2 cluster, starting dynamic runs from the uniform default partition.
// Dynamic migration recovers much of the imbalance but pays migration stalls
// and converges over supersteps, while CCR-guided ingress is balanced from
// the first barrier — the comparison behind the paper's choice of static,
// profile-driven partitioning.
func (l *Lab) DynamicStudy() (*metrics.Table, error) {
	cl := Case2Cluster()
	systems, err := l.Systems()
	if err != nil {
		return nil, err
	}
	reals, err := l.realGraphs()
	if err != nil {
		return nil, err
	}
	part := partition.NewHybrid()
	t := metrics.NewTable("Dynamic (Mizan-style) migration vs static CCR-guided ingress (pagerank, Case 2)",
		"graph", "t(default)", "t(dynamic)", "migrations", "t(prior)", "t(proxy)", "proxy vs dynamic")
	for _, g := range reals {
		times := map[string]float64{}
		for _, sys := range systems {
			res, err := l.runWithSystem(cl, sys, apps.NewPageRank(), g, part)
			if err != nil {
				return nil, err
			}
			times[sys.Name] = res.SimSeconds
		}
		pool, err := l.Pool(cl, systems[0].Est)
		if err != nil {
			return nil, err
		}
		ccr, _ := pool.Get("pagerank")
		shares, err := ccr.SharesFor(cl)
		if err != nil {
			return nil, err
		}
		pl, err := partition.Apply(part, g, shares, l.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		mig := dynamic.NewMigrator(l.Cfg.Seed)
		dynRes, err := apps.NewPageRank().RunRebalanced(pl, cl, mig)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name,
			metrics.Seconds(times["default"]),
			metrics.Seconds(dynRes.SimSeconds),
			fmt.Sprint(mig.Migrations),
			metrics.Seconds(times["prior-work"]),
			metrics.Seconds(times["proxy (ours)"]),
			metrics.Speedup(dynRes.SimSeconds/times["proxy (ours)"]))
	}
	t.AddNote("dynamic runs start from the uniform default partition; 'proxy vs dynamic' > 1 means static proxy ingress wins")
	return t, nil
}

// AmortizationStudy quantifies Section III-B's cost argument: the proxy
// system pays a one-time offline profiling cost, then wins every job on a
// heterogeneous cluster, so its cumulative time crosses below the default
// and prior-work systems within a session of reused applications ("graph
// applications are often reused to analyze dozens of different real world
// graphs"). Proxies profile at 4x the session's scale divisor — CCRs are
// scale-invariant, so smaller proxies cost less without losing accuracy.
func (l *Lab) AmortizationStudy() (*metrics.Table, error) {
	cl := Case2Cluster()
	jobs, err := workload.RandomJobs(30, l.Cfg.Scale, l.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	session := &workload.Session{Cluster: cl}

	pp, err := core.NewProxyProfiler(l.Cfg.Scale*4, l.Cfg.Seed+1000)
	if err != nil {
		return nil, err
	}
	reports := map[string]*workload.Report{}
	for _, sys := range []struct {
		name string
		est  core.Estimator
	}{
		{"default", core.Uniform{}},
		{"prior-work", core.NewThreadCount()},
		{"proxy", pp},
	} {
		rep, err := session.Run(jobs, sys.est)
		if err != nil {
			return nil, err
		}
		reports[sys.name] = rep
	}

	t := metrics.NewTable("Amortization: cumulative session time on Case 2 (30 mixed jobs)",
		"jobs completed", "default", "prior-work", "proxy (incl. profiling)")
	for _, checkpoint := range []int{1, 2, 5, 10, 20, 30} {
		i := checkpoint - 1
		t.AddRow(fmt.Sprint(checkpoint),
			metrics.Seconds(reports["default"].CumulativeSeconds[i]),
			metrics.Seconds(reports["prior-work"].CumulativeSeconds[i]),
			metrics.Seconds(reports["proxy"].CumulativeSeconds[i]))
	}
	t.AddNote("proxy profiling cost %s (one-time, offline); crossover vs default after %d jobs, vs prior-work after %d jobs",
		metrics.Seconds(reports["proxy"].ProfilingSeconds),
		workload.Crossover(reports["proxy"], reports["default"]),
		workload.Crossover(reports["proxy"], reports["prior-work"]))
	return t, nil
}

// FrequencySweep extends Case 3 into a curve: the little 4-core machine's
// frequency sweeps from 1.2 to 2.5GHz against the fixed 12-core 2.5GHz
// machine, tracking each application's CCR — the projection behind the
// paper's claim that deepening heterogeneity (tiny ARM-like servers) makes
// capability misestimation ever more costly.
func (l *Lab) FrequencySweep() (*metrics.Table, error) {
	pp, err := l.Profiler()
	if err != nil {
		return nil, err
	}
	big := cluster.LocalXeon("xeon-12c", 12, 2.5)
	t := metrics.NewTable("Frequency sweep: little-machine clock vs CCR (xeon-4c vs xeon-12c @2.5GHz)",
		"little freq", "pagerank", "coloring", "connected_components", "triangle_count", "thread estimate")
	for _, freq := range []float64{1.2, 1.5, 1.8, 2.1, 2.5} {
		little := cluster.LocalXeon("xeon-4c", 4, 2.5)
		if freq != 2.5 {
			little = little.WithFrequency(freq)
		}
		cl, err := cluster.New(little, big)
		if err != nil {
			return nil, err
		}
		prior, err := core.NewThreadCount().Estimate(cl, apps.NewPageRank())
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.1fGHz", freq)}
		for _, app := range apps.All() {
			ccr, err := pp.Estimate(cl, app)
			if err != nil {
				return nil, err
			}
			row = append(row, "1 : "+metrics.F(ccr.Ratios["xeon-12c"], 1))
		}
		row = append(row, "1 : "+metrics.F(prior.Ratios["xeon-12c"], 1))
		t.AddRow(row...)
	}
	t.AddNote("the thread estimate is frequency-blind; real CCRs grow as the little machine slows (Case 2 is the 2.5GHz row, Case 3 the 1.8GHz row)")
	return t, nil
}
