package exp

import (
	"fmt"

	"proxygraph/internal/apps"
	"proxygraph/internal/core"
	"proxygraph/internal/gen"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
)

// AblationHybridThreshold sweeps Hybrid's high-degree threshold on the
// social-network graph, reporting replication factor and Case 2 runtime: the
// design-choice study behind PowerLyra's default of 100.
func (l *Lab) AblationHybridThreshold() (*metrics.Table, error) {
	g, err := l.Graph(gen.RealGraphs()[2])
	if err != nil {
		return nil, err
	}
	cl := Case2Cluster()
	systems, err := l.Systems()
	if err != nil {
		return nil, err
	}
	ours := systems[2]
	pool, err := l.Pool(cl, ours.Est)
	if err != nil {
		return nil, err
	}
	app := apps.NewPageRank()
	ccr, _ := pool.Get(app.Name())
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Ablation: Hybrid in-degree threshold (pagerank, social_network, Case 2)",
		"threshold", "replication factor", "runtime")
	for _, th := range []int32{4, 16, 64, 100, 400, 1 << 30} {
		h := &partition.Hybrid{Threshold: th}
		pl, err := partition.Apply(h, g, shares, l.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := app.Run(pl, cl)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(th), metrics.F(pl.ReplicationFactor(), 3), metrics.Seconds(res.SimSeconds))
	}
	t.AddNote("threshold 2^30 degenerates to a pure edge cut (no vertex is high-degree)")
	return t, nil
}

// AblationGingerGamma sweeps Ginger's balance weight γ, exposing the
// replication-vs-balance tradeoff of the Fennel-style score.
func (l *Lab) AblationGingerGamma() (*metrics.Table, error) {
	g, err := l.Graph(gen.RealGraphs()[0]) // amazon: clustered, Ginger's best case
	if err != nil {
		return nil, err
	}
	cl := Case2Cluster()
	systems, err := l.Systems()
	if err != nil {
		return nil, err
	}
	pool, err := l.Pool(cl, systems[2].Est)
	if err != nil {
		return nil, err
	}
	app := apps.NewConnectedComponents()
	ccr, _ := pool.Get(app.Name())
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Ablation: Ginger balance weight gamma (connected_components, amazon, Case 2)",
		"gamma", "replication factor", "imbalance vs CCR", "runtime")
	for _, gamma := range []float64{0.1, 0.5, 1, 2, 8} {
		gp := &partition.Ginger{Threshold: 100, Gamma: gamma}
		pl, err := partition.Apply(gp, g, shares, l.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := app.Run(pl, cl)
		if err != nil {
			return nil, err
		}
		t.AddRow(metrics.F(gamma, 1), metrics.F(pl.ReplicationFactor(), 3),
			metrics.F(pl.Imbalance(shares), 2), metrics.Seconds(res.SimSeconds))
	}
	t.AddNote("small gamma favors neighborhood affinity (low replication, high imbalance); large gamma enforces the CCR shares")
	return t, nil
}

// AblationProxySet compares CCR accuracy when profiling with a single proxy
// versus the full three-proxy set, quantifying the paper's claim that a
// small set of alphas "covers a wide range of real graphs".
func (l *Lab) AblationProxySet() (*metrics.Table, error) {
	full, err := l.Profiler()
	if err != nil {
		return nil, err
	}
	reals, err := l.realGraphs()
	if err != nil {
		return nil, err
	}
	cl := LadderC4()

	t := metrics.NewTable("Ablation: proxy set coverage (mean CCR error on the c4 ladder)",
		"proxy set", "pagerank", "coloring", "connected_components", "triangle_count", "mean")
	sets := []struct {
		name    string
		indices []int
	}{
		{"alpha 1.95 only", []int{0}},
		{"alpha 2.1 only", []int{1}},
		{"alpha 2.3 only", []int{2}},
		{"all three", []int{0, 1, 2}},
	}
	for _, set := range sets {
		pp := &core.ProxyProfiler{}
		for _, i := range set.indices {
			pp.Proxies = append(pp.Proxies, full.Proxies[i])
		}
		row := []string{set.name}
		var errs []float64
		for _, app := range apps.All() {
			truth, err := l.realCCR(cl, app, reals)
			if err != nil {
				return nil, err
			}
			est, err := pp.Estimate(cl, app)
			if err != nil {
				return nil, err
			}
			e, err := est.Error(truth)
			if err != nil {
				return nil, err
			}
			errs = append(errs, e)
			row = append(row, metrics.Pct(e))
		}
		row = append(row, metrics.Pct(metrics.Mean(errs)))
		t.AddRow(row...)
	}
	return t, nil
}

// AblationScaleInvariance verifies the paper's Section II-A claim that graph
// size is a "trivial factor" for CCR: proxies at different scales must yield
// nearly identical ratios.
func (l *Lab) AblationScaleInvariance() (*metrics.Table, error) {
	cl := Case2Cluster()
	app := apps.NewPageRank()
	t := metrics.NewTable("Ablation: CCR invariance to proxy graph scale (pagerank, Case 2)",
		"proxy scale divisor", "CCR (xeon-12c / xeon-4c)")
	base := l.Cfg.Scale
	for _, mult := range []int{1, 2, 4, 8} {
		pp, err := core.NewProxyProfiler(base*mult, l.Cfg.Seed+2000)
		if err != nil {
			return nil, err
		}
		ccr, err := pp.Estimate(cl, app)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("1/%d", base*mult), metrics.F(ccr.Ratios["xeon-12c"]/ccr.Ratios["xeon-4c"], 3))
	}
	t.AddNote("ratios should agree across scales: size shifts magnitudes, not relative speeds")
	return t, nil
}
