package exp

import (
	"runtime"
	"sync"
)

// runParallel executes fn(0..n-1) on up to GOMAXPROCS workers and returns
// the first error encountered. Callers write results into index-addressed
// slots, so table output stays deterministic regardless of scheduling.
// Experiment runs are independent simulations sharing only the Lab's
// mutex-guarded caches, which callers should pre-warm to avoid duplicate
// profiling work.
func runParallel(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
