package exp

import (
	"fmt"

	"proxygraph/internal/apps"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
	"proxygraph/internal/trace"
)

// Fig4 reproduces the paper's Fig 4: the per-machine execution profile of an
// imbalanced run (the default uniform partitioning, where the ladder's small
// machines straggle every superstep) against the proxy-guided balanced one.
// The per-machine busy/idle/straggler numbers come from trace.Summarize over
// the structured event stream — the same signal the paper reads off its
// per-machine timelines — instead of ad-hoc arithmetic on Result fields.
func (l *Lab) Fig4() (*metrics.Table, error) {
	cl := LadderC4()
	g, err := l.Graph(gen.RealGraphs()[2]) // social_network
	if err != nil {
		return nil, err
	}
	systems, err := l.Systems()
	if err != nil {
		return nil, err
	}
	app := apps.NewPageRank()
	t := metrics.NewTable("Fig 4: imbalanced (default) vs balanced (proxy) execution profile (pagerank, c4 ladder)",
		"system", "machine", "busy", "gather", "apply", "comm", "idle", "straggled")
	for _, sys := range []System{systems[0], systems[2]} { // default vs proxy (ours)
		pool, err := l.Pool(cl, sys.Est)
		if err != nil {
			return nil, err
		}
		ccr, ok := pool.Get(app.Name())
		if !ok {
			return nil, fmt.Errorf("exp: no pooled CCR for %q under %s", app.Name(), sys.Name)
		}
		shares, err := ccr.SharesFor(cl)
		if err != nil {
			return nil, err
		}
		pl, err := partition.Apply(partition.NewHybrid(), g, shares, l.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		rec := trace.NewRecorder()
		res, err := app.RunOpts(pl, cl, engine.Options{Trace: trace.Multi(rec, l.Cfg.Collector)})
		if err != nil {
			return nil, err
		}
		sum := trace.Summarize(rec.Events)
		for _, m := range sum.Machines {
			t.AddRow(sys.Name, cl.Machines[m.Machine].Name,
				metrics.Seconds(m.BusySeconds), metrics.Seconds(m.GatherSeconds),
				metrics.Seconds(m.ApplySeconds), metrics.Seconds(m.CommSeconds),
				metrics.Seconds(m.IdleSeconds), fmt.Sprintf("%d/%d", m.StragglerSteps, sum.SyncSteps))
		}
		t.AddNote("%s: makespan %s, step imbalance %.2fx",
			sys.Name, metrics.Seconds(res.SimSeconds), sum.Imbalance)
	}
	t.AddNote("idle is barrier wait for slower machines; straggled counts supersteps a machine set the barrier")
	return t, nil
}
