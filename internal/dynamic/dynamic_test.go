package dynamic

import (
	"math"
	"testing"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
)

func caseTwoCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(
		cluster.LocalXeon("xeon-4c", 4, 2.5),
		cluster.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func testGraph(t *testing.T, seed uint64, n, m int) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Spec{
		Name: "dyn-test", Vertices: int64(n), Edges: int64(m), Kind: gen.KindPowerLaw,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func uniformPlacement(t *testing.T, g *graph.Graph, m int) *engine.Placement {
	t.Helper()
	pl, err := partition.Apply(partition.NewRandomHash(), g, partition.UniformShares(m), 1)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestMigratorImprovesUniformPlacement(t *testing.T) {
	cl := caseTwoCluster(t)
	g := testGraph(t, 1, 20000, 240000)
	pr := apps.NewPageRank()
	pr.Tolerance = 0
	pr.MaxIters = 12

	static, err := pr.Run(uniformPlacement(t, g, 2), cl)
	if err != nil {
		t.Fatal(err)
	}
	mig := NewMigrator(7)
	dynamic, err := pr.RunRebalanced(uniformPlacement(t, g, 2), cl, mig)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Migrations == 0 {
		t.Fatal("migrator never fired on an imbalanced heterogeneous run")
	}
	if dynamic.SimSeconds >= static.SimSeconds {
		t.Errorf("dynamic balancing (%.5fs) should beat the static uniform run (%.5fs)",
			dynamic.SimSeconds, static.SimSeconds)
	}
	// Results stay exact.
	rs := static.Output.([]float64)
	rd := dynamic.Output.([]float64)
	for v := range rs {
		if math.Abs(rs[v]-rd[v]) > 1e-9 {
			t.Fatalf("migration changed ranks at vertex %d", v)
		}
	}
}

func TestMigratorQuietOnBalancedRun(t *testing.T) {
	// Two identical machines with a uniform partition: no trigger.
	m, _ := cluster.ByName("c4.2xlarge")
	cl, err := cluster.New(m, m)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 2, 5000, 60000)
	mig := NewMigrator(3)
	if _, err := apps.NewPageRank().RunRebalanced(uniformPlacement(t, g, 2), cl, mig); err != nil {
		t.Fatal(err)
	}
	if mig.Migrations > 1 {
		t.Errorf("migrator fired %d times on a balanced run", mig.Migrations)
	}
}

func TestMigratorRespectsMaxMigrations(t *testing.T) {
	cl := caseTwoCluster(t)
	g := testGraph(t, 3, 10000, 120000)
	mig := NewMigrator(5)
	mig.MaxMigrations = 2
	pr := apps.NewPageRank()
	pr.Tolerance = 0
	pr.MaxIters = 15
	if _, err := pr.RunRebalanced(uniformPlacement(t, g, 2), cl, mig); err != nil {
		t.Fatal(err)
	}
	if mig.Migrations > 2 {
		t.Errorf("migrations = %d, cap was 2", mig.Migrations)
	}
}

func TestMigratorUnlimitedWhenZero(t *testing.T) {
	cl := caseTwoCluster(t)
	g := testGraph(t, 3, 10000, 120000)
	pr := apps.NewPageRank()
	pr.Tolerance = 0
	pr.MaxIters = 15

	capped := NewMigrator(5)
	capped.MaxMigrations = 1
	if _, err := pr.RunRebalanced(uniformPlacement(t, g, 2), cl, capped); err != nil {
		t.Fatal(err)
	}
	if capped.Migrations != 1 {
		t.Fatalf("capped migrator fired %d times, cap was 1", capped.Migrations)
	}

	// Zero disables the cap entirely: same run must migrate at least as often.
	unlimited := NewMigrator(5)
	unlimited.MaxMigrations = 0
	if _, err := pr.RunRebalanced(uniformPlacement(t, g, 2), cl, unlimited); err != nil {
		t.Fatal(err)
	}
	if unlimited.Migrations <= capped.Migrations {
		t.Fatalf("unlimited migrator fired %d times, capped one fired %d",
			unlimited.Migrations, capped.Migrations)
	}
}

func TestDecideIgnoresZeroTimeMachines(t *testing.T) {
	g := testGraph(t, 7, 100, 600)
	pl, err := engine.NewPlacement(g, make([]int32, len(g.Edges)), 3)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMigrator(1)
	// Machine 1 charged nothing (crashed or idle): it must not become the
	// migration target. Machine 2 is the only valid fastest machine.
	owner, moved, ok := m.Decide(0, []float64{4, 0, 1}, pl)
	if !ok || moved == 0 {
		t.Fatal("expected a migration onto the fastest alive machine")
	}
	for _, o := range owner {
		if o == 1 {
			t.Fatal("edge migrated onto a zero-time machine")
		}
	}
	// Only zero-time machines besides the straggler: refuse.
	if _, _, ok := m.Decide(1, []float64{4, 0, 0}, pl); ok {
		t.Error("migration triggered with no alive target")
	}
}

func TestMigrationChargedAsStall(t *testing.T) {
	cl := caseTwoCluster(t)
	g := testGraph(t, 4, 10000, 120000)
	pr := apps.NewPageRank()
	pr.Tolerance = 0
	pr.MaxIters = 8
	res, err := pr.RunRebalanced(uniformPlacement(t, g, 2), cl, NewMigrator(9))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range res.Trace {
		if st.Kind == "migrate" {
			found = true
			if st.Barrier <= 0 {
				t.Error("migration stall carries no time")
			}
		}
	}
	if !found {
		t.Error("no migration stall recorded in the trace")
	}
}

func TestDecideEdgeCases(t *testing.T) {
	g := testGraph(t, 5, 100, 600)
	pl, err := engine.NewPlacement(g, make([]int32, len(g.Edges)), 2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMigrator(1)
	// Zero fastest time: refuse.
	if _, _, ok := m.Decide(0, []float64{1, 0}, pl); ok {
		t.Error("zero-time machine should not trigger migration")
	}
	// Below trigger: refuse.
	if _, _, ok := m.Decide(0, []float64{1.0, 0.95}, pl); ok {
		t.Error("balanced times should not trigger migration")
	}
	// Valid trigger: machine 0 holds everything and is slow.
	owner, moved, ok := m.Decide(0, []float64{2, 1}, pl)
	if !ok || moved == 0 {
		t.Fatal("expected a migration")
	}
	movedCount := int64(0)
	for _, o := range owner {
		if o == 1 {
			movedCount++
		}
	}
	if movedCount != moved {
		t.Errorf("owner vector moved %d edges, reported %d", movedCount, moved)
	}
}

func TestConnectedComponentsRebalanced(t *testing.T) {
	cl := caseTwoCluster(t)
	g := testGraph(t, 6, 8000, 60000)
	res, err := apps.NewConnectedComponents().RunRebalanced(uniformPlacement(t, g, 2), cl, NewMigrator(11))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := apps.NewConnectedComponents().Run(uniformPlacement(t, g, 2), cl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.(apps.Components).Count != plain.Output.(apps.Components).Count {
		t.Error("rebalancing changed the component count")
	}
}

// TestDecideSeedsDecorrelated is the regression test for the per-step RNG
// derivation: with the old Seed+step arithmetic, step k of a migrator seeded
// s+1 replayed step k+1 of a migrator seeded s, so adjacent-seed replicas
// sampled correlated edge sets. The hashed derivation must break that
// relationship while staying deterministic per (seed, step).
func TestDecideSeedsDecorrelated(t *testing.T) {
	g := testGraph(t, 8, 2000, 24000)
	times := []float64{4, 1}

	moved := func(seed uint64, step int) map[int32]bool {
		pl := uniformPlacement(t, g, 2)
		m := NewMigrator(seed)
		owner, _, ok := m.Decide(step, times, pl)
		if !ok {
			t.Fatalf("seed %d step %d: migration did not fire", seed, step)
		}
		set := map[int32]bool{}
		for i, o := range owner {
			if o != pl.EdgeOwner[i] {
				set[int32(i)] = true
			}
		}
		return set
	}
	overlap := func(a, b map[int32]bool) float64 {
		n := 0
		for i := range a {
			if b[i] {
				n++
			}
		}
		return float64(n) / float64(len(a))
	}

	// Determinism: same (seed, step) moves the same edges.
	if got := overlap(moved(5, 0), moved(5, 0)); got != 1 {
		t.Fatalf("same seed and step overlap %.3f, want 1", got)
	}
	// The old bug: seed s at step k+1 == seed s+1 at step k (full overlap).
	// Hashed streams must make these (and adjacent steps of one seed) nearly
	// disjoint — with ~50%% of edges moved, random sets overlap ~50%%.
	if got := overlap(moved(5, 1), moved(6, 0)); got > 0.9 {
		t.Errorf("adjacent seeds replay each other's steps: overlap %.3f", got)
	}
	if got := overlap(moved(5, 0), moved(5, 1)); got > 0.9 {
		t.Errorf("consecutive steps of one seed coincide: overlap %.3f", got)
	}
}
