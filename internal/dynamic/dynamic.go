// Package dynamic implements Mizan-style dynamic load balancing (Khayyat et
// al., EuroSys 2013 — reference [13] of the paper): instead of partitioning
// heterogeneity-aware up front, the engine monitors per-superstep runtimes
// and migrates edges from the straggler to underloaded machines between
// barriers. The paper positions its static proxy-guided ingress against this
// approach — dynamic balancing "avoids the negative impact of insufficient
// graph/data partitioning information in the initial stage" but pays
// migration traffic and converges over several supersteps; the DynamicStudy
// experiment quantifies the comparison.
package dynamic

import (
	"proxygraph/internal/engine"
	"proxygraph/internal/rng"
)

// Migrator is an engine.Rebalancer that moves a fraction of the straggler's
// edges to the fastest machine whenever the imbalance exceeds the trigger.
type Migrator struct {
	// Trigger is the straggler/fastest time ratio that provokes a migration
	// (default 1.15).
	Trigger float64
	// Fraction of the straggler's excess edges moved per migration
	// (default 0.5).
	Fraction float64
	// MaxMigrations caps the total number of migrations. Zero means
	// unlimited; NewMigrator sets the default cap of 16.
	MaxMigrations int
	// Seed drives the edge selection.
	Seed uint64

	// Migrations counts the migrations performed so far.
	Migrations int
	// EdgesMoved accumulates the migrated edge count.
	EdgesMoved int64
}

// NewMigrator returns a migrator with the defaults above.
func NewMigrator(seed uint64) *Migrator {
	return &Migrator{Trigger: 1.15, Fraction: 0.5, MaxMigrations: 16, Seed: seed}
}

// Decide implements engine.Rebalancer.
func (m *Migrator) Decide(step int, times []float64, pl *engine.Placement) ([]int32, int64, bool) {
	if m.MaxMigrations > 0 && m.Migrations >= m.MaxMigrations {
		return nil, 0, false
	}
	// The fastest machine is the cheapest positive-time one: machines that
	// charged nothing this step (crashed and retired by the fault layer, or
	// simply idle) are not migration targets.
	slowest, fastest := 0, -1
	for p, t := range times {
		if t > times[slowest] {
			slowest = p
		}
		if t > 0 && (fastest < 0 || t < times[fastest]) {
			fastest = p
		}
	}
	if fastest < 0 || slowest == fastest {
		return nil, 0, false
	}
	if times[slowest]/times[fastest] < m.Trigger {
		return nil, 0, false
	}

	// Move enough of the straggler's edges to close (Fraction of) the time
	// gap, assuming the straggler's time is proportional to its edge count.
	local := pl.LocalEdges[slowest]
	if len(local) < 2 {
		return nil, 0, false
	}
	gap := (times[slowest] - times[fastest]) / (times[slowest] + times[fastest])
	move := int(m.Fraction * gap * float64(len(local)))
	if move < 1 {
		return nil, 0, false
	}
	if move >= len(local) {
		move = len(local) - 1
	}

	owner := make([]int32, len(pl.EdgeOwner))
	copy(owner, pl.EdgeOwner)
	// Derive the per-step stream by hashing, not adding: Seed+step makes
	// migrator seeds s and s+1 replay each other's streams one step apart
	// (step k of seed s+1 == step k+1 of seed s), so "independent" replicas
	// pick correlated edge samples. Hash2 keys each (seed, step) pair into an
	// unrelated SplitMix64 stream.
	src := rng.New(rng.Hash2(m.Seed, uint64(step)))
	moved := int64(0)
	// Sample without replacement by walking a random starting offset with a
	// coprime stride, deterministic and allocation-free.
	stride := 1 + int(src.Uint64n(uint64(len(local)-1)))
	for gcd(stride, len(local)) != 1 {
		stride++
	}
	idx := int(src.Uint64n(uint64(len(local))))
	for i := 0; i < move; i++ {
		owner[local[idx]] = int32(fastest)
		moved++
		idx = (idx + stride) % len(local)
	}
	m.Migrations++
	m.EdgesMoved += moved
	return owner, moved, true
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
