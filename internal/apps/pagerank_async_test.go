package apps

import (
	"testing"

	"proxygraph/internal/engine"
)

func TestPageRankDeltaConvergesToSyncFixedPoint(t *testing.T) {
	g := testGraph(t, 90, 500, 4000)
	sync := NewPageRank()
	sync.Tolerance = 1e-7
	sync.MaxIters = 200
	syncRes, err := sync.Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	async := NewPageRankDelta()
	async.Tolerance = 1e-6
	asyncRes, err := async.Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	dist := RankDistance(syncRes.Output.([]float64), asyncRes.Output.([]float64))
	if dist > 0.01 {
		t.Errorf("async ranks diverge from sync fixed point by %v", dist)
	}
}

func TestPageRankDeltaInvariantAcrossPlacements(t *testing.T) {
	g := testGraph(t, 91, 300, 2400)
	a, err := NewPageRankDelta().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPageRankDelta().Run(moduloPlacement(t, g, 4), multiCluster(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Different master orders change the push schedule, so ranks agree only
	// within the residual tolerance, not bit-exactly.
	if d := RankDistance(a.Output.([]float64), b.Output.([]float64)); d > 0.05 {
		t.Errorf("placement changed async ranks by %v", d)
	}
}

func TestPageRankDeltaUsesAsyncAccounting(t *testing.T) {
	g := testGraph(t, 92, 400, 3200)
	res, err := NewPageRankDelta().Run(moduloPlacement(t, g, 2), multiCluster(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 0 {
		t.Errorf("async run reports %d sync supersteps", res.Supersteps)
	}
	if len(res.Trace) == 0 || res.Trace[0].Kind != "async" {
		t.Error("async run should record async trace phases")
	}
	if res.SimSeconds <= 0 {
		t.Error("no simulated time charged")
	}
}

func TestRankDistance(t *testing.T) {
	if d := RankDistance([]float64{1, 2, 3}, []float64{1, 2.5, 3}); d != 0.5 {
		t.Errorf("RankDistance = %v", d)
	}
	if d := RankDistance(nil, nil); d != 0 {
		t.Errorf("empty distance = %v", d)
	}
}
