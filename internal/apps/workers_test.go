package apps

import (
	"fmt"
	"testing"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/trace"
)

// This file pins the parallel engine's worker-count invariance: the
// work-stealing apply/scatter sweep and the sharded gather hand chunks to
// whichever worker claims them first, so the schedule differs run to run and
// worker count to worker count — but the trace stream, the simulation
// accounting and the vertex values must not. Every phase keys its writes on
// disjoint vertex ranges and merges counters as exact integer sums or maxima,
// so any divergence here means a phase leaked scheduling into results.
// make check runs this under -race at -cpu 1,2,4, crossing the host
// GOMAXPROCS axis with the engine's own worker knob.

// checkWorkerInvariance runs prog on the parallel engine at 1, 2 and 4
// workers and asserts byte-identical trace events, bitwise-equal accounting
// and bitwise-equal values across the runs (floats included: the parallel
// engine preserves per-destination accumulation order, so even inexact sums
// may not drift with the worker count).
func checkWorkerInvariance[V comparable, A any](t *testing.T, name string, prog engine.Program[V, A], pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) {
	t.Helper()
	old := engine.ParallelShards
	t.Cleanup(func() { engine.ParallelShards = old })

	var (
		baseEvents []trace.Event
		baseRes    *engine.Result
		baseVals   []V
		baseW      int
	)
	for _, w := range []int{1, 2, 4} {
		engine.ParallelShards = w
		rec := trace.NewRecorder()
		o := opts
		o.Trace = rec
		res, vals, err := engine.RunSyncParallelOpts[V, A](prog, pl, cl, o)
		if err != nil {
			t.Fatalf("%s/workers=%d: %v", name, w, err)
		}
		if baseRes == nil {
			baseEvents, baseRes, baseVals, baseW = rec.Events, res, vals, w
			if len(baseEvents) == 0 {
				t.Fatalf("%s/workers=%d: no trace events recorded", name, w)
			}
			continue
		}
		label := fmt.Sprintf("%s/workers=%d-vs-%d", name, w, baseW)
		sameAccounting(t, label, baseRes, res)
		if i, a, b := firstDiff(baseEvents, rec.Events); i < len(baseEvents) || len(rec.Events) != len(baseEvents) {
			t.Fatalf("%s: trace streams diverge at event %d: %+v vs %+v (lengths %d, %d)",
				label, i, a, b, len(baseEvents), len(rec.Events))
		}
		for v := range vals {
			if vals[v] != baseVals[v] {
				t.Fatalf("%s: vertex %d value %v != %v", label, v, vals[v], baseVals[v])
			}
		}
	}
}

func TestParallelEngineWorkerCountInvariance(t *testing.T) {
	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)

	// Chaos options: checkpoints, a crash, recovery replay — the restore
	// paths must be just as worker-count-deterministic as steady state.
	chaos := engine.Options{Fault: &engine.FaultConfig{
		Injector:        chaosSchedule(),
		CheckpointEvery: 2,
		Policy:          engine.RecoverCheckpoint,
	}}

	for _, mode := range []struct {
		name string
		opts func() engine.Options
	}{
		{"faultfree", func() engine.Options { return engine.Options{} }},
		{"chaos", func() engine.Options { return chaos }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			t.Run("pagerank", func(t *testing.T) {
				checkWorkerInvariance[prState, float64](t, "pagerank", NewPageRank(), pl, cl, mode.opts())
			})
			t.Run("components", func(t *testing.T) {
				checkWorkerInvariance[uint32, uint32](t, "components", NewConnectedComponents(), pl, cl, mode.opts())
			})
			t.Run("bfs", func(t *testing.T) {
				checkWorkerInvariance[int32, int32](t, "bfs", NewBFS(), pl, cl, mode.opts())
			})
			t.Run("hops", func(t *testing.T) {
				checkWorkerInvariance[float64, float64](t, "hops", hopsProgram{}, pl, cl, mode.opts())
			})
			t.Run("core-cascade", func(t *testing.T) {
				checkWorkerInvariance[coreState, int32](t, "core-cascade", cascadeProgram{k: 3}, pl, cl, mode.opts())
			})
			t.Run("clusterbfs", func(t *testing.T) {
				// The 264-byte packed state rides the same sharded apply
				// sweep; the trace stream may not feel the worker count.
				prog := &ClusterBFS{Sources: spreadSources(g.NumVertices, MaxBatchSources), MaxIters: 1000}
				checkWorkerInvariance[ClusterState, uint64](t, "clusterbfs", prog, pl, cl, mode.opts())
			})
		})
	}
}
