package apps

import (
	"fmt"
	"math"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
)

// PageRankDelta is the asynchronous, push-based ("delta") PageRank that
// PowerGraph's async engine runs: instead of recomputing every rank each
// barrier, vertices accumulate residual rank mass and push it to their
// out-neighbors whenever it exceeds the tolerance. It converges to the same
// fixed point as the synchronous formulation and is included as an extension
// showing the engine's asynchronous accounting on a second application
// besides Coloring.
type PageRankDelta struct {
	// Damping is the damping factor d (default 0.85).
	Damping float64
	// Tolerance is the residual threshold below which a vertex stays quiet.
	Tolerance float64
	// MaxRounds bounds the asynchronous sweeps.
	MaxRounds int
}

// NewPageRankDelta returns the default configuration.
func NewPageRankDelta() *PageRankDelta {
	return &PageRankDelta{Damping: 0.85, Tolerance: 1e-3, MaxRounds: 1000}
}

// Name implements App.
func (pr *PageRankDelta) Name() string { return "pagerank_async" }

// coeffs: pushes are slightly cheaper than the sync engine's gathers (no
// full-edge rescan), with the async engine's locking overhead folded into
// the serial fraction.
func (pr *PageRankDelta) coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    50, // per pushed residual
		BytesPerGather:  300,
		OpsPerApply:     100, // per vertex activation
		BytesPerApply:   300,
		OpsPerVertex:    25,
		BytesPerVertex:  16,
		SerialFrac:      0.03,
		StepOverheadOps: 1e3,
		AccumBytes:      12,
		ValueBytes:      12,
	}
}

// Run implements App. The Output is the []float64 rank vector, on the same
// scale as the synchronous PageRank (ranks sum to ~N).
func (pr *PageRankDelta) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	if cl.Size() != pl.M {
		return nil, fmt.Errorf("pagerank_async: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	out := g.BuildOutCSR()

	// Push-based solver for rank = (1-d)·1 + d·Aᵀ·rank: with rank starting
	// at 0 and residual at (1-d), pushing a vertex's residual into its rank
	// and d·r/L(v) to each out-neighbor preserves the invariant
	// solution = rank + propagation(residual), so rank converges to the
	// synchronous fixed point as residuals drain below Tolerance.
	rank := make([]float64, n)
	residual := make([]float64, n)
	for v := range residual {
		residual[v] = 1 - pr.Damping
	}

	account := engine.NewAccountant(cl, pr.coeffs())
	rounds := 0
	for ; rounds < pr.MaxRounds; rounds++ {
		counters := make([]engine.StepCounters, pl.M)
		anyActive := false
		for p := 0; p < pl.M; p++ {
			sc := &counters[p]
			sc.Vertices = float64(len(pl.MasterVerts[p]))
			for _, v := range pl.MasterVerts[p] {
				r := residual[v]
				if r < pr.Tolerance {
					continue
				}
				anyActive = true
				residual[v] = 0
				rank[v] += r
				sc.Applies++
				sc.UpdatesOut += float64(mirrorsOf(pl, v, p))
				neighbors := out.Neighbors(v)
				if len(neighbors) == 0 {
					continue
				}
				push := pr.Damping * r / float64(len(neighbors))
				sc.Gathers += float64(len(neighbors))
				if u := float64(len(neighbors)); u > sc.MaxUnit {
					sc.MaxUnit = u
				}
				for _, u := range neighbors {
					residual[u] += push
				}
			}
		}
		account.Async(counters)
		if !anyActive {
			break
		}
	}

	return account.Finish(pr.Name(), g.Name, rank), nil
}

// RankDistance returns the maximum absolute difference between two rank
// vectors, a convergence check used by tests and examples.
func RankDistance(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
