package apps

import (
	"math"
	"testing"
	"testing/quick"

	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

// propGraph builds a power-law graph from fuzz parameters.
func propGraph(t *testing.T, seed uint64, rawN, rawM uint16) *graph.Graph {
	t.Helper()
	n := 16 + int(rawN%400)
	m := 2*n + int(rawM)%(5*n)
	// The power-law fitter cannot hit every (n, avg degree) pair the fuzz
	// parameters propose; back the edge budget off until it can.
	for {
		g, err := gen.Generate(gen.Spec{
			Name: "prop", Vertices: int64(n), Edges: int64(m), Kind: gen.KindPowerLaw,
		}, seed)
		if err == nil {
			return g
		}
		if m <= 2*n {
			t.Fatal(err)
		}
		m -= n
	}
}

// TestPropertyPageRankInvariants: ranks are finite, at least (1-d), and the
// total mass never exceeds N (dangling mass can only leak, not appear).
func TestPropertyPageRankInvariants(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16) bool {
		g := propGraph(t, seed, rawN, rawM)
		res, err := NewPageRank().Run(engine.SingleMachine(g), singleCluster(t))
		if err != nil {
			return false
		}
		ranks := res.Output.([]float64)
		sum := 0.0
		for _, r := range ranks {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0.15-1e-12 {
				return false
			}
			sum += r
		}
		return sum <= float64(g.NumVertices)*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyComponentLabelsClosed: every edge's endpoints share a label
// and labels are fixed points (label of the label is itself).
func TestPropertyComponentLabelsClosed(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16) bool {
		g := propGraph(t, seed, rawN, rawM)
		res, err := NewConnectedComponents().Run(engine.SingleMachine(g), singleCluster(t))
		if err != nil {
			return false
		}
		labels := res.Output.(Components).Labels
		for _, e := range g.Edges {
			if labels[e.Src] != labels[e.Dst] {
				return false
			}
		}
		for v, l := range labels {
			if uint32(v) < l || labels[l] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyColoringProper: the coloring is always conflict-free and
// bounded by maxDegree+1.
func TestPropertyColoringProper(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16, machines uint8) bool {
		g := propGraph(t, seed, rawN, rawM)
		m := 1 + int(machines%4)
		res, err := NewColoring().Run(moduloPlacement(t, g, m), multiCluster(t, m))
		if err != nil {
			return false
		}
		out := res.Output.(ColoringResult)
		if ValidateColoring(g, out.Colors) != nil {
			return false
		}
		return out.NumColors <= g.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTriangleCountPlacementInvariant: the count never depends on
// the partitioning.
func TestPropertyTriangleCountPlacementInvariant(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16, machines uint8) bool {
		g := propGraph(t, seed, rawN, rawM)
		m := 1 + int(machines%5)
		a, err := NewTriangleCount().Run(engine.SingleMachine(g), singleCluster(t))
		if err != nil {
			return false
		}
		b, err := NewTriangleCount().Run(moduloPlacement(t, g, m), multiCluster(t, m))
		if err != nil {
			return false
		}
		return a.Output.(TriangleResult).Total == b.Output.(TriangleResult).Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertySSSPTriangleInequality: for every edge (u,v),
// dist(v) <= dist(u) + w(u,v) at the fixed point.
func TestPropertySSSPTriangleInequality(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16) bool {
		g := propGraph(t, seed, rawN, rawM)
		graph.AttachWeights(g, 1, 9, seed)
		res, err := NewSSSP().Run(engine.SingleMachine(g), singleCluster(t))
		if err != nil {
			return false
		}
		dist := res.Output.(SSSPResult).Dist
		for i, e := range g.Edges {
			w := float64(g.Weight(i))
			if dist[e.Dst] > dist[e.Src]+w+1e-9 {
				return false
			}
			if dist[e.Src] > dist[e.Dst]+w+1e-9 { // undirected relaxation
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyKCoreDegeneracyBound: every vertex's core number is at most
// its degree, and the max core is at most the max degree.
func TestPropertyKCoreDegeneracyBound(t *testing.T) {
	f := func(seed uint64, rawN, rawM uint16) bool {
		g := propGraph(t, seed, rawN, rawM)
		und := g.BuildUndirectedCSR()
		res, err := NewKCore().Run(engine.SingleMachine(g), singleCluster(t))
		if err != nil {
			return false
		}
		out := res.Output.(KCoreResult)
		for v, c := range out.Core {
			if int(c) > und.Degree(graph.VertexID(v)) {
				return false
			}
		}
		return out.MaxCore <= g.MaxDegree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
