package apps

import (
	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// BFS computes hop distances from a source vertex over the undirected
// structure. It is not one of the paper's four benchmarks; it demonstrates
// the claim that the profiling flow accepts any special-purpose application
// (Section III-B) and exercises frontier-style activation in the engine.
type BFS struct {
	// Source is the root vertex (validated against the graph at run time;
	// out-of-range roots return ErrSourceOutOfRange).
	Source graph.VertexID
	// MaxIters caps the superstep count.
	MaxIters int
}

// NewBFS returns a BFS from vertex 0.
func NewBFS() *BFS { return &BFS{Source: 0, MaxIters: 1000} }

// Name implements App.
func (b *BFS) Name() string { return "bfs" }

// Coeffs implements engine.Program: frontier expansion touches each edge at
// most a few times with integer work.
func (b *BFS) Coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    40,
		BytesPerGather:  240,
		OpsPerApply:     60,
		BytesPerApply:   200,
		OpsPerVertex:    25,
		BytesPerVertex:  16,
		SerialFrac:      0.03,
		StepOverheadOps: 2e3,
		AccumBytes:      12,
		ValueBytes:      12,
	}
}

// unreached marks vertices not yet visited.
const unreached = int32(-1)

// Direction implements engine.Program.
func (b *BFS) Direction() engine.Direction { return engine.GatherBoth }

// ApplyAll implements engine.Program.
func (b *BFS) ApplyAll() bool { return false }

// MaxSupersteps implements engine.Program.
func (b *BFS) MaxSupersteps() int { return b.MaxIters }

// Init implements engine.Program.
func (b *BFS) Init(v graph.VertexID, outDeg, inDeg int32) int32 {
	if v == b.Source {
		return 0
	}
	return unreached
}

// Gather implements engine.Program: a reached neighbor offers distance+1;
// an unreached one offers nothing (encoded as unreached).
func (b *BFS) Gather(src int32) int32 {
	if src == unreached {
		return unreached
	}
	return src + 1
}

// Sum implements engine.Program: keep the smallest real distance.
func (b *BFS) Sum(x, y int32) int32 {
	if x == unreached {
		return y
	}
	if y == unreached {
		return x
	}
	if x < y {
		return x
	}
	return y
}

// Apply implements engine.Program.
func (b *BFS) Apply(v graph.VertexID, old int32, acc int32, hasAcc bool, rt *engine.Runtime) (int32, bool) {
	if !hasAcc || acc == unreached {
		return old, false
	}
	if old == unreached || acc < old {
		return acc, true
	}
	return old, false
}

// Run implements App. The Output is the []int32 distance vector
// (-1 for unreachable vertices).
func (b *BFS) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return b.RunOpts(pl, cl, engine.Options{})
}

// RunOpts is Run with engine options attached (dynamic rebalancing, fault
// injection and checkpointing).
func (b *BFS) RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error) {
	if err := validateSource(b.Name(), pl.G.NumVertices, b.Source); err != nil {
		return nil, err
	}
	res, dists, err := engine.RunSyncOpts[int32, int32](b, pl, cl, opts)
	if err != nil {
		return nil, err
	}
	res.Output = dists
	return res, nil
}
