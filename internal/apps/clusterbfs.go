package apps

import (
	"math/bits"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// MaxBatchSources is the number of BFS roots one packed traversal carries:
// one bit lane per source in a uint64 word.
const MaxBatchSources = 64

// ClusterState is ClusterBFS's per-vertex state: a word of reach bits (bit j
// set once the vertex has been reached from source j) plus the hop distance
// per lane. Only the word moves through gather — the engine's accumulator is
// the bare uint64 — so gather bandwidth scales with batch size, not with the
// per-lane distance bookkeeping. The struct is plain old data, so it
// checkpoints and fuzzes through the engine's binary codec unchanged.
type ClusterState struct {
	// Seen has bit j set when the vertex is reachable from Sources[j].
	Seen uint64
	// Dist[j] is the hop distance from Sources[j], unreached (-1) until
	// bit j lands.
	Dist [MaxBatchSources]int32
}

// ClusterBFS runs a bit-parallel batched breadth-first search: up to 64
// sources traverse the undirected structure in one engine pass, packed one
// bit lane per source. Each superstep ORs neighbor reach words into every
// frontier vertex, so a single gather advances all lanes at once — the
// Cluster-BFS idea layered on the engine's hybrid sparse/dense frontier,
// whose per-superstep direction choice reacts to the union frontier (any
// lane active keeps the vertex hot). Distances per lane are bit-identical
// to running BFS once per source; the differential suite pins exactly that
// across all three engines.
type ClusterBFS struct {
	// Sources are the batched roots, one bit lane each (at most
	// MaxBatchSources, all distinct and in range — RunOpts rejects anything
	// else with a typed error).
	Sources []graph.VertexID
	// MaxIters caps the superstep count.
	MaxIters int
}

// NewClusterBFS returns a full 64-lane batch rooted at vertices 0..63.
func NewClusterBFS() *ClusterBFS {
	srcs := make([]graph.VertexID, MaxBatchSources)
	for i := range srcs {
		srcs[i] = graph.VertexID(i)
	}
	return &ClusterBFS{Sources: srcs, MaxIters: 1000}
}

// Name implements App.
func (c *ClusterBFS) Name() string { return "cluster_bfs" }

// Coeffs implements engine.Program. The gather side is cheaper per edge than
// scalar BFS — it moves one 8-byte word and ORs it — while apply pays for the
// popcount-and-scatter over fresh lanes and the 264-byte vertex state raises
// the per-update broadcast cost. This is the profile the proxy model has to
// predict for bitset-state applications.
func (c *ClusterBFS) Coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    30,
		BytesPerGather:  24,
		OpsPerApply:     120,
		BytesPerApply:   320,
		OpsPerVertex:    25,
		BytesPerVertex:  16,
		SerialFrac:      0.03,
		StepOverheadOps: 2e3,
		AccumBytes:      8,
		ValueBytes:      264,
	}
}

// Direction implements engine.Program: like BFS, the batch traverses the
// undirected structure.
func (c *ClusterBFS) Direction() engine.Direction { return engine.GatherBoth }

// ApplyAll implements engine.Program.
func (c *ClusterBFS) ApplyAll() bool { return false }

// MaxSupersteps implements engine.Program.
func (c *ClusterBFS) MaxSupersteps() int { return c.MaxIters }

// Init implements engine.Program: a source starts with its own lane bit set
// at distance 0, every other lane unreached.
func (c *ClusterBFS) Init(v graph.VertexID, outDeg, inDeg int32) ClusterState {
	var st ClusterState
	for j := range st.Dist {
		st.Dist[j] = unreached
	}
	for j, s := range c.Sources {
		if j >= MaxBatchSources {
			break
		}
		if s == v {
			st.Seen |= 1 << uint(j)
			st.Dist[j] = 0
		}
	}
	return st
}

// Gather implements engine.Program: a neighbor offers its whole reach word.
func (c *ClusterBFS) Gather(src ClusterState) uint64 { return src.Seen }

// Sum implements engine.Program: bitwise OR — exactly associative and
// commutative, so all three engines agree to the last bit even when sparse
// supersteps re-associate the accumulation order.
func (c *ClusterBFS) Sum(a, b uint64) uint64 { return a | b }

// Apply implements engine.Program: lanes arriving for the first time stamp
// the current hop distance; a vertex signals its neighbors only when at
// least one fresh lane landed, exactly the per-source frontier rule of
// scalar BFS, folded over 64 lanes with one AND-NOT.
func (c *ClusterBFS) Apply(v graph.VertexID, old ClusterState, acc uint64, hasAcc bool, rt *engine.Runtime) (ClusterState, bool) {
	if !hasAcc {
		return old, false
	}
	fresh := acc &^ old.Seen
	if fresh == 0 {
		return old, false
	}
	old.Seen |= fresh
	d := int32(rt.Step) + 1
	for m := fresh; m != 0; m &= m - 1 {
		old.Dist[bits.TrailingZeros64(m)] = d
	}
	return old, true
}

// ClusterLabels is ClusterBFS's output: the packed per-vertex reach words
// and per-lane distances, the label set both batch workloads (the landmark
// distance oracle and k-seed reachability) read their answers from.
type ClusterLabels struct {
	// Sources maps bit lane j to its root vertex.
	Sources []graph.VertexID
	// States holds every vertex's packed state, indexed by vertex ID.
	States []ClusterState
}

// K returns the batch width (number of lanes in use).
func (l *ClusterLabels) K() int { return len(l.Sources) }

// Reached reports whether vertex v was reached from source lane j.
func (l *ClusterLabels) Reached(v graph.VertexID, j int) bool {
	return l.States[v].Seen&(1<<uint(j)) != 0
}

// Dist returns the hop distance from source lane j to vertex v, or -1 when v
// is unreachable from that root.
func (l *ClusterLabels) Dist(v graph.VertexID, j int) int32 { return l.States[v].Dist[j] }

// ReachMask returns vertex v's packed reach word.
func (l *ClusterLabels) ReachMask(v graph.VertexID) uint64 { return l.States[v].Seen }

// Run implements App. The Output is a *ClusterLabels.
func (c *ClusterBFS) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return c.RunOpts(pl, cl, engine.Options{})
}

// RunOpts is Run with engine options attached (dynamic rebalancing, fault
// injection and checkpointing). The source set is validated up front: empty,
// oversized, duplicated or out-of-range source sets return a typed error
// before the engine starts.
func (c *ClusterBFS) RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error) {
	if err := validateSources(c.Name(), pl.G.NumVertices, c.Sources, MaxBatchSources); err != nil {
		return nil, err
	}
	res, states, err := engine.RunSyncOpts[ClusterState, uint64](c, pl, cl, opts)
	if err != nil {
		return nil, err
	}
	res.Output = &ClusterLabels{Sources: append([]graph.VertexID(nil), c.Sources...), States: states}
	return res, nil
}
