package apps

import (
	"math"
	"testing"

	"proxygraph/internal/cluster"
	"proxygraph/internal/dynamic"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

// This file is the cross-engine equivalence suite ISSUE'd alongside the CSR
// engine rewrite: six applications run through RunSyncReference (the original
// edge-list engine kept as executable specification), RunSync (machine-local
// CSR blocks + hybrid frontier) and RunSyncParallel (destination sharding),
// and every run must produce byte-identical simulation accounting. Vertex
// values must match exactly for min/max/integer programs and within 1e-12 for
// float sums, which may re-associate on sparse supersteps.

// equivGraph is a power-law graph big enough that frontier programs pass
// through both dense and sparse supersteps.
func equivGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Spec{
		Name: "equiv", Vertices: 1500, Edges: 6000, Kind: gen.KindPowerLaw,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// heteroCluster mixes machine types so per-machine times differ and any
// misattributed counter shifts the makespan.
func heteroCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	names := []string{"c4.xlarge", "c4.2xlarge", "c4.8xlarge", "c4.xlarge"}
	machines := make([]cluster.Machine, len(names))
	for i, n := range names {
		m, ok := cluster.ByName(n)
		if !ok {
			t.Fatalf("unknown machine %q", n)
		}
		machines[i] = m
	}
	cl, err := cluster.New(machines...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// sameAccounting asserts bitwise equality of everything the simulation
// charges: no tolerances, the engines must agree to the last bit.
func sameAccounting(t *testing.T, label string, a, b *engine.Result) {
	t.Helper()
	if a.SimSeconds != b.SimSeconds {
		t.Errorf("%s: SimSeconds %v != %v", label, a.SimSeconds, b.SimSeconds)
	}
	if a.Supersteps != b.Supersteps {
		t.Errorf("%s: Supersteps %d != %d", label, a.Supersteps, b.Supersteps)
	}
	if a.Gathers != b.Gathers {
		t.Errorf("%s: Gathers %v != %v", label, a.Gathers, b.Gathers)
	}
	if a.EnergyJoules != b.EnergyJoules {
		t.Errorf("%s: EnergyJoules %v != %v", label, a.EnergyJoules, b.EnergyJoules)
	}
	for p := range a.BusySeconds {
		if a.BusySeconds[p] != b.BusySeconds[p] {
			t.Errorf("%s: machine %d BusySeconds %v != %v", label, p, a.BusySeconds[p], b.BusySeconds[p])
		}
		if a.CommBytes[p] != b.CommBytes[p] {
			t.Errorf("%s: machine %d CommBytes %v != %v", label, p, a.CommBytes[p], b.CommBytes[p])
		}
	}
	if len(a.Trace) != len(b.Trace) {
		t.Errorf("%s: trace length %d != %d", label, len(a.Trace), len(b.Trace))
		return
	}
	for i := range a.Trace {
		if a.Trace[i].Barrier != b.Trace[i].Barrier {
			t.Errorf("%s: step %d barrier %v != %v", label, i, a.Trace[i].Barrier, b.Trace[i].Barrier)
		}
	}
}

// checkEquivalence runs prog through all three engines and compares
// accounting bitwise and values with eq.
func checkEquivalence[V, A any](t *testing.T, name string, prog engine.Program[V, A], pl *engine.Placement, cl *cluster.Cluster, eq func(a, b V) bool) {
	t.Helper()

	refRes, refVals, err := engine.RunSyncReference[V, A](prog, pl, cl)
	if err != nil {
		t.Fatalf("%s reference: %v", name, err)
	}
	csrRes, csrVals, err := engine.RunSync[V, A](prog, pl, cl)
	if err != nil {
		t.Fatalf("%s csr: %v", name, err)
	}
	parRes, parVals, err := engine.RunSyncParallel[V, A](prog, pl, cl)
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}

	sameAccounting(t, name+"/csr", refRes, csrRes)
	sameAccounting(t, name+"/parallel", refRes, parRes)

	for v := range refVals {
		if !eq(refVals[v], csrVals[v]) {
			t.Fatalf("%s/csr: vertex %d value %v != reference %v", name, v, csrVals[v], refVals[v])
		}
		if !eq(refVals[v], parVals[v]) {
			t.Fatalf("%s/parallel: vertex %d value %v != reference %v", name, v, parVals[v], refVals[v])
		}
	}
}

// exact is the comparator for min/max/integer programs.
func exact[V comparable](a, b V) bool { return a == b }

// floatClose allows 1e-12 relative drift from sparse-superstep
// re-association of float sums.
func floatClose(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// hopsProgram is a test-local SSSP over unit weights: float64 distances,
// gather src+1, Sum = min. Min is exactly associative even on floats, so all
// three engines must agree bitwise; it exercises the GatherIn + frontier
// combination none of the shipped apps cover.
type hopsProgram struct{}

func (hopsProgram) Name() string                { return "hops" }
func (hopsProgram) Coeffs() engine.CostCoeffs   { return NewBFS().Coeffs() }
func (hopsProgram) Direction() engine.Direction { return engine.GatherIn }
func (hopsProgram) ApplyAll() bool              { return false }
func (hopsProgram) MaxSupersteps() int          { return 500 }

func (hopsProgram) Init(v graph.VertexID, outDeg, inDeg int32) float64 {
	if v == 0 {
		return 0
	}
	return math.Inf(1)
}

func (hopsProgram) Gather(src float64) float64 { return src + 1 }
func (hopsProgram) Sum(a, b float64) float64   { return math.Min(a, b) }

func (hopsProgram) Apply(v graph.VertexID, old, acc float64, hasAcc bool, rt *engine.Runtime) (float64, bool) {
	if hasAcc && acc < old {
		return acc, true
	}
	return old, false
}

// coreState is cascadeProgram's vertex state: the residual degree and whether
// the vertex has been peeled.
type coreState struct {
	deg     int32
	removed bool
}

// cascadeProgram peels vertices of residual degree < K, a fixed-k slice of
// k-core decomposition. Integer sums keep it exact; removals cascade through
// shrinking frontiers, stressing the sparse path and the dirty-set reset.
type cascadeProgram struct{ k int32 }

func (cascadeProgram) Name() string                { return "core-cascade" }
func (cascadeProgram) Coeffs() engine.CostCoeffs   { return NewConnectedComponents().Coeffs() }
func (cascadeProgram) Direction() engine.Direction { return engine.GatherBoth }
func (cascadeProgram) ApplyAll() bool              { return false }
func (cascadeProgram) MaxSupersteps() int          { return 500 }

func (cascadeProgram) Init(v graph.VertexID, outDeg, inDeg int32) coreState {
	return coreState{deg: outDeg + inDeg}
}

// Gather: a neighbor that was just peeled contributes one lost degree.
func (cascadeProgram) Gather(src coreState) int32 {
	if src.removed {
		return 1
	}
	return 0
}

func (cascadeProgram) Sum(a, b int32) int32 { return a + b }

// Apply: only the transition into removal signals neighbors, so each peeled
// vertex is gathered from exactly once.
func (p cascadeProgram) Apply(v graph.VertexID, old coreState, acc int32, hasAcc bool, rt *engine.Runtime) (coreState, bool) {
	if old.removed {
		return old, false
	}
	if hasAcc {
		old.deg -= acc
	}
	if old.deg < p.k {
		old.removed = true
		return old, true
	}
	return old, false
}

func TestEngineEquivalenceSixApps(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)

	t.Run("pagerank", func(t *testing.T) {
		checkEquivalence[prState, float64](t, "pagerank", NewPageRank(), pl, cl,
			func(a, b prState) bool { return floatClose(a.rank, b.rank) && a.invOut == b.invOut })
	})
	t.Run("components", func(t *testing.T) {
		checkEquivalence[uint32, uint32](t, "components", NewConnectedComponents(), pl, cl, exact[uint32])
	})
	t.Run("bfs", func(t *testing.T) {
		checkEquivalence[int32, int32](t, "bfs", NewBFS(), pl, cl, exact[int32])
	})
	t.Run("hops", func(t *testing.T) {
		checkEquivalence[float64, float64](t, "hops", hopsProgram{}, pl, cl, exact[float64])
	})
	t.Run("core-cascade", func(t *testing.T) {
		checkEquivalence[coreState, int32](t, "core-cascade", cascadeProgram{k: 3}, pl, cl, exact[coreState])
	})
	t.Run("clusterbfs", func(t *testing.T) {
		// Word-valued vertex state: OR-accumulated reach bits are exactly
		// associative, so the packed batch must agree to the last bit.
		prog := &ClusterBFS{Sources: spreadSources(g.NumVertices, MaxBatchSources), MaxIters: 1000}
		checkEquivalence[ClusterState, uint64](t, "clusterbfs", prog, pl, cl, exact[ClusterState])
	})
}

// checkRebalancedEquivalence runs prog through all three engines with a fresh
// identically-seeded Migrator each, asserting bitwise-equal accounting and
// equal outputs. Migration decisions depend only on the per-step busy times,
// which the equivalence suite already proves bitwise identical, so every
// engine must fire the same migrations at the same barriers.
func checkRebalancedEquivalence[V, A any](t *testing.T, name string, prog engine.Program[V, A], pl *engine.Placement, cl *cluster.Cluster, eq func(a, b V) bool) {
	t.Helper()
	newMig := func() *dynamic.Migrator {
		mig := dynamic.NewMigrator(21)
		mig.Trigger = 1.05
		return mig
	}
	refMig := newMig()
	refRes, refVals, err := engine.RunSyncReferenceOpts[V, A](prog, pl, cl, engine.Options{Rebalancer: refMig})
	if err != nil {
		t.Fatalf("%s reference: %v", name, err)
	}
	csrMig := newMig()
	csrRes, csrVals, err := engine.RunSyncOpts[V, A](prog, pl, cl, engine.Options{Rebalancer: csrMig})
	if err != nil {
		t.Fatalf("%s csr: %v", name, err)
	}
	parMig := newMig()
	parRes, parVals, err := engine.RunSyncParallelOpts[V, A](prog, pl, cl, engine.Options{Rebalancer: parMig})
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}

	if refMig.Migrations == 0 {
		t.Fatalf("%s: migrator never fired on the heterogeneous cluster", name)
	}
	if csrMig.Migrations != refMig.Migrations || parMig.Migrations != refMig.Migrations {
		t.Fatalf("%s: migration counts diverge: ref=%d csr=%d parallel=%d",
			name, refMig.Migrations, csrMig.Migrations, parMig.Migrations)
	}
	if csrMig.EdgesMoved != refMig.EdgesMoved || parMig.EdgesMoved != refMig.EdgesMoved {
		t.Fatalf("%s: moved-edge counts diverge: ref=%d csr=%d parallel=%d",
			name, refMig.EdgesMoved, csrMig.EdgesMoved, parMig.EdgesMoved)
	}
	sameAccounting(t, name+"/rebalanced-csr", refRes, csrRes)
	sameAccounting(t, name+"/rebalanced-parallel", refRes, parRes)
	for v := range refVals {
		if !eq(refVals[v], csrVals[v]) {
			t.Fatalf("%s: csr value diverges at vertex %d", name, v)
		}
		if !eq(refVals[v], parVals[v]) {
			t.Fatalf("%s: parallel value diverges at vertex %d", name, v)
		}
	}
}

// TestEngineEquivalenceRebalanced proves RunSyncParallel's new Rebalancer
// support (and the reference engine's) matches the CSR engine exactly:
// dynamic migration keeps all three engines on the same trajectory.
func TestEngineEquivalenceRebalanced(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	// The equivalence graph is too sparse here: network time dominates and is
	// identical per machine, so the migrator stays quiet. A denser graph on a
	// compute-skewed cluster (mixed core counts → mixed memory bandwidth)
	// produces the imbalance the migrator exists to fix.
	g, err := gen.Generate(gen.Spec{
		Name: "equiv-rebalance", Vertices: 10000, Edges: 120000, Kind: gen.KindPowerLaw,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(
		cluster.LocalXeon("xeon-4c", 4, 2.5),
		cluster.LocalXeon("xeon-4c", 4, 2.5),
		cluster.LocalXeon("xeon-12c", 12, 2.5),
		cluster.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	pl := moduloPlacement(t, g, 4)

	t.Run("pagerank", func(t *testing.T) {
		checkRebalancedEquivalence[prState, float64](t, "pagerank", NewPageRank(), pl, cl,
			func(a, b prState) bool { return floatClose(a.rank, b.rank) && a.invOut == b.invOut })
	})
	t.Run("components", func(t *testing.T) {
		checkRebalancedEquivalence[uint32, uint32](t, "components", NewConnectedComponents(), pl, cl, exact[uint32])
	})
}
