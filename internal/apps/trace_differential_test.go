package apps

import (
	"bytes"
	"slices"
	"testing"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/trace"
)

// This file extends the equivalence and chaos suites to the structured event
// layer: the three engines must emit *identical* event sequences — the same
// barriers, the same per-machine phase times, the same frontier sizes, the
// same fault-protocol decisions — for every program, with and without faults.
// trace.Event is comparable, so identity is slices.Equal, and on top of it
// the Chrome trace JSON and Prometheus expositions must be byte-identical
// (they are pure functions of the event stream).

// tracedRun executes prog on one engine with a recorder attached and returns
// the event stream plus the run result.
func tracedRun[V, A any](t *testing.T, which string, prog engine.Program[V, A], pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) ([]trace.Event, *engine.Result) {
	t.Helper()
	rec := trace.NewRecorder()
	opts.Trace = rec
	var (
		res *engine.Result
		err error
	)
	switch which {
	case "reference":
		res, _, err = engine.RunSyncReferenceOpts[V, A](prog, pl, cl, opts)
	case "csr":
		res, _, err = engine.RunSyncOpts[V, A](prog, pl, cl, opts)
	case "parallel":
		res, _, err = engine.RunSyncParallelOpts[V, A](prog, pl, cl, opts)
	default:
		t.Fatalf("unknown engine %q", which)
	}
	if err != nil {
		t.Fatalf("%s: %v", which, err)
	}
	return rec.Events, res
}

// exporters renders the stream both ways; byte equality of these across
// engines is what -trace-out users rely on.
func exporters(t *testing.T, events []trace.Event) (chrome, prom []byte) {
	t.Helper()
	chrome, err := trace.ChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	reg := trace.NewRegistry()
	trace.Observe(reg, events)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return chrome, buf.Bytes()
}

// firstDiff pinpoints where two event streams diverge for the failure report.
func firstDiff(a, b []trace.Event) (int, trace.Event, trace.Event) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i, a[i], b[i]
		}
	}
	return n, trace.Event{}, trace.Event{}
}

func checkTraceDifferential[V, A any](t *testing.T, name string, prog engine.Program[V, A], pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) {
	t.Helper()
	refEvents, refRes := tracedRun[V, A](t, "reference", prog, pl, cl, opts)
	csrEvents, _ := tracedRun[V, A](t, "csr", prog, pl, cl, opts)
	parEvents, _ := tracedRun[V, A](t, "parallel", prog, pl, cl, opts)

	if len(refEvents) == 0 {
		t.Fatalf("%s: no events recorded", name)
	}
	for other, events := range map[string][]trace.Event{"csr": csrEvents, "parallel": parEvents} {
		if !slices.Equal(refEvents, events) {
			i, a, b := firstDiff(refEvents, events)
			t.Errorf("%s: reference and %s streams differ (len %d vs %d) at event %d:\nreference: %+v\n%s: %+v",
				name, other, len(refEvents), len(events), i, a, other, b)
		}
	}
	if t.Failed() {
		return
	}

	refChrome, refProm := exporters(t, refEvents)
	for other, events := range map[string][]trace.Event{"csr": csrEvents, "parallel": parEvents} {
		chrome, prom := exporters(t, events)
		if !bytes.Equal(refChrome, chrome) {
			t.Errorf("%s: Chrome trace JSON differs between reference and %s", name, other)
		}
		if !bytes.Equal(refProm, prom) {
			t.Errorf("%s: Prometheus exposition differs between reference and %s", name, other)
		}
	}

	// The stream must carry the whole run: one step-begin per executed
	// superstep (replays included) and per-machine coverage every step.
	begins, machineSteps := 0, 0
	for _, e := range refEvents {
		switch e.Kind {
		case trace.KindStepBegin:
			begins++
		case trace.KindMachineStep:
			machineSteps++
		}
	}
	if begins != refRes.Supersteps {
		t.Errorf("%s: %d step-begin events for %d charged supersteps", name, begins, refRes.Supersteps)
	}
	if machineSteps == 0 {
		t.Errorf("%s: no machine-step events", name)
	}

	// The summary's clock must agree exactly with the accountant's.
	sum := trace.Summarize(refEvents)
	if sum.MakespanSeconds != refRes.SimSeconds {
		t.Errorf("%s: summary makespan %v != result %v", name, sum.MakespanSeconds, refRes.SimSeconds)
	}
	if sum.Checkpoints != refRes.Checkpoints || sum.Recoveries != refRes.Recoveries {
		t.Errorf("%s: summary protocol counts %d/%d, result %d/%d",
			name, sum.Checkpoints, sum.Recoveries, refRes.Checkpoints, refRes.Recoveries)
	}
}

func TestTraceDifferentialSixApps(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)

	chaos := engine.Options{Fault: &engine.FaultConfig{
		Injector:        chaosSchedule(),
		CheckpointEvery: 2,
		Policy:          engine.RecoverCheckpoint,
	}}

	type variant struct {
		name string
		opts engine.Options
	}
	variants := []variant{{"clean", engine.Options{}}, {"chaos", chaos}}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Run("pagerank", func(t *testing.T) {
				checkTraceDifferential[prState, float64](t, "pagerank", NewPageRank(), pl, cl, v.opts)
			})
			t.Run("components", func(t *testing.T) {
				checkTraceDifferential[uint32, uint32](t, "components", NewConnectedComponents(), pl, cl, v.opts)
			})
			t.Run("bfs", func(t *testing.T) {
				checkTraceDifferential[int32, int32](t, "bfs", NewBFS(), pl, cl, v.opts)
			})
			t.Run("hops", func(t *testing.T) {
				checkTraceDifferential[float64, float64](t, "hops", hopsProgram{}, pl, cl, v.opts)
			})
			t.Run("core-cascade", func(t *testing.T) {
				checkTraceDifferential[coreState, int32](t, "core-cascade", cascadeProgram{k: 3}, pl, cl, v.opts)
			})
			t.Run("clusterbfs", func(t *testing.T) {
				prog := &ClusterBFS{Sources: spreadSources(g.NumVertices, MaxBatchSources), MaxIters: 1000}
				checkTraceDifferential[ClusterState, uint64](t, "clusterbfs", prog, pl, cl, v.opts)
			})
		})
	}
}

// TestTraceChaosEventCoverage asserts the chaos stream actually exercises the
// fault-protocol event kinds the differential test is comparing.
func TestTraceChaosEventCoverage(t *testing.T) {
	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)
	opts := engine.Options{Fault: &engine.FaultConfig{
		Injector:        chaosSchedule(),
		CheckpointEvery: 2,
		Policy:          engine.RecoverCheckpoint,
	}}
	events, _ := tracedRun[prState, float64](t, "csr", NewPageRank(), pl, cl, opts)
	seen := map[trace.Kind]bool{}
	for _, e := range events {
		seen[e.Kind] = true
	}
	for _, k := range []trace.Kind{
		trace.KindStepBegin, trace.KindMachineStep, trace.KindStepEnd, trace.KindStall,
		trace.KindFault, trace.KindCheckpoint, trace.KindCrash, trace.KindRecovery,
	} {
		if !seen[k] {
			t.Errorf("chaos run never emitted %v", k)
		}
	}
}

// TestTraceNilCollectorIdentical pins the zero-behaviour-change guarantee: a
// traced run and an untraced run charge bit-identical accounting.
func TestTraceNilCollectorIdentical(t *testing.T) {
	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)
	_, traced := tracedRun[prState, float64](t, "csr", NewPageRank(), pl, cl, engine.Options{})
	plain, _, err := engine.RunSync[prState, float64](NewPageRank(), pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	sameAccounting(t, "traced-vs-plain", plain, traced)
}

// TestTraceColoringAsync covers the async app: Coloring's rounds must appear
// as async events whose folded makespan matches the result.
func TestTraceColoringAsync(t *testing.T) {
	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)
	rec := trace.NewRecorder()
	col := NewColoring()
	col.Trace = rec
	res, err := col.Run(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(rec.Events)
	if sum.AsyncRounds == 0 {
		t.Fatal("coloring emitted no async rounds")
	}
	if sum.SyncSteps != 0 {
		t.Errorf("coloring emitted %d sync steps", sum.SyncSteps)
	}
	if sum.MakespanSeconds != res.SimSeconds {
		t.Errorf("summary makespan %v != result %v", sum.MakespanSeconds, res.SimSeconds)
	}
	plain, err := NewColoring().Run(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	sameAccounting(t, "coloring-traced-vs-plain", plain, res)
}
