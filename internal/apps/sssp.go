package apps

import (
	"fmt"
	"math"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// SSSP computes single-source shortest paths over weighted edges with
// synchronous Bellman–Ford-style relaxation, the frontier pattern of
// PowerGraph's sssp toolkit. It is an extension beyond the paper's four
// benchmarks: a weighted application demonstrating that the profiling flow
// accepts arbitrary vertex programs (Section III-B). Unweighted graphs relax
// with unit weights, making SSSP coincide with BFS distances.
type SSSP struct {
	// Source is the root vertex.
	Source graph.VertexID
	// Undirected relaxes both edge directions when true.
	Undirected bool
	// MaxIters bounds the relaxation rounds.
	MaxIters int
}

// NewSSSP returns an undirected SSSP from vertex 0.
func NewSSSP() *SSSP { return &SSSP{Source: 0, Undirected: true, MaxIters: 10000} }

// Name implements App.
func (s *SSSP) Name() string { return "sssp" }

// coeffs: relaxations read a distance and a weight per edge and
// conditionally write — comparable to connected components with an extra
// float compare.
func (s *SSSP) coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    80,
		BytesPerGather:  130,
		OpsPerApply:     80,
		BytesPerApply:   240,
		OpsPerVertex:    25,
		BytesPerVertex:  16,
		SerialFrac:      0.03,
		StepOverheadOps: 2e3,
		AccumBytes:      16,
		ValueBytes:      16,
	}
}

// SSSPResult is the application output.
type SSSPResult struct {
	// Dist holds the shortest distance per vertex (+Inf when unreachable).
	Dist []float64
	// Reached counts vertices with finite distance.
	Reached int
	// Rounds is the number of relaxation supersteps.
	Rounds int
}

// Run implements App.
func (s *SSSP) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	if cl.Size() != pl.M {
		return nil, fmt.Errorf("sssp: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	if err := validateSource(s.Name(), n, s.Source); err != nil {
		return nil, err
	}

	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[s.Source] = 0
	active := make([]bool, n)
	nextActive := make([]bool, n)
	active[s.Source] = true

	// touched stamps (machine, vertex) partial sends per round.
	touched := make([]int64, n)
	for i := range touched {
		touched[i] = -1
	}

	account := engine.NewAccountant(cl, s.coeffs())
	rounds := 0
	for ; rounds < s.MaxIters; rounds++ {
		counters := make([]engine.StepCounters, pl.M)
		anyChange := false
		relax := func(sc *engine.StepCounters, p int, stamp int64, from, to graph.VertexID, w float64) {
			sc.Gathers++
			if nd := dist[from] + w; nd < dist[to] {
				dist[to] = nd
				nextActive[to] = true
				anyChange = true
				sc.Applies++
				sc.UpdatesOut += float64(mirrorsOf(pl, to, p))
			}
			if touched[to] != stamp {
				touched[to] = stamp
				if pl.Master[to] != int32(p) {
					sc.PartialsOut++
				}
			}
		}
		for p := 0; p < pl.M; p++ {
			sc := &counters[p]
			sc.Vertices = float64(len(pl.MasterVerts[p]))
			stamp := int64(rounds)*int64(pl.M) + int64(p) + 1
			for _, ei := range pl.LocalEdges[p] {
				e := g.Edges[ei]
				w := float64(g.Weight(int(ei)))
				if active[e.Src] {
					relax(sc, p, stamp, e.Src, e.Dst, w)
				}
				if s.Undirected && active[e.Dst] {
					relax(sc, p, stamp, e.Dst, e.Src, w)
				}
			}
		}
		account.Superstep(counters)
		if !anyChange {
			rounds++
			break
		}
		active, nextActive = nextActive, active
		clear(nextActive)
	}

	reached := 0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reached++
		}
	}
	out := SSSPResult{Dist: dist, Reached: reached, Rounds: rounds}
	return account.Finish(s.Name(), g.Name, out), nil
}
