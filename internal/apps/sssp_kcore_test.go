package apps

import (
	"container/heap"
	"math"
	"testing"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// --- SSSP ---

// refDijkstra computes undirected shortest paths with a binary heap.
func refDijkstra(g *graph.Graph, source graph.VertexID) []float64 {
	type adj struct {
		to graph.VertexID
		w  float64
	}
	adjacency := make([][]adj, g.NumVertices)
	for i, e := range g.Edges {
		w := float64(g.Weight(i))
		adjacency[e.Src] = append(adjacency[e.Src], adj{e.Dst, w})
		adjacency[e.Dst] = append(adjacency[e.Dst], adj{e.Src, w})
	}
	dist := make([]float64, g.NumVertices)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	pq := &distHeap{{int(source), 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		for _, a := range adjacency[item.v] {
			if nd := item.d + a.w; nd < dist[a.to] {
				dist[a.to] = nd
				heap.Push(pq, distItem{int(a.to), nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int
	d float64
}
type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func TestSSSPMatchesDijkstra(t *testing.T) {
	for seed := uint64(60); seed < 63; seed++ {
		g := testGraph(t, seed, 300, 1800)
		graph.AttachWeights(g, 1, 10, seed)
		res, err := NewSSSP().Run(moduloPlacement(t, g, 3), multiCluster(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Output.(SSSPResult).Dist
		want := refDijkstra(g, 0)
		for v := range want {
			if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
				t.Fatalf("seed %d vertex %d: reachability differs", seed, v)
			}
			if !math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("seed %d vertex %d: dist %v, want %v", seed, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPUnweightedEqualsBFS(t *testing.T) {
	g := testGraph(t, 64, 400, 1600)
	ssspRes, err := NewSSSP().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	bfsRes, err := NewBFS().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	dist := ssspRes.Output.(SSSPResult).Dist
	hops := bfsRes.Output.([]int32)
	for v := range dist {
		switch {
		case hops[v] == -1:
			if !math.IsInf(dist[v], 1) {
				t.Fatalf("vertex %d: BFS unreachable but SSSP %v", v, dist[v])
			}
		case dist[v] != float64(hops[v]):
			t.Fatalf("vertex %d: sssp %v != bfs %d on unit weights", v, dist[v], hops[v])
		}
	}
}

func TestSSSPKnownPath(t *testing.T) {
	// 0 -2.0- 1 -3.0- 2, plus direct 0 -10.0- 2: shortest to 2 is 5.
	g := &graph.Graph{NumVertices: 3, Edges: []graph.Edge{E(0, 1), E(1, 2), E(0, 2)}}
	g.Weights = []float32{2, 3, 10}
	res, err := NewSSSP().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	dist := res.Output.(SSSPResult).Dist
	if dist[2] != 5 {
		t.Errorf("dist[2] = %v, want 5 via the two-hop path", dist[2])
	}
}

func TestSSSPBadSource(t *testing.T) {
	g := testGraph(t, 65, 50, 200)
	s := NewSSSP()
	s.Source = 1000
	if _, err := s.Run(engine.SingleMachine(g), singleCluster(t)); err == nil {
		t.Error("out-of-range source should error")
	}
}

func TestSSSPInvariantAcrossPlacements(t *testing.T) {
	g := testGraph(t, 66, 300, 1500)
	graph.AttachWeights(g, 1, 4, 66)
	res1, err := NewSSSP().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	res4, err := NewSSSP().Run(moduloPlacement(t, g, 4), multiCluster(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	d1 := res1.Output.(SSSPResult).Dist
	d4 := res4.Output.(SSSPResult).Dist
	for v := range d1 {
		if d1[v] != d4[v] {
			t.Fatalf("vertex %d: %v vs %v across placements", v, d1[v], d4[v])
		}
	}
}

// --- KCore ---

// refCoreNumbers peels sequentially with a bucket queue.
func refCoreNumbers(g *graph.Graph) []int32 {
	und := g.BuildUndirectedCSR()
	n := g.NumVertices
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(und.Degree(graph.VertexID(v)))
	}
	core := make([]int32, n)
	removed := make([]bool, n)
	for remaining := n; remaining > 0; {
		// Find the minimum remaining degree and peel one such vertex.
		minDeg, minV := int32(1<<30), -1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < minDeg {
				minDeg, minV = deg[v], v
			}
		}
		removed[minV] = true
		core[minV] = minDeg
		remaining--
		for _, u := range und.Neighbors(graph.VertexID(minV)) {
			if !removed[u] && deg[u] > minDeg {
				deg[u]--
			}
		}
	}
	return core
}

func TestKCoreMatchesReference(t *testing.T) {
	for seed := uint64(70); seed < 73; seed++ {
		g := testGraph(t, seed, 150, 900)
		res, err := NewKCore().Run(moduloPlacement(t, g, 2), multiCluster(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Output.(KCoreResult).Core
		want := refCoreNumbers(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d vertex %d: core %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestKCoreKnownGraphs(t *testing.T) {
	// K5: every vertex has core number 4.
	k5 := &graph.Graph{NumVertices: 5}
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			k5.Edges = append(k5.Edges, E(u, v))
		}
	}
	res, err := NewKCore().Run(engine.SingleMachine(k5), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.(KCoreResult)
	if out.MaxCore != 4 {
		t.Errorf("K5 max core = %d, want 4", out.MaxCore)
	}
	// A path: every vertex is in the 1-core only.
	path := &graph.Graph{NumVertices: 4, Edges: []graph.Edge{E(0, 1), E(1, 2), E(2, 3)}}
	res, err = NewKCore().Run(engine.SingleMachine(path), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	out = res.Output.(KCoreResult)
	if out.MaxCore != 1 {
		t.Errorf("path max core = %d, want 1", out.MaxCore)
	}
}

func TestKCoreMaxKCap(t *testing.T) {
	g := testGraph(t, 74, 500, 5000)
	kc := &KCore{MaxK: 2}
	res, err := kc.Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.(KCoreResult)
	if out.MaxCore > 2 {
		t.Errorf("capped decomposition reports core %d > cap", out.MaxCore)
	}
}

func TestExtensionsRegistered(t *testing.T) {
	if len(WithExtensions()) != 11 {
		t.Fatalf("extensions registry has %d apps, want 11", len(WithExtensions()))
	}
	for _, name := range []string{"sssp", "kcore", "pagerank_async", "cluster_bfs", "landmark_oracle", "kseed_reach"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}
