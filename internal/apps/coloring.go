package apps

import (
	"fmt"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
	"proxygraph/internal/trace"
)

// Coloring greedily colors the graph so no two adjacent vertices share a
// color and reports the number of colors used, the PowerGraph application the
// paper benchmarks. It executes asynchronously (no global barrier — the
// property the paper cites for Coloring's smaller balancing benefit): each
// round, every machine sweeps its master vertices, resolving conflicts by a
// random-priority rule (the lower-priority endpoint of a conflicting edge
// picks the smallest color unused in its neighborhood), which terminates
// because the highest-priority vertex of any conflict never moves.
type Coloring struct {
	// MaxRounds is a safety bound on conflict-resolution sweeps.
	MaxRounds int
	// Seed drives the random priorities.
	Seed uint64
	// Trace, when non-nil, receives structured execution events. Coloring
	// does not implement OptsRunner (its async loop has no fault barriers),
	// so the collector is attached here instead of via engine.Options.
	Trace trace.Collector
}

// NewColoring returns the default configuration.
func NewColoring() *Coloring { return &Coloring{MaxRounds: 64, Seed: 1} }

// Name implements App.
func (c *Coloring) Name() string { return "coloring" }

// coeffs: neighborhood scans walk adjacency lists (streaming) but consult
// each neighbor's current color through a random index.
func (c *Coloring) coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    90,  // per neighbor probe
		BytesPerGather:  140, // neighbor id (stream) + color load (random)
		OpsPerApply:     300, // recolor: min-free-color scan bookkeeping
		BytesPerApply:   480,
		OpsPerVertex:    25,
		BytesPerVertex:  16,
		SerialFrac:      0.05,
		StepOverheadOps: 1e3,
		AccumBytes:      0,
		ValueBytes:      8, // color update pushed to mirrors
	}
}

// ColoringResult is the application output.
type ColoringResult struct {
	// Colors assigns each vertex its color.
	Colors []int32
	// NumColors is the total number of colors in use.
	NumColors int
	// Rounds is how many asynchronous sweeps ran.
	Rounds int
}

// Run implements App.
func (c *Coloring) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	if cl.Size() != pl.M {
		return nil, fmt.Errorf("coloring: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	und := g.BuildUndirectedCSR()

	colors := make([]int32, n)
	priority := make([]uint64, n)
	for v := range priority {
		priority[v] = rng.Hash2(c.Seed, uint64(v))
	}

	// mark[color] == stamp marks colors seen in the current neighborhood.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := und.Degree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	mark := make([]int64, maxDeg+2)
	for i := range mark {
		mark[i] = -1
	}
	stamp := int64(0)

	account := engine.NewAccountant(cl, c.coeffs())
	account.SetCollector(c.Trace)
	rounds := 0
	for ; rounds < c.MaxRounds; rounds++ {
		account.StepBegin(rounds, n, "async")
		counters := make([]engine.StepCounters, pl.M)
		changed := false
		for p := 0; p < pl.M; p++ {
			sc := &counters[p]
			sc.Vertices = float64(len(pl.MasterVerts[p]))
			for _, v := range pl.MasterVerts[p] {
				neighbors := und.Neighbors(v)
				sc.Gathers += float64(len(neighbors))
				if u := float64(len(neighbors)); u > sc.MaxUnit {
					sc.MaxUnit = u // one neighborhood scan is sequential
				}
				conflict := false
				for _, u := range neighbors {
					if colors[u] == colors[v] && losesTo(priority, v, u) {
						conflict = true
						break
					}
				}
				if !conflict {
					continue
				}
				// Recolor v with the smallest color not used by neighbors.
				stamp++
				for _, u := range neighbors {
					if int(colors[u]) < len(mark) {
						mark[colors[u]] = stamp
					}
				}
				next := int32(0)
				for int(next) < len(mark) && mark[next] == stamp {
					next++
				}
				colors[v] = next
				changed = true
				sc.Applies++
				sc.UpdatesOut += float64(mirrorsOf(pl, v, p))
			}
		}
		account.Async(counters)
		if !changed {
			rounds++
			break
		}
	}

	numColors := 0
	for _, col := range colors {
		if int(col)+1 > numColors {
			numColors = int(col) + 1
		}
	}
	out := ColoringResult{Colors: colors, NumColors: numColors, Rounds: rounds}
	return account.Finish(c.Name(), g.Name, out), nil
}

// losesTo reports whether v must yield to u in a color conflict.
func losesTo(priority []uint64, v, u graph.VertexID) bool {
	pv, pu := priority[v], priority[u]
	if pv != pu {
		return pv < pu
	}
	return v < u
}

// mirrorsOf counts the replicas of v other than the one on machine p.
func mirrorsOf(pl *engine.Placement, v graph.VertexID, p int) int {
	mask := pl.ReplicaMask[v]
	count := 0
	for mask != 0 {
		mask &= mask - 1
		count++
	}
	if pl.ReplicaMask[v]&(1<<uint(p)) != 0 {
		count--
	}
	return count
}

// ValidateColoring confirms no edge connects two same-colored vertices.
func ValidateColoring(g *graph.Graph, colors []int32) error {
	for i, e := range g.Edges {
		if colors[e.Src] == colors[e.Dst] {
			return fmt.Errorf("coloring: edge %d (%d-%d) endpoints share color %d", i, e.Src, e.Dst, colors[e.Src])
		}
	}
	return nil
}
