// Package apps implements the paper's four MLDM graph applications —
// PageRank, Coloring, Connected Components and Triangle Count (Section IV) —
// plus a BFS extension demonstrating that "any special-purpose application
// can be sampled and fit into our flow" (Section III-B).
//
// PageRank and Connected Components run on the synchronous GAS engine;
// Coloring runs asynchronously (as in PowerGraph, which the paper notes
// limits its balancing benefit); Triangle Count is a one-shot edge-parallel
// computation. All four compute real outputs: the simulated cluster affects
// time and energy, never results.
package apps

import (
	"fmt"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
)

// App is one runnable graph application.
type App interface {
	// Name is the application's label in CCR pools and experiment tables.
	Name() string
	// Run executes the application over a placement on a cluster.
	Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error)
}

// OptsRunner is implemented by applications whose engine run accepts
// engine.Options — dynamic rebalancing and fault injection. The synchronous
// GAS applications (PageRank, Connected Components, BFS) qualify; the
// asynchronous and one-shot applications do not.
type OptsRunner interface {
	App
	// RunOpts is Run with engine options attached.
	RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error)
}

// All returns the paper's four applications with default parameters, in the
// order the paper's figures list them.
func All() []App {
	return []App{
		NewPageRank(),
		NewColoring(),
		NewConnectedComponents(),
		NewTriangleCount(),
	}
}

// WithExtensions returns All plus the applications beyond the paper's set
// (BFS, weighted SSSP, k-core decomposition, asynchronous delta PageRank, and
// the bit-parallel batched-traversal family: ClusterBFS, the landmark
// distance oracle and k-seed reachability).
func WithExtensions() []App {
	return append(All(),
		NewBFS(), NewSSSP(), NewKCore(), NewPageRankDelta(),
		NewClusterBFS(), NewLandmarkOracle(), NewKSeedReach())
}

// ByName returns the application with the given name.
func ByName(name string) (App, error) {
	for _, a := range WithExtensions() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}
