package apps

import (
	"math"
	"testing"

	"proxygraph/internal/engine"
	"proxygraph/internal/fault"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/partition"
)

// evolveEquiv derives a delta and its evolved graph from the shared
// equivalence-test graph.
func evolveEquiv(t *testing.T, base *graph.Graph, inserts, deletes int, seed uint64) (*graph.Delta, *graph.Graph) {
	t.Helper()
	d, err := gen.RandomDelta(base, gen.DeltaSpec{Inserts: inserts, Deletes: deletes, Time: 1}, seed)
	if err != nil {
		t.Fatal(err)
	}
	evolved, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	return d, evolved
}

// TestCCResumeMatchesColdAllEngines is acceptance check (b) for connected
// components: labels are exact integers with a unique fixed point, so a
// delta-based resumed run must converge to values bit-identical to a cold run
// on the evolved graph — on every engine.
func TestCCResumeMatchesColdAllEngines(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	base := equivGraph(t)
	cl := heteroCluster(t)
	cc := NewConnectedComponents()

	_, prior, err := engine.RunSyncReference[uint32, uint32](cc, moduloPlacement(t, base, 4), cl)
	if err != nil {
		t.Fatal(err)
	}

	d, evolved := evolveEquiv(t, base, 300, 300, 17)
	pl := moduloPlacement(t, evolved, 4)
	coldRes, cold, err := engine.RunSyncReference[uint32, uint32](cc, pl, cl)
	if err != nil {
		t.Fatal(err)
	}

	resume := cc.Resume(prior, d, evolved)
	opts := engine.Options{InitialActive: resume.Seed()}
	refRes, refVals, err := engine.RunSyncReferenceOpts[uint32, uint32](resume, pl, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, csrVals, err := engine.RunSyncOpts[uint32, uint32](resume, pl, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, parVals, err := engine.RunSyncParallelOpts[uint32, uint32](resume, pl, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range cold {
		if refVals[v] != cold[v] || csrVals[v] != cold[v] || parVals[v] != cold[v] {
			t.Fatalf("vertex %d: resumed labels ref=%d csr=%d par=%d, cold=%d",
				v, refVals[v], csrVals[v], parVals[v], cold[v])
		}
	}
	// Resuming must not iterate longer than the cold run: the warm labelling
	// is already a partial fixed point.
	if refRes.Supersteps > coldRes.Supersteps {
		t.Errorf("resumed run took %d supersteps, cold took %d", refRes.Supersteps, coldRes.Supersteps)
	}
}

// TestCCResumeSplitsComponent pins the deletion-reset rule on a handcrafted
// split: removing a bridge must let both halves relabel, including members
// the delta never touched directly.
func TestCCResumeSplitsComponent(t *testing.T) {
	base := &graph.Graph{
		Name:        "bridge",
		NumVertices: 6,
		// One chain 0-1-2-3-4 plus isolated 5: label propagation runs over
		// both directions, so the chain is one component.
		Edges: []graph.Edge{E(0, 1), E(1, 2), E(2, 3), E(3, 4)},
	}
	cl := heteroCluster(t)
	cc := NewConnectedComponents()
	_, prior, err := engine.RunSyncReference[uint32, uint32](cc, moduloPlacement(t, base, 4), cl)
	if err != nil {
		t.Fatal(err)
	}

	d := &graph.Delta{Time: 1, Deletes: []graph.Edge{E(2, 3)}}
	evolved, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	pl := moduloPlacement(t, evolved, 4)
	_, cold, err := engine.RunSyncReference[uint32, uint32](cc, pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	resume := cc.Resume(prior, d, evolved)
	_, got, err := engine.RunSyncReferenceOpts[uint32, uint32](resume, pl, cl, engine.Options{InitialActive: resume.Seed()})
	if err != nil {
		t.Fatal(err)
	}
	for v := range cold {
		if got[v] != cold[v] {
			t.Fatalf("vertex %d: resumed label %d, cold %d", v, got[v], cold[v])
		}
	}
	// The split must actually be visible: 3 and 4 can no longer share a
	// label with 0.
	if got[0] == got[3] {
		t.Fatal("deleted bridge did not split the component")
	}
}

// TestPRResumeWithinEnvelope is acceptance check (b) for PageRank: the
// tolerance-stopped fixed point is not bit-exact across different starting
// vectors, but resumed and cold ranks must agree per vertex within
// 2·Tolerance/(1−Damping), and resuming must not take more supersteps.
func TestPRResumeWithinEnvelope(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	base := equivGraph(t)
	cl := heteroCluster(t)
	pr := NewPageRank()

	_, priorStates, err := engine.RunSyncReference[prState, float64](pr, moduloPlacement(t, base, 4), cl)
	if err != nil {
		t.Fatal(err)
	}
	prior := make([]float64, len(priorStates))
	for i, s := range priorStates {
		prior[i] = s.rank
	}

	_, evolved := evolveEquiv(t, base, 60, 60, 23)
	pl := moduloPlacement(t, evolved, 4)
	coldRes, coldStates, err := engine.RunSyncReference[prState, float64](pr, pl, cl)
	if err != nil {
		t.Fatal(err)
	}

	resume := pr.Resume(prior)
	envelope := 2 * pr.Tolerance / (1 - pr.Damping)
	run := func(name string, vals []prState, res *engine.Result) {
		t.Helper()
		for v := range coldStates {
			if diff := math.Abs(vals[v].rank - coldStates[v].rank); diff > envelope {
				t.Fatalf("%s: vertex %d resumed rank %v vs cold %v (diff %v > envelope %v)",
					name, v, vals[v].rank, coldStates[v].rank, diff, envelope)
			}
		}
		if res != nil && res.Supersteps > coldRes.Supersteps {
			t.Errorf("%s: resumed run took %d supersteps, cold took %d", name, res.Supersteps, coldRes.Supersteps)
		}
	}
	refRes, refVals, err := engine.RunSyncReferenceOpts[prState, float64](resume, pl, cl, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run("reference", refVals, refRes)
	_, csrVals, err := engine.RunSyncOpts[prState, float64](resume, pl, cl, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run("csr", csrVals, nil)
	_, parVals, err := engine.RunSyncParallelOpts[prState, float64](resume, pl, cl, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run("parallel", parVals, nil)
}

// TestResumeAcrossVertexSpaceChange covers deltas that grow or shrink the ID
// space: grown vertices start cold, shrunk priors are ignored past the new
// bound, and resumed CC labels still match a cold run exactly.
func TestResumeAcrossVertexSpaceChange(t *testing.T) {
	cl := heteroCluster(t)
	cc := NewConnectedComponents()
	base := &graph.Graph{
		Name:        "spaces",
		NumVertices: 5,
		Edges:       []graph.Edge{E(0, 1), E(1, 2), E(3, 4)},
	}
	_, prior, err := engine.RunSyncReference[uint32, uint32](cc, moduloPlacement(t, base, 4), cl)
	if err != nil {
		t.Fatal(err)
	}

	grow := &graph.Delta{Time: 1, Inserts: []graph.Edge{E(5, 6), E(2, 5)}, NumVertices: 7}
	shrink := &graph.Delta{Time: 1, Deletes: []graph.Edge{E(3, 4)}, NumVertices: 3}
	for _, tc := range []struct {
		name string
		d    *graph.Delta
	}{{"grow", grow}, {"shrink", shrink}} {
		t.Run(tc.name, func(t *testing.T) {
			evolved, err := tc.d.Apply(base)
			if err != nil {
				t.Fatal(err)
			}
			pl := moduloPlacement(t, evolved, 4)
			_, cold, err := engine.RunSyncReference[uint32, uint32](cc, pl, cl)
			if err != nil {
				t.Fatal(err)
			}
			resume := cc.Resume(prior, tc.d, evolved)
			_, got, err := engine.RunSyncReferenceOpts[uint32, uint32](resume, pl, cl, engine.Options{InitialActive: resume.Seed()})
			if err != nil {
				t.Fatal(err)
			}
			for v := range cold {
				if got[v] != cold[v] {
					t.Fatalf("vertex %d: resumed label %d, cold %d", v, got[v], cold[v])
				}
			}
		})
	}

	// PageRank across a grow: new vertices start cold and the run completes.
	pr := NewPageRank()
	evolved, err := grow.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	priorRanks := []float64{1.1, 1.2, 1.3, 0.9, 0.8}
	resume := pr.Resume(priorRanks)
	_, vals, err := engine.RunSyncReferenceOpts[prState, float64](resume, moduloPlacement(t, evolved, 4), cl, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != evolved.NumVertices {
		t.Fatalf("resumed PR produced %d states for %d vertices", len(vals), evolved.NumVertices)
	}
}

// TestChaosAmendedPlacement is the chaos satellite: a placement produced by
// incremental amendment, driven by a warm-started program, must recover from
// seeded fault schedules to exactly the fault-free answer with bitwise
// accounting agreement across all three engines — the same guarantees the
// chaos suite pins for cold placements.
func TestChaosAmendedPlacement(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	base := equivGraph(t)
	cl := heteroCluster(t)
	shares := partition.UniformShares(4)
	part := partition.NewHDRF()

	basePl, err := partition.Apply(part, base, shares, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, evolved := evolveEquiv(t, base, 200, 200, 21)
	pl, err := partition.AmendApply(part, basePl, d, evolved, shares, 7)
	if err != nil {
		t.Fatal(err)
	}

	cc := NewConnectedComponents()
	_, prior, err := engine.RunSyncReference[uint32, uint32](cc, basePl, cl)
	if err != nil {
		t.Fatal(err)
	}
	resume := cc.Resume(prior, d, evolved)
	seedOpts := engine.Options{InitialActive: resume.Seed()}

	_, want, err := engine.RunSyncReferenceOpts[uint32, uint32](resume, pl, cl, seedOpts)
	if err != nil {
		t.Fatal(err)
	}

	for _, schedSeed := range []uint64{1, 2, 3} {
		sched, err := fault.NewSchedule(schedSeed, fault.Spec{
			Machines: 4, Horizon: 6, Crashes: 2, Stragglers: 2, NetworkFaults: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := &engine.FaultConfig{
			Injector:        sched,
			CheckpointEvery: 3,
			Policy:          engine.RecoverCheckpoint,
		}
		opts := engine.Options{Fault: cfg, InitialActive: resume.Seed()}
		refRes, refVals, err := engine.RunSyncReferenceOpts[uint32, uint32](resume, pl, cl, opts)
		if err != nil {
			t.Fatalf("schedule %d reference: %v", schedSeed, err)
		}
		csrRes, csrVals, err := engine.RunSyncOpts[uint32, uint32](resume, pl, cl, opts)
		if err != nil {
			t.Fatalf("schedule %d csr: %v", schedSeed, err)
		}
		parRes, parVals, err := engine.RunSyncParallelOpts[uint32, uint32](resume, pl, cl, opts)
		if err != nil {
			t.Fatalf("schedule %d parallel: %v", schedSeed, err)
		}
		sameAccounting(t, "amended/csr", refRes, csrRes)
		sameAccounting(t, "amended/parallel", refRes, parRes)
		for v := range want {
			if refVals[v] != want[v] || csrVals[v] != want[v] || parVals[v] != want[v] {
				t.Fatalf("schedule %d vertex %d: ref=%d csr=%d par=%d, fault-free %d",
					schedSeed, v, refVals[v], csrVals[v], parVals[v], want[v])
			}
		}
	}
}
