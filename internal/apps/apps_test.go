package apps

import (
	"math"
	"testing"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
)

func testGraph(t *testing.T, seed uint64, n, m int) *graph.Graph {
	t.Helper()
	g, err := gen.Generate(gen.Spec{
		Name: "apps-test", Vertices: int64(n), Edges: int64(m), Kind: gen.KindPowerLaw,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func singleCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	m, _ := cluster.ByName("c4.xlarge")
	cl, err := cluster.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func multiCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	m, _ := cluster.ByName("c4.xlarge")
	machines := make([]cluster.Machine, n)
	for i := range machines {
		machines[i] = m
	}
	cl, err := cluster.New(machines...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func moduloPlacement(t *testing.T, g *graph.Graph, m int) *engine.Placement {
	t.Helper()
	owner := make([]int32, len(g.Edges))
	for i := range owner {
		owner[i] = int32(i % m)
	}
	pl, err := engine.NewPlacement(g, owner, m)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// E builds an edge literal for tests.
func E(u, v int) graph.Edge {
	return graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)}
}

// --- Reference implementations ---

// refPageRank runs dense PageRank with damping d until maxIters.
func refPageRank(g *graph.Graph, d float64, iters int) []float64 {
	n := g.NumVertices
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1
	}
	out := g.OutDegrees()
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for i := range next {
			next[i] = 1 - d
		}
		for _, e := range g.Edges {
			if out[e.Src] > 0 {
				next[e.Dst] += d * rank[e.Src] / float64(out[e.Src])
			}
		}
		rank = next
	}
	return rank
}

// refComponents returns component count via union-find.
func refComponents(g *graph.Graph) int {
	parent := make([]int, g.NumVertices)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(int(e.Src)), find(int(e.Dst))
		if a != b {
			parent[a] = b
		}
	}
	roots := map[int]bool{}
	for i := range parent {
		roots[find(i)] = true
	}
	return len(roots)
}

// refTriangles counts triangles via per-edge adjacency-set intersection.
func refTriangles(g *graph.Graph) int64 {
	adj := make([]map[graph.VertexID]bool, g.NumVertices)
	for i := range adj {
		adj[i] = map[graph.VertexID]bool{}
	}
	for _, e := range g.Edges {
		adj[e.Src][e.Dst] = true
		adj[e.Dst][e.Src] = true
	}
	var count int64
	for v := 0; v < g.NumVertices; v++ {
		for u := range adj[v] {
			if u <= graph.VertexID(v) {
				continue
			}
			for w := range adj[v] {
				if w <= u {
					continue
				}
				if adj[u][w] {
					count++
				}
			}
		}
	}
	return count
}

// --- PageRank ---

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraph(t, 1, 500, 3000)
	pr := NewPageRank()
	pr.Tolerance = 0 // run all iterations so the reference matches exactly
	pr.MaxIters = 15
	res, err := pr.Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output.([]float64)
	want := refPageRank(g, 0.85, 15)
	for v := range got {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: rank %v, want %v", v, got[v], want[v])
		}
	}
}

func TestPageRankRanksSumToN(t *testing.T) {
	g := testGraph(t, 2, 400, 2400)
	// With no dangling-vertex correction the sum is only approximately N;
	// most mass must be preserved on a graph where most vertices have
	// out-edges.
	res, err := NewPageRank().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	ranks := res.Output.([]float64)
	sum := 0.0
	for _, r := range ranks {
		if r < 0.149 { // minimum rank is (1-d) = 0.15
			t.Fatalf("rank %v below (1-d)", r)
		}
		sum += r
	}
	if sum < 0.5*float64(g.NumVertices) || sum > 1.5*float64(g.NumVertices) {
		t.Errorf("rank sum %v vs N=%d", sum, g.NumVertices)
	}
}

func TestPageRankInvariantAcrossPlacements(t *testing.T) {
	g := testGraph(t, 3, 300, 1800)
	pr := NewPageRank()
	pr.Tolerance = 0
	pr.MaxIters = 10
	res1, err := pr.Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	res4, err := pr.Run(moduloPlacement(t, g, 4), multiCluster(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	r1 := res1.Output.([]float64)
	r4 := res4.Output.([]float64)
	for v := range r1 {
		if math.Abs(r1[v]-r4[v]) > 1e-9 {
			t.Fatalf("vertex %d: partition changed result: %v vs %v", v, r1[v], r4[v])
		}
	}
}

func TestPageRankConvergesEarly(t *testing.T) {
	g := testGraph(t, 4, 300, 1500)
	pr := NewPageRank()
	pr.MaxIters = 100
	pr.Tolerance = 1e-2
	res, err := pr.Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps >= 100 {
		t.Errorf("PageRank did not converge early: %d supersteps", res.Supersteps)
	}
	if res.Supersteps < 3 {
		t.Errorf("suspiciously fast convergence: %d supersteps", res.Supersteps)
	}
}

// --- Connected Components ---

func TestComponentsMatchReference(t *testing.T) {
	for seed := uint64(10); seed < 15; seed++ {
		g := testGraph(t, seed, 300, 700)
		res, err := NewConnectedComponents().Run(engine.SingleMachine(g), singleCluster(t))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Output.(Components)
		want := refComponents(g)
		if got.Count != want {
			t.Errorf("seed %d: %d components, want %d", seed, got.Count, want)
		}
	}
}

func TestComponentsLabelsAreComponentMinima(t *testing.T) {
	g := testGraph(t, 16, 200, 400)
	res, err := NewConnectedComponents().Run(moduloPlacement(t, g, 2), multiCluster(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	labels := res.Output.(Components).Labels
	// Every edge's endpoints share a label.
	for _, e := range g.Edges {
		if labels[e.Src] != labels[e.Dst] {
			t.Fatalf("edge (%d,%d) spans labels %d and %d", e.Src, e.Dst, labels[e.Src], labels[e.Dst])
		}
	}
	// The label is the smallest vertex ID in the component.
	for v, l := range labels {
		if uint32(v) < l {
			t.Fatalf("vertex %d has label %d > own id", v, l)
		}
		if labels[l] != l {
			t.Fatalf("label %d is not its own label", l)
		}
	}
}

func TestComponentsDisconnected(t *testing.T) {
	// Two triangles, no connection.
	g := &graph.Graph{NumVertices: 6, Edges: []graph.Edge{
		E(0, 1), E(1, 2), E(2, 0), E(3, 4), E(4, 5), E(5, 3),
	}}
	res, err := NewConnectedComponents().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output.(Components)
	if got.Count != 2 || got.Largest != 3 {
		t.Errorf("got %d components, largest %d; want 2 and 3", got.Count, got.Largest)
	}
}

// --- Coloring ---

func TestColoringIsProper(t *testing.T) {
	for seed := uint64(20); seed < 24; seed++ {
		g := testGraph(t, seed, 400, 2400)
		res, err := NewColoring().Run(moduloPlacement(t, g, 2), multiCluster(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		out := res.Output.(ColoringResult)
		if err := ValidateColoring(g, out.Colors); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if out.NumColors < 2 {
			t.Errorf("seed %d: %d colors on a non-trivial graph", seed, out.NumColors)
		}
		if out.Rounds >= NewColoring().MaxRounds {
			t.Errorf("seed %d: coloring did not converge (%d rounds)", seed, out.Rounds)
		}
	}
}

func TestColoringColorCountReasonable(t *testing.T) {
	g := testGraph(t, 25, 1000, 3000)
	res, err := NewColoring().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.(ColoringResult)
	// Greedy coloring uses at most maxDegree+1 colors.
	if out.NumColors > g.MaxDegree()+1 {
		t.Errorf("%d colors exceeds greedy bound %d", out.NumColors, g.MaxDegree()+1)
	}
}

func TestColoringCompleteGraph(t *testing.T) {
	// K5 needs exactly 5 colors.
	g := &graph.Graph{NumVertices: 5}
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.Edges = append(g.Edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
		}
	}
	res, err := NewColoring().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.(ColoringResult)
	if out.NumColors != 5 {
		t.Errorf("K5 colored with %d colors, want 5", out.NumColors)
	}
	if err := ValidateColoring(g, out.Colors); err != nil {
		t.Error(err)
	}
}

// --- Triangle Count ---

func TestTriangleCountMatchesReference(t *testing.T) {
	for seed := uint64(30); seed < 34; seed++ {
		g := testGraph(t, seed, 200, 1200)
		res, err := NewTriangleCount().Run(moduloPlacement(t, g, 3), multiCluster(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Output.(TriangleResult).Total
		want := refTriangles(g)
		if got != want {
			t.Errorf("seed %d: %d triangles, want %d", seed, got, want)
		}
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// A triangle plus a pendant edge: exactly one triangle.
	g := &graph.Graph{NumVertices: 4, Edges: []graph.Edge{E(0, 1), E(1, 2), E(2, 0), E(2, 3)}}
	count, err := CountTriangles(g, mustMachine(t, "c4.xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("triangle+pendant = %d, want 1", count)
	}
	// K4 has 4 triangles.
	k4 := &graph.Graph{NumVertices: 4}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			k4.Edges = append(k4.Edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
		}
	}
	count, err = CountTriangles(k4, mustMachine(t, "c4.xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("K4 = %d triangles, want 4", count)
	}
}

func TestTriangleCountHandlesDuplicateAndReverseEdges(t *testing.T) {
	// Triangle with duplicated and reversed edges must still count once.
	g := &graph.Graph{NumVertices: 3, Edges: []graph.Edge{
		E(0, 1), E(1, 0), E(1, 2), E(2, 1), E(2, 0), E(0, 2), E(0, 1),
	}}
	count, err := CountTriangles(g, mustMachine(t, "c4.xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("got %d, want 1", count)
	}
}

func TestTriangleCountInvariantAcrossPlacements(t *testing.T) {
	g := testGraph(t, 35, 300, 2000)
	res1, err := NewTriangleCount().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	res4, err := NewTriangleCount().Run(moduloPlacement(t, g, 4), multiCluster(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Output.(TriangleResult).Total != res4.Output.(TriangleResult).Total {
		t.Error("triangle count depends on partitioning")
	}
}

// --- BFS ---

func TestBFSDistances(t *testing.T) {
	// Path 0-1-2-3 plus isolated vertex 4.
	g := &graph.Graph{NumVertices: 5, Edges: []graph.Edge{E(0, 1), E(1, 2), E(2, 3)}}
	res, err := NewBFS().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output.([]int32)
	want := []int32{0, 1, 2, 3, -1}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSUsesUndirectedEdges(t *testing.T) {
	// Edge points 1->0; BFS from 0 must still reach 1.
	g := &graph.Graph{NumVertices: 2, Edges: []graph.Edge{E(1, 0)}}
	res, err := NewBFS().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Output.([]int32); got[1] != 1 {
		t.Errorf("dist[1] = %d, want 1", got[1])
	}
}

func TestBFSInvariantAcrossPlacements(t *testing.T) {
	g := testGraph(t, 40, 400, 1600)
	res1, err := NewBFS().Run(engine.SingleMachine(g), singleCluster(t))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := NewBFS().Run(moduloPlacement(t, g, 4), multiCluster(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	d1 := res1.Output.([]int32)
	d2 := res2.Output.([]int32)
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("dist[%d] differs across placements: %d vs %d", v, d1[v], d2[v])
		}
	}
}

// --- Registry and cross-cutting ---

func mustMachine(t *testing.T, name string) cluster.Machine {
	t.Helper()
	m, ok := cluster.ByName(name)
	if !ok {
		t.Fatalf("unknown machine %q", name)
	}
	return m
}

func TestRegistry(t *testing.T) {
	if len(All()) != 4 {
		t.Errorf("All() has %d apps, want the paper's 4", len(All()))
	}
	if len(WithExtensions()) <= len(All()) {
		t.Error("extensions should add applications")
	}
	for _, name := range []string{"pagerank", "coloring", "connected_components", "triangle_count", "bfs"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestAppsChargeTimeAndEnergy(t *testing.T) {
	g := testGraph(t, 50, 400, 2400)
	cl := multiCluster(t, 2)
	pl := moduloPlacement(t, g, 2)
	for _, app := range WithExtensions() {
		res, err := app.Run(pl, cl)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if res.SimSeconds <= 0 {
			t.Errorf("%s: sim time %v", app.Name(), res.SimSeconds)
		}
		if res.EnergyJoules <= 0 {
			t.Errorf("%s: energy %v", app.Name(), res.EnergyJoules)
		}
		if res.App != app.Name() {
			t.Errorf("result app %q != %q", res.App, app.Name())
		}
	}
}

func TestFasterMachineLowersSimTime(t *testing.T) {
	g := testGraph(t, 51, 2000, 16000)
	small, _ := cluster.ByName("c4.xlarge")
	big, _ := cluster.ByName("c4.8xlarge")
	clS, _ := cluster.New(small)
	clB, _ := cluster.New(big)
	pl := engine.SingleMachine(g)
	for _, app := range All() {
		resS, err := app.Run(pl, clS)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := app.Run(pl, clB)
		if err != nil {
			t.Fatal(err)
		}
		if resB.SimSeconds >= resS.SimSeconds {
			t.Errorf("%s: 8xlarge (%.4fs) not faster than xlarge (%.4fs)",
				app.Name(), resB.SimSeconds, resS.SimSeconds)
		}
	}
}

func TestAppScalingIsApplicationSpecific(t *testing.T) {
	// The heart of Fig 2: speedup across the c4 ladder must differ by
	// application — in particular memory-bound PageRank must scale worse
	// than compute-bound Triangle Count.
	g := testGraph(t, 52, 3000, 36000)
	pl := engine.SingleMachine(g)
	speedup := func(app App) float64 {
		small, _ := cluster.ByName("c4.xlarge")
		big, _ := cluster.ByName("c4.8xlarge")
		clS, _ := cluster.New(small)
		clB, _ := cluster.New(big)
		rs, err := app.Run(pl, clS)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := app.Run(pl, clB)
		if err != nil {
			t.Fatal(err)
		}
		return rs.SimSeconds / rb.SimSeconds
	}
	pr := speedup(NewPageRank())
	tc := speedup(NewTriangleCount())
	if tc <= pr {
		t.Errorf("triangle count speedup %.2f should exceed pagerank %.2f", tc, pr)
	}
}

var _ = rng.Hash64 // keep the import for future table-driven seeds

func TestParallelVariantsMatch(t *testing.T) {
	g := testGraph(t, 55, 800, 8000)
	cl := multiCluster(t, 4)
	pl := moduloPlacement(t, g, 4)

	prSeq, err := NewPageRank().Run(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	prPar, err := NewPageRank().RunParallel(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if prSeq.SimSeconds != prPar.SimSeconds {
		t.Errorf("pagerank accounting differs: %v vs %v", prSeq.SimSeconds, prPar.SimSeconds)
	}
	rs, rp := prSeq.Output.([]float64), prPar.Output.([]float64)
	for v := range rs {
		if math.Abs(rs[v]-rp[v]) > 1e-9 {
			t.Fatalf("vertex %d rank %v vs %v", v, rs[v], rp[v])
		}
	}

	ccSeq, err := NewConnectedComponents().Run(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	ccPar, err := NewConnectedComponents().RunParallel(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if ccSeq.Output.(Components).Count != ccPar.Output.(Components).Count {
		t.Error("component counts differ between engines")
	}
	if ccSeq.SimSeconds != ccPar.SimSeconds {
		t.Errorf("cc accounting differs: %v vs %v", ccSeq.SimSeconds, ccPar.SimSeconds)
	}
}
