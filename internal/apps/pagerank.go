package apps

import (
	"math"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// PageRank implements Eq 8 of the paper:
//
//	PR(u) = (1-d)/N + d · Σ_{v∈B(u)} PR(v)/L(v)
//
// scaled by N as in PowerGraph (initial rank 1, ranks sum to N), iterating
// until every vertex's rank moves less than Tolerance or MaxIters is hit.
type PageRank struct {
	// Damping is the damping factor d (default 0.85).
	Damping float64
	// Tolerance stops iteration when no rank changes by more than this.
	Tolerance float64
	// MaxIters bounds the superstep count.
	MaxIters int
}

// NewPageRank returns PageRank with the PowerGraph defaults.
func NewPageRank() *PageRank {
	return &PageRank{Damping: 0.85, Tolerance: 1e-3, MaxIters: 20}
}

// prState is the per-vertex state: the current rank and the precomputed
// reciprocal out-degree used by gather.
type prState struct {
	rank   float64
	invOut float64
}

// Name implements App.
func (pr *PageRank) Name() string { return "pagerank" }

// Coeffs implements engine.Program. PageRank gathers are memory-bound: each
// one reads a remote vertex record and read-modify-writes an accumulator
// through a random index, so bytes dominate ops (the Fig 2 saturation).
func (pr *PageRank) Coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    60,
		BytesPerGather:  340,
		OpsPerApply:     120,
		BytesPerApply:   320,
		OpsPerVertex:    25,
		BytesPerVertex:  16,
		SerialFrac:      0.015,
		StepOverheadOps: 2e3,
		AccumBytes:      12,
		ValueBytes:      12,
	}
}

// Direction implements engine.Program: rank flows along in-edges.
func (pr *PageRank) Direction() engine.Direction { return engine.GatherIn }

// ApplyAll implements engine.Program: every vertex recomputes each round.
func (pr *PageRank) ApplyAll() bool { return true }

// MaxSupersteps implements engine.Program.
func (pr *PageRank) MaxSupersteps() int { return pr.MaxIters }

// Init implements engine.Program.
func (pr *PageRank) Init(v graph.VertexID, outDeg, inDeg int32) prState {
	s := prState{rank: 1}
	if outDeg > 0 {
		s.invOut = 1 / float64(outDeg)
	}
	return s
}

// Gather implements engine.Program: contribution PR(v)/L(v).
func (pr *PageRank) Gather(src prState) float64 { return src.rank * src.invOut }

// Sum implements engine.Program.
func (pr *PageRank) Sum(a, b float64) float64 { return a + b }

// Apply implements engine.Program.
func (pr *PageRank) Apply(v graph.VertexID, old prState, acc float64, hasAcc bool, rt *engine.Runtime) (prState, bool) {
	sum := 0.0
	if hasAcc {
		sum = acc
	}
	newRank := (1 - pr.Damping) + pr.Damping*sum
	changed := math.Abs(newRank-old.rank) > pr.Tolerance
	old.rank = newRank
	return old, changed
}

// Run implements App. The Output is the []float64 rank vector.
func (pr *PageRank) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return pr.RunOpts(pl, cl, engine.Options{})
}

// RunOpts is Run with engine options attached (dynamic rebalancing, fault
// injection and checkpointing).
func (pr *PageRank) RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error) {
	res, vals, err := engine.RunSyncOpts[prState, float64](pr, pl, cl, opts)
	if err != nil {
		return nil, err
	}
	ranks := make([]float64, len(vals))
	for i, s := range vals {
		ranks[i] = s.rank
	}
	res.Output = ranks
	return res, nil
}

// RunRebalanced is Run with a dynamic load-balancing policy attached (see
// engine.Rebalancer and package dynamic).
func (pr *PageRank) RunRebalanced(pl *engine.Placement, cl *cluster.Cluster, rb engine.Rebalancer) (*engine.Result, error) {
	return pr.RunOpts(pl, cl, engine.Options{Rebalancer: rb})
}

// RunParallel is Run on the destination-sharded parallel engine (workers own
// disjoint vertex ranges of the shared accumulators); accounting is
// bit-identical, ranks agree up to floating-point re-association.
func (pr *PageRank) RunParallel(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	res, vals, err := engine.RunSyncParallel[prState, float64](pr, pl, cl)
	if err != nil {
		return nil, err
	}
	ranks := make([]float64, len(vals))
	for i, s := range vals {
		ranks[i] = s.rank
	}
	res.Output = ranks
	return res, nil
}
