package apps

import (
	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// ConnectedComponents labels every vertex with the smallest vertex ID in its
// (weakly) connected component by synchronous label propagation, the
// PowerGraph formulation the paper benchmarks ("counts connected components
// in a given graph, as well as the number of vertices and edges in each").
type ConnectedComponents struct {
	// MaxIters caps propagation; label propagation needs at most the graph
	// diameter plus one supersteps.
	MaxIters int
}

// NewConnectedComponents returns the default configuration.
func NewConnectedComponents() *ConnectedComponents {
	return &ConnectedComponents{MaxIters: 1000}
}

// Name implements App.
func (cc *ConnectedComponents) Name() string { return "connected_components" }

// Coeffs implements engine.Program. Label propagation is lighter than
// PageRank per edge (integer min instead of float math) but still walks
// remote labels through random indices.
func (cc *ConnectedComponents) Coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    70,
		BytesPerGather:  110,
		OpsPerApply:     80,
		BytesPerApply:   240,
		OpsPerVertex:    25,
		BytesPerVertex:  16,
		SerialFrac:      0.03,
		StepOverheadOps: 2e3,
		AccumBytes:      12,
		ValueBytes:      12,
	}
}

// Direction implements engine.Program: components are over the undirected
// structure, so labels flow both ways.
func (cc *ConnectedComponents) Direction() engine.Direction { return engine.GatherBoth }

// ApplyAll implements engine.Program: only signalled vertices recompute.
func (cc *ConnectedComponents) ApplyAll() bool { return false }

// MaxSupersteps implements engine.Program.
func (cc *ConnectedComponents) MaxSupersteps() int { return cc.MaxIters }

// Init implements engine.Program: every vertex starts as its own label.
func (cc *ConnectedComponents) Init(v graph.VertexID, outDeg, inDeg int32) uint32 {
	return uint32(v)
}

// Gather implements engine.Program.
func (cc *ConnectedComponents) Gather(src uint32) uint32 { return src }

// Sum implements engine.Program: keep the smaller label.
func (cc *ConnectedComponents) Sum(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Apply implements engine.Program.
func (cc *ConnectedComponents) Apply(v graph.VertexID, old uint32, acc uint32, hasAcc bool, rt *engine.Runtime) (uint32, bool) {
	if hasAcc && acc < old {
		return acc, true
	}
	return old, false
}

// Run implements App. The Output is a Components summary.
func (cc *ConnectedComponents) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return cc.RunOpts(pl, cl, engine.Options{})
}

// RunOpts is Run with engine options attached (dynamic rebalancing, fault
// injection and checkpointing).
func (cc *ConnectedComponents) RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error) {
	res, labels, err := engine.RunSyncOpts[uint32, uint32](cc, pl, cl, opts)
	if err != nil {
		return nil, err
	}
	res.Output = SummarizeComponents(labels)
	return res, nil
}

// Components summarizes a labelling: the number of components and the size
// of the largest one.
type Components struct {
	Labels  []uint32
	Count   int
	Largest int
}

// SummarizeComponents counts distinct labels and the largest component.
func SummarizeComponents(labels []uint32) Components {
	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	return Components{Labels: labels, Count: len(sizes), Largest: largest}
}

// RunRebalanced is Run with a dynamic load-balancing policy attached (see
// engine.Rebalancer and package dynamic).
func (cc *ConnectedComponents) RunRebalanced(pl *engine.Placement, cl *cluster.Cluster, rb engine.Rebalancer) (*engine.Result, error) {
	return cc.RunOpts(pl, cl, engine.Options{Rebalancer: rb})
}

// RunParallel is Run on the destination-sharded parallel engine; label
// propagation's min-Sum is exactly associative, so results are bit-identical
// to Run.
func (cc *ConnectedComponents) RunParallel(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	res, labels, err := engine.RunSyncParallel[uint32, uint32](cc, pl, cl)
	if err != nil {
		return nil, err
	}
	res.Output = SummarizeComponents(labels)
	return res, nil
}
