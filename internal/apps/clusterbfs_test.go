package apps

import (
	"errors"
	"testing"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// This file is the ClusterBFS differential battery of ISSUE 9: the 64-packed
// traversal must be bit-identical, lane for lane, to 64 independent
// single-source BFS runs — on seeded random, grid and star topologies, across
// all three engines, clean and under chaos. Accounting is held to the same
// standard as every other app: bitwise identical across the three engines
// (one packed pass cannot charge like 64 scalar passes — that gap is the
// batch amortization the ClusterBFSStudy experiment measures — so the
// accounting invariant is cross-engine, cross-worker-count and
// chaos-vs-clean, not packed-vs-scalar). make check and CI run the
// TestClusterBFS* battery under -race -cpu 1,2,4.

// spreadSources returns k distinct roots spread evenly across [0, n).
func spreadSources(n, k int) []graph.VertexID {
	if k > n {
		k = n
	}
	srcs := make([]graph.VertexID, k)
	for j := range srcs {
		srcs[j] = graph.VertexID(j * n / k)
	}
	return srcs
}

// gridGraph builds a rows×cols lattice: the frontier grows as a diamond wave,
// pinning many supersteps with mid-density frontiers (the hybrid switcher's
// crossover region).
func gridGraph(rows, cols int) *graph.Graph {
	g := &graph.Graph{Name: "grid", NumVertices: rows * cols}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Edges = append(g.Edges, E(id(r, c), id(r, c+1)))
			}
			if r+1 < rows {
				g.Edges = append(g.Edges, E(id(r, c), id(r+1, c)))
			}
		}
	}
	return g
}

// starGraph builds a hub with the given number of leaves: every lane floods
// the whole graph in two supersteps through one max-degree vertex.
func starGraph(leaves int) *graph.Graph {
	g := &graph.Graph{Name: "star", NumVertices: leaves + 1}
	for l := 1; l <= leaves; l++ {
		g.Edges = append(g.Edges, E(0, l))
	}
	return g
}

// scalarBFSDistances is the in-test oracle: a plain queue BFS over the
// undirected adjacency, sharing no code with the engines or the apps.
func scalarBFSDistances(g *graph.Graph, src graph.VertexID) []int32 {
	adj := make([][]graph.VertexID, g.NumVertices)
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	dist := make([]int32, g.NumVertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// checkLanesMatchScalarBFS compares every lane of the packed states against
// an independent single-source NewBFS run (reference engine) and against the
// in-test queue oracle: distances bit-identical, reach bits consistent.
func checkLanesMatchScalarBFS(t *testing.T, name string, g *graph.Graph, pl *engine.Placement, srcs []graph.VertexID, states []ClusterState) {
	t.Helper()
	cl := heteroCluster(t)
	for j, s := range srcs {
		b := &BFS{Source: s, MaxIters: 1000}
		_, scalar, err := engine.RunSyncReference[int32, int32](b, pl, cl)
		if err != nil {
			t.Fatalf("%s: scalar bfs from %d: %v", name, s, err)
		}
		oracle := scalarBFSDistances(g, s)
		for v := range states {
			if got := states[v].Dist[j]; got != scalar[v] {
				t.Fatalf("%s: lane %d (source %d) vertex %d: packed distance %d, scalar BFS %d",
					name, j, s, v, got, scalar[v])
			}
			if scalar[v] != oracle[v] {
				t.Fatalf("%s: source %d vertex %d: engine BFS %d disagrees with queue oracle %d",
					name, s, v, scalar[v], oracle[v])
			}
			reached := states[v].Seen&(1<<uint(j)) != 0
			if reached != (scalar[v] >= 0) {
				t.Fatalf("%s: lane %d vertex %d: reach bit %v but scalar distance %d",
					name, j, v, reached, scalar[v])
			}
		}
	}
}

// TestClusterBFSDifferential is the headline battery: on each topology the
// packed run must agree bitwise across reference/CSR/parallel engines
// (values and accounting), and every one of its 64 lanes must reproduce an
// independent single-source BFS exactly.
func TestClusterBFSDifferential(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })
	cl := heteroCluster(t)

	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"random", testGraph(t, 7, 800, 3200)},
		{"grid", gridGraph(16, 16)},
		{"star", starGraph(80)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			srcs := spreadSources(tc.g.NumVertices, MaxBatchSources)
			prog := &ClusterBFS{Sources: srcs, MaxIters: 1000}
			pl := moduloPlacement(t, tc.g, 4)

			checkEquivalence[ClusterState, uint64](t, "clusterbfs/"+tc.name, prog, pl, cl, exact[ClusterState])

			_, states, err := engine.RunSync[ClusterState, uint64](prog, pl, cl)
			if err != nil {
				t.Fatal(err)
			}
			checkLanesMatchScalarBFS(t, tc.name, tc.g, pl, srcs, states)
		})
	}
}

// TestClusterBFSChaosDifferential puts the packed traversal under the chaos
// schedule: the recovered run must land on bitwise-identical states (and so,
// transitively through TestClusterBFSDifferential, on the 64 scalar BFS
// answers) with bitwise-equal accounting across all three engines.
func TestClusterBFSChaosDifferential(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)
	cfg := &engine.FaultConfig{
		Injector:        chaosSchedule(),
		CheckpointEvery: 2,
		Policy:          engine.RecoverCheckpoint,
	}
	prog := &ClusterBFS{Sources: spreadSources(g.NumVertices, MaxBatchSources), MaxIters: 1000}
	res := checkChaos[ClusterState, uint64](t, "clusterbfs", prog, pl, cl, cfg, exact[ClusterState])
	if res.Recoveries < 1 {
		t.Fatal("scheduled crash never fired")
	}
	if res.Checkpoints < 1 {
		t.Fatal("no checkpoint written")
	}
}

// TestClusterBFSSourceValidation is the satellite guard: every BFS-family
// app rejects malformed source sets with the typed sentinels before the
// engine starts.
func TestClusterBFSSourceValidation(t *testing.T) {
	g := testGraph(t, 3, 200, 800)
	cl := multiCluster(t, 2)
	pl := moduloPlacement(t, g, 2)

	seq := func(k int) []graph.VertexID {
		s := make([]graph.VertexID, k)
		for i := range s {
			s[i] = graph.VertexID(i)
		}
		return s
	}

	cases := []struct {
		name string
		app  App
		want error
	}{
		{"bfs/out-of-range", &BFS{Source: 200, MaxIters: 10}, ErrSourceOutOfRange},
		{"sssp/out-of-range", &SSSP{Source: 1000, Undirected: true, MaxIters: 10}, ErrSourceOutOfRange},
		{"clusterbfs/empty", &ClusterBFS{Sources: nil, MaxIters: 10}, ErrNoSources},
		{"clusterbfs/out-of-range", &ClusterBFS{Sources: []graph.VertexID{0, 200}, MaxIters: 10}, ErrSourceOutOfRange},
		{"clusterbfs/duplicate", &ClusterBFS{Sources: []graph.VertexID{3, 4, 3}, MaxIters: 10}, ErrDuplicateSource},
		{"clusterbfs/too-many", &ClusterBFS{Sources: seq(MaxBatchSources + 1), MaxIters: 10}, ErrTooManySources},
		{"kseed/duplicate", &KSeedReach{Seeds: []graph.VertexID{1, 2, 1}, MaxIters: 10}, ErrDuplicateSource},
		{"kseed/out-of-range", &KSeedReach{Seeds: []graph.VertexID{500}, MaxIters: 10}, ErrSourceOutOfRange},
		{"landmark/zero-landmarks", &LandmarkOracle{K: 0, MaxIters: 10}, ErrNoSources},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.app.Run(pl, cl)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want %v", err, tc.want)
			}
		})
	}

	// Valid boundary sets still run: the last vertex as a root, a full
	// 64-lane batch, a single lane.
	for _, app := range []App{
		&BFS{Source: 199, MaxIters: 10},
		&ClusterBFS{Sources: seq(MaxBatchSources), MaxIters: 10},
		&ClusterBFS{Sources: []graph.VertexID{199}, MaxIters: 10},
	} {
		if _, err := app.Run(pl, cl); err != nil {
			t.Fatalf("valid source set rejected: %v", err)
		}
	}
}

// TestClusterBFSLandmarkOracle pins the distance oracle against scalar
// ground truth: queries reproduce min-over-landmarks routing exactly, never
// undercut the true distance, and are exact when an endpoint is a landmark.
func TestClusterBFSLandmarkOracle(t *testing.T) {
	g := testGraph(t, 11, 300, 1200)
	cl := multiCluster(t, 2)
	pl := moduloPlacement(t, g, 2)

	o := &LandmarkOracle{K: 8, MaxIters: 100}
	res, err := o.Run(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "landmark_oracle" {
		t.Fatalf("accounted as %q", res.App)
	}
	oracle := res.Output.(*DistanceOracle)

	landmarks := o.Landmarks(g)
	if len(landmarks) != 8 {
		t.Fatalf("picked %d landmarks, want 8", len(landmarks))
	}
	landmarkDist := make([][]int32, len(landmarks))
	for j, l := range landmarks {
		landmarkDist[j] = scalarBFSDistances(g, l)
	}

	// Sampled pairs: the oracle must equal the routing formula and bound the
	// true distance from above.
	for u := 0; u < g.NumVertices; u += 17 {
		truth := scalarBFSDistances(g, graph.VertexID(u))
		for v := 0; v < g.NumVertices; v += 23 {
			want := int32(-1)
			for j := range landmarks {
				du, dv := landmarkDist[j][u], landmarkDist[j][v]
				if du < 0 || dv < 0 {
					continue
				}
				if d := du + dv; want < 0 || d < want {
					want = d
				}
			}
			got, ok := oracle.Query(graph.VertexID(u), graph.VertexID(v))
			if u == v {
				if !ok || got != 0 {
					t.Fatalf("Query(%d,%d) = %d,%v, want 0", u, v, got, ok)
				}
				continue
			}
			if ok != (want >= 0) || (ok && got != want) {
				t.Fatalf("Query(%d,%d) = %d,%v; routing formula gives %d", u, v, got, ok, want)
			}
			if ok && truth[v] >= 0 && got < truth[v] {
				t.Fatalf("Query(%d,%d) = %d undercuts true distance %d", u, v, got, truth[v])
			}
		}
	}

	// A landmark endpoint routes through itself, so the bound is exact.
	l0 := landmarks[0]
	for v := 0; v < g.NumVertices; v += 13 {
		want := landmarkDist[0][v]
		got, ok := oracle.Query(l0, graph.VertexID(v))
		if ok != (want >= 0) || (ok && got != want) {
			t.Fatalf("Query(landmark %d, %d) = %d,%v, want exact %d", l0, v, got, ok, want)
		}
	}
}

// TestClusterBFSKSeedReach pins the reachability summary on a graph with two
// components and an isolated vertex, then cross-checks the counts on a
// random graph against the scalar oracle.
func TestClusterBFSKSeedReach(t *testing.T) {
	// Component A: path 0-1-2-3. Component B: path 4-5-6. Vertex 7 isolated.
	g := &graph.Graph{Name: "two-comp", NumVertices: 8, Edges: []graph.Edge{
		E(0, 1), E(1, 2), E(2, 3), E(4, 5), E(5, 6),
	}}
	cl := multiCluster(t, 2)
	pl := moduloPlacement(t, g, 2)

	r := &KSeedReach{Seeds: []graph.VertexID{0, 4}, MaxIters: 100}
	res, err := r.Run(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "kseed_reach" {
		t.Fatalf("accounted as %q", res.App)
	}
	sum := res.Output.(*ReachSummary)
	if len(sum.PerSeed) != 2 || sum.PerSeed[0] != 4 || sum.PerSeed[1] != 3 {
		t.Fatalf("PerSeed = %v, want [4 3]", sum.PerSeed)
	}
	if sum.Union != 7 {
		t.Fatalf("Union = %d, want 7", sum.Union)
	}
	if mask := sum.Labels.ReachMask(7); mask != 0 {
		t.Fatalf("isolated vertex has reach mask %b", mask)
	}
	if mask := sum.Labels.ReachMask(2); mask != 1 {
		t.Fatalf("vertex 2 reach mask %b, want seed-0 only", mask)
	}

	// Random graph: counts must match brute-force scalar reach.
	rg := testGraph(t, 19, 250, 700)
	rpl := moduloPlacement(t, rg, 2)
	seeds := spreadSources(rg.NumVertices, 12)
	rr := &KSeedReach{Seeds: seeds, MaxIters: 100}
	rres, err := rr.Run(rpl, cl)
	if err != nil {
		t.Fatal(err)
	}
	rsum := rres.Output.(*ReachSummary)
	unionSeen := make([]bool, rg.NumVertices)
	for j, s := range seeds {
		dist := scalarBFSDistances(rg, s)
		count := 0
		for v, d := range dist {
			if d >= 0 {
				count++
				unionSeen[v] = true
			}
		}
		if rsum.PerSeed[j] != count {
			t.Fatalf("seed %d covers %d vertices, oracle says %d", j, rsum.PerSeed[j], count)
		}
	}
	union := 0
	for _, s := range unionSeen {
		if s {
			union++
		}
	}
	if rsum.Union != union {
		t.Fatalf("Union = %d, oracle says %d", rsum.Union, union)
	}
}
