package apps

import (
	"fmt"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// TriangleCount counts the triangles in the graph's undirected structure,
// the paper's fourth application: "it counts the number of intersections of
// vertex u's and vertex v's neighbor sets for every edge (u,v)". Each machine
// processes its local edges; the per-edge cost is the linear merge of two
// sorted neighbor lists, so the work a machine receives depends on the
// degrees of its edges' endpoints — which is why Triangle Count's CCRs react
// to degree distribution more sharply than the other applications (Fig 8a's
// 8xlarge jump, Case 3's distinctive 1:4.5 ratio).
type TriangleCount struct{}

// NewTriangleCount returns the application.
func NewTriangleCount() *TriangleCount { return &TriangleCount{} }

// Name implements App.
func (tc *TriangleCount) Name() string { return "triangle_count" }

// coeffs: merge probes stream two sorted arrays — very cache-friendly, so
// few memory bytes per op; Triangle Count is the compute-bound application
// that keeps scaling with cores in Fig 2.
func (tc *TriangleCount) coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    30, // per merge probe
		BytesPerGather:  30,
		OpsPerApply:     60, // per-edge setup
		BytesPerApply:   240,
		OpsPerVertex:    12,
		BytesPerVertex:  8,
		SerialFrac:      0.04,
		StepOverheadOps: 2e3,
		AccumBytes:      12,
		ValueBytes:      0,
	}
}

// TriangleResult is the application output.
type TriangleResult struct {
	// Total is the number of triangles in the undirected graph.
	Total int64
	// PerVertex holds each vertex's triangle membership count.
	PerVertex []int64
}

// Run implements App.
func (tc *TriangleCount) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	if cl.Size() != pl.M {
		return nil, fmt.Errorf("triangle_count: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	und := g.BuildUndirectedCSR()

	// Each undirected pair must be counted exactly once even if the edge
	// list contains duplicates or both orientations; the first machine to
	// reach a pair (in edge order) owns it.
	seen := make(map[uint64]struct{}, len(g.Edges))
	perVertex := make([]int64, g.NumVertices)
	var total int64

	// Per-vertex counts travel to a remote master once per machine, not once
	// per edge (PowerGraph aggregates partial sums locally before the
	// exchange).
	sentStamp := make([]int32, g.NumVertices)
	for i := range sentStamp {
		sentStamp[i] = -1
	}

	counters := make([]engine.StepCounters, pl.M)
	for p := 0; p < pl.M; p++ {
		sc := &counters[p]
		sc.Vertices = float64(len(pl.MasterVerts[p]))
		for _, ei := range pl.LocalEdges[p] {
			e := g.Edges[ei]
			a, b := e.Src, e.Dst
			if a > b {
				a, b = b, a
			}
			key := uint64(a)<<32 | uint64(b)
			if _, dup := seen[key]; dup {
				sc.Applies++ // duplicate detection still costs a probe
				continue
			}
			seen[key] = struct{}{}
			na, nb := und.Neighbors(a), und.Neighbors(b)
			common := graph.IntersectionSize(na, nb)
			// Merge scans min(len) on average; charge the merge length.
			probes := len(na)
			if len(nb) < probes {
				probes = len(nb)
			}
			sc.Gathers += float64(probes)
			if float64(probes) > sc.MaxUnit {
				sc.MaxUnit = float64(probes) // one edge's merge is sequential
			}
			sc.Applies++
			if pl.Master[a] != int32(p) && sentStamp[a] != int32(p) {
				sentStamp[a] = int32(p)
				sc.PartialsOut++
			}
			if pl.Master[b] != int32(p) && sentStamp[b] != int32(p) {
				sentStamp[b] = int32(p)
				sc.PartialsOut++
			}
			total += int64(common)
			perVertex[a] += int64(common)
			perVertex[b] += int64(common)
		}
	}

	account := engine.NewAccountant(cl, tc.coeffs())
	account.Superstep(counters)

	// Each triangle is seen by its three edges.
	out := TriangleResult{Total: total / 3, PerVertex: perVertex}
	return account.Finish(tc.Name(), g.Name, out), nil
}

// CountTriangles is a convenience wrapper that runs on a single machine and
// returns only the count (used by tests and examples).
func CountTriangles(g *graph.Graph, m cluster.Machine) (int64, error) {
	cl, err := cluster.New(m)
	if err != nil {
		return 0, err
	}
	res, err := NewTriangleCount().Run(engine.SingleMachine(g), cl)
	if err != nil {
		return 0, err
	}
	return res.Output.(TriangleResult).Total, nil
}
