package apps

import (
	"math/bits"
	"sort"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// This file holds the two batch-analytics workloads built on ClusterBFS: a
// landmark-based distance oracle and k-seed reachability. Both run ONE packed
// engine pass and then answer arbitrarily many queries from the labels — the
// "many queries per graph pass" scenario class the batched traversal opens.

// batchProgram renames an inner ClusterBFS program so the accountant, traces
// and CCR pool see the workload's own name while the packed traversal logic
// stays shared.
type batchProgram struct {
	*ClusterBFS
	name string
}

// Name implements engine.Program.
func (p batchProgram) Name() string { return p.name }

// runBatch validates the inner source set under the workload's name and
// executes the packed traversal through the full-options engine path.
func runBatch(p batchProgram, pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, *ClusterLabels, error) {
	if err := validateSources(p.name, pl.G.NumVertices, p.Sources, MaxBatchSources); err != nil {
		return nil, nil, err
	}
	res, states, err := engine.RunSyncOpts[ClusterState, uint64](p, pl, cl, opts)
	if err != nil {
		return nil, nil, err
	}
	labels := &ClusterLabels{Sources: append([]graph.VertexID(nil), p.Sources...), States: states}
	return res, labels, nil
}

// LandmarkOracle builds a landmark-based distance oracle: the K
// highest-degree vertices become BFS roots of one packed traversal, and the
// resulting labels answer point-to-point distance queries by routing through
// the best landmark. Hub landmarks lie on many shortest paths in power-law
// graphs, which keeps the triangle-inequality upper bound tight.
type LandmarkOracle struct {
	// K is the number of landmarks (1..MaxBatchSources).
	K int
	// MaxIters caps the traversal supersteps.
	MaxIters int
}

// NewLandmarkOracle returns a 16-landmark oracle.
func NewLandmarkOracle() *LandmarkOracle { return &LandmarkOracle{K: 16, MaxIters: 1000} }

// Name implements App.
func (o *LandmarkOracle) Name() string { return "landmark_oracle" }

// Landmarks returns the K highest-total-degree vertices of g, ties broken
// toward the lower vertex ID — a pure function of the graph, so cached
// placements and replayed jobs pick identical roots.
func (o *LandmarkOracle) Landmarks(g *graph.Graph) []graph.VertexID {
	deg := g.TotalDegrees()
	ids := make([]graph.VertexID, g.NumVertices)
	for v := range ids {
		ids[v] = graph.VertexID(v)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if deg[ids[a]] != deg[ids[b]] {
			return deg[ids[a]] > deg[ids[b]]
		}
		return ids[a] < ids[b]
	})
	k := o.K
	if k > len(ids) {
		k = len(ids)
	}
	if k < 0 {
		k = 0
	}
	return ids[:k]
}

// Run implements App. The Output is a *DistanceOracle.
func (o *LandmarkOracle) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return o.RunOpts(pl, cl, engine.Options{})
}

// RunOpts is Run with engine options attached.
func (o *LandmarkOracle) RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error) {
	inner := &ClusterBFS{Sources: o.Landmarks(pl.G), MaxIters: o.MaxIters}
	if inner.MaxIters <= 0 {
		inner.MaxIters = 1000
	}
	res, labels, err := runBatch(batchProgram{inner, o.Name()}, pl, cl, opts)
	if err != nil {
		return nil, err
	}
	res.Output = &DistanceOracle{Labels: labels}
	return res, nil
}

// DistanceOracle answers point-to-point hop-distance queries from packed
// landmark labels without touching the graph again.
type DistanceOracle struct {
	// Labels are the packed per-vertex landmark distances.
	Labels *ClusterLabels
}

// Query returns an upper bound on the hop distance between u and v:
// min over landmarks l of d(u,l)+d(l,v), considering only landmarks that
// reach both endpoints. ok is false when no landmark connects them (distinct
// components, or too few landmarks). The bound is exact whenever some
// shortest u–v path passes through a landmark — in particular whenever u or
// v is itself a landmark.
func (o *DistanceOracle) Query(u, v graph.VertexID) (dist int32, ok bool) {
	if u == v {
		return 0, true
	}
	both := o.Labels.ReachMask(u) & o.Labels.ReachMask(v)
	if both == 0 {
		return -1, false
	}
	best := int32(-1)
	for m := both; m != 0; m &= m - 1 {
		j := bits.TrailingZeros64(m)
		if d := o.Labels.Dist(u, j) + o.Labels.Dist(v, j); best < 0 || d < best {
			best = d
		}
	}
	return best, true
}

// KSeedReach computes batched reachability from k seed vertices: one packed
// traversal labels every vertex with the word of seeds that reach it. The
// output answers "which seeds reach v", "how many vertices does seed j
// cover" and "what does the union cover" — the influence/coverage queries of
// seed-set analytics — without per-seed passes.
type KSeedReach struct {
	// Seeds are the reachability roots (1..MaxBatchSources, distinct).
	Seeds []graph.VertexID
	// MaxIters caps the traversal supersteps.
	MaxIters int
}

// NewKSeedReach returns a 32-seed reachability batch rooted at vertices
// 0..31.
func NewKSeedReach() *KSeedReach {
	seeds := make([]graph.VertexID, 32)
	for i := range seeds {
		seeds[i] = graph.VertexID(i)
	}
	return &KSeedReach{Seeds: seeds, MaxIters: 1000}
}

// Name implements App.
func (r *KSeedReach) Name() string { return "kseed_reach" }

// Run implements App. The Output is a *ReachSummary.
func (r *KSeedReach) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return r.RunOpts(pl, cl, engine.Options{})
}

// RunOpts is Run with engine options attached.
func (r *KSeedReach) RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error) {
	inner := &ClusterBFS{Sources: r.Seeds, MaxIters: r.MaxIters}
	if inner.MaxIters <= 0 {
		inner.MaxIters = 1000
	}
	res, labels, err := runBatch(batchProgram{inner, r.Name()}, pl, cl, opts)
	if err != nil {
		return nil, err
	}
	sum := &ReachSummary{Labels: labels, PerSeed: make([]int, labels.K())}
	for v := range labels.States {
		mask := labels.States[v].Seen
		if mask != 0 {
			sum.Union++
		}
		for m := mask; m != 0; m &= m - 1 {
			sum.PerSeed[bits.TrailingZeros64(m)]++
		}
	}
	res.Output = sum
	return res, nil
}

// ReachSummary is KSeedReach's output: the packed labels plus the coverage
// counts derived from them.
type ReachSummary struct {
	// Labels are the packed per-vertex reach words (seed j reaches v iff bit
	// j of v's word is set; a seed always reaches itself).
	Labels *ClusterLabels
	// PerSeed[j] counts the vertices seed j reaches (including itself).
	PerSeed []int
	// Union counts the vertices reached by at least one seed.
	Union int
}
