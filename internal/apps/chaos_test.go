package apps

import (
	"testing"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/fault"
)

// This file is the chaos/equivalence suite of the fault-tolerance ISSUE: for
// deterministic fault schedules, every engine must (a) recover to the same
// final vertex values the fault-free run produces — exactly for min/max/
// integer programs, within 1e-12 for float sums, which may re-associate when
// replayed supersteps run on the repartitioned survivor placement — and (b)
// charge identical simulated time/energy to the last bit across all three
// engines, with checkpoint and recovery overhead visibly priced in.

// *fault.Schedule must satisfy the engine's injector interface.
var _ engine.FaultInjector = (*fault.Schedule)(nil)

// chaosSchedule covers all three fault kinds early enough that every app is
// still running: machine 1 crashes at the barrier ending superstep 1, machine
// 2 runs throttled for supersteps 0-2, and the network degrades over
// supersteps 1-2.
func chaosSchedule() *fault.Schedule {
	return &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Straggler, Step: 0, Machine: 2, Duration: 3, Factor: 0.5},
		{Kind: fault.Crash, Step: 1, Machine: 1},
		{Kind: fault.Network, Step: 1, Duration: 2, Factor: 0.4},
	}}
}

// hasPhase reports whether the trace contains a phase of the given kind.
func hasPhase(res *engine.Result, kind string) bool {
	for _, st := range res.Trace {
		if st.Kind == kind {
			return true
		}
	}
	return false
}

// checkChaos runs prog fault-free on the reference engine, then under cfg on
// all three engines, asserting value equivalence against the fault-free run
// and bitwise accounting equivalence across the faulted runs.
func checkChaos[V, A any](t *testing.T, name string, prog engine.Program[V, A], pl *engine.Placement, cl *cluster.Cluster, cfg *engine.FaultConfig, eq func(a, b V) bool) *engine.Result {
	t.Helper()

	_, baseVals, err := engine.RunSyncReference[V, A](prog, pl, cl)
	if err != nil {
		t.Fatalf("%s fault-free: %v", name, err)
	}

	opts := engine.Options{Fault: cfg}
	refRes, refVals, err := engine.RunSyncReferenceOpts[V, A](prog, pl, cl, opts)
	if err != nil {
		t.Fatalf("%s reference: %v", name, err)
	}
	csrRes, csrVals, err := engine.RunSyncOpts[V, A](prog, pl, cl, opts)
	if err != nil {
		t.Fatalf("%s csr: %v", name, err)
	}
	parRes, parVals, err := engine.RunSyncParallelOpts[V, A](prog, pl, cl, opts)
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}

	sameAccounting(t, name+"/csr", refRes, csrRes)
	sameAccounting(t, name+"/parallel", refRes, parRes)
	if refRes.Checkpoints != csrRes.Checkpoints || refRes.Recoveries != csrRes.Recoveries ||
		refRes.Checkpoints != parRes.Checkpoints || refRes.Recoveries != parRes.Recoveries {
		t.Errorf("%s: protocol counters disagree: ref %d/%d csr %d/%d par %d/%d", name,
			refRes.Checkpoints, refRes.Recoveries, csrRes.Checkpoints, csrRes.Recoveries,
			parRes.Checkpoints, parRes.Recoveries)
	}

	for v := range baseVals {
		if !eq(baseVals[v], refVals[v]) {
			t.Fatalf("%s/reference: vertex %d recovered to %v, fault-free %v", name, v, refVals[v], baseVals[v])
		}
		if !eq(baseVals[v], csrVals[v]) {
			t.Fatalf("%s/csr: vertex %d recovered to %v, fault-free %v", name, v, csrVals[v], baseVals[v])
		}
		if !eq(baseVals[v], parVals[v]) {
			t.Fatalf("%s/parallel: vertex %d recovered to %v, fault-free %v", name, v, parVals[v], baseVals[v])
		}
	}
	return refRes
}

func TestChaosRecoverySixApps(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)
	cfg := &engine.FaultConfig{
		Injector:        chaosSchedule(),
		CheckpointEvery: 2,
		Policy:          engine.RecoverCheckpoint,
	}

	check := func(t *testing.T, res *engine.Result, baseline float64) {
		t.Helper()
		if res.Recoveries < 1 {
			t.Fatal("scheduled crash never fired")
		}
		if res.Checkpoints < 1 {
			t.Fatal("no checkpoint written")
		}
		if !hasPhase(res, "recover") || !hasPhase(res, "checkpoint") {
			t.Fatal("trace is missing recover/checkpoint phases")
		}
		if res.SimSeconds <= baseline {
			t.Fatalf("faulted run not slower than fault-free: %v <= %v", res.SimSeconds, baseline)
		}
	}

	t.Run("pagerank", func(t *testing.T) {
		base, err := NewPageRank().Run(pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		res := checkChaos[prState, float64](t, "pagerank", NewPageRank(), pl, cl, cfg,
			func(a, b prState) bool { return floatClose(a.rank, b.rank) && a.invOut == b.invOut })
		check(t, res, base.SimSeconds)
	})
	t.Run("components", func(t *testing.T) {
		base, err := NewConnectedComponents().Run(pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		res := checkChaos[uint32, uint32](t, "components", NewConnectedComponents(), pl, cl, cfg, exact[uint32])
		check(t, res, base.SimSeconds)
	})
	t.Run("bfs", func(t *testing.T) {
		base, err := NewBFS().Run(pl, cl)
		if err != nil {
			t.Fatal(err)
		}
		res := checkChaos[int32, int32](t, "bfs", NewBFS(), pl, cl, cfg, exact[int32])
		check(t, res, base.SimSeconds)
	})
	t.Run("hops", func(t *testing.T) {
		// Min is exactly associative even on floats, so recovery must be
		// bitwise despite the replay running on a different placement.
		res := checkChaos[float64, float64](t, "hops", hopsProgram{}, pl, cl, cfg, exact[float64])
		if res.Recoveries < 1 {
			t.Fatal("scheduled crash never fired")
		}
	})
	t.Run("core-cascade", func(t *testing.T) {
		res := checkChaos[coreState, int32](t, "core-cascade", cascadeProgram{k: 3}, pl, cl, cfg, exact[coreState])
		if res.Recoveries < 1 {
			t.Fatal("scheduled crash never fired")
		}
	})
	t.Run("clusterbfs", func(t *testing.T) {
		// OR is exactly associative, so recovery must be bitwise even though
		// the replay runs on the repartitioned survivor placement.
		prog := &ClusterBFS{Sources: spreadSources(g.NumVertices, MaxBatchSources), MaxIters: 1000}
		res := checkChaos[ClusterState, uint64](t, "clusterbfs", prog, pl, cl, cfg, exact[ClusterState])
		if res.Recoveries < 1 {
			t.Fatal("scheduled crash never fired")
		}
	})
}

// TestChaosSeededSchedules drives the generator end to end: seeded random
// schedules, every engine, value equivalence after recovery.
func TestChaosSeededSchedules(t *testing.T) {
	old := engine.ParallelShards
	engine.ParallelShards = 4
	t.Cleanup(func() { engine.ParallelShards = old })

	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)

	for _, seed := range []uint64{1, 7, 99} {
		sched, err := fault.NewSchedule(seed, fault.Spec{
			Machines: 4, Horizon: 6, Crashes: 2, Stragglers: 2, NetworkFaults: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := &engine.FaultConfig{Injector: sched, CheckpointEvery: 3, Policy: engine.RecoverCheckpoint}
		checkChaos[uint32, uint32](t, sched.String(), NewConnectedComponents(), pl, cl, cfg, exact[uint32])
		checkChaos[prState, float64](t, sched.String(), NewPageRank(), pl, cl, cfg,
			func(a, b prState) bool { return floatClose(a.rank, b.rank) && a.invOut == b.invOut })
	}
}

// TestChaosFullRestart pins the baseline recovery policy: correct values, and
// strictly more expensive than checkpoint recovery when a crash fires late.
func TestChaosFullRestart(t *testing.T) {
	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)
	sched := &fault.Schedule{Events: []fault.Event{{Kind: fault.Crash, Step: 5, Machine: 3}}}

	restart := &engine.FaultConfig{Injector: sched, CheckpointEvery: 2, Policy: engine.RecoverRestart}
	ckpt := &engine.FaultConfig{Injector: sched, CheckpointEvery: 2, Policy: engine.RecoverCheckpoint}

	resRestart := checkChaos[prState, float64](t, "pagerank-restart", NewPageRank(), pl, cl, restart,
		func(a, b prState) bool { return floatClose(a.rank, b.rank) })
	resCkpt := checkChaos[prState, float64](t, "pagerank-ckpt", NewPageRank(), pl, cl, ckpt,
		func(a, b prState) bool { return floatClose(a.rank, b.rank) })

	if resRestart.Recoveries != 1 || resCkpt.Recoveries != 1 {
		t.Fatalf("recoveries: restart %d, checkpoint %d", resRestart.Recoveries, resCkpt.Recoveries)
	}
	if resRestart.SimSeconds <= resCkpt.SimSeconds {
		t.Fatalf("full restart (%v s) not slower than checkpoint recovery (%v s)",
			resRestart.SimSeconds, resCkpt.SimSeconds)
	}
}

// TestChaosTransientOnly: with stragglers and network faults but no crash,
// the computation path is untouched — values bitwise identical, supersteps
// equal — while the makespan strictly grows.
func TestChaosTransientOnly(t *testing.T) {
	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)
	sched := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Straggler, Step: 1, Machine: 0, Duration: 4, Factor: 0.3},
		{Kind: fault.Network, Step: 2, Duration: 3, Factor: 0.5},
	}}
	if err := sched.Validate(pl.M); err != nil {
		t.Fatal(err)
	}

	base, baseVals, err := engine.RunSync[prState, float64](NewPageRank(), pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	res, vals, err := engine.RunSyncOpts[prState, float64](NewPageRank(), pl, cl,
		engine.Options{Fault: &engine.FaultConfig{Injector: sched}})
	if err != nil {
		t.Fatal(err)
	}
	for v := range baseVals {
		if vals[v] != baseVals[v] {
			t.Fatalf("vertex %d perturbed by transient fault: %v != %v", v, vals[v], baseVals[v])
		}
	}
	if res.Supersteps != base.Supersteps {
		t.Fatalf("supersteps changed: %d != %d", res.Supersteps, base.Supersteps)
	}
	if res.SimSeconds <= base.SimSeconds {
		t.Fatalf("transient faults free: %v <= %v", res.SimSeconds, base.SimSeconds)
	}
	if res.Recoveries != 0 || res.Checkpoints != 0 {
		t.Fatalf("unexpected protocol activity: %d/%d", res.Checkpoints, res.Recoveries)
	}
}

// TestChaosCheckpointNeverFree: checkpointing with no faults still costs
// simulated time and energy.
func TestChaosCheckpointNeverFree(t *testing.T) {
	g := equivGraph(t)
	cl := heteroCluster(t)
	pl := moduloPlacement(t, g, 4)

	base, baseVals, err := engine.RunSync[uint32, uint32](NewConnectedComponents(), pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	res, vals, err := engine.RunSyncOpts[uint32, uint32](NewConnectedComponents(), pl, cl,
		engine.Options{Fault: &engine.FaultConfig{CheckpointEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for v := range baseVals {
		if vals[v] != baseVals[v] {
			t.Fatalf("vertex %d changed by checkpointing: %v != %v", v, vals[v], baseVals[v])
		}
	}
	if res.Checkpoints < base.Supersteps-1 {
		t.Fatalf("only %d checkpoints over %d supersteps", res.Checkpoints, base.Supersteps)
	}
	if res.SimSeconds <= base.SimSeconds {
		t.Fatalf("checkpointing was free in time: %v <= %v", res.SimSeconds, base.SimSeconds)
	}
	if res.EnergyJoules <= base.EnergyJoules {
		t.Fatalf("checkpointing was free in energy: %v <= %v", res.EnergyJoules, base.EnergyJoules)
	}
}
