package apps

import (
	"fmt"

	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// KCore computes the full k-core decomposition of the undirected structure
// by synchronous peeling: for increasing k, vertices whose remaining degree
// drops below k are removed in rounds until the k-core stabilizes. A
// vertex's core number is the largest k whose core contains it. Like SSSP,
// it is an extension beyond the paper's benchmark set, exercising a
// degeneracy-ordered, heavily iterative workload whose active set shrinks
// unevenly across machines.
type KCore struct {
	// MaxK bounds the decomposition (0 = no bound).
	MaxK int
}

// NewKCore returns an unbounded decomposition.
func NewKCore() *KCore { return &KCore{} }

// Name implements App.
func (kc *KCore) Name() string { return "kcore" }

// coeffs: peeling scans are degree checks (cheap) with occasional neighbor
// decrements through random indices.
func (kc *KCore) coeffs() engine.CostCoeffs {
	return engine.CostCoeffs{
		OpsPerGather:    40, // per degree check / neighbor decrement
		BytesPerGather:  80,
		OpsPerApply:     120, // per removal
		BytesPerApply:   260,
		OpsPerVertex:    25,
		BytesPerVertex:  16,
		SerialFrac:      0.04,
		StepOverheadOps: 2e3,
		AccumBytes:      8,
		ValueBytes:      8,
	}
}

// KCoreResult is the application output.
type KCoreResult struct {
	// Core holds each vertex's core number.
	Core []int32
	// MaxCore is the degeneracy of the graph.
	MaxCore int
	// Rounds counts peeling supersteps.
	Rounds int
}

// Run implements App.
func (kc *KCore) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	if cl.Size() != pl.M {
		return nil, fmt.Errorf("kcore: placement has %d machines, cluster %d", pl.M, cl.Size())
	}
	g := pl.G
	n := g.NumVertices
	und := g.BuildUndirectedCSR()

	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(und.Degree(graph.VertexID(v)))
	}
	core := make([]int32, n)
	removed := make([]bool, n)
	remaining := n

	account := engine.NewAccountant(cl, kc.coeffs())
	rounds := 0
	k := int32(1)
	for remaining > 0 {
		if kc.MaxK > 0 && int(k) > kc.MaxK {
			// Everything left belongs to a core at least MaxK deep.
			for v := range removed {
				if !removed[v] {
					core[v] = k - 1
				}
			}
			break
		}
		// Peel all vertices below k, in synchronized rounds, before raising k.
		for {
			rounds++
			counters := make([]engine.StepCounters, pl.M)
			peeled := 0
			for p := 0; p < pl.M; p++ {
				sc := &counters[p]
				sc.Vertices = float64(len(pl.MasterVerts[p]))
				for _, v := range pl.MasterVerts[p] {
					if removed[v] {
						continue
					}
					sc.Gathers++ // the degree check
					if deg[v] >= k {
						continue
					}
					removed[v] = true
					core[v] = k - 1
					peeled++
					remaining--
					sc.Applies++
					sc.UpdatesOut += float64(mirrorsOf(pl, v, p))
					neighbors := und.Neighbors(v)
					sc.Gathers += float64(len(neighbors))
					if u := float64(len(neighbors)); u > sc.MaxUnit {
						sc.MaxUnit = u
					}
					for _, u := range neighbors {
						if !removed[u] {
							deg[u]--
						}
					}
				}
			}
			account.Superstep(counters)
			if peeled == 0 {
				break
			}
		}
		k++
	}

	maxCore := int32(0)
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	out := KCoreResult{Core: core, MaxCore: int(maxCore), Rounds: rounds}
	return account.Finish(kc.Name(), g.Name, out), nil
}
